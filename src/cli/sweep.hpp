#pragma once
// Sweep specification and runner: expands a (scenario, n, eps, channel)
// grid against the workload registry, runs each point through the parallel
// Monte-Carlo harness, and keeps wall-clock per point so the reporting
// layer can emit the perf trajectory alongside the protocol statistics.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/trial.hpp"
#include "workload/registry.hpp"

namespace flip::cli {

/// The grid to run. Empty axis = the scenario's registered default.
struct SweepSpec {
  std::string scenario;
  std::vector<std::size_t> ns;
  std::vector<double> epss;
  std::vector<std::string> channels;
  std::size_t trials = 32;
  std::uint64_t seed = 0x5eedULL;
  /// 0 = the shared pool (hardware concurrency).
  std::size_t threads = 0;
  /// Substrate every grid point runs on. Identical results either way;
  /// kClassic is the reference Engine for A/B timing.
  EngineMode engine = EngineMode::kBatch;
  /// Intra-trial shards per execution (batch breathe scenarios). Results
  /// are bit-identical for every value — sharding buys wall-clock on big
  /// single trials, threads buy throughput across trials.
  std::size_t shards = 1;
};

/// One grid point's resolved parameters and aggregated results. Per-point
/// wall-clock lives in summary.wall_seconds.
struct SweepPoint {
  ScenarioConfig config;
  TrialSummary summary;
};

struct SweepResult {
  SweepSpec spec;
  std::vector<SweepPoint> points;
  double wall_seconds = 0.0;  ///< whole sweep
};

/// Expands the grid (cross product, axis order n -> eps -> channel) and
/// runs every point. Validates the whole grid against the registry before
/// running anything, so a typo fails fast instead of after minutes of
/// simulation. Throws std::invalid_argument on unknown scenario/channel or
/// zero trials.
SweepResult run_sweep(const SweepSpec& spec);

/// The resolved grid run_sweep would execute, in execution order.
std::vector<ScenarioConfig> expand_grid(const SweepSpec& spec);

}  // namespace flip::cli
