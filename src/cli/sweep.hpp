#pragma once
// Sweep specification and runner: expands a (scenario, n, eps, channel)
// grid against the workload registry, runs each point through the parallel
// Monte-Carlo harness, and keeps wall-clock per point so the reporting
// layer can emit the perf trajectory alongside the protocol statistics.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "sim/trial.hpp"
#include "workload/registry.hpp"

namespace flip::cli {

/// The grid to run. Empty axis = the scenario's registered default.
struct SweepSpec {
  std::string scenario;
  std::vector<std::size_t> ns;
  std::vector<double> epss;
  std::vector<std::string> channels;
  std::size_t trials = 32;
  std::uint64_t seed = 0x5eedULL;
  /// 0 = the shared pool (hardware concurrency).
  std::size_t threads = 0;
  /// Substrate every grid point runs on. Identical results either way;
  /// kClassic is the reference Engine for A/B timing.
  EngineMode engine = EngineMode::kBatch;
  /// Intra-trial shards per execution (batch breathe scenarios). Results
  /// are bit-identical for every value — sharding buys wall-clock on big
  /// single trials, threads buy throughput across trials.
  std::size_t shards = 1;
  /// Dynamic-environment overrides (flipsim --schedule / --churn). Unset
  /// means "use the scenario's registered default" — which is the static
  /// environment for classic entries and a preset for the dynamic ones.
  std::optional<EnvironmentSchedule> schedule;
  std::optional<ChurnSpec> churn;
  /// Interaction-graph override (flipsim --topology). Unset means "use the
  /// scenario's registered default" — complete for the classic entries, a
  /// preset sparse family for the topology entries.
  std::optional<TopologySpec> topology;
  /// First cell (index into expand_grid order) to run: cells before it are
  /// skipped. This is the checkpoint/resume seam — under the counter-keyed
  /// RNG a cell is a pure key range, so a resumed run's cells are
  /// bit-identical to the uninterrupted run's.
  std::size_t first_cell = 0;
  /// When false, run_sweep does not accumulate SweepPoints in the returned
  /// result — the per-point sink is the only output. The service sets this
  /// for streamed requests so a huge grid runs in O(1) result memory.
  bool collect_points = true;
};

/// One grid point's resolved parameters and aggregated results. Per-point
/// wall-clock lives in summary.wall_seconds.
struct SweepPoint {
  ScenarioConfig config;
  TrialSummary summary;
};

struct SweepResult {
  SweepSpec spec;
  std::vector<SweepPoint> points;
  double wall_seconds = 0.0;  ///< whole sweep
};

/// Per-cell streaming sink: invoked after each grid cell completes, in
/// execution order, with the cell's index in the full expanded grid. This
/// is the shared seam under flipsim's incremental --csv/--jsonl emission
/// and the sweep service's per-cell response frames. An exception thrown
/// from the sink aborts the sweep (it propagates out of run_sweep) — the
/// service uses this to stop a sweep whose client hung up.
using SweepPointSink =
    std::function<void(std::size_t cell_index, const SweepPoint& point)>;

/// Expands the grid (cross product, axis order n -> eps -> channel) and
/// runs every point from spec.first_cell on. Validates the whole grid
/// against the registry before running anything, so a typo fails fast
/// instead of after minutes of simulation. Throws std::invalid_argument on
/// unknown scenario/channel, zero trials, or first_cell past the grid.
SweepResult run_sweep(const SweepSpec& spec,
                      const SweepPointSink& on_point = {});

/// The resolved grid run_sweep would execute, in execution order.
std::vector<ScenarioConfig> expand_grid(const SweepSpec& spec);

// Argument-layer validation shared by flipsim (and testable without a
// process): each returns nullopt when the value is acceptable, the error
// text (without the "error: " prefix) otherwise.

/// Validates a --threads request against the detected hardware concurrency.
/// `hardware` == 0 means the runtime cannot tell (std::thread::
/// hardware_concurrency is allowed to return 0) — that falls back to a
/// floor of one worker, so any positive request is accepted rather than
/// every request being rejected against an upper bound of 0.
std::optional<std::string> validate_threads(std::size_t threads,
                                            std::size_t hardware);

/// Validates a --shards request against the registry's kMaxShards bound.
std::optional<std::string> validate_shards(std::size_t shards);

/// Validates every --eps value against the model's (0, 0.5] domain, so a
/// bad grid fails at the argument layer with the offending value named
/// instead of deep inside Params::calibrated mid-sweep.
std::optional<std::string> validate_eps_values(
    const std::vector<double>& epss);

/// Validates an --engine request against the scenario's registry entry:
/// the surrogate mode is rejected on scenarios with no mean-field model
/// (adversarial, desync, baselines) with the supported alternatives named,
/// BEFORE any simulation runs. Exact modes pass for every known scenario;
/// an unknown scenario name also fails here (same message as the
/// registry's, so the user is pointed at --list either way).
std::optional<std::string> validate_engine(std::string_view scenario,
                                           EngineMode engine);

/// Validates a --topology request against the scenario's registry entry:
/// a non-complete graph is rejected on scenarios whose factory ignores it
/// (adversarial, desync, baselines), and any effective non-complete graph
/// (the override, or the scenario's default when no override was given) is
/// rejected under the surrogate engine, which models the complete graph
/// only. Both fail at the argument layer, naming the scenario and the
/// topology, BEFORE any simulation runs.
std::optional<std::string> validate_topology(
    std::string_view scenario, const std::optional<TopologySpec>& topology,
    EngineMode engine);

// --- surrogate validation harness (flipsim --validate-surrogate) --------
//
// Runs surrogate and BatchEngine side by side over the supported registry
// entries at overlapping n and checks |success_hat - success_mc| against a
// per-cell error band. The band is the Monte-Carlo Wilson-interval
// halfwidth (sampling noise the exact side cannot beat) PLUS a documented
// model tolerance for the surrogate's approximations (agent independence,
// expectation-of-nonlinear-function gaps):

/// Static environments: the mean-field model's finite-n correlation error,
/// measured well under 0.05 at n >= 1k on the supported entries; 0.10
/// leaves headroom without masking a broken recurrence (a wrong stage
/// model is off by ~0.5, not 0.1).
inline constexpr double kSurrogateStaticTolerance = 0.10;
/// Dynamic environments (schedule / churn / near-threshold ramps): the
/// burst lottery and the awake chain linearize harder nonlinearities, and
/// near-threshold scenarios sit on the steep part of the success curve
/// where small rate errors move the outcome most.
inline constexpr double kSurrogateDynamicTolerance = 0.16;

/// What to validate. Empty `scenarios` = every registry entry with
/// supports_surrogate.
struct SurrogateValidationSpec {
  std::vector<std::string> scenarios;
  std::vector<std::size_t> ns = {1024};
  /// Monte-Carlo trials per cell (the expensive side).
  std::size_t trials = 32;
  /// Stratified surrogate trials per cell: the van der Corput mapping
  /// recovers the analytic probability to within 1/surrogate_trials, so
  /// 4096 contributes < 2.5e-4 quantization to the measured error.
  std::size_t surrogate_trials = 4096;
  std::uint64_t seed = 0x5eedULL;
  std::size_t threads = 0;
};

/// One (scenario, n) comparison.
struct SurrogateValidationCell {
  std::string scenario;
  ScenarioConfig config;  ///< the resolved (batch-side) grid point
  bool dynamic = false;   ///< schedule or churn enabled -> dynamic tolerance
  double success_mc = 0.0;
  double mc_low = 0.0;    ///< Wilson interval of the MC estimate
  double mc_high = 0.0;
  double success_surrogate = 0.0;
  double abs_error = 0.0;  ///< |success_surrogate - success_mc|
  double tolerance = 0.0;  ///< the model tolerance constant applied
  double band = 0.0;       ///< Wilson halfwidth + tolerance
  bool pass = false;       ///< abs_error <= band
  /// Convergence-round estimates (NaN when a side records none). Reported
  /// for inspection; the pass gate is the success band only — convergence
  /// deltas are probe-grid-quantized and scenario-dependent.
  double convergence_mc = 0.0;
  double convergence_surrogate = 0.0;
  double mc_seconds = 0.0;
  double surrogate_seconds = 0.0;
};

struct SurrogateValidationResult {
  SurrogateValidationSpec spec;
  std::vector<SurrogateValidationCell> cells;
  bool all_pass = true;
  double wall_seconds = 0.0;
};

/// Runs the harness. Throws std::invalid_argument when a named scenario is
/// unknown or does not support the surrogate engine.
SurrogateValidationResult run_surrogate_validation(
    const SurrogateValidationSpec& spec);

}  // namespace flip::cli
