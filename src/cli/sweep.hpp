#pragma once
// Sweep specification and runner: expands a (scenario, n, eps, channel)
// grid against the workload registry, runs each point through the parallel
// Monte-Carlo harness, and keeps wall-clock per point so the reporting
// layer can emit the perf trajectory alongside the protocol statistics.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/trial.hpp"
#include "workload/registry.hpp"

namespace flip::cli {

/// The grid to run. Empty axis = the scenario's registered default.
struct SweepSpec {
  std::string scenario;
  std::vector<std::size_t> ns;
  std::vector<double> epss;
  std::vector<std::string> channels;
  std::size_t trials = 32;
  std::uint64_t seed = 0x5eedULL;
  /// 0 = the shared pool (hardware concurrency).
  std::size_t threads = 0;
  /// Substrate every grid point runs on. Identical results either way;
  /// kClassic is the reference Engine for A/B timing.
  EngineMode engine = EngineMode::kBatch;
  /// Intra-trial shards per execution (batch breathe scenarios). Results
  /// are bit-identical for every value — sharding buys wall-clock on big
  /// single trials, threads buy throughput across trials.
  std::size_t shards = 1;
  /// Dynamic-environment overrides (flipsim --schedule / --churn). Unset
  /// means "use the scenario's registered default" — which is the static
  /// environment for classic entries and a preset for the dynamic ones.
  std::optional<EnvironmentSchedule> schedule;
  std::optional<ChurnSpec> churn;
};

/// One grid point's resolved parameters and aggregated results. Per-point
/// wall-clock lives in summary.wall_seconds.
struct SweepPoint {
  ScenarioConfig config;
  TrialSummary summary;
};

struct SweepResult {
  SweepSpec spec;
  std::vector<SweepPoint> points;
  double wall_seconds = 0.0;  ///< whole sweep
};

/// Expands the grid (cross product, axis order n -> eps -> channel) and
/// runs every point. Validates the whole grid against the registry before
/// running anything, so a typo fails fast instead of after minutes of
/// simulation. Throws std::invalid_argument on unknown scenario/channel or
/// zero trials.
SweepResult run_sweep(const SweepSpec& spec);

/// The resolved grid run_sweep would execute, in execution order.
std::vector<ScenarioConfig> expand_grid(const SweepSpec& spec);

// Argument-layer validation shared by flipsim (and testable without a
// process): each returns nullopt when the value is acceptable, the error
// text (without the "error: " prefix) otherwise.

/// Validates a --threads request against the detected hardware concurrency.
/// `hardware` == 0 means the runtime cannot tell (std::thread::
/// hardware_concurrency is allowed to return 0) — that falls back to a
/// floor of one worker, so any positive request is accepted rather than
/// every request being rejected against an upper bound of 0.
std::optional<std::string> validate_threads(std::size_t threads,
                                            std::size_t hardware);

/// Validates a --shards request against the registry's kMaxShards bound.
std::optional<std::string> validate_shards(std::size_t shards);

/// Validates every --eps value against the model's (0, 0.5] domain, so a
/// bad grid fails at the argument layer with the offending value named
/// instead of deep inside Params::calibrated mid-sweep.
std::optional<std::string> validate_eps_values(
    const std::vector<double>& epss);

}  // namespace flip::cli
