#pragma once
// Request (de)serialization for the sweep service and the checkpoint
// files — the text the flipsvc/1 frames and flipchk/1 files carry.
//
// A SweepRequest is the ARGUMENT-layer form of a sweep: the raw
// comma-lists and spec strings exactly as they appear on the flipsim
// command line. resolve_sweep_request() turns one into a validated
// SweepSpec through the SAME parse + validate_* calls tools/flipsim.cpp
// makes (flipsim itself routes through it), so a request rejected by the
// CLI is rejected by the server with the same message, and vice versa.
//
// Wire text is line-oriented UTF-8: a `flipsvc/1 <command>` first line,
// then one `key=value` per line (defaulted fields omitted). Unknown keys
// are errors — the protocol is versioned, not sniffed. See
// docs/SERVICE.md for the full grammar.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "cli/sweep.hpp"

namespace flip::cli {

/// Protocol identifier of the request/checkpoint text grammar.
inline constexpr std::string_view kWireProto = "flipsvc/1";
/// First-line identifier of checkpoint files.
inline constexpr std::string_view kCheckpointProto = "flipchk/1";

/// What a request frame asks the server to do.
enum class WireCommand { kSweep, kPing, kShutdown };

/// One sweep request in argument-layer (raw string) form. Field spellings
/// follow the flipsim flags they mirror.
struct SweepRequest {
  WireCommand command = WireCommand::kSweep;
  std::string scenario;
  std::string ns;        ///< comma list, empty = scenario default
  std::string epss;      ///< comma list, empty = scenario default
  std::string channels;  ///< comma list, empty = scenario default
  std::size_t trials = 32;
  std::uint64_t seed = 0x5eedULL;
  std::size_t threads = 0;  ///< 0 = the server/process shared pool
  std::size_t shards = 1;
  std::string engine = "batch";
  std::string schedule;  ///< raw --schedule spec, empty = unset
  std::string churn;     ///< raw --churn spec, empty = unset
  std::string topology;  ///< raw --topology spec, empty = unset
  std::size_t resume_from = 0;  ///< first grid cell to run
};

/// Renders the request as wire text (first line + key=value lines,
/// defaulted fields omitted). encode/parse round-trip exactly, so two
/// requests are equivalent iff their encodings are byte-equal — the
/// checkpoint spec-match rule.
[[nodiscard]] std::string encode_sweep_request(const SweepRequest& request);

/// Parses wire text back into a SweepRequest. Returns the error text
/// (unknown key, bad number, missing/unknown proto line) via `error` and
/// nullopt on failure.
[[nodiscard]] std::optional<SweepRequest> parse_sweep_request(
    std::string_view text, std::string& error);

/// Argument-layer validation + resolution, shared verbatim between
/// tools/flipsim.cpp and the server's ingest thread: parses the list and
/// spec strings, runs validate_eps_values / validate_threads /
/// validate_shards / validate_engine / validate_topology in the CLI's
/// order, and fills `spec`. On failure returns the error text (without
/// the "error: " prefix) — the same message flipsim prints. When
/// `scenario` is empty the scenario-dependent checks are skipped (the
/// --validate-surrogate path); callers that need a scenario enforce that
/// themselves.
[[nodiscard]] std::optional<std::string> resolve_sweep_request(
    const SweepRequest& request, SweepSpec& spec);

// --- checkpoint files (flipchk/1) -----------------------------------------

/// A parsed checkpoint: the encoded request it belongs to and the next
/// grid cell to run (== number of cells already completed).
struct Checkpoint {
  SweepRequest request;
  std::size_t next_cell = 0;
  std::size_t grid_cells = 0;  ///< full grid size when written
};

/// Renders a checkpoint file: "flipchk/1 next_cell=<k> grid=<total>" then
/// the request's wire text.
[[nodiscard]] std::string encode_checkpoint(const SweepRequest& request,
                                            std::size_t next_cell,
                                            std::size_t grid_cells);

/// Parses a checkpoint file; error text + nullopt on malformed input.
[[nodiscard]] std::optional<Checkpoint> parse_checkpoint(
    std::string_view text, std::string& error);

}  // namespace flip::cli
