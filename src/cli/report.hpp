#pragma once
// Machine-readable reporting for sweeps: the flipsim-sweep-v1 JSON schema,
// a flat CSV with one row per grid point, the human table, and the
// BENCH_*.json trajectory schema documented in docs/BENCHMARKS.md. All
// emitters walk the same SweepResult, so the formats cannot drift apart.

#include <string>

#include "cli/sweep.hpp"
#include "util/table.hpp"

namespace flip::cli {

/// Pretty-printed "flipsim-sweep-v1" document: sweep-level parameters and
/// wall-clock, then one entry per grid point with params, success interval,
/// rounds/messages/correct-fraction moments, and per-point timing. Key
/// order is fixed (insertion order), so output is byte-stable for a given
/// result.
[[nodiscard]] std::string sweep_to_json(const SweepResult& result);

/// One header line plus one row per grid point; numeric columns use
/// shortest-round-trip formatting.
[[nodiscard]] std::string sweep_to_csv(const SweepResult& result);

/// Human-readable summary table for the terminal.
[[nodiscard]] TextTable sweep_table(const SweepResult& result);

/// The docs/BENCHMARKS.md trajectory schema: {bench, experiment, git_rev,
/// metrics, params} with stable per-point metric keys. `experiment` names
/// the BENCH_<id>.json file this lands in (e.g. "baseline").
[[nodiscard]] std::string sweep_to_bench_json(const SweepResult& result,
                                              const std::string& experiment,
                                              const std::string& git_rev);

/// A stable identifier fragment for one grid point, e.g.
/// "broadcast_n1024_eps0.2" (channel appended when not the bsc default).
[[nodiscard]] std::string point_key(const SweepResult& result,
                                    const SweepPoint& point);

/// Pretty-printed "flipsim-validate-v1" document for the surrogate
/// validation harness: spec-level parameters and the tolerance constants,
/// then one entry per cell with both success estimates, the absolute
/// error, the band it was held to, and the pass verdict.
/// tools/check_surrogate_accuracy.py consumes this.
[[nodiscard]] std::string validation_to_json(
    const SurrogateValidationResult& result);

/// Human-readable validation table for the terminal.
[[nodiscard]] TextTable validation_table(
    const SurrogateValidationResult& result);

}  // namespace flip::cli
