#pragma once
// Machine-readable reporting for sweeps: the flipsim-sweep-v1 JSON schema,
// a flat CSV with one row per grid point, the human table, and the
// BENCH_*.json trajectory schema documented in docs/BENCHMARKS.md. All
// emitters walk the same SweepResult, so the formats cannot drift apart.

#include <string>

#include "cli/sweep.hpp"
#include "util/json_writer.hpp"
#include "util/table.hpp"

namespace flip::cli {

// --- per-point emitters ---------------------------------------------------
// The single code path under the pretty --json document, the streamed
// --csv/--jsonl rows, and the sweep service's per-cell response frames:
// every format renders a grid point through these, so the document and the
// stream cannot drift apart (the byte-exact goldens in tests/cli_test.cpp
// pin the document; the service differential test pins the stream).

/// Appends one grid point's flipsim-sweep-v1 point object at `json`'s
/// current position (inside the document's points array, or alone for the
/// single-line form).
void append_sweep_point(JsonWriter& json, const SweepPoint& point);

/// One grid point as a compact single-line JSON object — the
/// flipsim-sweep-v1 point payload the service streams (one frame per cell)
/// and --jsonl writes (one line per cell). Content-identical to the
/// document's point objects; only whitespace differs. The trailing two
/// keys (trial_seconds, wall_seconds) are the only nondeterministic
/// fields, so byte comparisons truncate at `"trial_seconds"`.
[[nodiscard]] std::string sweep_point_line(const SweepPoint& point);

/// The CSV header line, newline-terminated.
[[nodiscard]] std::string sweep_csv_header();

/// One newline-terminated CSV row for a grid point.
[[nodiscard]] std::string sweep_csv_row(const SweepSpec& spec,
                                        const SweepPoint& point);

/// Pretty-printed "flipsim-sweep-v1" document: sweep-level parameters and
/// wall-clock, then one entry per grid point with params, success interval,
/// rounds/messages/correct-fraction moments, and per-point timing. Key
/// order is fixed (insertion order), so output is byte-stable for a given
/// result.
[[nodiscard]] std::string sweep_to_json(const SweepResult& result);

/// One header line plus one row per grid point; numeric columns use
/// shortest-round-trip formatting.
[[nodiscard]] std::string sweep_to_csv(const SweepResult& result);

/// Human-readable summary table for the terminal.
[[nodiscard]] TextTable sweep_table(const SweepResult& result);

/// The docs/BENCHMARKS.md trajectory schema: {bench, experiment, git_rev,
/// metrics, params} with stable per-point metric keys. `experiment` names
/// the BENCH_<id>.json file this lands in (e.g. "baseline").
[[nodiscard]] std::string sweep_to_bench_json(const SweepResult& result,
                                              const std::string& experiment,
                                              const std::string& git_rev);

/// A stable identifier fragment for one grid point, e.g.
/// "broadcast_n1024_eps0.2" (channel appended when not the bsc default).
[[nodiscard]] std::string point_key(const SweepResult& result,
                                    const SweepPoint& point);

/// Pretty-printed "flipsim-validate-v1" document for the surrogate
/// validation harness: spec-level parameters and the tolerance constants,
/// then one entry per cell with both success estimates, the absolute
/// error, the band it was held to, and the pass verdict.
/// tools/check_surrogate_accuracy.py consumes this.
[[nodiscard]] std::string validation_to_json(
    const SurrogateValidationResult& result);

/// Human-readable validation table for the terminal.
[[nodiscard]] TextTable validation_table(
    const SurrogateValidationResult& result);

}  // namespace flip::cli
