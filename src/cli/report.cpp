#include "cli/report.hpp"

#include <limits>

#include "util/json_writer.hpp"

namespace flip::cli {

namespace {

void stats_object(JsonWriter& json, const RunningStats& stats) {
  json.begin_object()
      .field("mean", stats.mean())
      .field("stddev", stats.stddev())
      .field("min", stats.min())
      .field("max", stats.max())
      .end_object();
}

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// The convergence-round mean of a point: NaN (rendered null/"-") when no
/// trial converged — an empty accumulator's 0.0 would read as "converged
/// at round 0", the exact NaN-vs-placeholder confusion the reporting
/// layer guards against.
double convergence_mean(const TrialSummary& summary) {
  return summary.converged != 0 ? summary.convergence_rounds.mean() : kNaN;
}

/// Like stats_object, but for the convergence accumulator, which may hold
/// no samples: every statistic maps to null then (JsonWriter renders
/// non-finite doubles as null).
void convergence_object(JsonWriter& json, const TrialSummary& summary) {
  const bool any = summary.converged != 0;
  const RunningStats& stats = summary.convergence_rounds;
  json.begin_object()
      .field("converged", static_cast<std::uint64_t>(summary.converged))
      .field("mean", any ? stats.mean() : kNaN)
      .field("stddev", any ? stats.stddev() : kNaN)
      .field("min", any ? stats.min() : kNaN)
      .field("max", any ? stats.max() : kNaN)
      .end_object();
}

}  // namespace

std::string point_key(const SweepResult& result, const SweepPoint& point) {
  std::string key = result.spec.scenario;
  key += "_n" + std::to_string(point.config.n);
  key += "_eps" + JsonWriter::number(point.config.eps);
  if (point.config.channel != kChannelBsc) {
    key += "_" + point.config.channel;
  }
  return key;
}

void append_sweep_point(JsonWriter& json, const SweepPoint& point) {
  json.begin_object();
  json.key("params")
      .begin_object()
      .field("n", static_cast<std::uint64_t>(point.config.n))
      .field("eps", point.config.eps)
      .field("channel", point.config.channel)
      .field("schedule", point.config.schedule.describe())
      .field("churn", point.config.churn.describe())
      .field("topology", point.config.topology.describe())
      .end_object();
  json.field("trials", static_cast<std::uint64_t>(point.summary.trials))
      .field("successes",
             static_cast<std::uint64_t>(point.summary.successes));
  json.key("success_rate")
      .begin_object()
      .field("estimate", point.summary.success.estimate)
      .field("wilson_low", point.summary.success.low)
      .field("wilson_high", point.summary.success.high)
      .end_object();
  json.key("rounds");
  stats_object(json, point.summary.rounds);
  json.key("messages");
  stats_object(json, point.summary.messages);
  json.key("correct_fraction");
  stats_object(json, point.summary.correct_fraction);
  json.key("convergence_rounds");
  convergence_object(json, point.summary);
  // Timing last, deterministic payload first: stream consumers (and the
  // served-vs-one-shot differential test) byte-compare the prefix up to
  // "trial_seconds".
  json.key("trial_seconds");
  stats_object(json, point.summary.trial_seconds);
  json.field("wall_seconds", point.summary.wall_seconds);
  json.end_object();
}

std::string sweep_point_line(const SweepPoint& point) {
  JsonWriter json(0);  // compact: one line, no internal newlines
  append_sweep_point(json, point);
  return json.str();
}

std::string sweep_to_json(const SweepResult& result) {
  JsonWriter json;
  json.begin_object()
      .field("schema", "flipsim-sweep-v1")
      .field("scenario", result.spec.scenario)
      .field("trials_per_point", static_cast<std::uint64_t>(result.spec.trials))
      .field("seed", result.spec.seed)
      .field("threads", static_cast<std::uint64_t>(result.spec.threads))
      .field("engine", std::string(engine_mode_name(result.spec.engine)))
      .field("shards", static_cast<std::uint64_t>(result.spec.shards))
      .field("grid_points", static_cast<std::uint64_t>(result.points.size()))
      .field("wall_seconds", result.wall_seconds);
  json.key("points").begin_array();
  for (const SweepPoint& point : result.points) {
    append_sweep_point(json, point);
  }
  json.end_array();
  json.end_object();
  return json.str();
}

std::string sweep_csv_header() {
  return "scenario,n,eps,channel,schedule,churn,topology,trials,successes,"
         "success_rate,"
         "success_low,success_high,rounds_mean,rounds_stddev,rounds_min,"
         "rounds_max,messages_mean,messages_stddev,correct_fraction_mean,"
         "convergence_mean,converged,wall_seconds\n";
}

std::string sweep_csv_row(const SweepSpec& spec, const SweepPoint& point) {
  // Doubles (including the possibly-NaN convergence mean) render through
  // JsonWriter::number, which maps non-finite values to "null" — never the
  // locale/platform-dependent "nan"/"inf" spellings of raw streams.
  const TrialSummary& s = point.summary;
  std::string csv;
  csv += spec.scenario;
  csv += ',' + std::to_string(point.config.n);
  csv += ',' + JsonWriter::number(point.config.eps);
  csv += ',' + point.config.channel;
  csv += ',' + point.config.schedule.describe();
  csv += ',' + point.config.churn.describe();
  // TopologySpec::describe() is comma-free by construction ("ring(k=8)"),
  // so it needs no CSV quoting.
  csv += ',' + point.config.topology.describe();
  csv += ',' + std::to_string(s.trials);
  csv += ',' + std::to_string(s.successes);
  csv += ',' + JsonWriter::number(s.success.estimate);
  csv += ',' + JsonWriter::number(s.success.low);
  csv += ',' + JsonWriter::number(s.success.high);
  csv += ',' + JsonWriter::number(s.rounds.mean());
  csv += ',' + JsonWriter::number(s.rounds.stddev());
  csv += ',' + JsonWriter::number(s.rounds.min());
  csv += ',' + JsonWriter::number(s.rounds.max());
  csv += ',' + JsonWriter::number(s.messages.mean());
  csv += ',' + JsonWriter::number(s.messages.stddev());
  csv += ',' + JsonWriter::number(s.correct_fraction.mean());
  csv += ',' + JsonWriter::number(convergence_mean(s));
  csv += ',' + std::to_string(s.converged);
  csv += ',' + JsonWriter::number(s.wall_seconds);
  csv += '\n';
  return csv;
}

std::string sweep_to_csv(const SweepResult& result) {
  std::string csv = sweep_csv_header();
  for (const SweepPoint& point : result.points) {
    csv += sweep_csv_row(result.spec, point);
  }
  return csv;
}

TextTable sweep_table(const SweepResult& result) {
  TextTable table({"n", "eps", "channel", "trials", "success", "rounds",
                   "messages", "correct", "conv round", "wall s"});
  for (const SweepPoint& point : result.points) {
    const TrialSummary& s = point.summary;
    table.row()
        .cell(point.config.n)
        .cell(point.config.eps, 3)
        .cell(point.config.channel)
        .cell(s.trials)
        .cell(s.success.to_string())
        .cell(s.rounds.mean(), 0)
        .cell(s.messages.mean(), 0)
        .cell(s.correct_fraction.mean(), 4)
        // "-" when no trial converged (or the scenario records no probes):
        // a numeric placeholder would read as a real round.
        .cell(s.converged != 0 ? format_fixed(convergence_mean(s), 0)
                               : std::string("-"))
        .cell(point.summary.wall_seconds, 2);
  }
  return table;
}

std::string sweep_to_bench_json(const SweepResult& result,
                                const std::string& experiment,
                                const std::string& git_rev) {
  JsonWriter json;
  json.begin_object()
      .field("bench", "flipsim")
      .field("experiment", experiment)
      .field("git_rev", git_rev);
  json.key("metrics").begin_object();
  const auto metric = [&json](const std::string& name, double value,
                              const char* unit, bool higher_is_better) {
    json.key(name)
        .begin_object()
        .field("value", value)
        .field("unit", unit)
        .field("higher_is_better", higher_is_better)
        .end_object();
  };
  std::size_t total_trials = 0;
  for (const SweepPoint& point : result.points) {
    const std::string key = point_key(result, point);
    metric(key + "_success_rate", point.summary.success.estimate,
           "probability", true);
    metric(key + "_rounds_mean", point.summary.rounds.mean(), "rounds",
           false);
    metric(key + "_messages_mean", point.summary.messages.mean(), "messages",
           false);
    metric(key + "_wall_seconds", point.summary.wall_seconds, "seconds", false);
    total_trials += point.summary.trials;
  }
  metric("sweep_wall_seconds", result.wall_seconds, "seconds", false);
  if (result.wall_seconds > 0.0) {
    metric("sweep_trials_per_second",
           static_cast<double>(total_trials) / result.wall_seconds,
           "trials/s", true);
  }
  json.end_object();  // metrics
  json.key("params")
      .begin_object()
      .field("scenario", result.spec.scenario)
      .field("trials_per_point",
             static_cast<std::uint64_t>(result.spec.trials))
      .field("seed", result.spec.seed)
      .field("engine", std::string(engine_mode_name(result.spec.engine)))
      .field("shards", static_cast<std::uint64_t>(result.spec.shards))
      .field("grid_points", static_cast<std::uint64_t>(result.points.size()))
      .end_object();
  json.end_object();
  return json.str();
}

std::string validation_to_json(const SurrogateValidationResult& result) {
  JsonWriter json;
  json.begin_object()
      .field("schema", "flipsim-validate-v1")
      .field("mc_trials_per_cell",
             static_cast<std::uint64_t>(result.spec.trials))
      .field("surrogate_trials_per_cell",
             static_cast<std::uint64_t>(result.spec.surrogate_trials))
      .field("seed", result.spec.seed)
      .field("static_tolerance", kSurrogateStaticTolerance)
      .field("dynamic_tolerance", kSurrogateDynamicTolerance)
      .field("cells", static_cast<std::uint64_t>(result.cells.size()))
      .field("all_pass", result.all_pass)
      .field("wall_seconds", result.wall_seconds);
  json.key("results").begin_array();
  for (const SurrogateValidationCell& cell : result.cells) {
    json.begin_object()
        .field("scenario", cell.scenario)
        .field("n", static_cast<std::uint64_t>(cell.config.n))
        .field("eps", cell.config.eps)
        .field("channel", cell.config.channel)
        .field("schedule", cell.config.schedule.describe())
        .field("churn", cell.config.churn.describe())
        .field("dynamic", cell.dynamic)
        .field("success_mc", cell.success_mc)
        .field("mc_wilson_low", cell.mc_low)
        .field("mc_wilson_high", cell.mc_high)
        .field("success_surrogate", cell.success_surrogate)
        .field("abs_error", cell.abs_error)
        .field("tolerance", cell.tolerance)
        .field("band", cell.band)
        .field("pass", cell.pass)
        .field("convergence_mc", cell.convergence_mc)
        .field("convergence_surrogate", cell.convergence_surrogate)
        .field("mc_seconds", cell.mc_seconds)
        .field("surrogate_seconds", cell.surrogate_seconds)
        .end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

TextTable validation_table(const SurrogateValidationResult& result) {
  TextTable table({"scenario", "n", "env", "mc", "surrogate", "|err|",
                   "band", "verdict"});
  for (const SurrogateValidationCell& cell : result.cells) {
    table.row()
        .cell(cell.scenario)
        .cell(cell.config.n)
        .cell(cell.dynamic ? "dynamic" : "static")
        .cell(cell.success_mc, 3)
        .cell(cell.success_surrogate, 3)
        .cell(cell.abs_error, 3)
        .cell(cell.band, 3)
        .cell(cell.pass ? "pass" : "FAIL");
  }
  return table;
}

}  // namespace flip::cli
