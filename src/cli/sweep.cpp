#include "cli/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace flip::cli {

namespace {

// Repeated axis values would produce duplicate grid points — and duplicate
// metric keys in the BENCH_*.json trajectory, where JSON parsers silently
// keep only the last one. Order-preserving dedup.
template <typename T>
std::vector<std::optional<T>> axis_values(const std::vector<T>& values) {
  std::vector<std::optional<T>> axis;
  if (values.empty()) {
    axis.push_back(std::nullopt);
    return axis;
  }
  for (const T& value : values) {
    if (std::find(axis.begin(), axis.end(), std::optional<T>(value)) ==
        axis.end()) {
      axis.emplace_back(value);
    }
  }
  return axis;
}

}  // namespace

std::vector<ScenarioConfig> expand_grid(const SweepSpec& spec) {
  const ScenarioRegistry& registry = ScenarioRegistry::instance();
  // Materialize each axis with a one-element "default" entry so the cross
  // product below stays a plain triple loop. nullopt — not a sentinel
  // value — means "use the scenario default", so an explicit 0 still
  // reaches resolve() and fails validation there.
  const auto ns = axis_values(spec.ns);
  const auto epss = axis_values(spec.epss);
  const auto channels = axis_values(spec.channels);

  std::vector<ScenarioConfig> grid;
  grid.reserve(ns.size() * epss.size() * channels.size());
  for (const auto& n : ns) {
    for (const auto& eps : epss) {
      for (const auto& channel : channels) {
        ScenarioOverrides overrides;
        overrides.n = n;
        overrides.eps = eps;
        overrides.channel = channel;
        overrides.engine = spec.engine;
        overrides.shards = spec.shards;
        overrides.schedule = spec.schedule;
        overrides.churn = spec.churn;
        overrides.topology = spec.topology;
        grid.push_back(registry.resolve(spec.scenario, overrides));
      }
    }
  }
  return grid;
}

std::optional<std::string> validate_threads(std::size_t threads,
                                            std::size_t hardware) {
  if (threads == 0) {
    return "--threads: 0 is not a worker count (omit the flag for the "
           "default)";
  }
  // hardware == 0: the runtime cannot detect the core count. Fall back to
  // a floor of 1 — accept any positive request — instead of comparing
  // against an upper bound of 0, which would reject everything.
  if (hardware != 0 && threads > hardware) {
    return "--threads: " + std::to_string(threads) + " is outside 1.." +
           std::to_string(hardware) + " (this machine's hardware "
           "concurrency)";
  }
  return std::nullopt;
}

std::optional<std::string> validate_shards(std::size_t shards) {
  if (shards == 0 || shards > kMaxShards) {
    return "--shards: " + std::to_string(shards) + " is outside 1.." +
           std::to_string(kMaxShards);
  }
  return std::nullopt;
}

std::optional<std::string> validate_eps_values(
    const std::vector<double>& epss) {
  for (const double eps : epss) {
    if (!(eps > 0.0) || eps > 0.5) {
      std::ostringstream os;
      os << "--eps: " << eps << " is outside the model's domain (0, 0.5]";
      return os.str();
    }
  }
  return std::nullopt;
}

std::optional<std::string> validate_engine(std::string_view scenario,
                                           EngineMode engine) {
  const ScenarioInfo* info = ScenarioRegistry::instance().find(scenario);
  if (info == nullptr) {
    return "--scenario: unknown scenario '" + std::string(scenario) +
           "' (see flipsim --list)";
  }
  if (engine == EngineMode::kSurrogate && !info->supports_surrogate) {
    return "--engine: scenario '" + info->name +
           "' has no mean-field surrogate model (the surrogate engine "
           "covers the broadcast/majority/boost families; use --engine "
           "batch or --engine classic here)";
  }
  return std::nullopt;
}

std::optional<std::string> validate_topology(
    std::string_view scenario, const std::optional<TopologySpec>& topology,
    EngineMode engine) {
  const ScenarioInfo* info = ScenarioRegistry::instance().find(scenario);
  if (info == nullptr) {
    return "--scenario: unknown scenario '" + std::string(scenario) +
           "' (see flipsim --list)";
  }
  if (topology && !topology->complete() && !info->supports_topology) {
    return "--topology: scenario '" + info->name +
           "' does not run on a sparse interaction graph (the broadcast/"
           "majority/boost families do; see flipsim --list)";
  }
  // The graph the sweep would actually run: the override when given, the
  // registered default otherwise — the preset topology entries are sparse
  // without any flag on the command line.
  const TopologySpec& effective =
      topology ? *topology : info->default_topology;
  if (engine == EngineMode::kSurrogate && !effective.complete()) {
    return "--engine: scenario '" + info->name +
           "': the mean-field surrogate engine models the complete "
           "interaction graph only, not topology '" + effective.describe() +
           "'; use --engine batch or --engine classic";
  }
  return std::nullopt;
}

SweepResult run_sweep(const SweepSpec& spec, const SweepPointSink& on_point) {
  if (spec.trials == 0) {
    throw std::invalid_argument("run_sweep: trials == 0");
  }
  const ScenarioRegistry& registry = ScenarioRegistry::instance();
  // Validates every point (including the scenario name) up front, so a
  // typo fails fast instead of after minutes of simulation.
  const std::vector<ScenarioConfig> grid = expand_grid(spec);
  if (spec.first_cell > grid.size()) {
    throw std::invalid_argument(
        "run_sweep: first_cell " + std::to_string(spec.first_cell) +
        " is past the " + std::to_string(grid.size()) +
        "-cell grid (stale checkpoint for a different spec?)");
  }

  // One persistent pool serves every grid cell of every sweep: workers are
  // spawned once per distinct --threads value and then live for the whole
  // process, so the per-worker TrialArena scratch (thread_local) survives
  // across cells and repeated run_sweep calls instead of being torn down
  // and re-allocated with a per-sweep pool.
  ThreadPool* pool =
      spec.threads != 0 ? &ThreadPool::sized(spec.threads) : nullptr;

  SweepResult result;
  result.spec = spec;
  if (spec.collect_points) {
    result.points.reserve(grid.size() - spec.first_cell);
  }
  const auto sweep_start = std::chrono::steady_clock::now();
  for (std::size_t cell = spec.first_cell; cell < grid.size(); ++cell) {
    TrialOptions options;
    options.trials = spec.trials;
    options.master_seed = spec.seed;
    options.pool = pool;
    SweepPoint point;
    point.config = grid[cell];
    point.summary =
        run_trials(registry.make(spec.scenario, point.config), options);
    if (on_point) on_point(cell, point);
    if (spec.collect_points) result.points.push_back(std::move(point));
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();
  return result;
}

SurrogateValidationResult run_surrogate_validation(
    const SurrogateValidationSpec& spec) {
  if (spec.trials == 0 || spec.surrogate_trials == 0) {
    throw std::invalid_argument("run_surrogate_validation: zero trials");
  }
  const ScenarioRegistry& registry = ScenarioRegistry::instance();

  std::vector<std::string> scenarios = spec.scenarios;
  if (scenarios.empty()) {
    for (const ScenarioInfo* info : registry.list()) {
      if (info->supports_surrogate) scenarios.push_back(info->name);
    }
  } else {
    for (const std::string& name : scenarios) {
      const ScenarioInfo* info = registry.find(name);
      if (info == nullptr) {
        throw std::invalid_argument("run_surrogate_validation: unknown "
                                    "scenario '" + name + "'");
      }
      if (!info->supports_surrogate) {
        throw std::invalid_argument(
            "run_surrogate_validation: scenario '" + name +
            "' has no surrogate model to validate");
      }
    }
  }

  ThreadPool* pool =
      spec.threads != 0 ? &ThreadPool::sized(spec.threads) : nullptr;
  SurrogateValidationResult result;
  result.spec = spec;
  const auto start = std::chrono::steady_clock::now();
  for (const std::string& name : scenarios) {
    for (const std::size_t n : spec.ns) {
      ScenarioOverrides overrides;
      overrides.n = n;

      SurrogateValidationCell cell;
      cell.scenario = name;
      overrides.engine = EngineMode::kBatch;
      cell.config = registry.resolve(name, overrides);
      cell.dynamic =
          cell.config.schedule.enabled() || cell.config.churn.enabled();

      TrialOptions mc_options;
      mc_options.trials = spec.trials;
      mc_options.master_seed = spec.seed;
      mc_options.pool = pool;
      const TrialSummary mc =
          run_trials(registry.make(name, cell.config), mc_options);

      // The surrogate side: one analysis, surrogate_trials stratified
      // outcomes — recovers the analytic probability to 1/surrogate_trials
      // through the exact same TrialSummary surface the MC side uses.
      overrides.engine = EngineMode::kSurrogate;
      const ScenarioConfig surrogate_config = registry.resolve(name, overrides);
      TrialOptions sur_options = mc_options;
      sur_options.trials = spec.surrogate_trials;
      const TrialSummary sur =
          run_trials(registry.make(name, surrogate_config), sur_options);

      cell.success_mc = mc.success.estimate;
      cell.mc_low = mc.success.low;
      cell.mc_high = mc.success.high;
      cell.success_surrogate = sur.success.estimate;
      cell.abs_error = std::abs(cell.success_surrogate - cell.success_mc);
      cell.tolerance = cell.dynamic ? kSurrogateDynamicTolerance
                                    : kSurrogateStaticTolerance;
      cell.band = 0.5 * (cell.mc_high - cell.mc_low) + cell.tolerance;
      cell.pass = cell.abs_error <= cell.band;
      const auto conv_mean = [](const TrialSummary& s) {
        return s.converged != 0
                   ? s.convergence_rounds.mean()
                   : std::numeric_limits<double>::quiet_NaN();
      };
      cell.convergence_mc = conv_mean(mc);
      cell.convergence_surrogate = conv_mean(sur);
      cell.mc_seconds = mc.wall_seconds;
      cell.surrogate_seconds = sur.wall_seconds;
      result.all_pass = result.all_pass && cell.pass;
      result.cells.push_back(std::move(cell));
    }
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return result;
}

}  // namespace flip::cli
