#include "cli/sweep.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>

namespace flip::cli {

namespace {

// Repeated axis values would produce duplicate grid points — and duplicate
// metric keys in the BENCH_*.json trajectory, where JSON parsers silently
// keep only the last one. Order-preserving dedup.
template <typename T>
std::vector<std::optional<T>> axis_values(const std::vector<T>& values) {
  std::vector<std::optional<T>> axis;
  if (values.empty()) {
    axis.push_back(std::nullopt);
    return axis;
  }
  for (const T& value : values) {
    if (std::find(axis.begin(), axis.end(), std::optional<T>(value)) ==
        axis.end()) {
      axis.emplace_back(value);
    }
  }
  return axis;
}

}  // namespace

std::vector<ScenarioConfig> expand_grid(const SweepSpec& spec) {
  const ScenarioRegistry& registry = ScenarioRegistry::instance();
  // Materialize each axis with a one-element "default" entry so the cross
  // product below stays a plain triple loop. nullopt — not a sentinel
  // value — means "use the scenario default", so an explicit 0 still
  // reaches resolve() and fails validation there.
  const auto ns = axis_values(spec.ns);
  const auto epss = axis_values(spec.epss);
  const auto channels = axis_values(spec.channels);

  std::vector<ScenarioConfig> grid;
  grid.reserve(ns.size() * epss.size() * channels.size());
  for (const auto& n : ns) {
    for (const auto& eps : epss) {
      for (const auto& channel : channels) {
        ScenarioOverrides overrides;
        overrides.n = n;
        overrides.eps = eps;
        overrides.channel = channel;
        overrides.engine = spec.engine;
        overrides.shards = spec.shards;
        overrides.schedule = spec.schedule;
        overrides.churn = spec.churn;
        grid.push_back(registry.resolve(spec.scenario, overrides));
      }
    }
  }
  return grid;
}

std::optional<std::string> validate_threads(std::size_t threads,
                                            std::size_t hardware) {
  if (threads == 0) {
    return "--threads: 0 is not a worker count (omit the flag for the "
           "default)";
  }
  // hardware == 0: the runtime cannot detect the core count. Fall back to
  // a floor of 1 — accept any positive request — instead of comparing
  // against an upper bound of 0, which would reject everything.
  if (hardware != 0 && threads > hardware) {
    return "--threads: " + std::to_string(threads) + " is outside 1.." +
           std::to_string(hardware) + " (this machine's hardware "
           "concurrency)";
  }
  return std::nullopt;
}

std::optional<std::string> validate_shards(std::size_t shards) {
  if (shards == 0 || shards > kMaxShards) {
    return "--shards: " + std::to_string(shards) + " is outside 1.." +
           std::to_string(kMaxShards);
  }
  return std::nullopt;
}

std::optional<std::string> validate_eps_values(
    const std::vector<double>& epss) {
  for (const double eps : epss) {
    if (!(eps > 0.0) || eps > 0.5) {
      std::ostringstream os;
      os << "--eps: " << eps << " is outside the model's domain (0, 0.5]";
      return os.str();
    }
  }
  return std::nullopt;
}

SweepResult run_sweep(const SweepSpec& spec) {
  if (spec.trials == 0) {
    throw std::invalid_argument("run_sweep: trials == 0");
  }
  const ScenarioRegistry& registry = ScenarioRegistry::instance();
  // Validates every point (including the scenario name) up front, so a
  // typo fails fast instead of after minutes of simulation.
  const std::vector<ScenarioConfig> grid = expand_grid(spec);

  // One persistent pool serves every grid cell of every sweep: workers are
  // spawned once per distinct --threads value and then live for the whole
  // process, so the per-worker BatchEngine scratch (thread_local) survives
  // across cells and repeated run_sweep calls instead of being torn down
  // and re-allocated with a per-sweep pool.
  ThreadPool* pool =
      spec.threads != 0 ? &ThreadPool::sized(spec.threads) : nullptr;

  SweepResult result;
  result.spec = spec;
  result.points.reserve(grid.size());
  const auto sweep_start = std::chrono::steady_clock::now();
  for (const ScenarioConfig& config : grid) {
    TrialOptions options;
    options.trials = spec.trials;
    options.master_seed = spec.seed;
    options.pool = pool;
    SweepPoint point;
    point.config = config;
    point.summary =
        run_trials(registry.make(spec.scenario, config), options);
    result.points.push_back(std::move(point));
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();
  return result;
}

}  // namespace flip::cli
