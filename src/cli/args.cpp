#include "cli/args.hpp"

#include <algorithm>
#include <charconv>
#include <sstream>
#include <stdexcept>

namespace flip::cli {

namespace {

bool parse_size_value(std::string_view text, std::size_t& out) {
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && end == text.data() + text.size();
}

bool parse_uint64_value(std::string_view text, std::uint64_t& out) {
  // Seeds are conventionally hex in this repo (0xE1, 0x5eed).
  int base = 10;
  if (text.starts_with("0x") || text.starts_with("0X")) {
    text.remove_prefix(2);
    base = 16;
  }
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out, base);
  return ec == std::errc{} && end == text.data() + text.size();
}

bool parse_double_value(std::string_view text, double& out) {
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && end == text.data() + text.size();
}

}  // namespace

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser::Spec* ArgParser::find(std::string_view name) {
  for (Spec& spec : specs_) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

void ArgParser::add_flag(std::string name, std::string help, bool* out) {
  *out = false;
  Spec spec{std::move(name), "", std::move(help), Kind::kFlag, nullptr, out};
  specs_.push_back(std::move(spec));
}

void ArgParser::add_option(std::string name, std::string value_name,
                           std::string help, std::string* out) {
  Spec spec{std::move(name), std::move(value_name), std::move(help),
            Kind::kValue,
            [out](std::string_view value, std::string&) {
              *out = std::string(value);
              return true;
            },
            nullptr};
  specs_.push_back(std::move(spec));
}

void ArgParser::add_optional_value(std::string name, std::string value_name,
                                   std::string help, std::string* out,
                                   bool* present) {
  *present = false;
  Spec spec{std::move(name), std::move(value_name), std::move(help),
            Kind::kOptionalValue,
            [out](std::string_view value, std::string&) {
              *out = std::string(value);
              return true;
            },
            present};
  specs_.push_back(std::move(spec));
}

void ArgParser::add_size(std::string name, std::string help,
                         std::optional<std::size_t>* out) {
  const std::string flag = name;
  Spec spec{std::move(name), "N", std::move(help), Kind::kValue,
            [out, flag](std::string_view value, std::string& error) {
              std::size_t parsed = 0;
              if (!parse_size_value(value, parsed)) {
                error = flag + ": not a non-negative integer: '" +
                        std::string(value) + "'";
                return false;
              }
              *out = parsed;
              return true;
            },
            nullptr};
  specs_.push_back(std::move(spec));
}

void ArgParser::add_double(std::string name, std::string help,
                           std::optional<double>* out) {
  const std::string flag = name;
  Spec spec{std::move(name), "X", std::move(help), Kind::kValue,
            [out, flag](std::string_view value, std::string& error) {
              double parsed = 0.0;
              if (!parse_double_value(value, parsed)) {
                error =
                    flag + ": not a number: '" + std::string(value) + "'";
                return false;
              }
              *out = parsed;
              return true;
            },
            nullptr};
  specs_.push_back(std::move(spec));
}

void ArgParser::add_uint64(std::string name, std::string help,
                           std::optional<std::uint64_t>* out) {
  const std::string flag = name;
  Spec spec{std::move(name), "N", std::move(help), Kind::kValue,
            [out, flag](std::string_view value, std::string& error) {
              std::uint64_t parsed = 0;
              if (!parse_uint64_value(value, parsed)) {
                error = flag + ": not an integer (decimal or 0x hex): '" +
                        std::string(value) + "'";
                return false;
              }
              *out = parsed;
              return true;
            },
            nullptr};
  specs_.push_back(std::move(spec));
}

bool ArgParser::parse(int argc, const char* const* argv) {
  bool only_positionals = false;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (only_positionals) {
      positionals_.emplace_back(arg);
      continue;
    }
    if (arg == "--") {
      only_positionals = true;
      continue;
    }
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      return false;
    }
    if (!arg.starts_with("--")) {
      positionals_.emplace_back(arg);
      continue;
    }

    std::string_view name = arg;
    std::optional<std::string_view> inline_value;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }
    Spec* spec = find(name);
    if (spec == nullptr) {
      error_ = "unknown option '" + std::string(name) + "'";
      return false;
    }

    switch (spec->kind) {
      case Kind::kFlag:
        if (inline_value) {
          error_ = std::string(name) + " takes no value";
          return false;
        }
        *spec->present = true;
        break;
      case Kind::kValue: {
        std::string_view value;
        if (inline_value) {
          value = *inline_value;
        } else if (i + 1 < argc) {
          value = argv[++i];
        } else {
          error_ = std::string(name) + " requires a value";
          return false;
        }
        if (!spec->apply(value, error_)) return false;
        break;
      }
      case Kind::kOptionalValue: {
        *spec->present = true;
        if (inline_value) {
          if (!spec->apply(*inline_value, error_)) return false;
        } else if (i + 1 < argc &&
                   !std::string_view(argv[i + 1]).starts_with("-")) {
          if (!spec->apply(argv[++i], error_)) return false;
        }
        break;
      }
    }
  }
  return true;
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << "usage: " << program_ << " [options]\n";
  if (!description_.empty()) os << description_ << "\n";
  os << "\noptions:\n";
  std::size_t width = 0;
  std::vector<std::string> lefts;
  lefts.reserve(specs_.size() + 1);
  for (const Spec& spec : specs_) {
    std::string left = "  " + spec.name;
    if (spec.kind == Kind::kValue) {
      left += " <" + spec.value_name + ">";
    } else if (spec.kind == Kind::kOptionalValue) {
      left += " [" + spec.value_name + "]";
    }
    width = std::max(width, left.size());
    lefts.push_back(std::move(left));
  }
  lefts.push_back("  --help, -h");
  width = std::max(width, lefts.back().size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    os << lefts[i] << std::string(width - lefts[i].size() + 2, ' ')
       << specs_[i].help << "\n";
  }
  os << lefts.back() << std::string(width - lefts.back().size() + 2, ' ')
     << "show this help\n";
  return os.str();
}

std::vector<std::string> split_list(std::string_view text) {
  std::vector<std::string> pieces;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::size_t end = comma == std::string_view::npos ? text.size()
                                                            : comma;
    if (end > start) pieces.emplace_back(text.substr(start, end - start));
    if (comma == std::string_view::npos) break;
    start = comma + 1;
  }
  return pieces;
}

std::optional<std::vector<std::size_t>> parse_size_list(std::string_view text,
                                                        std::string& error) {
  std::vector<std::size_t> values;
  for (const std::string& piece : split_list(text)) {
    std::size_t value = 0;
    if (!parse_size_value(piece, value)) {
      error = "not a non-negative integer: '" + piece + "'";
      return std::nullopt;
    }
    values.push_back(value);
  }
  if (values.empty()) {
    error = "empty list";
    return std::nullopt;
  }
  return values;
}

std::optional<std::vector<double>> parse_double_list(std::string_view text,
                                                     std::string& error) {
  std::vector<double> values;
  for (const std::string& piece : split_list(text)) {
    double value = 0.0;
    if (!parse_double_value(piece, value)) {
      error = "not a number: '" + piece + "'";
      return std::nullopt;
    }
    values.push_back(value);
  }
  if (values.empty()) {
    error = "empty list";
    return std::nullopt;
  }
  return values;
}

}  // namespace flip::cli
