#pragma once
// Declarative command-line parsing shared by tools/flipsim and every
// bench/ binary (via bench_common.hpp). Options are registered up front so
// --help is generated, unknown flags are errors instead of silently
// ignored, and the 16 bench binaries stop re-implementing argv loops.
//
// Supported shapes: "--flag", "--opt value", "--opt=value", and options
// whose value is optional ("--json" writes to stdout, "--json path" to a
// file). "-h" is an alias for "--help". Everything after "--" is
// positional.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace flip::cli {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Boolean switch: present -> *out = true.
  void add_flag(std::string name, std::string help, bool* out);

  /// Option with a required value.
  void add_option(std::string name, std::string value_name, std::string help,
                  std::string* out);
  /// Option whose value may be omitted: present without a value sets
  /// `*present` and leaves *out unchanged (e.g. bare "--json" = stdout).
  void add_optional_value(std::string name, std::string value_name,
                          std::string help, std::string* out, bool* present);

  /// Typed conveniences over add_option; parse errors are reported with
  /// the offending text.
  void add_size(std::string name, std::string help,
                std::optional<std::size_t>* out);
  void add_double(std::string name, std::string help,
                  std::optional<double>* out);
  void add_uint64(std::string name, std::string help,
                  std::optional<std::uint64_t>* out);

  /// Parses argv. Returns false when --help was requested (usage already
  /// considered handled by the caller printing usage()) or on error
  /// (error() is non-empty). Callable once.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] bool help_requested() const noexcept { return help_; }
  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] const std::vector<std::string>& positionals() const noexcept {
    return positionals_;
  }
  /// "usage: ..." plus one aligned line per registered option.
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kFlag, kValue, kOptionalValue };
  struct Spec {
    std::string name;  // including leading "--"
    std::string value_name;
    std::string help;
    Kind kind;
    std::function<bool(std::string_view value, std::string& error)> apply;
    bool* present = nullptr;  // kFlag / kOptionalValue
  };

  Spec* find(std::string_view name);

  std::string program_;
  std::string description_;
  std::vector<Spec> specs_;
  std::vector<std::string> positionals_;
  std::string error_;
  bool help_ = false;
};

/// Splits "1024,2048,4096" into size_t values; returns nullopt (with
/// `error` set) on any unparsable piece. Used for sweep grid flags.
std::optional<std::vector<std::size_t>> parse_size_list(std::string_view text,
                                                        std::string& error);
std::optional<std::vector<double>> parse_double_list(std::string_view text,
                                                     std::string& error);
std::vector<std::string> split_list(std::string_view text);

}  // namespace flip::cli
