#pragma once
// Shared option handling and output for the bench/ experiment binaries.
// bench_common.hpp forwards here, so all 16 binaries get the same flags
// from one parser: --csv (machine rows to stdout), --json <path> (the
// "flip-bench-v1" document), and a generated --help. The report
// accumulates every emitted table, and the JSON file is rewritten after
// each emit so partial output exists even if a later experiment aborts.

#include <memory>
#include <string>
#include <vector>

#include "util/table.hpp"

namespace flip::cli {

/// Everything a bench binary printed so far, in emit order.
struct BenchReport {
  std::string id;     ///< e.g. "E1 bench_broadcast_rounds"
  std::string claim;  ///< the paper claim the banner names
  struct Table {
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
    std::string note;
  };
  std::vector<Table> tables;
};

struct BenchOptions {
  bool csv = false;
  std::string json_path;  ///< empty = no JSON output
  /// Mutable accumulation behind a const Options value: the bench main()s
  /// hold `const auto options = parse_args(...)` by long-standing
  /// convention, but banner/emit still need somewhere to collect tables.
  std::shared_ptr<BenchReport> report = std::make_shared<BenchReport>();
};

/// Parses the shared bench flags. On --help prints usage and exits 0; on a
/// parse error prints the error plus usage to stderr and exits 2 — bench
/// main()s stay one-liners.
[[nodiscard]] BenchOptions parse_bench_args(int argc,
                                            const char* const* argv);

/// Prints the experiment banner (suppressed under --csv) and records
/// id/claim for the JSON document.
void bench_banner(const BenchOptions& options, const std::string& id,
                  const std::string& claim);

/// Prints the table (CSV rows under --csv, rendered table + note
/// otherwise) and, when --json was given, rewrites the JSON report file
/// with every table emitted so far.
void bench_emit(const BenchOptions& options, const TextTable& table,
                const std::string& note = {});

/// The "flip-bench-v1" document for a report (exposed for tests).
[[nodiscard]] std::string bench_report_to_json(const BenchReport& report);

}  // namespace flip::cli
