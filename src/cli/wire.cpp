#include "cli/wire.hpp"

#include <charconv>
#include <thread>
#include <vector>

#include "cli/args.hpp"
#include "sim/engine.hpp"

namespace flip::cli {

namespace {

const char* command_name(WireCommand command) {
  switch (command) {
    case WireCommand::kSweep: return "sweep";
    case WireCommand::kPing: return "ping";
    case WireCommand::kShutdown: return "shutdown";
  }
  return "sweep";
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  int base = 10;
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    base = 16;
    text.remove_prefix(2);
  }
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, out, base);
  return ec == std::errc() && ptr == end && !text.empty();
}

void append_field(std::string& out, std::string_view key,
                  std::string_view value) {
  out.append(key);
  out.push_back('=');
  out.append(value);
  out.push_back('\n');
}

}  // namespace

std::string encode_sweep_request(const SweepRequest& request) {
  std::string out(kWireProto);
  out.push_back(' ');
  out.append(command_name(request.command));
  out.push_back('\n');
  if (request.command != WireCommand::kSweep) return out;
  // Defaulted fields are omitted, so encodings are canonical: two
  // requests are equivalent iff their encodings are byte-equal (the
  // checkpoint spec-match rule relies on this).
  if (!request.scenario.empty()) {
    append_field(out, "scenario", request.scenario);
  }
  if (!request.ns.empty()) append_field(out, "n", request.ns);
  if (!request.epss.empty()) append_field(out, "eps", request.epss);
  if (!request.channels.empty()) {
    append_field(out, "channel", request.channels);
  }
  if (request.trials != 32) {
    append_field(out, "trials", std::to_string(request.trials));
  }
  if (request.seed != 0x5eedULL) {
    append_field(out, "seed", std::to_string(request.seed));
  }
  if (request.threads != 0) {
    append_field(out, "threads", std::to_string(request.threads));
  }
  if (request.shards != 1) {
    append_field(out, "shards", std::to_string(request.shards));
  }
  if (request.engine != "batch") append_field(out, "engine", request.engine);
  if (!request.schedule.empty()) {
    append_field(out, "schedule", request.schedule);
  }
  if (!request.churn.empty()) append_field(out, "churn", request.churn);
  if (!request.topology.empty()) {
    append_field(out, "topology", request.topology);
  }
  if (request.resume_from != 0) {
    append_field(out, "resume_from", std::to_string(request.resume_from));
  }
  return out;
}

std::optional<SweepRequest> parse_sweep_request(std::string_view text,
                                                std::string& error) {
  SweepRequest request;
  std::size_t pos = 0;
  bool first = true;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (first) {
      first = false;
      const std::size_t space = line.find(' ');
      const std::string_view proto = line.substr(0, space);
      if (proto != kWireProto) {
        error = "unsupported protocol '" + std::string(proto) +
                "' (expected " + std::string(kWireProto) + ")";
        return std::nullopt;
      }
      const std::string_view command =
          space == std::string_view::npos ? "sweep" : line.substr(space + 1);
      if (command == "sweep") {
        request.command = WireCommand::kSweep;
      } else if (command == "ping") {
        request.command = WireCommand::kPing;
      } else if (command == "shutdown") {
        request.command = WireCommand::kShutdown;
      } else {
        error = "unknown command '" + std::string(command) + "'";
        return std::nullopt;
      }
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      error = "malformed line '" + std::string(line) + "' (expected key=value)";
      return std::nullopt;
    }
    const std::string_view key = line.substr(0, eq);
    const std::string_view value = line.substr(eq + 1);
    std::uint64_t number = 0;
    if (key == "scenario") {
      request.scenario = value;
    } else if (key == "n") {
      request.ns = value;
    } else if (key == "eps") {
      request.epss = value;
    } else if (key == "channel") {
      request.channels = value;
    } else if (key == "engine") {
      request.engine = value;
    } else if (key == "schedule") {
      request.schedule = value;
    } else if (key == "churn") {
      request.churn = value;
    } else if (key == "topology") {
      request.topology = value;
    } else if (key == "trials" || key == "seed" || key == "threads" ||
               key == "shards" || key == "resume_from") {
      if (!parse_u64(value, number)) {
        error = "bad number '" + std::string(value) + "' for key '" +
                std::string(key) + "'";
        return std::nullopt;
      }
      if (key == "trials") request.trials = static_cast<std::size_t>(number);
      if (key == "seed") request.seed = number;
      if (key == "threads") request.threads = static_cast<std::size_t>(number);
      if (key == "shards") request.shards = static_cast<std::size_t>(number);
      if (key == "resume_from") {
        request.resume_from = static_cast<std::size_t>(number);
      }
    } else {
      error = "unknown key '" + std::string(key) + "'";
      return std::nullopt;
    }
  }
  if (first) {
    error = "empty request";
    return std::nullopt;
  }
  return request;
}

std::optional<std::string> resolve_sweep_request(const SweepRequest& request,
                                                 SweepSpec& spec) {
  spec = SweepSpec{};
  spec.scenario = request.scenario;
  std::string error;
  // The validation order is tools/flipsim.cpp's, so CLI and server reject
  // a bad request with the same message at the same stage.
  if (!request.ns.empty()) {
    const auto ns = parse_size_list(request.ns, error);
    if (!ns) return "--n: " + error;
    spec.ns = *ns;
  }
  if (!request.epss.empty()) {
    const auto epss = parse_double_list(request.epss, error);
    if (!epss) return "--eps: " + error;
    if (const auto eps_error = validate_eps_values(*epss)) return eps_error;
    spec.epss = *epss;
  }
  if (!request.channels.empty()) {
    spec.channels = split_list(request.channels);
    if (spec.channels.empty()) return "--channel: empty list";
  }
  spec.trials = request.trials;
  spec.seed = request.seed;
  if (request.threads != 0) {
    if (const auto threads_error = validate_threads(
            request.threads, std::thread::hardware_concurrency())) {
      return threads_error;
    }
    spec.threads = request.threads;
  }
  if (request.shards != 1) {
    if (const auto shards_error = validate_shards(request.shards)) {
      return shards_error;
    }
  }
  spec.shards = request.shards;
  if (!request.schedule.empty()) {
    try {
      spec.schedule = EnvironmentSchedule::parse(request.schedule);
    } catch (const std::invalid_argument& e) {
      return "--schedule: " + std::string(e.what());
    }
  }
  if (!request.churn.empty()) {
    try {
      spec.churn = ChurnSpec::parse(request.churn);
    } catch (const std::invalid_argument& e) {
      return "--churn: " + std::string(e.what());
    }
  }
  if (!request.topology.empty()) {
    try {
      spec.topology = TopologySpec::parse(request.topology);
    } catch (const std::invalid_argument& e) {
      return "--topology: " + std::string(e.what());
    }
  }
  if (const auto mode = parse_engine_mode(request.engine)) {
    spec.engine = *mode;
  } else {
    return "--engine: unknown mode '" + request.engine +
           "' (batch | classic | surrogate)";
  }
  if (!request.scenario.empty()) {
    if (const auto engine_error =
            validate_engine(request.scenario, spec.engine)) {
      return engine_error;
    }
    if (const auto topology_error = validate_topology(
            request.scenario, spec.topology, spec.engine)) {
      return topology_error;
    }
  }
  spec.first_cell = request.resume_from;
  return std::nullopt;
}

std::string encode_checkpoint(const SweepRequest& request,
                              std::size_t next_cell, std::size_t grid_cells) {
  std::string out(kCheckpointProto);
  out += " next_cell=" + std::to_string(next_cell) +
         " grid=" + std::to_string(grid_cells) + "\n";
  // The request rides along verbatim (resume_from excluded: a checkpoint's
  // position IS next_cell), so --resume can verify the sweep on the
  // command line is the sweep the file belongs to.
  SweepRequest canonical = request;
  canonical.resume_from = 0;
  out += encode_sweep_request(canonical);
  return out;
}

std::optional<Checkpoint> parse_checkpoint(std::string_view text,
                                           std::string& error) {
  std::size_t eol = text.find('\n');
  if (eol == std::string_view::npos) eol = text.size();
  const std::string_view head = text.substr(0, eol);
  std::size_t space = head.find(' ');
  const std::string_view proto = head.substr(0, space);
  if (proto != kCheckpointProto) {
    error = "not a checkpoint file (expected leading '" +
            std::string(kCheckpointProto) + "')";
    return std::nullopt;
  }
  Checkpoint checkpoint;
  bool have_next = false;
  while (space != std::string_view::npos) {
    const std::size_t start = space + 1;
    space = head.find(' ', start);
    const std::string_view token =
        head.substr(start, space == std::string_view::npos ? std::string_view::npos
                                                           : space - start);
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos) continue;
    const std::string_view key = token.substr(0, eq);
    std::uint64_t number = 0;
    if (!parse_u64(token.substr(eq + 1), number)) {
      error = "bad checkpoint header token '" + std::string(token) + "'";
      return std::nullopt;
    }
    if (key == "next_cell") {
      checkpoint.next_cell = static_cast<std::size_t>(number);
      have_next = true;
    } else if (key == "grid") {
      checkpoint.grid_cells = static_cast<std::size_t>(number);
    } else {
      error = "unknown checkpoint header key '" + std::string(key) + "'";
      return std::nullopt;
    }
  }
  if (!have_next) {
    error = "checkpoint header has no next_cell";
    return std::nullopt;
  }
  const auto request = parse_sweep_request(
      eol < text.size() ? text.substr(eol + 1) : std::string_view{}, error);
  if (!request) {
    error = "checkpoint request: " + error;
    return std::nullopt;
  }
  checkpoint.request = *request;
  return checkpoint;
}

}  // namespace flip::cli
