#include "cli/bench_report.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>

#include "cli/args.hpp"
#include "util/json_writer.hpp"

namespace flip::cli {

BenchOptions parse_bench_args(int argc, const char* const* argv) {
  BenchOptions options;
  ArgParser parser(argc > 0 ? argv[0] : "bench",
                   "flip experiment harness binary (see docs/BENCHMARKS.md)");
  parser.add_flag("--csv", "emit table rows as CSV instead of rendering",
                  &options.csv);
  parser.add_option("--json", "path",
                    "also write the flip-bench-v1 JSON report to <path>",
                    &options.json_path);
  if (!parser.parse(argc, argv)) {
    if (parser.help_requested()) {
      std::cout << parser.usage();
      std::exit(0);
    }
    std::cerr << "error: " << parser.error() << "\n\n" << parser.usage();
    std::exit(2);
  }
  return options;
}

void bench_banner(const BenchOptions& options, const std::string& id,
                  const std::string& claim) {
  options.report->id = id;
  options.report->claim = claim;
  if (options.csv) return;
  std::cout << "=== " << id << " ===\n" << claim << "\n\n";
}

std::string bench_report_to_json(const BenchReport& report) {
  JsonWriter json;
  json.begin_object()
      .field("schema", "flip-bench-v1")
      .field("id", report.id)
      .field("claim", report.claim);
  json.key("tables").begin_array();
  for (const BenchReport::Table& table : report.tables) {
    json.begin_object();
    json.key("headers").begin_array();
    for (const std::string& header : table.headers) json.value(header);
    json.end_array();
    json.key("rows").begin_array();
    for (const auto& row : table.rows) {
      json.begin_array();
      for (const std::string& cell : row) json.value(cell);
      json.end_array();
    }
    json.end_array();
    json.field("note", table.note);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

void bench_emit(const BenchOptions& options, const TextTable& table,
                const std::string& note) {
  if (options.csv) {
    std::cout << table.csv();
  } else {
    std::cout << table << '\n';
    if (!note.empty()) std::cout << note << "\n\n";
  }

  if (options.json_path.empty()) return;
  BenchReport::Table recorded;
  recorded.headers = table.headers();
  recorded.rows.reserve(table.rows());
  for (std::size_t r = 0; r < table.rows(); ++r) {
    std::vector<std::string> row;
    row.reserve(table.columns());
    for (std::size_t c = 0; c < table.columns(); ++c) {
      row.push_back(table.at(r, c));
    }
    recorded.rows.push_back(std::move(row));
  }
  recorded.note = note;
  options.report->tables.push_back(std::move(recorded));

  std::ofstream out(options.json_path);
  if (!out) {
    std::cerr << "error: cannot write " << options.json_path << "\n";
    std::exit(1);
  }
  out << bench_report_to_json(*options.report) << '\n';
}

}  // namespace flip::cli
