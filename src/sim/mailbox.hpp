#pragma once
// One-round message routing with the Flip model's reception rule:
// "If an agent receives several messages at the same round, it can only
//  accept one of them (chosen uniformly at random), and all other messages
//  are dropped." (Section 1.3.2)
//
// Implementation: every pushed message picks a uniform recipient (excluding
// the sender — the model says "another agent"); per recipient we keep one
// accepted message by reservoir sampling, so acceptance is uniform among
// that round's arrivals without buffering them. Reset between rounds is
// O(#touched recipients), not O(n).

#include <cstdint>
#include <vector>

#include "net/message.hpp"
#include "util/rng.hpp"

namespace flip {

class Mailbox {
 public:
  /// Routing fabric for a population of n agents. Precondition: n >= 2.
  explicit Mailbox(std::size_t n);

  /// Routes one message from `msg.sender` to a uniformly random other agent,
  /// applying the reservoir acceptance rule at the destination. Defined
  /// inline: this is the per-message hot path of every engine round.
  void push(const Message& msg, Xoshiro256& rng) {
    // Uniform over the n-1 agents other than the sender.
    auto to = static_cast<AgentId>(
        uniform_index(rng, arrival_count_.size() - 1));
    if (to >= msg.sender) ++to;
    push_to(to, msg, rng);
  }

  /// Delivers a message directly to `to` (used by tests and by baselines
  /// that model non-anonymous delivery); same acceptance rule applies.
  void push_to(AgentId to, const Message& msg, Xoshiro256& rng) {
    ++pushed_;
    const std::uint32_t k = ++arrival_count_[to];
    if (k == 1) {
      touched_.push_back(to);
      kept_[to] = msg;
    } else if (uniform_index(rng, k) == 0) {
      // Reservoir step: the k-th arrival replaces the kept one w.p. 1/k,
      // making the kept message uniform among all k arrivals.
      kept_[to] = msg;
    }
  }

  /// Recipients that accepted a message this round, in touch order.
  [[nodiscard]] const std::vector<AgentId>& recipients() const noexcept {
    return touched_;
  }

  /// The message accepted by `to` this round. Precondition: `to` appears in
  /// recipients().
  [[nodiscard]] const Message& accepted(AgentId to) const {
    return kept_[to];
  }

  /// Messages that arrived at `to` this round (accepted + dropped).
  [[nodiscard]] std::uint32_t arrivals(AgentId to) const noexcept {
    return arrival_count_[to];
  }

  [[nodiscard]] std::uint64_t pushed_this_round() const noexcept {
    return pushed_;
  }
  /// Arrivals beyond the first at each recipient — the model's drops.
  [[nodiscard]] std::uint64_t dropped_this_round() const noexcept {
    return pushed_ - touched_.size();
  }

  /// Clears round state. Must be called between rounds.
  void reset() noexcept;

  /// Allocation-free re-initialization for a (possibly different) population:
  /// equivalent to constructing Mailbox(n) but reusing the touched/accepted
  /// buffers, so a long-lived engine pays no heap churn between trials.
  /// Throws std::invalid_argument if n < 2, like the constructor.
  void reuse(std::size_t n);

  [[nodiscard]] std::size_t population() const noexcept {
    return arrival_count_.size();
  }

 private:
  std::vector<std::uint32_t> arrival_count_;
  std::vector<Message> kept_;
  std::vector<AgentId> touched_;
  std::uint64_t pushed_ = 0;
};

}  // namespace flip
