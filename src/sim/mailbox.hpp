#pragma once
// One-round message routing with the Flip model's reception rule:
// "If an agent receives several messages at the same round, it can only
//  accept one of them (chosen uniformly at random), and all other messages
//  are dropped." (Section 1.3.2)
//
// Two acceptance implementations coexist, both uniform among arrivals:
//
//  * offer(): priority-keyed acceptance — every message carries a 64-bit
//    priority drawn from its SENDER's counter stream, and a recipient keeps
//    the arrival with the smallest (priority, sender) pair. min() is
//    commutative and associative, so the kept message is independent of
//    arrival order — the property the repo's determinism contract (same
//    per-agent stream => same results across engines, threads, and shards)
//    rests on. Ties break on the sender id, so acceptance is exact even in
//    the 2^-64 priority-collision case. This is the path the engines use.
//  * push()/push_to(): classic reservoir sampling (the k-th arrival replaces
//    the kept one w.p. 1/k, drawn from a sequential stream). Kept for tests
//    and direct-delivery baselines; its result depends on arrival order.
//
// Reset between rounds is O(#touched recipients), not O(n).

#include <cstdint>
#include <vector>

#include "net/message.hpp"
#include "util/rng.hpp"

namespace flip {

/// Composes the 64-bit acceptance word of one message: the top 32 bits of
/// the sender's priority draw, then the opinion bit, then the sender id.
/// Taking min() over these words implements "accept a uniformly random
/// arrival" in one compare: the 32-bit priorities tie with probability
/// 2^-32 per pair, and a tie resolves deterministically by (bit, sender) —
/// acceptance stays exact, order-independent, and identical on every
/// substrate, while a recipient's whole acceptance state fits one word.
[[nodiscard]] constexpr std::uint64_t acceptance_word(
    std::uint64_t priority_draw, std::uint32_t bit_and_sender) noexcept {
  return (priority_draw & 0xffff'ffff'0000'0000ULL) | bit_and_sender;
}
[[nodiscard]] constexpr std::uint64_t acceptance_word(
    std::uint64_t priority_draw, Opinion bit, AgentId sender) noexcept {
  return acceptance_word(
      priority_draw,
      (bit == Opinion::kOne ? 0x8000'0000u : 0u) | sender);
}

class Mailbox {
 public:
  /// Routing fabric for a population of n agents. Precondition: n >= 2.
  explicit Mailbox(std::size_t n);

  /// Routes one message from `msg.sender` to a uniformly random other agent,
  /// applying the reservoir acceptance rule at the destination. Defined
  /// inline: this is the per-message hot path of every engine round.
  void push(const Message& msg, Xoshiro256& rng) {
    // Uniform over the n-1 agents other than the sender.
    auto to = static_cast<AgentId>(
        uniform_index(rng, arrival_count_.size() - 1));
    if (to >= msg.sender) ++to;
    push_to(to, msg, rng);
  }

  /// Delivers a message directly to `to` (used by tests and by baselines
  /// that model non-anonymous delivery); same acceptance rule applies.
  void push_to(AgentId to, const Message& msg, Xoshiro256& rng) {
    ++pushed_;
    const std::uint32_t k = ++arrival_count_[to];
    if (k == 1) {
      touched_.push_back(to);
      kept_[to] = msg;
    } else if (uniform_index(rng, k) == 0) {
      // Reservoir step: the k-th arrival replaces the kept one w.p. 1/k,
      // making the kept message uniform among all k arrivals.
      kept_[to] = msg;
    }
  }

  /// Priority-keyed delivery to `to`: keeps the arrival with the smallest
  /// (priority, sender) pair. Priorities must be i.i.d. uniform 64-bit
  /// words (the engines draw them from each sender's counter stream), which
  /// makes the kept message uniform among arrivals AND independent of the
  /// order offer() is called in.
  void offer(AgentId to, AgentId sender, Opinion bit, std::uint64_t priority) {
    ++pushed_;
    const std::uint32_t k = ++arrival_count_[to];
    if (k == 1) {
      touched_.push_back(to);
      priority_[to] = priority;
      kept_[to] = Message{sender, bit};
    } else if (priority < priority_[to] ||
               (priority == priority_[to] && sender < kept_[to].sender)) {
      priority_[to] = priority;
      kept_[to] = Message{sender, bit};
    }
  }

  /// Recipients that accepted a message this round, in touch order.
  [[nodiscard]] const std::vector<AgentId>& recipients() const noexcept {
    return touched_;
  }

  /// The message accepted by `to` this round. Precondition: `to` appears in
  /// recipients().
  [[nodiscard]] const Message& accepted(AgentId to) const {
    return kept_[to];
  }

  /// Messages that arrived at `to` this round (accepted + dropped).
  [[nodiscard]] std::uint32_t arrivals(AgentId to) const noexcept {
    return arrival_count_[to];
  }

  [[nodiscard]] std::uint64_t pushed_this_round() const noexcept {
    return pushed_;
  }
  /// Arrivals beyond the first at each recipient — the model's drops.
  [[nodiscard]] std::uint64_t dropped_this_round() const noexcept {
    return pushed_ - touched_.size();
  }

  /// Clears round state. Must be called between rounds.
  void reset() noexcept;

  /// Allocation-free re-initialization for a (possibly different) population:
  /// equivalent to constructing Mailbox(n) but reusing the touched/accepted
  /// buffers, so a long-lived engine pays no heap churn between trials.
  /// Throws std::invalid_argument if n < 2, like the constructor.
  void reuse(std::size_t n);

  [[nodiscard]] std::size_t population() const noexcept {
    return arrival_count_.size();
  }

 private:
  std::vector<std::uint32_t> arrival_count_;
  std::vector<Message> kept_;
  std::vector<std::uint64_t> priority_;  ///< offer(): best priority so far
  std::vector<AgentId> touched_;
  std::uint64_t pushed_ = 0;
};

}  // namespace flip
