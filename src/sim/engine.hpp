#pragma once
// The synchronous round loop of the Flip model (Section 1.3.2):
//   every round, each agent either waits or pushes its one-bit message to a
//   uniformly random other agent; each recipient accepts one uniformly
//   random arrival; the accepted bit is flipped with probability 1/2 - eps.
//
// Protocols plug in through the Protocol interface below. The engine owns
// delivery, noise, and metrics; protocols own agent state and decisions.
// This split keeps the per-round inner loops non-virtual inside protocol
// implementations (collect_sends fills a flat buffer) while the engine stays
// generic over protocols and channels.
//
// Determinism contract (counter-keyed streams): every random draw the
// engine makes in round r on behalf of agent a comes from the stateless
// stream CounterRng(round_stream_key(trial_key, purpose, r), a) —
//   * kRoute   (sender a):   recipient choice, then acceptance priority;
//   * kChannel (recipient a): the noise applied to the accepted message.
// A draw is a pure function of (trial_key, round, agent, purpose), never of
// how many draws other agents made, so results are bit-identical across
// engine substrates (this Engine vs sim/batch_engine.hpp), thread counts,
// and shard counts. Acceptance among a recipient's arrivals picks the
// minimum (priority, sender) pair — a commutative reduction, uniform among
// arrivals — instead of order-dependent reservoir sampling.

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/environment.hpp"
#include "core/topology.hpp"
#include "net/channel.hpp"
#include "net/message.hpp"
#include "sim/mailbox.hpp"
#include "sim/metrics.hpp"
#include "util/rng.hpp"

namespace flip {

/// A distributed algorithm in the Flip model. One instance simulates the
/// whole population's agent-local state for one execution.
class Protocol {
 public:
  virtual ~Protocol() = default;

  /// Appends one Message per agent that chooses to SEND in round `r`
  /// (Section 1.3.2: an agent may instead wait). Called once per round.
  /// At most one message per sender per round (the model's rule): the
  /// engine keys each message's routing draws by (round, sender), so a
  /// second same-round send from one agent would reuse the first's stream.
  virtual void collect_sends(Round r, std::vector<Message>& out) = 0;

  /// The (post-noise) bit accepted by agent `to` in round `r`. Called after
  /// collect_sends, once per recipient that accepted a message.
  virtual void deliver(AgentId to, Opinion bit, Round r) = 0;

  /// End-of-round hook: phase transitions, opinion updates.
  virtual void end_round(Round r) = 0;

  /// True once the protocol has terminated (engine stops after this round).
  [[nodiscard]] virtual bool done(Round r) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Current bias toward the correct opinion, for the metrics probes.
  /// Protocols that don't track opinions may return 0.
  [[nodiscard]] virtual double current_bias() const = 0;

  /// Number of agents currently holding an opinion (activation probe).
  [[nodiscard]] virtual std::size_t current_opinionated() const = 0;
};

/// Engine configuration knobs.
struct EngineOptions {
  /// Record bias/activated time series every `probe_every` rounds
  /// (0 = never). Probing costs one virtual call per probe, not per agent.
  Round probe_every = 0;
  /// Agent churn (core/environment.hpp). When enabled, every agent's
  /// liveness advances once per round from its (trial, round, agent,
  /// kChurn) stream; asleep agents neither send (their collect_sends
  /// messages are discarded before routing, unrouted and uncounted) nor
  /// accept (their accepted message is counted as dropped, and no kChannel
  /// draw is made for them). Identical semantics on every substrate.
  ChurnSpec churn{};
  /// Interaction graph (core/topology.hpp). The default complete graph is
  /// the zero-cost identity path: recipient draws are bit-for-bit the
  /// historical uniform_index(n-1) formula. Sparse kinds restrict each
  /// sender's recipient draw to its out-neighbor set, resolved against n
  /// at run() time (throws std::invalid_argument if the family does not
  /// fit the population). Identical neighbor sets on every substrate.
  TopologySpec topology{};
};

/// Which simulation substrate a workload runs on. kBatch is the
/// statically-dispatched fast path (sim/batch_engine.hpp); both exact
/// substrates draw from the same counter-keyed per-agent streams, so the
/// two modes produce identical metrics for the same (seed, trial) —
/// kClassic exists to prove that, and to time the difference. kSurrogate
/// is NOT an exact substrate: it integrates the mean-field state evolution
/// (sim/surrogate_engine.hpp) and answers in closed form, milliseconds at
/// n = 10^9 — held within stated error bands of kBatch by the validation
/// harness (flipsim --validate-surrogate), never bit-equal to it.
enum class EngineMode { kBatch, kClassic, kSurrogate };

[[nodiscard]] constexpr std::string_view engine_mode_name(
    EngineMode mode) noexcept {
  switch (mode) {
    case EngineMode::kClassic:
      return "classic";
    case EngineMode::kSurrogate:
      return "surrogate";
    case EngineMode::kBatch:
      break;
  }
  return "batch";
}

/// Parses "batch" / "classic" / "surrogate"; nullopt on anything else.
[[nodiscard]] std::optional<EngineMode> parse_engine_mode(
    std::string_view name) noexcept;

class Engine {
 public:
  /// The engine borrows the channel, which must outlive run() calls. All
  /// engine-level randomness derives from `key` (one trial's root key; see
  /// trial_stream_key).
  Engine(std::size_t n, NoiseChannel& channel, const StreamKey& key,
         EngineOptions options = {});

  /// Convenience: derives the trial key from two draws of `rng`. Same rng
  /// state, same key, same execution — callers that already manage a
  /// sequential per-trial stream keep working unchanged.
  Engine(std::size_t n, NoiseChannel& channel, Xoshiro256& rng,
         EngineOptions options = {});

  /// Runs `protocol` until it reports done() or `max_rounds` elapses.
  /// Returns the metrics of this execution. A fresh Metrics is produced per
  /// call; the engine itself is reusable across runs.
  Metrics run(Protocol& protocol, Round max_rounds);

  [[nodiscard]] std::size_t population() const noexcept {
    return mailbox_.population();
  }

 private:
  Mailbox mailbox_;
  NoiseChannel& channel_;
  StreamKey key_;
  EngineOptions options_;
  std::vector<Message> send_buffer_;
  /// Per-agent liveness under churn (unused when churn is disabled). The
  /// sharded engine keeps the same state in its Population; here a flat
  /// byte array suffices — the reference loop is sequential.
  std::vector<std::uint8_t> awake_;
};

}  // namespace flip
