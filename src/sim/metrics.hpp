#pragma once
// Counters and optional time series recorded by the engine while a protocol
// runs. The complexity measures of the paper — rounds and total messages
// (= bits, since every message is one bit) — come straight from here.

#include <cstdint>
#include <vector>

namespace flip {

using Round = std::uint64_t;

/// A (round, value) sample of some population statistic.
struct Sample {
  Round round;
  double value;
};

struct Metrics {
  Round rounds = 0;                ///< rounds executed
  std::uint64_t messages_sent = 0; ///< total pushes = total bits on the wire
  std::uint64_t delivered = 0;     ///< messages accepted by recipients
  std::uint64_t dropped = 0;       ///< same-round collisions discarded
  std::uint64_t erased = 0;        ///< destroyed by an erasure channel
  std::uint64_t flipped = 0;       ///< accepted messages whose bit was flipped

  /// Per-round bias toward the correct opinion, recorded when the engine is
  /// given a bias probe (benches E4/E5/E7 use it; off by default).
  std::vector<Sample> bias_series;
  /// Per-round number of opinionated/activated agents.
  std::vector<Sample> activated_series;

  void clear();
};

}  // namespace flip
