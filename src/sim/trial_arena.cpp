#include "sim/trial_arena.hpp"

#include <memory>
#include <vector>

namespace flip {

namespace {

/// Per-thread stack of persistent arenas. Depth 0 is the common case;
/// deeper entries exist only when the helping ThreadPool wait makes a
/// thread pick up another trial while its own arena is mid-run.
struct LocalArenas {
  std::vector<std::unique_ptr<TrialArena>> arenas;
  std::size_t depth = 0;
};

LocalArenas& local_arenas() {
  thread_local LocalArenas arenas;
  return arenas;
}

}  // namespace

namespace detail {

// flip-lint: noalloc — the per-request lease path of the resident service:
// a warm acquire is a depth bump and an index, nothing else.
TrialArena* acquire_arena() {
  LocalArenas& local = local_arenas();
  if (local.depth == local.arenas.size()) {
    // flip-lint: allow(noalloc) -- cold-path growth: the first time a
    // thread reaches this nesting depth it builds the arena it will then
    // recycle forever; warm acquires never enter this branch.
    local.arenas.push_back(std::make_unique<TrialArena>());
  }
  return local.arenas[local.depth++].get();
}
// flip-lint: end-noalloc

void release_arena() noexcept { --local_arenas().depth; }

}  // namespace detail

// BatchEngineLease is the engine-only view of the same per-thread stack:
// one depth counter serves both lease types, so a BatchEngineLease and a
// TrialArenaLease held simultaneously never alias the same engine.
BatchEngineLease::BatchEngineLease()
    : engine_(&detail::acquire_arena()->engine) {}

BatchEngineLease::~BatchEngineLease() { detail::release_arena(); }

}  // namespace flip
