#include "sim/batch_engine.hpp"

namespace flip {

bool breathe_fast_supported(const Params& params) {
  if (params.n() >= (std::uint64_t{1} << 31)) return false;
  const StageTwoSchedule& s2 = params.stage2();
  // Stage II counters live in 21-bit packed fields; an agent accepts at
  // most one message per round, so per-phase counts are bounded by the
  // phase length. (Stage I counts use 63 bits — never a constraint.)
  return std::max(s2.m, s2.m_final) <= BatchEngine::kFieldMask;
}

void BatchEngine::prepare_breathe(const Params& params,
                                  const BreatheConfig& config) {
  if (config.start_phase > params.stage1().T + 1) {
    throw std::invalid_argument("BatchEngine: start_phase > T+1");
  }
  if (config.initial.empty()) {
    throw std::invalid_argument("BatchEngine: empty initial set");
  }

  const std::size_t n = params.n();
  pop_.reuse(n);
  slot_.assign(n, 0);
  acc_.assign(n, 0);
  touched_.clear();
  if (touched_.capacity() < n) touched_.reserve(n);
  opinionated_.clear();
  if (opinionated_.capacity() < n) opinionated_.reserve(n);
  activation_buffer_.clear();
  if (activation_buffer_.capacity() < n) activation_buffer_.reserve(n);
  send_.clear();
  if (send_.capacity() < n) send_.reserve(n);

  for (const Seed& seed : config.initial) {
    if (seed.agent >= n) {
      throw std::invalid_argument("BatchEngine: seed agent out of range");
    }
    if (pop_.has_opinion(seed.agent)) {
      throw std::invalid_argument("BatchEngine: duplicate seed agent");
    }
    pop_.set_opinion(seed.agent, seed.opinion);
    opinionated_.push_back(seed.agent);
    send_.push_back(seed.agent |
                    (seed.opinion == Opinion::kOne ? kSlotBit : 0u));
  }
}

BatchEngine::BreatheSchedule BatchEngine::breathe_schedule(
    const Params& params, const BreatheConfig& config, bool stage1_only) {
  const StageOneSchedule& s1 = params.stage1();
  BreatheSchedule schedule;
  if (config.skip_stage1) {
    schedule.stage1_offset = s1.total_rounds();
  } else {
    schedule.stage1_offset = s1.phase_start(config.start_phase);
    schedule.stage1_rounds = s1.total_rounds() - schedule.stage1_offset;
  }
  schedule.total_rounds =
      schedule.stage1_rounds + params.stage2().total_rounds();
  schedule.budget = stage1_only ? schedule.stage1_rounds
                                : schedule.total_rounds;
  return schedule;
}

void BatchEngine::finish_breathe(BreatheFastResult& result,
                                 Opinion correct) const {
  result.opinionated = pop_.opinionated();
  result.success = pop_.unanimous(correct);
  result.correct_fraction = pop_.correct_fraction(correct);
  result.final_bias = pop_.bias(correct);
}

void BatchEngine::finalize_stage1(std::uint64_t phase, Opinion correct,
                                  std::vector<StageOnePhaseStats>& out) {
  StageOnePhaseStats stats;
  stats.phase = phase;
  stats.newly_activated = activation_buffer_.size();
  for (const AgentId a : activation_buffer_) {
    const std::uint64_t kept = acc_[a] >> kKeptShift;
    const auto opinion = static_cast<Opinion>(kept);
    pop_.set_opinion(a, opinion);
    stats.newly_correct += (opinion == correct);
    acc_[a] = 0;  // reset_phase_counters
    opinionated_.push_back(a);
    send_.push_back(a | (kept != 0 ? kSlotBit : 0u));
  }
  activation_buffer_.clear();
  stats.total_activated = opinionated_.size();
  out.push_back(stats);
}

void BatchEngine::finalize_stage2(std::uint64_t phase,
                                  const BreatheConfig& config,
                                  const StageTwoSchedule& s2,
                                  Xoshiro256& protocol_rng,
                                  std::vector<StageTwoPhaseStats>& out) {
  const std::uint64_t threshold = s2.half_length(phase);
  const bool prefix_subset =
      config.stage2_subset == Stage2Subset::kPrefixSubset;
  StageTwoPhaseStats stats;
  stats.phase = phase;

  const auto n = static_cast<AgentId>(pop_.size());
  for (AgentId a = 0; a < n; ++a) {
    const std::uint64_t w = acc_[a];
    const std::uint64_t recv = w & kFieldMask;
    if (recv >= threshold) {
      // Successful agent: majority over a subset of exactly `threshold`
      // samples, uniform (hypergeometric draw) or the arrival-order prefix.
      ++stats.successful;
      const std::uint64_t ones =
          prefix_subset
              ? ((w >> kPrefixShift) & kFieldMask)
              : hypergeometric_ones(protocol_rng, recv,
                                    (w >> kOnesShift) & kFieldMask,
                                    threshold);
      const Opinion verdict =
          2 * ones > threshold ? Opinion::kOne : Opinion::kZero;
      if (!pop_.has_opinion(a)) opinionated_.push_back(a);
      pop_.set_opinion(a, verdict);
    }
  }
  std::fill(acc_.begin(), acc_.end(), 0);

  // Re-decisions may have flipped opinions anywhere in the sender list:
  // rebuild it (O(n) once per phase, not per round).
  send_.clear();
  for (const AgentId a : opinionated_) {
    send_.push_back(a |
                    (pop_.opinion(a) == Opinion::kOne ? kSlotBit : 0u));
  }

  stats.correct_fraction = pop_.correct_fraction(config.correct);
  stats.bias = pop_.bias(config.correct);
  out.push_back(stats);
}

bool BatchEngine::breathe_packed_supported(const Params& params) {
  const StageOneSchedule& s1 = params.stage1();
  const StageTwoSchedule& s2 = params.stage2();
  return params.n() <= kPackedCount &&
         std::max({s1.beta_s, s1.beta, s1.beta_f}) <= kPackedCount &&
         std::max(s2.m, s2.m_final) <= kS2PackedField;
}

void BatchEngine::finalize_stage1_packed(
    std::uint64_t phase, Opinion correct,
    std::vector<StageOnePhaseStats>& out) {
  StageOnePhaseStats stats;
  stats.phase = phase;
  stats.newly_activated = activation_buffer_.size();
  for (const AgentId a : activation_buffer_) {
    const std::uint64_t kept = (acc_[a] >> kS1KeptShift) & 1;
    const auto opinion = static_cast<Opinion>(kept);
    pop_.set_opinion(a, opinion);
    stats.newly_correct += (opinion == correct);
    acc_[a] = kS1HasOpinion;  // reset counters, mirror the new opinion flag
    opinionated_.push_back(a);
    send_.push_back(a | (kept != 0 ? kSlotBit : 0u));
  }
  activation_buffer_.clear();
  stats.total_activated = opinionated_.size();
  out.push_back(stats);
}

void BatchEngine::finalize_stage2_packed(
    std::uint64_t phase, const BreatheConfig& config,
    const StageTwoSchedule& s2, Xoshiro256& protocol_rng,
    std::vector<StageTwoPhaseStats>& out) {
  const std::uint64_t threshold = s2.half_length(phase);
  StageTwoPhaseStats stats;
  stats.phase = phase;

  // The hypergeometric scan below draws O(threshold) values per successful
  // agent — across a long run that is within a small factor of the round
  // loop's own draw count, so the rng state gets the same local-copy
  // treatment as in the round loop.
  Xoshiro256 rng = protocol_rng;
  const auto n = static_cast<AgentId>(pop_.size());
  for (AgentId a = 0; a < n; ++a) {
    const std::uint64_t w = acc_[a];
    const std::uint64_t recv = w & kS2PackedField;
    if (recv >= threshold) {
      ++stats.successful;
      const std::uint64_t ones = hypergeometric_ones(
          rng, recv, (w >> kS2PackedOnesShift) & kS2PackedField,
          threshold);
      const Opinion verdict =
          2 * ones > threshold ? Opinion::kOne : Opinion::kZero;
      if (!pop_.has_opinion(a)) opinionated_.push_back(a);
      pop_.set_opinion(a, verdict);
    }
  }
  protocol_rng = rng;
  std::fill(acc_.begin(), acc_.end(), 0);

  send_.clear();
  for (const AgentId a : opinionated_) {
    send_.push_back(a |
                    (pop_.opinion(a) == Opinion::kOne ? kSlotBit : 0u));
  }

  stats.correct_fraction = pop_.correct_fraction(config.correct);
  stats.bias = pop_.bias(config.correct);
  out.push_back(stats);
}

BatchEngine& local_batch_engine() {
  thread_local BatchEngine engine;
  return engine;
}

}  // namespace flip
