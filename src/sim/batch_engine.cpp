#include "sim/batch_engine.hpp"

#include <memory>

namespace flip {

bool breathe_fast_supported(const Params& params) {
  if (params.n() >= (std::uint64_t{1} << 31)) return false;
  const StageTwoSchedule& s2 = params.stage2();
  // Stage II counters live in 21-bit packed fields; an agent accepts at
  // most one message per round, so per-phase counts are bounded by the
  // phase length. (Stage I counts use 63 bits — never a constraint.)
  return std::max(s2.m, s2.m_final) <= detail::kFieldMask;
}

void BatchEngine::prepare_breathe(const Params& params,
                                  const BreatheConfig& config,
                                  const BreatheRunOptions& options) {
  if (config.start_phase > params.stage1().T + 1) {
    throw std::invalid_argument("BatchEngine: start_phase > T+1");
  }
  if (config.initial.empty()) {
    throw std::invalid_argument("BatchEngine: empty initial set");
  }

  const std::size_t n = params.n();
  // Resolve the interaction graph first: it throws on families that do not
  // fit n, and the route phase consults it every round. Sharding stays the
  // contiguous agent-block partition, which for ring/grid (row-major) is
  // also a graph-locality partition — a shard's senders mostly write slots
  // inside or adjacent to their own block.
  topo_ = ResolvedTopology::resolve(options.engine.topology, n);
  // Cap the shard count at n/2 so every block holds >= 2 agents: tinier
  // shards are pure overhead, and the fastdiv reciprocal below wraps to 0
  // at block size 1. Results are shard-invariant, so clamping is harmless.
  shards_ = std::clamp<std::size_t>(options.shards, 1,
                                    std::max<std::size_t>(1, n / 2));
  pool_ = options.pool;
  shard_block_ = (n + shards_ - 1) / shards_;
  shard_mul_ = ~std::uint64_t{0} / shard_block_ + 1;

  pop_.reuse(n);
  acc_.assign(n, 0);
  slot_.assign(n, detail::kEmptySlot);

  shard_.resize(shards_);
  for (ShardScratch& sh : shard_) {
    sh.send.clear();
    // touched is indexed directly by the branchless combine append, which
    // stores BEFORE it knows whether the arrival is a duplicate — once
    // every agent of the block is touched, further duplicates keep
    // rewriting one slot past the live region, so size to block + 1.
    sh.touched.resize(shard_block_ + 1);
    sh.touched_count = 0;
    sh.activation.clear();
    if (sh.activation.capacity() < shard_block_) {
      sh.activation.reserve(shard_block_);
    }
    sh.opinionated.clear();
    if (sh.opinionated.capacity() < shard_block_) {
      sh.opinionated.reserve(shard_block_);
    }
    sh.out.resize(shards_);
    for (auto& bucket : sh.out) bucket.clear();
    sh.delta = {};
    sh.successful = 0;
    sh.flipped = 0;
    sh.sent = 0;
    sh.asleep_drops = 0;
  }

  // The initial "not yet joined" set of the churn model: same keyed draws
  // as the classic engine's, so the two substrates agree on who is absent
  // at round 0. Seeds are NOT exempt — an asleep source simply stays
  // silent until its wake draw fires.
  const ChurnSpec& churn = options.engine.churn;
  if (churn.start_asleep > 0.0) {
    for (AgentId a = 0; a < n; ++a) {
      if (churn_starts_asleep(churn, trial_key_, a)) {
        pop_.set_awake(a, false);
      }
    }
  }

  for (const Seed& seed : config.initial) {
    if (seed.agent >= n) {
      throw std::invalid_argument("BatchEngine: seed agent out of range");
    }
    if (pop_.has_opinion(seed.agent)) {
      throw std::invalid_argument("BatchEngine: duplicate seed agent");
    }
    pop_.set_opinion(seed.agent, seed.opinion);
    ShardScratch& sh = shard_[shard_of(seed.agent)];
    sh.opinionated.push_back(seed.agent);
    sh.send.push_back(seed.agent |
                      (seed.opinion == Opinion::kOne ? detail::kSendBit : 0u));
  }
}

BatchEngine::BreatheSchedule BatchEngine::breathe_schedule(
    const Params& params, const BreatheConfig& config, bool stage1_only) {
  const StageOneSchedule& s1 = params.stage1();
  BreatheSchedule schedule;
  if (config.skip_stage1) {
    schedule.stage1_offset = s1.total_rounds();
  } else {
    schedule.stage1_offset = s1.phase_start(config.start_phase);
    schedule.stage1_rounds = s1.total_rounds() - schedule.stage1_offset;
  }
  schedule.total_rounds =
      schedule.stage1_rounds + params.stage2().total_rounds();
  schedule.budget = stage1_only ? schedule.stage1_rounds
                                : schedule.total_rounds;
  return schedule;
}

void BatchEngine::finish_breathe(BreatheFastResult& result,
                                 Opinion correct) const {
  result.opinionated = pop_.opinionated();
  result.success = pop_.unanimous(correct);
  result.correct_fraction = pop_.correct_fraction(correct);
  result.final_bias = pop_.bias(correct);
}

// flip-lint: noalloc — phase-boundary work runs inside the warm round
// loop; the out vectors keep their capacity across trials (reset()).
void BatchEngine::finalize_stage1(std::uint64_t phase, Opinion correct,
                                  std::vector<StageOnePhaseStats>& out) {
  // Phase-end work is O(#newly activated): run it sequentially, shard by
  // shard, so the Population aggregates need no merging. No draws happen
  // here, so the shard iteration order is observable only through list
  // order — which nothing downstream depends on (senders are keyed by id).
  StageOnePhaseStats stats;
  stats.phase = phase;
  for (ShardScratch& sh : shard_) {
    stats.newly_activated += sh.activation.size();
    for (const AgentId a : sh.activation) {
      const std::uint64_t kept = acc_[a] >> detail::kKeptShift;
      const auto opinion = static_cast<Opinion>(kept);
      pop_.set_opinion(a, opinion);
      stats.newly_correct += (opinion == correct);
      acc_[a] = 0;  // reset_phase_counters
      sh.opinionated.push_back(a);
      sh.send.push_back(a | (kept != 0 ? detail::kSendBit : 0u));
    }
    sh.activation.clear();
    stats.total_activated += sh.opinionated.size();
  }
  out.push_back(stats);
}

void BatchEngine::finalize_stage2(std::uint64_t phase,
                                  const BreatheConfig& config,
                                  const StageTwoSchedule& s2,
                                  std::vector<StageTwoPhaseStats>& out) {
  const std::uint64_t threshold = s2.half_length(phase);
  const bool prefix_subset =
      config.stage2_subset == Stage2Subset::kPrefixSubset;
  // Each successful agent's majority-subset draw is O(threshold) words from
  // its own (phase, agent, kSubset) stream, so the scan parallelizes over
  // shards: per-shard counter deltas are merged (exact integer sums) after
  // the barrier, in shard order.
  const StreamKey subset_key =
      round_stream_key(trial_key_, RngPurpose::kSubset, phase);
  const std::size_t n = pop_.size();
  for_each_shard([&](std::size_t d) {
    ShardScratch& sh = shard_[d];
    sh.delta = {};
    sh.successful = 0;
    const auto lo = static_cast<AgentId>(d * shard_block_);
    const auto hi = static_cast<AgentId>(
        std::min(n, (d + 1) * shard_block_));
    for (AgentId a = lo; a < hi; ++a) {
      const std::uint64_t w = acc_[a];
      const std::uint64_t recv = w & detail::kFieldMask;
      if (recv >= threshold) {
        // Successful agent: majority over a subset of exactly `threshold`
        // samples, uniform (hypergeometric draw) or the arrival-order
        // prefix.
        ++sh.successful;
        std::uint64_t ones = (w >> detail::kPrefixShift) & detail::kFieldMask;
        if (!prefix_subset) {
          CounterRng rng(subset_key, a);
          ones = hypergeometric_ones(
              rng, recv, (w >> detail::kOnesShift) & detail::kFieldMask,
              threshold);
        }
        const Opinion verdict =
            2 * ones > threshold ? Opinion::kOne : Opinion::kZero;
        if (!pop_.has_opinion(a)) sh.opinionated.push_back(a);
        pop_.set_opinion_counted(a, verdict, sh.delta);
      }
      acc_[a] = 0;
    }
    // Re-decisions may have flipped opinions anywhere in this shard's
    // range: rebuild its sender list (O(range) once per phase, not per
    // round).
    sh.send.clear();
    for (const AgentId a : sh.opinionated) {
      sh.send.push_back(
          a | (pop_.opinion(a) == Opinion::kOne ? detail::kSendBit : 0u));
    }
  });

  StageTwoPhaseStats stats;
  stats.phase = phase;
  for (const ShardScratch& sh : shard_) {
    pop_.apply(sh.delta);
    stats.successful += sh.successful;
  }
  stats.correct_fraction = pop_.correct_fraction(config.correct);
  stats.bias = pop_.bias(config.correct);
  out.push_back(stats);
}
// flip-lint: end-noalloc

// BatchEngineLease's constructor/destructor live in sim/trial_arena.cpp:
// the lease is the engine-only view of the per-thread TrialArena stack.

}  // namespace flip
