#include "sim/series.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace flip {

std::optional<Round> stable_crossing(std::span<const Sample> series,
                                     double threshold) {
  // Scan backwards: find the last sample BELOW the threshold; the stable
  // crossing is the next sample after it (if any).
  std::size_t first_stable = series.size();
  for (std::size_t i = series.size(); i-- > 0;) {
    if (series[i].value < threshold) break;
    first_stable = i;
  }
  if (first_stable == series.size()) return std::nullopt;
  return series[first_stable].round;
}

std::optional<Round> first_crossing(std::span<const Sample> series,
                                    double threshold) {
  for (const Sample& s : series) {
    if (s.value >= threshold) return s.round;
  }
  return std::nullopt;
}

bool has_plateau(std::span<const Sample> series, std::size_t window,
                 double tolerance) {
  if (series.empty()) return false;
  // Window 0 clamps to 1 (the last sample alone is trivially flat), the
  // same floor tail_mean applies — so the two helpers always agree on
  // which suffix they are describing.
  const std::size_t count = std::min(std::max<std::size_t>(window, 1),
                                     series.size());
  const double mean = tail_mean(series, count);
  for (std::size_t i = series.size() - count; i < series.size(); ++i) {
    if (std::abs(series[i].value - mean) > tolerance) return false;
  }
  return true;
}

double tail_mean(std::span<const Sample> series, std::size_t window) {
  if (series.empty()) throw std::invalid_argument("tail_mean: empty series");
  const std::size_t count = std::min(std::max<std::size_t>(window, 1),
                                     series.size());
  double sum = 0.0;
  for (std::size_t i = series.size() - count; i < series.size(); ++i) {
    sum += series[i].value;
  }
  return sum / static_cast<double>(count);
}

double max_step(std::span<const Sample> series) {
  double best = 0.0;
  for (std::size_t i = 1; i < series.size(); ++i) {
    best = std::max(best, series[i].value - series[i - 1].value);
  }
  return best;
}

}  // namespace flip
