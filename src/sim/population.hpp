#pragma once
// Opinion bookkeeping for one simulated population. Protocols own a
// Population; the experiment harness reads bias/correct-fraction from it.

#include <cstddef>
#include <optional>
#include <vector>

#include "net/message.hpp"

namespace flip {

/// Per-agent opinion state. An agent may hold no opinion yet (dormant in the
/// broadcast problem, outside the initial set A in majority-consensus).
class Population {
 public:
  /// n agents, all initially opinion-less. Precondition: n >= 2.
  explicit Population(std::size_t n);

  /// Allocation-free re-initialization: equivalent to constructing
  /// Population(n) but reusing the per-agent buffers. Used by the batch
  /// fast path to recycle one population across many trials.
  void reuse(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return opinion_.size(); }

  [[nodiscard]] bool has_opinion(AgentId a) const {
    return has_opinion_[a] != 0;
  }
  [[nodiscard]] Opinion opinion(AgentId a) const {
    return static_cast<Opinion>(opinion_[a]);
  }
  [[nodiscard]] std::optional<Opinion> opinion_of(AgentId a) const;

  void set_opinion(AgentId a, Opinion o);
  void clear_opinion(AgentId a);

  /// Number of agents currently holding any opinion.
  [[nodiscard]] std::size_t opinionated() const noexcept {
    return opinionated_;
  }

  /// Number of agents holding opinion o.
  [[nodiscard]] std::size_t count(Opinion o) const noexcept;

  /// Fraction of ALL n agents whose opinion equals `correct`.
  [[nodiscard]] double correct_fraction(Opinion correct) const noexcept;

  /// Bias toward `correct` among opinionated agents:
  ///   (#correct - #wrong) / (2 * #opinionated),
  /// the paper's majority-bias (Section 1.3.1). 0 if nobody has an opinion.
  [[nodiscard]] double bias(Opinion correct) const noexcept;

  /// True iff every agent holds opinion `correct` — the success condition of
  /// both problems.
  [[nodiscard]] bool unanimous(Opinion correct) const noexcept;

 private:
  std::vector<std::uint8_t> has_opinion_;
  std::vector<std::uint8_t> opinion_;
  std::size_t opinionated_ = 0;
  std::size_t ones_ = 0;  // # agents with opinion kOne, kept incrementally
};

}  // namespace flip
