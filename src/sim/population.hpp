#pragma once
// Opinion bookkeeping for one simulated population. Protocols own a
// Population; the experiment harness reads bias/correct-fraction from it.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "net/message.hpp"

namespace flip {

/// Per-agent opinion state. An agent may hold no opinion yet (dormant in the
/// broadcast problem, outside the initial set A in majority-consensus).
class Population {
 public:
  /// n agents, all initially opinion-less. Precondition: n >= 2.
  explicit Population(std::size_t n);

  /// Allocation-free re-initialization: equivalent to constructing
  /// Population(n) but reusing the per-agent buffers. Used by the batch
  /// fast path to recycle one population across many trials.
  void reuse(std::size_t n);

  [[nodiscard]] std::size_t size() const noexcept { return opinion_.size(); }

  [[nodiscard]] bool has_opinion(AgentId a) const {
    return has_opinion_[a] != 0;
  }
  /// Raw per-agent has-opinion bytes, for the batch engine's noinline
  /// delivery loops (one byte read per message; the accessor call boundary
  /// would otherwise sit inside them).
  [[nodiscard]] const std::uint8_t* has_opinion_data() const noexcept {
    return has_opinion_.data();
  }
  [[nodiscard]] Opinion opinion(AgentId a) const {
    return static_cast<Opinion>(opinion_[a]);
  }
  [[nodiscard]] std::optional<Opinion> opinion_of(AgentId a) const;

  void set_opinion(AgentId a, Opinion o);
  void clear_opinion(AgentId a);

  /// Aggregate-counter delta accumulated by sharded opinion updates.
  struct Delta {
    std::int64_t opinionated = 0;
    std::int64_t ones = 0;
    std::int64_t asleep = 0;  ///< churn: sleep/wake/join transitions
  };

  /// Sharded-update twin of set_opinion(): writes the per-agent bytes but
  /// accumulates the aggregate-counter changes into `delta` instead of the
  /// shared members. Safe to call concurrently for DISTINCT agents (each
  /// worker owns a disjoint agent range and its own Delta); merge the
  /// per-shard deltas with apply() once the workers have joined.
  void set_opinion_counted(AgentId a, Opinion o, Delta& delta) {
    if (!has_opinion_[a]) {
      has_opinion_[a] = 1;
      ++delta.opinionated;
    } else if (static_cast<Opinion>(opinion_[a]) == Opinion::kOne) {
      --delta.ones;
    }
    opinion_[a] = static_cast<std::uint8_t>(o);
    if (o == Opinion::kOne) ++delta.ones;
  }

  /// Folds one shard's Delta into the aggregate counters.
  void apply(const Delta& delta) noexcept {
    opinionated_ = static_cast<std::size_t>(
        static_cast<std::int64_t>(opinionated_) + delta.opinionated);
    ones_ = static_cast<std::size_t>(static_cast<std::int64_t>(ones_) +
                                     delta.ones);
    asleep_ = static_cast<std::size_t>(static_cast<std::int64_t>(asleep_) +
                                       delta.asleep);
  }

  // Liveness (environment churn). Every agent starts awake; sleep/wake/join
  // events (core/environment.hpp) flip the per-agent flag. An asleep agent
  // keeps its opinion — liveness and opinion state are orthogonal.

  [[nodiscard]] bool awake(AgentId a) const { return awake_[a] != 0; }
  /// Raw per-agent awake bytes for the batch engine's noinline loops, like
  /// has_opinion_data().
  [[nodiscard]] const std::uint8_t* awake_data() const noexcept {
    return awake_.data();
  }
  /// Number of agents currently asleep (not participating).
  [[nodiscard]] std::size_t asleep() const noexcept { return asleep_; }

  void set_awake(AgentId a, bool awake) {
    asleep_ += (awake_[a] != 0) && !awake;
    asleep_ -= (awake_[a] == 0) && awake;
    awake_[a] = awake ? 1 : 0;
  }

  /// Sharded-update twin of set_awake(): writes the per-agent byte but
  /// accumulates the asleep-count change into `delta`. Same concurrency
  /// rule as set_opinion_counted: distinct agents, own Delta, merge with
  /// apply() after the barrier.
  void set_awake_counted(AgentId a, bool awake, Delta& delta) {
    delta.asleep += (awake_[a] != 0) && !awake;
    delta.asleep -= (awake_[a] == 0) && awake;
    awake_[a] = awake ? 1 : 0;
  }

  /// Number of agents currently holding any opinion.
  [[nodiscard]] std::size_t opinionated() const noexcept {
    return opinionated_;
  }

  /// Number of agents holding opinion o.
  [[nodiscard]] std::size_t count(Opinion o) const noexcept;

  /// Fraction of ALL n agents whose opinion equals `correct`.
  [[nodiscard]] double correct_fraction(Opinion correct) const noexcept;

  /// Bias toward `correct` among opinionated agents:
  ///   (#correct - #wrong) / (2 * #opinionated),
  /// the paper's majority-bias (Section 1.3.1). 0 if nobody has an opinion.
  [[nodiscard]] double bias(Opinion correct) const noexcept;

  /// True iff every agent holds opinion `correct` — the success condition of
  /// both problems.
  [[nodiscard]] bool unanimous(Opinion correct) const noexcept;

 private:
  std::vector<std::uint8_t> has_opinion_;
  std::vector<std::uint8_t> opinion_;
  std::vector<std::uint8_t> awake_;
  std::size_t opinionated_ = 0;
  std::size_t ones_ = 0;  // # agents with opinion kOne, kept incrementally
  std::size_t asleep_ = 0;
};

}  // namespace flip
