#pragma once
// Clocks for the two synchronization settings of Section 1.3.3:
//  * fully-synchronous: all agents share the global round counter;
//  * standard synchronous: an agent's clock starts (at 0) when it is
//    activated, i.e. when it receives its first message.
//
// The desynchronized protocol of Section 3 additionally supports arbitrary
// initial offsets in [0, D) and a mid-execution reset (Section 3.2).

#include <cstdint>
#include <limits>

#include "sim/metrics.hpp"

namespace flip {

/// A per-agent local clock. Engine rounds are the global time; a LocalClock
/// translates them into the agent's own time once started.
class LocalClock {
 public:
  static constexpr Round kNotStarted = std::numeric_limits<Round>::max();

  /// A clock that has not started yet (dormant agent).
  constexpr LocalClock() = default;

  /// A clock that reads `initial` at global round 0 — models the adversarial
  /// initialization "each clock is initialized to some integer in [0, D)".
  static constexpr LocalClock with_offset(Round initial) noexcept {
    LocalClock c;
    c.start_round_ = 0;
    c.offset_ = initial;
    return c;
  }

  [[nodiscard]] constexpr bool started() const noexcept {
    return start_round_ != kNotStarted;
  }

  /// Starts the clock so that it reads 0 at global round `now` (activation
  /// semantics: "the clock at an agent is initialized to 0 when the agent is
  /// activated").
  constexpr void start(Round now) noexcept {
    start_round_ = now;
    offset_ = 0;
  }

  /// Restarts the clock to read 0 at global round `now` (the Section 3.2
  /// reset "after 4 log n rounds passed since it heard a message").
  constexpr void reset(Round now) noexcept { start(now); }

  /// Local time at global round `now`. Precondition: started().
  [[nodiscard]] constexpr Round read(Round now) const noexcept {
    return now - start_round_ + offset_;
  }

 private:
  Round start_round_ = kNotStarted;
  Round offset_ = 0;
};

}  // namespace flip
