#include "sim/engine.hpp"

#include <stdexcept>

namespace flip {

std::optional<EngineMode> parse_engine_mode(std::string_view name) noexcept {
  if (name == "batch") return EngineMode::kBatch;
  if (name == "classic") return EngineMode::kClassic;
  return std::nullopt;
}

Engine::Engine(std::size_t n, NoiseChannel& channel, const StreamKey& key,
               EngineOptions options)
    : mailbox_(n), channel_(channel), key_(key), options_(options) {
  send_buffer_.reserve(n);
}

Engine::Engine(std::size_t n, NoiseChannel& channel, Xoshiro256& rng,
               EngineOptions options)
    : Engine(n, channel, StreamKey{rng(), rng()}, options) {}

Metrics Engine::run(Protocol& protocol, Round max_rounds) {
  Metrics metrics;
  const std::size_t n = mailbox_.population();
  for (Round r = 0; r < max_rounds; ++r) {
    send_buffer_.clear();
    protocol.collect_sends(r, send_buffer_);

    mailbox_.reset();
    const StreamKey route_key = round_stream_key(key_, RngPurpose::kRoute, r);
    for (const Message& msg : send_buffer_) {
      if (msg.sender >= n) {
        throw std::out_of_range("Engine: sender id out of range");
      }
      // The sender's stream: word 0.. the recipient (uniform over the n-1
      // other agents), next word the acceptance priority.
      CounterRng rng(route_key, msg.sender);
      auto to = static_cast<AgentId>(uniform_index(rng, n - 1));
      if (to >= msg.sender) ++to;
      mailbox_.offer(to, msg.sender, msg.bit,
                     acceptance_word(rng(), msg.bit, msg.sender));
    }
    metrics.messages_sent += send_buffer_.size();

    // Noise is applied to the accepted message only: flips are independent
    // per message and dropped messages are never observed, so flipping after
    // acceptance is distributionally identical to flipping each arrival
    // (and much cheaper). The draw comes from the RECIPIENT's kChannel
    // stream, so it does not depend on which sender won acceptance.
    const StreamKey channel_key =
        round_stream_key(key_, RngPurpose::kChannel, r);
    for (AgentId to : mailbox_.recipients()) {
      const Message& msg = mailbox_.accepted(to);
      CounterRng rng(channel_key, to);
      const std::optional<Opinion> seen = channel_.transmit(msg.bit, rng);
      if (!seen) {
        ++metrics.erased;
        continue;
      }
      if (*seen != msg.bit) ++metrics.flipped;
      ++metrics.delivered;
      protocol.deliver(to, *seen, r);
    }
    metrics.dropped += mailbox_.dropped_this_round();

    protocol.end_round(r);
    metrics.rounds = r + 1;

    if (options_.probe_every != 0 && r % options_.probe_every == 0) {
      metrics.bias_series.push_back({r, protocol.current_bias()});
      metrics.activated_series.push_back(
          {r, static_cast<double>(protocol.current_opinionated())});
    }

    if (protocol.done(r)) break;
  }
  return metrics;
}

}  // namespace flip
