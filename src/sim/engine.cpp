#include "sim/engine.hpp"

#include <stdexcept>

namespace flip {

std::optional<EngineMode> parse_engine_mode(std::string_view name) noexcept {
  if (name == "batch") return EngineMode::kBatch;
  if (name == "classic") return EngineMode::kClassic;
  return std::nullopt;
}

Engine::Engine(std::size_t n, NoiseChannel& channel, Xoshiro256& rng,
               EngineOptions options)
    : mailbox_(n), channel_(channel), rng_(rng), options_(options) {
  send_buffer_.reserve(n);
}

Metrics Engine::run(Protocol& protocol, Round max_rounds) {
  Metrics metrics;
  for (Round r = 0; r < max_rounds; ++r) {
    send_buffer_.clear();
    protocol.collect_sends(r, send_buffer_);

    mailbox_.reset();
    for (const Message& msg : send_buffer_) {
      if (msg.sender >= mailbox_.population()) {
        throw std::out_of_range("Engine: sender id out of range");
      }
      mailbox_.push(msg, rng_);
    }
    metrics.messages_sent += send_buffer_.size();

    // Noise is applied to the accepted message only: flips are independent
    // per message and dropped messages are never observed, so flipping after
    // the acceptance draw is distributionally identical to flipping each
    // arrival (and much cheaper).
    for (AgentId to : mailbox_.recipients()) {
      const Message& msg = mailbox_.accepted(to);
      const std::optional<Opinion> seen = channel_.transmit(msg.bit, rng_);
      if (!seen) {
        ++metrics.erased;
        continue;
      }
      if (*seen != msg.bit) ++metrics.flipped;
      ++metrics.delivered;
      protocol.deliver(to, *seen, r);
    }
    metrics.dropped += mailbox_.dropped_this_round();

    protocol.end_round(r);
    metrics.rounds = r + 1;

    if (options_.probe_every != 0 && r % options_.probe_every == 0) {
      metrics.bias_series.push_back({r, protocol.current_bias()});
      metrics.activated_series.push_back(
          {r, static_cast<double>(protocol.current_opinionated())});
    }

    if (protocol.done(r)) break;
  }
  return metrics;
}

}  // namespace flip
