#include "sim/engine.hpp"

#include <stdexcept>

namespace flip {

std::optional<EngineMode> parse_engine_mode(std::string_view name) noexcept {
  if (name == "batch") return EngineMode::kBatch;
  if (name == "classic") return EngineMode::kClassic;
  if (name == "surrogate") return EngineMode::kSurrogate;
  return std::nullopt;
}

Engine::Engine(std::size_t n, NoiseChannel& channel, const StreamKey& key,
               EngineOptions options)
    : mailbox_(n), channel_(channel), key_(key), options_(options) {
  send_buffer_.reserve(n);
}

Engine::Engine(std::size_t n, NoiseChannel& channel, Xoshiro256& rng,
               EngineOptions options)
    : Engine(n, channel, StreamKey{rng(), rng()}, options) {}

Metrics Engine::run(Protocol& protocol, Round max_rounds) {
  Metrics metrics;
  const std::size_t n = mailbox_.population();
  const ResolvedTopology topo =
      ResolvedTopology::resolve(options_.topology, n);
  const ChurnSpec& churn = options_.churn;
  const bool churn_on = churn.enabled();
  if (churn_on) {
    awake_.assign(n, 1);
    if (churn.start_asleep > 0.0) {
      for (AgentId a = 0; a < n; ++a) {
        if (churn_starts_asleep(churn, key_, a)) awake_[a] = 0;
      }
    }
  }
  for (Round r = 0; r < max_rounds; ++r) {
    send_buffer_.clear();
    protocol.collect_sends(r, send_buffer_);

    // Round-scoped environment events first: liveness transitions (one
    // keyed draw per agent) and the channel's round state (the burst
    // lottery). Both are pure functions of (trial key, round, agent), so
    // the sharded engine replays them identically.
    if (churn_on) {
      const StreamKey churn_key =
          round_stream_key(key_, RngPurpose::kChurn, r);
      for (AgentId a = 0; a < n; ++a) {
        awake_[a] = churn_step(churn, churn_key, a, awake_[a] != 0) ? 1 : 0;
      }
    }
    channel_.begin_round(key_, r);

    mailbox_.reset();
    const StreamKey route_key = round_stream_key(key_, RngPurpose::kRoute, r);
    // The rewired topologies read the kTopology lane; the others ignore the
    // key entirely (and complete skips neighbor lookup altogether inside
    // recipient()).
    const StreamKey topo_key =
        topo.keyed() ? topo.round_key(key_, r) : StreamKey{};
    std::uint64_t sent = 0;
    for (const Message& msg : send_buffer_) {
      if (msg.sender >= n) {
        throw std::out_of_range("Engine: sender id out of range");
      }
      // An asleep sender's message never leaves it: unrouted, uncounted,
      // and no kRoute draws consumed (the stream is per-agent, so skipping
      // shifts nobody else's draws).
      if (churn_on && awake_[msg.sender] == 0) continue;
      ++sent;
      // The sender's stream: word 0.. the recipient index (uniform over
      // its out-neighbors — the n-1 other agents on the complete graph),
      // next word the acceptance priority.
      CounterRng rng(route_key, msg.sender);
      const AgentId to = topo.recipient(rng, topo_key, msg.sender);
      mailbox_.offer(to, msg.sender, msg.bit,
                     acceptance_word(rng(), msg.bit, msg.sender));
    }
    metrics.messages_sent += sent;

    // Noise is applied to the accepted message only: flips are independent
    // per message and dropped messages are never observed, so flipping after
    // acceptance is distributionally identical to flipping each arrival
    // (and much cheaper). The draw comes from the RECIPIENT's kChannel
    // stream, so it does not depend on which sender won acceptance.
    const StreamKey channel_key =
        round_stream_key(key_, RngPurpose::kChannel, r);
    for (AgentId to : mailbox_.recipients()) {
      // An asleep recipient loses its accepted message (a drop, like a
      // collision); no kChannel draw is made on its behalf.
      if (churn_on && awake_[to] == 0) {
        ++metrics.dropped;
        continue;
      }
      const Message& msg = mailbox_.accepted(to);
      CounterRng rng(channel_key, to);
      const std::optional<Opinion> seen = channel_.transmit(msg.bit, rng);
      if (!seen) {
        ++metrics.erased;
        continue;
      }
      if (*seen != msg.bit) ++metrics.flipped;
      ++metrics.delivered;
      protocol.deliver(to, *seen, r);
    }
    metrics.dropped += mailbox_.dropped_this_round();

    protocol.end_round(r);
    metrics.rounds = r + 1;

    if (options_.probe_every != 0 && r % options_.probe_every == 0) {
      metrics.bias_series.push_back({r, protocol.current_bias()});
      metrics.activated_series.push_back(
          {r, static_cast<double>(protocol.current_opinionated())});
    }

    if (protocol.done(r)) break;
  }
  return metrics;
}

}  // namespace flip
