#include "sim/metrics.hpp"

namespace flip {

void Metrics::clear() {
  rounds = 0;
  messages_sent = 0;
  delivered = 0;
  dropped = 0;
  erased = 0;
  flipped = 0;
  bias_series.clear();
  activated_series.clear();
}

}  // namespace flip
