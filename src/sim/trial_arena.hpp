#pragma once
// Per-thread pooled trial scratch — the "no cold-start per request" core
// of the sweep service. A TrialArena generalizes the engine-level
// Mailbox::reuse / Population::reuse modes one level up: it owns the
// thread's persistent BatchEngine (per-shard sender lists, touched /
// activation scratch, scatter buckets, packed counter arrays — all
// recycled by prepare_breathe) AND the trial-level result object whose
// vectors (metrics probe series, stage stats) are reset keep-capacity
// between executions. After one warm-up trial of a cell shape, every
// further trial through the arena performs zero heap allocations on the
// batch fast path with a static channel (tests/trial_arena_test.cpp holds
// this with a counting global allocator).
//
// Arenas are leased, not referenced: ThreadPool's helping wait can make a
// thread pick up ANOTHER trial while its own arena is mid-run (sharded
// trials nested in parallel sweeps), so the thread keeps a stack of
// arenas and a lease hands out the first idle one. BatchEngineLease
// (sim/batch_engine.hpp) is the engine-only view of the same stack.

#include "sim/batch_engine.hpp"

namespace flip {

/// Everything one warm Monte-Carlo trial needs, pooled per worker thread.
struct TrialArena {
  BatchEngine engine;
  /// Reused run_breathe output: vectors reset keep-capacity per trial.
  BreatheFastResult result;
};

namespace detail {
/// The calling thread's arena stack (thread_local). acquire pushes a
/// lease — growing the stack only the first time a depth is reached —
/// and release pops it. Strict LIFO: leases are scoped objects.
[[nodiscard]] TrialArena* acquire_arena();
void release_arena() noexcept;
}  // namespace detail

/// RAII lease on the calling thread's persistent TrialArena. Worker
/// threads of the sized/shared ThreadPools live for the whole process, so
/// every sweep cell of every request recycles the same per-worker scratch.
class TrialArenaLease {
 public:
  TrialArenaLease() : arena_(detail::acquire_arena()) {}
  ~TrialArenaLease() { detail::release_arena(); }
  TrialArenaLease(const TrialArenaLease&) = delete;
  TrialArenaLease& operator=(const TrialArenaLease&) = delete;

  [[nodiscard]] TrialArena& operator*() const noexcept { return *arena_; }
  [[nodiscard]] TrialArena* operator->() const noexcept { return arena_; }

 private:
  TrialArena* arena_;
};

}  // namespace flip
