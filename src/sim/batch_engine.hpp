#pragma once
// Batched fast-path simulation engine.
//
// The classic Engine (sim/engine.hpp) pays, per accepted message, a virtual
// channel call, a virtual protocol deliver, and — per trial — a fresh
// Mailbox/Population/protocol allocation. BatchEngine removes all of that
// without changing a single random draw:
//
//  * run(): a statically dispatched replica of Engine::run. The protocol
//    and channel are template parameters (FlipProtocolT / the concrete
//    channel classes are `final`), so every per-message call devirtualizes
//    and inlines, and the Mailbox + send buffer persist across trials in
//    allocation-free reuse mode.
//  * run_breathe(): a hand-packed structure-of-arrays implementation of
//    Engine + BreatheProtocol for the paper's two-stage protocol — the hot
//    workload behind broadcast / majority / boost. Mailbox slots collapse to
//    one uint32 per agent (arrival count + reservoir bit), Stage II sample
//    counters to one uint64 per agent (recv | ones | prefix-ones), and the
//    per-phase sender list is kept materialized so a round never re-reads
//    opinions. At n = 100k this shrinks the per-round working set from
//    ~5 MB (L3) to ~1.6 MB (L2-resident).
//
// Exactness contract: both paths consume the engine and protocol rng
// streams in EXACTLY the order the classic path does, so for the same
// (seed, trial) they produce bit-identical Metrics, opinions, and phase
// stats. tests/batch_engine_test.cpp enforces this for every registry
// entry; treat any divergence as a bug in this file.
//
// One BatchEngine is meant to live per worker thread and run a whole block
// of K trials of a scenario cell back to back (see local_batch_engine());
// every buffer is sized once and recycled, so trials after the first are
// allocation-free.

#include <algorithm>
#include <cmath>
#include <concepts>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "core/breathe.hpp"
#include "core/params.hpp"
#include "net/channel.hpp"
#include "net/message.hpp"
#include "sim/engine.hpp"
#include "sim/mailbox.hpp"
#include "sim/metrics.hpp"
#include "sim/population.hpp"
#include "util/rng.hpp"

namespace flip {

/// Compile-time shape of a Flip-model protocol: everything the round loop
/// calls, without requiring inheritance from Protocol. Every Protocol
/// subclass satisfies it; the templates dispatch statically, so passing the
/// concrete (`final`) type devirtualizes the whole loop.
template <typename P>
concept FlipProtocolT = requires(P p, const P cp, Round r, AgentId a,
                                 Opinion o, std::vector<Message>& out) {
  { p.collect_sends(r, out) };
  { p.deliver(a, o, r) };
  { p.end_round(r) };
  { cp.done(r) } -> std::convertible_to<bool>;
  { cp.current_bias() } -> std::convertible_to<double>;
  { cp.current_opinionated() } -> std::convertible_to<std::size_t>;
};

/// Everything one run_breathe() execution yields. Mirrors what the classic
/// path exposes through Metrics + BreatheProtocol introspection.
struct BreatheFastResult {
  Metrics metrics;
  Round protocol_rounds = 0;  ///< scheduled budget this run executed under
  bool success = false;  ///< every agent ended holding the correct opinion
  std::size_t opinionated = 0;
  double correct_fraction = 0.0;
  double final_bias = 0.0;
  std::vector<StageOnePhaseStats> stage1;
  std::vector<StageTwoPhaseStats> stage2;
};

/// True iff run_breathe() can pack this schedule's counters (Stage II phase
/// lengths must fit the 21-bit packed fields, agent ids 31 bits). Callers
/// fall back to the classic Engine when this is false.
[[nodiscard]] bool breathe_fast_supported(const Params& params);

namespace detail {

/// Per-message flip draw for the packed fast path, replaying the channel's
/// transmit() draws exactly. BscFlip turns `uniform_unit(rng) < p` into an
/// integer compare: with k = rng() >> 11, u = k * 2^-53 < p iff
/// k < ceil(p * 2^53) (p * 2^53 is an exact power-of-two scaling, so no
/// rounding is involved anywhere). One draw, no int-to-double conversion.
struct BscFlip {
  std::uint64_t threshold;
  explicit BscFlip(const BinarySymmetricChannel& channel)
      : threshold(static_cast<std::uint64_t>(
            std::ceil((0.5 - channel.eps()) * 0x1.0p53))) {}
  bool operator()(Xoshiro256& rng) const noexcept {
    return (rng() >> 11) < threshold;
  }
};

/// HeterogeneousChannel::transmit, minus the optional: same two draws in
/// the same order (bernoulli skips its draw when the sampled probability
/// is exactly zero, as the real channel does).
struct HeterogeneousFlip {
  double eps;
  explicit HeterogeneousFlip(const HeterogeneousChannel& channel)
      : eps(channel.eps()) {}
  bool operator()(Xoshiro256& rng) const noexcept {
    const double flip_prob = uniform_unit(rng) * (0.5 - eps);
    return bernoulli(rng, flip_prob);
  }
};

inline BscFlip make_flip(const BinarySymmetricChannel& channel) {
  return BscFlip(channel);
}
inline HeterogeneousFlip make_flip(const HeterogeneousChannel& channel) {
  return HeterogeneousFlip(channel);
}

// Packed-layout constants, shared structurally by the loop helpers below
// and by BatchEngine (which aliases them): send-list entries carry the
// opinion in bit 31 next to a 31-bit agent id; mailbox slots carry a
// 24-bit arrival count with the reservoir-kept opinion in bit 24.
inline constexpr std::uint32_t kSendBit = 0x8000'0000u;
inline constexpr std::uint32_t kPackedCount = (1u << 24) - 1;
inline constexpr std::uint32_t kPackedBit = 1u << 24;
// route_sends moves the opinion from send-list position to slot position
// with one shift; keep the two layouts in lockstep.
static_assert(kSendBit >> 7 == kPackedBit);

// The two per-message loops of the packed path live in their own
// deliberately-not-inlined functions: inside the (large) round loop they
// would compete for registers with all the surrounding phase state, and a
// spill inside a 100M-iteration loop costs more than a call per round.

/// Routes one round of sends into the packed mailbox slots. Returns the
/// number of touched recipients (appended to `tdata` in touch order).
[[gnu::noinline]] inline std::size_t route_sends(
    const std::uint32_t* __restrict__ sd, std::size_t nsend,
    std::uint32_t* __restrict__ slot, std::uint32_t* __restrict__ tdata,
    std::uint64_t n_minus_1, Xoshiro256& rng_ref) {
  Xoshiro256 rng = rng_ref;  // state in registers for the whole round
  std::size_t tsize = 0;
  for (std::size_t i = 0; i < nsend; ++i) {
    const std::uint32_t e = sd[i];
    const std::uint32_t sender = e & ~kSendBit;
    // Opinion bit from send-list position 31 to slot position 24.
    const std::uint32_t mbit = (e & kSendBit) >> 7;
    auto to = static_cast<std::uint32_t>(uniform_index(rng, n_minus_1));
    to += (to >= sender);
    const std::uint32_t w = slot[to];
    const std::uint32_t count = w & kPackedCount;
    tdata[tsize] = to;  // branchless append: store always, bump on miss
    tsize += (count == 0);
    if (count == 0) {
      slot[to] = 1 | mbit;
    } else {
      // Reservoir step, identical to Mailbox::push_to.
      const std::uint32_t next = count + 1;
      const std::uint32_t kept =
          uniform_index(rng, next) == 0 ? mbit : (w & kPackedBit);
      slot[to] = next | kept;
    }
  }
  rng_ref = rng;
  return tsize;
}

/// Delivers one Stage II round: clears each touched slot, applies the
/// channel flip, and bumps the packed recv/ones counters. Returns the
/// number of flipped messages.
template <typename FlipFn>
[[gnu::noinline]] inline std::uint64_t deliver_stage2(
    const std::uint32_t* __restrict__ tdata, std::size_t tsize,
    std::uint32_t* __restrict__ slot, std::uint64_t* __restrict__ acc,
    FlipFn flips, Xoshiro256& rng_ref) {
  Xoshiro256 rng = rng_ref;
  std::uint64_t flipped = 0;
  for (std::size_t i = 0; i < tsize; ++i) {
    if (i + 16 < tsize) {
      __builtin_prefetch(&slot[tdata[i + 16]], 1);
      __builtin_prefetch(&acc[tdata[i + 16]], 1);
    }
    const std::uint32_t to = tdata[i];
    const std::uint32_t w = slot[to];
    slot[to] = 0;
    const bool sent_one = (w & kPackedBit) != 0;
    const bool flip = flips(rng);
    flipped += flip;
    std::uint64_t v = acc[to] + 1;  // ++recv
    if (sent_one != flip) v += std::uint64_t{1} << 32;  // ++ones
    acc[to] = v;
  }
  rng_ref = rng;
  return flipped;
}

}  // namespace detail

class BatchEngine {
 public:
  BatchEngine() = default;

  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  /// Statically dispatched replica of Engine::run for population n: same
  /// loop, same rng draw order, identical Metrics — but with `protocol` and
  /// `channel` as concrete types every per-message call inlines, and the
  /// mailbox/send buffers reused across calls.
  template <FlipProtocolT P, typename C>
  Metrics run(std::size_t n, P& protocol, C& channel, Xoshiro256& rng,
              Round max_rounds, EngineOptions options = {}) {
    mailbox_.reuse(n);
    send_buffer_.clear();
    if (send_buffer_.capacity() < n) send_buffer_.reserve(n);

    Metrics metrics;
    for (Round r = 0; r < max_rounds; ++r) {
      send_buffer_.clear();
      protocol.collect_sends(r, send_buffer_);

      mailbox_.reset();
      for (const Message& msg : send_buffer_) {
        if (msg.sender >= mailbox_.population()) {
          throw std::out_of_range("BatchEngine: sender id out of range");
        }
        mailbox_.push(msg, rng);
      }
      metrics.messages_sent += send_buffer_.size();

      for (AgentId to : mailbox_.recipients()) {
        const Message& msg = mailbox_.accepted(to);
        const std::optional<Opinion> seen = channel.transmit(msg.bit, rng);
        if (!seen) {
          ++metrics.erased;
          continue;
        }
        if (*seen != msg.bit) ++metrics.flipped;
        ++metrics.delivered;
        protocol.deliver(to, *seen, r);
      }
      metrics.dropped += mailbox_.dropped_this_round();

      protocol.end_round(r);
      metrics.rounds = r + 1;

      if (options.probe_every != 0 && r % options.probe_every == 0) {
        metrics.bias_series.push_back({r, protocol.current_bias()});
        metrics.activated_series.push_back(
            {r, static_cast<double>(protocol.current_opinionated())});
      }

      if (protocol.done(r)) break;
    }
    return metrics;
  }

  /// The packed SoA fast path for the two-stage breathe protocol. Runs one
  /// execution; call in a loop for a block of trials (all buffers recycle).
  /// `stage1_only` truncates the budget to Stage I, like run_broadcast's
  /// stage1_only switch. Precondition: breathe_fast_supported(params).
  ///
  /// Dispatches to the single-cell packed loop (one uint64 of state per
  /// agent — one random access per message instead of three) whenever the
  /// schedule's counters fit and the channel is a pure flip channel;
  /// otherwise runs the wide layout. Either way the rng draw sequence is
  /// the classic engine's, draw for draw.
  template <typename Channel>
  BreatheFastResult run_breathe(const Params& params,
                                const BreatheConfig& config, Channel& channel,
                                Xoshiro256& engine_rng,
                                Xoshiro256& protocol_rng, bool stage1_only,
                                EngineOptions options = {}) {
    constexpr bool kFlipOnly =
        std::is_same_v<Channel, BinarySymmetricChannel> ||
        std::is_same_v<Channel, HeterogeneousChannel>;
    if constexpr (kFlipOnly) {
      if (config.stage2_subset == Stage2Subset::kUniformSubset &&
          breathe_packed_supported(params)) {
        return run_breathe_packed(params, config, channel, engine_rng,
                                  protocol_rng, stage1_only, options);
      }
    }
    return run_breathe_wide(params, config, channel, engine_rng, protocol_rng,
                            stage1_only, options);
  }

 private:
  /// Wide layout: separate mailbox-slot and counter arrays, 21-bit Stage II
  /// fields, arbitrary channels, prefix-subset tracking. The fallback when
  /// the packed cell does not fit.
  template <typename Channel>
  BreatheFastResult run_breathe_wide(const Params& params,
                                     const BreatheConfig& config,
                                     Channel& channel, Xoshiro256& engine_rng,
                                     Xoshiro256& protocol_rng,
                                     bool stage1_only,
                                     EngineOptions options = {}) {
    const StageOneSchedule& s1 = params.stage1();
    const StageTwoSchedule& s2 = params.stage2();
    prepare_breathe(params, config);
    const auto [stage1_offset, stage1_rounds, total_rounds, budget] =
        breathe_schedule(params, config, stage1_only);

    BreatheFastResult result;
    result.protocol_rounds = budget;
    Metrics& metrics = result.metrics;

    const auto n = static_cast<std::uint32_t>(params.n());
    const std::uint64_t n_minus_1 = n - 1;
    const bool uniform_pick =
        config.stage1_pick == Stage1Pick::kUniformMessage;

    for (Round r = 0; r < budget; ++r) {
      const bool in_s1 = r < stage1_rounds;

      // --- collect + route. The sender list is kept materialized across a
      // phase (opinions only change at phase boundaries), so the classic
      // collect_sends pass disappears: one sequential read per message.
      const std::size_t nsend = send_.size();
      metrics.messages_sent += nsend;
      for (std::size_t i = 0; i < nsend; ++i) {
        const std::uint32_t e = send_[i];
        const auto sender = static_cast<AgentId>(e & ~kSlotBit);
        const std::uint32_t bit = e & kSlotBit;
        auto to = static_cast<AgentId>(uniform_index(engine_rng, n_minus_1));
        to += static_cast<AgentId>(to >= sender);
        const std::uint32_t slot = slot_[to];
        const std::uint32_t count = slot & ~kSlotBit;
        if (count == 0) {
          touched_.push_back(to);
          slot_[to] = 1u | bit;
        } else {
          // Reservoir step, identical to Mailbox::push_to.
          const std::uint32_t next = count + 1;
          const std::uint32_t kept =
              uniform_index(engine_rng, next) == 0 ? bit : (slot & kSlotBit);
          slot_[to] = next | kept;
        }
      }

      // --- deliver, in touch order, with the round's phase state hoisted
      // out of the per-message loop. Slots are cleared as they are read
      // (the classic path clears them at the top of the next round).
      if (in_s1) {
        for (const AgentId to : touched_) {
          const std::uint32_t slot = slot_[to];
          slot_[to] = 0;
          const auto sent =
              static_cast<Opinion>((slot & kSlotBit) != 0);
          const std::optional<Opinion> seen =
              channel.transmit(sent, engine_rng);
          if (!seen) {
            ++metrics.erased;
            continue;
          }
          metrics.flipped += (*seen != sent);
          ++metrics.delivered;
          if (pop_.has_opinion(to)) continue;  // Stage I ignores these
          const std::uint64_t w = acc_[to];
          const std::uint64_t recv = (w & kS1RecvMask) + 1;
          if (recv == 1) activation_buffer_.push_back(to);
          std::uint64_t kept;
          if (uniform_pick) {
            kept = (recv == 1 || uniform_index(protocol_rng, recv) == 0)
                       ? static_cast<std::uint64_t>(*seen)
                       : (w >> kKeptShift);
          } else {
            kept = recv == 1 ? static_cast<std::uint64_t>(*seen)
                             : (w >> kKeptShift);
          }
          acc_[to] = recv | (kept << kKeptShift);
        }
      } else {
        const std::uint64_t threshold =
            s2.half_length(s2.phase_of_round(r - stage1_rounds));
        for (const AgentId to : touched_) {
          const std::uint32_t slot = slot_[to];
          slot_[to] = 0;
          const auto sent =
              static_cast<Opinion>((slot & kSlotBit) != 0);
          const std::optional<Opinion> seen =
              channel.transmit(sent, engine_rng);
          if (!seen) {
            ++metrics.erased;
            continue;
          }
          metrics.flipped += (*seen != sent);
          ++metrics.delivered;
          std::uint64_t w = acc_[to] + 1;  // ++recv
          if (*seen == Opinion::kOne) {
            w += (std::uint64_t{1} << kOnesShift) +
                 ((w & kFieldMask) <= threshold
                      ? (std::uint64_t{1} << kPrefixShift)
                      : 0);
          }
          acc_[to] = w;
        }
      }
      metrics.dropped += nsend - touched_.size();
      touched_.clear();

      // --- end of round: phase boundaries, probes, termination.
      if (in_s1) {
        const Round sr = r + stage1_offset;
        const std::uint64_t phase = s1.phase_of_round(sr);
        if (sr + 1 == s1.phase_end(phase)) {
          finalize_stage1(phase, config.correct, result.stage1);
        }
      } else {
        const Round sr = r - stage1_rounds;
        const std::uint64_t phase = s2.phase_of_round(sr);
        if (sr + 1 == s2.phase_start(phase) + s2.phase_length(phase)) {
          finalize_stage2(phase, config, s2, protocol_rng, result.stage2);
        }
      }
      metrics.rounds = r + 1;

      if (options.probe_every != 0 && r % options.probe_every == 0) {
        metrics.bias_series.push_back({r, pop_.bias(config.correct)});
        metrics.activated_series.push_back(
            {r, static_cast<double>(pop_.opinionated())});
      }

      if (r + 1 >= total_rounds) break;
    }

    finish_breathe(result, config.correct);
    return result;
  }

  /// Packed layout: the route loop touches ONE uint32 mailbox slot per
  /// message (arrival count in bits 0..23, reservoir-kept opinion in bit
  /// 24) — a 400 KB array at n = 100k, small enough that the
  /// collision-branch's gating load almost always hits L2 — and the
  /// delivery loop touches that slot plus one uint64 counter word, both
  /// software-prefetched through the touched list:
  ///
  ///   Stage I counters:  bits 0..23 recv count, bit 32 kept opinion,
  ///                      bit 33 has-opinion (mirror of pop_, maintained
  ///                      at phase boundaries)
  ///   Stage II counters: bits 0..14 recv count, bits 32..46 ones count
  ///
  /// Stage I fields are wiped by the one fill() at the stage boundary.
  template <typename Channel>
  BreatheFastResult run_breathe_packed(const Params& params,
                                       const BreatheConfig& config,
                                       Channel& channel,
                                       Xoshiro256& engine_rng,
                                       Xoshiro256& protocol_rng,
                                       bool stage1_only,
                                       const EngineOptions& options) {
    const StageOneSchedule& s1 = params.stage1();
    const StageTwoSchedule& s2 = params.stage2();
    prepare_breathe(params, config);
    const auto [stage1_offset, stage1_rounds, total_rounds, budget] =
        breathe_schedule(params, config, stage1_only);

    BreatheFastResult result;
    result.protocol_rounds = budget;
    Metrics& metrics = result.metrics;

    const std::size_t n = params.n();
    touched_.resize(n);  // indexed directly; size managed per round
    if (stage1_rounds > 0) {
      // Seeds behave as opinionated from round 0. (Under skip_stage1 the
      // Stage II field layout owns these bits, so the flag must stay
      // clear — Stage I never runs.)
      for (const Seed& seed : config.initial) {
        acc_[seed.agent] = kS1HasOpinion;
      }
    }

    const auto flips = detail::make_flip(channel);
    const std::uint64_t n_minus_1 = n - 1;
    const bool uniform_pick =
        config.stage1_pick == Stage1Pick::kUniformMessage;
    std::uint32_t* const __restrict__ slot = slot_.data();
    std::uint64_t* const __restrict__ acc = acc_.data();
    AgentId* const __restrict__ tdata = touched_.data();

    // Work on LOCAL rng copies: through the caller's references, every
    // draw's 256-bit state update would have to round-trip through memory
    // (stores through the state arrays may alias it), lengthening the
    // serial rng dependency chain that paces both loops. Written back
    // before returning.
    Xoshiro256 erng = engine_rng;
    Xoshiro256 prng = protocol_rng;

    // Counter locals: acc stores are uint64 writes that could legally
    // alias Metrics' uint64 fields, so counting into metrics directly
    // would force a reload/store per message.
    std::uint64_t messages = 0;
    std::uint64_t delivered = 0;
    std::uint64_t flipped = 0;
    std::uint64_t dropped = 0;

    for (Round r = 0; r < budget; ++r) {
      const bool in_s1 = r < stage1_rounds;

      const std::size_t nsend = send_.size();
      messages += nsend;
      const std::size_t tsize = detail::route_sends(
          send_.data(), nsend, slot, tdata, n_minus_1, erng);
      dropped += nsend - tsize;

      if (in_s1) {
        for (std::size_t i = 0; i < tsize; ++i) {
          if (i + 16 < tsize) {
            __builtin_prefetch(&slot[tdata[i + 16]], 1);
            __builtin_prefetch(&acc[tdata[i + 16]], 1);
          }
          const AgentId to = tdata[i];
          const std::uint32_t w = slot[to];
          slot[to] = 0;
          const bool sent_one = (w & kPackedBit) != 0;
          const bool flip = flips(erng);
          flipped += flip;
          ++delivered;
          const bool seen_one = sent_one != flip;
          const std::uint64_t v = acc[to];
          if (v & kS1HasOpinion) continue;  // Stage I ignores opinionated
          const std::uint64_t recv = (v & kPackedCount) + 1;
          if (recv == 1) activation_buffer_.push_back(to);
          std::uint64_t kept;
          if (uniform_pick) {
            kept = (recv == 1 || uniform_index(prng, recv) == 0)
                       ? static_cast<std::uint64_t>(seen_one)
                       : ((v >> kS1KeptShift) & 1);
          } else {
            kept = recv == 1 ? static_cast<std::uint64_t>(seen_one)
                             : ((v >> kS1KeptShift) & 1);
          }
          acc[to] = recv | (kept << kS1KeptShift);
        }
      } else {
        flipped += detail::deliver_stage2(tdata, tsize, slot, acc, flips,
                                          erng);
        delivered += tsize;
      }

      if (in_s1) {
        const Round sr = r + stage1_offset;
        const std::uint64_t phase = s1.phase_of_round(sr);
        if (sr + 1 == s1.phase_end(phase)) {
          finalize_stage1_packed(phase, config.correct, result.stage1);
        }
        if (r + 1 == stage1_rounds) {
          // Stage boundary: Stage I counter fields retire, Stage II
          // counters must start from zero.
          std::fill(acc_.begin(), acc_.end(), 0);
        }
      } else {
        const Round sr = r - stage1_rounds;
        const std::uint64_t phase = s2.phase_of_round(sr);
        if (sr + 1 == s2.phase_start(phase) + s2.phase_length(phase)) {
          finalize_stage2_packed(phase, config, s2, prng, result.stage2);
        }
      }
      metrics.rounds = r + 1;

      if (options.probe_every != 0 && r % options.probe_every == 0) {
        metrics.bias_series.push_back({r, pop_.bias(config.correct)});
        metrics.activated_series.push_back(
            {r, static_cast<double>(pop_.opinionated())});
      }

      if (r + 1 >= total_rounds) break;
    }

    metrics.messages_sent = messages;
    metrics.delivered = delivered;
    metrics.flipped = flipped;
    metrics.dropped = dropped;
    engine_rng = erng;
    protocol_rng = prng;

    finish_breathe(result, config.correct);
    return result;
  }

  // Packed layouts. Slot: arrival count in bits 0..30, reservoir-kept bit
  // in bit 31. Stage I accumulator: recv count in bits 0..62, kept bit in
  // bit 63. Stage II accumulator: recv | ones | prefix-ones as three 21-bit
  // fields (phase lengths are bounded by breathe_fast_supported).
  static constexpr std::uint32_t kSlotBit = detail::kSendBit;
  static constexpr int kKeptShift = 63;
  static constexpr std::uint64_t kS1RecvMask =
      (std::uint64_t{1} << kKeptShift) - 1;
  static constexpr int kOnesShift = 21;
  static constexpr int kPrefixShift = 42;
  static constexpr std::uint64_t kFieldMask = (std::uint64_t{1} << 21) - 1;

  // Packed-path layout (run_breathe_packed): the detail:: mailbox-slot
  // constants, plus Stage I kept/has-opinion flags at bits 32/33 of the
  // counter word and the Stage II ones count at bits 32..46.
  static constexpr std::uint32_t kPackedCount = detail::kPackedCount;
  static constexpr std::uint32_t kPackedBit = detail::kPackedBit;
  static constexpr int kS1KeptShift = 32;
  static constexpr std::uint64_t kS1HasOpinion = std::uint64_t{1} << 33;
  static constexpr int kS2PackedOnesShift = 32;
  static constexpr std::uint64_t kS2PackedField = (std::uint64_t{1} << 15) - 1;

  friend bool breathe_fast_supported(const Params& params);

  /// True iff every counter of `params`'s schedule fits the single-cell
  /// packed fields (population in the 24-bit arrival count, Stage II phase
  /// lengths in 15 bits).
  [[nodiscard]] static bool breathe_packed_supported(const Params& params);

  /// Validates the config (same rules as BreatheProtocol's constructor),
  /// resets all per-trial state, and seeds the initial set.
  void prepare_breathe(const Params& params, const BreatheConfig& config);

  /// The round layout both layouts run under — one copy of the
  /// skip_stage1/start_phase arithmetic that BreatheProtocol's constructor
  /// also performs, so the layouts cannot drift from each other.
  struct BreatheSchedule {
    Round stage1_offset = 0;
    Round stage1_rounds = 0;
    Round total_rounds = 0;
    Round budget = 0;  ///< rounds this run executes (stage1_only truncates)
  };
  static BreatheSchedule breathe_schedule(const Params& params,
                                          const BreatheConfig& config,
                                          bool stage1_only);

  /// Fills the end-of-run population summary fields of `result`.
  void finish_breathe(BreatheFastResult& result, Opinion correct) const;

  void finalize_stage1(std::uint64_t phase, Opinion correct,
                       std::vector<StageOnePhaseStats>& out);
  void finalize_stage2(std::uint64_t phase, const BreatheConfig& config,
                       const StageTwoSchedule& s2, Xoshiro256& protocol_rng,
                       std::vector<StageTwoPhaseStats>& out);
  void finalize_stage1_packed(std::uint64_t phase, Opinion correct,
                              std::vector<StageOnePhaseStats>& out);
  void finalize_stage2_packed(std::uint64_t phase,
                              const BreatheConfig& config,
                              const StageTwoSchedule& s2,
                              Xoshiro256& protocol_rng,
                              std::vector<StageTwoPhaseStats>& out);

  // Generic-path scratch.
  Mailbox mailbox_{2};
  std::vector<Message> send_buffer_;

  // Breathe fast-path scratch (structure-of-arrays, persistent).
  Population pop_{2};
  std::vector<std::uint32_t> slot_;  ///< packed mailbox slot per agent
  std::vector<std::uint64_t> acc_;   ///< packed sample counters per agent
  std::vector<AgentId> touched_;
  std::vector<AgentId> opinionated_;
  std::vector<AgentId> activation_buffer_;
  std::vector<std::uint32_t> send_;  ///< agent id | opinion bit (bit 31)
};

/// The calling thread's persistent BatchEngine. Worker threads of the
/// shared ThreadPool live for the whole process, so a sweep's grid cells
/// all recycle the same per-worker scratch.
BatchEngine& local_batch_engine();

}  // namespace flip
