#pragma once
// Batched fast-path simulation engine, with optional intra-trial sharding.
//
// The classic Engine (sim/engine.hpp) pays, per accepted message, a virtual
// channel call, a virtual protocol deliver, and — per trial — a fresh
// Mailbox/Population/protocol allocation. BatchEngine removes all of that,
// and on top partitions one trial's agents into S shards that execute each
// round's route and deliver phases in parallel:
//
//  * run(): a statically dispatched replica of Engine::run. The protocol
//    and channel are template parameters (FlipProtocolT / the concrete
//    channel classes are `final`), so every per-message call devirtualizes
//    and inlines, and the Mailbox + send buffer persist across trials in
//    allocation-free reuse mode.
//  * run_breathe(): a hand-packed structure-of-arrays implementation of
//    Engine + BreatheProtocol for the paper's two-stage protocol — the hot
//    workload behind broadcast / majority / boost. Each round runs two
//    shard-parallel phases over the persistent ThreadPool workers:
//      route   — every shard walks its own materialized sender list, draws
//                each sender's recipient + acceptance priority from the
//                sender's counter stream, and scatters the message into the
//                destination shard's inbox bucket;
//      deliver — every shard min-combines the arrivals for its agent range
//                (smallest (priority, sender) pair wins — a commutative
//                reduction, so any arrival order gives the same winner),
//                then applies the recipient-keyed channel flip and bumps
//                the packed per-agent counters.
//    Phase ends merge shard partials in shard order (integer sums, so the
//    merge is exact) and run the per-agent Stage II subset draws
//    shard-parallel from per-agent streams.
//
// Exactness contract: every random draw comes from the counter-based
// per-agent stream named by (trial key, round, agent, purpose) — see
// util/rng.hpp — never from a shared sequential stream. A draw is a pure
// function of its key, so for the same (seed, trial) the classic Engine,
// this engine with 1 shard, and this engine with any other shard count
// produce bit-identical Metrics, opinions, and phase stats, on any thread
// count. tests/batch_engine_test.cpp enforces classic == batch for every
// registry entry and shard-count invariance for the breathe scenarios;
// treat any divergence as a bug in this file.
//
// One BatchEngine is meant to live per worker thread and run a whole block
// of K trials of a scenario cell back to back (see BatchEngineLease);
// every buffer is sized once and recycled, so trials after the first are
// allocation-free.

#include <algorithm>
#include <cmath>
#include <concepts>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <type_traits>
#include <vector>

#include "core/breathe.hpp"
#include "core/params.hpp"
#include "core/topology.hpp"
#include "net/channel.hpp"
#include "net/message.hpp"
#include "sim/engine.hpp"
#include "sim/mailbox.hpp"
#include "sim/metrics.hpp"
#include "sim/population.hpp"
#include "simd/simd.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace flip {

/// Compile-time shape of a Flip-model protocol: everything the round loop
/// calls, without requiring inheritance from Protocol. Every Protocol
/// subclass satisfies it; the templates dispatch statically, so passing the
/// concrete (`final`) type devirtualizes the whole loop.
template <typename P>
concept FlipProtocolT = requires(P p, const P cp, Round r, AgentId a,
                                 Opinion o, std::vector<Message>& out) {
  { p.collect_sends(r, out) };
  { p.deliver(a, o, r) };
  { p.end_round(r) };
  { cp.done(r) } -> std::convertible_to<bool>;
  { cp.current_bias() } -> std::convertible_to<double>;
  { cp.current_opinionated() } -> std::convertible_to<std::size_t>;
};

/// Everything one run_breathe() execution yields. Mirrors what the classic
/// path exposes through Metrics + BreatheProtocol introspection.
struct BreatheFastResult {
  Metrics metrics;
  Round protocol_rounds = 0;  ///< scheduled budget this run executed under
  bool success = false;  ///< every agent ended holding the correct opinion
  std::size_t opinionated = 0;
  double correct_fraction = 0.0;
  double final_bias = 0.0;
  std::vector<StageOnePhaseStats> stage1;
  std::vector<StageTwoPhaseStats> stage2;

  /// Reinitializes for the next execution, keeping every vector's capacity
  /// — the TrialArena pooling contract (sim/trial_arena.hpp): a result
  /// object that cycles through reset()/run_breathe() settles into a
  /// steady state with zero heap allocations per trial.
  void reset() noexcept {
    metrics.clear();
    protocol_rounds = 0;
    success = false;
    opinionated = 0;
    correct_fraction = 0.0;
    final_bias = 0.0;
    stage1.clear();
    stage2.clear();
  }
};

/// Execution knobs for run_breathe(). Agent churn rides in
/// engine.churn: the sharded path advances each shard's agent block from
/// the per-(round, agent) kChurn streams and merges the liveness deltas
/// exactly, so results match the classic Engine bit for bit.
struct BreatheRunOptions {
  EngineOptions engine;
  /// Agent partitions per round phase. Results are bit-identical for every
  /// value (the determinism contract); >1 buys wall-clock on multi-core.
  std::size_t shards = 1;
  /// Workers the shard phases run on; nullptr (or shards <= 1) runs them
  /// inline on the calling thread.
  ThreadPool* pool = nullptr;
};

/// True iff run_breathe() can pack this schedule's counters (Stage II phase
/// lengths must fit the 21-bit packed fields, agent ids 31 bits). Callers
/// fall back to the classic Engine when this is false.
[[nodiscard]] bool breathe_fast_supported(const Params& params);

namespace detail {

/// The integer flip threshold of a BSC with advantage eps: with
/// k = rng() >> 11, u = k * 2^-53 < p iff k < ceil(p * 2^53) (p * 2^53 is
/// an exact power-of-two scaling, so no rounding is involved anywhere).
[[nodiscard]] inline std::uint64_t bsc_flip_threshold(double eps) noexcept {
  return static_cast<std::uint64_t>(std::ceil((0.5 - eps) * 0x1.0p53));
}

/// Per-message flip draw for the packed fast path, producing exactly the
/// decision the channel's transmit() makes from the same stream. BscFlip
/// turns `uniform_unit(rng) < p` into an integer compare (see
/// bsc_flip_threshold). One draw, no int-to-double conversion.
/// Every flip functor exposes begin_round(): a no-op for the static
/// channels, the schedule evaluation for the round-scoped one.
/// Flip functors additionally expose kIntegerThreshold: true when the
/// per-message decision is exactly `(rng() >> 11) < threshold` for a
/// round-constant `threshold` member — the shape the SIMD flip kernel
/// implements. HeterogeneousFlip draws a data-dependent probability per
/// message, so it opts out and keeps the scalar deliver loop (its route
/// phase still vectorizes: route draws are channel-independent).
struct BscFlip {
  static constexpr bool kIntegerThreshold = true;
  std::uint64_t threshold;
  explicit BscFlip(const BinarySymmetricChannel& channel)
      : threshold(bsc_flip_threshold(channel.eps())) {}
  void begin_round(const StreamKey&, Round) noexcept {}
  template <typename Rng>
  bool operator()(Rng& rng) const noexcept {
    return (rng() >> 11) < threshold;
  }
};

/// HeterogeneousChannel::transmit, minus the optional: same draws from the
/// same per-recipient stream.
struct HeterogeneousFlip {
  static constexpr bool kIntegerThreshold = false;
  double eps;
  explicit HeterogeneousFlip(const HeterogeneousChannel& channel)
      : eps(channel.eps()) {}
  void begin_round(const StreamKey&, Round) noexcept {}
  template <typename Rng>
  bool operator()(Rng& rng) const noexcept {
    const double flip_prob = uniform_unit(rng) * (0.5 - eps);
    return bernoulli(rng, flip_prob);
  }
};

/// CorrelatedBurstChannel::transmit as an integer-threshold compare: the
/// round's eps comes from the same schedule evaluation (same kEnvironment
/// draw) the channel's begin_round performs, re-pinned here once per round,
/// so the per-message loop stays one draw + one compare like BscFlip.
struct ScheduledFlip {
  static constexpr bool kIntegerThreshold = true;
  const EnvironmentSchedule* schedule;
  std::uint64_t threshold = 0;
  explicit ScheduledFlip(const CorrelatedBurstChannel& channel)
      : schedule(&channel.schedule()) {}
  void begin_round(const StreamKey& trial_key, Round r) noexcept {
    threshold = bsc_flip_threshold(schedule->eps_at(trial_key, r));
  }
  template <typename Rng>
  bool operator()(Rng& rng) const noexcept {
    return (rng() >> 11) < threshold;
  }
};

inline BscFlip make_flip(const BinarySymmetricChannel& channel) {
  return BscFlip(channel);
}
inline HeterogeneousFlip make_flip(const HeterogeneousChannel& channel) {
  return HeterogeneousFlip(channel);
}
inline ScheduledFlip make_flip(const CorrelatedBurstChannel& channel) {
  return ScheduledFlip(channel);
}

// Packed-layout constants. Send-list entries carry the opinion in bit 31
// next to a 31-bit agent id; the per-agent acceptance slot holds one
// acceptance_word (sim/mailbox.hpp): priority | opinion bit | sender.
inline constexpr std::uint32_t kSendBit = 0x8000'0000u;
inline constexpr std::uint32_t kAgentMask = ~kSendBit;
/// Slot sentinel for "no arrival yet": the maximum word, which no real
/// acceptance_word equals (its sender field would be 2^31 - 1 >= n).
inline constexpr std::uint64_t kEmptySlot = ~std::uint64_t{0};

// Per-agent counter layouts. Stage I accumulator: recv count in bits
// 0..62, kept bit in bit 63. Stage II accumulator: recv | ones |
// prefix-ones as three 21-bit fields (phase lengths are bounded by
// breathe_fast_supported).
inline constexpr int kKeptShift = 63;
inline constexpr std::uint64_t kS1RecvMask =
    (std::uint64_t{1} << kKeptShift) - 1;
inline constexpr int kOnesShift = 21;
inline constexpr int kPrefixShift = 42;
inline constexpr std::uint64_t kFieldMask = (std::uint64_t{1} << 21) - 1;

/// One routed message in flight between a source and a destination shard.
struct RoutedMsg {
  std::uint64_t word;  ///< acceptance_word: priority | opinion bit | sender
  std::uint32_t to;    ///< recipient
};

// The per-message loops live in their own deliberately-not-inlined
// functions: inside the (large) templated round loop they would compete
// for registers with all the surrounding phase state, and a spill inside a
// 100M-iteration loop costs more than a call per round.

/// The min-combine acceptance step: keeps the smallest acceptance_word.
/// Commutative + associative, hence identical for any arrival order and
/// any shard partition. Returns the new touched count (branchless append:
/// store always, bump on first arrival — the sentinel is the max word, so
/// the min-compare alone also decides first-touch wins).
inline std::size_t combine(std::uint32_t to, std::uint64_t word,
                           std::uint64_t* __restrict__ slot,
                           AgentId* __restrict__ tdata, std::size_t tsize) {
  const std::uint64_t cur = slot[to];
  tdata[tsize] = to;
  tsize += cur == kEmptySlot;
  if (word < cur) slot[to] = word;
  return tsize;
}

/// Counts one shard's route pass produces: recipients touched (in-place
/// combine only) and messages actually sent (== the sender-list size unless
/// churn put senders to sleep).
struct RoutePartial {
  std::size_t touched = 0;
  std::uint64_t sent = 0;
};

/// Counts one shard's deliver pass produces: messages whose bit flipped and
/// accepted messages lost to an asleep recipient.
struct DeliverPartial {
  std::uint64_t flipped = 0;
  std::uint64_t asleep_drops = 0;
};

/// Recipient policies for the route loops below. Both consume the same
/// kRoute words (one uniform_index draw, then the caller takes the
/// acceptance-priority word), so swapping policies never shifts any other
/// stream — the topology's draw bound is the ONE bound the scalar, SIMD,
/// and sharded route paths share.
///
/// The complete graph keeps its own policy (rather than going through
/// ResolvedTopology::recipient) so the historical hot loop compiles to the
/// identical branch-free body it always had.
struct CompleteRecipient {
  std::uint64_t draw_bound;  ///< n - 1: uniform over the other agents
  template <typename Rng>
  std::uint32_t operator()(Rng& rng, std::uint32_t sender) const {
    auto to = static_cast<std::uint32_t>(uniform_index(rng, draw_bound));
    to += (to >= sender);
    return to;
  }
};

/// Sparse topologies: the drawn index selects an out-neighbor; the rewired
/// kinds additionally read the round's kTopology-lane key.
struct GraphRecipient {
  const ResolvedTopology* topo;
  StreamKey topo_key;
  template <typename Rng>
  std::uint32_t operator()(Rng& rng, std::uint32_t sender) const {
    return topo->recipient(rng, topo_key, sender);
  }
};

/// Routes one shard's senders and min-combines in place (the single-shard
/// fast path: no bucket materialization). kChurn filters asleep senders
/// through `awake` (unused when false — the template keeps the common
/// static-population loop branch-free).
template <bool kChurn, typename RecipientFn>
[[gnu::noinline]] inline RoutePartial route_combine(
    const std::uint32_t* __restrict__ send, std::size_t nsend,
    const RecipientFn recipient, const StreamKey rkey,
    const std::uint8_t* __restrict__ awake,
    std::uint64_t* __restrict__ slot, AgentId* __restrict__ tdata) {
  RoutePartial partial;
  std::size_t tsize = 0;
  for (std::size_t i = 0; i < nsend; ++i) {
    const std::uint32_t e = send[i];
    const std::uint32_t sender = e & kAgentMask;
    if constexpr (kChurn) {
      if (awake[sender] == 0) continue;  // asleep: no send, no draws
    }
    ++partial.sent;
    CounterRng rng(rkey, sender);
    const std::uint32_t to = recipient(rng, sender);
    tsize = combine(to, acceptance_word(rng(), (e & kSendBit) | sender),
                    slot, tdata, tsize);
  }
  partial.touched = tsize;
  return partial;
}

/// Routes one shard's senders into per-destination-shard buckets (the
/// multi-shard route phase; `shard_mul` is the fastdiv reciprocal of the
/// shard block size). Returns the number of messages sent.
template <bool kChurn, typename RecipientFn>
[[gnu::noinline]] inline std::uint64_t route_scatter(
    const std::uint32_t* __restrict__ send, std::size_t nsend,
    const RecipientFn recipient, const StreamKey rkey,
    std::uint64_t shard_mul, const std::uint8_t* __restrict__ awake,
    std::vector<RoutedMsg>* __restrict__ out) {
  std::uint64_t sent = 0;
  for (std::size_t i = 0; i < nsend; ++i) {
    const std::uint32_t e = send[i];
    const std::uint32_t sender = e & kAgentMask;
    if constexpr (kChurn) {
      if (awake[sender] == 0) continue;
    }
    ++sent;
    CounterRng rng(rkey, sender);
    const std::uint32_t to = recipient(rng, sender);
    const auto dst = static_cast<std::size_t>(
        (static_cast<unsigned __int128>(to) * shard_mul) >> 64);
    out[dst].push_back(
        RoutedMsg{acceptance_word(rng(), (e & kSendBit) | sender), to});
  }
  return sent;
}

/// Min-combines one inbound bucket into a destination shard's slots.
/// Returns the updated touched count.
[[gnu::noinline]] inline std::size_t combine_bucket(
    const RoutedMsg* __restrict__ msgs, std::size_t count,
    std::uint64_t* __restrict__ slot, AgentId* __restrict__ tdata,
    std::size_t tsize) {
  for (std::size_t i = 0; i < count; ++i) {
    tsize = combine(msgs[i].to, msgs[i].word, slot, tdata, tsize);
  }
  return tsize;
}

/// Delivers one Stage II round for one shard's touched recipients: clears
/// each meta slot, applies the recipient-keyed channel flip, and bumps the
/// packed recv/ones/prefix counters. Under kChurn an asleep recipient's
/// accepted message is discarded (no draw, no counter bump) and counted as
/// an asleep drop.
template <bool kChurn, typename FlipFn>
[[gnu::noinline]] inline DeliverPartial deliver_stage2(
    const AgentId* __restrict__ tdata, std::size_t tsize,
    const StreamKey ckey, std::uint64_t threshold,
    const std::uint8_t* __restrict__ awake,
    std::uint64_t* __restrict__ slot, std::uint64_t* __restrict__ acc,
    FlipFn flips) {
  DeliverPartial partial;
  for (std::size_t i = 0; i < tsize; ++i) {
    if (i + 16 < tsize) {
      __builtin_prefetch(&slot[tdata[i + 16]], 1);
      __builtin_prefetch(&acc[tdata[i + 16]], 1);
    }
    const AgentId to = tdata[i];
    const std::uint64_t m = slot[to];
    slot[to] = kEmptySlot;
    if constexpr (kChurn) {
      if (awake[to] == 0) {
        ++partial.asleep_drops;
        continue;
      }
    }
    const bool sent_one = (m & kSendBit) != 0;
    CounterRng rng(ckey, to);
    const bool flip = flips(rng);
    partial.flipped += flip;
    std::uint64_t w = acc[to] + 1;  // ++recv
    if (sent_one != flip) {
      w += (std::uint64_t{1} << kOnesShift) +
           ((w & kFieldMask) <= threshold ? (std::uint64_t{1} << kPrefixShift)
                                          : 0);
    }
    acc[to] = w;
  }
  return partial;
}

/// Delivers one Stage I round for one shard's touched recipients: churn
/// filter, channel flip, then the protocol's activation bookkeeping and
/// (under the uniform pick rule) the keyed reservoir decision.
template <bool kChurn, typename FlipFn>
[[gnu::noinline]] inline DeliverPartial deliver_stage1(
    const AgentId* __restrict__ tdata, std::size_t tsize,
    const StreamKey ckey, const StreamKey pkey, bool uniform_pick,
    const std::uint8_t* __restrict__ has_opinion,
    const std::uint8_t* __restrict__ awake,
    std::uint64_t* __restrict__ slot, std::uint64_t* __restrict__ acc,
    std::vector<AgentId>& activation, FlipFn flips) {
  DeliverPartial partial;
  for (std::size_t i = 0; i < tsize; ++i) {
    if (i + 16 < tsize) {
      __builtin_prefetch(&slot[tdata[i + 16]], 1);
      __builtin_prefetch(&acc[tdata[i + 16]], 1);
    }
    const AgentId to = tdata[i];
    const std::uint64_t m = slot[to];
    slot[to] = kEmptySlot;
    if constexpr (kChurn) {
      if (awake[to] == 0) {
        ++partial.asleep_drops;
        continue;
      }
    }
    const bool sent_one = (m & kSendBit) != 0;
    CounterRng rng(ckey, to);
    const bool flip = flips(rng);
    partial.flipped += flip;
    const bool seen_one = sent_one != flip;
    if (has_opinion[to]) continue;  // Stage I ignores opinionated agents
    const std::uint64_t v = acc[to];
    const std::uint64_t recv = (v & kS1RecvMask) + 1;
    if (recv == 1) activation.push_back(to);
    std::uint64_t kept;
    if (uniform_pick) {
      // Same decision BreatheProtocol::deliver makes from the same
      // (round, agent, kProtocol) stream.
      CounterRng prng(pkey, to);
      kept = (recv == 1 || uniform_index(prng, recv) == 0)
                 ? static_cast<std::uint64_t>(seen_one)
                 : (v >> kKeptShift);
    } else {
      kept = recv == 1 ? static_cast<std::uint64_t>(seen_one)
                       : (v >> kKeptShift);
    }
    acc[to] = recv | (kept << kKeptShift);
  }
  return partial;
}

// --------------------------------------------------------------------------
// SIMD-blocked twins of the four phase loops above. Each splits its loop at
// the dispatch seam (src/simd/simd.hpp): pass A batches the pure-arithmetic
// RNG replay (recipient draw + acceptance priority, or the channel flip)
// through the active block kernel into small stack buffers; pass B is the
// unchanged memory-irregular remainder (scatter, min-combine, counter
// packing), consuming one precomputed lane per message. Because every draw
// is a pure function of (key, agent) — never of which other draws happened —
// precomputing a draw the churn filter then discards changes nothing, and
// the twins are bit-identical to the scalar loops by construction. The
// scalar loops above stay as compiled ground truth; run_breathe picks a
// twin only when simd::enabled().

/// Entries per kernel block: big enough to amortize the dispatch call and
/// keep the vector pipeline fed, small enough that the three stack buffers
/// (~4 KiB) stay cache-resident under the pass-B scatter traffic.
inline constexpr std::size_t kSimdBlock = 256;

/// Filters a block of send-list entries to awake senders (the same
/// pre-draw filter the scalar loops apply). Returns the live count.
inline std::size_t filter_awake(const std::uint32_t* __restrict__ block,
                                std::size_t count,
                                const std::uint8_t* __restrict__ awake,
                                std::uint32_t* __restrict__ live) {
  std::size_t live_count = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint32_t e = block[i];
    live[live_count] = e;
    live_count += awake[e & kAgentMask] != 0;
  }
  return live_count;
}

/// route_combine, SIMD-blocked (single-shard fast path). `draw_bound` is
/// the topology's recipient draw bound; the kernels implement the complete
/// graph only (self-skip baked in), so run_breathe routes sparse topologies
/// through the scalar loops — draw_bound always equals n - 1 here.
template <bool kChurn>
[[gnu::noinline]] inline RoutePartial route_combine_simd(
    const std::uint32_t* __restrict__ send, std::size_t nsend,
    std::uint64_t draw_bound, const StreamKey rkey,
    const std::uint8_t* __restrict__ awake,
    std::uint64_t* __restrict__ slot, AgentId* __restrict__ tdata) {
  const simd::Kernels kernels = simd::active();
  RoutePartial partial;
  std::size_t tsize = 0;
  std::uint32_t live[kSimdBlock];
  std::uint32_t to_buf[kSimdBlock];
  std::uint64_t word_buf[kSimdBlock];
  for (std::size_t base = 0; base < nsend; base += kSimdBlock) {
    const std::size_t take = std::min(kSimdBlock, nsend - base);
    const std::uint32_t* block = send + base;
    std::size_t count = take;
    if constexpr (kChurn) {
      count = filter_awake(block, take, awake, live);
      block = live;
    }
    kernels.route_block(rkey.hi, rkey.lo, block, count, draw_bound, to_buf,
                        word_buf);
    for (std::size_t i = 0; i < count; ++i) {
      tsize = combine(to_buf[i], word_buf[i], slot, tdata, tsize);
    }
    partial.sent += count;
  }
  partial.touched = tsize;
  return partial;
}

/// route_scatter, SIMD-blocked (multi-shard route phase). Same complete-
/// graph-only draw_bound contract as route_combine_simd.
template <bool kChurn>
[[gnu::noinline]] inline std::uint64_t route_scatter_simd(
    const std::uint32_t* __restrict__ send, std::size_t nsend,
    std::uint64_t draw_bound, const StreamKey rkey, std::uint64_t shard_mul,
    const std::uint8_t* __restrict__ awake,
    std::vector<RoutedMsg>* __restrict__ out) {
  const simd::Kernels kernels = simd::active();
  std::uint64_t sent = 0;
  std::uint32_t live[kSimdBlock];
  std::uint32_t to_buf[kSimdBlock];
  std::uint64_t word_buf[kSimdBlock];
  for (std::size_t base = 0; base < nsend; base += kSimdBlock) {
    const std::size_t take = std::min(kSimdBlock, nsend - base);
    const std::uint32_t* block = send + base;
    std::size_t count = take;
    if constexpr (kChurn) {
      count = filter_awake(block, take, awake, live);
      block = live;
    }
    kernels.route_block(rkey.hi, rkey.lo, block, count, draw_bound, to_buf,
                        word_buf);
    for (std::size_t i = 0; i < count; ++i) {
      const std::uint32_t to = to_buf[i];
      const auto dst = static_cast<std::size_t>(
          (static_cast<unsigned __int128>(to) * shard_mul) >> 64);
      out[dst].push_back(RoutedMsg{word_buf[i], to});
    }
    sent += count;
  }
  return sent;
}

/// deliver_stage2 with the channel flip batched through the flip kernel.
/// `flip_threshold` is the round's integer threshold (the kIntegerThreshold
/// functors' member). Flips are precomputed for every touched recipient;
/// under kChurn an asleep recipient's lane is simply never read — its slot
/// clear and asleep-drop count happen in pass B exactly as in the scalar
/// loop.
template <bool kChurn>
[[gnu::noinline]] inline DeliverPartial deliver_stage2_simd(
    const AgentId* __restrict__ tdata, std::size_t tsize,
    const StreamKey ckey, std::uint64_t threshold,
    std::uint64_t flip_threshold, const std::uint8_t* __restrict__ awake,
    std::uint64_t* __restrict__ slot, std::uint64_t* __restrict__ acc) {
  const simd::Kernels kernels = simd::active();
  DeliverPartial partial;
  std::uint8_t flip_buf[kSimdBlock];
  for (std::size_t base = 0; base < tsize; base += kSimdBlock) {
    const std::size_t take = std::min(kSimdBlock, tsize - base);
    kernels.flip_block(ckey.hi, ckey.lo, tdata + base, take, flip_threshold,
                       flip_buf);
    for (std::size_t j = 0; j < take; ++j) {
      const std::size_t i = base + j;
      if (i + 16 < tsize) {
        __builtin_prefetch(&slot[tdata[i + 16]], 1);
        __builtin_prefetch(&acc[tdata[i + 16]], 1);
      }
      const AgentId to = tdata[i];
      const std::uint64_t m = slot[to];
      slot[to] = kEmptySlot;
      if constexpr (kChurn) {
        if (awake[to] == 0) {
          ++partial.asleep_drops;
          continue;
        }
      }
      const bool sent_one = (m & kSendBit) != 0;
      const bool flip = flip_buf[j] != 0;
      partial.flipped += flip;
      std::uint64_t w = acc[to] + 1;  // ++recv
      if (sent_one != flip) {
        w += (std::uint64_t{1} << kOnesShift) +
             ((w & kFieldMask) <= threshold
                  ? (std::uint64_t{1} << kPrefixShift)
                  : 0);
      }
      acc[to] = w;
    }
  }
  return partial;
}

/// deliver_stage1 with the channel flip batched through the flip kernel.
/// The protocol-side reservoir draw (kProtocol stream) stays scalar in
/// pass B: it only fires for unopinionated recipients under the uniform
/// pick rule, and its stream is independent of the channel stream.
template <bool kChurn>
[[gnu::noinline]] inline DeliverPartial deliver_stage1_simd(
    const AgentId* __restrict__ tdata, std::size_t tsize,
    const StreamKey ckey, const StreamKey pkey, bool uniform_pick,
    std::uint64_t flip_threshold,
    const std::uint8_t* __restrict__ has_opinion,
    const std::uint8_t* __restrict__ awake,
    std::uint64_t* __restrict__ slot, std::uint64_t* __restrict__ acc,
    std::vector<AgentId>& activation) {
  const simd::Kernels kernels = simd::active();
  DeliverPartial partial;
  std::uint8_t flip_buf[kSimdBlock];
  for (std::size_t base = 0; base < tsize; base += kSimdBlock) {
    const std::size_t take = std::min(kSimdBlock, tsize - base);
    kernels.flip_block(ckey.hi, ckey.lo, tdata + base, take, flip_threshold,
                       flip_buf);
    for (std::size_t j = 0; j < take; ++j) {
      const std::size_t i = base + j;
      if (i + 16 < tsize) {
        __builtin_prefetch(&slot[tdata[i + 16]], 1);
        __builtin_prefetch(&acc[tdata[i + 16]], 1);
      }
      const AgentId to = tdata[i];
      const std::uint64_t m = slot[to];
      slot[to] = kEmptySlot;
      if constexpr (kChurn) {
        if (awake[to] == 0) {
          ++partial.asleep_drops;
          continue;
        }
      }
      const bool sent_one = (m & kSendBit) != 0;
      const bool flip = flip_buf[j] != 0;
      partial.flipped += flip;
      const bool seen_one = sent_one != flip;
      if (has_opinion[to]) continue;  // Stage I ignores opinionated agents
      const std::uint64_t v = acc[to];
      const std::uint64_t recv = (v & kS1RecvMask) + 1;
      if (recv == 1) activation.push_back(to);
      std::uint64_t kept;
      if (uniform_pick) {
        CounterRng prng(pkey, to);
        kept = (recv == 1 || uniform_index(prng, recv) == 0)
                   ? static_cast<std::uint64_t>(seen_one)
                   : (v >> kKeptShift);
      } else {
        kept = recv == 1 ? static_cast<std::uint64_t>(seen_one)
                         : (v >> kKeptShift);
      }
      acc[to] = recv | (kept << kKeptShift);
    }
  }
  return partial;
}

}  // namespace detail

class BatchEngine {
 public:
  BatchEngine() = default;

  BatchEngine(const BatchEngine&) = delete;
  BatchEngine& operator=(const BatchEngine&) = delete;

  /// The round layout both substrates run under — one copy of the
  /// skip_stage1/start_phase arithmetic that BreatheProtocol's constructor
  /// also performs, so the two cannot drift from each other. Public so the
  /// scenario layer can size round-anchored environment schedules without
  /// constructing a protocol first.
  struct BreatheSchedule {
    Round stage1_offset = 0;
    Round stage1_rounds = 0;
    Round total_rounds = 0;
    Round budget = 0;  ///< rounds this run executes (stage1_only truncates)
  };
  static BreatheSchedule breathe_schedule(const Params& params,
                                          const BreatheConfig& config,
                                          bool stage1_only);

  /// Statically dispatched replica of Engine::run for population n: same
  /// counter-keyed draws, identical Metrics — but with `protocol` and
  /// `channel` as concrete types every per-message call inlines, and the
  /// mailbox/send buffers reused across calls.
  template <FlipProtocolT P, typename C>
  Metrics run(std::size_t n, P& protocol, C& channel, const StreamKey& key,
              Round max_rounds, EngineOptions options = {}) {
    mailbox_.reuse(n);
    send_buffer_.clear();
    if (send_buffer_.capacity() < n) send_buffer_.reserve(n);

    const ResolvedTopology topo =
        ResolvedTopology::resolve(options.topology, n);
    const ChurnSpec& churn = options.churn;
    const bool churn_on = churn.enabled();
    if (churn_on) {
      awake_.assign(n, 1);
      if (churn.start_asleep > 0.0) {
        for (AgentId a = 0; a < n; ++a) {
          if (churn_starts_asleep(churn, key, a)) awake_[a] = 0;
        }
      }
    }

    Metrics metrics;
    for (Round r = 0; r < max_rounds; ++r) {
      send_buffer_.clear();
      protocol.collect_sends(r, send_buffer_);

      // Round-scoped environment events, exactly as in Engine::run: churn
      // transitions, then the channel's round state.
      if (churn_on) {
        const StreamKey churn_key =
            round_stream_key(key, RngPurpose::kChurn, r);
        for (AgentId a = 0; a < n; ++a) {
          awake_[a] =
              churn_step(churn, churn_key, a, awake_[a] != 0) ? 1 : 0;
        }
      }
      channel.begin_round(key, r);

      mailbox_.reset();
      const StreamKey route_key = round_stream_key(key, RngPurpose::kRoute, r);
      const StreamKey topo_key =
          topo.keyed() ? topo.round_key(key, r) : StreamKey{};
      std::uint64_t sent = 0;
      for (const Message& msg : send_buffer_) {
        if (msg.sender >= mailbox_.population()) {
          throw std::out_of_range("BatchEngine: sender id out of range");
        }
        if (churn_on && awake_[msg.sender] == 0) continue;
        ++sent;
        CounterRng rng(route_key, msg.sender);
        const AgentId to = topo.recipient(rng, topo_key, msg.sender);
        mailbox_.offer(to, msg.sender, msg.bit,
                       acceptance_word(rng(), msg.bit, msg.sender));
      }
      metrics.messages_sent += sent;

      const StreamKey channel_key =
          round_stream_key(key, RngPurpose::kChannel, r);
      for (AgentId to : mailbox_.recipients()) {
        if (churn_on && awake_[to] == 0) {
          ++metrics.dropped;
          continue;
        }
        const Message& msg = mailbox_.accepted(to);
        CounterRng rng(channel_key, to);
        const std::optional<Opinion> seen = channel.transmit(msg.bit, rng);
        if (!seen) {
          ++metrics.erased;
          continue;
        }
        if (*seen != msg.bit) ++metrics.flipped;
        ++metrics.delivered;
        protocol.deliver(to, *seen, r);
      }
      metrics.dropped += mailbox_.dropped_this_round();

      protocol.end_round(r);
      metrics.rounds = r + 1;

      if (options.probe_every != 0 && r % options.probe_every == 0) {
        metrics.bias_series.push_back({r, protocol.current_bias()});
        metrics.activated_series.push_back(
            {r, static_cast<double>(protocol.current_opinionated())});
      }

      if (protocol.done(r)) break;
    }
    return metrics;
  }

  /// The sharded SoA fast path for the two-stage breathe protocol. Runs one
  /// execution; call in a loop for a block of trials (all buffers recycle).
  /// `stage1_only` truncates the budget to Stage I, like run_broadcast's
  /// stage1_only switch. Precondition: breathe_fast_supported(params).
  /// Results are identical for every options.shards / pool combination.
  template <typename Channel>
  BreatheFastResult run_breathe(const Params& params,
                                const BreatheConfig& config, Channel& channel,
                                const StreamKey& trial_key, bool stage1_only,
                                const BreatheRunOptions& options = {}) {
    BreatheFastResult result;
    run_breathe(params, config, channel, trial_key, stage1_only, options,
                result);
    return result;
  }

  /// Pooled overload — the warm path of the Monte-Carlo harness and the
  /// sweep service: fills `result` in place (reset() keeps vector
  /// capacity), so a per-thread TrialArena recycles the stage stats and
  /// metrics series across trials instead of reallocating them. The
  /// value-returning overload above delegates here.
  template <typename Channel>
  void run_breathe(const Params& params, const BreatheConfig& config,
                   Channel& channel, const StreamKey& trial_key,
                   bool stage1_only, const BreatheRunOptions& options,
                   BreatheFastResult& result) {
    const StageOneSchedule& s1 = params.stage1();
    const StageTwoSchedule& s2 = params.stage2();
    trial_key_ = trial_key;
    prepare_breathe(params, config, options);
    const auto [stage1_offset, stage1_rounds, total_rounds, budget] =
        breathe_schedule(params, config, stage1_only);

    result.reset();
    result.protocol_rounds = budget;
    Metrics& metrics = result.metrics;

    const std::size_t n = params.n();
    const ResolvedTopology& topo = topo_;
    const bool topo_complete = topo.complete();
    // The one recipient draw bound every route path shares: n - 1 on the
    // complete graph, the out-degree on sparse topologies.
    const std::uint64_t draw_bound = topo.draw_bound();
    const bool uniform_pick =
        config.stage1_pick == Stage1Pick::kUniformMessage;
    auto flips = detail::make_flip(channel);
    // The SIMD dispatch seam: when this build compiled vector kernels and
    // the active set is one (src/simd/simd.hpp), the round phases run the
    // blocked twins; results are bit-identical either way, so this is a
    // pure wall-clock decision. kCompiled folds the whole branch out of
    // FLIP_SIMD=OFF builds. The route kernels implement the complete graph
    // only, so sparse topologies legitimately fall back to the scalar
    // route loops (deliver still vectorizes — it is topology-blind).
    const bool use_simd = simd::kCompiled && simd::enabled() && topo_complete;
    const std::size_t shards = shards_;
    const ChurnSpec& churn = options.engine.churn;
    const bool churn_on = churn.enabled();
    const std::uint8_t* const awake = pop_.awake_data();

    std::uint64_t* const __restrict__ acc = acc_.data();
    std::uint64_t* const __restrict__ slot = slot_.data();

    // flip-lint: noalloc — the warm-trial round loop. Everything here must
    // run out of the scratch prepare_breathe() sized: tests/
    // trial_arena_test.cpp proves warm trials allocation-free at shards
    // 1/8, churn on/off with a counting global allocator, and the lint
    // region keeps explicit allocations from creeping in on the paths that
    // test doesn't execute. push_back into capacity-kept vectors is the
    // sanctioned idiom (capacity survives across trials via reset()).
    for (Round r = 0; r < budget; ++r) {
      const bool in_s1 = r < stage1_rounds;
      const StreamKey route_key =
          round_stream_key(trial_key_, RngPurpose::kRoute, r);
      const StreamKey topo_key =
          topo.keyed() ? topo.round_key(trial_key_, r) : StreamKey{};
      const StreamKey channel_key =
          round_stream_key(trial_key_, RngPurpose::kChannel, r);
      const StreamKey protocol_key =
          round_stream_key(trial_key_, RngPurpose::kProtocol, r);
      const std::uint64_t threshold =
          in_s1 ? 0 : s2.half_length(s2.phase_of_round(r - stage1_rounds));

      // --- round-scoped environment events. The flip functor pins this
      // round's noise level (the burst lottery is one kEnvironment draw);
      // the churn phase advances every agent's liveness from its own
      // (round, agent, kChurn) stream, shard-parallel over the agent
      // blocks, and merges the per-shard liveness deltas exactly — the
      // same merge discipline as the Stage II opinion deltas.
      flips.begin_round(trial_key_, r);
      if (churn_on) {
        const StreamKey churn_key =
            round_stream_key(trial_key_, RngPurpose::kChurn, r);
        for_each_shard([&](std::size_t d) {
          ShardScratch& sh = shard_[d];
          sh.delta = {};
          const auto lo = static_cast<AgentId>(d * shard_block_);
          const auto hi = static_cast<AgentId>(
              std::min(n, (d + 1) * shard_block_));
          for (AgentId a = lo; a < hi; ++a) {
            const bool was = pop_.awake(a);
            const bool now = churn_step(churn, churn_key, a, was);
            if (now != was) pop_.set_awake_counted(a, now, sh.delta);
          }
        });
        for (const ShardScratch& sh : shard_) pop_.apply(sh.delta);
      }

      // --- route phase: every shard walks its own sender list. The sender
      // list is kept materialized across a phase (opinions only change at
      // phase boundaries), so the classic collect_sends pass disappears;
      // asleep senders are filtered per round against the liveness bytes.
      // Single shard min-combines in place (no bucket materialization);
      // multiple shards scatter into per-destination buckets.
      for_each_shard([&](std::size_t s) {
        ShardScratch& sh = shard_[s];
        // One statement of each argument list; the bool_constant picks the
        // churn-filtered or branch-free loop instantiation, the recipient
        // policy the complete-graph or neighbor-set draw (use_simd is
        // false whenever the policy is GraphRecipient, so the kernel calls
        // only ever see the complete graph's draw_bound).
        const auto route = [&](auto churn_c, const auto recipient) {
          constexpr bool kChurn = decltype(churn_c)::value;
          if (shards == 1) {
            const detail::RoutePartial partial =
                use_simd ? detail::route_combine_simd<kChurn>(
                               sh.send.data(), sh.send.size(), draw_bound,
                               route_key, awake, slot, sh.touched.data())
                         : detail::route_combine<kChurn>(
                               sh.send.data(), sh.send.size(), recipient,
                               route_key, awake, slot, sh.touched.data());
            sh.touched_count = partial.touched;
            sh.sent = partial.sent;
          } else {
            sh.sent = use_simd ? detail::route_scatter_simd<kChurn>(
                                     sh.send.data(), sh.send.size(),
                                     draw_bound, route_key, shard_mul_,
                                     awake, sh.out.data())
                               : detail::route_scatter<kChurn>(
                                     sh.send.data(), sh.send.size(),
                                     recipient, route_key, shard_mul_,
                                     awake, sh.out.data());
          }
        };
        const auto route_dispatch = [&](const auto recipient) {
          if (churn_on) {
            route(std::true_type{}, recipient);
          } else {
            route(std::false_type{}, recipient);
          }
        };
        if (topo_complete) {
          route_dispatch(detail::CompleteRecipient{draw_bound});
        } else {
          route_dispatch(detail::GraphRecipient{&topo, topo_key});
        }
      });

      // --- deliver phase: each shard owns a contiguous agent range. It
      // min-combines the arrivals destined for that range (scanning the
      // source buckets; order cannot matter), then flips + counts.
      for_each_shard([&](std::size_t d) {
        ShardScratch& sh = shard_[d];
        if (shards > 1) {
          std::size_t tsize = 0;
          for (ShardScratch& src : shard_) {
            std::vector<detail::RoutedMsg>& bucket = src.out[d];
            tsize = detail::combine_bucket(bucket.data(), bucket.size(),
                                           slot, sh.touched.data(), tsize);
            bucket.clear();
          }
          sh.touched_count = tsize;
        }

        const auto deliver = [&](auto churn_c) -> detail::DeliverPartial {
          constexpr bool kChurn = decltype(churn_c)::value;
          // The flip kernel handles exactly the integer-threshold functors;
          // HeterogeneousFlip (kIntegerThreshold == false) keeps the scalar
          // deliver loop on every build.
          if constexpr (std::remove_cvref_t<decltype(flips)>::
                            kIntegerThreshold) {
            if (use_simd) {
              return in_s1 ? detail::deliver_stage1_simd<kChurn>(
                                 sh.touched.data(), sh.touched_count,
                                 channel_key, protocol_key, uniform_pick,
                                 flips.threshold, pop_.has_opinion_data(),
                                 awake, slot, acc, sh.activation)
                           : detail::deliver_stage2_simd<kChurn>(
                                 sh.touched.data(), sh.touched_count,
                                 channel_key, threshold, flips.threshold,
                                 awake, slot, acc);
            }
          }
          return in_s1 ? detail::deliver_stage1<kChurn>(
                             sh.touched.data(), sh.touched_count,
                             channel_key, protocol_key, uniform_pick,
                             pop_.has_opinion_data(), awake, slot, acc,
                             sh.activation, flips)
                       : detail::deliver_stage2<kChurn>(
                             sh.touched.data(), sh.touched_count,
                             channel_key, threshold, awake, slot, acc,
                             flips);
        };
        const detail::DeliverPartial partial = churn_on
                                                   ? deliver(std::true_type{})
                                                   : deliver(std::false_type{});
        sh.flipped = partial.flipped;
        sh.asleep_drops = partial.asleep_drops;
      });

      // --- merge the round's shard partials (integer sums: exact in any
      // order; summed in shard order anyway). delivered excludes accepted
      // messages lost to asleep recipients; every sent message is either
      // delivered or dropped (run_breathe channels never erase).
      std::uint64_t sent = 0;
      std::uint64_t accepted = 0;
      std::uint64_t asleep_drops = 0;
      for (ShardScratch& sh : shard_) {
        sent += sh.sent;
        accepted += sh.touched_count;
        asleep_drops += sh.asleep_drops;
        metrics.flipped += sh.flipped;
        sh.touched_count = 0;
        sh.sent = 0;
        sh.asleep_drops = 0;
      }
      metrics.messages_sent += sent;
      metrics.delivered += accepted - asleep_drops;
      metrics.dropped += sent - (accepted - asleep_drops);

      // --- end of round: phase boundaries, probes, termination.
      if (in_s1) {
        const Round sr = r + stage1_offset;
        const std::uint64_t phase = s1.phase_of_round(sr);
        if (sr + 1 == s1.phase_end(phase)) {
          finalize_stage1(phase, config.correct, result.stage1);
        }
      } else {
        const Round sr = r - stage1_rounds;
        const std::uint64_t phase = s2.phase_of_round(sr);
        if (sr + 1 == s2.phase_start(phase) + s2.phase_length(phase)) {
          finalize_stage2(phase, config, s2, result.stage2);
        }
      }
      metrics.rounds = r + 1;

      if (options.engine.probe_every != 0 &&
          r % options.engine.probe_every == 0) {
        metrics.bias_series.push_back({r, pop_.bias(config.correct)});
        metrics.activated_series.push_back(
            {r, static_cast<double>(pop_.opinionated())});
      }

      if (r + 1 >= total_rounds) break;
    }
    // flip-lint: end-noalloc

    finish_breathe(result, config.correct);
  }

 private:
  /// Per-shard scratch: the shard's materialized sender list, its touched /
  /// activation / opinionated lists (agents in the shard's range), its
  /// outgoing per-destination buckets, and its round/phase partials.
  struct ShardScratch {
    std::vector<std::uint32_t> send;  ///< sender id | opinion bit (bit 31)
    /// Recipients touched this round, sized to the shard's block up front
    /// and indexed directly (branchless append in the combine loops).
    std::vector<AgentId> touched;
    std::size_t touched_count = 0;
    std::vector<AgentId> activation;
    std::vector<AgentId> opinionated;
    std::vector<std::vector<detail::RoutedMsg>> out;
    Population::Delta delta;        ///< stage II finalize / churn partial
    std::uint64_t successful = 0;   ///< stage II finalize partial
    std::uint64_t flipped = 0;      ///< per-round partial
    std::uint64_t sent = 0;         ///< per-round partial (route phase)
    std::uint64_t asleep_drops = 0; ///< per-round partial (deliver phase)
  };

  // The Stage I fields of an agent (detail:: layout constants) are zeroed
  // when it activates, and every agent that ever received in Stage I
  // activates at its phase end, so Stage II starts from all-zero counters
  // without a stage-boundary wipe.

  [[nodiscard]] std::size_t shard_of(std::uint32_t agent) const noexcept {
    // Exact division by the invariant block size via one multiply
    // (Lemire's fastdiv: exact for all 32-bit dividends).
    return static_cast<std::size_t>(
        (static_cast<unsigned __int128>(agent) * shard_mul_) >> 64);
  }

  /// Runs body(s) for every shard — on the pool when one was given and
  /// there is more than one shard, inline otherwise. The parallel_for
  /// return is the phase barrier.
  template <typename Body>
  void for_each_shard(Body&& body) {
    if (pool_ != nullptr && shards_ > 1) {
      pool_->parallel_for(shards_, body);
    } else {
      for (std::size_t s = 0; s < shards_; ++s) body(s);
    }
  }

  /// Validates the config (same rules as BreatheProtocol's constructor),
  /// resets all per-trial state, sizes the shard scratch, and seeds the
  /// initial set.
  void prepare_breathe(const Params& params, const BreatheConfig& config,
                       const BreatheRunOptions& options);

  /// Fills the end-of-run population summary fields of `result`.
  void finish_breathe(BreatheFastResult& result, Opinion correct) const;

  void finalize_stage1(std::uint64_t phase, Opinion correct,
                       std::vector<StageOnePhaseStats>& out);
  void finalize_stage2(std::uint64_t phase, const BreatheConfig& config,
                       const StageTwoSchedule& s2,
                       std::vector<StageTwoPhaseStats>& out);

  // Generic-path scratch.
  Mailbox mailbox_{2};
  std::vector<Message> send_buffer_;
  std::vector<std::uint8_t> awake_;  ///< generic-path churn liveness

  // Breathe fast-path scratch (structure-of-arrays, persistent).
  Population pop_{2};
  std::vector<std::uint64_t> acc_;   ///< packed sample counters per agent
  std::vector<std::uint64_t> slot_;  ///< best acceptance_word, or kEmptySlot
  std::vector<ShardScratch> shard_;
  /// The trial's resolved interaction graph (prepare_breathe). Complete by
  /// default — the identity route path.
  ResolvedTopology topo_{};
  StreamKey trial_key_{};
  std::size_t shards_ = 1;
  std::size_t shard_block_ = 0;  ///< agents per shard, ceil(n / shards)
  std::uint64_t shard_mul_ = 0;  ///< ceil(2^64 / shard_block_)
  ThreadPool* pool_ = nullptr;
};

/// RAII lease on the calling thread's persistent BatchEngine. Worker
/// threads of the shared ThreadPool live for the whole process, so a
/// sweep's grid cells all recycle the same per-worker scratch. A lease —
/// not a bare reference — because ThreadPool::parallel_for's helping wait
/// can make a thread pick up ANOTHER trial while its own engine is
/// mid-run (sharded trials nested in parallel sweeps); the nested lease
/// then hands out a second per-thread engine instead of clobbering the
/// busy one. Destruction returns the engine to the thread's pool.
class BatchEngineLease {
 public:
  BatchEngineLease();
  ~BatchEngineLease();
  BatchEngineLease(const BatchEngineLease&) = delete;
  BatchEngineLease& operator=(const BatchEngineLease&) = delete;

  [[nodiscard]] BatchEngine& operator*() const noexcept { return *engine_; }
  [[nodiscard]] BatchEngine* operator->() const noexcept { return engine_; }

 private:
  BatchEngine* engine_;
};

}  // namespace flip
