#pragma once
// Monte-Carlo harness: runs many independent, deterministically seeded
// executions of a scenario (in parallel) and aggregates the "w.h.p."
// statements of the paper into success-rate estimates with Wilson intervals.

#include <cstdint>
#include <functional>
#include <limits>

#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace flip {

/// The outcome of one simulated execution.
struct TrialOutcome {
  bool success = false;            ///< all agents ended with the correct opinion
  double rounds = 0.0;             ///< rounds the execution took
  double messages = 0.0;           ///< total messages (= bits) sent
  double correct_fraction = 0.0;   ///< fraction of agents correct at the end
  /// First probe round of stable >= 99% activation (NaN when the run keeps
  /// no probe series or never converges). Aggregated into
  /// TrialSummary::convergence_rounds over the converged trials only.
  double convergence_round = std::numeric_limits<double>::quiet_NaN();
  /// The engine's Metrics counters, verbatim. Exposed here so the
  /// shard-invariance tests (and reports) can check the exact-merge
  /// contract on COUNTERS, not just on the outcome doubles above. Zero for
  /// baselines that bypass the engine (the pull/AAE dynamics).
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t erased = 0;
  std::uint64_t flipped = 0;
};

/// A scenario: given (seed, trial index), run one execution. Must be safe to
/// call concurrently for distinct indices (each call builds its own engine
/// and rng stream from the seed).
using TrialFn = std::function<TrialOutcome(std::uint64_t seed,
                                           std::size_t trial_index)>;

/// Aggregated results of a batch of trials.
struct TrialSummary {
  std::size_t trials = 0;
  std::size_t successes = 0;
  ProportionCI success;        ///< Wilson interval on the success probability
  RunningStats rounds;         ///< over all trials
  RunningStats messages;       ///< over all trials
  RunningStats correct_fraction;
  /// Over the trials whose convergence_round is finite only; `converged`
  /// counts them. With zero converged trials the stats hold no samples —
  /// report a non-finite mean, not 0.
  std::size_t converged = 0;
  RunningStats convergence_rounds;
  /// Wall-clock of the whole batch, including scheduling overhead. Unlike
  /// everything above this is *not* deterministic — report it, never gate
  /// correctness on it.
  double wall_seconds = 0.0;
  RunningStats trial_seconds;  ///< per-execution wall-clock
};

struct TrialOptions {
  std::size_t trials = 32;
  std::uint64_t master_seed = 0x5eedULL;
  /// Pool to run on; nullptr = ThreadPool::shared().
  ThreadPool* pool = nullptr;
};

/// Runs `options.trials` executions of `fn`; trial i receives the derived
/// seed for stream i of the master seed, so results are reproducible and
/// independent of thread scheduling.
TrialSummary run_trials(const TrialFn& fn, const TrialOptions& options);

}  // namespace flip
