#include "sim/population.hpp"

#include <stdexcept>

namespace flip {

Population::Population(std::size_t n)
    : has_opinion_(n, 0), opinion_(n, 0), awake_(n, 1) {
  if (n < 2) throw std::invalid_argument("Population: need n >= 2");
}

void Population::reuse(std::size_t n) {
  if (n < 2) throw std::invalid_argument("Population: need n >= 2");
  has_opinion_.assign(n, 0);
  opinion_.assign(n, 0);
  awake_.assign(n, 1);
  opinionated_ = 0;
  ones_ = 0;
  asleep_ = 0;
}

std::optional<Opinion> Population::opinion_of(AgentId a) const {
  if (!has_opinion(a)) return std::nullopt;
  return opinion(a);
}

void Population::set_opinion(AgentId a, Opinion o) {
  if (!has_opinion_[a]) {
    has_opinion_[a] = 1;
    ++opinionated_;
  } else if (static_cast<Opinion>(opinion_[a]) == Opinion::kOne) {
    --ones_;
  }
  opinion_[a] = static_cast<std::uint8_t>(o);
  if (o == Opinion::kOne) ++ones_;
}

void Population::clear_opinion(AgentId a) {
  if (!has_opinion_[a]) return;
  if (static_cast<Opinion>(opinion_[a]) == Opinion::kOne) --ones_;
  has_opinion_[a] = 0;
  --opinionated_;
}

std::size_t Population::count(Opinion o) const noexcept {
  return o == Opinion::kOne ? ones_ : opinionated_ - ones_;
}

double Population::correct_fraction(Opinion correct) const noexcept {
  return static_cast<double>(count(correct)) / static_cast<double>(size());
}

double Population::bias(Opinion correct) const noexcept {
  if (opinionated_ == 0) return 0.0;
  const auto good = static_cast<double>(count(correct));
  const auto bad = static_cast<double>(count(flip_opinion(correct)));
  return 0.5 * (good - bad) / static_cast<double>(opinionated_);
}

bool Population::unanimous(Opinion correct) const noexcept {
  return opinionated_ == size() && count(correct) == size();
}

}  // namespace flip
