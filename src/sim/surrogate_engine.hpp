#pragma once
// Mean-field surrogate engine: the third EngineMode. Instead of simulating
// n agents, it integrates the EXPECTED opinion/activation state of the
// breathe protocol round by round — O(total rounds) arithmetic, so an
// n = 10^9 cell answers in milliseconds where the exact engines would need
// hours. BatchEngine stays the ground truth: the surrogate is held within
// stated error bands of it by the validation harness
// (flipsim --validate-surrogate, tools/check_surrogate_accuracy.py) and by
// tests/surrogate_engine_test.cpp, never trusted bit for bit.
//
// The model (seeded from the same identities core/theory pins):
//
//  * Per-round acceptance. With X opinionated senders, a recipient hears
//    at least one message with probability 1 - (1 - 1/(n-1))^X; churn
//    scales both sides by the awake probability of the round, which
//    evolves by the two-state Markov chain
//      a' = a (1 - sleep_prob) + (1 - a) wake_prob,   a_init = 1 - start_asleep
//    — the expectation of core/environment's per-agent churn_step chain.
//  * Per-message correctness. A message sampled from a sender pool with
//    bias delta and relayed through a channel of advantage eps_r is correct
//    with probability 1/2 + 2 eps_r delta (theory::sampled_bias). eps_r is
//    EnvironmentSchedule::expected_eps_at(r): correctness is linear in eps,
//    so replacing the burst lottery by its expectation is exact in the
//    mean. The heterogeneous channel (flip probability uniform in
//    [0, 1/2 - eps]) is linear too: effective advantage 1/4 + eps/2.
//  * Stage I. Agents activated during a phase buffer until the phase ends
//    (the protocol's breathe rule), so within a phase the sender pool is
//    fixed. An inactive agent survives the phase with probability
//    prod_r (1 - p_hit(r)); conditioned on activating, its adopted opinion
//    is correct with the acceptance-weighted mean of the per-round
//    correctness (the uniform-message pick averages over accepted rounds —
//    the same mean-field value covers the first-message variant).
//  * Stage II. An agent is "successful" when it accepts at least
//    t = m_i/2 of the phase's m_i rounds — Binomial(m_i, p_acc) tail, or an
//    exact per-round count DP when churn makes p_acc vary within the
//    phase. A successful agent re-decides by the majority of t samples:
//    correct with probability P(Bin(t, q) >= (t+1)/2) (the exact
//    Lemma 2.11 computation theory::stage2_next_bias also uses), whether
//    or not it held an opinion before — Stage II recruits stragglers. Per
//    agent:  P(opinionated & correct)' = sigma p_maj + (1 - sigma) P(o&c).
//  * Success probability. Agents are treated as independent (exact only in
//    the n -> infinity limit; the error bands absorb the correlation at
//    finite n): P(success) = prod over agents of (1 - miss), accumulated
//    in log space with the per-agent miss probability tracked directly so
//    misses of 1e-30 at n = 10^9 survive the arithmetic.
//
// Trial mapping: a surrogate "trial" does no fresh work — the analysis runs
// once, and trial i succeeds iff the base-2 radical inverse of i (the van
// der Corput low-discrepancy sequence) falls below the analytic success
// probability. The stratification makes a T-trial success rate converge to
// the analytic probability at rate 1/T instead of 1/sqrt(T), and keeps the
// TrialFn deterministic and thread-order-independent like every other
// engine's.
//
// What the surrogate CANNOT model (run_surrogate throws, and the registry /
// flipsim reject at the argument layer): the adversarial channel (stateful,
// order-dependent — no per-round rate exists) and the desync scenarios
// (per-agent clock offsets break the homogeneous-population assumption).

#include <cstdint>
#include <limits>
#include <vector>

#include "core/environment.hpp"
#include "core/params.hpp"
#include "sim/metrics.hpp"
#include "sim/trial.hpp"

namespace flip {

/// One mean-field integration: the surrogate analogue of a resolved breathe
/// scenario (broadcast, majority, or boost — the supported problems).
struct SurrogateSpec {
  std::size_t n = 1024;
  double eps = 0.2;
  Tuning tuning{};
  /// The initially opinionated set A and how many of them hold the correct
  /// opinion. Broadcast: 1/1. Majority: |A| and llround((1/2+bias)|A|).
  std::size_t initial_set = 1;
  std::size_t initial_correct = 1;
  /// Join Stage I at Params::join_phase_for_initial_set(initial_set)
  /// (Corollary 2.18), as majority_config does. Off = join at phase 0.
  bool auto_join_phase = false;
  /// Skip Stage I entirely (boost: the initial set is the whole
  /// population). Requires initial_set == n.
  bool skip_stage1 = false;
  /// Run Stage I only; success then means "every agent activated".
  bool stage1_only = false;
  /// The heterogeneous channel of Section 1.3.2 (flip probability uniform
  /// in [0, 1/2 - eps]): linear in the flip probability, so exactly
  /// linearizable — effective advantage 1/4 + eps/2. Mutually exclusive
  /// with an enabled schedule, like the exact engines.
  bool heterogeneous = false;
  /// Dynamic environment, honored as deterministic per-round rate
  /// modifiers (expected_eps_at; the churn awake-probability chain).
  EnvironmentSchedule schedule{};
  ChurnSpec churn{};
  /// Probe grid the convergence-round estimate is reported on (0 = no
  /// convergence estimate — NaN, like an exact run without probes).
  Round probe_every = 0;
};

/// The NaN sentinel for "no convergence estimate", matching the exact
/// engines' convention (workload/scenarios.hpp kNoConvergence).
inline constexpr double kSurrogateNoConvergence =
    std::numeric_limits<double>::quiet_NaN();

/// What one integration yields: analytic moments in place of one
/// execution's samples.
struct SurrogateResult {
  /// P(every agent ends opinionated and correct) — or P(every agent
  /// activated) under stage1_only. Agents treated as independent.
  double success_probability = 0.0;
  /// Scheduled budget, identical to the exact engines' round count for the
  /// same spec (both copy the Params phase arithmetic).
  Round rounds = 0;
  /// Expected engine counters (the exact engines' Metrics, in expectation).
  double expected_messages = 0.0;
  double expected_delivered = 0.0;
  double expected_dropped = 0.0;
  double expected_flipped = 0.0;
  /// Expected fraction of all n agents holding the correct opinion at the
  /// end, and the corresponding bias over opinionated agents.
  double correct_fraction = 0.0;
  double final_bias = 0.0;
  /// Expected fraction of agents opinionated at the end.
  double activation_fraction = 0.0;
  /// First probe round (multiple of probe_every) whose expected activation
  /// reaches 99% of n — the surrogate's estimate of the exact engines'
  /// stable_crossing statistic. NaN when probe_every == 0 or the expected
  /// trajectory never crosses inside the budget.
  double convergence_round = kSurrogateNoConvergence;
  /// Expected activated count at each Stage I phase boundary (index 0 =
  /// end of the join phase), then each Stage II phase boundary. Tests pin
  /// the recurrence against core/theory through this trace.
  std::vector<double> activation_trace;
  /// Expected bias over opinionated agents after each Stage II phase —
  /// comparable to theory::stage2_bias_trajectory.
  std::vector<double> stage2_bias_trace;
};

/// Runs the mean-field integration. Throws std::invalid_argument on specs
/// the model cannot represent (bad set sizes, heterogeneous + schedule,
/// skip_stage1 without full initial set) — same exception layer as the
/// exact scenario runners.
[[nodiscard]] SurrogateResult run_surrogate(const SurrogateSpec& spec);

/// Base-2 radical inverse (van der Corput): bit-reverses `i` into [0, 1).
/// Exposed for the determinism tests.
[[nodiscard]] double radical_inverse_base2(std::uint64_t i) noexcept;

/// TrialFn adapter: runs the analysis ONCE (eagerly, at construction — the
/// closure is then safe to call concurrently), and maps trial i onto the
/// deterministic stratified outcome described above. The (seed, trial)
/// arguments of the returned fn keep the TrialFn shape; only `trial`
/// affects the outcome — the analysis has no randomness to seed.
[[nodiscard]] TrialFn surrogate_trial_fn(const SurrogateSpec& spec);

}  // namespace flip
