#include "sim/trial.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace flip {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

TrialSummary run_trials(const TrialFn& fn, const TrialOptions& options) {
  if (options.trials == 0) {
    throw std::invalid_argument("run_trials: trials == 0");
  }
  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::shared();

  const auto batch_start = std::chrono::steady_clock::now();
  std::vector<TrialOutcome> outcomes(options.trials);
  std::vector<double> elapsed(options.trials);
  pool.parallel_for(options.trials, [&](std::size_t i) {
    // Stream i of the master seed: replayable regardless of which worker
    // thread picked up the trial.
    const auto start = std::chrono::steady_clock::now();
    outcomes[i] = fn(options.master_seed, i);
    elapsed[i] = seconds_since(start);
  });

  TrialSummary summary;
  summary.trials = options.trials;
  for (std::size_t i = 0; i < options.trials; ++i) {
    const TrialOutcome& o = outcomes[i];
    if (o.success) ++summary.successes;
    summary.rounds.add(o.rounds);
    summary.messages.add(o.messages);
    summary.correct_fraction.add(o.correct_fraction);
    if (std::isfinite(o.convergence_round)) {
      ++summary.converged;
      summary.convergence_rounds.add(o.convergence_round);
    }
    summary.trial_seconds.add(elapsed[i]);
  }
  summary.success = wilson_interval(summary.successes, summary.trials);
  summary.wall_seconds = seconds_since(batch_start);
  return summary;
}

}  // namespace flip
