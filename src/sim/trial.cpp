#include "sim/trial.hpp"

#include <mutex>
#include <stdexcept>
#include <vector>

namespace flip {

TrialSummary run_trials(const TrialFn& fn, const TrialOptions& options) {
  if (options.trials == 0) {
    throw std::invalid_argument("run_trials: trials == 0");
  }
  ThreadPool& pool = options.pool ? *options.pool : ThreadPool::shared();

  std::vector<TrialOutcome> outcomes(options.trials);
  pool.parallel_for(options.trials, [&](std::size_t i) {
    // Stream i of the master seed: replayable regardless of which worker
    // thread picked up the trial.
    outcomes[i] = fn(options.master_seed, i);
  });

  TrialSummary summary;
  summary.trials = options.trials;
  for (const TrialOutcome& o : outcomes) {
    if (o.success) ++summary.successes;
    summary.rounds.add(o.rounds);
    summary.messages.add(o.messages);
    summary.correct_fraction.add(o.correct_fraction);
  }
  summary.success = wilson_interval(summary.successes, summary.trials);
  return summary;
}

}  // namespace flip
