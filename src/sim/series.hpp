#pragma once
// Analysis helpers for the (round, value) probe series recorded in Metrics:
// convergence times, plateau detection, and summaries. Used to answer
// questions like "at which round did 99% of the flock know the alert?"
// without re-running a simulation.

#include <optional>
#include <span>

#include "sim/metrics.hpp"

namespace flip {

/// First probe round at which the series reaches `threshold` (value >=
/// threshold) and never drops below it again. nullopt if that never
/// happens. This is the right notion of "convergence time" for noisy
/// series that can touch a level transiently.
std::optional<Round> stable_crossing(std::span<const Sample> series,
                                     double threshold);

/// First probe round at which value >= threshold (transient allowed).
std::optional<Round> first_crossing(std::span<const Sample> series,
                                    double threshold);

/// True if the series' tail is flat: over the last `window` samples the
/// values stay within +-tolerance of their mean. Windows larger than the
/// series use the whole series; window 0 clamps to 1 (like tail_mean).
/// Empty series are not plateaus.
bool has_plateau(std::span<const Sample> series, std::size_t window,
                 double tolerance);

/// Mean of the last `window` samples (the plateau level); window 0 clamps
/// to 1, windows past the start clamp to the whole series. Precondition:
/// series non-empty.
double tail_mean(std::span<const Sample> series, std::size_t window);

/// Largest single-step increase in the series (detects the Stage I -> II
/// transition spike in bias trajectories). 0 for fewer than two samples.
double max_step(std::span<const Sample> series);

}  // namespace flip
