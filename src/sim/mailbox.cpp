#include "sim/mailbox.hpp"

#include <stdexcept>

namespace flip {

Mailbox::Mailbox(std::size_t n)
    : arrival_count_(n, 0),
      kept_(n, Message{0, Opinion::kZero}),
      priority_(n, 0) {
  if (n < 2) throw std::invalid_argument("Mailbox: need n >= 2");
  touched_.reserve(n);
}

void Mailbox::reset() noexcept {
  for (AgentId a : touched_) arrival_count_[a] = 0;
  touched_.clear();
  pushed_ = 0;
}

void Mailbox::reuse(std::size_t n) {
  if (n < 2) throw std::invalid_argument("Mailbox: need n >= 2");
  // Growing (or shrinking within capacity) zero-fills only what a fresh
  // construction would: arrival counts. kept_ and priority_ entries are
  // written before they are read (a recipient's slot is assigned on first
  // touch).
  arrival_count_.assign(n, 0);
  kept_.resize(n, Message{0, Opinion::kZero});
  priority_.resize(n, 0);
  touched_.clear();
  if (touched_.capacity() < n) touched_.reserve(n);
  pushed_ = 0;
}

}  // namespace flip
