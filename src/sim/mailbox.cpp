#include "sim/mailbox.hpp"

#include <stdexcept>

namespace flip {

Mailbox::Mailbox(std::size_t n)
    : arrival_count_(n, 0), kept_(n, Message{0, Opinion::kZero}) {
  if (n < 2) throw std::invalid_argument("Mailbox: need n >= 2");
  touched_.reserve(n);
}

void Mailbox::push(const Message& msg, Xoshiro256& rng) {
  // Uniform over the n-1 agents other than the sender.
  auto to = static_cast<AgentId>(
      uniform_index(rng, arrival_count_.size() - 1));
  if (to >= msg.sender) ++to;
  push_to(to, msg, rng);
}

void Mailbox::push_to(AgentId to, const Message& msg, Xoshiro256& rng) {
  ++pushed_;
  const std::uint32_t k = ++arrival_count_[to];
  if (k == 1) {
    touched_.push_back(to);
    kept_[to] = msg;
  } else if (uniform_index(rng, k) == 0) {
    // Reservoir step: the k-th arrival replaces the kept one w.p. 1/k,
    // making the kept message uniform among all k arrivals.
    kept_[to] = msg;
  }
}

void Mailbox::reset() noexcept {
  for (AgentId a : touched_) arrival_count_[a] = 0;
  touched_.clear();
  pushed_ = 0;
}

}  // namespace flip
