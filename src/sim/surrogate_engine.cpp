#include "sim/surrogate_engine.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "util/math.hpp"

namespace flip {

namespace {

/// The expectation of the per-agent awake Markov chain (the mean of
/// core/environment's churn_step over agents). The engines apply churn_step
/// at the START of every round — including round 0, on the start_asleep
/// lottery's output — so step() must be called once per round BEFORE using
/// the round's awake probability.
class AwakeChain {
 public:
  explicit AwakeChain(const ChurnSpec& churn)
      : churn_(churn),
        enabled_(churn.enabled()),
        awake_(1.0 - churn.start_asleep) {}

  double step() noexcept {
    if (enabled_) {
      awake_ = awake_ * (1.0 - churn_.sleep_prob) +
               (1.0 - awake_) * churn_.wake_prob;
    }
    return awake_;
  }

 private:
  ChurnSpec churn_;
  bool enabled_;
  double awake_;
};

/// P(a fixed non-sending recipient hears >= 1 message) with `senders`
/// expected awake senders, each pushing to a uniform choice among its n-1
/// peers: 1 - (1 - 1/(n-1))^senders, real-valued exponent, evaluated as
/// -expm1(S log1p(-1/(n-1))) so it stays exact when S/n is 1e-9.
double hit_probability(double senders, std::size_t n) {
  if (senders <= 0.0) return 0.0;
  return -std::expm1(senders *
                     std::log1p(-1.0 / (static_cast<double>(n) - 1.0)));
}

/// Expected number of DISTINCT recipients hit by `senders` messages — the
/// mailbox's accepted count, bounded above by the message count (each
/// message is someone's arrival; collisions collapse). By symmetry each
/// agent is missed by all S messages with probability (1 - 1/n)^S.
double expected_hit_recipients(double senders, std::size_t n) {
  if (senders <= 0.0) return 0.0;
  return static_cast<double>(n) *
         -std::expm1(senders * std::log1p(-1.0 / static_cast<double>(n)));
}

/// P(Poisson-binomial count >= threshold) for per-round acceptance
/// probabilities that vary within a phase (churn's awake chain still
/// burning in). O(m^2) — phases are a few thousand rounds at most, and the
/// DP only runs when churn is on. Also returns the complement so callers
/// keep precision when the tail is 1 - 1e-12.
struct TailSplit {
  double ge = 0.0;  ///< P(count >= threshold)
  double lt = 0.0;  ///< P(count <  threshold)
};

TailSplit poisson_binomial_tail(const std::vector<double>& probs,
                                std::uint64_t threshold) {
  std::vector<double> dist(probs.size() + 1, 0.0);
  dist[0] = 1.0;
  std::size_t top = 0;
  for (const double p : probs) {
    ++top;
    for (std::size_t j = top; j-- > 0;) {
      dist[j + 1] += dist[j] * p;
      dist[j] *= 1.0 - p;
    }
  }
  TailSplit split;
  for (std::size_t j = 0; j < dist.size(); ++j) {
    (j >= threshold ? split.ge : split.lt) += dist[j];
  }
  return split;
}

/// One agent class: `count` agents sharing the same marginal state. The
/// initial set splits into its correct and wrong halves (their Stage-II
/// trajectories differ — a wrong seed stays wrong until a successful
/// re-decision), the n - |A| field agents form the third class.
struct AgentClass {
  double count = 0.0;
  /// P(NOT (opinionated & correct)) — tracked as the MISS so products of
  /// per-agent successes survive at n = 1e9 (log1p(-miss), never 1 - p).
  double miss_correct = 1.0;
};

}  // namespace

double radical_inverse_base2(std::uint64_t i) noexcept {
  i = ((i >> 1) & 0x5555555555555555ULL) | ((i & 0x5555555555555555ULL) << 1);
  i = ((i >> 2) & 0x3333333333333333ULL) | ((i & 0x3333333333333333ULL) << 2);
  i = ((i >> 4) & 0x0f0f0f0f0f0f0f0fULL) | ((i & 0x0f0f0f0f0f0f0f0fULL) << 4);
  i = ((i >> 8) & 0x00ff00ff00ff00ffULL) | ((i & 0x00ff00ff00ff00ffULL) << 8);
  i = ((i >> 16) & 0x0000ffff0000ffffULL) |
      ((i & 0x0000ffff0000ffffULL) << 16);
  i = (i >> 32) | (i << 32);
  return static_cast<double>(i) * 0x1p-64;
}

SurrogateResult run_surrogate(const SurrogateSpec& spec) {
  if (spec.initial_set == 0 || spec.initial_set > spec.n) {
    throw std::invalid_argument(
        "run_surrogate: initial_set must be in [1, n]");
  }
  if (spec.initial_correct > spec.initial_set) {
    throw std::invalid_argument(
        "run_surrogate: initial_correct > initial_set");
  }
  if (spec.heterogeneous && spec.schedule.enabled()) {
    throw std::invalid_argument(
        "run_surrogate: heterogeneous noise and an eps schedule are "
        "mutually exclusive");
  }
  if (spec.skip_stage1 && spec.initial_set != spec.n) {
    throw std::invalid_argument(
        "run_surrogate: skip_stage1 requires the whole population "
        "opinionated");
  }
  if (spec.skip_stage1 && spec.stage1_only) {
    throw std::invalid_argument(
        "run_surrogate: skip_stage1 and stage1_only are contradictory");
  }
  spec.schedule.validate();
  spec.churn.validate();

  const Params params = Params::calibrated(spec.n, spec.eps, spec.tuning);
  const StageOneSchedule& s1 = params.stage1();
  const StageTwoSchedule& s2 = params.stage2();
  const auto n = static_cast<double>(spec.n);

  // Round layout — the same skip_stage1/start_phase arithmetic as
  // BreatheProtocol's constructor and BatchEngine::breathe_schedule, so the
  // surrogate's budget matches the exact engines' round for round.
  const std::uint64_t start_phase =
      spec.auto_join_phase ? params.join_phase_for_initial_set(spec.initial_set)
                           : 0;
  const Round stage1_offset =
      spec.skip_stage1 ? s1.total_rounds() : s1.phase_start(start_phase);
  const Round stage1_rounds = s1.total_rounds() - stage1_offset;
  const Round total_rounds =
      stage1_rounds + (spec.stage1_only ? 0 : s2.total_rounds());

  const EnvironmentSchedule schedule =
      spec.schedule.resolved(spec.eps, total_rounds);
  const bool scheduled = schedule.enabled();
  // Effective channel advantage of execution round r. Heterogeneous: flip
  // probability uniform in [0, 1/2 - eps] has mean 1/4 - eps/2, i.e.
  // advantage 1/4 + eps/2 — linear, so exact in the mean.
  const double static_eps =
      spec.heterogeneous ? 0.25 + spec.eps / 2.0 : spec.eps;
  const auto eps_at = [&](Round r) {
    return scheduled ? schedule.expected_eps_at(r) : static_eps;
  };

  // The three agent classes (field class last). Seeds behave as activated
  // before the join phase: opinionated from execution round 0.
  AgentClass seeds_correct{static_cast<double>(spec.initial_correct), 0.0};
  AgentClass seeds_wrong{
      static_cast<double>(spec.initial_set - spec.initial_correct), 1.0};
  const double field_count = n - static_cast<double>(spec.initial_set);
  // Field state: v = P(still inactive), w = P(opinionated & correct).
  double v = 1.0;
  double w = 0.0;

  AwakeChain awake(spec.churn);
  SurrogateResult result;
  result.rounds = total_rounds;

  const auto opinionated = [&] {
    return seeds_correct.count + seeds_wrong.count + field_count * (1.0 - v);
  };
  const auto correct_count = [&] {
    return seeds_correct.count * (1.0 - seeds_correct.miss_correct) +
           seeds_wrong.count * (1.0 - seeds_wrong.miss_correct) +
           field_count * w;
  };

  // Activation step function over execution rounds, for the probe-grid
  // convergence estimate: (round whose end_round applies the boundary,
  // activation after it). Probes fire at the END of round r, so a boundary
  // at round e is visible to every probe round >= e.
  struct ActivationStep {
    Round round;
    double activated;
  };
  std::vector<ActivationStep> steps;

  // One round's expected traffic, shared by both stages. `senders` is the
  // opinionated count (fixed within a phase); acceptance uses the awake
  // probability twice: asleep senders never route, asleep recipients drop
  // their accepted message.
  const auto round_traffic = [&](double senders, Round r, double awake_prob) {
    const double awake_senders = awake_prob * senders;
    const double p_hit = hit_probability(awake_senders, spec.n);
    const double accepted = expected_hit_recipients(awake_senders, spec.n);
    const double eps_r = eps_at(r);
    result.expected_messages += awake_senders;
    result.expected_delivered += accepted * awake_prob;
    result.expected_dropped +=
        (awake_senders - accepted) + accepted * (1.0 - awake_prob);
    result.expected_flipped += accepted * awake_prob * (0.5 - eps_r);
    return std::pair<double, double>{awake_prob * p_hit, eps_r};
  };

  // ---- Stage I: spreading --------------------------------------------
  if (!spec.skip_stage1) {
    for (std::uint64_t phase = start_phase; phase <= s1.T + 1; ++phase) {
      const double senders = opinionated();
      const double delta =
          senders > 0.0 ? correct_count() / senders - 0.5 : 0.0;
      // Within a phase the sender pool is frozen (activees breathe), so an
      // inactive agent's rounds are independent trials: survival is the
      // product of per-round non-acceptance, and the adopted message's
      // correctness is the acceptance-weighted mean of the per-round
      // correctness q_r = 1/2 + 2 eps_r delta.
      double log_survival = 0.0;
      double sum_acc = 0.0;
      double sum_acc_q = 0.0;
      const Round begin = s1.phase_start(phase) - stage1_offset;
      const Round end = s1.phase_end(phase) - stage1_offset;
      for (Round r = begin; r < end; ++r) {
        const auto [p_acc, eps_r] = round_traffic(senders, r, awake.step());
        log_survival += std::log1p(-p_acc);
        sum_acc += p_acc;
        sum_acc_q += p_acc * (0.5 + 2.0 * eps_r * delta);
      }
      const double activated = -std::expm1(log_survival);
      const double q_bar = sum_acc > 0.0 ? sum_acc_q / sum_acc : 0.5;
      w += v * activated * std::clamp(q_bar, 0.0, 1.0);
      v *= 1.0 - activated;
      result.activation_trace.push_back(opinionated());
      steps.push_back({end - 1, opinionated()});
    }
  }
  const double v_stage1 = v;

  // ---- Stage II: boosting --------------------------------------------
  if (!spec.stage1_only) {
    std::vector<double> acc_probs;
    for (std::uint64_t phase = 0; phase < s2.num_phases(); ++phase) {
      const std::uint64_t length = s2.phase_length(phase);
      const std::uint64_t threshold = s2.half_length(phase);
      const double senders = opinionated();
      const double delta =
          senders > 0.0 ? correct_count() / senders - 0.5 : 0.0;
      acc_probs.clear();
      double sum_acc = 0.0;
      double sum_acc_eps = 0.0;
      const Round begin = stage1_rounds + s2.phase_start(phase);
      for (Round r = begin; r < begin + length; ++r) {
        const auto [p_acc, eps_r] = round_traffic(senders, r, awake.step());
        acc_probs.push_back(p_acc);
        sum_acc += p_acc;
        sum_acc_eps += p_acc * eps_r;
      }
      // sigma = P(an agent accepts >= threshold of the phase's rounds) —
      // "successful", it re-decides. Acceptance varies within a phase only
      // through the awake chain; without churn the binomial closed form is
      // exact (and O(m) instead of the O(m^2) DP).
      TailSplit success;
      if (spec.churn.enabled()) {
        success = poisson_binomial_tail(acc_probs, threshold);
      } else {
        success.ge = binomial_tail_ge(length, threshold, acc_probs.front());
        success.lt = binomial_tail_le(length, threshold - 1,
                                      acc_probs.front());
      }
      // A successful agent majorizes a subset of exactly `threshold`
      // samples (odd, never tied), each correct with the phase's
      // acceptance-weighted q. miss arithmetic keeps the tiny tails:
      //   miss' = sigma P(majority wrong) + (1 - sigma) miss.
      const double eps_eff = sum_acc > 0.0 ? sum_acc_eps / sum_acc : 0.0;
      const double q_bar =
          std::clamp(0.5 + 2.0 * eps_eff * delta, 0.0, 1.0);
      const double majority_wrong =
          binomial_tail_le(threshold, (threshold - 1) / 2, q_bar);
      const auto boost_miss = [&](double miss) {
        return success.ge * majority_wrong + success.lt * miss;
      };
      seeds_correct.miss_correct = boost_miss(seeds_correct.miss_correct);
      seeds_wrong.miss_correct = boost_miss(seeds_wrong.miss_correct);
      // Field agents: success recruits them whether or not they were
      // opinionated (Stage II counts every agent's samples).
      w = success.ge * (1.0 - majority_wrong) + success.lt * w;
      v *= success.lt;
      const double active = opinionated();
      result.activation_trace.push_back(active);
      result.stage2_bias_trace.push_back(
          active > 0.0 ? correct_count() / active - 0.5 : 0.0);
      steps.push_back({begin + length - 1, active});
    }
  }

  // ---- Aggregate outcomes --------------------------------------------
  // Independence across agents: P(all good) = prod (1 - miss_agent),
  // accumulated as sum count * log1p(-miss) per class. Skip empty classes
  // (0 * -inf would poison the sum when a class's miss is exactly 1).
  double log_success = 0.0;
  if (spec.stage1_only) {
    if (field_count > 0.0) log_success = field_count * std::log1p(-v_stage1);
  } else {
    const auto add = [&](double count, double miss) {
      if (count > 0.0) log_success += count * std::log1p(-miss);
    };
    add(seeds_correct.count, seeds_correct.miss_correct);
    add(seeds_wrong.count, seeds_wrong.miss_correct);
    add(field_count, 1.0 - w);
  }
  // log_success can land at +1e-17 from log1p rounding when every miss is
  // ~0; a probability of 1 + ulp would leak into every consumer's range
  // checks.
  result.success_probability = std::exp(std::min(0.0, log_success));
  result.correct_fraction = correct_count() / n;
  result.activation_fraction = opinionated() / n;
  result.final_bias =
      opinionated() > 0.0 ? correct_count() / opinionated() - 0.5 : 0.0;

  if (spec.probe_every > 0) {
    const double threshold = 0.99 * n;
    double active = static_cast<double>(spec.initial_set);
    std::size_t next_step = 0;
    for (Round r = 0; r < total_rounds; r += spec.probe_every) {
      while (next_step < steps.size() && steps[next_step].round <= r) {
        active = steps[next_step].activated;
        ++next_step;
      }
      if (active >= threshold) {
        result.convergence_round = static_cast<double>(r);
        break;
      }
    }
  }
  return result;
}

TrialFn surrogate_trial_fn(const SurrogateSpec& spec) {
  // Run the analysis once, eagerly — construction cost, not per-trial cost
  // — so the returned closure is pure and trivially concurrency-safe.
  const auto result = std::make_shared<const SurrogateResult>(
      run_surrogate(spec));
  return [result](std::uint64_t /*seed*/, std::size_t trial) {
    TrialOutcome outcome;
    // Stratified deterministic outcomes: trial i succeeds iff the base-2
    // radical inverse of i falls below the analytic probability, so a
    // T-trial success rate recovers it with error O(1/T) and the outcome
    // of trial i never depends on thread order or the seed.
    outcome.success = radical_inverse_base2(trial) <
                      result->success_probability;
    outcome.rounds = static_cast<double>(result->rounds);
    outcome.messages = result->expected_messages;
    outcome.correct_fraction = result->correct_fraction;
    outcome.convergence_round = result->convergence_round;
    outcome.delivered =
        static_cast<std::uint64_t>(std::llround(result->expected_delivered));
    outcome.dropped =
        static_cast<std::uint64_t>(std::llround(result->expected_dropped));
    outcome.erased = 0;
    outcome.flipped =
        static_cast<std::uint64_t>(std::llround(result->expected_flipped));
    return outcome;
  };
}

}  // namespace flip
