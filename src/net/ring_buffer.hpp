#pragma once
// Bounded MPSC job queue between the sweep service's ingest thread and its
// runner thread. Deliberately a mutex + condition variable around a fixed
// circular array, not a lock-free structure: the queue moves a handful of
// requests per second while each pop'd job runs for seconds of simulation,
// so contention is nil and the simple invariants are what TSan verifies.
//
// Boundedness is the load-shedding policy: try_push fails immediately when
// the ring is full, and the ingest thread turns that into an `error server
// busy` frame instead of queueing unbounded work. close() wakes any blocked
// pop; pop drains what was accepted before returning nullopt, so shutdown
// never drops an acknowledged job.

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace flip::net {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity)
      : slots_(capacity == 0 ? 1 : capacity) {}

  /// Enqueues without blocking. False when the ring is full or closed —
  /// the caller owns the rejection policy.
  [[nodiscard]] bool try_push(T value) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || count_ == slots_.size()) return false;
      slots_[(head_ + count_) % slots_.size()] = std::move(value);
      ++count_;
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks until a job is available or the buffer is closed AND drained;
  /// nullopt only in the latter case.
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [this] { return count_ != 0 || closed_; });
    if (count_ == 0) return std::nullopt;
    T value = std::move(slots_[head_]);
    head_ = (head_ + 1) % slots_.size();
    --count_;
    return value;
  }

  /// Rejects future pushes and wakes blocked pop()s. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return count_;
  }

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  bool closed_ = false;
};

}  // namespace flip::net
