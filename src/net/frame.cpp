#include "net/frame.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace flip::net {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

/// Reads exactly `size` bytes. Returns the byte count delivered before a
/// failure or EOF, so the caller can tell a clean boundary EOF (0 read of
/// the length prefix) from a truncated frame.
std::size_t read_exact(int fd, char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t got = ::read(fd, data + done, size - done);
    if (got < 0) {
      if (errno == EINTR) continue;
      return done;
    }
    if (got == 0) return done;  // EOF
    done += static_cast<std::size_t>(got);
  }
  return done;
}

bool write_exact(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    // MSG_NOSIGNAL: a hung-up peer yields EPIPE instead of killing the
    // process with SIGPIPE — the server must survive clients vanishing
    // mid-stream.
    const ssize_t put = ::send(fd, data + done, size - done, MSG_NOSIGNAL);
    if (put < 0) {
      if (errno == EINTR) continue;
      if (errno == ENOTSOCK) {
        // Tests drive framing over pipes/socketpairs; fall back to write()
        // for non-socket fds (SIGPIPE is the test harness's concern there).
        const ssize_t w = ::write(fd, data + done, size - done);
        if (w < 0) {
          if (errno == EINTR) continue;
          return false;
        }
        done += static_cast<std::size_t>(w);
        continue;
      }
      return false;
    }
    done += static_cast<std::size_t>(put);
  }
  return true;
}

}  // namespace

FrameResult read_frame(int fd) {
  FrameResult result;
  unsigned char prefix[4];
  const std::size_t got =
      read_exact(fd, reinterpret_cast<char*>(prefix), sizeof prefix);
  if (got == 0) {
    result.status = FrameStatus::kEof;
    return result;
  }
  if (got < sizeof prefix) {
    result.error = "truncated frame length prefix";
    return result;
  }
  const std::uint32_t length = (static_cast<std::uint32_t>(prefix[0]) << 24) |
                               (static_cast<std::uint32_t>(prefix[1]) << 16) |
                               (static_cast<std::uint32_t>(prefix[2]) << 8) |
                               static_cast<std::uint32_t>(prefix[3]);
  if (length > kMaxFrameBytes) {
    result.error = "frame length " + std::to_string(length) +
                   " exceeds the " + std::to_string(kMaxFrameBytes) +
                   "-byte cap";
    return result;
  }
  result.payload.resize(length);
  if (read_exact(fd, result.payload.data(), length) != length) {
    result.payload.clear();
    result.error = "truncated frame payload";
    return result;
  }
  result.status = FrameStatus::kOk;
  return result;
}

bool write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes) return false;
  const auto length = static_cast<std::uint32_t>(payload.size());
  // One contiguous buffer, one send: prefix-then-payload as two small
  // writes makes every frame pay a Nagle/delayed-ACK round-trip, which
  // dominates small-request latency on loopback.
  std::string buffer;
  buffer.reserve(sizeof(std::uint32_t) + payload.size());
  buffer.push_back(static_cast<char>(length >> 24));
  buffer.push_back(static_cast<char>(length >> 16));
  buffer.push_back(static_cast<char>(length >> 8));
  buffer.push_back(static_cast<char>(length));
  buffer.append(payload);
  return write_exact(fd, buffer.data(), buffer.size());
}

int listen_local(std::uint16_t port, std::string& error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = errno_text("socket");
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0) {
    error = errno_text("bind");
    close_fd(fd);
    return -1;
  }
  if (::listen(fd, SOMAXCONN) < 0) {
    error = errno_text("listen");
    close_fd(fd);
    return -1;
  }
  return fd;
}

std::optional<std::uint16_t> local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    return std::nullopt;
  }
  return ntohs(addr.sin_port);
}

int connect_local(std::uint16_t port, std::string& error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    error = errno_text("socket");
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    error = errno_text("connect");
    close_fd(fd);
    return -1;
  }
  set_nodelay(fd);
  return fd;
}

void set_nodelay(int fd) noexcept {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void close_fd(int fd) noexcept {
  if (fd >= 0) ::close(fd);
}

}  // namespace flip::net
