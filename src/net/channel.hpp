#pragma once
// Noise channel abstraction. The paper's Flip model uses a binary symmetric
// channel with crossover probability 1/2 - eps applied independently to
// every received message. Alternative channels (perfect, erasure,
// budget-bounded adversarial) exist for baselines, ablations and tests.
//
// Every channel exposes transmit() twice: once drawing from a sequential
// Xoshiro256 stream (legacy callers, statistical tests) and once from a
// counter-keyed CounterRng — the engines key that stream by
// (trial, round, recipient, RngPurpose::kChannel), which is what makes the
// noise independent of delivery order, thread count, and shard count. Both
// overloads share one template body per channel, so they cannot drift.

#include <memory>
#include <optional>
#include <string>

#include "core/environment.hpp"
#include "net/message.hpp"
#include "util/rng.hpp"

namespace flip {

/// Transforms a transmitted bit into the bit the receiver observes.
/// Implementations must be safe to share across sequential calls with
/// distinct rngs; stateful channels (Adversarial) document their own rules.
class NoiseChannel {
 public:
  virtual ~NoiseChannel() = default;

  /// The received bit, or nullopt if the message was destroyed in transit
  /// (only ErasureChannel ever erases).
  [[nodiscard]] virtual std::optional<Opinion> transmit(Opinion sent,
                                                        Xoshiro256& rng) = 0;
  /// Counter-keyed twin: same distribution, drawn from the recipient's
  /// per-round stream. Engines call this one.
  [[nodiscard]] virtual std::optional<Opinion> transmit(Opinion sent,
                                                        CounterRng& rng) = 0;

  /// Round hook: engines call this once at the start of round `round` of
  /// the trial rooted at `trial_key`, before any transmit() of that round.
  /// Channels whose noise level is round-scoped (CorrelatedBurstChannel)
  /// fix their per-round state here — from counter-keyed draws only, so
  /// the realized noise is identical on every substrate. Default: no-op
  /// (the static channels have no round state).
  virtual void begin_round(const StreamKey& trial_key, std::uint64_t round) {
    (void)trial_key;
    (void)round;
  }

  /// Nominal per-message flip probability (for reporting; the adversarial
  /// channel reports its worst-case rate).
  [[nodiscard]] virtual double flip_probability() const noexcept = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Binary symmetric channel with crossover probability p = 1/2 - eps: the
/// channel of the Flip model (Section 1.3.2). Requires 0 < eps <= 1/2.
class BinarySymmetricChannel final : public NoiseChannel {
 public:
  explicit BinarySymmetricChannel(double eps);

  // transmit() is defined in-class (here and in the other concrete channels)
  // so that statically typed callers — the BatchEngine fast path templates —
  // can devirtualize AND inline the per-message draw. Virtual dispatch
  // through NoiseChannel& behaves exactly as before.
  [[nodiscard]] std::optional<Opinion> transmit(Opinion sent,
                                                Xoshiro256& rng) override {
    return transmit_with(sent, rng);
  }
  [[nodiscard]] std::optional<Opinion> transmit(Opinion sent,
                                                CounterRng& rng) override {
    return transmit_with(sent, rng);
  }
  template <typename Rng>
  [[nodiscard]] std::optional<Opinion> transmit_with(Opinion sent, Rng& rng) {
    return bernoulli(rng, 0.5 - eps_) ? flip_opinion(sent) : sent;
  }
  [[nodiscard]] double flip_probability() const noexcept override {
    return 0.5 - eps_;
  }
  [[nodiscard]] double eps() const noexcept { return eps_; }
  [[nodiscard]] std::string name() const override;

 private:
  double eps_;
};

/// Noiseless channel (eps = 1/2 in the model's parameterization). Used by
/// the noiseless reference baselines and in tests.
class PerfectChannel final : public NoiseChannel {
 public:
  [[nodiscard]] std::optional<Opinion> transmit(Opinion sent,
                                                Xoshiro256& rng) override {
    return transmit_with(sent, rng);
  }
  [[nodiscard]] std::optional<Opinion> transmit(Opinion sent,
                                                CounterRng& rng) override {
    return transmit_with(sent, rng);
  }
  template <typename Rng>
  [[nodiscard]] std::optional<Opinion> transmit_with(Opinion sent, Rng&) {
    return sent;
  }
  [[nodiscard]] double flip_probability() const noexcept override { return 0.0; }
  [[nodiscard]] std::string name() const override { return "perfect"; }
};

/// Erasure channel extension: with probability erase_prob the message is
/// destroyed; otherwise it passes through a BSC(1/2 - eps). Models the
/// message-loss faults of classic fault-tolerant gossip on top of flips.
class ErasureChannel final : public NoiseChannel {
 public:
  ErasureChannel(double eps, double erase_prob);

  [[nodiscard]] std::optional<Opinion> transmit(Opinion sent,
                                                Xoshiro256& rng) override {
    return transmit_with(sent, rng);
  }
  [[nodiscard]] std::optional<Opinion> transmit(Opinion sent,
                                                CounterRng& rng) override {
    return transmit_with(sent, rng);
  }
  template <typename Rng>
  [[nodiscard]] std::optional<Opinion> transmit_with(Opinion sent, Rng& rng) {
    if (bernoulli(rng, erase_prob_)) return std::nullopt;
    return bernoulli(rng, 0.5 - eps_) ? flip_opinion(sent) : sent;
  }
  [[nodiscard]] double flip_probability() const noexcept override {
    return 0.5 - eps_;
  }
  [[nodiscard]] double erase_probability() const noexcept { return erase_prob_; }
  [[nodiscard]] std::string name() const override;

 private:
  double eps_;
  double erase_prob_;
};

/// Heterogeneous channel: the Flip model only promises flips happen "with
/// probability AT MOST 1/2 - eps" (Section 1.3.2). This channel exercises
/// that clause: each message independently draws its own flip probability
/// uniformly from [0, 1/2 - eps], so the guaranteed advantage eps is only a
/// floor. Protocol guarantees must survive it unchanged (the average noise
/// is strictly milder), which tests that no code path secretly relies on
/// the noise being exactly 1/2 - eps.
class HeterogeneousChannel final : public NoiseChannel {
 public:
  explicit HeterogeneousChannel(double eps);

  [[nodiscard]] std::optional<Opinion> transmit(Opinion sent,
                                                Xoshiro256& rng) override {
    return transmit_with(sent, rng);
  }
  [[nodiscard]] std::optional<Opinion> transmit(Opinion sent,
                                                CounterRng& rng) override {
    return transmit_with(sent, rng);
  }
  template <typename Rng>
  [[nodiscard]] std::optional<Opinion> transmit_with(Opinion sent, Rng& rng) {
    const double flip_prob = uniform_unit(rng) * (0.5 - eps_);
    return bernoulli(rng, flip_prob) ? flip_opinion(sent) : sent;
  }
  [[nodiscard]] double flip_probability() const noexcept override {
    return (0.5 - eps_) / 2.0;  // mean of the uniform draw
  }
  [[nodiscard]] double eps() const noexcept { return eps_; }
  [[nodiscard]] std::string name() const override;

 private:
  double eps_;
};

/// Dynamic-environment channel: a BSC whose advantage eps follows an
/// EnvironmentSchedule (core/environment.hpp) — piecewise step/ramp
/// segments plus correlated noise bursts that hit whole windows of rounds
/// at once. The model's "with probability at most 1/2 - eps" clause made
/// per-message noise heterogeneous (HeterogeneousChannel); this channel
/// makes it ROUND-correlated instead, which is the harder case for the
/// protocol's phase-length union bounds.
///
/// Round protocol: engines call begin_round(trial_key, r) once per round,
/// which evaluates the schedule (the burst lottery draws from the trial's
/// kEnvironment counter stream) and pins this round's eps; transmit() then
/// flips with probability 1/2 - eps from the RECIPIENT's keyed stream as
/// usual. Both draws are pure functions of their keys, so the realized
/// noise is bit-identical across engines, threads, and shards.
/// Constructed per trial, like the other channels; the only state is the
/// cached round eps.
class CorrelatedBurstChannel final : public NoiseChannel {
 public:
  /// `schedule` must be resolved() and validate()d; round eps starts at the
  /// schedule's base until the first begin_round call.
  explicit CorrelatedBurstChannel(EnvironmentSchedule schedule);

  void begin_round(const StreamKey& trial_key, std::uint64_t round) override {
    round_eps_ = schedule_.eps_at(trial_key, round);
  }

  [[nodiscard]] std::optional<Opinion> transmit(Opinion sent,
                                                Xoshiro256& rng) override {
    return transmit_with(sent, rng);
  }
  [[nodiscard]] std::optional<Opinion> transmit(Opinion sent,
                                                CounterRng& rng) override {
    return transmit_with(sent, rng);
  }
  template <typename Rng>
  [[nodiscard]] std::optional<Opinion> transmit_with(Opinion sent, Rng& rng) {
    return bernoulli(rng, 0.5 - round_eps_) ? flip_opinion(sent) : sent;
  }
  [[nodiscard]] double flip_probability() const noexcept override {
    return 0.5 - round_eps_;  // this round's rate
  }
  [[nodiscard]] const EnvironmentSchedule& schedule() const noexcept {
    return schedule_;
  }
  [[nodiscard]] double round_eps() const noexcept { return round_eps_; }
  [[nodiscard]] std::string name() const override;

 private:
  EnvironmentSchedule schedule_;
  double round_eps_;
};

/// Budget-bounded adversarial channel extension: flips deterministically
/// while it has budget left (the worst case for protocols that trust early
/// messages), then behaves perfectly. Not part of the paper's model; used by
/// failure-injection tests to show which guarantees do NOT survive
/// non-stochastic noise. Stateful: one instance per trial — and, unlike the
/// stochastic channels, inherently order-dependent (the budget is spent in
/// delivery order), so it is excluded from the shard-invariance contract.
class AdversarialChannel final : public NoiseChannel {
 public:
  explicit AdversarialChannel(std::uint64_t flip_budget);

  [[nodiscard]] std::optional<Opinion> transmit(Opinion sent,
                                                Xoshiro256&) override {
    return transmit_spend(sent);
  }
  [[nodiscard]] std::optional<Opinion> transmit(Opinion sent,
                                                CounterRng&) override {
    return transmit_spend(sent);
  }
  [[nodiscard]] double flip_probability() const noexcept override {
    return budget_left_ > 0 ? 1.0 : 0.0;
  }
  [[nodiscard]] std::uint64_t budget_left() const noexcept {
    return budget_left_;
  }
  [[nodiscard]] std::string name() const override;

 private:
  [[nodiscard]] std::optional<Opinion> transmit_spend(Opinion sent) {
    if (budget_left_ > 0) {
      --budget_left_;
      return flip_opinion(sent);
    }
    return sent;
  }

  std::uint64_t budget_left_;
};

/// Factory for the model's canonical channel.
std::unique_ptr<NoiseChannel> make_flip_channel(double eps);

}  // namespace flip
