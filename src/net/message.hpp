#pragma once
// The Flip model's message alphabet: a single bit encoding an opinion.
// Section 1.3.2 restricts every message to exactly one bit, so the whole
// "wire format" of the system is this enum.

#include <cstdint>
#include <string_view>

namespace flip {

/// One of the two abstract, symmetric opinions of the model. The correct
/// opinion B is chosen per scenario; agents never branch on the value itself
/// (symmetric-algorithm requirement, Section 1.3.4), only on equality.
enum class Opinion : std::uint8_t { kZero = 0, kOne = 1 };

[[nodiscard]] constexpr Opinion flip_opinion(Opinion o) noexcept {
  return o == Opinion::kZero ? Opinion::kOne : Opinion::kZero;
}

[[nodiscard]] constexpr std::string_view to_string(Opinion o) noexcept {
  return o == Opinion::kZero ? "0" : "1";
}

/// Agent identifier within one simulated population. Agents are anonymous in
/// the model — ids exist only for the simulator's bookkeeping and are never
/// visible to protocol logic.
using AgentId = std::uint32_t;

/// A message in flight during one round: sender bookkeeping id plus the bit
/// as it left the sender (noise is applied at reception, per Section 1.3.2:
/// "upon receiving it, the bit in the message is flipped").
struct Message {
  AgentId sender;
  Opinion bit;
};

}  // namespace flip
