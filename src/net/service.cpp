#include "net/service.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <stdexcept>
#include <utility>

#include "cli/report.hpp"
#include "net/frame.hpp"
#include "util/json_writer.hpp"

namespace flip::net {

namespace {

/// Thrown out of the per-point sink when the client hangs up mid-stream:
/// aborts the sweep (run_sweep propagates sink exceptions) without treating
/// a vanished client as a server error.
struct ClientGone {};

}  // namespace

SweepServer::SweepServer(ServiceOptions options)
    : options_(options), queue_(options.queue_capacity) {}

SweepServer::~SweepServer() { stop(); }

bool SweepServer::start(std::string& error) {
  listen_fd_ = listen_local(options_.port, error);
  if (listen_fd_ < 0) return false;
  const auto port = local_port(listen_fd_);
  if (!port) {
    error = "getsockname failed on the listening socket";
    close_fd(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  port_ = *port;
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    error = "pipe failed for the shutdown wakeup";
    close_fd(listen_fd_);
    listen_fd_ = -1;
    return false;
  }
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  started_.store(true);
  ingest_ = std::thread([this] { ingest_loop(); });
  runner_ = std::thread([this] { runner_loop(); });
  return true;
}

void SweepServer::wait() {
  if (ingest_.joinable()) ingest_.join();
  if (runner_.joinable()) runner_.join();
  // Cleanup lives here, not in stop(): once both threads have exited the
  // listening socket MUST close, or a post-shutdown connect would sit in
  // the kernel backlog forever with nobody accepting. Runs exactly once
  // (fds are -1 afterwards); wait()/stop() are not meant to race each
  // other from two threads.
  close_fd(listen_fd_);
  close_fd(wake_read_);
  close_fd(wake_write_);
  listen_fd_ = wake_read_ = wake_write_ = -1;
  started_.store(false);
}

void SweepServer::stop() {
  if (!started_.load()) return;
  stopping_.store(true);
  queue_.close();
  if (wake_write_ >= 0) {
    const char byte = 'x';
    // Best-effort: the pipe holds at most this one byte; a full pipe means
    // a wakeup is already pending.
    [[maybe_unused]] const ssize_t rc = ::write(wake_write_, &byte, 1);
  }
  wait();
}

void SweepServer::ingest_loop() {
  while (!stopping_.load()) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_read_, POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) continue;  // EINTR
    if (stopping_.load() || (fds[1].revents & POLLIN) != 0) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    set_nodelay(fd);
    serve_connection(fd);
  }
  // No more jobs can arrive; let the runner drain what was accepted and
  // exit.
  queue_.close();
}

void SweepServer::serve_connection(int fd) {
  const FrameResult frame = read_frame(fd);
  if (frame.status != FrameStatus::kOk) {
    close_fd(fd);
    return;
  }
  std::string error;
  const auto request = cli::parse_sweep_request(frame.payload, error);
  if (!request) {
    [[maybe_unused]] const bool ok = write_frame(fd, "error " + error);
    close_fd(fd);
    return;
  }
  if (request->command == cli::WireCommand::kPing) {
    [[maybe_unused]] const bool ok = write_frame(fd, "pong");
    close_fd(fd);
    return;
  }
  if (request->command == cli::WireCommand::kShutdown) {
    [[maybe_unused]] const bool ok = write_frame(fd, "bye");
    close_fd(fd);
    stopping_.store(true);
    return;
  }
  if (request->scenario.empty()) {
    [[maybe_unused]] const bool ok =
        write_frame(fd, "error sweep request has no scenario");
    close_fd(fd);
    return;
  }
  Job job;
  job.fd = fd;
  if (auto reject = cli::resolve_sweep_request(*request, job.spec)) {
    [[maybe_unused]] const bool ok = write_frame(fd, "error " + *reject);
    close_fd(fd);
    return;
  }
  // Fail fast at ingest, before the job can occupy the runner: expanding
  // the grid runs the registry's full per-cell validation (unknown
  // channel, bad n, ...), and the checks below mirror run_sweep's own
  // preconditions so a doomed request never enqueues.
  std::string reject;
  try {
    const auto grid = cli::expand_grid(job.spec);
    if (job.spec.trials == 0) {
      reject = "run_sweep: trials == 0";
    } else if (job.spec.first_cell > grid.size()) {
      reject = "run_sweep: first_cell " + std::to_string(job.spec.first_cell) +
               " is past the " + std::to_string(grid.size()) +
               "-cell grid (stale checkpoint for a different spec?)";
    }
  } catch (const std::exception& e) {
    reject = e.what();
  }
  if (!reject.empty()) {
    [[maybe_unused]] const bool ok = write_frame(fd, "error " + reject);
    close_fd(fd);
    return;
  }
  // Streamed frames are the output; never accumulate the grid in memory.
  job.spec.collect_points = false;
  if (request->threads == 0) job.spec.threads = options_.threads;
  if (!queue_.try_push(std::move(job))) {
    [[maybe_unused]] const bool ok =
        write_frame(fd, "error server busy (queue full); retry later");
    close_fd(fd);
  }
  // On success the job owns fd; the runner responds and closes it.
}

void SweepServer::runner_loop() {
  while (auto job = queue_.pop()) {
    run_job(std::move(*job));
  }
}

void SweepServer::run_job(Job job) {
  std::size_t cells = 0;
  try {
    const cli::SweepResult result = cli::run_sweep(
        job.spec, [&](std::size_t cell, const cli::SweepPoint& point) {
          const std::string payload = "point " + std::to_string(cell) + ' ' +
                                      cli::sweep_point_line(point);
          if (!write_frame(job.fd, payload)) throw ClientGone{};
          ++cells;
        });
    JsonWriter done(0);
    done.begin_object()
        .field("schema", "flipsvc-done-v1")
        .field("points", static_cast<std::uint64_t>(cells))
        .field("wall_seconds", result.wall_seconds)
        .end_object();
    [[maybe_unused]] const bool ok = write_frame(job.fd, "done " + done.str());
  } catch (const ClientGone&) {
    // The client hung up mid-stream; the sweep was aborted. Nothing to
    // report to anyone.
  } catch (const std::exception& e) {
    [[maybe_unused]] const bool ok =
        write_frame(job.fd, "error " + std::string(e.what()));
  }
  close_fd(job.fd);
}

// --- client ---------------------------------------------------------------

namespace {

/// Connects, sends one request, and hands back the fd. Throws on failure.
int open_request(std::uint16_t port, const cli::SweepRequest& request) {
  std::string error;
  const int fd = connect_local(port, error);
  if (fd < 0) {
    throw std::runtime_error("flipsvc connect: " + error);
  }
  if (!write_frame(fd, cli::encode_sweep_request(request))) {
    close_fd(fd);
    throw std::runtime_error("flipsvc: failed to send the request frame");
  }
  return fd;
}

}  // namespace

std::string SweepClient::run_sweep(const cli::SweepRequest& request,
                                   const PointLineSink& on_line) {
  const int fd = open_request(port_, request);
  std::string done;
  try {
    for (;;) {
      const FrameResult frame = read_frame(fd);
      if (frame.status == FrameStatus::kEof) {
        throw std::runtime_error(
            "flipsvc: connection closed before the done frame");
      }
      if (frame.status == FrameStatus::kError) {
        throw std::runtime_error("flipsvc: " + frame.error);
      }
      const std::string& payload = frame.payload;
      if (payload.rfind("point ", 0) == 0) {
        const std::size_t space = payload.find(' ', 6);
        if (space == std::string::npos) {
          throw std::runtime_error("flipsvc: malformed point frame");
        }
        const std::size_t cell = static_cast<std::size_t>(
            std::stoull(payload.substr(6, space - 6)));
        if (on_line) on_line(cell, payload.substr(space + 1));
        continue;
      }
      if (payload.rfind("done ", 0) == 0) {
        done = payload.substr(5);
        break;
      }
      if (payload.rfind("error ", 0) == 0) {
        throw std::runtime_error("flipsvc server: " + payload.substr(6));
      }
      throw std::runtime_error("flipsvc: unexpected frame '" +
                               payload.substr(0, 32) + "'");
    }
  } catch (...) {
    close_fd(fd);
    throw;
  }
  close_fd(fd);
  return done;
}

bool SweepClient::ping(std::string& error) {
  cli::SweepRequest request;
  request.command = cli::WireCommand::kPing;
  int fd = -1;
  try {
    fd = open_request(port_, request);
  } catch (const std::exception& e) {
    error = e.what();
    return false;
  }
  const FrameResult frame = read_frame(fd);
  close_fd(fd);
  if (frame.status != FrameStatus::kOk || frame.payload != "pong") {
    error = frame.status == FrameStatus::kOk
                ? "unexpected reply '" + frame.payload + "'"
                : (frame.status == FrameStatus::kEof ? "connection closed"
                                                     : frame.error);
    return false;
  }
  return true;
}

bool SweepClient::shutdown_server(std::string& error) {
  cli::SweepRequest request;
  request.command = cli::WireCommand::kShutdown;
  int fd = -1;
  try {
    fd = open_request(port_, request);
  } catch (const std::exception& e) {
    error = e.what();
    return false;
  }
  const FrameResult frame = read_frame(fd);
  close_fd(fd);
  if (frame.status != FrameStatus::kOk || frame.payload != "bye") {
    error = frame.status == FrameStatus::kOk
                ? "unexpected reply '" + frame.payload + "'"
                : (frame.status == FrameStatus::kEof ? "connection closed"
                                                     : frame.error);
    return false;
  }
  return true;
}

}  // namespace flip::net
