#pragma once
// Length-prefixed framing and loopback socket plumbing for the sweep
// service. A frame is a 4-byte big-endian payload length followed by that
// many payload bytes; the payload is UTF-8 text (requests one way,
// `point`/`done`/`error`/`pong` lines the other — see docs/SERVICE.md).
//
// The helpers speak raw POSIX file descriptors so the same code path
// serves sockets in the daemon and socketpairs in tests. All reads and
// writes loop over short transfers and retry EINTR; nothing here is
// non-blocking.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace flip::net {

/// Frames above this are a protocol violation, not a big request: reading
/// rejects them before allocating, so a stray non-protocol peer cannot
/// make the server reserve gigabytes from four garbage bytes.
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;  // 16 MiB

/// Outcome of read_frame: a payload, clean end-of-stream (EOF exactly at a
/// frame boundary), or an error (truncated frame, oversized length, or a
/// failed read).
enum class FrameStatus { kOk, kEof, kError };

struct FrameResult {
  FrameStatus status = FrameStatus::kError;
  std::string payload;  ///< filled only when status == kOk
  std::string error;    ///< human-readable cause when status == kError
};

/// Reads one length-prefixed frame from `fd` (blocking).
[[nodiscard]] FrameResult read_frame(int fd);

/// Writes one length-prefixed frame to `fd` (blocking). Returns false on
/// any write failure (including EPIPE from a hung-up peer — callers treat
/// that as "client went away", not a crash; SIGPIPE is suppressed
/// per-call).
[[nodiscard]] bool write_frame(int fd, std::string_view payload);

// --- loopback sockets -----------------------------------------------------

/// Binds and listens on 127.0.0.1:<port> (port 0 = kernel-assigned
/// ephemeral port, read it back with local_port). Returns the listening fd,
/// or -1 with `error` set.
[[nodiscard]] int listen_local(std::uint16_t port, std::string& error);

/// The port a listening/bound socket actually holds — the ephemeral port
/// when listen_local was given 0.
[[nodiscard]] std::optional<std::uint16_t> local_port(int fd);

/// Connects to 127.0.0.1:<port>. Returns the connected fd, or -1 with
/// `error` set. TCP_NODELAY is set on the returned socket.
[[nodiscard]] int connect_local(std::uint16_t port, std::string& error);

/// Disables Nagle on a connected TCP socket (best-effort; a no-op on
/// non-TCP fds such as the socketpairs tests frame over). Request/response
/// frames are small and latency-bound, so coalescing hurts.
void set_nodelay(int fd) noexcept;

/// close() that ignores EINTR/EBADF noise; safe on -1.
void close_fd(int fd) noexcept;

}  // namespace flip::net
