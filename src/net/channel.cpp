#include "net/channel.hpp"

#include <sstream>
#include <stdexcept>

namespace flip {

BinarySymmetricChannel::BinarySymmetricChannel(double eps) : eps_(eps) {
  if (!(eps > 0.0) || eps > 0.5) {
    throw std::invalid_argument(
        "BinarySymmetricChannel: eps must be in (0, 0.5]");
  }
}

std::optional<Opinion> BinarySymmetricChannel::transmit(Opinion sent,
                                                        Xoshiro256& rng) {
  return bernoulli(rng, 0.5 - eps_) ? flip_opinion(sent) : sent;
}

std::string BinarySymmetricChannel::name() const {
  std::ostringstream os;
  os << "bsc(eps=" << eps_ << ")";
  return os.str();
}

std::optional<Opinion> PerfectChannel::transmit(Opinion sent, Xoshiro256&) {
  return sent;
}

ErasureChannel::ErasureChannel(double eps, double erase_prob)
    : eps_(eps), erase_prob_(erase_prob) {
  if (!(eps > 0.0) || eps > 0.5) {
    throw std::invalid_argument("ErasureChannel: eps must be in (0, 0.5]");
  }
  if (erase_prob < 0.0 || erase_prob >= 1.0) {
    throw std::invalid_argument("ErasureChannel: erase_prob must be in [0, 1)");
  }
}

std::optional<Opinion> ErasureChannel::transmit(Opinion sent,
                                                Xoshiro256& rng) {
  if (bernoulli(rng, erase_prob_)) return std::nullopt;
  return bernoulli(rng, 0.5 - eps_) ? flip_opinion(sent) : sent;
}

std::string ErasureChannel::name() const {
  std::ostringstream os;
  os << "erasure(eps=" << eps_ << ", q=" << erase_prob_ << ")";
  return os.str();
}

HeterogeneousChannel::HeterogeneousChannel(double eps) : eps_(eps) {
  if (!(eps > 0.0) || eps > 0.5) {
    throw std::invalid_argument("HeterogeneousChannel: eps must be in (0, 0.5]");
  }
}

std::optional<Opinion> HeterogeneousChannel::transmit(Opinion sent,
                                                      Xoshiro256& rng) {
  const double flip_prob = uniform_unit(rng) * (0.5 - eps_);
  return bernoulli(rng, flip_prob) ? flip_opinion(sent) : sent;
}

std::string HeterogeneousChannel::name() const {
  std::ostringstream os;
  os << "heterogeneous(eps_floor=" << eps_ << ")";
  return os.str();
}

AdversarialChannel::AdversarialChannel(std::uint64_t flip_budget)
    : budget_left_(flip_budget) {}

std::optional<Opinion> AdversarialChannel::transmit(Opinion sent,
                                                    Xoshiro256&) {
  if (budget_left_ > 0) {
    --budget_left_;
    return flip_opinion(sent);
  }
  return sent;
}

std::string AdversarialChannel::name() const {
  std::ostringstream os;
  os << "adversarial(budget_left=" << budget_left_ << ")";
  return os.str();
}

std::unique_ptr<NoiseChannel> make_flip_channel(double eps) {
  return std::make_unique<BinarySymmetricChannel>(eps);
}

}  // namespace flip
