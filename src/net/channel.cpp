#include "net/channel.hpp"

#include <sstream>
#include <stdexcept>

namespace flip {

BinarySymmetricChannel::BinarySymmetricChannel(double eps) : eps_(eps) {
  if (!(eps > 0.0) || eps > 0.5) {
    throw std::invalid_argument(
        "BinarySymmetricChannel: eps must be in (0, 0.5]");
  }
}

std::string BinarySymmetricChannel::name() const {
  std::ostringstream os;
  os << "bsc(eps=" << eps_ << ")";
  return os.str();
}

ErasureChannel::ErasureChannel(double eps, double erase_prob)
    : eps_(eps), erase_prob_(erase_prob) {
  if (!(eps > 0.0) || eps > 0.5) {
    throw std::invalid_argument("ErasureChannel: eps must be in (0, 0.5]");
  }
  if (erase_prob < 0.0 || erase_prob >= 1.0) {
    throw std::invalid_argument("ErasureChannel: erase_prob must be in [0, 1)");
  }
}

std::string ErasureChannel::name() const {
  std::ostringstream os;
  os << "erasure(eps=" << eps_ << ", q=" << erase_prob_ << ")";
  return os.str();
}

HeterogeneousChannel::HeterogeneousChannel(double eps) : eps_(eps) {
  if (!(eps > 0.0) || eps > 0.5) {
    throw std::invalid_argument("HeterogeneousChannel: eps must be in (0, 0.5]");
  }
}

std::string HeterogeneousChannel::name() const {
  std::ostringstream os;
  os << "heterogeneous(eps_floor=" << eps_ << ")";
  return os.str();
}

CorrelatedBurstChannel::CorrelatedBurstChannel(EnvironmentSchedule schedule)
    : schedule_(std::move(schedule)), round_eps_(schedule_.base_eps) {
  if (!(schedule_.base_eps > 0.0) || schedule_.base_eps > 0.5) {
    throw std::invalid_argument(
        "CorrelatedBurstChannel: schedule must be resolved() to a base eps "
        "in (0, 0.5]");
  }
  schedule_.validate();
}

std::string CorrelatedBurstChannel::name() const {
  return "scheduled(" + schedule_.describe() + ")";
}

AdversarialChannel::AdversarialChannel(std::uint64_t flip_budget)
    : budget_left_(flip_budget) {}

std::string AdversarialChannel::name() const {
  std::ostringstream os;
  os << "adversarial(budget_left=" << budget_left_ << ")";
  return os.str();
}

std::unique_ptr<NoiseChannel> make_flip_channel(double eps) {
  return std::make_unique<BinarySymmetricChannel>(eps);
}

}  // namespace flip
