#pragma once
// The flipsim sweep service: a resident daemon that keeps the ThreadPool
// workers — and their thread_local TrialArena scratch — warm across
// requests, so repeated sweeps skip process start-up, pool spawn, and the
// first-trial allocation ramp entirely.
//
//   client ──connect──▶ ingest thread ──RingBuffer──▶ runner thread
//                       (parse+validate,              (run_sweep, one
//                        fail fast)                    frame per cell)
//
// One request per connection, framed as in net/frame.hpp. The ingest
// thread accepts, reads the single request frame, parses and validates it
// through cli::resolve_sweep_request — the SAME layer the flipsim CLI uses,
// so a request the CLI would reject dies here with the identical message,
// before it can occupy the runner. Valid sweeps are enqueued on a bounded
// RingBuffer; a full ring answers `error server busy` instead of queueing
// unbounded work. The runner drains jobs in order and streams one
// `point <cell> <compact-json>` frame per grid cell as it completes
// (collect_points=false: O(1) result memory no matter the grid), then a
// final `done <json>` frame. See docs/SERVICE.md for the wire grammar.

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "cli/sweep.hpp"
#include "cli/wire.hpp"
#include "net/ring_buffer.hpp"

namespace flip::net {

struct ServiceOptions {
  std::uint16_t port = 0;        ///< 0 = kernel-assigned ephemeral port
  std::size_t threads = 0;       ///< worker override for requests that
                                 ///< leave threads unset (0 = inline)
  std::size_t queue_capacity = 16;  ///< accepted-but-unstarted sweep cap
};

class SweepServer {
 public:
  explicit SweepServer(ServiceOptions options = {});
  ~SweepServer();

  SweepServer(const SweepServer&) = delete;
  SweepServer& operator=(const SweepServer&) = delete;

  /// Binds 127.0.0.1 and spawns the ingest + runner threads. False (with
  /// `error` set) when the port cannot be bound.
  [[nodiscard]] bool start(std::string& error);

  /// The bound port — the ephemeral one when options.port was 0. Valid
  /// after start() succeeds.
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Blocks until the server stops (shutdown command or stop()).
  void wait();

  /// Stops accepting, drains accepted jobs, joins both threads. Idempotent;
  /// the destructor calls it.
  void stop();

 private:
  struct Job {
    int fd = -1;  ///< connected client, owned by the job once enqueued
    cli::SweepSpec spec;
  };

  void ingest_loop();
  void runner_loop();
  void serve_connection(int fd);
  void run_job(Job job);

  ServiceOptions options_;
  std::uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_read_ = -1;   ///< self-pipe: stop() unblocks the ingest poll
  int wake_write_ = -1;
  RingBuffer<Job> queue_;
  std::thread ingest_;
  std::thread runner_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> started_{false};
};

// --- client ---------------------------------------------------------------

/// Per-point callback: the grid cell index and the compact flipsim-sweep-v1
/// point JSON line the server rendered for it.
using PointLineSink =
    std::function<void(std::size_t cell, const std::string& line)>;

/// Client for a running SweepServer. Each call opens its own connection
/// (one request per connection), so a client object is trivially reusable
/// and copyable.
class SweepClient {
 public:
  explicit SweepClient(std::uint16_t port) : port_(port) {}

  /// Submits a sweep and streams the response: `on_line` fires once per
  /// grid cell, in grid order, as cells complete server-side. Returns the
  /// final `done` frame's JSON payload. Throws std::runtime_error on
  /// connection failure, a server `error` frame, or a malformed response.
  std::string run_sweep(const cli::SweepRequest& request,
                        const PointLineSink& on_line = {});

  /// True when the server answers the ping; false (with `error` set)
  /// otherwise. The readiness probe for scripts and tests.
  [[nodiscard]] bool ping(std::string& error);

  /// Asks the server to shut down after draining accepted work. True when
  /// the server acknowledged.
  [[nodiscard]] bool shutdown_server(std::string& error);

 private:
  std::uint16_t port_;
};

}  // namespace flip::net
