#include "workload/registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "baselines/aae.hpp"
#include "baselines/forward.hpp"
#include "baselines/pull_majority.hpp"
#include "baselines/silent.hpp"
#include "baselines/voter.hpp"
#include "core/theory.hpp"
#include "net/channel.hpp"
#include "sim/batch_engine.hpp"
#include "sim/engine.hpp"
#include "util/math.hpp"
#include "workload/scenarios.hpp"

namespace flip {

namespace {

// Baseline trial fns derive their rng the same way scenarios.cpp does:
// engine-level draws from the trial's counter-stream root key, any
// sequential protocol-internal stream from disjoint per-trial Xoshiro
// lanes. Every trial of a sweep is independent and replayable from
// (master seed, trial).
constexpr std::uint64_t kStreamsPerTrial = 4;

Xoshiro256 baseline_rng(std::uint64_t seed, std::size_t trial,
                        std::uint64_t lane) {
  return make_stream(seed, kStreamsPerTrial * trial + lane);
}

/// Probe period the dynamic-environment entries record their activation /
/// bias series at: dense enough for a sharp convergence-round estimate,
/// sparse enough to stay cheap. The classic entries keep probes off.
constexpr Round kDynamicProbeEvery = 8;

BroadcastScenario broadcast_from(const ScenarioConfig& config) {
  BroadcastScenario scenario;
  scenario.n = config.n;
  scenario.eps = config.eps;
  scenario.heterogeneous_noise = config.channel == kChannelHeterogeneous;
  scenario.engine = config.engine;
  scenario.shards = config.shards;
  scenario.schedule = config.schedule;
  scenario.churn = config.churn;
  scenario.topology = config.topology;
  if (config.channel == kChannelAdversarial) {
    // Ablation budget: n/2 deterministic flips — the same order of
    // magnitude of extra flips the default burst schedule injects, but
    // spent adversarially on the earliest (most influential) messages.
    scenario.adversarial_budget = config.n / 2;
  }
  if (scenario.schedule.enabled() || scenario.churn.enabled() ||
      !scenario.topology.complete() || scenario.adversarial_budget > 0) {
    scenario.probe_every = kDynamicProbeEvery;
  }
  return scenario;
}

/// Copies the engine counters into a baseline's outcome (the scenario
/// TrialFns get them through to_outcome). The pull/AAE dynamics bypass the
/// engine entirely and keep the zero defaults.
void copy_counters(const Metrics& metrics, TrialOutcome& outcome) {
  outcome.delivered = metrics.delivered;
  outcome.dropped = metrics.dropped;
  outcome.erased = metrics.erased;
  outcome.flipped = metrics.flipped;
}

/// Runs an Engine-style protocol on the substrate `config.engine` names:
/// the classic virtual-dispatch Engine, or the calling thread's persistent
/// BatchEngine with `protocol`/`channel` statically typed (devirtualized).
/// Both draw from the same per-agent streams of (seed, trial)'s key, so
/// the metrics are the same.
template <typename P, typename C>
Metrics run_on(const ScenarioConfig& config, P& protocol, C& channel,
               std::uint64_t seed, std::size_t trial, Round max_rounds) {
  const StreamKey key = trial_stream_key(seed, trial);
  if (config.engine == EngineMode::kBatch) {
    return BatchEngineLease()->run(config.n, protocol, channel, key,
                                   max_rounds);
  }
  Engine engine(config.n, channel, key);
  return engine.run(protocol, max_rounds);
}

void register_builtin(ScenarioRegistry& registry) {
  const std::vector<std::string> bsc = {std::string(kChannelBsc)};
  const std::vector<std::string> bsc_or_hetero = {
      std::string(kChannelBsc), std::string(kChannelHeterogeneous)};

  // Marks which environment overrides a scenario's factory actually plumbs
  // through (resolve() rejects the rest). The breathe scenarios honor
  // both; desync honors schedules only (its protocol has its own wake
  // semantics, so churn is deliberately not offered); boost and the
  // baseline dynamics honor neither.
  const auto env = [](ScenarioInfo info, bool schedule, bool churn) {
    info.supports_schedule = schedule;
    info.supports_churn = churn;
    return info;
  };

  // Marks a scenario the mean-field surrogate engine can model: the
  // breathe families under rate-modeled environments. NOT the adversarial
  // ablation (stateful channel), the desync entries (per-agent clocks),
  // or the baseline dynamics (their factories never dispatch on engine
  // mode in the first place).
  const auto sur = [](ScenarioInfo info) {
    info.supports_surrogate = true;
    return info;
  };

  // Marks a scenario whose factory plumbs a non-complete interaction graph
  // through to the engines (the breathe families — broadcast / majority /
  // boost; the desync protocols and baseline dynamics stay complete-only).
  // `spec`, when given, becomes the entry's default topology
  // (TopologySpec::parse grammar).
  const auto topo = [](ScenarioInfo info, const char* spec = nullptr) {
    info.supports_topology = true;
    if (spec != nullptr) info.default_topology = TopologySpec::parse(spec);
    return info;
  };

  registry.add(
      topo(sur(env({"broadcast", "Section 2 noisy broadcast: the two-stage breathe protocol",
       "broadcast", 1024, 0.2, bsc_or_hetero}, true, true))),
      [](const ScenarioConfig& config) {
        return broadcast_trial_fn(broadcast_from(config));
      });

  registry.add(
      topo(sur(env({"broadcast_small",
       "CI-sized broadcast (seconds per trial even in Debug)", "broadcast",
       256, 0.3, bsc_or_hetero}, true, true))),
      [](const ScenarioConfig& config) {
        return broadcast_trial_fn(broadcast_from(config));
      });

  registry.add(
      topo(sur(env({"broadcast_large", "Broadcast at the sizes the scaling benches use",
       "broadcast", 8192, 0.2, bsc_or_hetero}, true, true))),
      [](const ScenarioConfig& config) {
        return broadcast_trial_fn(broadcast_from(config));
      });

  registry.add(
      topo(sur(env({"broadcast_stage1",
       "Stage I in isolation; success = every agent activated", "broadcast",
       1024, 0.2, bsc_or_hetero}, true, true))),
      [](const ScenarioConfig& config) {
        BroadcastScenario scenario = broadcast_from(config);
        scenario.stage1_only = true;
        return broadcast_trial_fn(scenario);
      });

  registry.add(
      topo(sur(env({"broadcast_variant_rules",
       "Remarks 2.1/2.10 rule variants: first-message pick, prefix subset",
       "broadcast", 1024, 0.2, bsc_or_hetero}, true, true))),
      [](const ScenarioConfig& config) {
        BroadcastScenario scenario = broadcast_from(config);
        scenario.stage1_pick = Stage1Pick::kFirstMessage;
        scenario.stage2_subset = Stage2Subset::kPrefixSubset;
        return broadcast_trial_fn(scenario);
      });

  // --- dynamic-environment scenarios (core/environment.hpp) -------------
  // All of them obey the determinism contract: the schedule lottery and
  // the churn events come from counter-keyed streams, so every entry is
  // bit-identical across engines, threads, and shards (the adversarial
  // ablation pins the reference Engine for its order-dependent channel).

  {
    // Whole-run ramp from comfortable noise (eps 0.35) down through and
    // past the calibrated advantage (0.2) to eps 0.1: the schedule is
    // sized for more reliability than the tail delivers.
    EnvironmentSchedule ramp;
    ramp.segments.push_back(EpsSegment{0, 0, 0.35, 0.1});
    registry.add(
        topo(sur(env({"broadcast_eps_ramp",
         "Broadcast under a whole-run eps ramp 0.35 -> 0.1 (ends below the "
         "calibrated advantage)",
         "broadcast", 1024, 0.2, bsc, ramp}, true, true))),
        [](const ScenarioConfig& config) {
          return broadcast_trial_fn(broadcast_from(config));
        });
  }

  {
    // Correlated noise bursts: ~8% of 16-round windows collapse to
    // eps 0.02 (near-coin-flip noise) for the whole window at once —
    // correlated across messages, which the per-message BSC analysis does
    // not cover.
    EnvironmentSchedule burst;
    burst.burst_prob = 0.08;
    burst.burst_len = 16;
    burst.burst_eps = 0.02;
    registry.add(
        topo(sur(env({"broadcast_burst",
         "Broadcast with correlated noise bursts (8% of 16-round windows "
         "at eps 0.02)",
         "broadcast", 1024, 0.2, bsc, burst}, true, true))),
        [](const ScenarioConfig& config) {
          return broadcast_trial_fn(broadcast_from(config));
        });

    registry.add(
        env({"desync_burst",
         "Desync broadcast (skew D = 8) under the same correlated noise "
         "bursts",
         "desync", 1024, 0.2, bsc, burst}, true, false),
        [](const ScenarioConfig& config) {
          DesyncScenario scenario;
          scenario.n = config.n;
          scenario.eps = config.eps;
          scenario.max_skew = 8;
          scenario.engine = config.engine;
          scenario.shards = config.shards;
          scenario.schedule = config.schedule;
          return desync_trial_fn(scenario);
        });
  }

  {
    // Steady-state churn: ~4.8% of agents asleep at any time (sleep 0.005
    // / wake 0.1 per round), exercising the join/sleep/wake merge path of
    // both engines.
    ChurnSpec churn;
    churn.sleep_prob = 0.005;
    churn.wake_prob = 0.1;
    registry.add(
        topo(sur(env({"broadcast_churn",
         "Broadcast with agent churn (sleep 0.005 / wake 0.1 per round)",
         "broadcast", 1024, 0.2, bsc, EnvironmentSchedule{}, churn}, true, true))),
        [](const ScenarioConfig& config) {
          return broadcast_trial_fn(broadcast_from(config));
        });

    // Majority additionally starts with a quarter of the population not
    // yet joined — late joiners adopt opinions through Stage I as they
    // wake.
    ChurnSpec join_churn = churn;
    join_churn.start_asleep = 0.25;
    registry.add(
        topo(sur(env({"majority_churn",
         "Majority-consensus with churn and 25% late joiners "
         "(start_asleep 0.25)",
         "majority", 1024, 0.2, bsc, EnvironmentSchedule{}, join_churn}, true, true))),
        [](const ScenarioConfig& config) {
          MajorityScenario scenario;
          scenario.n = config.n;
          scenario.eps = config.eps;
          scenario.initial_set = std::max<std::size_t>(64, config.n / 16);
          scenario.majority_bias = 0.25;
          scenario.engine = config.engine;
          scenario.shards = config.shards;
          scenario.schedule = config.schedule;
          scenario.churn = config.churn;
          scenario.topology = config.topology;
          scenario.probe_every = kDynamicProbeEvery;
          return majority_trial_fn(scenario);
        });
  }

  registry.add(
      env({"broadcast_adversarial",
       "Ablation vs broadcast_burst: n/2 flips spent adversarially on the "
       "earliest messages (reference Engine only)",
       "broadcast", 1024, 0.2, {std::string(kChannelAdversarial)}}, false, true),
      [](const ScenarioConfig& config) {
        return broadcast_trial_fn(broadcast_from(config));
      });

  // --- sparse-topology scenarios (core/topology.hpp) --------------------
  // The paper's open empirical question: where do the broadcast/majority
  // noise thresholds sit when the interaction graph is NOT complete? Each
  // entry presets one family at n = 1024 (the grid factors as 32 x 32);
  // --topology overrides the family on any of the breathe entries above.
  // All run the same counter-keyed streams, so batch == classic == any
  // shard count, bit for bit.

  registry.add(
      topo(env({"broadcast_ring_k8",
       "Broadcast on the k = 8 ring: diameter n/8 dwarfs the O(log n) "
       "stage budgets (locality stress case)",
       "broadcast", 1024, 0.2, bsc}, true, true), "ring:8"),
      [](const ScenarioConfig& config) {
        return broadcast_trial_fn(broadcast_from(config));
      });

  registry.add(
      topo(env({"broadcast_grid_r2",
       "Broadcast on a 2-D torus, Chebyshev radius 2 (degree 24, diameter "
       "~sqrt(n)/4)",
       "broadcast", 1024, 0.2, bsc}, true, true), "grid:2"),
      [](const ScenarioConfig& config) {
        return broadcast_trial_fn(broadcast_from(config));
      });

  registry.add(
      topo(env({"broadcast_smallworld",
       "Broadcast on a Watts-Strogatz small world (k = 8, rewire p = 0.1): "
       "shortcuts restore O(log n) diameter",
       "broadcast", 1024, 0.2, bsc}, true, true), "smallworld:8:0.1"),
      [](const ScenarioConfig& config) {
        return broadcast_trial_fn(broadcast_from(config));
      });

  registry.add(
      topo(env({"majority_smallworld",
       "Majority-consensus on a Watts-Strogatz small world (k = 8, rewire "
       "p = 0.1)",
       "majority", 1024, 0.2, bsc}, true, true), "smallworld:8:0.1"),
      [](const ScenarioConfig& config) {
        MajorityScenario scenario;
        scenario.n = config.n;
        scenario.eps = config.eps;
        scenario.initial_set = std::max<std::size_t>(64, config.n / 16);
        scenario.majority_bias = 0.25;
        scenario.engine = config.engine;
        scenario.shards = config.shards;
        scenario.schedule = config.schedule;
        scenario.churn = config.churn;
        scenario.topology = config.topology;
        scenario.probe_every = kDynamicProbeEvery;
        return majority_trial_fn(scenario);
      });

  registry.add(
      topo(env({"broadcast_dynamic_rewire",
       "Broadcast on a per-round rewired k = 8 graph (p = 0.1 per edge per "
       "round): the graph itself churns",
       "broadcast", 1024, 0.2, bsc}, true, true), "dynamic:8:0.1"),
      [](const ScenarioConfig& config) {
        return broadcast_trial_fn(broadcast_from(config));
      });

  registry.add(
      topo(sur(env({"majority",
       "Corollary 2.18 majority-consensus: |A| = n/16, majority-bias 0.25",
       "majority", 1024, 0.2, bsc}, true, true))),
      [](const ScenarioConfig& config) {
        MajorityScenario scenario;
        scenario.n = config.n;
        scenario.eps = config.eps;
        scenario.initial_set = std::max<std::size_t>(64, config.n / 16);
        scenario.majority_bias = 0.25;
        scenario.engine = config.engine;
        scenario.shards = config.shards;
        scenario.schedule = config.schedule;
        scenario.churn = config.churn;
        scenario.topology = config.topology;
        if (scenario.schedule.enabled() || scenario.churn.enabled() ||
            !scenario.topology.complete()) {
          scenario.probe_every = kDynamicProbeEvery;
        }
        return majority_trial_fn(scenario);
      });

  registry.add(
      topo(sur({"boost",
       "Stage II in isolation (Lemma 2.14): bias 0.02 boosted to consensus",
       "boost", 4096, 0.25, bsc})),
      [](const ScenarioConfig& config) {
        BoostScenario scenario;
        scenario.n = config.n;
        scenario.eps = config.eps;
        scenario.engine = config.engine;
        scenario.shards = config.shards;
        scenario.topology = config.topology;
        return boost_trial_fn(scenario);
      });

  registry.add(
      env({"desync", "Section 3 broadcast without a global clock, skew D = 8",
       "desync", 1024, 0.2, bsc}, true, false),
      [](const ScenarioConfig& config) {
        DesyncScenario scenario;
        scenario.n = config.n;
        scenario.eps = config.eps;
        scenario.max_skew = 8;
        scenario.engine = config.engine;
        scenario.shards = config.shards;
        scenario.schedule = config.schedule;
        return desync_trial_fn(scenario);
      });

  registry.add(
      env({"desync_clock_sync",
       "Desync broadcast behind the Section 3.2 clock-sync pre-phase",
       "desync", 1024, 0.2, bsc}, true, false),
      [](const ScenarioConfig& config) {
        DesyncScenario scenario;
        scenario.n = config.n;
        scenario.eps = config.eps;
        scenario.use_clock_sync = true;
        scenario.engine = config.engine;
        scenario.shards = config.shards;
        scenario.schedule = config.schedule;
        return desync_trial_fn(scenario);
      });

  registry.add(
      {"baseline_silent",
       "Sec 1.6 silent-listening strawman: correct but Theta(n log n/eps^2)",
       "broadcast", 256, 0.3, bsc},
      [](const ScenarioConfig& config) {
        return TrialFn([config](std::uint64_t seed, std::size_t trial) {
          const double unit = theory::round_unit(config.n, config.eps);
          BinarySymmetricChannel channel(config.eps);
          SilentConfig silent;
          silent.samples_needed =
              next_odd(static_cast<std::uint64_t>(unit));
          silent.max_rounds = static_cast<Round>(
              64.0 * static_cast<double>(config.n) * unit);
          SilentListeningProtocol protocol(config.n, silent);
          const Metrics metrics = run_on(config, protocol, channel, seed,
                                         trial, silent.max_rounds);
          TrialOutcome outcome;
          outcome.correct_fraction =
              protocol.population().correct_fraction(Opinion::kOne);
          outcome.success =
              protocol.all_decided() && outcome.correct_fraction == 1.0;
          outcome.rounds = static_cast<double>(metrics.rounds);
          outcome.messages = static_cast<double>(metrics.messages_sent);
          copy_counters(metrics, outcome);
          return outcome;
        });
      });

  registry.add(
      {"baseline_forward",
       "Sec 1.6 forward-now strawman: fast, bias decays (2 eps)^depth",
       "broadcast", 1024, 0.2, bsc},
      [](const ScenarioConfig& config) {
        return TrialFn([config](std::uint64_t seed, std::size_t trial) {
          BinarySymmetricChannel channel(config.eps);
          ForwardConfig forward;
          forward.initial = {Seed{0, Opinion::kOne}};
          forward.stop_when_all_informed = true;
          ForwardGossipProtocol protocol(config.n, forward);
          const Metrics metrics = run_on(config, protocol, channel, seed,
                                         trial, Round{1} << 20);
          TrialOutcome outcome;
          outcome.success = protocol.population().unanimous(Opinion::kOne);
          outcome.correct_fraction =
              protocol.population().correct_fraction(Opinion::kOne);
          outcome.rounds = static_cast<double>(metrics.rounds);
          outcome.messages = static_cast<double>(metrics.messages_sent);
          copy_counters(metrics, outcome);
          return outcome;
        });
      });

  registry.add(
      {"baseline_voter",
       "Noisy voter with a zealot source: hovers near 50/50 (refs 49, 50)",
       "broadcast", 1024, 0.2, bsc},
      [](const ScenarioConfig& config) {
        return TrialFn([config](std::uint64_t seed, std::size_t trial) {
          const double unit = theory::round_unit(config.n, config.eps);
          BinarySymmetricChannel channel(config.eps);
          VoterConfig voter;
          voter.zealots = {Seed{0, Opinion::kOne}};
          voter.duration = static_cast<Round>(16.0 * unit);
          NoisyVoterProtocol protocol(config.n, voter);
          const Metrics metrics = run_on(config, protocol, channel, seed,
                                         trial, voter.duration);
          TrialOutcome outcome;
          outcome.success = protocol.population().unanimous(Opinion::kOne);
          outcome.correct_fraction =
              protocol.population().correct_fraction(Opinion::kOne);
          outcome.rounds = static_cast<double>(metrics.rounds);
          outcome.messages = static_cast<double>(metrics.messages_sent);
          copy_counters(metrics, outcome);
          return outcome;
        });
      });

  const auto pull_factory = [](PullRule rule, double samples_per_round) {
    return [rule, samples_per_round](const ScenarioConfig& config) {
      return TrialFn([config, rule, samples_per_round](std::uint64_t seed,
                                                       std::size_t trial) {
        const double unit = theory::round_unit(config.n, config.eps);
        BinarySymmetricChannel channel(config.eps);
        auto rng = baseline_rng(seed, trial, 0);
        PullMajorityConfig pull;
        pull.rule = rule;
        pull.initial_correct_fraction = 0.6;
        pull.max_rounds = static_cast<Round>(8.0 * unit);
        PullMajorityDynamics dynamics(config.n, pull, channel, rng);
        const PullMajorityResult result = dynamics.run();
        TrialOutcome outcome;
        outcome.success = result.consensus && result.correct;
        outcome.correct_fraction = result.final_correct_fraction;
        outcome.rounds = static_cast<double>(result.rounds);
        outcome.messages = static_cast<double>(result.rounds) *
                           static_cast<double>(config.n) * samples_per_round;
        return outcome;
      });
    };
  };

  registry.add(
      {"baseline_two_choices",
       "Two-choices pull dynamics (ref 22) run through the noisy channel",
       "majority", 1024, 0.2, bsc},
      pull_factory(PullRule::kTwoPlusOwn, 2.0));

  registry.add(
      {"baseline_three_majority",
       "3-majority pull dynamics (ref 11) run through the noisy channel",
       "majority", 1024, 0.2, bsc},
      pull_factory(PullRule::kThreeSamples, 3.0));

  registry.add(
      {"baseline_aae",
       "Angluin-Aspnes-Eisenstat 3-state dynamics; noisy misreads break it",
       "majority", 1024, 0.2, bsc},
      [](const ScenarioConfig& config) {
        return TrialFn([config](std::uint64_t seed, std::size_t trial) {
          const double unit = theory::round_unit(config.n, config.eps);
          auto rng = baseline_rng(seed, trial, 0);
          AAEConfig aae;
          aae.initial_correct = config.n * 3 / 10;
          aae.initial_wrong = config.n / 10;
          aae.eps = config.eps;
          aae.max_rounds = static_cast<Round>(8.0 * unit);
          ThreeStateAAE dynamics(config.n, aae, rng);
          const AAEResult result = dynamics.run();
          TrialOutcome outcome;
          outcome.success = result.consensus && result.correct;
          outcome.correct_fraction = result.final_correct_fraction;
          outcome.rounds = static_cast<double>(result.rounds);
          outcome.messages = static_cast<double>(result.rounds) *
                             static_cast<double>(config.n);
          return outcome;
        });
      });
}

}  // namespace

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry();
    register_builtin(*r);
    return r;
  }();
  return *registry;
}

void ScenarioRegistry::add(ScenarioInfo info, ScenarioFactory factory) {
  if (info.name.empty()) {
    throw std::invalid_argument("ScenarioRegistry::add: empty name");
  }
  if (info.channels.empty()) {
    throw std::invalid_argument("ScenarioRegistry::add: '" + info.name +
                                "' registers no channels");
  }
  if (info.default_n == 0) {
    throw std::invalid_argument("ScenarioRegistry::add: '" + info.name +
                                "' has default_n == 0");
  }
  if (!factory) {
    throw std::invalid_argument("ScenarioRegistry::add: '" + info.name +
                                "' has no factory");
  }
  try {
    info.default_schedule.validate();
    info.default_churn.validate();
    info.default_topology.validate();
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("ScenarioRegistry::add: '" + info.name +
                                "': " + e.what());
  }
  if ((info.default_schedule.enabled() && !info.supports_schedule) ||
      (info.default_churn.enabled() && !info.supports_churn) ||
      (!info.default_topology.complete() && !info.supports_topology)) {
    throw std::invalid_argument("ScenarioRegistry::add: '" + info.name +
                                "' registers a dynamic default it does not "
                                "declare support for");
  }
  if (contains(info.name)) {
    throw std::invalid_argument("ScenarioRegistry::add: duplicate '" +
                                info.name + "'");
  }
  entries_.push_back(Entry{std::move(info), std::move(factory)});
}

std::vector<const ScenarioInfo*> ScenarioRegistry::list() const {
  std::vector<const ScenarioInfo*> infos;
  infos.reserve(entries_.size());
  for (const Entry& entry : entries_) infos.push_back(&entry.info);
  std::sort(infos.begin(), infos.end(),
            [](const ScenarioInfo* a, const ScenarioInfo* b) {
              return a->name < b->name;
            });
  return infos;
}

const ScenarioInfo* ScenarioRegistry::find(std::string_view name) const {
  for (const Entry& entry : entries_) {
    if (entry.info.name == name) return &entry.info;
  }
  return nullptr;
}

bool ScenarioRegistry::contains(std::string_view name) const {
  return find(name) != nullptr;
}

const ScenarioRegistry::Entry& ScenarioRegistry::entry_or_throw(
    std::string_view name) const {
  for (const Entry& entry : entries_) {
    if (entry.info.name == name) return entry;
  }
  throw std::invalid_argument("unknown scenario '" + std::string(name) +
                              "' (see flipsim --list)");
}

ScenarioConfig ScenarioRegistry::resolve(std::string_view name,
                                         const ScenarioOverrides& o) const {
  const Entry& entry = entry_or_throw(name);
  ScenarioConfig config;
  config.n = o.n.value_or(entry.info.default_n);
  config.eps = o.eps.value_or(entry.info.default_eps);
  config.channel = o.channel.value_or(entry.info.channels.front());
  config.engine = o.engine.value_or(EngineMode::kBatch);
  config.shards = o.shards.value_or(1);
  if (config.engine == EngineMode::kSurrogate &&
      !entry.info.supports_surrogate) {
    throw std::invalid_argument(
        "scenario '" + entry.info.name +
        "' has no mean-field surrogate model (the surrogate engine covers "
        "the broadcast/majority/boost families; adversarial, desync and "
        "baseline entries need --engine batch or --engine classic)");
  }
  // An override the factory would silently ignore is worse than an error:
  // the run would execute the static environment while reporting the
  // override in its output params.
  if (o.schedule && o.schedule->enabled() && !entry.info.supports_schedule) {
    throw std::invalid_argument("scenario '" + entry.info.name +
                                "' does not support an eps schedule");
  }
  if (o.churn && o.churn->enabled() && !entry.info.supports_churn) {
    throw std::invalid_argument("scenario '" + entry.info.name +
                                "' does not support agent churn");
  }
  if (o.topology && !o.topology->complete() &&
      !entry.info.supports_topology) {
    throw std::invalid_argument(
        "scenario '" + entry.info.name +
        "' does not support a topology override (the breathe families — "
        "broadcast/majority/boost entries — do)");
  }
  config.schedule = o.schedule.value_or(entry.info.default_schedule);
  config.churn = o.churn.value_or(entry.info.default_churn);
  config.topology = o.topology.value_or(entry.info.default_topology);
  if (config.engine == EngineMode::kSurrogate &&
      !config.topology.complete()) {
    throw std::invalid_argument(
        "scenario '" + entry.info.name +
        "': the mean-field surrogate engine models the complete interaction "
        "graph only, not topology '" + config.topology.describe() +
        "'; use --engine batch or --engine classic");
  }
  try {
    config.schedule.validate();
    config.churn.validate();
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("scenario '" + entry.info.name +
                                "': " + e.what());
  }
  if (config.shards == 0 || config.shards > kMaxShards) {
    throw std::invalid_argument("scenario '" + entry.info.name +
                                "': shards must be in 1.." +
                                std::to_string(kMaxShards));
  }
  if (config.n < 2) {
    throw std::invalid_argument("scenario '" + entry.info.name +
                                "': n must be >= 2");
  }
  // n-dependent topology validation (k <= n - 2, grid factorization):
  // resolve here so a bad (topology, n) pair fails before any trial runs,
  // with the scenario named.
  try {
    (void)ResolvedTopology::resolve(config.topology, config.n);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("scenario '" + entry.info.name +
                                "': " + e.what());
  }
  if (!(config.eps > 0.0) || config.eps > 0.5) {
    throw std::invalid_argument("scenario '" + entry.info.name +
                                "': eps must be in (0, 0.5]");
  }
  if (std::find(entry.info.channels.begin(), entry.info.channels.end(),
                config.channel) == entry.info.channels.end()) {
    throw std::invalid_argument("scenario '" + entry.info.name +
                                "' does not support channel '" +
                                config.channel + "'");
  }
  return config;
}

TrialFn ScenarioRegistry::make(std::string_view name,
                               const ScenarioOverrides& o) const {
  return make(name, resolve(name, o));
}

TrialFn ScenarioRegistry::make(std::string_view name,
                               const ScenarioConfig& config) const {
  return entry_or_throw(name).factory(config);
}

}  // namespace flip
