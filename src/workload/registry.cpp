#include "workload/registry.hpp"

#include <algorithm>
#include <stdexcept>

#include "baselines/aae.hpp"
#include "baselines/forward.hpp"
#include "baselines/pull_majority.hpp"
#include "baselines/silent.hpp"
#include "baselines/voter.hpp"
#include "core/theory.hpp"
#include "net/channel.hpp"
#include "sim/batch_engine.hpp"
#include "sim/engine.hpp"
#include "util/math.hpp"
#include "workload/scenarios.hpp"

namespace flip {

namespace {

// Baseline trial fns derive their rng the same way scenarios.cpp does:
// engine-level draws from the trial's counter-stream root key, any
// sequential protocol-internal stream from disjoint per-trial Xoshiro
// lanes. Every trial of a sweep is independent and replayable from
// (master seed, trial).
constexpr std::uint64_t kStreamsPerTrial = 4;

Xoshiro256 baseline_rng(std::uint64_t seed, std::size_t trial,
                        std::uint64_t lane) {
  return make_stream(seed, kStreamsPerTrial * trial + lane);
}

BroadcastScenario broadcast_from(const ScenarioConfig& config) {
  BroadcastScenario scenario;
  scenario.n = config.n;
  scenario.eps = config.eps;
  scenario.heterogeneous_noise = config.channel == kChannelHeterogeneous;
  scenario.engine = config.engine;
  scenario.shards = config.shards;
  return scenario;
}

/// Runs an Engine-style protocol on the substrate `config.engine` names:
/// the classic virtual-dispatch Engine, or the calling thread's persistent
/// BatchEngine with `protocol`/`channel` statically typed (devirtualized).
/// Both draw from the same per-agent streams of (seed, trial)'s key, so
/// the metrics are the same.
template <typename P, typename C>
Metrics run_on(const ScenarioConfig& config, P& protocol, C& channel,
               std::uint64_t seed, std::size_t trial, Round max_rounds) {
  const StreamKey key = trial_stream_key(seed, trial);
  if (config.engine == EngineMode::kBatch) {
    return BatchEngineLease()->run(config.n, protocol, channel, key,
                                   max_rounds);
  }
  Engine engine(config.n, channel, key);
  return engine.run(protocol, max_rounds);
}

void register_builtin(ScenarioRegistry& registry) {
  const std::vector<std::string> bsc = {std::string(kChannelBsc)};
  const std::vector<std::string> bsc_or_hetero = {
      std::string(kChannelBsc), std::string(kChannelHeterogeneous)};

  registry.add(
      {"broadcast", "Section 2 noisy broadcast: the two-stage breathe protocol",
       "broadcast", 1024, 0.2, bsc_or_hetero},
      [](const ScenarioConfig& config) {
        return broadcast_trial_fn(broadcast_from(config));
      });

  registry.add(
      {"broadcast_small",
       "CI-sized broadcast (seconds per trial even in Debug)", "broadcast",
       256, 0.3, bsc_or_hetero},
      [](const ScenarioConfig& config) {
        return broadcast_trial_fn(broadcast_from(config));
      });

  registry.add(
      {"broadcast_large", "Broadcast at the sizes the scaling benches use",
       "broadcast", 8192, 0.2, bsc_or_hetero},
      [](const ScenarioConfig& config) {
        return broadcast_trial_fn(broadcast_from(config));
      });

  registry.add(
      {"broadcast_stage1",
       "Stage I in isolation; success = every agent activated", "broadcast",
       1024, 0.2, bsc_or_hetero},
      [](const ScenarioConfig& config) {
        BroadcastScenario scenario = broadcast_from(config);
        scenario.stage1_only = true;
        return broadcast_trial_fn(scenario);
      });

  registry.add(
      {"broadcast_variant_rules",
       "Remarks 2.1/2.10 rule variants: first-message pick, prefix subset",
       "broadcast", 1024, 0.2, bsc_or_hetero},
      [](const ScenarioConfig& config) {
        BroadcastScenario scenario = broadcast_from(config);
        scenario.stage1_pick = Stage1Pick::kFirstMessage;
        scenario.stage2_subset = Stage2Subset::kPrefixSubset;
        return broadcast_trial_fn(scenario);
      });

  registry.add(
      {"majority",
       "Corollary 2.18 majority-consensus: |A| = n/16, majority-bias 0.25",
       "majority", 1024, 0.2, bsc},
      [](const ScenarioConfig& config) {
        MajorityScenario scenario;
        scenario.n = config.n;
        scenario.eps = config.eps;
        scenario.initial_set = std::max<std::size_t>(64, config.n / 16);
        scenario.majority_bias = 0.25;
        scenario.engine = config.engine;
        scenario.shards = config.shards;
        return majority_trial_fn(scenario);
      });

  registry.add(
      {"boost",
       "Stage II in isolation (Lemma 2.14): bias 0.02 boosted to consensus",
       "boost", 4096, 0.25, bsc},
      [](const ScenarioConfig& config) {
        BoostScenario scenario;
        scenario.n = config.n;
        scenario.eps = config.eps;
        scenario.engine = config.engine;
        scenario.shards = config.shards;
        return boost_trial_fn(scenario);
      });

  registry.add(
      {"desync", "Section 3 broadcast without a global clock, skew D = 8",
       "desync", 1024, 0.2, bsc},
      [](const ScenarioConfig& config) {
        DesyncScenario scenario;
        scenario.n = config.n;
        scenario.eps = config.eps;
        scenario.max_skew = 8;
        scenario.engine = config.engine;
        scenario.shards = config.shards;
        return desync_trial_fn(scenario);
      });

  registry.add(
      {"desync_clock_sync",
       "Desync broadcast behind the Section 3.2 clock-sync pre-phase",
       "desync", 1024, 0.2, bsc},
      [](const ScenarioConfig& config) {
        DesyncScenario scenario;
        scenario.n = config.n;
        scenario.eps = config.eps;
        scenario.use_clock_sync = true;
        scenario.engine = config.engine;
        scenario.shards = config.shards;
        return desync_trial_fn(scenario);
      });

  registry.add(
      {"baseline_silent",
       "Sec 1.6 silent-listening strawman: correct but Theta(n log n/eps^2)",
       "broadcast", 256, 0.3, bsc},
      [](const ScenarioConfig& config) {
        return TrialFn([config](std::uint64_t seed, std::size_t trial) {
          const double unit = theory::round_unit(config.n, config.eps);
          BinarySymmetricChannel channel(config.eps);
          SilentConfig silent;
          silent.samples_needed =
              next_odd(static_cast<std::uint64_t>(unit));
          silent.max_rounds = static_cast<Round>(
              64.0 * static_cast<double>(config.n) * unit);
          SilentListeningProtocol protocol(config.n, silent);
          const Metrics metrics = run_on(config, protocol, channel, seed,
                                         trial, silent.max_rounds);
          TrialOutcome outcome;
          outcome.correct_fraction =
              protocol.population().correct_fraction(Opinion::kOne);
          outcome.success =
              protocol.all_decided() && outcome.correct_fraction == 1.0;
          outcome.rounds = static_cast<double>(metrics.rounds);
          outcome.messages = static_cast<double>(metrics.messages_sent);
          return outcome;
        });
      });

  registry.add(
      {"baseline_forward",
       "Sec 1.6 forward-now strawman: fast, bias decays (2 eps)^depth",
       "broadcast", 1024, 0.2, bsc},
      [](const ScenarioConfig& config) {
        return TrialFn([config](std::uint64_t seed, std::size_t trial) {
          BinarySymmetricChannel channel(config.eps);
          ForwardConfig forward;
          forward.initial = {Seed{0, Opinion::kOne}};
          forward.stop_when_all_informed = true;
          ForwardGossipProtocol protocol(config.n, forward);
          const Metrics metrics = run_on(config, protocol, channel, seed,
                                         trial, Round{1} << 20);
          TrialOutcome outcome;
          outcome.success = protocol.population().unanimous(Opinion::kOne);
          outcome.correct_fraction =
              protocol.population().correct_fraction(Opinion::kOne);
          outcome.rounds = static_cast<double>(metrics.rounds);
          outcome.messages = static_cast<double>(metrics.messages_sent);
          return outcome;
        });
      });

  registry.add(
      {"baseline_voter",
       "Noisy voter with a zealot source: hovers near 50/50 (refs 49, 50)",
       "broadcast", 1024, 0.2, bsc},
      [](const ScenarioConfig& config) {
        return TrialFn([config](std::uint64_t seed, std::size_t trial) {
          const double unit = theory::round_unit(config.n, config.eps);
          BinarySymmetricChannel channel(config.eps);
          VoterConfig voter;
          voter.zealots = {Seed{0, Opinion::kOne}};
          voter.duration = static_cast<Round>(16.0 * unit);
          NoisyVoterProtocol protocol(config.n, voter);
          const Metrics metrics = run_on(config, protocol, channel, seed,
                                         trial, voter.duration);
          TrialOutcome outcome;
          outcome.success = protocol.population().unanimous(Opinion::kOne);
          outcome.correct_fraction =
              protocol.population().correct_fraction(Opinion::kOne);
          outcome.rounds = static_cast<double>(metrics.rounds);
          outcome.messages = static_cast<double>(metrics.messages_sent);
          return outcome;
        });
      });

  const auto pull_factory = [](PullRule rule, double samples_per_round) {
    return [rule, samples_per_round](const ScenarioConfig& config) {
      return TrialFn([config, rule, samples_per_round](std::uint64_t seed,
                                                       std::size_t trial) {
        const double unit = theory::round_unit(config.n, config.eps);
        BinarySymmetricChannel channel(config.eps);
        auto rng = baseline_rng(seed, trial, 0);
        PullMajorityConfig pull;
        pull.rule = rule;
        pull.initial_correct_fraction = 0.6;
        pull.max_rounds = static_cast<Round>(8.0 * unit);
        PullMajorityDynamics dynamics(config.n, pull, channel, rng);
        const PullMajorityResult result = dynamics.run();
        TrialOutcome outcome;
        outcome.success = result.consensus && result.correct;
        outcome.correct_fraction = result.final_correct_fraction;
        outcome.rounds = static_cast<double>(result.rounds);
        outcome.messages = static_cast<double>(result.rounds) *
                           static_cast<double>(config.n) * samples_per_round;
        return outcome;
      });
    };
  };

  registry.add(
      {"baseline_two_choices",
       "Two-choices pull dynamics (ref 22) run through the noisy channel",
       "majority", 1024, 0.2, bsc},
      pull_factory(PullRule::kTwoPlusOwn, 2.0));

  registry.add(
      {"baseline_three_majority",
       "3-majority pull dynamics (ref 11) run through the noisy channel",
       "majority", 1024, 0.2, bsc},
      pull_factory(PullRule::kThreeSamples, 3.0));

  registry.add(
      {"baseline_aae",
       "Angluin-Aspnes-Eisenstat 3-state dynamics; noisy misreads break it",
       "majority", 1024, 0.2, bsc},
      [](const ScenarioConfig& config) {
        return TrialFn([config](std::uint64_t seed, std::size_t trial) {
          const double unit = theory::round_unit(config.n, config.eps);
          auto rng = baseline_rng(seed, trial, 0);
          AAEConfig aae;
          aae.initial_correct = config.n * 3 / 10;
          aae.initial_wrong = config.n / 10;
          aae.eps = config.eps;
          aae.max_rounds = static_cast<Round>(8.0 * unit);
          ThreeStateAAE dynamics(config.n, aae, rng);
          const AAEResult result = dynamics.run();
          TrialOutcome outcome;
          outcome.success = result.consensus && result.correct;
          outcome.correct_fraction = result.final_correct_fraction;
          outcome.rounds = static_cast<double>(result.rounds);
          outcome.messages = static_cast<double>(result.rounds) *
                             static_cast<double>(config.n);
          return outcome;
        });
      });
}

}  // namespace

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry* registry = [] {
    auto* r = new ScenarioRegistry();
    register_builtin(*r);
    return r;
  }();
  return *registry;
}

void ScenarioRegistry::add(ScenarioInfo info, ScenarioFactory factory) {
  if (info.name.empty()) {
    throw std::invalid_argument("ScenarioRegistry::add: empty name");
  }
  if (info.channels.empty()) {
    throw std::invalid_argument("ScenarioRegistry::add: '" + info.name +
                                "' registers no channels");
  }
  if (info.default_n == 0) {
    throw std::invalid_argument("ScenarioRegistry::add: '" + info.name +
                                "' has default_n == 0");
  }
  if (!factory) {
    throw std::invalid_argument("ScenarioRegistry::add: '" + info.name +
                                "' has no factory");
  }
  if (contains(info.name)) {
    throw std::invalid_argument("ScenarioRegistry::add: duplicate '" +
                                info.name + "'");
  }
  entries_.push_back(Entry{std::move(info), std::move(factory)});
}

std::vector<const ScenarioInfo*> ScenarioRegistry::list() const {
  std::vector<const ScenarioInfo*> infos;
  infos.reserve(entries_.size());
  for (const Entry& entry : entries_) infos.push_back(&entry.info);
  std::sort(infos.begin(), infos.end(),
            [](const ScenarioInfo* a, const ScenarioInfo* b) {
              return a->name < b->name;
            });
  return infos;
}

const ScenarioInfo* ScenarioRegistry::find(std::string_view name) const {
  for (const Entry& entry : entries_) {
    if (entry.info.name == name) return &entry.info;
  }
  return nullptr;
}

bool ScenarioRegistry::contains(std::string_view name) const {
  return find(name) != nullptr;
}

const ScenarioRegistry::Entry& ScenarioRegistry::entry_or_throw(
    std::string_view name) const {
  for (const Entry& entry : entries_) {
    if (entry.info.name == name) return entry;
  }
  throw std::invalid_argument("unknown scenario '" + std::string(name) +
                              "' (see flipsim --list)");
}

ScenarioConfig ScenarioRegistry::resolve(std::string_view name,
                                         const ScenarioOverrides& o) const {
  const Entry& entry = entry_or_throw(name);
  ScenarioConfig config;
  config.n = o.n.value_or(entry.info.default_n);
  config.eps = o.eps.value_or(entry.info.default_eps);
  config.channel = o.channel.value_or(entry.info.channels.front());
  config.engine = o.engine.value_or(EngineMode::kBatch);
  config.shards = o.shards.value_or(1);
  if (config.shards == 0 || config.shards > kMaxShards) {
    throw std::invalid_argument("scenario '" + entry.info.name +
                                "': shards must be in 1.." +
                                std::to_string(kMaxShards));
  }
  if (config.n < 2) {
    throw std::invalid_argument("scenario '" + entry.info.name +
                                "': n must be >= 2");
  }
  if (!(config.eps > 0.0) || config.eps > 0.5) {
    throw std::invalid_argument("scenario '" + entry.info.name +
                                "': eps must be in (0, 0.5]");
  }
  if (std::find(entry.info.channels.begin(), entry.info.channels.end(),
                config.channel) == entry.info.channels.end()) {
    throw std::invalid_argument("scenario '" + entry.info.name +
                                "' does not support channel '" +
                                config.channel + "'");
  }
  return config;
}

TrialFn ScenarioRegistry::make(std::string_view name,
                               const ScenarioOverrides& o) const {
  return make(name, resolve(name, o));
}

TrialFn ScenarioRegistry::make(std::string_view name,
                               const ScenarioConfig& config) const {
  return entry_or_throw(name).factory(config);
}

}  // namespace flip
