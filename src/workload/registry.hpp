#pragma once
// Enumerable scenario registry: every workload the repo can run, keyed by a
// stable name, with metadata (problem, defaults, supported channels) and a
// factory that builds the Monte-Carlo TrialFn for a resolved parameter
// point. tools/flipsim introspects this to run sweeps; tests walk it so a
// scenario cannot be registered without being executable.
//
// This replaces "pick the right run_* function and hand-wire its struct"
// with a uniform (name, n, eps, channel) interface. The scenario structs in
// scenarios.hpp remain the typed API for code that needs every knob; the
// registry exposes the grid dimensions sweeps actually vary.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/environment.hpp"
#include "core/topology.hpp"
#include "sim/engine.hpp"
#include "sim/trial.hpp"

namespace flip {

/// Static description of one registered scenario.
struct ScenarioInfo {
  std::string name;     ///< stable registry key, e.g. "broadcast_small"
  std::string summary;  ///< one line for `flipsim --list`
  std::string problem;  ///< "broadcast" | "majority" | "boost" | ...
  std::size_t default_n = 0;
  double default_eps = 0.0;
  /// Channel names this scenario accepts; [0] is the default.
  std::vector<std::string> channels;
  /// Dynamic-environment defaults: the static environment for the classic
  /// scenarios, a preset schedule/churn for the *_ramp/*_burst/*_churn
  /// entries. Overridable per sweep via --schedule / --churn.
  EnvironmentSchedule default_schedule{};
  ChurnSpec default_churn{};
  /// Interaction-graph default (core/topology.hpp): complete for the
  /// classic scenarios, a preset sparse family for the topology entries.
  /// Overridable per sweep via --topology on supporting scenarios.
  TopologySpec default_topology{};
  /// Whether this scenario's factory honors a schedule / churn override.
  /// resolve() REJECTS an enabled override on a scenario that does not —
  /// silently running the static environment while reporting the override
  /// in the output params would mislabel the data.
  bool supports_schedule = false;
  bool supports_churn = false;
  /// Whether the factory honors a non-complete topology override (the
  /// breathe families — broadcast / majority / boost). Same rejection rule
  /// as the schedule/churn flags.
  bool supports_topology = false;
  /// Whether EngineMode::kSurrogate can model this scenario (the mean-field
  /// engine of sim/surrogate_engine.hpp covers the breathe families —
  /// broadcast / majority / boost — under BSC, heterogeneous, schedule and
  /// churn environments; the adversarial ablation, the desync scenarios,
  /// and the baseline dynamics have no per-round rate model). resolve()
  /// rejects `--engine surrogate` on unsupported entries.
  bool supports_surrogate = false;
};

/// One resolved grid point the factory builds a TrialFn for.
struct ScenarioConfig {
  std::size_t n = 0;
  double eps = 0.0;
  std::string channel;
  /// Substrate the factory should run on. Results are identical either way
  /// (both draw from the same counter-keyed per-agent streams); kClassic
  /// exists for A/B timing and the equivalence tests.
  EngineMode engine = EngineMode::kBatch;
  /// Intra-trial shard count (batch breathe scenarios parallelize each
  /// round over this many partitions; everything else ignores it). Results
  /// are bit-identical for every value. resolve() validates 1..kMaxShards.
  std::size_t shards = 1;
  /// Resolved dynamic environment: the override when one was given, the
  /// scenario's registered default otherwise. Validated by resolve().
  EnvironmentSchedule schedule{};
  ChurnSpec churn{};
  /// Resolved interaction graph: the override when one was given, the
  /// scenario's registered default otherwise. resolve() validates it
  /// against n (and rejects non-complete graphs on the surrogate engine,
  /// which has no sparse-graph rate model).
  TopologySpec topology{};
};

/// Optional overrides for the registry's defaults (empty = default).
struct ScenarioOverrides {
  std::optional<std::size_t> n;
  std::optional<double> eps;
  std::optional<std::string> channel;
  std::optional<EngineMode> engine;
  std::optional<std::size_t> shards;
  std::optional<EnvironmentSchedule> schedule;
  std::optional<ChurnSpec> churn;
  std::optional<TopologySpec> topology;
};

/// Upper bound resolve() accepts for ScenarioConfig::shards: beyond this a
/// shard is sub-cacheline work and the merge overhead can only lose.
inline constexpr std::size_t kMaxShards = 256;

using ScenarioFactory = std::function<TrialFn(const ScenarioConfig&)>;

class ScenarioRegistry {
 public:
  /// The process-wide registry, populated with every built-in scenario on
  /// first use. Thread-safe construction (magic static); `add` afterwards
  /// is not synchronized — register from one thread (tests, plugins' main).
  static ScenarioRegistry& instance();

  /// Registers a scenario. Throws std::invalid_argument on a duplicate
  /// name, an empty channel list, or a zero default_n.
  void add(ScenarioInfo info, ScenarioFactory factory);

  /// All registered scenarios, sorted by name (stable output for --list).
  [[nodiscard]] std::vector<const ScenarioInfo*> list() const;

  [[nodiscard]] const ScenarioInfo* find(std::string_view name) const;
  [[nodiscard]] bool contains(std::string_view name) const;
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Resolves overrides against the scenario's defaults. Throws
  /// std::invalid_argument for an unknown scenario or unsupported channel.
  [[nodiscard]] ScenarioConfig resolve(std::string_view name,
                                       const ScenarioOverrides& o) const;

  /// resolve() + factory: the TrialFn for one grid point.
  [[nodiscard]] TrialFn make(std::string_view name,
                             const ScenarioOverrides& o) const;
  [[nodiscard]] TrialFn make(std::string_view name,
                             const ScenarioConfig& config) const;

 private:
  struct Entry {
    ScenarioInfo info;
    ScenarioFactory factory;
  };
  const Entry& entry_or_throw(std::string_view name) const;

  std::vector<Entry> entries_;  // few dozen entries: linear scan is fine
};

/// Channel names understood by scenarios that take a channel override.
inline constexpr std::string_view kChannelBsc = "bsc";
inline constexpr std::string_view kChannelHeterogeneous = "heterogeneous";
/// The budget-bounded adversary (ablation entries only): order-dependent
/// by construction, so scenarios using it always run the reference Engine.
inline constexpr std::string_view kChannelAdversarial = "adversarial";

}  // namespace flip
