#include "workload/scenarios.hpp"

#include <cmath>
#include <memory>
#include <optional>
#include <stdexcept>

#include "net/channel.hpp"
#include "sim/batch_engine.hpp"
#include "sim/engine.hpp"
#include "sim/series.hpp"
#include "sim/surrogate_engine.hpp"
#include "sim/trial_arena.hpp"

namespace flip {

namespace {

// Engine-level and BreatheProtocol randomness derives from the trial's
// counter-stream root key (purposes keep the lanes apart; see
// util/rng.hpp). The sequential Xoshiro streams below remain for the
// desync protocol's internal draws and for scenario setup (wake offsets):
// they are consumed in a fixed order that both substrates share. Keyed by
// trial index so trials are independent and replayable.
constexpr std::uint64_t kStreamsPerTrial = 4;

Xoshiro256 protocol_rng(std::uint64_t seed, std::size_t trial) {
  return make_stream(seed, kStreamsPerTrial * trial + 1);
}
Xoshiro256 setup_rng(std::uint64_t seed, std::size_t trial) {
  return make_stream(seed, kStreamsPerTrial * trial + 2);
}

/// Per-agent setup stream (RngPurpose::kSetup): scenario initialization
/// draws that are logically per-agent — like desync wake offsets — come
/// from here, so setup is order-independent like the engine draws.
CounterRng agent_setup_rng(const StreamKey& key, AgentId agent) {
  return CounterRng(round_stream_key(key, RngPurpose::kSetup, 0), agent);
}

/// The pool the sharded breathe phases run on: the process-wide shared
/// pool (whose workers persist, so their scratch recycles across trials),
/// or none when the trial is unsharded.
ThreadPool* shard_pool(std::size_t shards) {
  return shards > 1 ? &ThreadPool::shared() : nullptr;
}

// Shared scenario -> (Params, BreatheConfig) derivation, used by both
// substrates of each run_* function so the two can never drift apart in
// setup. Validation happens before Params::calibrated, preserving the
// original exception order.

BreatheConfig broadcast_breathe_config(const BroadcastScenario& scenario) {
  BreatheConfig config = broadcast_config(scenario.correct);
  config.stage1_pick = scenario.stage1_pick;
  config.stage2_subset = scenario.stage2_subset;
  return config;
}

Params majority_params(const MajorityScenario& scenario) {
  if (!(scenario.majority_bias > 0.0) || scenario.majority_bias > 0.5) {
    throw std::invalid_argument("run_majority: majority_bias not in (0, 0.5]");
  }
  return Params::calibrated(scenario.n, scenario.eps, scenario.tuning);
}

BreatheConfig majority_breathe_config(const Params& params,
                                      const MajorityScenario& scenario) {
  // majority-bias = (A_B - A_notB) / (2|A|)  =>  A_B = |A| (1/2 + bias).
  const auto correct_count = static_cast<std::size_t>(
      std::llround((0.5 + scenario.majority_bias) *
                   static_cast<double>(scenario.initial_set)));
  return majority_config(params, scenario.initial_set, correct_count,
                         scenario.correct);
}

Params boost_params(const BoostScenario& scenario) {
  if (!(scenario.initial_bias > 0.0) || scenario.initial_bias > 0.5) {
    throw std::invalid_argument("run_boost: initial_bias not in (0, 0.5]");
  }
  return Params::calibrated(scenario.n, scenario.eps, scenario.tuning);
}

BreatheConfig boost_breathe_config(const Params& params,
                                   const BoostScenario& scenario) {
  const auto correct_count = static_cast<std::size_t>(
      std::llround((0.5 + scenario.initial_bias) *
                   static_cast<double>(scenario.n)));
  BreatheConfig config =
      majority_config(params, scenario.n, correct_count, scenario.correct);
  config.skip_stage1 = true;
  return config;
}

// Scenario -> SurrogateSpec derivations for EngineMode::kSurrogate. These
// deliberately bypass the BreatheConfig builders: majority_config
// materializes an O(n) seed vector, which at the surrogate's n = 1e9 would
// cost more memory than the whole analysis — the spec carries counts only.

/// The mean-field rate equations assume every sender reaches every
/// recipient with probability 1/(n-1): a sparse interaction graph has no
/// homogeneous per-round rate, so the surrogate refuses it rather than
/// silently integrating the wrong dynamics.
void reject_sparse_topology(const TopologySpec& topology, const char* what) {
  if (!topology.complete()) {
    throw std::invalid_argument(
        std::string(what) + ": the mean-field surrogate engine models the "
        "complete interaction graph only, not topology '" +
        topology.describe() + "'; use --engine batch or --engine classic");
  }
}

SurrogateSpec broadcast_surrogate_spec(const BroadcastScenario& scenario) {
  if (scenario.adversarial_budget != 0) {
    throw std::invalid_argument(
        "broadcast: the adversarial channel is stateful and order-"
        "dependent — no per-round rate exists for the surrogate engine; "
        "use --engine batch or --engine classic");
  }
  reject_sparse_topology(scenario.topology, "broadcast");
  SurrogateSpec spec;
  spec.n = scenario.n;
  spec.eps = scenario.eps;
  spec.tuning = scenario.tuning;
  spec.initial_set = 1;
  spec.initial_correct = 1;
  spec.stage1_only = scenario.stage1_only;
  spec.heterogeneous = scenario.heterogeneous_noise;
  spec.schedule = scenario.schedule;
  spec.churn = scenario.churn;
  spec.probe_every = scenario.probe_every;
  // stage1_pick / stage2_subset need no mapping: uniform-vs-first message
  // and uniform-vs-prefix subset have identical per-agent marginals, so
  // the mean-field state evolution is the same for all four combinations.
  return spec;
}

SurrogateSpec majority_surrogate_spec(const MajorityScenario& scenario) {
  if (!(scenario.majority_bias > 0.0) || scenario.majority_bias > 0.5) {
    throw std::invalid_argument("run_majority: majority_bias not in (0, 0.5]");
  }
  reject_sparse_topology(scenario.topology, "majority");
  SurrogateSpec spec;
  spec.n = scenario.n;
  spec.eps = scenario.eps;
  spec.tuning = scenario.tuning;
  spec.initial_set = scenario.initial_set;
  spec.initial_correct = static_cast<std::size_t>(
      std::llround((0.5 + scenario.majority_bias) *
                   static_cast<double>(scenario.initial_set)));
  spec.auto_join_phase = true;
  spec.schedule = scenario.schedule;
  spec.churn = scenario.churn;
  spec.probe_every = scenario.probe_every;
  return spec;
}

SurrogateSpec boost_surrogate_spec(const BoostScenario& scenario) {
  if (!(scenario.initial_bias > 0.0) || scenario.initial_bias > 0.5) {
    throw std::invalid_argument("run_boost: initial_bias not in (0, 0.5]");
  }
  reject_sparse_topology(scenario.topology, "boost");
  SurrogateSpec spec;
  spec.n = scenario.n;
  spec.eps = scenario.eps;
  spec.tuning = scenario.tuning;
  spec.initial_set = scenario.n;
  spec.initial_correct = static_cast<std::size_t>(std::llround(
      (0.5 + scenario.initial_bias) * static_cast<double>(scenario.n)));
  spec.skip_stage1 = true;
  return spec;
}

/// Maps a BreatheFastResult onto the RunDetail shape the classic path
/// produces from the protocol's introspection.
RunDetail fast_to_detail(BreatheFastResult&& fast) {
  RunDetail detail;
  detail.protocol_rounds = fast.protocol_rounds;
  detail.metrics = std::move(fast.metrics);
  detail.success = fast.success;
  detail.correct_fraction = fast.correct_fraction;
  detail.final_bias = fast.final_bias;
  detail.stage1 = std::move(fast.stage1);
  detail.stage2 = std::move(fast.stage2);
  return detail;
}

/// The convergence-round probe statistic: first stable crossing of 99%
/// activation in the recorded series. NaN when no probes were recorded or
/// the crossing never happens — reporting maps non-finite to null/"-".
double activation_convergence(const Metrics& metrics, std::size_t n) {
  const std::optional<Round> round =
      stable_crossing(metrics.activated_series,
                      0.99 * static_cast<double>(n));
  return round ? static_cast<double>(*round) : kNoConvergence;
}

/// The environment one breathe execution runs in: at most one of
/// heterogeneous / schedule / adversarial selects the channel; churn is
/// orthogonal.
struct BreatheEnvironment {
  bool heterogeneous = false;
  EnvironmentSchedule schedule{};
  ChurnSpec churn{};
  /// Interaction graph; orthogonal to the channel choice, like churn.
  TopologySpec topology{};
  std::uint64_t adversarial_budget = 0;
};

/// The environment exclusivity rules both the RunDetail and the pooled
/// trial paths enforce: at most one of heterogeneous / schedule /
/// adversarial selects the channel.
void validate_breathe_env(const BreatheEnvironment& env) {
  if (env.heterogeneous && env.schedule.enabled()) {
    throw std::invalid_argument(
        "breathe scenario: heterogeneous noise and an eps schedule are "
        "mutually exclusive");
  }
  if (env.adversarial_budget != 0 &&
      (env.heterogeneous || env.schedule.enabled())) {
    throw std::invalid_argument(
        "breathe scenario: the adversarial channel excludes heterogeneous "
        "noise and eps schedules");
  }
}

/// One breathe execution on the substrate the caller resolved: the shared
/// body of run_broadcast / run_majority / run_boost (the former
/// run_*_fast/run_* twins, deduplicated). `env` selects the channel and
/// churn, `stage1_only`/`probe_every` mirror the broadcast knobs.
RunDetail run_breathe_scenario(const Params& params,
                               const BreatheConfig& config, double eps,
                               const BreatheEnvironment& env,
                               EngineMode engine_mode,
                               std::size_t shards, bool stage1_only,
                               Round probe_every, std::uint64_t seed,
                               std::size_t trial) {
  if (engine_mode == EngineMode::kSurrogate) {
    // The surrogate yields analytic moments, not one execution's samples:
    // there is no RunDetail to return. The *_trial_fn adapters intercept
    // kSurrogate before reaching here.
    throw std::invalid_argument(
        "breathe scenario: the surrogate engine has no per-execution "
        "RunDetail; use the trial-fn adapters");
  }
  validate_breathe_env(env);
  const StreamKey key = trial_stream_key(seed, trial);
  EngineOptions options;
  options.probe_every = probe_every;
  options.churn = env.churn;
  options.topology = env.topology;
  const Round budget =
      BatchEngine::breathe_schedule(params, config, stage1_only).budget;
  // Anchor open-ended schedule segments ("ramp over the whole run") to the
  // rounds this execution will actually run.
  const EnvironmentSchedule schedule = env.schedule.resolved(eps, budget);

  RunDetail detail;
  // The adversarial ablation always runs on the reference Engine: the
  // channel spends its budget in delivery order, so only the sequential
  // substrate gives it a defined meaning (and batch == classic trivially).
  if (engine_mode == EngineMode::kBatch && breathe_fast_supported(params) &&
      env.adversarial_budget == 0) {
    BreatheRunOptions run_options;
    run_options.engine = options;
    run_options.shards = shards;
    run_options.pool = shard_pool(shards);
    BatchEngineLease engine;
    BreatheFastResult fast;
    if (env.schedule.enabled()) {
      CorrelatedBurstChannel channel(schedule);
      fast = engine->run_breathe(params, config, channel, key, stage1_only,
                                 run_options);
    } else if (env.heterogeneous) {
      HeterogeneousChannel channel(eps);
      fast = engine->run_breathe(params, config, channel, key, stage1_only,
                                 run_options);
    } else {
      BinarySymmetricChannel channel(eps);
      fast = engine->run_breathe(params, config, channel, key, stage1_only,
                                 run_options);
    }
    detail = fast_to_detail(std::move(fast));
    detail.convergence_round =
        activation_convergence(detail.metrics, params.n());
    return detail;
  }

  // Reference substrate: virtual Engine + BreatheProtocol, same keys.
  std::unique_ptr<NoiseChannel> channel;
  if (env.adversarial_budget != 0) {
    channel = std::make_unique<AdversarialChannel>(env.adversarial_budget);
  } else if (env.schedule.enabled()) {
    channel = std::make_unique<CorrelatedBurstChannel>(schedule);
  } else if (env.heterogeneous) {
    channel = std::make_unique<HeterogeneousChannel>(eps);
  } else {
    channel = std::make_unique<BinarySymmetricChannel>(eps);
  }
  Engine engine(params.n(), *channel, key, options);
  BreatheProtocol protocol(params, config, key);

  detail.protocol_rounds = budget;
  detail.metrics = engine.run(protocol, budget);
  detail.success = protocol.succeeded();
  detail.correct_fraction =
      protocol.population().correct_fraction(config.correct);
  detail.final_bias = protocol.population().bias(config.correct);
  detail.stage1 = protocol.stage1_stats();
  detail.stage2 = protocol.stage2_stats();
  detail.convergence_round =
      activation_convergence(detail.metrics, params.n());
  return detail;
}

/// The warm Monte-Carlo path: one batch fast-path execution through the
/// calling thread's pooled TrialArena, reduced straight to the
/// TrialOutcome scalars. No RunDetail is materialized and nothing escapes
/// the arena, so after one warm-up trial per cell shape the per-trial
/// heap allocation count is zero on static channels (the trial_arena
/// tests hold this with a counting allocator; CorrelatedBurstChannel
/// still materializes its resolved schedule per trial). Returns nullopt
/// when the fast path does not apply — classic engine, adversarial
/// channel, unpackable schedule — and the caller falls back to the
/// RunDetail substrate dispatch above. Identical outcomes either way.
std::optional<TrialOutcome> pooled_breathe_outcome(
    const Params& params, const BreatheConfig& config, double eps,
    const BreatheEnvironment& env, EngineMode engine_mode,
    std::size_t shards, bool stage1_only, Round probe_every,
    std::uint64_t seed, std::size_t trial) {
  if (engine_mode != EngineMode::kBatch || !breathe_fast_supported(params) ||
      env.adversarial_budget != 0) {
    return std::nullopt;
  }
  const StreamKey key = trial_stream_key(seed, trial);
  BreatheRunOptions run_options;
  run_options.engine.probe_every = probe_every;
  run_options.engine.churn = env.churn;
  run_options.engine.topology = env.topology;
  run_options.shards = shards;
  run_options.pool = shard_pool(shards);

  TrialArenaLease arena;
  BreatheFastResult& fast = arena->result;
  if (env.schedule.enabled()) {
    const Round budget =
        BatchEngine::breathe_schedule(params, config, stage1_only).budget;
    CorrelatedBurstChannel channel(env.schedule.resolved(eps, budget));
    arena->engine.run_breathe(params, config, channel, key, stage1_only,
                              run_options, fast);
  } else if (env.heterogeneous) {
    HeterogeneousChannel channel(eps);
    arena->engine.run_breathe(params, config, channel, key, stage1_only,
                              run_options, fast);
  } else {
    BinarySymmetricChannel channel(eps);
    arena->engine.run_breathe(params, config, channel, key, stage1_only,
                              run_options, fast);
  }

  TrialOutcome outcome;
  outcome.success = fast.success;
  if (stage1_only) {
    // Stage-I-only success = every agent activated: run_broadcast's
    // post-processing, applied here so both paths report identically.
    const std::uint64_t activated =
        fast.stage1.empty() ? 0 : fast.stage1.back().total_activated;
    outcome.success = activated == params.n();
  }
  outcome.rounds = static_cast<double>(fast.metrics.rounds);
  outcome.messages = static_cast<double>(fast.metrics.messages_sent);
  outcome.correct_fraction = fast.correct_fraction;
  outcome.convergence_round =
      activation_convergence(fast.metrics, params.n());
  outcome.delivered = fast.metrics.delivered;
  outcome.dropped = fast.metrics.dropped;
  outcome.erased = fast.metrics.erased;
  outcome.flipped = fast.metrics.flipped;
  return outcome;
}

}  // namespace

TrialOutcome to_outcome(const RunDetail& detail) {
  TrialOutcome outcome;
  outcome.success = detail.success;
  outcome.rounds = static_cast<double>(detail.metrics.rounds);
  outcome.messages = static_cast<double>(detail.metrics.messages_sent);
  outcome.correct_fraction = detail.correct_fraction;
  outcome.convergence_round = detail.convergence_round;
  outcome.delivered = detail.metrics.delivered;
  outcome.dropped = detail.metrics.dropped;
  outcome.erased = detail.metrics.erased;
  outcome.flipped = detail.metrics.flipped;
  return outcome;
}

RunDetail run_broadcast(const BroadcastScenario& scenario, std::uint64_t seed,
                        std::size_t trial) {
  const Params params = Params::calibrated(scenario.n, scenario.eps,
                                           scenario.tuning);
  BreatheEnvironment env;
  env.heterogeneous = scenario.heterogeneous_noise;
  env.schedule = scenario.schedule;
  env.churn = scenario.churn;
  env.topology = scenario.topology;
  env.adversarial_budget = scenario.adversarial_budget;
  RunDetail detail = run_breathe_scenario(
      params, broadcast_breathe_config(scenario), scenario.eps, env,
      scenario.engine, scenario.shards,
      scenario.stage1_only, scenario.probe_every, seed, trial);
  if (scenario.stage1_only) {
    // Stage-I-only success = every agent activated. The batch substrate
    // reports opinionated agents through correct_fraction/bias over pop_;
    // recompute from the stage1 stats' total (identical on both paths).
    const std::uint64_t activated =
        detail.stage1.empty() ? 0 : detail.stage1.back().total_activated;
    detail.success = activated == scenario.n;
  }
  return detail;
}

RunDetail run_majority(const MajorityScenario& scenario, std::uint64_t seed,
                       std::size_t trial) {
  const Params params = majority_params(scenario);
  BreatheEnvironment env;
  env.schedule = scenario.schedule;
  env.churn = scenario.churn;
  env.topology = scenario.topology;
  return run_breathe_scenario(
      params, majority_breathe_config(params, scenario), scenario.eps, env,
      scenario.engine, scenario.shards,
      /*stage1_only=*/false, scenario.probe_every, seed, trial);
}

RunDetail run_boost(const BoostScenario& scenario, std::uint64_t seed,
                    std::size_t trial) {
  const Params params = boost_params(scenario);
  BreatheEnvironment env;
  env.topology = scenario.topology;
  return run_breathe_scenario(
      params, boost_breathe_config(params, scenario), scenario.eps, env,
      scenario.engine, scenario.shards,
      /*stage1_only=*/false, /*probe_every=*/0, seed, trial);
}

RunDetail run_desync(const DesyncScenario& scenario, std::uint64_t seed,
                     std::size_t trial) {
  if (scenario.engine == EngineMode::kSurrogate) {
    throw std::invalid_argument(
        "desync: per-agent clock offsets break the homogeneous-population "
        "assumption of the surrogate engine; use --engine batch or "
        "--engine classic");
  }
  const Params params = Params::calibrated(scenario.n, scenario.eps,
                                           scenario.tuning);
  const StreamKey key = trial_stream_key(seed, trial);
  auto pro_rng = protocol_rng(seed, trial);

  RunDetail detail;
  DesyncConfig config;
  config.base = broadcast_config(scenario.correct);
  config.attribution = scenario.attribution;

  if (scenario.use_clock_sync) {
    // Section 3.2: run the activation pre-phase; its clock resets bound the
    // skew by ~2 log n w.h.p. The pre-phase is a sequential mini-simulation
    // of its own, so it keeps a sequential setup stream.
    auto set_rng = setup_rng(seed, trial);
    const ClockSyncResult sync =
        run_clock_sync(scenario.n, /*source=*/0, set_rng);
    detail.clock_sync_rounds = sync.duration;
    detail.clock_sync_messages = sync.messages;
    detail.measured_skew = sync.skew;
    config.wake = sync.wake;
    config.max_skew = sync.skew;  // the realized bound
  } else {
    config.max_skew = scenario.max_skew;
    const Round spread = scenario.actual_skew != 0 ? scenario.actual_skew
                                                   : scenario.max_skew;
    config.allow_excess_skew = spread > scenario.max_skew;
    config.wake.resize(scenario.n, 0);
    if (spread > 0) {
      for (AgentId a = 0; a < scenario.n; ++a) {
        CounterRng rng = agent_setup_rng(key, a);
        config.wake[a] = uniform_index(rng, spread + 1);
      }
      detail.measured_skew = spread;
    }
  }

  DesyncBreatheProtocol protocol(params, std::move(config), pro_rng);

  detail.protocol_rounds = protocol.total_rounds();
  detail.desync_overhead = protocol.desync_overhead();
  const auto run_on_channel = [&](auto& channel) {
    if (scenario.engine == EngineMode::kBatch) {
      return BatchEngineLease()->run(scenario.n, protocol, channel, key,
                                     protocol.total_rounds());
    }
    Engine engine(scenario.n, channel, key);
    return engine.run(protocol, protocol.total_rounds());
  };
  if (scenario.schedule.enabled()) {
    CorrelatedBurstChannel channel(
        scenario.schedule.resolved(scenario.eps, protocol.total_rounds()));
    detail.metrics = run_on_channel(channel);
  } else {
    BinarySymmetricChannel channel(scenario.eps);
    detail.metrics = run_on_channel(channel);
  }
  detail.metrics.rounds += detail.clock_sync_rounds;
  detail.metrics.messages_sent += detail.clock_sync_messages;
  detail.success = protocol.succeeded();
  detail.correct_fraction =
      protocol.population().correct_fraction(scenario.correct);
  detail.final_bias = protocol.population().bias(scenario.correct);
  return detail;
}

// The exact-engine adapters below hoist everything that depends only on
// the scenario — Params::calibrated, the BreatheConfig (whose initial
// seed list is O(n) for boost), the environment — out of the per-trial
// closure into per-cell state shared read-only across the harness's
// worker threads. The warm per-trial path then runs through the pooled
// TrialArena and allocates nothing; scenarios the fast path cannot take
// fall back to the public RunDetail runners, same outcomes bit for bit.

TrialFn broadcast_trial_fn(BroadcastScenario scenario) {
  if (scenario.engine == EngineMode::kSurrogate) {
    return surrogate_trial_fn(broadcast_surrogate_spec(scenario));
  }
  const Params params =
      Params::calibrated(scenario.n, scenario.eps, scenario.tuning);
  BreatheEnvironment env;
  env.heterogeneous = scenario.heterogeneous_noise;
  env.schedule = scenario.schedule;
  env.churn = scenario.churn;
  env.topology = scenario.topology;
  env.adversarial_budget = scenario.adversarial_budget;
  validate_breathe_env(env);
  return [scenario, params, env,
          config = broadcast_breathe_config(scenario)](
             std::uint64_t seed, std::size_t trial) {
    if (const auto outcome = pooled_breathe_outcome(
            params, config, scenario.eps, env, scenario.engine,
            scenario.shards, scenario.stage1_only, scenario.probe_every,
            seed, trial)) {
      return *outcome;
    }
    return to_outcome(run_broadcast(scenario, seed, trial));
  };
}

TrialFn majority_trial_fn(MajorityScenario scenario) {
  if (scenario.engine == EngineMode::kSurrogate) {
    return surrogate_trial_fn(majority_surrogate_spec(scenario));
  }
  const Params params = majority_params(scenario);
  BreatheEnvironment env;
  env.schedule = scenario.schedule;
  env.churn = scenario.churn;
  env.topology = scenario.topology;
  return [scenario, params, env,
          config = majority_breathe_config(params, scenario)](
             std::uint64_t seed, std::size_t trial) {
    if (const auto outcome = pooled_breathe_outcome(
            params, config, scenario.eps, env, scenario.engine,
            scenario.shards, /*stage1_only=*/false, scenario.probe_every,
            seed, trial)) {
      return *outcome;
    }
    return to_outcome(run_majority(scenario, seed, trial));
  };
}

TrialFn boost_trial_fn(BoostScenario scenario) {
  if (scenario.engine == EngineMode::kSurrogate) {
    return surrogate_trial_fn(boost_surrogate_spec(scenario));
  }
  const Params params = boost_params(scenario);
  BreatheEnvironment env;
  env.topology = scenario.topology;
  return [scenario, params, env,
          config = boost_breathe_config(params, scenario)](
             std::uint64_t seed, std::size_t trial) {
    if (const auto outcome = pooled_breathe_outcome(
            params, config, scenario.eps, env, scenario.engine,
            scenario.shards, /*stage1_only=*/false, /*probe_every=*/0,
            seed, trial)) {
      return *outcome;
    }
    return to_outcome(run_boost(scenario, seed, trial));
  };
}

TrialFn desync_trial_fn(DesyncScenario scenario) {
  if (scenario.engine == EngineMode::kSurrogate) {
    throw std::invalid_argument(
        "desync: per-agent clock offsets break the homogeneous-population "
        "assumption of the surrogate engine; use --engine batch or "
        "--engine classic");
  }
  return [scenario](std::uint64_t seed, std::size_t trial) {
    return to_outcome(run_desync(scenario, seed, trial));
  };
}

}  // namespace flip
