#include "workload/scenarios.hpp"

#include <cmath>
#include <stdexcept>

#include "net/channel.hpp"
#include "sim/batch_engine.hpp"
#include "sim/engine.hpp"

namespace flip {

namespace {

// Each trial uses disjoint rng streams: one for the engine (delivery +
// channel noise), one for protocol-internal choices, one for scenario
// setup (e.g. wake offsets). Keyed by trial index so trials are
// independent and replayable.
constexpr std::uint64_t kStreamsPerTrial = 4;

Xoshiro256 engine_rng(std::uint64_t seed, std::size_t trial) {
  return make_stream(seed, kStreamsPerTrial * trial + 0);
}
Xoshiro256 protocol_rng(std::uint64_t seed, std::size_t trial) {
  return make_stream(seed, kStreamsPerTrial * trial + 1);
}
Xoshiro256 setup_rng(std::uint64_t seed, std::size_t trial) {
  return make_stream(seed, kStreamsPerTrial * trial + 2);
}

// Shared scenario -> (Params, BreatheConfig) derivation, used by both the
// classic and fast twins of each run_* function so the two substrates can
// never drift apart in setup. Validation happens before Params::calibrated,
// preserving the original exception order.

BreatheConfig broadcast_breathe_config(const BroadcastScenario& scenario) {
  BreatheConfig config = broadcast_config(scenario.correct);
  config.stage1_pick = scenario.stage1_pick;
  config.stage2_subset = scenario.stage2_subset;
  return config;
}

Params majority_params(const MajorityScenario& scenario) {
  if (!(scenario.majority_bias > 0.0) || scenario.majority_bias > 0.5) {
    throw std::invalid_argument("run_majority: majority_bias not in (0, 0.5]");
  }
  return Params::calibrated(scenario.n, scenario.eps, scenario.tuning);
}

BreatheConfig majority_breathe_config(const Params& params,
                                      const MajorityScenario& scenario) {
  // majority-bias = (A_B - A_notB) / (2|A|)  =>  A_B = |A| (1/2 + bias).
  const auto correct_count = static_cast<std::size_t>(
      std::llround((0.5 + scenario.majority_bias) *
                   static_cast<double>(scenario.initial_set)));
  return majority_config(params, scenario.initial_set, correct_count,
                         scenario.correct);
}

Params boost_params(const BoostScenario& scenario) {
  if (!(scenario.initial_bias > 0.0) || scenario.initial_bias > 0.5) {
    throw std::invalid_argument("run_boost: initial_bias not in (0, 0.5]");
  }
  return Params::calibrated(scenario.n, scenario.eps, scenario.tuning);
}

BreatheConfig boost_breathe_config(const Params& params,
                                   const BoostScenario& scenario) {
  const auto correct_count = static_cast<std::size_t>(
      std::llround((0.5 + scenario.initial_bias) *
                   static_cast<double>(scenario.n)));
  BreatheConfig config =
      majority_config(params, scenario.n, correct_count, scenario.correct);
  config.skip_stage1 = true;
  return config;
}

/// Maps a BreatheFastResult onto the RunDetail shape run_broadcast &co
/// produce from the classic protocol's introspection.
RunDetail fast_to_detail(BreatheFastResult&& fast) {
  RunDetail detail;
  detail.protocol_rounds = fast.protocol_rounds;
  detail.metrics = std::move(fast.metrics);
  detail.success = fast.success;
  detail.correct_fraction = fast.correct_fraction;
  detail.final_bias = fast.final_bias;
  detail.stage1 = std::move(fast.stage1);
  detail.stage2 = std::move(fast.stage2);
  return detail;
}

}  // namespace

TrialOutcome to_outcome(const RunDetail& detail) {
  TrialOutcome outcome;
  outcome.success = detail.success;
  outcome.rounds = static_cast<double>(detail.metrics.rounds);
  outcome.messages = static_cast<double>(detail.metrics.messages_sent);
  outcome.correct_fraction = detail.correct_fraction;
  return outcome;
}

RunDetail run_broadcast(const BroadcastScenario& scenario, std::uint64_t seed,
                        std::size_t trial) {
  const Params params = Params::calibrated(scenario.n, scenario.eps,
                                           scenario.tuning);
  auto eng_rng = engine_rng(seed, trial);
  auto pro_rng = protocol_rng(seed, trial);
  std::unique_ptr<NoiseChannel> channel;
  if (scenario.heterogeneous_noise) {
    channel = std::make_unique<HeterogeneousChannel>(scenario.eps);
  } else {
    channel = std::make_unique<BinarySymmetricChannel>(scenario.eps);
  }
  EngineOptions options;
  options.probe_every = scenario.probe_every;
  Engine engine(scenario.n, *channel, eng_rng, options);

  BreatheProtocol protocol(params, broadcast_breathe_config(scenario),
                           pro_rng);
  RunDetail detail;
  const Round budget = scenario.stage1_only ? protocol.stage1_rounds()
                                            : protocol.total_rounds();
  detail.protocol_rounds = budget;
  detail.metrics = engine.run(protocol, budget);
  detail.success =
      scenario.stage1_only
          ? protocol.population().opinionated() == scenario.n
          : protocol.succeeded();
  detail.correct_fraction =
      protocol.population().correct_fraction(scenario.correct);
  detail.final_bias = protocol.population().bias(scenario.correct);
  detail.stage1 = protocol.stage1_stats();
  detail.stage2 = protocol.stage2_stats();
  return detail;
}

RunDetail run_broadcast_fast(const BroadcastScenario& scenario,
                             std::uint64_t seed, std::size_t trial) {
  const Params params = Params::calibrated(scenario.n, scenario.eps,
                                           scenario.tuning);
  if (!breathe_fast_supported(params)) {
    return run_broadcast(scenario, seed, trial);
  }
  auto eng_rng = engine_rng(seed, trial);
  auto pro_rng = protocol_rng(seed, trial);
  EngineOptions options;
  options.probe_every = scenario.probe_every;

  const BreatheConfig config = broadcast_breathe_config(scenario);
  BatchEngine& engine = local_batch_engine();
  BreatheFastResult fast;
  if (scenario.heterogeneous_noise) {
    HeterogeneousChannel channel(scenario.eps);
    fast = engine.run_breathe(params, config, channel, eng_rng, pro_rng,
                              scenario.stage1_only, options);
  } else {
    BinarySymmetricChannel channel(scenario.eps);
    fast = engine.run_breathe(params, config, channel, eng_rng, pro_rng,
                              scenario.stage1_only, options);
  }
  const std::size_t opinionated = fast.opinionated;
  RunDetail detail = fast_to_detail(std::move(fast));
  if (scenario.stage1_only) detail.success = opinionated == scenario.n;
  return detail;
}

RunDetail run_boost(const BoostScenario& scenario, std::uint64_t seed,
                    std::size_t trial) {
  const Params params = boost_params(scenario);
  auto eng_rng = engine_rng(seed, trial);
  auto pro_rng = protocol_rng(seed, trial);
  BinarySymmetricChannel channel(scenario.eps);
  Engine engine(scenario.n, channel, eng_rng);
  BreatheProtocol protocol(params, boost_breathe_config(params, scenario),
                           pro_rng);

  RunDetail detail;
  detail.protocol_rounds = protocol.total_rounds();
  detail.metrics = engine.run(protocol, protocol.total_rounds());
  detail.success = protocol.succeeded();
  detail.correct_fraction =
      protocol.population().correct_fraction(scenario.correct);
  detail.final_bias = protocol.population().bias(scenario.correct);
  detail.stage2 = protocol.stage2_stats();
  return detail;
}

RunDetail run_boost_fast(const BoostScenario& scenario, std::uint64_t seed,
                         std::size_t trial) {
  const Params params = boost_params(scenario);
  if (!breathe_fast_supported(params)) {
    return run_boost(scenario, seed, trial);
  }
  auto eng_rng = engine_rng(seed, trial);
  auto pro_rng = protocol_rng(seed, trial);
  BinarySymmetricChannel channel(scenario.eps);
  return fast_to_detail(local_batch_engine().run_breathe(
      params, boost_breathe_config(params, scenario), channel, eng_rng,
      pro_rng, /*stage1_only=*/false));
}

RunDetail run_majority(const MajorityScenario& scenario, std::uint64_t seed,
                       std::size_t trial) {
  const Params params = majority_params(scenario);
  auto eng_rng = engine_rng(seed, trial);
  auto pro_rng = protocol_rng(seed, trial);
  BinarySymmetricChannel channel(scenario.eps);
  Engine engine(scenario.n, channel, eng_rng);

  BreatheProtocol protocol(params,
                           majority_breathe_config(params, scenario),
                           pro_rng);
  RunDetail detail;
  detail.protocol_rounds = protocol.total_rounds();
  detail.metrics = engine.run(protocol, protocol.total_rounds());
  detail.success = protocol.succeeded();
  detail.correct_fraction =
      protocol.population().correct_fraction(scenario.correct);
  detail.final_bias = protocol.population().bias(scenario.correct);
  detail.stage1 = protocol.stage1_stats();
  detail.stage2 = protocol.stage2_stats();
  return detail;
}

RunDetail run_majority_fast(const MajorityScenario& scenario,
                            std::uint64_t seed, std::size_t trial) {
  const Params params = majority_params(scenario);
  if (!breathe_fast_supported(params)) {
    return run_majority(scenario, seed, trial);
  }
  auto eng_rng = engine_rng(seed, trial);
  auto pro_rng = protocol_rng(seed, trial);
  BinarySymmetricChannel channel(scenario.eps);
  return fast_to_detail(local_batch_engine().run_breathe(
      params, majority_breathe_config(params, scenario), channel, eng_rng,
      pro_rng, /*stage1_only=*/false));
}

namespace {

/// Shared body of run_desync / run_desync_fast: identical setup and rng
/// streams; only the round-loop substrate differs (virtual Engine vs the
/// statically-dispatched BatchEngine loop).
RunDetail run_desync_impl(const DesyncScenario& scenario, std::uint64_t seed,
                          std::size_t trial, bool batch) {
  const Params params = Params::calibrated(scenario.n, scenario.eps,
                                           scenario.tuning);
  auto eng_rng = engine_rng(seed, trial);
  auto pro_rng = protocol_rng(seed, trial);
  auto set_rng = setup_rng(seed, trial);

  RunDetail detail;
  DesyncConfig config;
  config.base = broadcast_config(scenario.correct);
  config.attribution = scenario.attribution;

  if (scenario.use_clock_sync) {
    // Section 3.2: run the activation pre-phase; its clock resets bound the
    // skew by ~2 log n w.h.p.
    const ClockSyncResult sync =
        run_clock_sync(scenario.n, /*source=*/0, set_rng);
    detail.clock_sync_rounds = sync.duration;
    detail.clock_sync_messages = sync.messages;
    detail.measured_skew = sync.skew;
    config.wake = sync.wake;
    config.max_skew = sync.skew;  // the realized bound
  } else {
    config.max_skew = scenario.max_skew;
    const Round spread = scenario.actual_skew != 0 ? scenario.actual_skew
                                                   : scenario.max_skew;
    config.allow_excess_skew = spread > scenario.max_skew;
    config.wake.resize(scenario.n, 0);
    if (spread > 0) {
      for (Round& w : config.wake) {
        w = uniform_index(set_rng, spread + 1);
      }
      detail.measured_skew = spread;
    }
  }

  BinarySymmetricChannel channel(scenario.eps);
  DesyncBreatheProtocol protocol(params, std::move(config), pro_rng);

  detail.protocol_rounds = protocol.total_rounds();
  detail.desync_overhead = protocol.desync_overhead();
  if (batch) {
    detail.metrics = local_batch_engine().run(scenario.n, protocol, channel,
                                              eng_rng,
                                              protocol.total_rounds());
  } else {
    Engine engine(scenario.n, channel, eng_rng);
    detail.metrics = engine.run(protocol, protocol.total_rounds());
  }
  detail.metrics.rounds += detail.clock_sync_rounds;
  detail.metrics.messages_sent += detail.clock_sync_messages;
  detail.success = protocol.succeeded();
  detail.correct_fraction =
      protocol.population().correct_fraction(scenario.correct);
  detail.final_bias = protocol.population().bias(scenario.correct);
  return detail;
}

}  // namespace

RunDetail run_desync(const DesyncScenario& scenario, std::uint64_t seed,
                     std::size_t trial) {
  return run_desync_impl(scenario, seed, trial, /*batch=*/false);
}

RunDetail run_desync_fast(const DesyncScenario& scenario, std::uint64_t seed,
                          std::size_t trial) {
  return run_desync_impl(scenario, seed, trial, /*batch=*/true);
}

TrialFn broadcast_trial_fn(BroadcastScenario scenario) {
  return [scenario](std::uint64_t seed, std::size_t trial) {
    return to_outcome(scenario.engine == EngineMode::kBatch
                          ? run_broadcast_fast(scenario, seed, trial)
                          : run_broadcast(scenario, seed, trial));
  };
}

TrialFn majority_trial_fn(MajorityScenario scenario) {
  return [scenario](std::uint64_t seed, std::size_t trial) {
    return to_outcome(scenario.engine == EngineMode::kBatch
                          ? run_majority_fast(scenario, seed, trial)
                          : run_majority(scenario, seed, trial));
  };
}

TrialFn boost_trial_fn(BoostScenario scenario) {
  return [scenario](std::uint64_t seed, std::size_t trial) {
    return to_outcome(scenario.engine == EngineMode::kBatch
                          ? run_boost_fast(scenario, seed, trial)
                          : run_boost(scenario, seed, trial));
  };
}

TrialFn desync_trial_fn(DesyncScenario scenario) {
  return [scenario](std::uint64_t seed, std::size_t trial) {
    return to_outcome(scenario.engine == EngineMode::kBatch
                          ? run_desync_fast(scenario, seed, trial)
                          : run_desync(scenario, seed, trial));
  };
}

}  // namespace flip
