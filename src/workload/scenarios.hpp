#pragma once
// Ready-made experiment scenarios: each couples a Params schedule, a
// protocol, a channel, and deterministic per-trial rng streams into a
// single call. Tests, benches and examples all run the paper's experiments
// through these, so workloads are identical everywhere.
//
// Every run_* function dispatches on its scenario's `engine` field: kBatch
// runs the statically-dispatched BatchEngine substrate (the breathe
// scenarios additionally use its sharded SoA specialization), kClassic the
// reference Engine + protocol objects. Both substrates draw from the same
// counter-keyed per-agent streams (util/rng.hpp), so for the same
// (seed, trial) they return bit-identical RunDetails — for every `shards`
// value. tests/batch_engine_test.cpp enforces this.

#include <cstdint>
#include <limits>

#include "core/breathe.hpp"
#include "core/desync.hpp"
#include "core/environment.hpp"
#include "core/params.hpp"
#include "core/topology.hpp"
#include "sim/metrics.hpp"
#include "sim/trial.hpp"

namespace flip {

/// Noisy broadcast (Section 2): one source, n-1 uninformed agents.
struct BroadcastScenario {
  std::size_t n = 1024;
  double eps = 0.2;
  Tuning tuning{};
  Opinion correct = Opinion::kOne;
  /// Engine probe period for bias/activation time series (0 = off).
  Round probe_every = 0;
  /// Run Stage I only (benches E4/E5 study the spreading stage in
  /// isolation). "success" then means "all agents activated".
  bool stage1_only = false;
  /// Rule variants of Remarks 2.1 / 2.10 (bench E11 measures equivalence).
  Stage1Pick stage1_pick = Stage1Pick::kUniformMessage;
  Stage2Subset stage2_subset = Stage2Subset::kUniformSubset;
  /// Replace the BSC with the "at most 1/2 - eps" heterogeneous channel
  /// (Section 1.3.2's exact wording; the guarantee must survive).
  bool heterogeneous_noise = false;
  /// Simulation substrate. kBatch (the default) runs the SoA fast path of
  /// sim/batch_engine.hpp; kClassic forces the reference Engine +
  /// BreatheProtocol. Results are identical per (seed, trial).
  EngineMode engine = EngineMode::kBatch;
  /// Intra-trial shard count for the batch substrate (1 = unsharded).
  /// Results are bit-identical for every value; >1 splits each round's
  /// route/deliver work across the shared ThreadPool's workers.
  std::size_t shards = 1;
  /// Dynamic environment (core/environment.hpp): a per-round eps schedule
  /// (runs through CorrelatedBurstChannel; mutually exclusive with
  /// heterogeneous_noise) and per-round agent join/sleep/wake churn. Both
  /// default to the paper's static environment.
  EnvironmentSchedule schedule{};
  ChurnSpec churn{};
  /// Interaction graph (core/topology.hpp): complete by default — the
  /// paper's uniform push. Sparse families restrict each sender's
  /// recipient draw to its neighbor set, resolved against n when the run
  /// starts. The surrogate engine models the complete graph only and
  /// rejects everything else.
  TopologySpec topology{};
  /// Ablation vs the stochastic schedules: > 0 replaces the channel with a
  /// budget-bounded AdversarialChannel (deterministic early flips). The
  /// adversary is stateful/order-dependent, so these runs always use the
  /// reference Engine; mutually exclusive with schedule/heterogeneous.
  std::uint64_t adversarial_budget = 0;
};

/// Noisy majority-consensus (Corollary 2.18): |A| = initial_set agents with
/// the given majority-bias in (0, 1/2]; B is the majority opinion.
struct MajorityScenario {
  std::size_t n = 1024;
  double eps = 0.2;
  std::size_t initial_set = 64;
  double majority_bias = 0.25;
  Tuning tuning{};
  Opinion correct = Opinion::kOne;
  EngineMode engine = EngineMode::kBatch;
  std::size_t shards = 1;
  /// Engine probe period for bias/activation time series (0 = off); feeds
  /// the convergence-round report like BroadcastScenario::probe_every.
  Round probe_every = 0;
  /// Dynamic environment, as in BroadcastScenario.
  EnvironmentSchedule schedule{};
  ChurnSpec churn{};
  /// Interaction graph, as in BroadcastScenario.
  TopologySpec topology{};
};

/// Stage II in isolation (Lemma 2.14 / bench E7): the whole population is
/// opinionated with the given bias toward `correct`; Stage I is skipped.
struct BoostScenario {
  std::size_t n = 4096;
  double eps = 0.25;
  double initial_bias = 0.02;  ///< delta_1 in (0, 0.5]
  Tuning tuning{};
  Opinion correct = Opinion::kOne;
  EngineMode engine = EngineMode::kBatch;
  std::size_t shards = 1;
  /// Interaction graph, as in BroadcastScenario.
  TopologySpec topology{};
};

/// Section 3 broadcast without a global clock.
struct DesyncScenario {
  std::size_t n = 1024;
  double eps = 0.2;
  /// Clock skew bound D. Offsets are drawn uniformly from [0, D] unless
  /// use_clock_sync is set (then Section 3.2's pre-phase produces them and
  /// D is its 2-log-n bound).
  Round max_skew = 0;
  bool use_clock_sync = false;
  /// E15: true wake spread, possibly exceeding the declared max_skew the
  /// schedule was built for (0 = equal to max_skew). Probes how much slack
  /// the protocol really needs — the paper's Section 4 open question.
  Round actual_skew = 0;
  Attribution attribution = Attribution::kLocalWindow;
  Tuning tuning{};
  Opinion correct = Opinion::kOne;
  /// kBatch routes the run through BatchEngine's statically-dispatched
  /// generic loop (the desync protocol has no SoA specialization yet).
  EngineMode engine = EngineMode::kBatch;
  /// Accepted for interface uniformity; the generic loop is unsharded, so
  /// every value runs identically (which is what the contract promises).
  std::size_t shards = 1;
  /// Per-round eps schedule (desync_burst); static when disabled. Churn is
  /// deliberately NOT offered here — the desync protocol has its own wake
  /// semantics, and overlapping the two would conflate the measurements.
  EnvironmentSchedule schedule{};
};

/// The NaN sentinel for "no convergence measured". Reporting layers map it
/// to null (JSON) / "-" (tables), the same way non-finite doubles render
/// everywhere else.
inline constexpr double kNoConvergence =
    std::numeric_limits<double>::quiet_NaN();

/// Everything one execution yields; TrialOutcome is derived from this.
struct RunDetail {
  Metrics metrics;
  bool success = false;
  double correct_fraction = 0.0;
  double final_bias = 0.0;
  Round protocol_rounds = 0;  ///< scheduled length of the protocol
  std::vector<StageOnePhaseStats> stage1;
  std::vector<StageTwoPhaseStats> stage2;
  /// Desync only: rounds added relative to the synchronous schedule, and
  /// the pre-phase cost when use_clock_sync is set.
  Round desync_overhead = 0;
  Round clock_sync_rounds = 0;
  std::uint64_t clock_sync_messages = 0;
  Round measured_skew = 0;
  /// First probe round at which >= 99% of agents hold an opinion, and do
  /// so stably (sim/series.hpp stable_crossing over the activated probe
  /// series). NaN when the run records no probes or never converges.
  double convergence_round = kNoConvergence;
};

[[nodiscard]] TrialOutcome to_outcome(const RunDetail& detail);

/// Runs one broadcast execution with rng streams derived from
/// (seed, trial), on the substrate `scenario.engine` selects.
/// Deterministic: same inputs, same result — independent of the substrate,
/// the shard count, and the calling thread.
RunDetail run_broadcast(const BroadcastScenario& scenario, std::uint64_t seed,
                        std::size_t trial);

RunDetail run_majority(const MajorityScenario& scenario, std::uint64_t seed,
                       std::size_t trial);

RunDetail run_boost(const BoostScenario& scenario, std::uint64_t seed,
                    std::size_t trial);

RunDetail run_desync(const DesyncScenario& scenario, std::uint64_t seed,
                     std::size_t trial);

/// TrialFn adapters for the Monte-Carlo harness.
TrialFn broadcast_trial_fn(BroadcastScenario scenario);
TrialFn majority_trial_fn(MajorityScenario scenario);
TrialFn boost_trial_fn(BoostScenario scenario);
TrialFn desync_trial_fn(DesyncScenario scenario);

}  // namespace flip
