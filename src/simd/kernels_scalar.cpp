// The always-compiled scalar kernel set: plain loops over the per-lane
// reference in kernel_ref.hpp. This is both the FLIP_SIMD=OFF implementation
// and the runtime fallback a FLIP_SIMD=ON binary dispatches on machines
// without the compiled vector ISA.

#include <cstdint>

#include "simd/kernel_ref.hpp"
#include "simd/simd.hpp"
#include "util/rng.hpp"

namespace flip::simd {
namespace {

void route_block_scalar(std::uint64_t rkey_hi, std::uint64_t rkey_lo,
                        const std::uint32_t* entries, std::size_t count,
                        std::uint64_t n_minus_1, std::uint32_t* to_out,
                        std::uint64_t* word_out) {
  const StreamKey rkey{rkey_hi, rkey_lo};
  for (std::size_t i = 0; i < count; ++i) {
    route_one_ref(rkey, entries[i], n_minus_1, to_out + i, word_out + i);
  }
}

void flip_block_scalar(std::uint64_t ckey_hi, std::uint64_t ckey_lo,
                       const std::uint32_t* recipients, std::size_t count,
                       std::uint64_t threshold, std::uint8_t* flip_out) {
  const StreamKey ckey{ckey_hi, ckey_lo};
  for (std::size_t i = 0; i < count; ++i) {
    flip_out[i] = flip_one_ref(ckey, recipients[i], threshold);
  }
}

}  // namespace

const Kernels& scalar_kernels() noexcept {
  static constexpr Kernels kScalar{&route_block_scalar, &flip_block_scalar,
                                   Isa::kScalar};
  return kScalar;
}

}  // namespace flip::simd
