// NEON (aarch64) kernel set: two 64-bit CounterRng lanes per register.
// Same structure as kernels_avx2.cpp — mul64 from 32x32->64 vmull_u32
// partials, vector Lemire gate with scalar replay of rejected lanes, dense
// output blocks only — see that file for the full design commentary.

#include "simd/simd.hpp"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cstdint>

#include "simd/kernel_ref.hpp"
#include "util/rng.hpp"

namespace flip::simd {
namespace {

/// 64x64->64 multiply: lo*lo + ((lo*hi + hi*lo) << 32).
inline uint64x2_t mul64(uint64x2_t x, uint64x2_t y) noexcept {
  const uint32x2_t x_lo = vmovn_u64(x);
  const uint32x2_t y_lo = vmovn_u64(y);
  const uint32x2_t x_hi = vshrn_n_u64(x, 32);
  const uint32x2_t y_hi = vshrn_n_u64(y, 32);
  const uint64x2_t lolo = vmull_u32(x_lo, y_lo);
  const uint64x2_t cross = vmlal_u32(vmull_u32(x_lo, y_hi), x_hi, y_lo);
  return vaddq_u64(lolo, vshlq_n_u64(cross, 32));
}

/// util/rng.hpp mix64, two lanes at a time, same Mix13 constants.
inline uint64x2_t mix64v(uint64x2_t z) noexcept {
  z = veorq_u64(z, vshrq_n_u64(z, 30));
  z = mul64(z, vdupq_n_u64(kMix13MulA));
  z = veorq_u64(z, vshrq_n_u64(z, 27));
  z = mul64(z, vdupq_n_u64(kMix13MulB));
  return veorq_u64(z, vshrq_n_u64(z, 31));
}

void route_block_neon(std::uint64_t rkey_hi, std::uint64_t rkey_lo,
                      const std::uint32_t* entries, std::size_t count,
                      std::uint64_t n_minus_1, std::uint32_t* to_out,
                      std::uint64_t* word_out) {
  const StreamKey rkey{rkey_hi, rkey_lo};
  const uint64x2_t gamma = vdupq_n_u64(kGoldenGamma);
  const uint64x2_t hi_base = vdupq_n_u64(rkey_hi);
  const uint64x2_t lo_base = vdupq_n_u64(rkey_lo);
  const uint64x2_t s1_mul = vdupq_n_u64(kMix13MulA);
  const uint64x2_t nvec = vdupq_n_u64(n_minus_1);
  const uint32x2_t n32 = vdup_n_u32(static_cast<std::uint32_t>(n_minus_1));
  const uint64x2_t prio = vdupq_n_u64(kPriorityMask);
  const uint64x2_t agent_mask = vdupq_n_u64(kEntryAgentMask);

  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const uint64x2_t e = vmovl_u32(vld1_u32(entries + i));
    const uint64x2_t sender = vandq_u64(e, agent_mask);

    // CounterRng(rkey, sender) state, then draw 1 and draw 2 of the stream.
    const uint64x2_t s0 = vaddq_u64(hi_base, mul64(sender, gamma));
    const uint64x2_t s1 = veorq_u64(lo_base, mul64(sender, s1_mul));
    const uint64x2_t c1 = vaddq_u64(s0, gamma);
    const uint64x2_t d1 = mix64v(veorq_u64(c1, s1));
    const uint64x2_t d2 = mix64v(veorq_u64(vaddq_u64(c1, gamma), s1));

    // 128-bit d1 * n_minus_1 from two 32x32->64 partials (n_minus_1 < 2^32).
    const uint64x2_t lo_prod = vmull_u32(vmovn_u64(d1), n32);
    const uint64x2_t hi_prod = vmull_u32(vshrn_n_u64(d1, 32), n32);
    const uint64x2_t high =
        vshrq_n_u64(vaddq_u64(hi_prod, vshrq_n_u64(lo_prod, 32)), 32);
    const uint64x2_t low = vaddq_u64(lo_prod, vshlq_n_u64(hi_prod, 32));
    const uint64x2_t reject = vcltq_u64(low, nvec);

    // to += (to >= sender): the all-ones mask subtracts as +1.
    const uint64x2_t to = vsubq_u64(high, vcgeq_u64(high, sender));

    vst1q_u64(word_out + i, vorrq_u64(vandq_u64(d2, prio), e));
    to_out[i + 0] = static_cast<std::uint32_t>(vgetq_lane_u64(to, 0));
    to_out[i + 1] = static_cast<std::uint32_t>(vgetq_lane_u64(to, 1));

    // Lanes that hit the Lemire rejection gate (~2^-33 each) replay scalar.
    if (vgetq_lane_u64(reject, 0) != 0) {
      route_one_ref(rkey, entries[i], n_minus_1, to_out + i, word_out + i);
    }
    if (vgetq_lane_u64(reject, 1) != 0) {
      route_one_ref(rkey, entries[i + 1], n_minus_1, to_out + i + 1,
                    word_out + i + 1);
    }
  }
  for (; i < count; ++i) {
    route_one_ref(rkey, entries[i], n_minus_1, to_out + i, word_out + i);
  }
}

void flip_block_neon(std::uint64_t ckey_hi, std::uint64_t ckey_lo,
                     const std::uint32_t* recipients, std::size_t count,
                     std::uint64_t threshold, std::uint8_t* flip_out) {
  const StreamKey ckey{ckey_hi, ckey_lo};
  const uint64x2_t gamma = vdupq_n_u64(kGoldenGamma);
  const uint64x2_t hi_base = vdupq_n_u64(ckey_hi);
  const uint64x2_t lo_base = vdupq_n_u64(ckey_lo);
  const uint64x2_t s1_mul = vdupq_n_u64(kMix13MulA);
  const uint64x2_t thr = vdupq_n_u64(threshold);

  std::size_t i = 0;
  for (; i + 2 <= count; i += 2) {
    const uint64x2_t a = vmovl_u32(vld1_u32(recipients + i));
    const uint64x2_t s0 = vaddq_u64(hi_base, mul64(a, gamma));
    const uint64x2_t s1 = veorq_u64(lo_base, mul64(a, s1_mul));
    const uint64x2_t d = mix64v(veorq_u64(vaddq_u64(s0, gamma), s1));
    const uint64x2_t lt = vcltq_u64(vshrq_n_u64(d, 11), thr);
    flip_out[i + 0] = static_cast<std::uint8_t>(vgetq_lane_u64(lt, 0) & 1);
    flip_out[i + 1] = static_cast<std::uint8_t>(vgetq_lane_u64(lt, 1) & 1);
  }
  for (; i < count; ++i) {
    flip_out[i] = flip_one_ref(ckey, recipients[i], threshold);
  }
}

}  // namespace

const Kernels& neon_kernels() noexcept {
  static constexpr Kernels kNeon{&route_block_neon, &flip_block_neon,
                                 Isa::kNeon};
  return kNeon;
}

}  // namespace flip::simd

#endif  // __aarch64__
