// Kernel-set selection: configure-time (which files CMake compiled, via the
// FLIP_SIMD_HAVE_* macros it defines alongside them) x runtime (CPUID —
// a FLIP_SIMD=ON binary on a pre-AVX2 machine dispatches scalar instead of
// faulting). The active set is one atomic pointer; force_isa()/reset_isa()
// exist for the exactness tests and bench_simd's in-process A/B.

#include "simd/simd.hpp"

#include <atomic>

namespace flip::simd {

const char* isa_name(Isa isa) noexcept {
  switch (isa) {
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
    case Isa::kNeon:
      return "neon";
    case Isa::kScalar:
      break;
  }
  return "scalar";
}

#if FLIP_SIMD_ENABLED

namespace {

/// The kernel set for `isa` iff this build compiled it AND this CPU can run
/// it; nullptr otherwise.
const Kernels* runnable(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return &scalar_kernels();
#if defined(FLIP_SIMD_HAVE_AVX2)
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2") ? &avx2_kernels() : nullptr;
#endif
#if defined(FLIP_SIMD_HAVE_AVX512)
    case Isa::kAvx512:
      return (__builtin_cpu_supports("avx512f") &&
              __builtin_cpu_supports("avx512dq"))
                 ? &avx512_kernels()
                 : nullptr;
#endif
#if defined(FLIP_SIMD_HAVE_NEON)
    case Isa::kNeon:
      return &neon_kernels();
#endif
    default:
      return nullptr;
  }
}

const Kernels& best_kernels() noexcept {
  for (const Isa isa : {Isa::kAvx512, Isa::kAvx2, Isa::kNeon}) {
    if (const Kernels* k = runnable(isa)) return *k;
  }
  return scalar_kernels();
}

std::atomic<const Kernels*> g_active{nullptr};

}  // namespace

Isa best_isa() noexcept { return best_kernels().isa; }

const Kernels& active() noexcept {
  const Kernels* k = g_active.load(std::memory_order_acquire);
  if (k == nullptr) {
    k = &best_kernels();
    g_active.store(k, std::memory_order_release);
  }
  return *k;
}

Isa active_isa() noexcept { return active().isa; }

bool force_isa(Isa isa) noexcept {
  const Kernels* target = runnable(isa);
  if (target == nullptr) return false;
  g_active.store(target, std::memory_order_release);
  return true;
}

void reset_isa() noexcept {
  g_active.store(&best_kernels(), std::memory_order_release);
}

bool enabled() noexcept { return active().isa != Isa::kScalar; }

#else  // !FLIP_SIMD_ENABLED

Isa best_isa() noexcept { return Isa::kScalar; }
const Kernels& active() noexcept { return scalar_kernels(); }
Isa active_isa() noexcept { return Isa::kScalar; }
bool force_isa(Isa isa) noexcept { return isa == Isa::kScalar; }
void reset_isa() noexcept {}

#endif  // FLIP_SIMD_ENABLED

}  // namespace flip::simd
