// AVX-512 kernel set: eight 64-bit CounterRng lanes per register. The
// structural twin of kernels_avx2.cpp (see there for the full design
// commentary) with the two AVX2 pain points gone: vpmullq (AVX-512DQ) is a
// native 64x64->64 multiply, so the mix64 chain is two multiplies per step
// instead of three 32-bit partial products each — and compares produce
// mask registers directly, so the Lemire rejection gate and the flip
// decision cost one instruction per block. Runtime-gated in dispatch.cpp
// behind __builtin_cpu_supports("avx512f") && ("avx512dq").

#include "simd/simd.hpp"

#if defined(__AVX512F__) && defined(__AVX512DQ__) && defined(__x86_64__)

#include <immintrin.h>

#include <cstdint>

#include "simd/kernel_ref.hpp"
#include "util/rng.hpp"

namespace flip::simd {
namespace {

inline __m512i set1(std::uint64_t v) noexcept {
  return _mm512_set1_epi64(static_cast<long long>(v));
}

/// util/rng.hpp mix64, eight lanes at a time, same Mix13 constants.
inline __m512i mix64v(__m512i z) noexcept {
  z = _mm512_xor_si512(z, _mm512_srli_epi64(z, 30));
  z = _mm512_mullo_epi64(z, set1(kMix13MulA));
  z = _mm512_xor_si512(z, _mm512_srli_epi64(z, 27));
  z = _mm512_mullo_epi64(z, set1(kMix13MulB));
  return _mm512_xor_si512(z, _mm512_srli_epi64(z, 31));
}

void route_block_avx512(std::uint64_t rkey_hi, std::uint64_t rkey_lo,
                        const std::uint32_t* entries, std::size_t count,
                        std::uint64_t n_minus_1, std::uint32_t* to_out,
                        std::uint64_t* word_out) {
  const StreamKey rkey{rkey_hi, rkey_lo};
  const __m512i gamma = set1(kGoldenGamma);
  const __m512i hi_base = set1(rkey_hi);
  const __m512i lo_base = set1(rkey_lo);
  const __m512i s1_mul = set1(kMix13MulA);
  const __m512i nvec = set1(n_minus_1);
  const __m512i prio = set1(kPriorityMask);
  const __m512i agent_mask = set1(kEntryAgentMask);
  const __m512i one = set1(1);

  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i e32 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(entries + i));
    const __m512i e = _mm512_cvtepu32_epi64(e32);
    const __m512i sender = _mm512_and_si512(e, agent_mask);

    // CounterRng(rkey, sender) state, then draw 1 and draw 2 of the stream.
    const __m512i s0 =
        _mm512_add_epi64(hi_base, _mm512_mullo_epi64(sender, gamma));
    const __m512i s1 =
        _mm512_xor_si512(lo_base, _mm512_mullo_epi64(sender, s1_mul));
    const __m512i c1 = _mm512_add_epi64(s0, gamma);
    const __m512i d1 = mix64v(_mm512_xor_si512(c1, s1));
    const __m512i d2 =
        mix64v(_mm512_xor_si512(_mm512_add_epi64(c1, gamma), s1));

    // 128-bit d1 * n_minus_1 from two 32x32->64 partials (n_minus_1 < 2^32):
    // recipient = high 64 bits, Lemire gate = low 64 bits < n_minus_1.
    const __m512i lo_prod = _mm512_mul_epu32(d1, nvec);
    const __m512i hi_prod =
        _mm512_mul_epu32(_mm512_srli_epi64(d1, 32), nvec);
    const __m512i high = _mm512_srli_epi64(
        _mm512_add_epi64(hi_prod, _mm512_srli_epi64(lo_prod, 32)), 32);
    const __m512i low =
        _mm512_add_epi64(lo_prod, _mm512_slli_epi64(hi_prod, 32));
    const __mmask8 reject = _mm512_cmplt_epu64_mask(low, nvec);

    // to += (to >= sender), as a masked add.
    const __mmask8 ge = _mm512_cmpge_epu64_mask(high, sender);
    const __m512i to = _mm512_mask_add_epi64(high, ge, high, one);

    _mm512_storeu_si512(word_out + i,
                        _mm512_or_si512(_mm512_and_si512(d2, prio), e));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(to_out + i),
                        _mm512_cvtepi64_epi32(to));

    // Lanes that hit the rejection gate (~2^-33 each) replay scalar.
    unsigned fixup = reject;
    while (fixup != 0) {
      const int lane = __builtin_ctz(fixup);
      fixup &= fixup - 1;
      const std::size_t at = i + static_cast<std::size_t>(lane);
      route_one_ref(rkey, entries[at], n_minus_1, to_out + at, word_out + at);
    }
  }
  for (; i < count; ++i) {
    route_one_ref(rkey, entries[i], n_minus_1, to_out + i, word_out + i);
  }
}

void flip_block_avx512(std::uint64_t ckey_hi, std::uint64_t ckey_lo,
                       const std::uint32_t* recipients, std::size_t count,
                       std::uint64_t threshold, std::uint8_t* flip_out) {
  const StreamKey ckey{ckey_hi, ckey_lo};
  const __m512i gamma = set1(kGoldenGamma);
  const __m512i hi_base = set1(ckey_hi);
  const __m512i lo_base = set1(ckey_lo);
  const __m512i s1_mul = set1(kMix13MulA);
  const __m512i thr = set1(threshold);

  std::size_t i = 0;
  for (; i + 8 <= count; i += 8) {
    const __m256i a32 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(recipients + i));
    const __m512i a = _mm512_cvtepu32_epi64(a32);
    const __m512i s0 =
        _mm512_add_epi64(hi_base, _mm512_mullo_epi64(a, gamma));
    const __m512i s1 =
        _mm512_xor_si512(lo_base, _mm512_mullo_epi64(a, s1_mul));
    const __m512i d =
        mix64v(_mm512_xor_si512(_mm512_add_epi64(s0, gamma), s1));
    const __mmask8 lt =
        _mm512_cmplt_epu64_mask(_mm512_srli_epi64(d, 11), thr);
    for (int lane = 0; lane < 8; ++lane) {
      flip_out[i + static_cast<std::size_t>(lane)] =
          static_cast<std::uint8_t>((lt >> lane) & 1);
    }
  }
  for (; i < count; ++i) {
    flip_out[i] = flip_one_ref(ckey, recipients[i], threshold);
  }
}

}  // namespace

const Kernels& avx512_kernels() noexcept {
  static constexpr Kernels kAvx512{&route_block_avx512, &flip_block_avx512,
                                   Isa::kAvx512};
  return kAvx512;
}

}  // namespace flip::simd

#endif  // __AVX512F__ && __AVX512DQ__ && __x86_64__
