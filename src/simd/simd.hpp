#pragma once
// SIMD kernel dispatch seam for the BatchEngine round phases.
//
// The two hot per-message loops of sim/batch_engine.hpp — the route phase
// (per-sender recipient draw + acceptance priority) and the deliver phase's
// integer-threshold channel flip — are pure arithmetic over counter-keyed
// RNG streams (util/rng.hpp): word k of agent a's stream is
// mix64((key.hi + a*gamma + (k+1)*gamma) ^ (key.lo ^ a*mulA)), a pure
// function of (key, agent, k) with no loop-carried state. That makes the
// draws of 4 (AVX2) or 2 (NEON) agents computable per vector register with
// bit-identical results: there is no stream to get out of order.
//
// This header is the seam. The engine calls the block kernels through a
// Kernels vtable selected once at startup:
//
//  * scalar_kernels() — plain loops over the same CounterRng primitives the
//    engine's scalar path uses. Always compiled; definitionally exact.
//  * avx2_kernels() / neon_kernels() — vector twins, compiled only when the
//    FLIP_SIMD CMake option is ON and the target architecture matches
//    (kernels_avx2.cpp is built with -mavx2 on x86-64, kernels_neon.cpp on
//    aarch64). AVX2 is additionally gated at runtime via
//    __builtin_cpu_supports, so a binary built with FLIP_SIMD=ON still runs
//    on a pre-AVX2 machine — it just dispatches scalar.
//
// Exactness contract: every kernel must produce bytes identical to the
// scalar reference for every input (tests/simd_kernels_test.cpp holds each
// block kernel to the CounterRng reference; tests/simd_differential_test.cpp
// holds whole-engine outcomes and counters to the forced-scalar path on
// every registry entry). The engine's own scalar loops stay untouched as
// ground truth — FLIP_SIMD=OFF builds contain no vector code at all.
//
// force_isa() exists for those tests and for bench_simd's in-process A/B:
// it pins the active kernel set for the whole process (not thread-local —
// callers flip it only from single-threaded test/bench setup code).

#include <cstdint>

namespace flip::simd {

enum class Isa : std::uint8_t {
  kScalar = 0,
  kAvx2 = 1,
  kNeon = 2,
  kAvx512 = 3,
};

/// Stable lowercase name ("scalar", "avx2", "neon", "avx512") for reports
/// and the BENCH_simd.json trajectory rows the CI gate keys on.
[[nodiscard]] const char* isa_name(Isa isa) noexcept;

/// Agent id mask of a packed send-list entry (sim/batch_engine.hpp packs
/// `sender | opinion<<31`); mirrored here so the kernels do not depend on
/// the sim layer above them.
inline constexpr std::uint32_t kEntryAgentMask = 0x7fff'ffffu;

/// Priority mask of sim/mailbox.hpp's acceptance_word: the word is the top
/// 32 bits of the sender's priority draw over the (opinion bit | sender)
/// low word. tests/simd_kernels_test.cpp pins the kernels' composition
/// against acceptance_word itself, so the two cannot drift silently.
inline constexpr std::uint64_t kPriorityMask = 0xffff'ffff'0000'0000ULL;

/// Route-phase block kernel. For each packed send-list entry e (31-bit
/// sender id, opinion in bit 31), replays the sender's two route draws:
///   CounterRng rng(rkey, sender);
///   to = uniform_index(rng, n_minus_1); to += (to >= sender);
///   word = (rng() & kPriorityMask) | e;
/// Preconditions: n_minus_1 in [1, 2^32) (the engine enforces n < 2^31).
/// The outputs feed the engine's unchanged scalar scatter/min-combine pass.
using RouteBlockFn = void (*)(std::uint64_t rkey_hi, std::uint64_t rkey_lo,
                              const std::uint32_t* entries, std::size_t count,
                              std::uint64_t n_minus_1, std::uint32_t* to_out,
                              std::uint64_t* word_out);

/// Deliver-phase block kernel: for each recipient, replays the first word
/// of the agent's channel stream and compares against the integer flip
/// threshold (sim/batch_engine.hpp bsc_flip_threshold):
///   CounterRng rng(ckey, to); flip = (rng() >> 11) < threshold;
/// flip_out bytes are 0/1.
using FlipBlockFn = void (*)(std::uint64_t ckey_hi, std::uint64_t ckey_lo,
                             const std::uint32_t* recipients,
                             std::size_t count, std::uint64_t threshold,
                             std::uint8_t* flip_out);

/// One selectable kernel set. Function pointers, not virtuals: the engine
/// loads the set once per phase and calls through it per 256-entry block,
/// so the indirection is amortized across the block.
struct Kernels {
  RouteBlockFn route_block;
  FlipBlockFn flip_block;
  Isa isa;
};

/// The always-available scalar set (plain CounterRng loops).
[[nodiscard]] const Kernels& scalar_kernels() noexcept;

/// Best set this build + this machine can run (scalar when FLIP_SIMD is
/// OFF, the CPU lacks the compiled ISA, or the architecture has no kernel).
[[nodiscard]] Isa best_isa() noexcept;

/// The currently dispatched set / its ISA. Defaults to best_isa().
[[nodiscard]] const Kernels& active() noexcept;
[[nodiscard]] Isa active_isa() noexcept;

/// Pins the active set process-wide. Returns false (and changes nothing)
/// if this build/machine cannot run `isa` — any runnable set can be forced,
/// not just the best one, so tests can exercise e.g. the AVX2 kernels on an
/// AVX-512 machine. Call only from single-threaded setup code (tests,
/// bench A/B harnesses).
bool force_isa(Isa isa) noexcept;

/// Restores active() to best_isa().
void reset_isa() noexcept;

#if FLIP_SIMD_ENABLED
/// True when this build compiled vector kernels at all. `if constexpr
/// (!kCompiled)` folds the SIMD branches out of FLIP_SIMD=OFF builds.
inline constexpr bool kCompiled = true;
/// True when the active set is a vector one (false after force_isa(kScalar)
/// and on machines without the compiled ISA).
[[nodiscard]] bool enabled() noexcept;
#else
inline constexpr bool kCompiled = false;
[[nodiscard]] constexpr bool enabled() noexcept { return false; }
#endif

// Defined only in their architecture's translation unit; dispatch.cpp
// references them under the matching FLIP_SIMD_HAVE_* macro.
[[nodiscard]] const Kernels& avx2_kernels() noexcept;
[[nodiscard]] const Kernels& avx512_kernels() noexcept;
[[nodiscard]] const Kernels& neon_kernels() noexcept;

}  // namespace flip::simd
