// AVX2 kernel set: four 64-bit CounterRng lanes per register. Compiled only
// when the FLIP_SIMD CMake option adds this file (x86-64, built -mavx2);
// dispatch.cpp selects it at runtime behind __builtin_cpu_supports("avx2").
//
// AVX2 has no 64x64->64 multiply (vpmullq is AVX-512DQ), no scatter, and no
// conflict detection, which shapes the whole design:
//
//  * mul64 is emulated from three 32x32->64 vpmuludq partial products —
//    exact, because the discarded high cross terms do not reach bit 63.
//  * Lemire's unbiased uniform_index has a data-dependent rejection loop.
//    The kernel computes the accept-path product for all four lanes and
//    vector-detects the "low 64 bits < n" gate (probability n/2^64 per lane,
//    ~2^-33 at n=10^6); a flagged lane is recomputed wholly through the
//    scalar reference, so rejection redraws replay the exact scalar
//    sequence. Unsigned compares are signed compares with the sign bit
//    flipped (AVX2 only has signed 64-bit compares).
//  * The kernels only fill dense output blocks (recipient + acceptance word,
//    flip bytes). The memory-irregular half of each phase — scatter into
//    shard buckets, min-combine into per-agent slots — stays in the
//    engine's unchanged scalar pass, which also keeps combine-order
//    semantics trivially identical.

#include "simd/simd.hpp"

#if defined(__AVX2__) && defined(__x86_64__)

#include <immintrin.h>

#include <cstdint>

#include "simd/kernel_ref.hpp"
#include "util/rng.hpp"

namespace flip::simd {
namespace {

inline __m256i set1(std::uint64_t v) noexcept {
  return _mm256_set1_epi64x(static_cast<long long>(v));
}

/// 64x64->64 multiply from 32x32->64 partials: lo*lo + ((lo*hi + hi*lo)<<32).
/// (vpmuludq reads the low 32 bits of each 64-bit lane.)
inline __m256i mul64(__m256i x, __m256i y) noexcept {
  const __m256i lolo = _mm256_mul_epu32(x, y);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(x, _mm256_srli_epi64(y, 32)),
                       _mm256_mul_epu32(_mm256_srli_epi64(x, 32), y));
  return _mm256_add_epi64(lolo, _mm256_slli_epi64(cross, 32));
}

/// util/rng.hpp mix64, four lanes at a time, same Mix13 constants.
inline __m256i mix64v(__m256i z) noexcept {
  z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 30));
  z = mul64(z, set1(kMix13MulA));
  z = _mm256_xor_si256(z, _mm256_srli_epi64(z, 27));
  z = mul64(z, set1(kMix13MulB));
  return _mm256_xor_si256(z, _mm256_srli_epi64(z, 31));
}

/// Unsigned a < b via the signed compare with both sign bits flipped.
inline __m256i cmplt_u64(__m256i a, __m256i b) noexcept {
  const __m256i sign = set1(0x8000'0000'0000'0000ULL);
  return _mm256_cmpgt_epi64(_mm256_xor_si256(b, sign),
                            _mm256_xor_si256(a, sign));
}

/// Narrows the low 32 bits of four 64-bit lanes into one 128-bit vector.
inline __m128i narrow_lo32(__m256i v) noexcept {
  const __m256i packed = _mm256_shuffle_epi32(v, _MM_SHUFFLE(2, 0, 2, 0));
  return _mm_unpacklo_epi64(_mm256_castsi256_si128(packed),
                            _mm256_extracti128_si256(packed, 1));
}

void route_block_avx2(std::uint64_t rkey_hi, std::uint64_t rkey_lo,
                      const std::uint32_t* entries, std::size_t count,
                      std::uint64_t n_minus_1, std::uint32_t* to_out,
                      std::uint64_t* word_out) {
  const StreamKey rkey{rkey_hi, rkey_lo};
  const __m256i gamma = set1(kGoldenGamma);
  const __m256i hi_base = set1(rkey_hi);
  const __m256i lo_base = set1(rkey_lo);
  const __m256i s1_mul = set1(kMix13MulA);
  const __m256i nvec = set1(n_minus_1);
  const __m256i prio = set1(kPriorityMask);
  const __m256i agent_mask = set1(kEntryAgentMask);

  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m128i e32 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(entries + i));
    const __m256i e = _mm256_cvtepu32_epi64(e32);
    const __m256i sender = _mm256_and_si256(e, agent_mask);

    // CounterRng(rkey, sender) state, then draw 1 and draw 2 of the stream.
    const __m256i s0 = _mm256_add_epi64(hi_base, mul64(sender, gamma));
    const __m256i s1 = _mm256_xor_si256(lo_base, mul64(sender, s1_mul));
    const __m256i c1 = _mm256_add_epi64(s0, gamma);
    const __m256i d1 = mix64v(_mm256_xor_si256(c1, s1));
    const __m256i d2 =
        mix64v(_mm256_xor_si256(_mm256_add_epi64(c1, gamma), s1));

    // 128-bit d1 * n_minus_1 from two 32x32->64 partials (n_minus_1 < 2^32):
    // recipient = high 64 bits, Lemire gate = low 64 bits < n_minus_1.
    const __m256i lo_prod = _mm256_mul_epu32(d1, nvec);
    const __m256i hi_prod =
        _mm256_mul_epu32(_mm256_srli_epi64(d1, 32), nvec);
    const __m256i high = _mm256_srli_epi64(
        _mm256_add_epi64(hi_prod, _mm256_srli_epi64(lo_prod, 32)), 32);
    const __m256i low =
        _mm256_add_epi64(lo_prod, _mm256_slli_epi64(hi_prod, 32));
    const __m256i reject = cmplt_u64(low, nvec);

    // to += (to >= sender): ids are < 2^31, so the signed compare is exact;
    // the all-ones mask subtracts as +1.
    const __m256i ge = _mm256_or_si256(_mm256_cmpgt_epi64(high, sender),
                                       _mm256_cmpeq_epi64(high, sender));
    const __m256i to = _mm256_sub_epi64(high, ge);

    _mm256_storeu_si256(reinterpret_cast<__m256i*>(word_out + i),
                        _mm256_or_si256(_mm256_and_si256(d2, prio), e));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(to_out + i), narrow_lo32(to));

    // Lanes that hit the rejection gate (~2^-33 each) replay scalar.
    int fixup = _mm256_movemask_pd(_mm256_castsi256_pd(reject));
    while (fixup != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(fixup));
      fixup &= fixup - 1;
      const std::size_t at = i + static_cast<std::size_t>(lane);
      route_one_ref(rkey, entries[at], n_minus_1, to_out + at, word_out + at);
    }
  }
  for (; i < count; ++i) {
    route_one_ref(rkey, entries[i], n_minus_1, to_out + i, word_out + i);
  }
}

void flip_block_avx2(std::uint64_t ckey_hi, std::uint64_t ckey_lo,
                     const std::uint32_t* recipients, std::size_t count,
                     std::uint64_t threshold, std::uint8_t* flip_out) {
  const StreamKey ckey{ckey_hi, ckey_lo};
  const __m256i gamma = set1(kGoldenGamma);
  const __m256i hi_base = set1(ckey_hi);
  const __m256i lo_base = set1(ckey_lo);
  const __m256i s1_mul = set1(kMix13MulA);
  const __m256i thr = set1(threshold);

  std::size_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m128i a32 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(recipients + i));
    const __m256i a = _mm256_cvtepu32_epi64(a32);
    const __m256i s0 = _mm256_add_epi64(hi_base, mul64(a, gamma));
    const __m256i s1 = _mm256_xor_si256(lo_base, mul64(a, s1_mul));
    const __m256i d = mix64v(_mm256_xor_si256(_mm256_add_epi64(s0, gamma), s1));
    // Both sides are < 2^53 after the shift, so the signed compare is exact.
    const __m256i lt = _mm256_cmpgt_epi64(thr, _mm256_srli_epi64(d, 11));
    const int mask = _mm256_movemask_pd(_mm256_castsi256_pd(lt));
    flip_out[i + 0] = static_cast<std::uint8_t>(mask & 1);
    flip_out[i + 1] = static_cast<std::uint8_t>((mask >> 1) & 1);
    flip_out[i + 2] = static_cast<std::uint8_t>((mask >> 2) & 1);
    flip_out[i + 3] = static_cast<std::uint8_t>((mask >> 3) & 1);
  }
  for (; i < count; ++i) {
    flip_out[i] = flip_one_ref(ckey, recipients[i], threshold);
  }
}

}  // namespace

const Kernels& avx2_kernels() noexcept {
  static constexpr Kernels kAvx2{&route_block_avx2, &flip_block_avx2,
                                 Isa::kAvx2};
  return kAvx2;
}

}  // namespace flip::simd

#endif  // __AVX2__ && __x86_64__
