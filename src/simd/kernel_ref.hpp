#pragma once
// Per-lane scalar reference for the SIMD block kernels — the exactness
// anchor every vector path defers to. kernels_scalar.cpp loops over these;
// the AVX2/NEON kernels call them for block tails and for the rare Lemire
// rejection lanes (see route_one_ref). Kept in one header so the scalar
// kernel, the vector fallback lanes, and the tests all replay the very
// same CounterRng sequence as sim/batch_engine.hpp's route/deliver loops.

#include <cstdint>

#include "simd/simd.hpp"
#include "util/rng.hpp"

namespace flip::simd {

/// One sender's route draws, exactly as detail::route_combine /
/// route_scatter perform them: recipient via Lemire's unbiased
/// uniform_index (draw 1, with rejection redraws), self-skip shift, then
/// the acceptance priority (next draw) composed over the packed entry.
inline void route_one_ref(const StreamKey& rkey, std::uint32_t entry,
                          std::uint64_t n_minus_1, std::uint32_t* to_out,
                          std::uint64_t* word_out) {
  const std::uint32_t sender = entry & kEntryAgentMask;
  CounterRng rng(rkey, sender);
  auto to = static_cast<std::uint32_t>(uniform_index(rng, n_minus_1));
  to += (to >= sender);
  *to_out = to;
  *word_out = (rng() & kPriorityMask) | entry;
}

/// One recipient's channel flip, exactly as detail::deliver_stage1/2 do it
/// through BscFlip / ScheduledFlip: first word of the (ckey, agent) stream
/// against the integer threshold.
[[nodiscard]] inline std::uint8_t flip_one_ref(const StreamKey& ckey,
                                               std::uint32_t to,
                                               std::uint64_t threshold) {
  CounterRng rng(ckey, to);
  return (rng() >> 11) < threshold ? std::uint8_t{1} : std::uint8_t{0};
}

}  // namespace flip::simd
