#include "baselines/silent.hpp"

#include <stdexcept>

namespace flip {

SilentListeningProtocol::SilentListeningProtocol(std::size_t n,
                                                 SilentConfig config)
    : config_(std::move(config)),
      pop_(n),
      samples_(n, 0),
      ones_(n, 0) {
  if (config_.samples_needed == 0 || config_.samples_needed % 2 == 0) {
    throw std::invalid_argument(
        "SilentListeningProtocol: samples_needed must be positive and odd");
  }
  pop_.set_opinion(config_.source, config_.correct);
}

void SilentListeningProtocol::collect_sends(Round, std::vector<Message>& out) {
  // The source is the only speaker, ever.
  out.push_back(Message{config_.source, config_.correct});
}

void SilentListeningProtocol::deliver(AgentId to, Opinion bit, Round) {
  if (to == config_.source) return;
  if (samples_[to] >= config_.samples_needed) return;  // already decided
  ++samples_[to];
  if (bit == Opinion::kOne) ++ones_[to];
  if (samples_[to] == config_.samples_needed) {
    const bool majority_one = 2 * ones_[to] > config_.samples_needed;
    pop_.set_opinion(to, majority_one ? Opinion::kOne : Opinion::kZero);
    ++decided_;
  }
}

void SilentListeningProtocol::end_round(Round) {}

bool SilentListeningProtocol::done(Round r) const {
  if (all_decided()) return true;
  return config_.max_rounds != 0 && r + 1 >= config_.max_rounds;
}

double SilentListeningProtocol::current_bias() const {
  return pop_.bias(config_.correct);
}

std::size_t SilentListeningProtocol::current_opinionated() const {
  return pop_.opinionated();
}

}  // namespace flip
