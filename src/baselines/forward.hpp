#pragma once
// Section 1.6 strawman #2: "immediately forward the message you just
// received". An agent adopts the first bit it hears as its opinion and
// starts pushing it every round from the next round on. Information reaches
// the typical agent over a ~log n deep relay tree, so its correctness decays
// as 1/2 + (2 eps)^depth (theory::relay_correct_probability) — the protocol
// spreads fast but spreads noise.
//
// With a PerfectChannel this same class is the classic noiseless push
// rumor-spreading baseline (~log2 n + ln n rounds to inform everyone).

#include <string>
#include <vector>

#include "core/breathe.hpp"
#include "sim/engine.hpp"
#include "sim/population.hpp"

namespace flip {

struct ForwardConfig {
  Opinion correct = Opinion::kOne;
  std::vector<Seed> initial;
  /// Stop after this many rounds (the protocol itself never "finishes";
  /// opinions are frozen once adopted).
  Round duration = 0;
  /// If true, stop as soon as every agent holds an opinion (used when
  /// measuring spreading time rather than final correctness).
  bool stop_when_all_informed = false;
};

class ForwardGossipProtocol final : public Protocol {
 public:
  ForwardGossipProtocol(std::size_t n, ForwardConfig config);

  void collect_sends(Round r, std::vector<Message>& out) override;
  void deliver(AgentId to, Opinion bit, Round r) override;
  void end_round(Round r) override;
  [[nodiscard]] bool done(Round r) const override;
  [[nodiscard]] std::string name() const override { return "forward-gossip"; }
  [[nodiscard]] double current_bias() const override;
  [[nodiscard]] std::size_t current_opinionated() const override;

  [[nodiscard]] const Population& population() const noexcept { return pop_; }
  [[nodiscard]] bool all_informed() const noexcept;
  /// First round after which every agent held an opinion (0 if never).
  [[nodiscard]] Round informed_round() const noexcept {
    return informed_round_;
  }

 private:
  ForwardConfig config_;
  Population pop_;
  /// Agents that adopted an opinion this round (start sending next round).
  std::vector<AgentId> fresh_;
  std::vector<AgentId> senders_;
  Round informed_round_ = 0;
};

}  // namespace flip
