#pragma once
// Pull-based majority dynamics from the related-work section, run through
// the same noisy channel so experiment E9 can show how they fare when their
// noiseless assumptions are violated:
//
//  * kTwoPlusOwn — Doerr et al. [22]: each round every agent samples the
//    opinions of two uniformly random agents and re-sets its opinion to the
//    majority of {own, sample1, sample2}. Converges in O(log n) rounds
//    noiselessly given initial bias Omega(sqrt(log n / n)).
//  * kThreeSamples — the 3-majority dynamics (Becchetti et al. [11]): adopt
//    the majority of three sampled opinions (own excluded).
//
// These baselines are pull-model (they inspect other agents' opinions), so
// they run their own synchronous loop rather than the push Engine; every
// sampled opinion still passes through the NoiseChannel.

#include <cstdint>
#include <string>
#include <vector>

#include "net/channel.hpp"
#include "sim/metrics.hpp"
#include "sim/population.hpp"
#include "util/rng.hpp"

namespace flip {

enum class PullRule { kTwoPlusOwn, kThreeSamples };

struct PullMajorityConfig {
  Opinion correct = Opinion::kOne;
  PullRule rule = PullRule::kTwoPlusOwn;
  /// Initial fraction of agents holding the correct opinion (all agents are
  /// opinionated; these dynamics assume a fully opinionated population).
  double initial_correct_fraction = 0.5;
  Round max_rounds = 0;
};

/// Result of one run.
struct PullMajorityResult {
  bool consensus = false;        ///< everyone agreed on SOME opinion
  bool correct = false;          ///< ... and it was the correct one
  Round rounds = 0;              ///< rounds executed
  double final_correct_fraction = 0.0;
  std::vector<Sample> trajectory;  ///< correct fraction over time (sparse)
};

class PullMajorityDynamics {
 public:
  /// Agents' opinions are dealt deterministically to match
  /// initial_correct_fraction, then positions are irrelevant (the dynamics
  /// sample uniformly). channel and rng must outlive run().
  PullMajorityDynamics(std::size_t n, PullMajorityConfig config,
                       NoiseChannel& channel, Xoshiro256& rng);

  PullMajorityResult run();

  [[nodiscard]] const Population& population() const noexcept { return pop_; }

 private:
  [[nodiscard]] Opinion sample_opinion();
  void step();

  PullMajorityConfig config_;
  NoiseChannel& channel_;
  Xoshiro256& rng_;
  Population pop_;
  std::vector<std::uint8_t> next_;
};

}  // namespace flip
