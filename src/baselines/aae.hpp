#pragma once
// The Angluin–Aspnes–Eisenstat three-state approximate-majority protocol
// ([6] in the paper). Each round every agent pulls the state of one
// uniformly random agent and applies:
//
//     own 0, saw 1  -> blank          own 1, saw 0  -> blank
//     own blank, saw 0/1 -> adopt it  otherwise     -> unchanged
//
// Noiselessly this converges to the initial majority in O(log n) rounds.
// The paper points out it cannot be used in the Flip model because it
// requires THREE symbols while messages carry one bit. To demonstrate the
// failure mode, the noisy variant here misreads a pulled symbol with
// probability 1/2 - eps, replacing it with one of the other two symbols
// uniformly — the closest three-symbol analogue of the binary symmetric
// channel (a substitution documented in DESIGN.md).

#include <cstdint>
#include <string>
#include <vector>

#include "net/message.hpp"
#include "sim/metrics.hpp"
#include "util/rng.hpp"

namespace flip {

enum class AAEState : std::uint8_t { kZero = 0, kOne = 1, kBlank = 2 };

struct AAEConfig {
  Opinion correct = Opinion::kOne;
  /// Initially opinionated agents; the rest start blank. Majority-consensus
  /// workloads put |A| agents here with the prescribed majority split.
  std::size_t initial_correct = 0;
  std::size_t initial_wrong = 0;
  /// 0 disables misreads (the protocol's native noiseless setting).
  double eps = 0.0;
  Round max_rounds = 0;
};

struct AAEResult {
  bool consensus = false;  ///< all agents in the same non-blank state
  bool correct = false;
  Round rounds = 0;
  double final_correct_fraction = 0.0;
};

class ThreeStateAAE {
 public:
  ThreeStateAAE(std::size_t n, AAEConfig config, Xoshiro256& rng);

  AAEResult run();

  [[nodiscard]] std::size_t count(AAEState s) const noexcept;

 private:
  [[nodiscard]] AAEState noisy_read(AAEState actual);
  void step();

  AAEConfig config_;
  Xoshiro256& rng_;
  std::vector<AAEState> state_;
  std::vector<AAEState> next_;
};

}  // namespace flip
