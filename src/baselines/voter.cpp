#include "baselines/voter.hpp"

#include <stdexcept>

namespace flip {

NoisyVoterProtocol::NoisyVoterProtocol(std::size_t n, VoterConfig config)
    : config_(std::move(config)), pop_(n), is_zealot_(n, 0) {
  if (config_.zealots.empty()) {
    throw std::invalid_argument("NoisyVoterProtocol: no zealots");
  }
  if (config_.duration == 0) {
    throw std::invalid_argument("NoisyVoterProtocol: duration must be set");
  }
  senders_.reserve(n);
  fresh_.reserve(n);
  for (const Seed& seed : config_.zealots) {
    pop_.set_opinion(seed.agent, seed.opinion);
    is_zealot_[seed.agent] = 1;
    senders_.push_back(seed.agent);
  }
}

void NoisyVoterProtocol::collect_sends(Round, std::vector<Message>& out) {
  for (const AgentId a : senders_) {
    out.push_back(Message{a, pop_.opinion(a)});
  }
}

void NoisyVoterProtocol::deliver(AgentId to, Opinion bit, Round) {
  if (is_zealot_[to]) return;
  if (!pop_.has_opinion(to)) fresh_.push_back(to);
  pop_.set_opinion(to, bit);  // voter rule: adopt what you hear
}

void NoisyVoterProtocol::end_round(Round) {
  senders_.insert(senders_.end(), fresh_.begin(), fresh_.end());
  fresh_.clear();
}

bool NoisyVoterProtocol::done(Round r) const {
  return r + 1 >= config_.duration;
}

double NoisyVoterProtocol::current_bias() const {
  return pop_.bias(config_.correct);
}

std::size_t NoisyVoterProtocol::current_opinionated() const {
  return pop_.opinionated();
}

}  // namespace flip
