#include "baselines/forward.hpp"

#include <stdexcept>

namespace flip {

ForwardGossipProtocol::ForwardGossipProtocol(std::size_t n,
                                             ForwardConfig config)
    : config_(std::move(config)), pop_(n) {
  if (config_.initial.empty()) {
    throw std::invalid_argument("ForwardGossipProtocol: empty initial set");
  }
  if (config_.duration == 0 && !config_.stop_when_all_informed) {
    throw std::invalid_argument(
        "ForwardGossipProtocol: need a duration or stop_when_all_informed");
  }
  senders_.reserve(n);
  fresh_.reserve(n);
  for (const Seed& seed : config_.initial) {
    pop_.set_opinion(seed.agent, seed.opinion);
    senders_.push_back(seed.agent);
  }
}

void ForwardGossipProtocol::collect_sends(Round, std::vector<Message>& out) {
  for (const AgentId a : senders_) {
    out.push_back(Message{a, pop_.opinion(a)});
  }
}

void ForwardGossipProtocol::deliver(AgentId to, Opinion bit, Round) {
  if (pop_.has_opinion(to)) return;  // first heard bit wins, then frozen
  pop_.set_opinion(to, bit);
  fresh_.push_back(to);
}

void ForwardGossipProtocol::end_round(Round r) {
  senders_.insert(senders_.end(), fresh_.begin(), fresh_.end());
  fresh_.clear();
  if (informed_round_ == 0 && all_informed()) informed_round_ = r + 1;
}

bool ForwardGossipProtocol::done(Round r) const {
  if (config_.stop_when_all_informed && all_informed()) return true;
  return config_.duration != 0 && r + 1 >= config_.duration;
}

double ForwardGossipProtocol::current_bias() const {
  return pop_.bias(config_.correct);
}

std::size_t ForwardGossipProtocol::current_opinionated() const {
  return pop_.opinionated();
}

bool ForwardGossipProtocol::all_informed() const noexcept {
  return pop_.opinionated() == pop_.size();
}

}  // namespace flip
