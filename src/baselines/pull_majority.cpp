#include "baselines/pull_majority.hpp"

#include <cmath>
#include <stdexcept>

namespace flip {

PullMajorityDynamics::PullMajorityDynamics(std::size_t n,
                                           PullMajorityConfig config,
                                           NoiseChannel& channel,
                                           Xoshiro256& rng)
    : config_(std::move(config)),
      channel_(channel),
      rng_(rng),
      pop_(n),
      next_(n, 0) {
  if (config_.max_rounds == 0) {
    throw std::invalid_argument("PullMajorityDynamics: max_rounds must be set");
  }
  if (config_.initial_correct_fraction < 0.0 ||
      config_.initial_correct_fraction > 1.0) {
    throw std::invalid_argument(
        "PullMajorityDynamics: initial_correct_fraction out of [0,1]");
  }
  const auto correct_count = static_cast<std::size_t>(
      std::llround(config_.initial_correct_fraction * static_cast<double>(n)));
  for (AgentId a = 0; a < n; ++a) {
    pop_.set_opinion(a, a < correct_count ? config_.correct
                                          : flip_opinion(config_.correct));
  }
}

Opinion PullMajorityDynamics::sample_opinion() {
  const auto who =
      static_cast<AgentId>(uniform_index(rng_, pop_.size()));
  // The pulled opinion crosses the same noisy channel as a pushed message;
  // erasures (possible only with an ErasureChannel) re-sample.
  for (;;) {
    const auto seen = channel_.transmit(pop_.opinion(who), rng_);
    if (seen) return *seen;
  }
}

void PullMajorityDynamics::step() {
  const std::size_t n = pop_.size();
  for (AgentId a = 0; a < n; ++a) {
    int ones = 0;
    if (config_.rule == PullRule::kTwoPlusOwn) {
      if (pop_.opinion(a) == Opinion::kOne) ++ones;
      if (sample_opinion() == Opinion::kOne) ++ones;
      if (sample_opinion() == Opinion::kOne) ++ones;
    } else {
      for (int i = 0; i < 3; ++i) {
        if (sample_opinion() == Opinion::kOne) ++ones;
      }
    }
    next_[a] = ones >= 2 ? 1 : 0;
  }
  // Synchronous update: all agents switch simultaneously.
  for (AgentId a = 0; a < n; ++a) {
    next_[a] ? pop_.set_opinion(a, Opinion::kOne)
             : pop_.set_opinion(a, Opinion::kZero);
  }
}

PullMajorityResult PullMajorityDynamics::run() {
  PullMajorityResult result;
  const Round probe_every =
      std::max<Round>(1, config_.max_rounds / 64);
  for (Round r = 0; r < config_.max_rounds; ++r) {
    step();
    if (r % probe_every == 0) {
      result.trajectory.push_back(
          {r, pop_.correct_fraction(config_.correct)});
    }
    result.rounds = r + 1;
    const std::size_t good = pop_.count(config_.correct);
    if (good == pop_.size() || good == 0) {
      result.consensus = true;
      result.correct = good == pop_.size();
      break;
    }
  }
  result.final_correct_fraction = pop_.correct_fraction(config_.correct);
  if (!result.consensus) {
    result.correct = false;
  }
  return result;
}

}  // namespace flip
