#pragma once
// The noisy voter model with a zealot source (the physics literature's
// approach to broadcast, refs [49,50] in the paper): every opinionated
// agent pushes its opinion each round; a receiver simply ADOPTS the
// (noisy) bit it accepted. The zealots (initial set) never change opinion.
// The paper predicts long convergence times — the noise keeps re-randomizing
// opinions and the zealot's pull is O(1/n) per round — so the interesting
// measurements are the correct-fraction plateau and time-to-plateau.

#include <string>
#include <vector>

#include "core/breathe.hpp"
#include "sim/engine.hpp"
#include "sim/population.hpp"

namespace flip {

struct VoterConfig {
  Opinion correct = Opinion::kOne;
  std::vector<Seed> zealots;
  Round duration = 0;  ///< voter dynamics never terminate on their own
};

class NoisyVoterProtocol final : public Protocol {
 public:
  NoisyVoterProtocol(std::size_t n, VoterConfig config);

  void collect_sends(Round r, std::vector<Message>& out) override;
  void deliver(AgentId to, Opinion bit, Round r) override;
  void end_round(Round r) override;
  [[nodiscard]] bool done(Round r) const override;
  [[nodiscard]] std::string name() const override { return "noisy-voter"; }
  [[nodiscard]] double current_bias() const override;
  [[nodiscard]] std::size_t current_opinionated() const override;

  [[nodiscard]] const Population& population() const noexcept { return pop_; }

 private:
  VoterConfig config_;
  Population pop_;
  std::vector<std::uint8_t> is_zealot_;
  std::vector<AgentId> senders_;
  std::vector<AgentId> fresh_;
};

}  // namespace flip
