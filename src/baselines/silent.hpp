#pragma once
// Section 1.6 strawman #1 (and the Section 1.4 remark): nobody relays;
// every agent stays silent and waits for enough samples directly from the
// source, then takes their majority. Perfectly reliable — every sample has
// advantage eps — but the source pushes one message per round, so informing
// all n agents to w.h.p. confidence takes Theta(n log n / eps^2) rounds.

#include <string>
#include <vector>

#include "net/message.hpp"
#include "sim/engine.hpp"
#include "sim/population.hpp"

namespace flip {

struct SilentConfig {
  Opinion correct = Opinion::kOne;
  AgentId source = 0;
  /// Samples an agent requires before deciding; odd to avoid ties.
  std::uint64_t samples_needed = 0;
  /// Hard stop (0 = run to completion; beware: Theta(n log n / eps^2)).
  Round max_rounds = 0;
};

class SilentListeningProtocol final : public Protocol {
 public:
  SilentListeningProtocol(std::size_t n, SilentConfig config);

  void collect_sends(Round r, std::vector<Message>& out) override;
  void deliver(AgentId to, Opinion bit, Round r) override;
  void end_round(Round r) override;
  [[nodiscard]] bool done(Round r) const override;
  [[nodiscard]] std::string name() const override { return "silent-listen"; }
  [[nodiscard]] double current_bias() const override;
  [[nodiscard]] std::size_t current_opinionated() const override;

  [[nodiscard]] const Population& population() const noexcept { return pop_; }
  [[nodiscard]] std::size_t decided() const noexcept { return decided_; }
  [[nodiscard]] bool all_decided() const noexcept {
    return decided_ + 1 >= pop_.size();  // the source never "decides"
  }

 private:
  SilentConfig config_;
  Population pop_;
  std::vector<std::uint32_t> samples_;
  std::vector<std::uint32_t> ones_;
  std::size_t decided_ = 0;
};

}  // namespace flip
