#include "baselines/aae.hpp"

#include <algorithm>
#include <stdexcept>

namespace flip {

namespace {
AAEState opinion_state(Opinion o) {
  return o == Opinion::kOne ? AAEState::kOne : AAEState::kZero;
}
}  // namespace

ThreeStateAAE::ThreeStateAAE(std::size_t n, AAEConfig config, Xoshiro256& rng)
    : config_(std::move(config)), rng_(rng) {
  if (n < 2) throw std::invalid_argument("ThreeStateAAE: n < 2");
  if (config_.initial_correct + config_.initial_wrong > n) {
    throw std::invalid_argument("ThreeStateAAE: initial set exceeds n");
  }
  if (config_.max_rounds == 0) {
    throw std::invalid_argument("ThreeStateAAE: max_rounds must be set");
  }
  state_.assign(n, AAEState::kBlank);
  const AAEState good = opinion_state(config_.correct);
  const AAEState bad = opinion_state(flip_opinion(config_.correct));
  for (std::size_t i = 0; i < config_.initial_correct; ++i) state_[i] = good;
  for (std::size_t i = 0; i < config_.initial_wrong; ++i) {
    state_[config_.initial_correct + i] = bad;
  }
  next_ = state_;
}

AAEState ThreeStateAAE::noisy_read(AAEState actual) {
  if (config_.eps <= 0.0) return actual;
  if (!bernoulli(rng_, 0.5 - config_.eps)) return actual;
  // Misread: uniformly one of the two other symbols.
  const auto shift = 1 + uniform_index(rng_, 2);
  return static_cast<AAEState>(
      (static_cast<std::uint64_t>(actual) + shift) % 3);
}

void ThreeStateAAE::step() {
  const std::size_t n = state_.size();
  for (std::size_t a = 0; a < n; ++a) {
    const auto peer = uniform_index(rng_, n);
    const AAEState seen = noisy_read(state_[peer]);
    AAEState me = state_[a];
    if (me == AAEState::kBlank) {
      if (seen != AAEState::kBlank) me = seen;
    } else if (seen != AAEState::kBlank && seen != me) {
      me = AAEState::kBlank;
    }
    next_[a] = me;
  }
  state_.swap(next_);
}

AAEResult ThreeStateAAE::run() {
  AAEResult result;
  const AAEState good = opinion_state(config_.correct);
  for (Round r = 0; r < config_.max_rounds; ++r) {
    step();
    result.rounds = r + 1;
    const std::size_t good_count = count(good);
    const std::size_t blank = count(AAEState::kBlank);
    if (blank == 0 &&
        (good_count == state_.size() || good_count == 0)) {
      result.consensus = true;
      result.correct = good_count == state_.size();
      break;
    }
  }
  result.final_correct_fraction =
      static_cast<double>(count(good)) / static_cast<double>(state_.size());
  return result;
}

std::size_t ThreeStateAAE::count(AAEState s) const noexcept {
  return static_cast<std::size_t>(
      std::count(state_.begin(), state_.end(), s));
}

}  // namespace flip
