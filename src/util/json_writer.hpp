#pragma once
// Minimal streaming JSON writer for the machine-readable reporting path
// (flipsim sweeps, bench --json, the BENCH_*.json trajectory files). Keys
// are emitted in insertion order, so output is byte-stable for a given call
// sequence — the docs and CI diff these files, which is why we do not use
// an unordered DOM. No parsing, no allocation beyond the output string.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace flip {

/// Emits one JSON document through begin/end calls, validating nesting as
/// it goes (mismatched end or a value without a pending key throws
/// std::logic_error). Doubles are rendered shortest-round-trip; NaN and
/// infinities become null, as JSON has no spelling for them.
class JsonWriter {
 public:
  /// indent <= 0 renders compact one-line JSON; otherwise pretty-printed
  /// with `indent` spaces per level.
  explicit JsonWriter(int indent = 2);

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Names the next value inside an object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text);
  JsonWriter& value(double number);
  JsonWriter& value(bool boolean);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(unsigned number) { return value(static_cast<std::uint64_t>(number)); }
  JsonWriter& null();

  /// Shorthand: key(name) followed by value(v).
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  /// The finished document. Throws std::logic_error if containers are
  /// still open.
  [[nodiscard]] const std::string& str() const;

  /// Escapes `text` per RFC 8259 (quotes not included).
  static std::string escape(std::string_view text);
  /// Shortest-round-trip rendering of a finite double ("null" otherwise).
  static std::string number(double value);

 private:
  void before_value();
  void newline();

  std::string out_;
  // One char per open container: '{' or '['; parallel flag = "has items".
  std::string stack_;
  std::string has_items_;
  bool key_pending_ = false;
  bool done_ = false;
  int indent_;
};

}  // namespace flip
