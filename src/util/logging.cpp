#include "util/logging.hpp"

#include <atomic>

namespace flip {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

constexpr std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }

LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, std::string_view message) {
  if (level < log_level()) return;
  std::lock_guard lock(g_mutex);
  std::cerr << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace flip
