#pragma once
// Statistics utilities for Monte-Carlo experiment evaluation: running
// moments, success-probability confidence intervals, order statistics and
// histograms. Everything is plain value types; nothing allocates except the
// sample containers the caller already owns.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace flip {

/// Welford one-pass accumulator for mean and variance.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Standard error of the mean; 0 for fewer than two samples.
  [[nodiscard]] double sem() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A binomial proportion estimate with a Wilson score interval.
struct ProportionCI {
  double estimate = 0.0;  ///< successes / trials
  double low = 0.0;       ///< lower bound of the interval
  double high = 0.0;      ///< upper bound of the interval

  [[nodiscard]] std::string to_string() const;
};

/// Wilson score interval for `successes` out of `trials` at confidence level
/// z (default z=1.96 ~ 95%). Well-behaved at 0 and `trials` successes,
/// unlike the normal approximation. Precondition: trials > 0.
ProportionCI wilson_interval(std::size_t successes, std::size_t trials,
                             double z = 1.96);

/// Interpolated percentile of a sample, p in [0,100]. Copies + sorts.
/// Precondition: !samples.empty().
double percentile(std::span<const double> samples, double p);

/// Median convenience wrapper.
double median(std::span<const double> samples);

/// Fixed-width histogram over [lo, hi); values outside are clamped to the
/// edge bins so no sample is silently lost.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t bin) const;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_low(std::size_t bin) const;
  [[nodiscard]] double bin_high(std::size_t bin) const;
  /// Multi-line ASCII rendering ("[lo, hi) ####### 123").
  [[nodiscard]] std::string render(std::size_t max_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Least-squares fit of log(y) against log(x).
struct PowerLawFit {
  double exponent = 0.0;   ///< slope in log-log space
  double prefactor = 0.0;  ///< exp(intercept): y ~ prefactor * x^exponent
  double r_squared = 0.0;  ///< coefficient of determination in log space
  std::size_t points = 0;  ///< points actually used
};

/// Fits y ~ c * x^k by least squares in log-log space. Points with
/// non-positive x or y are skipped. With fewer than two usable points the
/// fit is all zeros.
PowerLawFit fit_power_law(std::span<const double> xs,
                          std::span<const double> ys);

/// The empirical power-law exponent (fit_power_law().exponent). Used by
/// benches to check scaling claims (e.g. rounds ~ 1/eps^2 should give
/// exponent ~ -2 against eps).
double log_log_slope(std::span<const double> xs, std::span<const double> ys);

}  // namespace flip
