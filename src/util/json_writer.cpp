#include "util/json_writer.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace flip {

JsonWriter::JsonWriter(int indent) : indent_(indent) {}

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;  // UTF-8 passes through byte-for-byte
        }
    }
  }
  return out;
}

std::string JsonWriter::number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec != std::errc{}) return "null";
  return std::string(buf, end);
}

void JsonWriter::newline() {
  if (indent_ <= 0) return;
  out_ += '\n';
  out_.append(stack_.size() * static_cast<std::size_t>(indent_), ' ');
}

void JsonWriter::before_value() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (stack_.empty()) {
    if (!out_.empty()) {
      throw std::logic_error("JsonWriter: only one top-level value");
    }
    return;
  }
  if (stack_.back() == '{') {
    if (!key_pending_) {
      throw std::logic_error("JsonWriter: value inside object needs a key");
    }
    key_pending_ = false;
    return;
  }
  // Array element: separate from the previous one.
  if (has_items_.back() == 'y') out_ += ',';
  has_items_.back() = 'y';
  newline();
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (done_ || stack_.empty() || stack_.back() != '{') {
    throw std::logic_error("JsonWriter: key outside an object");
  }
  if (key_pending_) throw std::logic_error("JsonWriter: key after key");
  if (has_items_.back() == 'y') out_ += ',';
  has_items_.back() = 'y';
  newline();
  out_ += '"';
  out_ += escape(name);
  out_ += indent_ > 0 ? "\": " : "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  stack_ += '{';
  has_items_ += 'n';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  stack_ += '[';
  has_items_ += 'n';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != '{' || key_pending_) {
    throw std::logic_error("JsonWriter: mismatched end_object");
  }
  const bool had_items = has_items_.back() == 'y';
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline();
  out_ += '}';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != '[') {
    throw std::logic_error("JsonWriter: mismatched end_array");
  }
  const bool had_items = has_items_.back() == 'y';
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) newline();
  out_ += ']';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  out_ += '"';
  out_ += escape(text);
  out_ += '"';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const char* text) {
  return value(std::string_view(text));
}

JsonWriter& JsonWriter::value(double num) {
  before_value();
  out_ += number(num);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool boolean) {
  before_value();
  out_ += boolean ? "true" : "false";
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t num) {
  before_value();
  out_ += std::to_string(num);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t num) {
  before_value();
  out_ += std::to_string(num);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

const std::string& JsonWriter::str() const {
  if (!done_) throw std::logic_error("JsonWriter: document incomplete");
  return out_;
}

}  // namespace flip
