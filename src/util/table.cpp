#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace flip {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable: no headers");
}

TextTable& TextTable::row() {
  cells_.emplace_back();
  cells_.back().reserve(headers_.size());
  return *this;
}

TextTable& TextTable::cell(std::string value) {
  if (cells_.empty()) row();
  if (cells_.back().size() >= headers_.size()) {
    throw std::logic_error("TextTable: too many cells in row");
  }
  cells_.back().push_back(std::move(value));
  return *this;
}

TextTable& TextTable::cell(const char* value) { return cell(std::string(value)); }

TextTable& TextTable::cell(double value, int precision) {
  return cell(format_fixed(value, precision));
}

TextTable& TextTable::cell(std::size_t value) {
  return cell(std::to_string(value));
}

TextTable& TextTable::cell(int value) { return cell(std::to_string(value)); }

TextTable& TextTable::cell(bool value) {
  return cell(std::string(value ? "yes" : "no"));
}

const std::string& TextTable::at(std::size_t r, std::size_t c) const {
  return cells_.at(r).at(c);
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& text = c < row.size() ? row[c] : std::string();
      if (c == 0) {
        os << text << std::string(widths[c] - text.size(), ' ');
      } else {
        os << std::string(widths[c] - text.size(), ' ') << text;
      }
      if (c + 1 < headers_.size()) os << "  ";
    }
    os << '\n';
  };

  emit_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c], '-');
    if (c + 1 < headers_.size()) os << "  ";
  }
  os << '\n';
  for (const auto& row : cells_) emit_row(row);
  return os.str();
}

std::string TextTable::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : cells_) emit(row);
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.render();
}

namespace {

/// Pinned spellings for non-finite doubles: stream output of NaN/inf is
/// implementation-defined ("nan" vs "-nan(ind)" etc.), and the table/CSV
/// consumers (docs regeneration, CI diffs) need byte-stable cells. Mirrors
/// JsonWriter::number, which maps the same values to null.
const char* non_finite_name(double value) {
  if (std::isnan(value)) return "nan";
  return value > 0 ? "inf" : "-inf";
}

}  // namespace

std::string format_fixed(double value, int precision) {
  if (!std::isfinite(value)) return non_finite_name(value);
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed << value;
  return os.str();
}

std::string format_sci(double value, int precision) {
  if (!std::isfinite(value)) return non_finite_name(value);
  std::ostringstream os;
  os.precision(precision);
  os << std::scientific << value;
  return os.str();
}

}  // namespace flip
