#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace flip {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sem() const noexcept {
  return count_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(count_));
}

std::string ProportionCI::to_string() const {
  std::ostringstream os;
  os.precision(4);
  os << std::fixed << estimate << " [" << low << ", " << high << "]";
  return os.str();
}

ProportionCI wilson_interval(std::size_t successes, std::size_t trials,
                             double z) {
  if (trials == 0) throw std::invalid_argument("wilson_interval: trials == 0");
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2.0 * n)) / denom;
  const double half =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;
  return ProportionCI{phat, std::max(0.0, center - half),
                      std::min(1.0, center + half)};
}

double percentile(std::span<const double> samples, double p) {
  if (samples.empty()) throw std::invalid_argument("percentile: empty sample");
  std::vector<double> sorted(samples.begin(), samples.end());
  std::sort(sorted.begin(), sorted.end());
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> samples) {
  return percentile(samples, 50.0);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins == 0");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo >= hi");
}

void Histogram::add(double x) noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<long>(std::floor((x - lo_) / width));
  idx = std::clamp(idx, long{0}, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t bin) const {
  return counts_.at(bin);
}

double Histogram::bin_low(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double Histogram::bin_high(std::size_t bin) const {
  return bin_low(bin) + (hi_ - lo_) / static_cast<double>(counts_.size());
}

std::string Histogram::render(std::size_t max_width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  os.precision(4);
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    os << "[" << bin_low(b) << ", " << bin_high(b) << ") ";
    const std::size_t width = counts_[b] * max_width / peak;
    for (std::size_t i = 0; i < width; ++i) os << '#';
    os << ' ' << counts_[b] << '\n';
  }
  return os.str();
}

PowerLawFit fit_power_law(std::span<const double> xs,
                          std::span<const double> ys) {
  const std::size_t n = std::min(xs.size(), ys.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (xs[i] <= 0.0 || ys[i] <= 0.0) continue;
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    syy += ly * ly;
    ++used;
  }
  PowerLawFit fit;
  fit.points = used;
  if (used < 2) return fit;
  const double un = static_cast<double>(used);
  const double sxx_c = un * sxx - sx * sx;
  const double syy_c = un * syy - sy * sy;
  const double sxy_c = un * sxy - sx * sy;
  if (sxx_c == 0.0) return fit;
  fit.exponent = sxy_c / sxx_c;
  fit.prefactor = std::exp((sy - fit.exponent * sx) / un);
  fit.r_squared =
      syy_c == 0.0 ? 1.0 : (sxy_c * sxy_c) / (sxx_c * syy_c);
  return fit;
}

double log_log_slope(std::span<const double> xs, std::span<const double> ys) {
  return fit_power_law(xs, ys).exponent;
}

}  // namespace flip
