#include "util/math.hpp"

#include <cmath>
#include <limits>
#include <numbers>
#include <stdexcept>

namespace flip {

double log_factorial(std::uint64_t n) {
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double log_binomial(std::uint64_t n, std::uint64_t k) {
  if (k > n) return -std::numeric_limits<double>::infinity();
  return log_factorial(n) - log_factorial(k) - log_factorial(n - k);
}

double binomial_pmf(std::uint64_t n, std::uint64_t k, double p) {
  if (k > n) return 0.0;
  if (p <= 0.0) return k == 0 ? 1.0 : 0.0;
  if (p >= 1.0) return k == n ? 1.0 : 0.0;
  const double lg = log_binomial(n, k) + static_cast<double>(k) * std::log(p) +
                    static_cast<double>(n - k) * std::log1p(-p);
  return std::exp(lg);
}

double binomial_tail_ge(std::uint64_t n, std::uint64_t k, double p) {
  if (k == 0) return 1.0;
  if (k > n) return 0.0;
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  // Summing upward from k is stable only when k is at or above the mean
  // (the terms decay). Below the mean, pmf(k) can underflow to 0 while the
  // tail is ~1; compute 1 - P[X' >= n-k+1] with X' ~ Binomial(n, 1-p),
  // whose start IS above its mean, instead.
  if (static_cast<double>(k) < static_cast<double>(n) * p) {
    return 1.0 - binomial_tail_ge(n, n - k + 1, 1.0 - p);
  }
  // Sum pmf(j) for j = k..n using the stable ratio
  //   pmf(j+1)/pmf(j) = (n-j)/(j+1) * p/(1-p),
  // starting from an exactly computed pmf(k).
  const double ratio_base = p / (1.0 - p);
  double term = binomial_pmf(n, k, p);
  double sum = term;
  for (std::uint64_t j = k; j < n; ++j) {
    term *= static_cast<double>(n - j) / static_cast<double>(j + 1) * ratio_base;
    sum += term;
    if (term < sum * 1e-18) break;  // remaining tail is negligible
  }
  return std::min(sum, 1.0);
}

double binomial_tail_le(std::uint64_t n, std::uint64_t k, double p) {
  if (k >= n) return 1.0;
  // P[X <= k] = P[n - X >= n - k] with n - X ~ Binomial(n, 1-p).
  return binomial_tail_ge(n, n - k, 1.0 - p);
}

double chernoff_upper(double mu, double delta) {
  if (mu < 0.0 || delta <= 0.0) {
    throw std::invalid_argument("chernoff_upper: need mu >= 0, delta > 0");
  }
  return std::exp(-delta * delta * mu / 3.0);
}

double chernoff_lower(double mu, double delta) {
  if (mu < 0.0 || delta <= 0.0) {
    throw std::invalid_argument("chernoff_lower: need mu >= 0, delta > 0");
  }
  return std::exp(-delta * delta * mu / 2.0);
}

double stirling_ratio(std::uint64_t n) {
  if (n == 0) throw std::invalid_argument("stirling_ratio: n == 0");
  const double dn = static_cast<double>(n);
  const double log_stirling = 0.5 * std::log(2.0 * std::numbers::pi) +
                              (dn + 0.5) * std::log(dn) - dn;
  return std::exp(log_factorial(n) - log_stirling);
}

double log_n(std::uint64_t n) {
  if (n < 2) throw std::invalid_argument("log_n: n < 2");
  return std::log(static_cast<double>(n));
}

std::uint64_t floor_log(double x, double base) {
  if (x < 1.0 || base <= 1.0) {
    throw std::invalid_argument("floor_log: need x >= 1, base > 1");
  }
  // Compute by repeated multiplication to dodge floating log edge cases at
  // exact powers of the base.
  std::uint64_t k = 0;
  double pow = base;
  while (pow <= x) {
    ++k;
    pow *= base;
  }
  return k;
}

std::uint64_t next_odd(std::uint64_t x) { return x | 1ULL; }

}  // namespace flip
