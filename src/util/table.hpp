#pragma once
// ASCII table and CSV rendering for the benchmark harness. Every experiment
// prints a paper-shaped table through this type so output is uniform and
// machine-extractable (--csv flag in the benches reuses the same rows).

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace flip {

/// A simple column-aligned text table. Cells are strings; numeric helpers
/// format with fixed precision. Rows are rendered right-aligned except the
/// first column.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Starts a new row. Returns *this for chaining cell() calls.
  TextTable& row();

  TextTable& cell(std::string value);
  TextTable& cell(const char* value);
  TextTable& cell(double value, int precision = 3);
  TextTable& cell(std::size_t value);
  TextTable& cell(int value);
  TextTable& cell(bool value);

  [[nodiscard]] std::size_t rows() const noexcept { return cells_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return headers_.size(); }
  [[nodiscard]] const std::string& at(std::size_t r, std::size_t c) const;
  [[nodiscard]] const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }

  /// Renders with a header rule, e.g.
  ///   n        rounds   success
  ///   -------  -------  -------
  ///   1024     512      1.000
  [[nodiscard]] std::string render() const;

  /// RFC-4180-ish CSV (no quoting needed for our numeric content).
  [[nodiscard]] std::string csv() const;

  /// Convenience: render() to the stream.
  friend std::ostream& operator<<(std::ostream& os, const TextTable& table);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

/// Formats a double with the given precision (fixed notation).
std::string format_fixed(double value, int precision);

/// Formats like "1.23e-04" for small probabilities.
std::string format_sci(double value, int precision = 2);

}  // namespace flip
