#include "util/rng.hpp"

namespace flip {

Xoshiro256 make_stream(std::uint64_t seed, std::uint64_t stream) {
  // Mix the stream id through SplitMix64 so that streams 0,1,2,... of the
  // same master seed start from unrelated points of the state space, then
  // take one canonical jump to guard against short-range correlations.
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  Xoshiro256 engine(sm());
  engine.jump();
  return engine;
}

}  // namespace flip
