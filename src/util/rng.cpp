#include "util/rng.hpp"

namespace flip {

Xoshiro256 make_stream(std::uint64_t seed, std::uint64_t stream) {
  // Mix the stream id through SplitMix64 so that streams 0,1,2,... of the
  // same master seed start from unrelated points of the state space, then
  // take one canonical jump to guard against short-range correlations.
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  Xoshiro256 engine(sm());
  engine.jump();
  return engine;
}

std::uint64_t uniform_index(Xoshiro256& rng, std::uint64_t n) {
  // Lemire (2019): multiply-shift with rejection of the biased low range.
  std::uint64_t x = rng();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto low = static_cast<std::uint64_t>(m);
  if (low < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (low < threshold) {
      x = rng();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool bernoulli(Xoshiro256& rng, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_unit(rng) < p;
}

double uniform_unit(Xoshiro256& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

std::uint64_t hypergeometric_ones(Xoshiro256& rng, std::uint64_t total,
                                  std::uint64_t ones, std::uint64_t take) {
  // Sequential draw: the i-th pick is marked with probability
  // ones_left/left. Exact, O(take), and branch-light — `take` is at most a
  // phase's half-length (Theta(1/eps^2) or Theta(log n/eps^2)).
  std::uint64_t ones_left = ones;
  std::uint64_t left = total;
  std::uint64_t picked = 0;
  for (std::uint64_t i = 0; i < take; ++i) {
    if (uniform_index(rng, left) < ones_left) {
      ++picked;
      --ones_left;
    }
    --left;
  }
  return picked;
}

}  // namespace flip
