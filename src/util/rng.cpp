#include "util/rng.hpp"

namespace flip {

Xoshiro256 make_stream(std::uint64_t seed, std::uint64_t stream) {
  // Mix the stream id through SplitMix64 so that streams 0,1,2,... of the
  // same master seed start from unrelated points of the state space, then
  // take one canonical jump to guard against short-range correlations.
  SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  Xoshiro256 engine(sm());
  engine.jump();
  return engine;
}

std::uint64_t hypergeometric_ones(Xoshiro256& rng, std::uint64_t total,
                                  std::uint64_t ones, std::uint64_t take) {
  // Sequential draw: the i-th pick is marked with probability
  // ones_left/left. Exact and O(take) — `take` is at most a phase's
  // half-length (Theta(1/eps^2) or Theta(log n/eps^2)). The hit test is
  // computed branchlessly: its outcome is a ~fair coin, so a conditional
  // branch here would mispredict every other draw — and Stage II phase
  // ends perform about one of these draws per two delivered messages,
  // which made this loop a measurable slice of whole-simulation time.
  std::uint64_t ones_left = ones;
  std::uint64_t left = total;
  std::uint64_t picked = 0;
  for (std::uint64_t i = 0; i < take; ++i) {
    const std::uint64_t hit = uniform_index(rng, left) < ones_left ? 1 : 0;
    picked += hit;
    ones_left -= hit;
    --left;
  }
  return picked;
}

}  // namespace flip
