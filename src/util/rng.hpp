#pragma once
// Deterministic, splittable random number generation for reproducible
// simulation trials.
//
// Design notes:
//  * xoshiro256** is the workhorse engine: fast, 256-bit state, passes BigCrush.
//  * SplitMix64 is used only to expand seeds (as its authors recommend), which
//    lets us derive decorrelated per-trial / per-thread streams from one
//    master seed: stream k of seed s is seeded from SplitMix64(s) skipped to
//    position k. Every simulation object takes an engine by reference
//    (std::uniform_random_bit_generator), never owns global state.

#include <array>
#include <cstdint>
#include <limits>

namespace flip {

/// Seed expander; also a valid (if small-state) generator in its own right.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference code,
/// re-expressed in C++). Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state via SplitMix64, per the authors' guidance.
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : state_{} {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// The canonical 2^128-step jump: advances this engine as if operator()
  /// had been called 2^128 times. Used to carve non-overlapping streams.
  constexpr void jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc{};
    for (std::uint64_t word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if (word & (std::uint64_t{1} << bit)) {
          for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
        }
        (*this)();
      }
    }
    state_ = acc;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_;
};

/// Derives the engine for independent stream `stream` of master seed `seed`.
/// Distinct (seed, stream) pairs give decorrelated engines; the same pair is
/// always the same engine, which is what makes trials replayable.
Xoshiro256 make_stream(std::uint64_t seed, std::uint64_t stream);

// The three draw primitives below are defined inline: they sit on the
// engine's per-message path (recipient choice, reservoir acceptance, channel
// flip), and an out-of-line definition would put a call boundary inside the
// hot loop of every simulation.

/// Uniform integer in [0, n). Unbiased (Lemire's rejection method).
/// Precondition: n > 0.
inline std::uint64_t uniform_index(Xoshiro256& rng, std::uint64_t n) {
  std::uint64_t x = rng();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto low = static_cast<std::uint64_t>(m);
  if (low < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (low < threshold) {
      x = rng();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

/// Uniform double in [0, 1) with 53 random bits.
inline double uniform_unit(Xoshiro256& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// True with probability p (clamped to [0,1]).
inline bool bernoulli(Xoshiro256& rng, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_unit(rng) < p;
}

/// Hypergeometric draw: picks `take` items uniformly without replacement
/// from `total` items of which `ones` are marked, and returns how many
/// marked items were picked. Used by the Stage II rule ("a uniformly random
/// subset of exactly m_i/2 samples") without materializing the samples.
/// Preconditions: ones <= total, take <= total.
std::uint64_t hypergeometric_ones(Xoshiro256& rng, std::uint64_t total,
                                  std::uint64_t ones, std::uint64_t take);

}  // namespace flip
