#pragma once
// Deterministic random number generation for reproducible simulation trials.
//
// Two generator families live here, serving two different contracts:
//
//  * CounterRng — the repo-wide determinism contract. A stateless,
//    counter-based stream (SplitMix64-style finalizer over a 128-bit derived
//    key), keyed by (master_seed, trial, round, agent, purpose). Because a
//    draw is a pure function of its key and word index — never of how many
//    draws other agents made — results are bit-identical across engine
//    substrates, thread counts, and shard counts. Every engine-level draw
//    (recipient routing, acceptance priority, channel noise) and every
//    BreatheProtocol draw is keyed this way.
//  * Xoshiro256 — a conventional sequential engine (fast, 256-bit state,
//    passes BigCrush), retained for protocol-internal streams that are
//    consumed in a fixed sequential order (desync, the baseline dynamics)
//    and for statistical tests. SplitMix64 expands seeds for it, as its
//    authors recommend.

#include <array>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace flip {

/// Seed expander; also a valid (if small-state) generator in its own right.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference code,
/// re-expressed in C++). Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds all 256 bits of state via SplitMix64, per the authors' guidance.
  explicit constexpr Xoshiro256(std::uint64_t seed) noexcept : state_{} {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// The canonical 2^128-step jump: advances this engine as if operator()
  /// had been called 2^128 times. Used to carve non-overlapping streams.
  constexpr void jump() noexcept {
    constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc{};
    for (std::uint64_t word : kJump) {
      for (int bit = 0; bit < 64; ++bit) {
        if (word & (std::uint64_t{1} << bit)) {
          for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
        }
        (*this)();
      }
    }
    state_ = acc;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_;
};

/// Derives the engine for independent stream `stream` of master seed `seed`.
/// Distinct (seed, stream) pairs give decorrelated engines; the same pair is
/// always the same engine, which is what makes trials replayable.
Xoshiro256 make_stream(std::uint64_t seed, std::uint64_t stream);

// ---------------------------------------------------------------------------
// Counter-based streams: the repo-wide determinism contract.
// ---------------------------------------------------------------------------

// Stafford's Mix13 multipliers. Named (rather than inlined literals) so the
// SIMD kernels in src/simd/ broadcast the very same constants into their
// vector lanes — the golden-vector tests then pin one derivation chain, not
// two copies of it.
inline constexpr std::uint64_t kMix13MulA = 0xbf58476d1ce4e5b9ULL;
inline constexpr std::uint64_t kMix13MulB = 0x94d049bb133111ebULL;

/// The SplitMix64 finalizer (Stafford's Mix13 constants): a strong 64-bit
/// bijection. All counter-based keys and words funnel through this.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * kMix13MulA;
  z = (z ^ (z >> 27)) * kMix13MulB;
  return z ^ (z >> 31);
}

inline constexpr std::uint64_t kGoldenGamma = 0x9e3779b97f4a7c15ULL;

/// A 128-bit derived key naming one random stream. Keys are values: copy
/// them freely, store them in configs, derive subkeys without touching the
/// parent. The golden-vector tests in tests/rng_test.cpp pin the whole
/// derivation chain, so the contract cannot drift across platforms.
struct StreamKey {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend constexpr bool operator==(const StreamKey&,
                                   const StreamKey&) noexcept = default;
};

/// Folds a (a, b) pair of words into `k`, yielding an unrelated subkey.
/// Distinct (a, b) pairs give decorrelated subkeys of the same parent.
[[nodiscard]] constexpr StreamKey derive_key(const StreamKey& k,
                                             std::uint64_t a,
                                             std::uint64_t b = 0) noexcept {
  const std::uint64_t hi = mix64(k.hi ^ mix64(a + kGoldenGamma));
  const std::uint64_t lo = mix64(k.lo ^ mix64(b + 2 * kGoldenGamma) ^ hi);
  return StreamKey{hi, lo};
}

/// The root key of one trial: everything random inside trial `trial` of
/// master seed `master_seed` derives from this.
[[nodiscard]] constexpr StreamKey trial_stream_key(
    std::uint64_t master_seed, std::uint64_t trial) noexcept {
  return derive_key(
      StreamKey{mix64(master_seed), mix64(master_seed + kGoldenGamma)}, trial,
      0x747269616cULL);  // "trial"
}

/// What a per-agent stream is FOR. Distinct purposes of the same
/// (trial, round, agent) are independent streams, so adding a draw to one
/// code path can never shift the draws of another.
enum class RngPurpose : std::uint64_t {
  kRoute = 0,     ///< sender side: recipient choice + acceptance priority
  kChannel = 1,   ///< recipient side: noise applied to the accepted message
  kProtocol = 2,  ///< recipient side: protocol-internal per-round draws
  kSubset = 3,    ///< phase-end per-agent draws (Stage II majority subset)
  kSetup = 4,     ///< per-agent scenario setup (desync wake offsets)
  kChurn = 5,     ///< per-agent join/sleep/wake transitions (environment)
  kEnvironment = 6,  ///< round-scoped environment draws (noise-burst lottery)
  // round_stream_key packs the purpose into 3 bits next to the round;
  // kTopology takes the last free value — the lane space is now full, and
  // widening the packing would change every committed golden vector.
  kTopology = 7,  ///< interaction-graph edges (small-world/dynamic rewiring)
};

/// The key shared by every agent's `purpose` stream in round `round`.
/// Engines hoist this out of their per-message loops; the per-agent
/// derivation that remains is two mixes.
[[nodiscard]] constexpr StreamKey round_stream_key(const StreamKey& trial_key,
                                                   RngPurpose purpose,
                                                   std::uint64_t round) noexcept {
  return derive_key(trial_key,
                    (round << 3) | static_cast<std::uint64_t>(purpose), round);
}

/// Stateless counter-based generator: word i of a stream is
/// mix64((s0 + (i+1)*gamma) ^ s1) — a pure function of (key, i). Draws have
/// no serial dependency on any other agent's draws, which is what makes
/// results independent of execution order, and no loop-carried state chain,
/// which is what lets the hot loops pipeline them.
/// Satisfies std::uniform_random_bit_generator.
class CounterRng {
 public:
  using result_type = std::uint64_t;

  /// The stream named by `key` exactly (equals the agent-0 stream of the
  /// same key; purposes keep such streams from ever sharing a key).
  explicit constexpr CounterRng(const StreamKey& key) noexcept
      : s0_(key.hi), s1_(key.lo) {}

  /// Agent `agent`'s stream under a round key — the per-message fast path,
  /// so derivation is two multiplies, no finalizer: the agent perturbs
  /// BOTH state words by independent odd multipliers, which keeps distinct
  /// agents' streams from being shifted copies of each other (the xor mask
  /// differs), and every emitted word still passes through mix64.
  constexpr CounterRng(const StreamKey& round_key, std::uint64_t agent) noexcept
      : s0_(round_key.hi + agent * kGoldenGamma),
        s1_(round_key.lo ^ (agent * kMix13MulA)) {}

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    return mix64((s0_ += kGoldenGamma) ^ s1_);
  }

 private:
  std::uint64_t s0_;
  std::uint64_t s1_;
};

// The draw primitives below are defined inline and templated over the
// generator (Xoshiro256 for sequential streams, CounterRng for keyed ones):
// they sit on the engine's per-message path (recipient choice, acceptance
// priority, channel flip), and an out-of-line definition would put a call
// boundary inside the hot loop of every simulation.

/// Uniform integer in [0, n). Unbiased (Lemire's rejection method).
/// Precondition: n > 0.
template <typename Rng>
inline std::uint64_t uniform_index(Rng& rng, std::uint64_t n) {
  static_assert(std::is_same_v<typename Rng::result_type, std::uint64_t>,
                "uniform_index needs a full-range 64-bit generator");
  std::uint64_t x = rng();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto low = static_cast<std::uint64_t>(m);
  if (low < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (low < threshold) {
      x = rng();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

/// Uniform double in [0, 1) with 53 random bits.
template <typename Rng>
inline double uniform_unit(Rng& rng) {
  return static_cast<double>(rng() >> 11) * 0x1.0p-53;
}

/// True with probability p (clamped to [0,1]).
template <typename Rng>
inline bool bernoulli(Rng& rng, double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform_unit(rng) < p;
}

/// Hypergeometric draw: picks `take` items uniformly without replacement
/// from `total` items of which `ones` are marked, and returns how many
/// marked items were picked. Used by the Stage II rule ("a uniformly random
/// subset of exactly m_i/2 samples") without materializing the samples.
/// Preconditions: ones <= total, take <= total.
///
/// Sequential draw: the i-th pick is marked with probability ones_left/left.
/// Exact and O(take). The hit test is computed branchlessly: its outcome is
/// a ~fair coin, so a conditional branch would mispredict every other draw —
/// and Stage II phase ends perform about one of these draws per two
/// delivered messages.
template <typename Rng>
inline std::uint64_t hypergeometric_ones(Rng& rng, std::uint64_t total,
                                         std::uint64_t ones,
                                         std::uint64_t take) {
  std::uint64_t ones_left = ones;
  std::uint64_t left = total;
  std::uint64_t picked = 0;
  for (std::uint64_t i = 0; i < take; ++i) {
    const std::uint64_t hit = uniform_index(rng, left) < ones_left ? 1 : 0;
    picked += hit;
    ones_left -= hit;
    --left;
  }
  return picked;
}

}  // namespace flip
