#pragma once
// Minimal fixed-size thread pool used to run independent Monte-Carlo trials
// in parallel. Tasks are type-erased thunks; parallel_for is the only
// pattern the library actually needs, so that is the primary API.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace flip {

class ThreadPool {
 public:
  /// Spawns `threads` workers (default: hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Runs body(i) for i in [0, count), distributing indices across workers,
  /// and blocks until all iterations finish. body must be safe to call
  /// concurrently for distinct i. Exceptions from body propagate (the first
  /// one captured) after all iterations complete or are abandoned.
  ///
  /// Re-entrant: body may itself call parallel_for on the same pool (the
  /// sharded BatchEngine does, from inside a parallel trial). While waiting
  /// for its own chunks, a caller HELPS — it drains other queued tasks
  /// instead of sleeping — so nested calls cannot deadlock even when every
  /// worker is blocked inside an outer parallel_for.
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  /// Process-wide shared pool for callers that don't manage their own.
  static ThreadPool& shared();

  /// Process-wide pool with exactly `threads` workers (0 = shared()).
  /// Pools are created on first use and then persist, so repeated sweeps
  /// with the same --threads reuse one set of workers — and with them every
  /// thread_local per-worker scratch — instead of spawning and joining a
  /// fresh pool each time.
  static ThreadPool& sized(std::size_t threads);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace flip
