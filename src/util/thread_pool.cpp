#include "util/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <memory>

namespace flip {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (stopping_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (count == 1 || workers_.size() == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }

  struct Shared {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done_chunks{0};
    std::exception_ptr error;
    std::mutex error_mutex;
    std::mutex done_mutex;
    std::condition_variable done_cv;
  };
  auto shared_state = std::make_shared<Shared>();
  const std::size_t chunks = std::min(count, workers_.size());

  auto chunk_task = [shared_state, count, &body, chunks] {
    for (;;) {
      const std::size_t i =
          shared_state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        body(i);
      } catch (...) {
        std::lock_guard lock(shared_state->error_mutex);
        if (!shared_state->error) {
          shared_state->error = std::current_exception();
        }
        // Drain remaining indices so everyone exits promptly.
        shared_state->next.store(count, std::memory_order_relaxed);
        break;
      }
    }
    if (shared_state->done_chunks.fetch_add(1) + 1 == chunks) {
      std::lock_guard lock(shared_state->done_mutex);
      shared_state->done_cv.notify_all();
    }
  };

  {
    std::lock_guard lock(mutex_);
    // One fewer queued chunk than workers: the calling thread runs one too.
    for (std::size_t c = 0; c + 1 < chunks; ++c) tasks_.push(chunk_task);
  }
  cv_.notify_all();
  chunk_task();  // participate instead of idling

  // Helping wait: our remaining chunks may sit queued behind other tasks —
  // including other callers' parallel_for chunks whose callers are in this
  // same loop. Draining the queue while we wait guarantees global progress
  // (if every thread is here, whoever finds the queue non-empty runs a
  // task; an empty queue means all chunks are already running), so nested
  // parallel_for calls cannot deadlock. The timed wait covers the window
  // where our last chunk is mid-flight on another thread.
  while (shared_state->done_chunks.load() != chunks) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop();
      }
    }
    if (task) {
      task();
      continue;
    }
    std::unique_lock lock(shared_state->done_mutex);
    shared_state->done_cv.wait_for(lock, std::chrono::microseconds(200), [&] {
      return shared_state->done_chunks.load() == chunks;
    });
  }
  if (shared_state->error) std::rethrow_exception(shared_state->error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

ThreadPool& ThreadPool::sized(std::size_t threads) {
  if (threads == 0) return shared();
  static std::mutex cache_mutex;
  // Deliberately leaked: sized pools may be requested from static
  // destructors of other translation units, so their lifetime must not
  // depend on static destruction order. The OS reclaims the threads.
  static auto* cache = new std::vector<std::unique_ptr<ThreadPool>>();
  std::lock_guard lock(cache_mutex);
  for (const auto& pool : *cache) {
    if (pool->size() == threads) return *pool;
  }
  cache->push_back(std::make_unique<ThreadPool>(threads));
  return *cache->back();
}

}  // namespace flip
