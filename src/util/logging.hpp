#pragma once
// Tiny leveled logger. Benches and examples use it for progress lines; the
// library itself logs nothing at default level so test output stays clean.

#include <iostream>
#include <mutex>
#include <sstream>
#include <string_view>

namespace flip {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded. Thread-safe.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Writes one formatted line ("[level] message") to stderr under a lock.
void log_line(LogLevel level, std::string_view message);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << args);
  log_line(level, os.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  detail::log_fmt(LogLevel::kDebug, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
  detail::log_fmt(LogLevel::kInfo, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  detail::log_fmt(LogLevel::kWarn, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
  detail::log_fmt(LogLevel::kError, args...);
}

}  // namespace flip
