#pragma once
// Combinatorial and concentration-bound helpers used by the closed-form
// theory predictions (src/core/theory.hpp, src/core/two_step.hpp).
//
// Everything works in log-space where overflow is a risk; exact binomial
// tail sums are computed with stable incremental ratios.

#include <cstddef>
#include <cstdint>

namespace flip {

/// ln(n!) via lgamma. Exact enough for all our n (< 2^53).
double log_factorial(std::uint64_t n);

/// ln C(n, k); -inf if k > n.
double log_binomial(std::uint64_t n, std::uint64_t k);

/// C(n,k) * p^k * (1-p)^(n-k), computed in log-space. p in [0,1].
double binomial_pmf(std::uint64_t n, std::uint64_t k, double p);

/// P[X >= k] for X ~ Binomial(n, p). Exact sum, numerically stable
/// (incremental pmf ratios from the largest term).
double binomial_tail_ge(std::uint64_t n, std::uint64_t k, double p);

/// P[X <= k] for X ~ Binomial(n, p).
double binomial_tail_le(std::uint64_t n, std::uint64_t k, double p);

/// Chernoff upper-tail bound of Section 1.7, eq. (1):
///   P[X >= (1+delta) mu] <= exp(-delta^2 mu / 3),   0 < delta < 1.
/// Valid for sums of independent (or negatively-correlated, per
/// Panconesi-Srinivasan) Bernoulli variables.
double chernoff_upper(double mu, double delta);

/// Chernoff lower-tail bound of Section 1.7, eq. (2):
///   P[X <= (1-delta) mu] <= exp(-delta^2 mu / 2).
double chernoff_lower(double mu, double delta);

/// Stirling two-sided bound check: returns n! / (sqrt(2 pi) n^{n+1/2} e^{-n}).
/// The paper uses sqrt(2 pi) <= n!/(e^{-n} n^{n+0.5}) <= e; this ratio must
/// lie in [1, e/sqrt(2 pi)]. Exposed so tests can verify the inequality the
/// proof of Claim 2.12 relies on.
double stirling_ratio(std::uint64_t n);

/// Natural log of n, guarding n >= 2 (the paper's "log n" is always of a
/// population size). Precondition: n >= 2.
double log_n(std::uint64_t n);

/// Integer floor(log_b(x)) for x >= 1, b > 1 (used for phase-count T).
std::uint64_t floor_log(double x, double base);

/// Round up to the next odd integer >= x (sample counts gamma = 2r+1 must be
/// odd so majority is never tied).
std::uint64_t next_odd(std::uint64_t x);

}  // namespace flip
