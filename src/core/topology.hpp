#pragma once
// Interaction-graph layer: WHO an agent's push can reach. The paper's model
// is uniform pull-free push over the complete graph — every scenario before
// this layer sampled recipients as uniform_index(n-1). The topologies here
// relax that to sparse families while keeping the repo-wide determinism
// contract intact:
//
//  * complete    — the existing behavior. The identity path: recipient
//                  draws are bit-for-bit the draws the engines always made,
//                  so every committed golden vector and benchmark baseline
//                  still holds.
//  * ring        — k-regular circulant: agent a's out-neighbors are
//                  a +- 1 .. a +- k/2 (mod n). Diameter n/k: the locality
//                  stress case.
//  * grid        — 2-D torus, Chebyshev radius rho: all (dx, dy) != (0, 0)
//                  with |dx|, |dy| <= rho, degree (2 rho + 1)^2 - 1. n is
//                  factored as rows x cols (rows = the largest divisor of n
//                  at most sqrt(n)); agents are row-major.
//  * smallworld  — directed Watts-Strogatz over the k-ring: each of an
//                  agent's k ring edges is independently rewired (with
//                  probability rewire_prob) to a uniform non-self target,
//                  once per trial. Out-degree stays exactly k; rewired
//                  targets may duplicate (standard directed WS).
//  * dynamic     — the small-world rewiring redrawn EVERY ROUND: the graph
//                  itself churns under the protocol.
//
// Determinism: a neighbor set is a pure function of (trial key, round,
// agent) through the RngPurpose::kTopology counter lane. Edge j of agent a
// reads its own stream CounterRng(topo_round_key, a * kTopologyEdgeStride
// + j) — random access to any edge without replaying edges 0..j-1, and no
// dependence on any other agent's draws — so the classic Engine, the
// sharded BatchEngine, and every thread/shard count see the identical
// graph. Static kinds key the lane by the kTopologyStaticRound sentinel
// (one graph per trial); dynamic keys it by the round.
//
// The engines consume this through two calls on the route hot path:
// draw_bound() — the range of the recipient index draw (degree, or n-1 on
// the complete graph: the ONE bound the scalar, SIMD and sharded routes
// share) — and recipient(), which maps the drawn index to an agent id.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "net/message.hpp"
#include "util/rng.hpp"

namespace flip {

enum class TopologyKind : std::uint8_t {
  kComplete = 0,
  kRing = 1,
  kGrid = 2,
  kSmallWorld = 3,
  kDynamic = 4,
};

[[nodiscard]] constexpr std::string_view topology_kind_name(
    TopologyKind kind) noexcept {
  switch (kind) {
    case TopologyKind::kRing:
      return "ring";
    case TopologyKind::kGrid:
      return "grid";
    case TopologyKind::kSmallWorld:
      return "smallworld";
    case TopologyKind::kDynamic:
      return "dynamic";
    case TopologyKind::kComplete:
      break;
  }
  return "complete";
}

/// Per-edge stream stride inside the kTopology lane: edge j of agent a is
/// the stream (topo key, a * stride + j). Also the degree ceiling for the
/// rewired kinds — validate() enforces k <= stride so streams of distinct
/// (agent, edge) pairs can never collide.
inline constexpr std::uint64_t kTopologyEdgeStride = 64;

/// The pseudo-round keying the STATIC kinds' rewire draws (smallworld draws
/// its graph once per trial). Far above any real round, so the static graph
/// stream can never collide with a dynamic per-round stream; the kChurn
/// lane uses the same sentinel value safely because the purpose bits of
/// round_stream_key differ.
inline constexpr std::uint64_t kTopologyStaticRound = (~std::uint64_t{0}) >> 3;

/// What the user asks for: n-independent parameters of a graph family.
/// n-dependent validation (k <= n-2, grid factorization) happens in
/// ResolvedTopology::resolve once the population size is known.
struct TopologySpec {
  TopologyKind kind = TopologyKind::kComplete;
  /// Out-degree of ring / smallworld / dynamic. Must be even (ring offsets
  /// come in +-pairs) and, for the rewired kinds, <= kTopologyEdgeStride.
  std::size_t k = 8;
  /// Chebyshev radius of the grid kind; degree (2*radius + 1)^2 - 1.
  std::size_t radius = 1;
  /// Per-edge rewire probability of smallworld / dynamic.
  double rewire_prob = 0.1;

  [[nodiscard]] bool complete() const noexcept {
    return kind == TopologyKind::kComplete;
  }

  /// Throws std::invalid_argument on n-independent violations: odd or
  /// too-small k, zero radius, rewire_prob outside [0, 1].
  void validate() const;

  /// "complete", "ring(k=8)", "grid(r=2)", "smallworld(k=8 p=0.1)",
  /// "dynamic(k=8 p=0.1)". Comma-free, so it embeds into CSV cells
  /// unquoted, like the schedule/churn describe() strings.
  [[nodiscard]] std::string describe() const;

  /// Parses a CLI spec:
  ///   complete
  ///   ring[:K]                 k-regular ring (default k = 8)
  ///   grid[:RADIUS]            2-D torus, Chebyshev radius (default 1)
  ///   smallworld[:K[:PROB]]    Watts-Strogatz (defaults k = 8, p = 0.1)
  ///   dynamic[:K[:PROB]]       per-round rewiring (same defaults)
  /// Throws std::invalid_argument (message names the offending piece).
  static TopologySpec parse(std::string_view spec);

  friend bool operator==(const TopologySpec&,
                         const TopologySpec&) noexcept = default;
};

/// A TopologySpec bound to a population size: the object the engines'
/// route phases consult. resolve() performs the n-dependent validation and
/// precomputes the grid factorization; everything after that is branch-lean
/// inline arithmetic on the per-message path.
class ResolvedTopology {
 public:
  /// Default: the complete graph over n = 2 (the smallest population any
  /// engine accepts). Exists so engines can hold one by value.
  ResolvedTopology() = default;

  /// Binds `spec` to population `n`. Throws std::invalid_argument with an
  /// actionable message when the family does not fit the population:
  /// k > n - 2, or no grid factorization with both sides >= 2*radius + 1.
  static ResolvedTopology resolve(const TopologySpec& spec, std::size_t n);

  [[nodiscard]] TopologyKind kind() const noexcept { return spec_.kind; }
  [[nodiscard]] const TopologySpec& spec() const noexcept { return spec_; }
  [[nodiscard]] bool complete() const noexcept { return spec_.complete(); }
  /// True when the graph is redrawn every round (the dynamic kind).
  [[nodiscard]] bool dynamic_rewire() const noexcept {
    return spec_.kind == TopologyKind::kDynamic;
  }
  /// True when neighbor lookups read the kTopology lane (the rewired
  /// kinds); ring/grid/complete are pure arithmetic and ignore the key.
  [[nodiscard]] bool keyed() const noexcept {
    return spec_.kind == TopologyKind::kSmallWorld || dynamic_rewire();
  }

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  /// Out-degree of every agent (degree-uniform by construction);
  /// n - 1 on the complete graph.
  [[nodiscard]] std::uint64_t degree() const noexcept { return degree_; }
  /// The range of the per-message recipient index draw — the single bound
  /// the scalar, SIMD and sharded route paths share. Equals degree().
  [[nodiscard]] std::uint64_t draw_bound() const noexcept { return degree_; }
  /// Grid factorization (rows * cols == n, row-major agent layout);
  /// meaningful for the grid kind only.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  /// The kTopology-lane key the rewired kinds read in round `r`: per-round
  /// for dynamic, the kTopologyStaticRound sentinel (one graph per trial)
  /// for smallworld. Callers hoist this out of the per-message loop, like
  /// the route/channel round keys.
  [[nodiscard]] StreamKey round_key(const StreamKey& trial_key,
                                    std::uint64_t r) const noexcept {
    return round_stream_key(trial_key, RngPurpose::kTopology,
                            dynamic_rewire() ? r : kTopologyStaticRound);
  }

  /// Out-neighbor j (0 <= j < degree()) of agent `a`. Pure function of
  /// (topo_key, a, j); never returns `a` itself. `topo_key` is read by the
  /// rewired kinds only.
  [[nodiscard]] AgentId neighbor(const StreamKey& topo_key, AgentId a,
                                 std::uint64_t j) const {
    switch (spec_.kind) {
      case TopologyKind::kRing:
        return ring_neighbor(a, j);
      case TopologyKind::kGrid:
        return grid_neighbor(a, j);
      case TopologyKind::kSmallWorld:
      case TopologyKind::kDynamic: {
        // Edge j's own stream: one bernoulli (rewire?) then, on rewire,
        // one uniform draw over the n-1 non-self targets.
        CounterRng erng(topo_key,
                        static_cast<std::uint64_t>(a) * kTopologyEdgeStride +
                            j);
        if (bernoulli(erng, spec_.rewire_prob)) {
          auto t = static_cast<AgentId>(uniform_index(erng, n_ - 1));
          t += (t >= a);
          return t;
        }
        return ring_neighbor(a, j);
      }
      case TopologyKind::kComplete:
        break;
    }
    // Complete: index j enumerates the n-1 other agents directly.
    auto t = static_cast<AgentId>(j);
    t += (t >= a);
    return t;
  }

  /// One recipient draw for sender `a`: uniform over its out-neighbors.
  /// On the complete graph this is EXACTLY the historical formula
  /// (uniform_index(rng, n-1) + self-skip) — same words consumed, same
  /// recipient — so the identity path costs nothing and changes nothing.
  template <typename Rng>
  [[nodiscard]] AgentId recipient(Rng& rng, const StreamKey& topo_key,
                                  AgentId a) const {
    const std::uint64_t j = uniform_index(rng, degree_);
    if (spec_.kind == TopologyKind::kComplete) {
      auto t = static_cast<AgentId>(j);
      t += (t >= a);
      return t;
    }
    return neighbor(topo_key, a, j);
  }

 private:
  [[nodiscard]] AgentId ring_neighbor(AgentId a, std::uint64_t j) const {
    // Offsets +1..+k/2 then -1..-k/2; k <= n-2 keeps all k distinct and
    // non-self (resolve() enforces it).
    const std::uint64_t half = static_cast<std::uint64_t>(spec_.k) / 2;
    const std::uint64_t off = j < half ? j + 1 : j - half + 1;
    const std::uint64_t base = j < half ? a + off : a + n_ - off;
    return static_cast<AgentId>(base >= n_ ? base - n_ : base);
  }

  [[nodiscard]] AgentId grid_neighbor(AgentId a, std::uint64_t j) const {
    // Row-major enumeration of the (2r+1)^2 Chebyshev window with the
    // center skipped: jj = j, shifted past the (0,0) cell.
    const std::uint64_t w = 2 * static_cast<std::uint64_t>(spec_.radius) + 1;
    const std::uint64_t center = (w * w - 1) / 2;
    const std::uint64_t jj = j + (j >= center);
    const std::uint64_t dy = jj / w;  // 0..2r; row offset dy - r
    const std::uint64_t dx = jj % w;
    const std::uint64_t row = a / cols_;
    const std::uint64_t col = a % cols_;
    // rows_/cols_ >= w (resolve() enforces it), so adding (rows_ - r + dy)
    // stays within one modulus reduction of the torus.
    const std::uint64_t r2 =
        (row + rows_ + dy - spec_.radius) % rows_;
    const std::uint64_t c2 =
        (col + cols_ + dx - spec_.radius) % cols_;
    return static_cast<AgentId>(r2 * cols_ + c2);
  }

  TopologySpec spec_{};
  std::size_t n_ = 2;
  std::uint64_t degree_ = 1;  // complete over n = 2
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

}  // namespace flip
