#include "core/desync.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "sim/mailbox.hpp"

namespace flip {

DesyncBreatheProtocol::DesyncBreatheProtocol(const Params& params,
                                             DesyncConfig config,
                                             Xoshiro256& rng)
    : params_(params),
      config_(std::move(config)),
      rng_(rng),
      pop_(params.n()) {
  const std::size_t n = params_.n();
  if (config_.wake.size() != n) {
    throw std::invalid_argument("DesyncBreatheProtocol: wake.size() != n");
  }
  if (config_.base.initial.empty()) {
    throw std::invalid_argument("DesyncBreatheProtocol: empty initial set");
  }
  Round max_wake = 0;
  for (Round w : config_.wake) {
    if (w > config_.max_skew && !config_.allow_excess_skew) {
      throw std::invalid_argument(
          "DesyncBreatheProtocol: wake offset exceeds max_skew D");
    }
    max_wake = std::max(max_wake, w);
  }

  // Unified phase list: Stage I phases start_phase..T+1, then Stage II.
  const StageOneSchedule& s1 = params_.stage1();
  const StageTwoSchedule& s2 = params_.stage2();
  if (config_.base.start_phase > s1.T + 1) {
    throw std::invalid_argument("DesyncBreatheProtocol: start_phase > T+1");
  }
  Round base = 0;
  for (std::uint64_t i = config_.base.start_phase; i <= s1.T + 1; ++i) {
    UnifiedPhase p;
    p.stage2 = false;
    p.stage_index = i;
    p.length = s1.phase_length(i);
    p.base = base;
    base += p.length;
    phases_.push_back(p);
  }
  for (std::uint64_t i = 0; i <= s2.k; ++i) {
    UnifiedPhase p;
    p.stage2 = true;
    p.stage_index = i;
    p.length = s2.phase_length(i);
    p.base = base;
    p.majority_take = s2.half_length(i);
    base += p.length;
    phases_.push_back(p);
  }

  const Round D = config_.max_skew;
  container_starts_.reserve(phases_.size());
  for (std::size_t j = 0; j < phases_.size(); ++j) {
    container_starts_.push_back(phases_[j].base +
                                static_cast<Round>(j) * D);
  }
  // Last finalization: the latest wake + end of the last container.
  total_rounds_ = base + static_cast<Round>(phases_.size()) * D +
                  std::max(D, max_wake);

  level_.assign(n, kDormantLevel);
  s1_count_.assign(n, 0);
  s1_kept_.assign(n, Opinion::kZero);
  for (auto& v : s2_recv_) v.assign(n, 0);
  for (auto& v : s2_ones_) v.assign(n, 0);

  by_wake_.assign(static_cast<std::size_t>(std::max(D, max_wake)) + 1, {});
  for (AgentId a = 0; a < n; ++a) {
    by_wake_[static_cast<std::size_t>(config_.wake[a])].push_back(a);
  }

  for (const Seed& seed : config_.base.initial) {
    if (seed.agent >= n) {
      throw std::invalid_argument("DesyncBreatheProtocol: seed out of range");
    }
    pop_.set_opinion(seed.agent, seed.opinion);
    level_[seed.agent] = -1;  // sends from unified phase 0 on
  }

  stage1_stats_.resize(phases_.size());
  for (std::size_t j = 0; j < phases_.size(); ++j) {
    stage1_stats_[j].phase = phases_[j].stage_index;
  }
}

Round DesyncBreatheProtocol::container_start(std::size_t j) const {
  return container_starts_[j];
}

Round DesyncBreatheProtocol::container_end(std::size_t j) const {
  return phases_[j].base + phases_[j].length +
         static_cast<Round>(j + 1) * config_.max_skew;
}

std::size_t DesyncBreatheProtocol::container_of(Round t) const {
  // First container whose start is > t, minus one. Containers tile time, so
  // this is exact; times past the schedule clamp to the last phase.
  const auto it = std::upper_bound(container_starts_.begin(),
                                   container_starts_.end(), t);
  if (it == container_starts_.begin()) return 0;
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - container_starts_.begin() - 1,
                               static_cast<std::ptrdiff_t>(phases_.size()) - 1));
}

bool DesyncBreatheProtocol::in_send_window(std::size_t j, Round local) const {
  return local >= container_start(j) &&
         local < container_start(j) + phases_[j].length;
}

void DesyncBreatheProtocol::collect_sends(Round g, std::vector<Message>& out) {
  for (std::size_t w = 0; w < by_wake_.size(); ++w) {
    if (by_wake_[w].empty() || g < w) continue;
    const Round local = g - static_cast<Round>(w);
    const std::size_t j = container_of(local);
    if (!in_send_window(j, local)) continue;
    const bool stage2 = phases_[j].stage2;
    for (const AgentId a : by_wake_[w]) {
      if (!pop_.has_opinion(a)) continue;
      if (!stage2 && level_[a] >= static_cast<std::int64_t>(j)) continue;
      out.push_back(Message{a, pop_.opinion(a)});
    }
  }
}

void DesyncBreatheProtocol::deliver(AgentId to, Opinion bit, Round g) {
  const Round w = config_.wake[to];
  if (g < w) return;  // not awake yet: the message is lost
  const Round local = g - w;
  const std::size_t j = config_.attribution == Attribution::kOracle
                            ? container_of(g)
                            : container_of(local);
  if (!phases_[j].stage2) {
    if (pop_.has_opinion(to)) return;  // Stage I ignores later messages
    if (level_[to] == kDormantLevel) {
      level_[to] = static_cast<std::int64_t>(j);
    }
    if (level_[to] != static_cast<std::int64_t>(j)) return;  // spillover
    ++s1_count_[to];
    if (s1_count_[to] == 1 || uniform_index(rng_, s1_count_[to]) == 0) {
      s1_kept_[to] = bit;
    }
  } else {
    const std::size_t parity = j % 2;
    ++s2_recv_[parity][to];
    if (bit == Opinion::kOne) ++s2_ones_[parity][to];
  }
}

void DesyncBreatheProtocol::end_round(Round g) {
  // Wake class w finalizes phase j at global round w + container_end(j) - 1.
  for (std::size_t j = 0; j < phases_.size(); ++j) {
    const Round end = container_end(j);
    if (g + 1 < end) break;  // containers are ordered; later ones end later
    const Round w = g + 1 - end;
    if (w >= by_wake_.size()) continue;
    for (const AgentId a : by_wake_[static_cast<std::size_t>(w)]) {
      finalize_agent_phase(a, j);
    }
  }
}

void DesyncBreatheProtocol::finalize_agent_phase(AgentId a, std::size_t j) {
  const UnifiedPhase& phase = phases_[j];
  if (!phase.stage2) {
    if (pop_.has_opinion(a)) return;
    if (level_[a] != static_cast<std::int64_t>(j)) return;
    pop_.set_opinion(a, s1_kept_[a]);
    StageOnePhaseStats& stats = stage1_stats_[j];
    ++stats.newly_activated;
    if (s1_kept_[a] == config_.base.correct) ++stats.newly_correct;
    stats.total_activated = pop_.opinionated();
    s1_count_[a] = 0;
  } else {
    const std::size_t parity = j % 2;
    const std::uint64_t recv = s2_recv_[parity][a];
    const std::uint64_t take = phase.majority_take;
    if (recv >= take) {
      const std::uint64_t ones =
          sample_subset_ones(recv, s2_ones_[parity][a], take);
      pop_.set_opinion(a, 2 * ones > take ? Opinion::kOne : Opinion::kZero);
    }
    s2_recv_[parity][a] = 0;
    s2_ones_[parity][a] = 0;
  }
}

std::uint64_t DesyncBreatheProtocol::sample_subset_ones(std::uint64_t total,
                                                        std::uint64_t ones,
                                                        std::uint64_t take) {
  return hypergeometric_ones(rng_, total, ones, take);
}

bool DesyncBreatheProtocol::done(Round g) const {
  return g + 1 >= total_rounds_;
}

std::string DesyncBreatheProtocol::name() const {
  return config_.attribution == Attribution::kOracle
             ? "breathe-desync-oracle"
             : "breathe-desync-local";
}

double DesyncBreatheProtocol::current_bias() const {
  return pop_.bias(config_.base.correct);
}

std::size_t DesyncBreatheProtocol::current_opinionated() const {
  return pop_.opinionated();
}

bool DesyncBreatheProtocol::succeeded() const {
  return pop_.unanimous(config_.base.correct);
}

Round DesyncBreatheProtocol::desync_overhead() const noexcept {
  return static_cast<Round>(phases_.size() + 1) * config_.max_skew;
}

ClockSyncResult run_clock_sync(std::size_t n, AgentId source, Xoshiro256& rng,
                               Round broadcast_len) {
  if (n < 2) throw std::invalid_argument("run_clock_sync: n < 2");
  if (source >= n) throw std::invalid_argument("run_clock_sync: bad source");
  if (broadcast_len == 0) {
    broadcast_len = static_cast<Round>(
        std::ceil(2.0 * std::log(static_cast<double>(n))));
  }

  constexpr Round kNever = std::numeric_limits<Round>::max();
  std::vector<Round> first_heard(n, kNever);
  first_heard[source] = 0;  // the source is informed from the start

  Mailbox mailbox(n);
  ClockSyncResult result;
  std::size_t informed = 1;
  const Round cap = 20 * broadcast_len + 64;  // safety stop, never hit w.h.p.

  Round round = 0;
  for (; round < cap && informed < n; ++round) {
    mailbox.reset();
    for (AgentId a = 0; a < n; ++a) {
      // Informed agents broadcast for broadcast_len rounds after hearing.
      if (first_heard[a] != kNever && round < first_heard[a] + broadcast_len) {
        // The bit is arbitrary (only "a message arrived" matters).
        mailbox.push(Message{a, Opinion::kZero}, rng);
        ++result.messages;
      }
    }
    for (const AgentId to : mailbox.recipients()) {
      if (first_heard[to] == kNever) {
        first_heard[to] = round + 1;  // usable from the next round
        ++informed;
      }
    }
  }
  result.duration = round;
  result.all_activated = informed == n;

  // Wake = clock reset point: 2*broadcast_len after first hearing, then
  // normalized so the earliest wake is 0.
  result.wake.assign(n, 0);
  Round min_wake = kNever;
  Round max_wake = 0;
  for (AgentId a = 0; a < n; ++a) {
    const Round heard = first_heard[a] == kNever ? round : first_heard[a];
    result.wake[a] = heard + 2 * broadcast_len;
    min_wake = std::min(min_wake, result.wake[a]);
    max_wake = std::max(max_wake, result.wake[a]);
  }
  for (Round& w : result.wake) w -= min_wake;
  result.skew = max_wake - min_wake;
  return result;
}

}  // namespace flip
