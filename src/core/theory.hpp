#pragma once
// Closed-form predictions from the paper, used by the benches to print
// "paper says" columns next to measurements and by tests to check measured
// quantities against the proven bounds.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace flip {
namespace theory {

/// The paper's round unit: log(n)/eps^2 (Theorem 2.17). Measured round
/// counts divided by this should be ~constant across n and eps.
double round_unit(std::size_t n, double eps);

/// The paper's message unit: n*log(n)/eps^2 (Theorem 2.17 and the Section
/// 1.4 lower bound).
double message_unit(std::size_t n, double eps);

/// Section 1.4: each agent individually needs Omega(log n / eps^2) samples
/// even straight from the source; this is that quantity with constant 1.
double per_agent_sample_lower_bound(std::size_t n, double eps);

/// Probability that a bit is still correct after being relayed along a path
/// of `depth` noisy hops (Section 1.6): exactly 1/2 + (2 eps)^depth / 2,
/// consistent with the paper's bound 1/2 + (2 eps)^depth.
double relay_correct_probability(double eps, std::uint64_t depth);

/// One sampling step's bias map: a sample from a population with bias delta
/// over a BSC(1/2-eps) is correct with probability 1/2 + 2*eps*delta
/// (the identity used in Claims 2.2/2.8 and Lemma 2.11).
double sampled_bias(double eps, double delta);

/// Stage I bias recursion (Claim 2.8 lower bound): after phases 0..i the
/// newly-activated layer has bias >= eps^(i+1) / 2.
double stage1_bias_lower_bound(double eps, std::uint64_t phase);

/// Claim 2.4 growth envelope for the number of activated agents at the end
/// of phase i (1 <= i <= T): upper (beta+1)^i * X0 and lower /16.
double stage1_growth_upper(std::uint64_t x0, std::uint64_t beta,
                           std::uint64_t phase);
double stage1_growth_lower(std::uint64_t x0, std::uint64_t beta,
                           std::uint64_t phase);

/// Lemma 2.3 item 2: the Stage I output bias is Omega(sqrt(log n / n));
/// this returns sqrt(log n / n) (constant 1).
double stage1_output_bias_unit(std::size_t n);

/// Lemma 2.11 lower bound on the probability that the majority of gamma
/// noisy samples is correct: min{1/2 + 4 delta, 1/2 + 1/100}.
double lemma_2_11_lower_bound(double delta);

/// Lemma 2.14: per-boost-phase bias growth, w.h.p. at least
/// min{1.7 delta, 1/800} (given delta >> sqrt(log n / n)).
double lemma_2_14_boost(double delta);

/// Mean-field model of one Stage II boost phase (used by bench E7 to print
/// predicted columns next to measurements):
///  * an agent is successful iff it accepts >= m/2 messages over the m
///    rounds of the phase; acceptance per round happens with probability
///    1 - (1 - 1/n)^(n-1) (someone picked it and it kept one);
///  * a successful agent ends correct with the exact Lemma-2.11 majority
///    probability for gamma = subset size samples;
///  * an unsuccessful agent keeps its opinion.
/// Returns P[agent successful].
double stage2_success_fraction(std::size_t n, std::uint64_t m);

/// The mean-field bias after one boost phase, starting from bias delta.
double stage2_next_bias(std::size_t n, double eps, double delta,
                        std::uint64_t subset_size, std::uint64_t m);

/// Iterates stage2_next_bias over the k boost phases.
std::vector<double> stage2_bias_trajectory(std::size_t n, double eps,
                                           double delta0,
                                           std::uint64_t subset_size,
                                           std::uint64_t m, std::uint64_t k);

/// Majority-consensus admissibility (Corollary 2.18): |A| must be at least
/// ~log n / eps^2 and the majority-bias at least ~sqrt(log n / |A|). These
/// return the constant-1 units for the two thresholds.
double majority_min_initial_set(std::size_t n, double eps);
double majority_min_bias(std::size_t n, std::size_t a);

/// Theorem 3.1 desync overhead: additive O(D * #phases); with the Section
/// 3.2 reset D = 2 log n and #phases = O(log n), i.e. O(log^2 n). Returns
/// D * phases (the exact extra waiting rounds our modified schedule inserts,
/// before the big-O constant).
double desync_overhead_rounds(std::uint64_t D, std::uint64_t phases);

/// Section 1.6 birthday-paradox bound: with everyone silent, the first
/// agent to hear two messages from the source needs Omega(sqrt(n)) rounds.
double silent_two_message_rounds(std::size_t n);

/// Model validity threshold: eps must exceed n^(-1/2 + eta) (Section 2).
double eps_threshold(std::size_t n, double eta = 0.05);

}  // namespace theory
}  // namespace flip
