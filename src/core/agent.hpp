#pragma once
// Per-agent protocol state. The paper highlights (Section 1.5) that its
// algorithms need only O(log log n + log(1/eps)) memory bits per agent; the
// simulator stores the state in fixed-width fields for speed, and
// agent_state_bits() computes the information-theoretic size a real agent
// would need under a given schedule, which bench E14 reports.

#include <cstdint>
#include <limits>

#include "core/params.hpp"
#include "net/message.hpp"

namespace flip {

/// Compact per-agent state for the two-stage protocol.
struct AgentState {
  static constexpr std::uint32_t kDormant =
      std::numeric_limits<std::uint32_t>::max();

  /// Stage I level: the phase during which the agent was activated
  /// (kDormant until then). The source / initial set has its join phase.
  std::uint32_t level = kDormant;

  /// Messages accepted so far in the current phase (Stage I: arrivals in the
  /// activation phase, for the uniform-random choice; Stage II: samples).
  std::uint32_t recv_count = 0;

  /// Stage II: how many of the received samples carried opinion One.
  std::uint32_t ones_count = 0;

  /// Stage I: reservoir-kept candidate initial opinion (uniform among the
  /// messages heard during the activation phase, per the Stage I rule).
  Opinion kept = Opinion::kZero;

  void reset_phase_counters() noexcept {
    recv_count = 0;
    ones_count = 0;
  }
};

/// Minimal number of state bits an agent needs to run the protocol with
/// schedule `params`, counting: its level (log of the phase count), a
/// round-in-phase counter (log of the longest phase), the current opinion
/// plus the reservoir/kept bit, and the Stage II sample counters (log of the
/// longest phase each). This is the quantity the paper bounds by
/// O(log log n + log(1/eps)).
std::uint64_t agent_state_bits(const Params& params);

}  // namespace flip
