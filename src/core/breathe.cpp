#include "core/breathe.hpp"

#include <stdexcept>

namespace flip {

double StageOnePhaseStats::layer_bias() const noexcept {
  if (newly_activated == 0) return 0.0;
  const auto good = static_cast<double>(newly_correct);
  const auto bad = static_cast<double>(newly_activated - newly_correct);
  return 0.5 * (good - bad) / static_cast<double>(newly_activated);
}

BreatheProtocol::BreatheProtocol(const Params& params, BreatheConfig config,
                                 Xoshiro256& rng)
    : BreatheProtocol(params, std::move(config), StreamKey{rng(), rng()}) {}

BreatheProtocol::BreatheProtocol(const Params& params, BreatheConfig config,
                                 const StreamKey& key)
    : params_(params),
      config_(std::move(config)),
      key_(key),
      pop_(params.n()),
      state_(params.n()),
      prefix_ones_(params.n(), 0) {
  const StageOneSchedule& s1 = params_.stage1();
  if (config_.start_phase > s1.T + 1) {
    throw std::invalid_argument("BreatheProtocol: start_phase > T+1");
  }
  if (config_.initial.empty()) {
    throw std::invalid_argument("BreatheProtocol: empty initial set");
  }

  if (config_.skip_stage1) {
    stage1_offset_ = s1.total_rounds();
    stage1_rounds_ = 0;
  } else {
    stage1_offset_ = s1.phase_start(config_.start_phase);
    stage1_rounds_ = s1.total_rounds() - stage1_offset_;
  }
  total_rounds_ = stage1_rounds_ + params_.stage2().total_rounds();

  opinionated_.reserve(params_.n());
  for (const Seed& seed : config_.initial) {
    if (seed.agent >= params_.n()) {
      throw std::invalid_argument("BreatheProtocol: seed agent out of range");
    }
    if (pop_.has_opinion(seed.agent)) {
      throw std::invalid_argument("BreatheProtocol: duplicate seed agent");
    }
    pop_.set_opinion(seed.agent, seed.opinion);
    // Members of the initial set behave as if activated in the phase before
    // start_phase: they send from the first execution round.
    state_[seed.agent].level =
        config_.start_phase == 0 ? 0
                                 : static_cast<std::uint32_t>(
                                       config_.start_phase - 1);
    opinionated_.push_back(seed.agent);
  }
  senders_ = opinionated_.size();
}

void BreatheProtocol::collect_sends(Round r, std::vector<Message>& out) {
  if (in_stage1(r)) {
    // Exactly the agents opinionated before the current phase send; agents
    // activated mid-phase "breathe" (stay silent) until the phase ends.
    for (std::size_t i = 0; i < senders_; ++i) {
      const AgentId a = opinionated_[i];
      out.push_back(Message{a, pop_.opinion(a)});
    }
  } else {
    // Stage II: every opinionated agent sends its current opinion.
    for (const AgentId a : opinionated_) {
      out.push_back(Message{a, pop_.opinion(a)});
    }
  }
}

void BreatheProtocol::deliver(AgentId to, Opinion bit, Round r) {
  AgentState& st = state_[to];
  if (in_stage1(r)) {
    if (pop_.has_opinion(to)) return;  // Stage I ignores later messages
    const std::uint64_t phase =
        params_.stage1().phase_of_round(stage1_round(r));
    if (st.level == AgentState::kDormant) {
      st.level = static_cast<std::uint32_t>(phase);
      activation_buffer_.push_back(to);
    }
    ++st.recv_count;
    if (config_.stage1_pick == Stage1Pick::kFirstMessage) {
      if (st.recv_count == 1) st.kept = bit;
    } else {
      // Reservoir: the kept message stays uniform among all messages this
      // agent accepted during its activation phase (Stage I rule). The
      // replace/keep coin for the k-th accept comes from the agent's OWN
      // per-round stream (an agent accepts at most one message per round,
      // so (round, agent) keys each accept uniquely), which keeps the
      // decision independent of every other agent's draws.
      if (r != protocol_round_cached_) {
        protocol_round_key_ =
            round_stream_key(key_, RngPurpose::kProtocol, r);
        protocol_round_cached_ = r;
      }
      CounterRng rng(protocol_round_key_, to);
      if (st.recv_count == 1 || uniform_index(rng, st.recv_count) == 0) {
        st.kept = bit;
      }
    }
  } else {
    ++st.recv_count;
    if (bit == Opinion::kOne) {
      ++st.ones_count;
      const StageTwoSchedule& s2 = params_.stage2();
      if (st.recv_count <= s2.half_length(s2.phase_of_round(stage2_round(r)))) {
        ++prefix_ones_[to];
      }
    }
  }
}

void BreatheProtocol::end_round(Round r) {
  if (in_stage1(r)) {
    const StageOneSchedule& s1 = params_.stage1();
    const Round sr = stage1_round(r);
    const std::uint64_t phase = s1.phase_of_round(sr);
    if (sr + 1 == s1.phase_end(phase)) finalize_stage1_phase(phase);
  } else {
    const StageTwoSchedule& s2 = params_.stage2();
    const Round sr = stage2_round(r);
    const std::uint64_t phase = s2.phase_of_round(sr);
    if (sr + 1 == s2.phase_start(phase) + s2.phase_length(phase)) {
      finalize_stage2_phase(phase);
    }
  }
}

void BreatheProtocol::finalize_stage1_phase(std::uint64_t phase) {
  StageOnePhaseStats stats;
  stats.phase = phase;
  stats.newly_activated = activation_buffer_.size();
  for (const AgentId a : activation_buffer_) {
    AgentState& st = state_[a];
    pop_.set_opinion(a, st.kept);
    if (st.kept == config_.correct) ++stats.newly_correct;
    st.reset_phase_counters();
    opinionated_.push_back(a);
  }
  activation_buffer_.clear();
  // From the next phase on, this phase's activees speak too.
  senders_ = opinionated_.size();
  stats.total_activated = opinionated_.size();
  stage1_stats_.push_back(stats);
}

void BreatheProtocol::finalize_stage2_phase(std::uint64_t phase) {
  const StageTwoSchedule& s2 = params_.stage2();
  const std::uint64_t threshold = s2.half_length(phase);
  StageTwoPhaseStats stats;
  stats.phase = phase;

  // Each agent's subset draw comes from its own (phase, agent, kSubset)
  // stream: the scan order of this loop carries no randomness, so the
  // batch engine may run it shard-parallel and still match exactly.
  const StreamKey subset_key =
      round_stream_key(key_, RngPurpose::kSubset, phase);
  for (AgentId a = 0; a < pop_.size(); ++a) {
    AgentState& st = state_[a];
    if (st.recv_count >= threshold) {
      // Successful agent: majority over a subset of exactly `threshold`
      // samples (odd, so never tied) — uniformly random per the paper's
      // rule, or the arrival-order prefix under Remark 2.10's variant.
      ++stats.successful;
      std::uint64_t ones = prefix_ones_[a];
      if (config_.stage2_subset != Stage2Subset::kPrefixSubset) {
        CounterRng rng(subset_key, a);
        ones = hypergeometric_ones(rng, st.recv_count, st.ones_count,
                                   threshold);
      }
      const Opinion verdict =
          2 * ones > threshold ? Opinion::kOne : Opinion::kZero;
      if (!pop_.has_opinion(a)) opinionated_.push_back(a);
      pop_.set_opinion(a, verdict);
    }
    st.reset_phase_counters();
    prefix_ones_[a] = 0;
  }
  senders_ = opinionated_.size();
  stats.correct_fraction = pop_.correct_fraction(config_.correct);
  stats.bias = pop_.bias(config_.correct);
  stage2_stats_.push_back(stats);
}

bool BreatheProtocol::done(Round r) const { return r + 1 >= total_rounds_; }

std::string BreatheProtocol::name() const {
  return config_.initial.size() == 1 ? "breathe-broadcast"
                                     : "breathe-majority";
}

double BreatheProtocol::current_bias() const {
  return pop_.bias(config_.correct);
}

std::size_t BreatheProtocol::current_opinionated() const {
  return pop_.opinionated();
}

bool BreatheProtocol::succeeded() const {
  return pop_.unanimous(config_.correct);
}

BreatheConfig broadcast_config(Opinion correct) {
  BreatheConfig config;
  config.correct = correct;
  config.initial = {Seed{0, correct}};
  config.start_phase = 0;
  return config;
}

BreatheConfig majority_config(const Params& params, std::size_t a,
                              std::size_t correct_count, Opinion correct) {
  if (a > params.n() || correct_count > a) {
    throw std::invalid_argument("majority_config: bad initial set sizes");
  }
  BreatheConfig config;
  config.correct = correct;
  config.initial.reserve(a);
  for (std::size_t i = 0; i < a; ++i) {
    config.initial.push_back(
        Seed{static_cast<AgentId>(i),
             i < correct_count ? correct : flip_opinion(correct)});
  }
  config.start_phase = params.join_phase_for_initial_set(a);
  return config;
}

}  // namespace flip
