#pragma once
// Dynamic-environment layer: what the world does to the protocol while it
// runs. The paper's model fixes the channel advantage eps and the agent set
// for a whole execution; this layer relaxes both, deterministically:
//
//  * EnvironmentSchedule — a piecewise eps schedule (step / ramp segments
//    over a base eps, plus stochastic correlated noise bursts). Evaluated
//    per round as a pure function of (trial key, round): the burst lottery
//    draws from the trial's RngPurpose::kEnvironment counter stream, keyed
//    by the burst window index, so the realized schedule is bit-identical
//    across engine substrates, thread counts, and shard counts.
//  * ChurnSpec — per-round agent join/sleep/wake events. Every agent's
//    transition at round r is one draw from the stateless stream
//    (trial, round, agent, RngPurpose::kChurn): an awake agent falls asleep
//    with sleep_prob, an asleep one wakes with wake_prob, and start_asleep
//    seeds the initial asleep set (agents that "join" the execution when
//    their first wake draw fires). Asleep agents neither send nor accept;
//    they keep their opinion and resume when they wake. Because the draw is
//    keyed per (round, agent), both the classic Engine and the sharded
//    BatchEngine replay the same events — shards update their own agent
//    blocks and merge the liveness deltas exactly, like opinion deltas.
//
// The schedule deliberately does NOT recalibrate Params: the protocol's
// phase lengths stay sized for the scenario's nominal eps, and the
// environment then under- or over-delivers on that promise. That is the
// point — the model only guarantees noise "with probability at most
// 1/2 - eps", and these scenarios probe what happens at and past that
// boundary.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/message.hpp"
#include "util/rng.hpp"

namespace flip {

using Round = std::uint64_t;  // as in sim/metrics.hpp

/// One piecewise segment of an eps schedule: over rounds [begin, end) the
/// channel advantage interpolates linearly from eps_from to eps_to (a step
/// when the two are equal). end == 0 means "until the end of the run" and
/// is materialized by EnvironmentSchedule::resolved() once the execution
/// length is known.
struct EpsSegment {
  Round begin = 0;
  Round end = 0;
  double eps_from = 0.0;
  double eps_to = 0.0;
};

/// A per-round eps schedule. Disabled (enabled() == false) means "static
/// eps": the base (or the scenario's nominal) eps for every round.
struct EnvironmentSchedule {
  /// eps outside every segment and burst. 0 = inherit the scenario's eps
  /// (filled in by resolved()).
  double base_eps = 0.0;

  /// Piecewise segments, evaluated in order; the last segment that has
  /// STARTED by a round wins (a finished segment holds its eps_to — a ramp
  /// is a transition, not an excursion). Rounds before every segment use
  /// base_eps.
  std::vector<EpsSegment> segments;

  /// Stochastic correlated bursts: the run is tiled into aligned windows of
  /// burst_len rounds, and each window independently is a burst with
  /// probability burst_prob (one draw from the trial's kEnvironment stream,
  /// keyed by the window index). During a burst eps drops to burst_eps for
  /// every message of every round of the window — correlated noise, unlike
  /// the per-message independence of the static BSC.
  double burst_prob = 0.0;
  Round burst_len = 0;
  double burst_eps = 0.0;

  [[nodiscard]] bool enabled() const noexcept {
    return !segments.empty() || burst_prob > 0.0;
  }

  /// Throws std::invalid_argument unless every eps is in (0, 0.5], probs
  /// are in [0, 1], and segment bounds are ordered. A disabled schedule is
  /// always valid.
  void validate() const;

  /// The channel advantage of round r. Pure function of (key, r): the only
  /// randomness is the burst lottery, drawn from the kEnvironment stream of
  /// `key` (one trial's root key). Call validate()/resolved() first; open
  /// segment ends (end == 0) are treated as "forever" here.
  [[nodiscard]] double eps_at(const StreamKey& key, Round r) const;

  /// The deterministic piecewise-segment eps of round r — eps_at without
  /// the burst lottery. Shared by eps_at and expected_eps_at.
  [[nodiscard]] double segment_eps_at(Round r) const;

  /// The EXPECTED channel advantage of round r: the deterministic segment
  /// value blended with the burst lottery's expectation,
  ///   (1 - burst_prob) * segment_eps(r) + burst_prob * burst_eps.
  /// No randomness is consumed. Because per-message correctness is LINEAR
  /// in eps (P(correct) = 1/2 + 2*eps*delta), this expectation is exact in
  /// the mean — the identity the surrogate engine's rate modifiers rest on.
  [[nodiscard]] double expected_eps_at(Round r) const;

  /// A copy with base_eps == 0 replaced by `nominal_eps` and open segment
  /// ends replaced by `total_rounds` (segments that start at or past the
  /// end are dropped). Engines and channels consume resolved schedules.
  [[nodiscard]] EnvironmentSchedule resolved(double nominal_eps,
                                             Round total_rounds) const;

  /// Human/machine-readable summary, e.g. "ramp[0,1200):0.35->0.1" or
  /// "burst(p=0.08 len=16 eps=0.02)"; "static" when disabled. Contains no
  /// commas, so it embeds into CSV cells unquoted.
  [[nodiscard]] std::string describe() const;

  /// Parses a CLI spec:
  ///   ramp:EPS0:EPS1            linear over the whole run
  ///   ramp:R0:R1:EPS0:EPS1      linear over rounds [R0, R1)
  ///   step:R:EPS                EPS from round R on
  ///   burst:PROB:LEN:EPS        aligned windows of LEN rounds, each a
  ///                             burst with probability PROB at eps EPS
  /// Throws std::invalid_argument (message names the offending piece).
  static EnvironmentSchedule parse(std::string_view spec);
};

/// Per-round agent churn probabilities. All three are per-agent
/// probabilities; sleep/wake apply once per round, start_asleep once at
/// round 0 (the initial "not yet joined" set).
struct ChurnSpec {
  double sleep_prob = 0.0;
  double wake_prob = 0.0;
  double start_asleep = 0.0;

  [[nodiscard]] bool enabled() const noexcept {
    return sleep_prob > 0.0 || wake_prob > 0.0 || start_asleep > 0.0;
  }

  /// Throws std::invalid_argument unless all probabilities are in [0, 1].
  void validate() const;

  /// "sleep=0.005 wake=0.1" (plus " start_asleep=0.25" when set); "none"
  /// when disabled. Comma-free for CSV embedding.
  [[nodiscard]] std::string describe() const;

  /// Parses "SLEEP:WAKE" or "SLEEP:WAKE:START_ASLEEP".
  /// Throws std::invalid_argument (message names the offending piece).
  static ChurnSpec parse(std::string_view spec);
};

/// The pseudo-round keying the start_asleep draws. Far above any real round
/// (schedules are ~1e6 rounds at the largest simulated n), so the initial
/// lottery can never collide with a round-r churn stream.
inline constexpr Round kChurnInitRound = (~std::uint64_t{0}) >> 3;

/// True iff agent `a` starts round 0 asleep (has not yet joined).
/// Pure function of (trial key, agent).
[[nodiscard]] inline bool churn_starts_asleep(const ChurnSpec& churn,
                                              const StreamKey& trial_key,
                                              AgentId a) {
  CounterRng rng(
      round_stream_key(trial_key, RngPurpose::kChurn, kChurnInitRound), a);
  return bernoulli(rng, churn.start_asleep);
}

/// One churn transition for agent `a` under the round's kChurn key:
/// returns the agent's awake state for this round given last round's.
/// Pure function of (round key, agent, awake) — agents never affect each
/// other's transitions, which is what lets shards evaluate their own agent
/// blocks independently and still match the sequential reference bit for
/// bit.
[[nodiscard]] inline bool churn_step(const ChurnSpec& churn,
                                     const StreamKey& churn_round_key,
                                     AgentId a, bool awake) {
  CounterRng rng(churn_round_key, a);
  const bool toggle =
      bernoulli(rng, awake ? churn.sleep_prob : churn.wake_prob);
  return toggle ? !awake : awake;
}

}  // namespace flip
