#pragma once
// Phase schedule for the two-stage "breathe before speaking" protocol
// (Sections 2.1.2 and 2.2.2).
//
// Stage I (spreading):
//   phase 0      : beta_s = s*log n rounds; only the initially opinionated
//                  agents (the source, or the set A) send.
//   phases 1..T  : beta rounds each; T = floor(log(n/(2 beta_s)) / log(beta+1)).
//   phase T+1    : beta_f = f*log n rounds (the long finishing phase that
//                  activates every remaining agent).
// Stage II (boosting):
//   phases 1..k  : m = 2*gamma rounds each, gamma = 2r+1 samples;
//   phase k+1    : m_final rounds (the O(log n / eps^2)-sample finale).
//
// The paper fixes s, beta, f, r = Theta(1/eps^2) with "sufficiently large"
// constants chosen for the union bounds, e.g. r = ceil(2^22 / eps^2). Those
// constants are astronomically conservative at simulable n, so Params offers
// two presets (see DESIGN.md §5):
//   * Params::theoretical — literal proof constants, for schedule-arithmetic
//     tests and tiny-n runs;
//   * Params::calibrated  — small constants with every structural invariant
//     intact, used by all experiments.

#include <cstddef>
#include <cstdint>
#include <string>

namespace flip {

/// Tunable constant factors in front of the paper's Theta(1/eps^2) terms.
struct Tuning {
  double s_mult = 1.5;      ///< s = ceil(s_mult / eps^2)
  double beta_mult = 1.5;   ///< beta = ceil(beta_mult / eps^2); must keep beta+1 > 1/eps^2
  double f_mult = 4.0;      ///< f = ceil(f_mult / eps^2)
  double r_mult = 2.0;      ///< Stage II r = ceil(r_mult / eps^2)
  double final_mult = 2.0;  ///< final Stage II half-phase = ~final_mult*log n/eps^2
  double delta1_mult = 0.5; ///< assumed Stage-I output bias delta_1 = delta1_mult*sqrt(log n/n)
  int k_extra = 2;          ///< boost phases added to ceil(log2(1/delta_1)); may be negative (min 1 phase)

  /// Ablation-only escape hatch (bench E11): permit beta+1 <= 1/eps^2, the
  /// configuration the paper's analysis forbids (layer growth no longer
  /// outpaces the per-layer reliability deterioration). Never set this in
  /// real use; validate() skips the growth check when it is on.
  bool unsafe_allow_slow_growth = false;
};

/// Stage I phase layout. All lengths in rounds; phases are contiguous,
/// phase i occupying [phase_start(i), phase_end(i)).
struct StageOneSchedule {
  std::uint64_t s = 0;
  std::uint64_t beta = 0;
  std::uint64_t f = 0;
  std::uint64_t beta_s = 0;  ///< phase 0 length = s * log n
  std::uint64_t beta_f = 0;  ///< phase T+1 length = f * log n
  std::uint64_t T = 0;       ///< number of middle (beta-length) phases

  /// Total number of phases: 0, 1..T, T+1.
  [[nodiscard]] std::uint64_t num_phases() const noexcept { return T + 2; }
  [[nodiscard]] std::uint64_t phase_length(std::uint64_t phase) const;
  [[nodiscard]] std::uint64_t phase_start(std::uint64_t phase) const;
  [[nodiscard]] std::uint64_t phase_end(std::uint64_t phase) const;
  [[nodiscard]] std::uint64_t total_rounds() const;
  /// Phase containing round r (rounds counted from the start of Stage I).
  /// Precondition: r < total_rounds().
  [[nodiscard]] std::uint64_t phase_of_round(std::uint64_t round) const;
};

/// Stage II phase layout: k boost phases of m rounds, one final phase.
struct StageTwoSchedule {
  std::uint64_t r = 0;        ///< gamma = 2r+1
  std::uint64_t gamma = 0;    ///< samples per boost decision (odd)
  std::uint64_t m = 0;        ///< boost phase length = 2*gamma
  std::uint64_t k = 0;        ///< number of boost phases
  std::uint64_t m_final = 0;  ///< final phase length (even; half is odd)

  [[nodiscard]] std::uint64_t num_phases() const noexcept { return k + 1; }
  /// Phases are 1-based in the paper; here phase index in [0, k] with
  /// phases [0, k) the boost phases and phase k the finale.
  [[nodiscard]] std::uint64_t phase_length(std::uint64_t phase) const;
  [[nodiscard]] std::uint64_t phase_start(std::uint64_t phase) const;
  [[nodiscard]] std::uint64_t total_rounds() const;
  [[nodiscard]] std::uint64_t phase_of_round(std::uint64_t round) const;
  /// Success threshold and majority-subset size for a phase: half its length.
  [[nodiscard]] std::uint64_t half_length(std::uint64_t phase) const;
};

class Params {
 public:
  /// Small empirically validated constants (DESIGN.md §5); the preset every
  /// experiment uses. Throws std::invalid_argument on a bad (n, eps).
  static Params calibrated(std::size_t n, double eps, const Tuning& tuning = {});

  /// The paper's literal proof constants (r = 2^22/eps^2 etc.). Yields
  /// schedules far too long to simulate at interesting n; intended for
  /// schedule-arithmetic tests.
  static Params theoretical(std::size_t n, double eps);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] double eps() const noexcept { return eps_; }
  /// ceil(ln n): the "log n" every schedule length is a multiple of.
  [[nodiscard]] std::uint64_t log_n() const noexcept { return log_n_; }
  [[nodiscard]] const Tuning& tuning() const noexcept { return tuning_; }

  [[nodiscard]] const StageOneSchedule& stage1() const noexcept {
    return stage1_;
  }
  [[nodiscard]] const StageTwoSchedule& stage2() const noexcept {
    return stage2_;
  }

  [[nodiscard]] std::uint64_t total_rounds() const noexcept {
    return stage1_.total_rounds() + stage2_.total_rounds();
  }

  /// True iff eps clears the model's validity threshold eps > n^(-1/2+eta)
  /// (Section 2, with eta = 0.05). Schedules are still produced below the
  /// threshold so E12 can probe the failure region.
  [[nodiscard]] bool eps_above_threshold() const noexcept;

  /// The Stage I phase at which a majority-consensus instance with initial
  /// set size |A| = a should join (Corollary 2.18):
  ///   i_A = log(|A| / log n) / (2 log(1/eps)),
  /// clamped to [0, T+1]. a = 1 (broadcast) maps to phase 0.
  [[nodiscard]] std::uint64_t join_phase_for_initial_set(std::size_t a) const;

  /// Human-readable schedule dump for logs / examples.
  [[nodiscard]] std::string describe() const;

  /// Cross-checks every structural invariant (ordering f*logn >= beta >= s,
  /// growth beta+1 > 1/eps^2, phase arithmetic consistency, odd subset
  /// sizes, beta_s*(beta+1)^T <= n/2). Throws std::logic_error on violation.
  /// Called by both factories; public so tests can re-invoke it.
  void validate() const;

 private:
  Params(std::size_t n, double eps, Tuning tuning, bool theoretical_constants);

  std::size_t n_;
  double eps_;
  std::uint64_t log_n_;
  Tuning tuning_;
  StageOneSchedule stage1_;
  StageTwoSchedule stage2_;
};

}  // namespace flip
