#include "core/agent.hpp"

#include <algorithm>
#include <cmath>

namespace flip {

namespace {
std::uint64_t bits_for(std::uint64_t values) {
  // Bits to represent a counter with `values` distinct states.
  std::uint64_t bits = 0;
  while ((1ULL << bits) < values) ++bits;
  return std::max<std::uint64_t>(bits, 1);
}
}  // namespace

std::uint64_t agent_state_bits(const Params& params) {
  const StageOneSchedule& s1 = params.stage1();
  const StageTwoSchedule& s2 = params.stage2();

  const std::uint64_t total_phases = s1.num_phases() + s2.num_phases();
  const std::uint64_t longest_phase =
      std::max({s1.beta_s, s1.beta, s1.beta_f, s2.m, s2.m_final});

  const std::uint64_t level_bits = bits_for(total_phases + 1);  // + dormant
  const std::uint64_t round_counter_bits = bits_for(longest_phase + 1);
  const std::uint64_t recv_counter_bits = bits_for(longest_phase + 1);
  const std::uint64_t ones_counter_bits = bits_for(longest_phase + 1);
  const std::uint64_t opinion_bits = 2;  // current opinion + kept/reservoir bit

  return level_bits + round_counter_bits + recv_counter_bits +
         ones_counter_bits + opinion_bits;
}

}  // namespace flip
