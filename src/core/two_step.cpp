#include "core/two_step.hpp"

#include <cmath>
#include <stdexcept>

#include "util/math.hpp"

namespace flip {

double majority_correct_exact(const SamplingConfig& cfg) {
  return binomial_tail_ge(cfg.gamma(), cfg.r + 1, cfg.sample_correct_prob());
}

double majority_correct_via_two_step(const SamplingConfig& cfg) {
  // After the first step the number of WRONG players W0 ~ Binomial(gamma, 1/2).
  // In the second step each wrong player flips to correct independently with
  // probability 2b, so the final wrong count W = W0 - Flips with
  // Flips | W0 ~ Binomial(W0, 2b). Majority correct <=> W <= r.
  const std::uint64_t gamma = cfg.gamma();
  const double flip_p = 2.0 * cfg.b();
  double total = 0.0;
  for (std::uint64_t w0 = 0; w0 <= gamma; ++w0) {
    const double p_w0 = binomial_pmf(gamma, w0, 0.5);
    if (p_w0 < 1e-18) continue;
    double p_fix;
    if (w0 <= cfg.r) {
      p_fix = 1.0;  // already a correct majority; flips can only help
    } else {
      // Need at least w0 - r flips among w0 wrong players.
      p_fix = binomial_tail_ge(w0, w0 - cfg.r, flip_p);
    }
    total += p_w0 * p_fix;
  }
  return total;
}

double majority_correct_monte_carlo(const SamplingConfig& cfg,
                                    std::uint64_t trials, Xoshiro256& rng) {
  if (trials == 0) {
    throw std::invalid_argument("majority_correct_monte_carlo: trials == 0");
  }
  const std::uint64_t gamma = cfg.gamma();
  const double flip_p = 2.0 * cfg.b();
  std::uint64_t correct = 0;
  for (std::uint64_t t = 0; t < trials; ++t) {
    // First step: fair coins decide each player's opinion.
    std::uint64_t wrong = 0;
    for (std::uint64_t j = 0; j < gamma; ++j) {
      if (bernoulli(rng, 0.5)) ++wrong;
    }
    // Second step: each wrong player independently sees B w.p. 2b.
    std::uint64_t flips = 0;
    for (std::uint64_t j = 0; j < wrong; ++j) {
      if (bernoulli(rng, flip_p)) ++flips;
    }
    if (wrong - flips <= cfg.r) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(trials);
}

double prob_U_x(std::uint64_t r, std::uint64_t x) {
  const std::uint64_t gamma = 2 * r + 1;
  double total = 0.0;
  for (std::uint64_t i = 1; i <= x; ++i) {
    total += binomial_pmf(gamma, r + i, 0.5);
  }
  return total;
}

double claim_2_12_bound(std::uint64_t r, std::uint64_t x) {
  if (r == 0) throw std::invalid_argument("claim_2_12_bound: r == 0");
  return static_cast<double>(x) / (10.0 * std::sqrt(static_cast<double>(r)));
}

double prob_F_x_given_w(std::uint64_t w, std::uint64_t x, double b) {
  return binomial_tail_ge(w, x, 2.0 * b);
}

DeltaRegime classify_delta(double eps, double delta) {
  // The proof's case split: small delta <= eps/2^20; medium up to 1/2^12;
  // large otherwise.
  const double small_cut = eps / 1048576.0;  // eps / 2^20
  const double medium_cut = 1.0 / 4096.0;    // 1 / 2^12
  if (delta <= small_cut) return DeltaRegime::kSmall;
  if (delta < medium_cut) return DeltaRegime::kMedium;
  return DeltaRegime::kLarge;
}

}  // namespace flip
