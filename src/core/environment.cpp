#include "core/environment.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

namespace flip {

namespace {

[[noreturn]] void bad_spec(std::string_view what, std::string_view spec) {
  throw std::invalid_argument(std::string(what) + ": '" + std::string(spec) +
                              "'");
}

void check_eps(double eps, const char* what) {
  if (!(eps > 0.0) || eps > 0.5) {
    std::ostringstream os;
    os << what << " must be in (0, 0.5], got " << eps;
    throw std::invalid_argument(os.str());
  }
}

void check_prob(double p, const char* what) {
  if (!(p >= 0.0) || p > 1.0) {
    std::ostringstream os;
    os << what << " must be in [0, 1], got " << p;
    throw std::invalid_argument(os.str());
  }
}

/// Splits "a:b:c" into pieces (empty pieces preserved, unlike the CLI's
/// comma splitter — a missing field should be an error, not silence).
std::vector<std::string_view> split_colon(std::string_view text) {
  std::vector<std::string_view> pieces;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = text.find(':', start);
    if (colon == std::string_view::npos) {
      pieces.push_back(text.substr(start));
      return pieces;
    }
    pieces.push_back(text.substr(start, colon - start));
    start = colon + 1;
  }
}

double parse_number(std::string_view text, std::string_view spec) {
  double value = 0.0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || end != text.data() + text.size()) {
    bad_spec("not a number", text.empty() ? spec : text);
  }
  return value;
}

Round parse_round(std::string_view text, std::string_view spec) {
  Round value = 0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || end != text.data() + text.size()) {
    bad_spec("not a round number", text.empty() ? spec : text);
  }
  return value;
}

}  // namespace

void EnvironmentSchedule::validate() const {
  if (!enabled()) return;
  if (base_eps != 0.0) check_eps(base_eps, "schedule base eps");
  for (const EpsSegment& seg : segments) {
    check_eps(seg.eps_from, "schedule segment eps");
    check_eps(seg.eps_to, "schedule segment eps");
    if (seg.end != 0 && seg.end <= seg.begin) {
      throw std::invalid_argument("schedule segment must have end > begin");
    }
  }
  check_prob(burst_prob, "burst probability");
  if (burst_prob > 0.0) {
    if (burst_len == 0) {
      throw std::invalid_argument("burst length must be >= 1 round");
    }
    check_eps(burst_eps, "burst eps");
  }
}

double EnvironmentSchedule::segment_eps_at(Round r) const {
  double eps = base_eps;
  for (const EpsSegment& seg : segments) {
    if (r < seg.begin) continue;
    if (seg.end != 0 && r >= seg.end) {
      // A finished segment holds its final eps until a later segment (or
      // nothing) takes over — a ramp is a transition, not an excursion.
      eps = seg.eps_to;
      continue;
    }
    if (seg.end == 0 || seg.eps_from == seg.eps_to) {
      // Flat segment, or an open-ended ramp that resolved() has not yet
      // anchored: no interpolation to do.
      eps = seg.eps_from;
      continue;
    }
    const double t = static_cast<double>(r - seg.begin) /
                     static_cast<double>(seg.end - seg.begin);
    eps = seg.eps_from + t * (seg.eps_to - seg.eps_from);
  }
  return eps;
}

double EnvironmentSchedule::eps_at(const StreamKey& key, Round r) const {
  double eps = segment_eps_at(r);
  if (burst_prob > 0.0 && burst_len > 0) {
    const Round window = r / burst_len;
    CounterRng rng(
        round_stream_key(key, RngPurpose::kEnvironment, window), 0);
    if (bernoulli(rng, burst_prob)) eps = burst_eps;
  }
  return eps;
}

double EnvironmentSchedule::expected_eps_at(Round r) const {
  const double eps = segment_eps_at(r);
  if (burst_prob > 0.0 && burst_len > 0) {
    return (1.0 - burst_prob) * eps + burst_prob * burst_eps;
  }
  return eps;
}

EnvironmentSchedule EnvironmentSchedule::resolved(double nominal_eps,
                                                  Round total_rounds) const {
  EnvironmentSchedule out = *this;
  if (out.base_eps == 0.0) out.base_eps = nominal_eps;
  std::vector<EpsSegment> kept;
  kept.reserve(out.segments.size());
  for (EpsSegment seg : out.segments) {
    if (seg.end == 0) seg.end = total_rounds;
    if (seg.begin >= seg.end) continue;  // starts at or past the run's end
    kept.push_back(seg);
  }
  out.segments = std::move(kept);
  return out;
}

std::string EnvironmentSchedule::describe() const {
  if (!enabled()) return "static";
  std::ostringstream os;
  bool first = true;
  const auto sep = [&] {
    if (!first) os << '+';
    first = false;
  };
  for (const EpsSegment& seg : segments) {
    sep();
    if (seg.eps_from == seg.eps_to && seg.end == 0) {
      os << "step@" << seg.begin << ":" << seg.eps_to;
    } else {
      // ".." rather than "," between the bounds: this string embeds into
      // unquoted CSV cells.
      os << "ramp[" << seg.begin << "..";
      if (seg.end == 0) {
        os << "end";
      } else {
        os << seg.end;
      }
      os << "):" << seg.eps_from << "->" << seg.eps_to;
    }
  }
  if (burst_prob > 0.0) {
    sep();
    os << "burst(p=" << burst_prob << " len=" << burst_len
       << " eps=" << burst_eps << ")";
  }
  return os.str();
}

EnvironmentSchedule EnvironmentSchedule::parse(std::string_view spec) {
  const auto pieces = split_colon(spec);
  EnvironmentSchedule schedule;
  const std::string_view kind = pieces.front();
  if (kind == "ramp") {
    EpsSegment seg;
    if (pieces.size() == 3) {
      seg.eps_from = parse_number(pieces[1], spec);
      seg.eps_to = parse_number(pieces[2], spec);
    } else if (pieces.size() == 5) {
      seg.begin = parse_round(pieces[1], spec);
      seg.end = parse_round(pieces[2], spec);
      seg.eps_from = parse_number(pieces[3], spec);
      seg.eps_to = parse_number(pieces[4], spec);
    } else {
      bad_spec("ramp takes EPS0:EPS1 or R0:R1:EPS0:EPS1", spec);
    }
    schedule.segments.push_back(seg);
  } else if (kind == "step") {
    if (pieces.size() != 3) bad_spec("step takes R:EPS", spec);
    EpsSegment seg;
    seg.begin = parse_round(pieces[1], spec);
    const double eps = parse_number(pieces[2], spec);
    seg.eps_from = seg.eps_to = eps;
    schedule.segments.push_back(seg);
  } else if (kind == "burst") {
    if (pieces.size() != 4) bad_spec("burst takes PROB:LEN:EPS", spec);
    schedule.burst_prob = parse_number(pieces[1], spec);
    schedule.burst_len = parse_round(pieces[2], spec);
    schedule.burst_eps = parse_number(pieces[3], spec);
  } else {
    bad_spec("unknown schedule kind (ramp | step | burst)", spec);
  }
  schedule.validate();
  return schedule;
}

void ChurnSpec::validate() const {
  check_prob(sleep_prob, "churn sleep probability");
  check_prob(wake_prob, "churn wake probability");
  check_prob(start_asleep, "churn start_asleep probability");
}

std::string ChurnSpec::describe() const {
  if (!enabled()) return "none";
  std::ostringstream os;
  os << "sleep=" << sleep_prob << " wake=" << wake_prob;
  if (start_asleep > 0.0) os << " start_asleep=" << start_asleep;
  return os.str();
}

ChurnSpec ChurnSpec::parse(std::string_view spec) {
  const auto pieces = split_colon(spec);
  if (pieces.size() != 2 && pieces.size() != 3) {
    bad_spec("churn takes SLEEP:WAKE[:START_ASLEEP]", spec);
  }
  ChurnSpec churn;
  churn.sleep_prob = parse_number(pieces[0], spec);
  churn.wake_prob = parse_number(pieces[1], spec);
  if (pieces.size() == 3) churn.start_asleep = parse_number(pieces[2], spec);
  churn.validate();
  return churn;
}

}  // namespace flip
