#pragma once
// Section 3: removing the global-clock assumption.
//
// Modified algorithm (Section 3.1): every agent wakes at its own global
// round w_a in [0, D] and runs on its local clock t = g - w_a. Phase j of
// the unified schedule (Stage I phases start_phase..T+1 followed by the
// Stage II phases) is executed during LOCAL time
//     [R_j + j*D,  R_j + j*D + L_j)
// where R_j is the phase's start in the synchronous schedule and L_j its
// length — i.e. each phase is postponed by one extra D per phase index, so
// the GLOBAL intervals
//     C_j = [R_j + j*D,  R_{j+1} + (j+1)*D)
// ("containers") are disjoint and every phase-j message falls inside C_j
// regardless of sender wake times. The additive cost is (P+1)*D rounds for
// P phases — the O(D log n) of Theorem 3.1, O(log^2 n) once D = 2 log n.
//
// Message attribution. The paper's equivalence argument assumes an agent
// can attribute each received message to the phase it belongs to. Two
// implementable rules are provided:
//  * kLocalWindow — attribute by the receiver's OWN container (containers
//    tile local time, so this is a genuine agent-executable rule). Because
//    clocks are skewed by up to D, messages within D of a container edge
//    can be attributed to the neighbouring phase; experiment E10 verifies
//    the protocol absorbs this.
//  * kOracle — attribute by the sender's phase, which equals the unique
//    global container of the sending round (the containers-are-disjoint
//    fact). This realizes the paper's idealized attribution exactly and is
//    what the Section 3.1 bijection argument describes.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "core/breathe.hpp"
#include "core/params.hpp"
#include "sim/engine.hpp"
#include "sim/population.hpp"
#include "util/rng.hpp"

namespace flip {

enum class Attribution { kLocalWindow, kOracle };

struct DesyncConfig {
  BreatheConfig base;        ///< correct opinion, initial set, start phase
  std::vector<Round> wake;   ///< per-agent wake round; values in [0, D]
  Round max_skew = 0;        ///< D: schedule slack per phase
  Attribution attribution = Attribution::kLocalWindow;

  /// Experiment E15 (the paper's Section 4 open question — how much
  /// synchronization is really needed): allow wake offsets LARGER than the
  /// schedule slack D. The protocol then runs with less slack than the
  /// true skew; containers no longer capture all of a phase's messages and
  /// correctness degrades gracefully rather than by construction.
  bool allow_excess_skew = false;
};

/// One phase of the unified (Stage I + Stage II) schedule.
struct UnifiedPhase {
  bool stage2 = false;
  std::uint64_t stage_index = 0;  ///< phase number within its stage
  Round length = 0;               ///< L_j
  Round base = 0;                 ///< R_j: start in the synchronous schedule
  std::uint64_t majority_take = 0;  ///< Stage II: subset size / success bar
};

class DesyncBreatheProtocol final : public Protocol {
 public:
  DesyncBreatheProtocol(const Params& params, DesyncConfig config,
                        Xoshiro256& rng);

  // Protocol interface -------------------------------------------------
  void collect_sends(Round g, std::vector<Message>& out) override;
  void deliver(AgentId to, Opinion bit, Round g) override;
  void end_round(Round g) override;
  [[nodiscard]] bool done(Round g) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double current_bias() const override;
  [[nodiscard]] std::size_t current_opinionated() const override;

  // Introspection ------------------------------------------------------
  [[nodiscard]] const Population& population() const noexcept { return pop_; }
  [[nodiscard]] bool succeeded() const;
  [[nodiscard]] Round total_rounds() const noexcept { return total_rounds_; }
  /// Extra rounds relative to the synchronous schedule: (P+1)*D.
  [[nodiscard]] Round desync_overhead() const noexcept;
  [[nodiscard]] std::size_t num_phases() const noexcept {
    return phases_.size();
  }
  [[nodiscard]] const std::vector<StageOnePhaseStats>& stage1_stats()
      const noexcept {
    return stage1_stats_;
  }

 private:
  static constexpr std::int64_t kDormantLevel =
      std::numeric_limits<std::int64_t>::max();

  /// Container index for a local (or, in oracle mode, global) time; the
  /// containers tile [0, inf) so every non-negative time maps to a phase
  /// (times past the last container map to the last phase).
  [[nodiscard]] std::size_t container_of(Round t) const;
  [[nodiscard]] Round container_start(std::size_t j) const;
  [[nodiscard]] Round container_end(std::size_t j) const;
  /// Send window: the first L_j rounds of container j.
  [[nodiscard]] bool in_send_window(std::size_t j, Round local) const;

  void finalize_agent_phase(AgentId a, std::size_t j);

  std::uint64_t sample_subset_ones(std::uint64_t total, std::uint64_t ones,
                                   std::uint64_t take);

  Params params_;
  DesyncConfig config_;
  Xoshiro256& rng_;
  Population pop_;

  std::vector<UnifiedPhase> phases_;
  std::vector<Round> container_starts_;  ///< container_start(j), ascending

  std::vector<std::int64_t> level_;  ///< unified activation phase; seeds = -1
  /// Stage I reservoir (activation-phase messages).
  std::vector<std::uint32_t> s1_count_;
  std::vector<Opinion> s1_kept_;
  /// Stage II counters, double-buffered by container parity so oracle-mode
  /// spillover into the next container never mixes with the current one.
  std::vector<std::uint32_t> s2_recv_[2];
  std::vector<std::uint32_t> s2_ones_[2];

  /// Agents grouped by wake round: all phase finalizations for wake class w
  /// and phase j happen at global round w + container_end(j) - 1.
  std::vector<std::vector<AgentId>> by_wake_;

  Round total_rounds_ = 0;

  std::vector<StageOnePhaseStats> stage1_stats_;  ///< aggregated per phase
};

/// Section 3.2: the activation pre-phase that replaces unbounded clock
/// offsets with skew <= ~2 log n. Informed agents rumor-broadcast an
/// arbitrary bit for `broadcast_len` rounds; each agent resets its clock
/// (wakes) a fixed 2*broadcast_len rounds after first hearing a message.
struct ClockSyncResult {
  std::vector<Round> wake;   ///< per-agent wake rounds, min-normalized to 0
  Round skew = 0;            ///< max wake - min wake
  Round duration = 0;        ///< rounds the pre-phase ran
  std::uint64_t messages = 0;
  bool all_activated = false;
};

/// Runs the pre-phase with agent `source` initially informed.
/// broadcast_len defaults to ceil(2 ln n) when 0 is passed.
ClockSyncResult run_clock_sync(std::size_t n, AgentId source,
                               Xoshiro256& rng, Round broadcast_len = 0);

}  // namespace flip
