#pragma once
// The paper's protocol (fully-synchronous setting, Section 2), covering both
// problems:
//
//  * noisy broadcast        — initial set {source}, joining at phase 0;
//  * noisy majority-consensus — initial set A joining at phase
//                               i_A = log(|A|/log n) / (2 log(1/eps))
//                               (Corollary 2.18).
//
// Stage I ("breathe"): an agent activated during phase i stays SILENT until
// phase i ends, adopts a uniformly random message among those it heard in
// that phase as its initial opinion, then sends that opinion every round
// until Stage I ends.
//
// Stage II ("speak"): k boost phases of m = 2*gamma rounds, then a long
// final phase. Every round every opinionated agent pushes its current
// opinion; at the end of a phase, an agent that received at least half the
// phase's rounds' worth of messages ("successful") re-decides by the
// majority of a uniformly random subset of exactly half-phase-length
// samples (Remark 2.10 / footnote 3: the subset makes decisions invariant
// to arrival order, which Section 3 relies on).

#include <cstdint>
#include <string>
#include <vector>

#include "core/agent.hpp"
#include "core/params.hpp"
#include "sim/engine.hpp"
#include "sim/population.hpp"
#include "util/rng.hpp"

namespace flip {

/// One initially opinionated agent.
struct Seed {
  AgentId agent;
  Opinion opinion;
};

/// Stage I initial-opinion rule (Remark 2.1): the paper's rule picks a
/// uniformly random message among those heard in the activation phase; in
/// the fully-synchronous setting adopting the FIRST message instead is
/// equivalent. Both are provided so the equivalence is measurable (E11).
enum class Stage1Pick { kUniformMessage, kFirstMessage };

/// Stage II majority-subset rule (Remark 2.10): the paper's rule majorizes
/// over a uniformly random subset of exactly m_i/2 samples; synchronously,
/// the prefix of the first m_i/2 samples is equivalent.
enum class Stage2Subset { kUniformSubset, kPrefixSubset };

struct BreatheConfig {
  /// The correct opinion B (used for instrumentation only — the protocol
  /// itself is symmetric and never branches on it).
  Opinion correct = Opinion::kOne;

  /// The initially opinionated set A (the source for broadcast).
  std::vector<Seed> initial;

  /// Stage I phase at which the initial set starts sending. Use 0 for
  /// broadcast; Params::join_phase_for_initial_set(|A|) for majority.
  std::uint64_t start_phase = 0;

  /// Experiment-harness switch (bench E7): skip Stage I entirely and run
  /// Stage II on the initial set as-is. Meaningful only when the initial
  /// set covers the whole population with a seeded bias.
  bool skip_stage1 = false;

  Stage1Pick stage1_pick = Stage1Pick::kUniformMessage;
  Stage2Subset stage2_subset = Stage2Subset::kUniformSubset;
};

/// Stage I per-phase observation: the X_i / Y_i / Z_i of the analysis.
struct StageOnePhaseStats {
  std::uint64_t phase = 0;
  std::uint64_t newly_activated = 0;   ///< Y_i
  std::uint64_t newly_correct = 0;     ///< Z_i
  std::uint64_t total_activated = 0;   ///< X_i
  /// Bias eps_i of the layer: (Z_i - (Y_i - Z_i)) / (2 Y_i); 0 if Y_i = 0.
  [[nodiscard]] double layer_bias() const noexcept;
};

/// Stage II per-phase observation.
struct StageTwoPhaseStats {
  std::uint64_t phase = 0;
  std::uint64_t successful = 0;        ///< agents with enough samples
  double correct_fraction = 0.0;       ///< of all n agents, at phase end
  /// Bias delta_i at phase end: correct_fraction - wrong fraction, halved
  /// over opinionated agents (Population::bias).
  double bias = 0.0;
};

class BreatheProtocol final : public Protocol {
 public:
  /// The protocol draws its own randomness from counter-based per-agent
  /// streams derived from `key` (one trial's protocol key): the Stage I
  /// message pick from (round, agent, RngPurpose::kProtocol), the Stage II
  /// majority subset from (phase, agent, RngPurpose::kSubset). Pure
  /// per-agent keying is what lets the batch engine replay these draws
  /// shard-by-shard and still match this reference bit for bit.
  BreatheProtocol(const Params& params, BreatheConfig config,
                  const StreamKey& key);

  /// Convenience: derives the protocol key from two draws of `rng`.
  BreatheProtocol(const Params& params, BreatheConfig config, Xoshiro256& rng);

  // Protocol interface -------------------------------------------------
  void collect_sends(Round r, std::vector<Message>& out) override;
  void deliver(AgentId to, Opinion bit, Round r) override;
  void end_round(Round r) override;
  [[nodiscard]] bool done(Round r) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double current_bias() const override;
  [[nodiscard]] std::size_t current_opinionated() const override;

  // Introspection ------------------------------------------------------
  [[nodiscard]] const Population& population() const noexcept { return pop_; }
  [[nodiscard]] const Params& params() const noexcept { return params_; }
  /// Total execution length in rounds (Stage I from start_phase + Stage II).
  [[nodiscard]] Round total_rounds() const noexcept { return total_rounds_; }
  [[nodiscard]] Round stage1_rounds() const noexcept { return stage1_rounds_; }
  /// True iff every agent ended holding the correct opinion.
  [[nodiscard]] bool succeeded() const;
  [[nodiscard]] const std::vector<StageOnePhaseStats>& stage1_stats()
      const noexcept {
    return stage1_stats_;
  }
  [[nodiscard]] const std::vector<StageTwoPhaseStats>& stage2_stats()
      const noexcept {
    return stage2_stats_;
  }

 private:
  [[nodiscard]] bool in_stage1(Round r) const noexcept {
    return r < stage1_rounds_;
  }
  /// Stage I schedule round for execution round r (execution starts at
  /// start_phase, not phase 0).
  [[nodiscard]] Round stage1_round(Round r) const noexcept {
    return r + stage1_offset_;
  }
  [[nodiscard]] Round stage2_round(Round r) const noexcept {
    return r - stage1_rounds_;
  }

  void finalize_stage1_phase(std::uint64_t phase);
  void finalize_stage2_phase(std::uint64_t phase);

  Params params_;
  BreatheConfig config_;
  StreamKey key_;
  /// kProtocol round key cache: deliver() is called once per accepted
  /// message, but the key only changes once per round.
  StreamKey protocol_round_key_{};
  Round protocol_round_cached_ = ~Round{0};
  Population pop_;
  std::vector<AgentState> state_;
  /// Ones among each agent's first `threshold` samples of the current
  /// Stage II phase (only consulted under Stage2Subset::kPrefixSubset).
  std::vector<std::uint32_t> prefix_ones_;

  Round stage1_offset_ = 0;   ///< phase_start(start_phase)
  Round stage1_rounds_ = 0;   ///< execution rounds spent in Stage I
  Round total_rounds_ = 0;

  /// Opinionated agents in the order they gained an opinion; the Stage I
  /// senders are a prefix of this list (those opinionated before the
  /// current phase), Stage II senders are the whole list.
  std::vector<AgentId> opinionated_;
  std::size_t senders_ = 0;  ///< prefix of opinionated_ that sends this phase

  /// Agents activated during the current Stage I phase (buffered so their
  /// opinions appear only at the phase boundary).
  std::vector<AgentId> activation_buffer_;

  std::vector<StageOnePhaseStats> stage1_stats_;
  std::vector<StageTwoPhaseStats> stage2_stats_;
};

/// Convenience: a broadcast configuration with a single source agent 0
/// holding the correct opinion.
BreatheConfig broadcast_config(Opinion correct = Opinion::kOne);

/// Convenience: a majority-consensus configuration. Chooses the first `a`
/// agents as the initial set with exactly `correct_count` of them holding
/// `correct` (the rest hold the flip), and the join phase per Corollary
/// 2.18. Precondition: correct_count <= a <= n.
BreatheConfig majority_config(const Params& params, std::size_t a,
                              std::size_t correct_count,
                              Opinion correct = Opinion::kOne);

}  // namespace flip
