#include "core/topology.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace flip {

namespace {

[[noreturn]] void bad_spec(std::string_view what, std::string_view spec) {
  throw std::invalid_argument(std::string(what) + ": '" + std::string(spec) +
                              "'");
}

double parse_number(std::string_view text, std::string_view spec) {
  double value = 0.0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || end != text.data() + text.size()) {
    bad_spec("not a number", text.empty() ? spec : text);
  }
  return value;
}

std::size_t parse_count(std::string_view text, std::string_view spec) {
  std::size_t value = 0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc{} || end != text.data() + text.size()) {
    bad_spec("not a count", text.empty() ? spec : text);
  }
  return value;
}

/// Splits "a:b:c" into pieces (empty pieces preserved, like the
/// environment-spec parser — a missing field should be an error, not
/// silence).
std::vector<std::string_view> split_colon(std::string_view text) {
  std::vector<std::string_view> pieces;
  std::size_t start = 0;
  while (true) {
    const std::size_t colon = text.find(':', start);
    if (colon == std::string_view::npos) {
      pieces.push_back(text.substr(start));
      return pieces;
    }
    pieces.push_back(text.substr(start, colon - start));
    start = colon + 1;
  }
}

void check_degree(std::size_t k, std::string_view kind) {
  if (k < 2 || k % 2 != 0) {
    std::ostringstream os;
    os << "topology " << kind << " degree k must be even and >= 2 (offsets "
       << "come in +-pairs), got " << k;
    throw std::invalid_argument(os.str());
  }
}

/// The largest divisor of n that is at most floor(sqrt(n)) — the most
/// square rows x cols factorization of n.
std::size_t best_rows(std::size_t n) {
  std::size_t isqrt = 1;
  while ((isqrt + 1) * (isqrt + 1) <= n) ++isqrt;
  for (std::size_t rows = isqrt; rows >= 1; --rows) {
    if (n % rows == 0) return rows;
  }
  return 1;
}

}  // namespace

void TopologySpec::validate() const {
  switch (kind) {
    case TopologyKind::kComplete:
      return;
    case TopologyKind::kRing:
      check_degree(k, "ring");
      return;
    case TopologyKind::kGrid:
      if (radius < 1) {
        throw std::invalid_argument(
            "topology grid radius must be >= 1 (radius 0 has no neighbors)");
      }
      return;
    case TopologyKind::kSmallWorld:
    case TopologyKind::kDynamic: {
      const std::string_view name = topology_kind_name(kind);
      check_degree(k, name);
      if (k > kTopologyEdgeStride) {
        std::ostringstream os;
        os << "topology " << name << " degree k must be <= "
           << kTopologyEdgeStride << " (the per-agent edge-stream stride), got "
           << k;
        throw std::invalid_argument(os.str());
      }
      if (!(rewire_prob >= 0.0) || rewire_prob > 1.0) {
        std::ostringstream os;
        os << "topology " << name << " rewire probability must be in [0, 1], "
           << "got " << rewire_prob;
        throw std::invalid_argument(os.str());
      }
      return;
    }
  }
  throw std::invalid_argument("unknown topology kind");
}

std::string TopologySpec::describe() const {
  std::ostringstream os;
  switch (kind) {
    case TopologyKind::kComplete:
      return "complete";
    case TopologyKind::kRing:
      os << "ring(k=" << k << ")";
      break;
    case TopologyKind::kGrid:
      os << "grid(r=" << radius << ")";
      break;
    case TopologyKind::kSmallWorld:
    case TopologyKind::kDynamic:
      os << topology_kind_name(kind) << "(k=" << k << " p=" << rewire_prob
         << ")";
      break;
  }
  return os.str();
}

TopologySpec TopologySpec::parse(std::string_view spec) {
  const auto pieces = split_colon(spec);
  const std::string_view kind = pieces.front();
  TopologySpec topology;
  if (kind == "complete") {
    if (pieces.size() != 1) bad_spec("complete takes no parameters", spec);
  } else if (kind == "ring") {
    topology.kind = TopologyKind::kRing;
    if (pieces.size() > 2) bad_spec("ring takes at most one parameter K", spec);
    if (pieces.size() == 2) topology.k = parse_count(pieces[1], spec);
  } else if (kind == "grid") {
    topology.kind = TopologyKind::kGrid;
    if (pieces.size() > 2) {
      bad_spec("grid takes at most one parameter RADIUS", spec);
    }
    if (pieces.size() == 2) topology.radius = parse_count(pieces[1], spec);
  } else if (kind == "smallworld" || kind == "dynamic") {
    topology.kind = kind == "dynamic" ? TopologyKind::kDynamic
                                      : TopologyKind::kSmallWorld;
    if (pieces.size() > 3) {
      bad_spec("rewired topologies take at most K:PROB", spec);
    }
    if (pieces.size() >= 2) topology.k = parse_count(pieces[1], spec);
    if (pieces.size() == 3) {
      topology.rewire_prob = parse_number(pieces[2], spec);
    }
  } else {
    bad_spec(
        "unknown topology kind (complete | ring | grid | smallworld | "
        "dynamic)",
        spec);
  }
  topology.validate();
  return topology;
}

ResolvedTopology ResolvedTopology::resolve(const TopologySpec& spec,
                                           std::size_t n) {
  spec.validate();
  if (n < 2) {
    std::ostringstream os;
    os << "topology " << spec.describe() << " needs a population of n >= 2, "
       << "got " << n;
    throw std::invalid_argument(os.str());
  }
  ResolvedTopology topo;
  topo.spec_ = spec;
  topo.n_ = n;
  switch (spec.kind) {
    case TopologyKind::kComplete:
      topo.degree_ = n - 1;
      break;
    case TopologyKind::kRing:
    case TopologyKind::kSmallWorld:
    case TopologyKind::kDynamic:
      if (spec.k > n - 2) {
        std::ostringstream os;
        os << "topology " << spec.describe() << " needs n >= k + 2 = "
           << spec.k + 2 << " (k distinct non-self ring offsets), got n = "
           << n;
        throw std::invalid_argument(os.str());
      }
      topo.degree_ = spec.k;
      break;
    case TopologyKind::kGrid: {
      const std::size_t side = 2 * spec.radius + 1;
      topo.rows_ = best_rows(n);
      topo.cols_ = n / topo.rows_;
      if (topo.rows_ < side || topo.cols_ < side) {
        std::ostringstream os;
        os << "topology " << spec.describe() << ": n = " << n
           << " factors as " << topo.rows_ << " x " << topo.cols_
           << ", but both torus sides must be >= 2*radius + 1 = " << side
           << " (pick n with a divisor in [" << side << ", n/" << side
           << "], e.g. n = " << side * side << ")";
        throw std::invalid_argument(os.str());
      }
      topo.degree_ = static_cast<std::uint64_t>(side) * side - 1;
      break;
    }
  }
  return topo;
}

}  // namespace flip
