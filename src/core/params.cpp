#include "core/params.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/math.hpp"

namespace flip {

namespace {

std::uint64_t ceil_div_eps2(double mult, double eps) {
  return static_cast<std::uint64_t>(std::ceil(mult / (eps * eps)));
}

}  // namespace

std::uint64_t StageOneSchedule::phase_length(std::uint64_t phase) const {
  if (phase == 0) return beta_s;
  if (phase <= T) return beta;
  if (phase == T + 1) return beta_f;
  throw std::out_of_range("StageOneSchedule: phase > T+1");
}

std::uint64_t StageOneSchedule::phase_start(std::uint64_t phase) const {
  if (phase > T + 1) throw std::out_of_range("StageOneSchedule: phase > T+1");
  if (phase == 0) return 0;
  return beta_s + (phase - 1) * beta;
}

std::uint64_t StageOneSchedule::phase_end(std::uint64_t phase) const {
  return phase_start(phase) + phase_length(phase);
}

std::uint64_t StageOneSchedule::total_rounds() const {
  return beta_s + T * beta + beta_f;
}

std::uint64_t StageOneSchedule::phase_of_round(std::uint64_t r) const {
  if (r >= total_rounds()) {
    throw std::out_of_range("StageOneSchedule: round past stage end");
  }
  if (r < beta_s) return 0;
  const std::uint64_t mid = (r - beta_s) / beta;
  return std::min(mid + 1, T + 1);
}

std::uint64_t StageTwoSchedule::phase_length(std::uint64_t phase) const {
  if (phase < k) return m;
  if (phase == k) return m_final;
  throw std::out_of_range("StageTwoSchedule: phase > k");
}

std::uint64_t StageTwoSchedule::phase_start(std::uint64_t phase) const {
  if (phase > k) throw std::out_of_range("StageTwoSchedule: phase > k");
  return phase * m;
}

std::uint64_t StageTwoSchedule::total_rounds() const { return k * m + m_final; }

std::uint64_t StageTwoSchedule::phase_of_round(std::uint64_t round) const {
  if (round >= total_rounds()) {
    throw std::out_of_range("StageTwoSchedule: round past stage end");
  }
  return std::min(round / m, k);
}

std::uint64_t StageTwoSchedule::half_length(std::uint64_t phase) const {
  return phase_length(phase) / 2;
}

Params::Params(std::size_t n, double eps, Tuning tuning,
               bool theoretical_constants)
    : n_(n), eps_(eps), tuning_(tuning) {
  if (n < 4) throw std::invalid_argument("Params: need n >= 4");
  if (!(eps > 0.0) || !(eps < 0.5)) {
    throw std::invalid_argument("Params: need eps in (0, 0.5)");
  }
  log_n_ = static_cast<std::uint64_t>(std::ceil(flip::log_n(n)));

  // ---- Stage I ----
  StageOneSchedule& s1 = stage1_;
  if (theoretical_constants) {
    // f > c1*beta > c2*s > c3/eps^2 with generous proof constants.
    s1.s = ceil_div_eps2(64.0, eps);
    s1.beta = 4 * s1.s;  // "beta > 3s" (Corollary 2.5)
    s1.f = 4 * s1.beta;
  } else {
    s1.s = std::max<std::uint64_t>(2, ceil_div_eps2(tuning.s_mult, eps));
    // beta+1 must exceed 1/eps^2 so layer growth outpaces the (2 eps)-per-layer
    // reliability deterioration (Section 2.1.1).
    s1.beta = tuning.unsafe_allow_slow_growth
                  ? std::max<std::uint64_t>(1, ceil_div_eps2(tuning.beta_mult,
                                                             eps))
                  : std::max<std::uint64_t>(ceil_div_eps2(tuning.beta_mult,
                                                          eps),
                                            ceil_div_eps2(1.0, eps));
    s1.f = std::max<std::uint64_t>(s1.beta + 1,
                                   ceil_div_eps2(tuning.f_mult, eps));
  }
  s1.beta_s = s1.s * log_n_;
  s1.beta_f = s1.f * log_n_;
  const double headroom =
      static_cast<double>(n) / (2.0 * static_cast<double>(s1.beta_s));
  s1.T = headroom >= static_cast<double>(s1.beta + 1)
             ? floor_log(headroom, static_cast<double>(s1.beta + 1))
             : 0;

  // ---- Stage II ----
  StageTwoSchedule& s2 = stage2_;
  s2.r = theoretical_constants ? ceil_div_eps2(4194304.0 /* 2^22 */, eps)
                               : std::max<std::uint64_t>(
                                     2, ceil_div_eps2(tuning.r_mult, eps));
  s2.gamma = 2 * s2.r + 1;
  s2.m = 2 * s2.gamma;
  const double delta1 =
      std::clamp(tuning.delta1_mult *
                     std::sqrt(static_cast<double>(log_n_) /
                               static_cast<double>(n)),
                 1e-12, 0.49);
  const auto k_base =
      static_cast<std::int64_t>(std::ceil(std::log2(1.0 / delta1)));
  s2.k = static_cast<std::uint64_t>(
      std::max<std::int64_t>(1, k_base + tuning.k_extra));
  const std::uint64_t half_final = next_odd(std::max<std::uint64_t>(
      s2.gamma,
      static_cast<std::uint64_t>(std::ceil(tuning.final_mult *
                                           static_cast<double>(log_n_) /
                                           (eps * eps)))));
  s2.m_final = 2 * half_final;

  validate();
}

Params Params::calibrated(std::size_t n, double eps, const Tuning& tuning) {
  return Params(n, eps, tuning, /*theoretical_constants=*/false);
}

Params Params::theoretical(std::size_t n, double eps) {
  return Params(n, eps, Tuning{}, /*theoretical_constants=*/true);
}

bool Params::eps_above_threshold() const noexcept {
  constexpr double kEta = 0.05;
  return eps_ > std::pow(static_cast<double>(n_), -0.5 + kEta);
}

std::uint64_t Params::join_phase_for_initial_set(std::size_t a) const {
  if (a == 0) throw std::invalid_argument("join_phase: empty initial set");
  const double ratio =
      static_cast<double>(a) / static_cast<double>(log_n_);
  if (ratio <= 1.0) return 0;
  const double i_a = std::log(ratio) / (2.0 * std::log(1.0 / eps_));
  const auto phase = static_cast<std::uint64_t>(std::floor(i_a));
  return std::min(phase, stage1_.T + 1);
}

std::string Params::describe() const {
  std::ostringstream os;
  os << "Params{n=" << n_ << ", eps=" << eps_ << ", log_n=" << log_n_
     << "}\n"
     << "  Stage I : beta_s=" << stage1_.beta_s << " (s=" << stage1_.s
     << "), T=" << stage1_.T << " x beta=" << stage1_.beta
     << ", beta_f=" << stage1_.beta_f << " (f=" << stage1_.f << ") -> "
     << stage1_.total_rounds() << " rounds\n"
     << "  Stage II: k=" << stage2_.k << " x m=" << stage2_.m
     << " (gamma=" << stage2_.gamma << "), m_final=" << stage2_.m_final
     << " -> " << stage2_.total_rounds() << " rounds\n"
     << "  total   : " << total_rounds() << " rounds";
  return os.str();
}

void Params::validate() const {
  const double inv_eps2 = 1.0 / (eps_ * eps_);
  auto fail = [](const std::string& what) {
    throw std::logic_error("Params::validate: " + what);
  };

  if (stage1_.s < 1 || stage1_.beta < 1 || stage1_.f < 1) {
    fail("stage-1 constants must be positive");
  }
  // Growth factor must beat the 1/eps^2 reliability deterioration.
  if (!tuning_.unsafe_allow_slow_growth &&
      !(static_cast<double>(stage1_.beta) + 1.0 > inv_eps2)) {
    fail("beta+1 <= 1/eps^2: layer growth cannot outpace noise");
  }
  if (stage1_.f < stage1_.beta) fail("need f >= beta");
  if (stage1_.beta_s != stage1_.s * log_n_) fail("beta_s != s*log n");
  if (stage1_.beta_f != stage1_.f * log_n_) fail("beta_f != f*log n");
  // T is chosen so beta_s*(beta+1)^T <= n/2 (the paper's definition). The
  // invariant is vacuous when T = 0: at small n the listening phase alone
  // can exceed n/2 rounds, which only means phase 0 activates everybody.
  if (stage1_.T > 0) {
    double pow_t = 1.0;
    for (std::uint64_t i = 0; i < stage1_.T; ++i) {
      pow_t *= static_cast<double>(stage1_.beta + 1);
    }
    if (static_cast<double>(stage1_.beta_s) * pow_t >
        static_cast<double>(n_) / 2.0 + 1e-9) {
      fail("beta_s*(beta+1)^T > n/2");
    }
  }
  // Phase arithmetic closes up.
  if (stage1_.phase_end(stage1_.T + 1) != stage1_.total_rounds()) {
    fail("stage-1 phase arithmetic inconsistent");
  }

  if (stage2_.gamma != 2 * stage2_.r + 1) fail("gamma != 2r+1");
  if (stage2_.gamma % 2 == 0) fail("gamma must be odd");
  if (stage2_.m != 2 * stage2_.gamma) fail("m != 2*gamma");
  if ((stage2_.m_final / 2) % 2 == 0) fail("final majority subset must be odd");
  if (stage2_.m_final < stage2_.m) fail("final phase shorter than boost phase");
  if (stage2_.k == 0) fail("need at least one boost phase");
  if (stage2_.phase_start(stage2_.k) + stage2_.m_final !=
      stage2_.total_rounds()) {
    fail("stage-2 phase arithmetic inconsistent");
  }
}

}  // namespace flip
