#include "core/theory.hpp"

#include <algorithm>
#include <cmath>

#include "util/math.hpp"

namespace flip {
namespace theory {

double round_unit(std::size_t n, double eps) {
  return log_n(n) / (eps * eps);
}

double message_unit(std::size_t n, double eps) {
  return static_cast<double>(n) * round_unit(n, eps);
}

double per_agent_sample_lower_bound(std::size_t n, double eps) {
  return round_unit(n, eps);
}

double relay_correct_probability(double eps, std::uint64_t depth) {
  return 0.5 + 0.5 * std::pow(2.0 * eps, static_cast<double>(depth));
}

double sampled_bias(double eps, double delta) { return 2.0 * eps * delta; }

double stage1_bias_lower_bound(double eps, std::uint64_t phase) {
  return 0.5 * std::pow(eps, static_cast<double>(phase) + 1.0);
}

double stage1_growth_upper(std::uint64_t x0, std::uint64_t beta,
                           std::uint64_t phase) {
  return static_cast<double>(x0) *
         std::pow(static_cast<double>(beta) + 1.0,
                  static_cast<double>(phase));
}

double stage1_growth_lower(std::uint64_t x0, std::uint64_t beta,
                           std::uint64_t phase) {
  return stage1_growth_upper(x0, beta, phase) / 16.0;
}

double stage1_output_bias_unit(std::size_t n) {
  return std::sqrt(log_n(n) / static_cast<double>(n));
}

double lemma_2_11_lower_bound(double delta) {
  return std::min(0.5 + 4.0 * delta, 0.5 + 0.01);
}

double lemma_2_14_boost(double delta) {
  return std::min(1.7 * delta, 1.0 / 800.0);
}

double stage2_success_fraction(std::size_t n, std::uint64_t m) {
  const double p_recv =
      1.0 - std::pow(1.0 - 1.0 / static_cast<double>(n),
                     static_cast<double>(n) - 1.0);
  return binomial_tail_ge(m, m / 2, p_recv);
}

double stage2_next_bias(std::size_t n, double eps, double delta,
                        std::uint64_t subset_size, std::uint64_t m) {
  const double sigma = stage2_success_fraction(n, m);
  // Lemma 2.11's exact probability with gamma = subset_size = 2r+1 samples.
  const std::uint64_t r = (subset_size - 1) / 2;
  const double p = 0.5 + 2.0 * eps * delta;
  const double p_maj = binomial_tail_ge(subset_size, r + 1, p);
  return sigma * (p_maj - 0.5) + (1.0 - sigma) * delta;
}

std::vector<double> stage2_bias_trajectory(std::size_t n, double eps,
                                           double delta0,
                                           std::uint64_t subset_size,
                                           std::uint64_t m, std::uint64_t k) {
  std::vector<double> trajectory;
  trajectory.reserve(k + 1);
  trajectory.push_back(delta0);
  double delta = delta0;
  for (std::uint64_t i = 0; i < k; ++i) {
    delta = stage2_next_bias(n, eps, delta, subset_size, m);
    trajectory.push_back(delta);
  }
  return trajectory;
}

double majority_min_initial_set(std::size_t n, double eps) {
  return round_unit(n, eps);
}

double majority_min_bias(std::size_t n, std::size_t a) {
  return std::sqrt(log_n(n) / static_cast<double>(a));
}

double desync_overhead_rounds(std::uint64_t D, std::uint64_t phases) {
  return static_cast<double>(D) * static_cast<double>(phases);
}

double silent_two_message_rounds(std::size_t n) {
  return std::sqrt(static_cast<double>(n));
}

double eps_threshold(std::size_t n, double eta) {
  return std::pow(static_cast<double>(n), -0.5 + eta);
}

}  // namespace theory
}  // namespace flip
