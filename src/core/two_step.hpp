#pragma once
// Lemma 2.11's machinery: the probability that the majority of gamma = 2r+1
// noisy samples from a delta-biased population is correct, plus the
// "imaginary two-step process" the proof analyzes and the events of Claims
// 2.12 / 2.13. Exposed both exactly (binomial computations) and as Monte
// Carlo so experiment E6 can cross-check the proof's bounds.

#include <cstdint>

#include "util/rng.hpp"

namespace flip {

/// One sampling configuration of Lemma 2.11.
struct SamplingConfig {
  std::uint64_t r = 0;  ///< gamma = 2r+1 samples
  double eps = 0.0;     ///< channel advantage (flip prob 1/2 - eps)
  double delta = 0.0;   ///< population bias toward the correct opinion

  [[nodiscard]] std::uint64_t gamma() const noexcept { return 2 * r + 1; }
  /// Per-sample probability of being correct: 1/2 + b with b = 2*eps*delta.
  [[nodiscard]] double b() const noexcept { return 2.0 * eps * delta; }
  [[nodiscard]] double sample_correct_prob() const noexcept {
    return 0.5 + b();
  }
};

/// Exact P[majority of the gamma samples is correct]: the samples are iid
/// Bernoulli(1/2 + b), so this is P[Binomial(2r+1, 1/2+b) >= r+1].
double majority_correct_exact(const SamplingConfig& cfg);

/// Exact P[majority correct] computed THROUGH the imaginary two-step process
/// (first step: fair coins; second step: each wrong player flips to correct
/// independently with probability 2b). Must equal majority_correct_exact —
/// the process is an equivalent view — which a test asserts.
double majority_correct_via_two_step(const SamplingConfig& cfg);

/// Monte-Carlo estimate of P[majority correct] by simulating the literal
/// two-step process `trials` times.
double majority_correct_monte_carlo(const SamplingConfig& cfg,
                                    std::uint64_t trials, Xoshiro256& rng);

/// Claim 2.12: P(U_x) = P[first step leaves between r+1 and r+x wrong
/// players] — exactly sum_{i=1..x} C(2r+1, r+i) 2^-(2r+1).
double prob_U_x(std::uint64_t r, std::uint64_t x);

/// Claim 2.12's lower bound x / (10 sqrt(r)), valid for 1 <= x <= sqrt(r).
double claim_2_12_bound(std::uint64_t r, std::uint64_t x);

/// Claim 2.13 events: P[at least x of the w wrong players flip in the
/// second step], with per-player flip probability 2b.
double prob_F_x_given_w(std::uint64_t w, std::uint64_t x, double b);

/// Lemma 2.11's regime classifier, following the proof's case split.
enum class DeltaRegime { kSmall, kMedium, kLarge };
DeltaRegime classify_delta(double eps, double delta);

}  // namespace flip
