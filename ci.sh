#!/usr/bin/env sh
# Local mirror of .github/workflows/ci.yml: the repo's tier-1 verification
# plus the flipsim smoke sweep.
# Usage: ./ci.sh [build-dir]   (default: build)
set -eu

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DFLIP_WERROR=ON
cmake --build "$BUILD_DIR" -j
# Note: pass -j an explicit value — bare `ctest -j` swallows the next
# argument as the job count on CMake < 3.29.
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)")

# Smoke sweep: flipsim must enumerate the registry and emit schema-valid
# JSON for a small sweep. The JSON lands in the build dir; CI uploads it
# as an artifact.
"$BUILD_DIR/tools/flipsim" --list >/dev/null
"$BUILD_DIR/tools/flipsim" --scenario broadcast_small --trials 8 \
  --json "$BUILD_DIR/flipsim_smoke.json"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$BUILD_DIR/flipsim_smoke.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "flipsim-sweep-v1", doc.get("schema")
assert doc["scenario"] == "broadcast_small"
assert doc["points"], "sweep produced no grid points"
point = doc["points"][0]
assert point["trials"] == 8
assert {"params", "success_rate", "rounds", "messages", "wall_seconds"} \
    <= point.keys(), sorted(point.keys())
print("flipsim smoke JSON ok:", sys.argv[1])
EOF
else
  echo "python3 not found; skipping flipsim JSON validation" >&2
fi
