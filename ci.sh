#!/usr/bin/env sh
# Local mirror of .github/workflows/ci.yml: the repo's tier-1 verification
# plus the flipsim smoke sweep.
# Usage: ./ci.sh [build-dir]   (default: build)
set -eu

BUILD_DIR="${1:-build}"

# Determinism lint gate, before anything compiles: zero findings over the
# tree, and the linter's own unit suite (seeded violations per rule class)
# must hold. ctest registers the same two checks when a Python interpreter
# is found at configure time; here in the CI mirror the interpreter is a
# hard requirement so the gate cannot silently vanish.
if command -v python3 >/dev/null 2>&1; then
  python3 tools/flip_lint.py
  python3 tools/flip_lint_test.py
else
  echo "python3 is required for the flip_lint gate" >&2
  exit 1
fi

# FLIP_BUILD_BENCH is forced ON because the perf gate below needs
# bench_engine_perf (a stale cache could have it disabled). FLIP_FUZZ adds
# the fuzz/ harnesses and their per-target corpus-replay smoke to ctest.
cmake -B "$BUILD_DIR" -S . -DFLIP_WERROR=ON -DFLIP_BUILD_BENCH=ON \
  -DFLIP_FUZZ=ON
cmake --build "$BUILD_DIR" -j
# Note: pass -j an explicit value — bare `ctest -j` swallows the next
# argument as the job count on CMake < 3.29.
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)")

# Curated clang-tidy profile (.clang-tidy at the repo root) over the
# exported compile database. Self-skips when the toolchain has no
# clang-tidy (the reference CI container is GCC-only); environments that
# do ship it — developer machines, editor integrations — get the full
# pass. docs/TOOLING.md describes what this layer catches.
if command -v clang-tidy >/dev/null 2>&1 && \
   [ -f "$BUILD_DIR/compile_commands.json" ]; then
  find src tools -name '*.cpp' -print | \
    xargs clang-tidy -p "$BUILD_DIR" --quiet
else
  echo "clang-tidy not found (or no compile database); skipping tidy pass" >&2
fi

# Smoke sweeps: flipsim must enumerate the registry and emit schema-valid
# JSON for a small static sweep, a dynamic-environment one (correlated
# noise bursts at a CI-friendly size), AND a sparse-topology one (the
# --topology override on a graph preset, exercising the GraphRecipient
# route + per-round rewiring end to end). The JSON lands in the build
# dir; CI uploads it as an artifact.
"$BUILD_DIR/tools/flipsim" --list >/dev/null
"$BUILD_DIR/tools/flipsim" --scenario broadcast_small --trials 8 \
  --json "$BUILD_DIR/flipsim_smoke.json"
"$BUILD_DIR/tools/flipsim" --scenario broadcast_burst --n 256 --eps 0.3 \
  --trials 4 --json "$BUILD_DIR/flipsim_dynamic.json"
"$BUILD_DIR/tools/flipsim" --scenario broadcast_dynamic_rewire --n 256 \
  --eps 0.3 --trials 4 --topology dynamic:8:0.2 \
  --json "$BUILD_DIR/flipsim_topology.json"
if command -v python3 >/dev/null 2>&1; then
  python3 - "$BUILD_DIR/flipsim_smoke.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "flipsim-sweep-v1", doc.get("schema")
assert doc["scenario"] == "broadcast_small"
assert doc["engine"] == "batch", doc.get("engine")
assert doc["points"], "sweep produced no grid points"
point = doc["points"][0]
assert point["trials"] == 8
assert {"params", "success_rate", "rounds", "messages", "wall_seconds"} \
    <= point.keys(), sorted(point.keys())
assert point["params"]["schedule"] == "static"
assert point["params"]["churn"] == "none"
print("flipsim smoke JSON ok:", sys.argv[1])
EOF
  python3 - "$BUILD_DIR/flipsim_dynamic.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "flipsim-sweep-v1", doc.get("schema")
assert doc["scenario"] == "broadcast_burst"
point = doc["points"][0]
assert point["params"]["schedule"].startswith("burst("), point["params"]
assert point["params"]["topology"] == "complete", point["params"]
assert "convergence_rounds" in point, sorted(point.keys())
print("flipsim dynamic-scenario JSON ok:", sys.argv[1])
EOF
  python3 - "$BUILD_DIR/flipsim_topology.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["schema"] == "flipsim-sweep-v1", doc.get("schema")
assert doc["scenario"] == "broadcast_dynamic_rewire"
point = doc["points"][0]
assert point["params"]["topology"] == "dynamic(k=8 p=0.2)", point["params"]
print("flipsim topology JSON ok:", sys.argv[1])
EOF
else
  echo "python3 not found; skipping flipsim JSON validation" >&2
fi

# Service-mode smoke: start the resident daemon on an ephemeral port, run
# one client sweep against it, check the streamed lines are valid JSON and
# identical (timing fields stripped) to the one-shot CLI's --jsonl output,
# then shut the daemon down cleanly over the wire (docs/SERVICE.md).
"$BUILD_DIR/tools/flipsim" --serve 0 > "$BUILD_DIR/flipsim_serve.log" &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2>/dev/null || true' EXIT
PORT=""
for _ in $(seq 1 50); do
  PORT="$(sed -n 's/^flipsim: serving on 127\.0\.0\.1://p' "$BUILD_DIR/flipsim_serve.log")"
  [ -n "$PORT" ] && break
  sleep 0.1
done
[ -n "$PORT" ] || { echo "flipsim --serve never reported its port" >&2; exit 1; }
"$BUILD_DIR/tools/flipsim" --connect "$PORT" --ping >/dev/null
"$BUILD_DIR/tools/flipsim" --connect "$PORT" --scenario broadcast_small \
  --trials 8 --jsonl "$BUILD_DIR/flipsim_served.jsonl" --quiet
"$BUILD_DIR/tools/flipsim" --scenario broadcast_small --trials 8 \
  --jsonl "$BUILD_DIR/flipsim_oneshot.jsonl" --quiet
if command -v python3 >/dev/null 2>&1; then
  python3 - "$BUILD_DIR/flipsim_served.jsonl" \
    "$BUILD_DIR/flipsim_oneshot.jsonl" <<'EOF'
import json, sys
served = open(sys.argv[1]).read().splitlines()
oneshot = open(sys.argv[2]).read().splitlines()
assert served, "served sweep streamed no lines"
for line in served:
    point = json.loads(line)
    assert {"params", "success_rate", "rounds", "messages"} <= point.keys(), \
        sorted(point.keys())
strip = lambda lines: [l.split('"trial_seconds"')[0] for l in lines]
assert strip(served) == strip(oneshot), \
    "served sweep diverged from the one-shot CLI"
print("flipsim service smoke ok:", len(served), "line(s)")
EOF
else
  echo "python3 not found; skipping served-JSONL validation" >&2
fi
"$BUILD_DIR/tools/flipsim" --connect "$PORT" --shutdown
wait "$SERVE_PID"
trap - EXIT

# Surrogate accuracy gate: run the CI-sized surrogate-vs-batch error-band
# harness (flipsim --validate-surrogate over every supported registry
# entry) and audit the flipsim-validate-v1 document it writes — the script
# recomputes each cell's |error| <= band verdict from the raw numbers, so
# a broken emitter fails like a broken model. The committed trajectory
# artifact (larger n, more trials) is audited the same way so an
# out-of-band cell can't be committed as "reference". Then a bench_surrogate
# smoke: the mean-field engine must answer an n = 10^8 cell without the
# exact engines' hours.
if command -v python3 >/dev/null 2>&1; then
  python3 tools/check_surrogate_accuracy.py "$BUILD_DIR/tools/flipsim" \
    "$BUILD_DIR/flipsim_validate_surrogate.json" --n 1024 --trials 24
  python3 tools/check_surrogate_accuracy.py --check \
    bench/results/VALIDATION_surrogate.json
else
  echo "python3 not found; skipping surrogate accuracy gate" >&2
fi
"$BUILD_DIR/bench/bench_surrogate" --n 100000000 --evals 2 \
  --json "$BUILD_DIR/bench_surrogate_smoke.json" >/dev/null

# Fast-path perf gate (Release builds only — the batch/classic speedup is
# an optimization property, meaningless at -O0): re-run the CI-sized
# engine A/B from docs/PERFORMANCE.md and fail if the measured speedup
# regressed more than 20% against the committed
# bench/results/BENCH_engine_perf.json point. The shared script gates the
# speedup RATIO, not absolute wall-clock, so slower CI machines don't
# trip it.
BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$BUILD_DIR/CMakeCache.txt")"
if [ "$BUILD_TYPE" = "Release" ] && command -v python3 >/dev/null 2>&1; then
  python3 tools/check_engine_perf.py "$BUILD_DIR/bench/bench_engine_perf" \
    bench/results/BENCH_engine_perf.json "$BUILD_DIR/bench_engine_perf.json"
  # Sharded-engine gate: single-trial shard scaling at the CI size. The
  # script is hardware-aware (docstring): it gates the committed speedup
  # on machines with a matching committed core count, and bounded shard
  # OVERHEAD everywhere else, so 1-core and 64-core runners both get a
  # meaningful check.
  python3 tools/check_engine_perf.py --shards "$BUILD_DIR/bench/bench_shards" \
    bench/results/BENCH_shards.json "$BUILD_DIR/bench_shards.json"
else
  echo "skipping perf gates (build type: ${BUILD_TYPE:-unknown})"
fi

# FLIP_SIMD=ON pass: build the vector round kernels and re-run the whole
# suite — the SIMD differential/property tests only bite in this
# configuration (they SKIP in the scalar build above). The --simd perf gate
# then holds the measured kernel speedup to the committed
# bench/results/BENCH_simd.json point; on machines whose CPU can't run any
# compiled vector set the gate self-skips (isa=scalar) while the exactness
# tests still ran. Skip the whole job with FLIP_SKIP_SIMD=1 (e.g.
# architectures without kernels, where it would duplicate the scalar run).
if [ "${FLIP_SKIP_SIMD:-0}" != "1" ]; then
  SIMD_DIR="${BUILD_DIR}-simd"
  cmake -B "$SIMD_DIR" -S . -DFLIP_WERROR=ON -DFLIP_SIMD=ON \
    -DFLIP_BUILD_BENCH=ON
  cmake --build "$SIMD_DIR" -j
  (cd "$SIMD_DIR" && ctest --output-on-failure -j "$(nproc)")
  SIMD_BUILD_TYPE="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$SIMD_DIR/CMakeCache.txt")"
  if [ "$SIMD_BUILD_TYPE" = "Release" ] && command -v python3 >/dev/null 2>&1; then
    python3 tools/check_engine_perf.py --simd "$SIMD_DIR/bench/bench_simd" \
      bench/results/BENCH_simd.json "$SIMD_DIR/bench_simd.json"
  else
    echo "skipping simd perf gate (build type: ${SIMD_BUILD_TYPE:-unknown})"
  fi
else
  echo "skipping FLIP_SIMD pass (FLIP_SKIP_SIMD=1)"
fi

# ThreadSanitizer pass over the sharded engine: the intra-trial shard
# phases (route/deliver AND the churn liveness phase with its per-shard
# delta merge) and the helping ThreadPool wait are the only cross-thread
# code in the repo; race-check them under a dedicated instrumented build.
# The filter includes the churn-enabled sharded tests, the
# dynamic-scenario AND sparse-topology sweep matrices (per-round graph
# rewiring + the locality-partitioned sharded route run under
# SweepDeterminism/Registry/PropertyDifferential), and (FLIP_SIMD is ON
# here too) the property/differential suites, which drive the vector
# kernels from sharded rounds. The service layer runs here too: the sweep
# daemon's ingest/runner threads, the ring-buffer handoff, the framing
# helpers, and the thread-local TrialArena lease stack
# (ServiceTest/RingBufferTest/FrameTest/TrialArenaTest — none need the
# flipsim binary, so FLIP_BUILD_TOOLS=OFF is fine). Skip with
# FLIP_SKIP_TSAN=1 (e.g. toolchains without tsan runtimes).
if [ "${FLIP_SKIP_TSAN:-0}" != "1" ]; then
  TSAN_DIR="${BUILD_DIR}-tsan"
  cmake -B "$TSAN_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DFLIP_TSAN=ON -DFLIP_SIMD=ON -DFLIP_BUILD_BENCH=OFF \
    -DFLIP_BUILD_EXAMPLES=OFF -DFLIP_BUILD_TOOLS=OFF
  cmake --build "$TSAN_DIR" -j
  (cd "$TSAN_DIR" && ctest --output-on-failure -j "$(nproc)" \
    -R 'BatchEngineTest|SweepDeterminismTest|ThreadPoolTest|PropertyDifferentialTest|SimdDifferentialTest|SimdKernelsTest|ServiceTest|RingBufferTest|FrameTest|TrialArenaTest|RegistryTest.TopologyEntriesRunBitEqualAcrossSubstratesAndShards')
else
  echo "skipping ThreadSanitizer pass (FLIP_SKIP_TSAN=1)"
fi

# AddressSanitizer + UndefinedBehaviorSanitizer pass: the FULL ctest suite
# (the 21-second suite is cheap even instrumented; the builds dominate) in
# BOTH FLIP_SIMD settings — the packed SoA paths, the SIMD stack buffers,
# and the arena lease stack are exactly where a one-past-the-end write
# hides from the scalar build — plus the fuzz harnesses' corpus smoke and
# the live daemon smoke (serve/ping/sweep/shutdown, asserting the served
# stream under instrumentation). halt_on_error + detect_leaks: any report
# is a hard failure. Skip with FLIP_SKIP_ASAN=1 (e.g. toolchains without
# the runtimes). TSan is mutually exclusive with ASan (CMake enforces it),
# hence the separate trees.
if [ "${FLIP_SKIP_ASAN:-0}" != "1" ]; then
  ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1:check_initialization_order=1:detect_stack_use_after_return=1"
  UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
  export ASAN_OPTIONS UBSAN_OPTIONS
  for SIMD in ON OFF; do
    ASAN_DIR="${BUILD_DIR}-asan"
    [ "$SIMD" = "OFF" ] && ASAN_DIR="${BUILD_DIR}-asan-scalar"
    cmake -B "$ASAN_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DFLIP_ASAN=ON -DFLIP_UBSAN=ON -DFLIP_SIMD="$SIMD" -DFLIP_FUZZ=ON \
      -DFLIP_WERROR=ON -DFLIP_BUILD_BENCH=OFF -DFLIP_BUILD_EXAMPLES=OFF
    cmake --build "$ASAN_DIR" -j
    (cd "$ASAN_DIR" && ctest --output-on-failure -j "$(nproc)")
  done

  # Daemon smoke under ASan+UBSan: the resident service is the one
  # component whose lifetime outlives a test binary — leases, ring buffer,
  # framing and shutdown all run instrumented here.
  ASAN_DIR="${BUILD_DIR}-asan"
  "$ASAN_DIR/tools/flipsim" --serve 0 > "$ASAN_DIR/flipsim_serve.log" &
  ASAN_SERVE_PID=$!
  trap 'kill "$ASAN_SERVE_PID" 2>/dev/null || true' EXIT
  PORT=""
  for _ in $(seq 1 100); do
    PORT="$(sed -n 's/^flipsim: serving on 127\.0\.0\.1://p' "$ASAN_DIR/flipsim_serve.log")"
    [ -n "$PORT" ] && break
    sleep 0.1
  done
  [ -n "$PORT" ] || { echo "ASan flipsim --serve never reported its port" >&2; exit 1; }
  "$ASAN_DIR/tools/flipsim" --connect "$PORT" --ping >/dev/null
  "$ASAN_DIR/tools/flipsim" --connect "$PORT" --scenario broadcast_small \
    --trials 4 --jsonl "$ASAN_DIR/flipsim_served.jsonl" --quiet
  [ -s "$ASAN_DIR/flipsim_served.jsonl" ] || {
    echo "ASan served sweep streamed nothing" >&2; exit 1; }
  "$ASAN_DIR/tools/flipsim" --connect "$PORT" --shutdown
  wait "$ASAN_SERVE_PID"
  trap - EXIT
  unset ASAN_OPTIONS UBSAN_OPTIONS
else
  echo "skipping ASan+UBSan pass (FLIP_SKIP_ASAN=1)"
fi
