#!/usr/bin/env sh
# Local mirror of .github/workflows/ci.yml: the repo's tier-1 verification.
# Usage: ./ci.sh [build-dir]   (default: build)
set -eu

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . -DFLIP_WERROR=ON
cmake --build "$BUILD_DIR" -j
# Note: pass -j an explicit value — bare `ctest -j` swallows the next
# argument as the job count on CMake < 3.29.
cd "$BUILD_DIR" && ctest --output-on-failure -j "$(nproc)"
