// E13 — simulator engineering throughput: classic engine vs batched fast
// path (docs/PERFORMANCE.md documents the methodology).
//
// Not a paper claim: times the substrate. Both columns run the SAME
// broadcast workload with the SAME per-trial seeds and produce identical
// results (tests/batch_engine_test.cpp holds them to bit-equality); only
// the simulation substrate differs:
//
//   classic — virtual-dispatch Engine + BreatheProtocol, fresh state per
//             trial (the PR-2-era architecture);
//   batch   — sim/batch_engine.hpp packed SoA fast path with persistent
//             per-worker scratch.
//
// The committed reference point lives in bench/results/BENCH_engine_perf
// .json; ci.sh re-runs the CI-sized grid and fails on a >20% speedup
// regression. The acceptance-sized run is
//
//   bench_engine_perf --n 100000 --trials 8 --threads 8
//
// which takes a few minutes because the classic column really is that slow.

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "cli/bench_report.hpp"
#include "sim/trial.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/scenarios.hpp"

namespace {

struct EngineRun {
  double trials_per_sec = 0.0;
  double mmsg_per_sec = 0.0;
  double wall_seconds = 0.0;
};

EngineRun run_one(std::size_t n, flip::EngineMode mode, std::size_t trials,
                  std::size_t threads, std::uint64_t seed) {
  flip::BroadcastScenario scenario;
  scenario.n = n;
  scenario.eps = 0.2;
  scenario.engine = mode;

  flip::TrialOptions options;
  options.trials = trials;
  options.master_seed = seed;
  options.pool = &flip::ThreadPool::sized(threads);
  const flip::TrialSummary summary =
      flip::run_trials(flip::broadcast_trial_fn(scenario), options);

  EngineRun run;
  run.wall_seconds = summary.wall_seconds;
  run.trials_per_sec = static_cast<double>(trials) / summary.wall_seconds;
  run.mmsg_per_sec = summary.messages.mean() * static_cast<double>(trials) /
                     summary.wall_seconds / 1e6;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  std::string n_list = "1024,16384";
  std::optional<std::size_t> trials;
  std::optional<std::size_t> threads;
  std::optional<std::uint64_t> seed;
  flip::cli::BenchOptions options;

  flip::cli::ArgParser parser(
      "bench_engine_perf",
      "E13: classic vs batched engine throughput on the broadcast workload.\n"
      "Identical per-trial results; only the substrate differs.");
  parser.add_option("--n", "list", "comma-separated population sizes",
                    &n_list);
  parser.add_size("--trials", "trials per (n, engine) cell (default 8)",
                  &trials);
  parser.add_size("--threads", "worker threads (default: hardware)",
                  &threads);
  parser.add_uint64("--seed", "master seed (default 0x5eed)", &seed);
  parser.add_flag("--csv", "emit table rows as CSV instead of rendering",
                  &options.csv);
  parser.add_option("--json", "path",
                    "also write the flip-bench-v1 JSON report to <path>",
                    &options.json_path);
  if (!parser.parse(argc, argv)) {
    if (parser.help_requested()) {
      std::cout << parser.usage();
      return 0;
    }
    std::cerr << "error: " << parser.error() << "\n\n" << parser.usage();
    return 2;
  }

  std::string error;
  const auto ns = flip::cli::parse_size_list(n_list, error);
  if (!ns || ns->empty()) {
    std::cerr << "error: --n: " << (error.empty() ? "empty list" : error)
              << "\n";
    return 2;
  }

  flip::cli::bench_banner(
      options, "E13 bench_engine_perf",
      "Engineering claim (docs/PERFORMANCE.md): the batched fast path "
      "sustains >= 3x the broadcast trial throughput of the PR-2-era "
      "classic engine at n = 100k, with bit-identical results.");

  flip::TextTable table({"n", "trials", "classic trials/s", "classic Mmsg/s",
                         "batch trials/s", "batch Mmsg/s", "speedup"});
  for (const std::size_t n : *ns) {
    const EngineRun classic =
        run_one(n, flip::EngineMode::kClassic, trials.value_or(8),
                threads.value_or(0), seed.value_or(0x5eedULL));
    const EngineRun batch =
        run_one(n, flip::EngineMode::kBatch, trials.value_or(8),
                threads.value_or(0), seed.value_or(0x5eedULL));
    table.row()
        .cell(n)
        .cell(trials.value_or(8))
        .cell(classic.trials_per_sec, 4)
        .cell(classic.mmsg_per_sec, 1)
        .cell(batch.trials_per_sec, 4)
        .cell(batch.mmsg_per_sec, 1)
        .cell(batch.trials_per_sec / classic.trials_per_sec, 2);
  }
  flip::cli::bench_emit(
      options, table,
      "speedup = batch / classic trials per second, measured in this "
      "process on this machine; results of the two columns are identical "
      "per (seed, trial).");
  return 0;
}
