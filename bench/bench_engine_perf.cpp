// E13 — simulator engineering throughput (google-benchmark).
//
// Not a paper claim: measures the substrate so experiment runtimes are
// interpretable — messages/second through the push-gossip fabric, channel
// draws/second, and full protocol rounds/second at several n.

#include <benchmark/benchmark.h>

#include "core/breathe.hpp"
#include "net/channel.hpp"
#include "sim/engine.hpp"
#include "sim/mailbox.hpp"

namespace {

void BM_MailboxPush(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  flip::Mailbox mailbox(n);
  flip::Xoshiro256 rng(1);
  std::uint64_t pushed = 0;
  for (auto _ : state) {
    mailbox.reset();
    for (flip::AgentId a = 0; a < n; ++a) {
      mailbox.push(flip::Message{a, flip::Opinion::kOne}, rng);
    }
    pushed += n;
    benchmark::DoNotOptimize(mailbox.recipients().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(pushed));
}
BENCHMARK(BM_MailboxPush)->Arg(1024)->Arg(16384)->Arg(262144);

void BM_BscTransmit(benchmark::State& state) {
  flip::BinarySymmetricChannel channel(0.2);
  flip::Xoshiro256 rng(2);
  std::uint64_t count = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(channel.transmit(flip::Opinion::kOne, rng));
    ++count;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(count));
}
BENCHMARK(BM_BscTransmit);

void BM_AllSendRound(benchmark::State& state) {
  // One full engine round with every agent sending: the Stage II workload.
  const auto n = static_cast<std::size_t>(state.range(0));

  class AllSend final : public flip::Protocol {
   public:
    explicit AllSend(std::size_t n) : n_(n) {}
    void collect_sends(flip::Round, std::vector<flip::Message>& out) override {
      for (flip::AgentId a = 0; a < n_; ++a) {
        out.push_back(flip::Message{a, flip::Opinion::kOne});
      }
    }
    void deliver(flip::AgentId, flip::Opinion, flip::Round) override {}
    void end_round(flip::Round) override {}
    [[nodiscard]] bool done(flip::Round) const override { return false; }
    [[nodiscard]] std::string name() const override { return "all-send"; }
    [[nodiscard]] double current_bias() const override { return 0.0; }
    [[nodiscard]] std::size_t current_opinionated() const override {
      return 0;
    }

   private:
    std::size_t n_;
  };

  flip::BinarySymmetricChannel channel(0.2);
  flip::Xoshiro256 rng(3);
  flip::Engine engine(n, channel, rng);
  AllSend protocol(n);
  std::uint64_t messages = 0;
  for (auto _ : state) {
    const flip::Metrics m = engine.run(protocol, 1);
    messages += m.messages_sent;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(messages));
}
BENCHMARK(BM_AllSendRound)->Arg(1024)->Arg(16384)->Arg(131072);

void BM_FullBroadcast(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const double eps = 0.3;
  const flip::Params params = flip::Params::calibrated(n, eps);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    flip::Xoshiro256 engine_rng = flip::make_stream(seed, 0);
    flip::Xoshiro256 protocol_rng = flip::make_stream(seed, 1);
    ++seed;
    flip::BinarySymmetricChannel channel(eps);
    flip::Engine engine(n, channel, engine_rng);
    flip::BreatheProtocol protocol(params, flip::broadcast_config(),
                                   protocol_rng);
    const flip::Metrics m = engine.run(protocol, protocol.total_rounds());
    benchmark::DoNotOptimize(m.rounds);
  }
}
BENCHMARK(BM_FullBroadcast)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
