#pragma once
// Shared plumbing for the experiment harness binaries: a uniform banner
// tying each table back to the paper claim it regenerates, and machine
// output for EXPERIMENTS.md and the BENCH_*.json trajectory. The actual
// parsing/emission lives in src/cli/bench_report.* so every binary gets
// the same flags (--csv, --json <path>, --help) from one parser; this
// header only keeps the flip::bench names the binaries were written
// against.

#include <iostream>
#include <string>

#include "cli/bench_report.hpp"
#include "util/table.hpp"

namespace flip::bench {

using Options = cli::BenchOptions;

inline Options parse_args(int argc, char** argv) {
  return cli::parse_bench_args(argc, argv);
}

inline void banner(const Options& options, const std::string& id,
                   const std::string& claim) {
  cli::bench_banner(options, id, claim);
}

inline void emit(const Options& options, const TextTable& table,
                 const std::string& note = {}) {
  cli::bench_emit(options, table, note);
}

}  // namespace flip::bench
