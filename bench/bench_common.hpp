#pragma once
// Shared plumbing for the experiment harness binaries: a uniform banner
// tying each table back to the paper claim it regenerates, and --csv output
// for machine consumption (EXPERIMENTS.md is produced from these tables).

#include <cstring>
#include <iostream>
#include <string>

#include "util/table.hpp"

namespace flip::bench {

struct Options {
  bool csv = false;
};

inline Options parse_args(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) options.csv = true;
  }
  return options;
}

inline void banner(const Options& options, const std::string& id,
                   const std::string& claim) {
  if (options.csv) return;
  std::cout << "=== " << id << " ===\n" << claim << "\n\n";
}

inline void emit(const Options& options, const TextTable& table,
                 const std::string& note = {}) {
  if (options.csv) {
    std::cout << table.csv();
  } else {
    std::cout << table << '\n';
    if (!note.empty()) std::cout << note << "\n\n";
  }
}

}  // namespace flip::bench
