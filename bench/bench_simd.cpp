// E18 — SIMD round-kernel speedup: the same single-trial broadcast, scalar
// kernels vs the best vector set this build + machine can run, in one
// process (docs/PERFORMANCE.md documents the methodology and the committed
// trajectory point lives in bench/results/BENCH_simd.json).
//
// Not a paper claim: times the substrate. The two timed runs execute the
// SAME (seed, trial) workload and produce bit-identical outcomes — the
// FLIP_SIMD exactness contract (tests/simd_differential_test.cpp) is what
// makes this an apples-to-apples A/B rather than a tradeoff curve. The
// `isa` column records which vector set was measured and `cores` what the
// machine could deliver; in a FLIP_SIMD=OFF build (or on a CPU without any
// compiled vector ISA) the rows degenerate to isa=scalar, speedup=1, which
// tools/check_engine_perf.py --simd treats as "nothing to gate".

#include <chrono>
#include <cstdint>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cli/args.hpp"
#include "cli/bench_report.hpp"
#include "simd/simd.hpp"
#include "util/table.hpp"
#include "workload/scenarios.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Per-trial wall-clock of `reps` identical broadcast trials under the
/// currently forced kernel set.
double time_trials(const flip::BroadcastScenario& scenario, std::uint64_t seed,
                   std::size_t reps) {
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t t = 0; t < reps; ++t) {
    (void)flip::run_broadcast(scenario, seed, t);
  }
  return seconds_since(start) / static_cast<double>(reps);
}

}  // namespace

int main(int argc, char** argv) {
  std::string n_list = "16384,100000";
  std::optional<std::size_t> trials;
  std::optional<std::uint64_t> seed;
  flip::cli::BenchOptions options;

  flip::cli::ArgParser parser(
      "bench_simd",
      "E18: single-trial broadcast wall-clock, scalar vs SIMD round "
      "kernels.\nBoth rows run the SAME (seed, trial) workload; outcomes "
      "are bit-identical\n(the FLIP_SIMD exactness contract), only the "
      "kernel dispatch differs.");
  parser.add_option("--n", "list", "comma-separated population sizes",
                    &n_list);
  parser.add_size("--trials", "trials per cell (default 2)", &trials);
  parser.add_uint64("--seed", "master seed (default 0x5eed)", &seed);
  parser.add_flag("--csv", "emit table rows as CSV instead of rendering",
                  &options.csv);
  parser.add_option("--json", "path",
                    "also write the flip-bench-v1 JSON report to <path>",
                    &options.json_path);
  if (!parser.parse(argc, argv)) {
    if (parser.help_requested()) {
      std::cout << parser.usage();
      return 0;
    }
    std::cerr << "error: " << parser.error() << "\n\n" << parser.usage();
    return 2;
  }

  std::string error;
  const auto ns = flip::cli::parse_size_list(n_list, error);
  if (!ns || ns->empty()) {
    std::cerr << "error: --n: " << (error.empty() ? "empty list" : error)
              << "\n";
    return 2;
  }

  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const flip::simd::Isa best = flip::simd::best_isa();
  flip::cli::bench_banner(
      options, "E18 bench_simd",
      "Engineering claim (docs/PERFORMANCE.md): the counter-keyed RNG makes "
      "the route/flip phases pure lane arithmetic, so the vector kernels "
      "replay the scalar draws exactly — same science, less wall-clock.");

  flip::TextTable table({"n", "trials", "cores", "isa", "scalar s/trial",
                         "simd s/trial", "speedup"});
  for (const std::size_t n : *ns) {
    flip::BroadcastScenario scenario;
    scenario.n = n;
    scenario.eps = 0.2;
    scenario.engine = flip::EngineMode::kBatch;

    const std::size_t reps = trials.value_or(2);
    if (!flip::simd::force_isa(flip::simd::Isa::kScalar)) return 1;
    const double scalar_s = time_trials(scenario, seed.value_or(0x5eedULL),
                                        reps);
    double simd_s = scalar_s;
    if (best != flip::simd::Isa::kScalar) {
      if (!flip::simd::force_isa(best)) return 1;
      simd_s = time_trials(scenario, seed.value_or(0x5eedULL), reps);
    }
    flip::simd::reset_isa();

    table.row()
        .cell(n)
        .cell(reps)
        .cell(cores)
        .cell(flip::simd::isa_name(best))
        .cell(scalar_s, 3)
        .cell(simd_s, 3)
        .cell(scalar_s / simd_s, 2);
  }
  flip::cli::bench_emit(
      options, table,
      "speedup = scalar s/trial / simd s/trial, measured in this process on "
      "this machine; outcomes are bit-identical between the two runs. "
      "isa=scalar means this build/machine has no vector kernels (speedup "
      "is definitionally 1).");
  return 0;
}
