// E2 — Theorem 2.17 (round complexity in eps).
//
// Claim: rounds scale as 1/eps^2. Fixing n and sweeping eps, measured
// rounds * eps^2 must stay ~constant and the log-log slope of rounds
// against eps must be ~ -2.

#include "bench_common.hpp"

#include <vector>

#include "core/theory.hpp"
#include "util/stats.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  const auto options = flip::bench::parse_args(argc, argv);
  flip::bench::banner(
      options, "E2 bench_broadcast_eps",
      "Theorem 2.17: rounds ~ 1/eps^2 at fixed n.\n"
      "Expect: rounds*eps^2 ~ constant; log-log slope vs eps ~ -2; "
      "success ~ 1 throughout.");

  const std::size_t n = 8192;
  flip::TextTable table({"eps", "n", "trials", "success", "rounds",
                         "rounds*eps^2", "messages*eps^2/n"});
  std::vector<double> epses;
  std::vector<double> rounds;
  for (const double eps : {0.35, 0.3, 0.25, 0.2, 0.15, 0.125}) {
    flip::BroadcastScenario scenario;
    scenario.n = n;
    scenario.eps = eps;
    flip::TrialOptions trial_options;
    trial_options.trials = eps >= 0.2 ? 8 : 5;
    trial_options.master_seed = 0xE2;
    const flip::TrialSummary summary =
        flip::run_trials(flip::broadcast_trial_fn(scenario), trial_options);
    table.row()
        .cell(eps, 3)
        .cell(n)
        .cell(summary.trials)
        .cell(summary.success.to_string())
        .cell(summary.rounds.mean(), 0)
        .cell(summary.rounds.mean() * eps * eps, 1)
        .cell(summary.messages.mean() * eps * eps / static_cast<double>(n),
              1);
    epses.push_back(eps);
    rounds.push_back(summary.rounds.mean());
  }
  const flip::PowerLawFit fit = flip::fit_power_law(epses, rounds);
  flip::bench::emit(options, table,
                    "power-law fit: rounds ~ " +
                        flip::format_fixed(fit.prefactor, 1) + " * eps^" +
                        flip::format_fixed(fit.exponent, 2) + "  (theory: -2; R^2 = " +
                        flip::format_fixed(fit.r_squared, 4) + ")");
  return 0;
}
