// E4 — Claim 2.4, Corollaries 2.5/2.6 (Stage I layer growth).
//
// Claim 2.4: w.h.p. (beta+1)^i X0 / 16 <= X_i <= (beta+1)^i X0 for every
// middle phase i. Corollary 2.5: X_T = Omega(eps^2 n). Corollary 2.6: all
// agents are activated by the end of Stage I.
//
// Uses a large n with mild noise so that the schedule has several middle
// phases (T >= 2), and runs Stage I only.

#include "bench_common.hpp"

#include "core/params.hpp"
#include "core/theory.hpp"
#include "util/stats.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  const auto options = flip::bench::parse_args(argc, argv);
  flip::bench::banner(
      options, "E4 bench_stage1_growth",
      "Claim 2.4: layer sizes X_i within [(beta+1)^i X0/16, (beta+1)^i X0];\n"
      "Cor 2.5: X_T = Omega(eps^2 n); Cor 2.6: everyone activated.");

  const std::size_t n = 1 << 20;
  const double eps = 0.35;
  const flip::Params params = flip::Params::calibrated(n, eps);
  if (!options.csv) {
    std::cout << params.describe() << "\n\n";
  }

  constexpr std::size_t kTrials = 4;
  // Accumulate X_i across trials, indexed by phase.
  std::vector<flip::RunningStats> x_stats(params.stage1().num_phases());
  std::size_t activated_all = 0;
  flip::RunningStats x_t;  // activated at the START of the last phase
  for (std::size_t t = 0; t < kTrials; ++t) {
    flip::BroadcastScenario scenario;
    scenario.n = n;
    scenario.eps = eps;
    scenario.stage1_only = true;
    const flip::RunDetail detail = flip::run_broadcast(scenario, 0xE4, t);
    for (const auto& s : detail.stage1) {
      x_stats[s.phase].add(static_cast<double>(s.total_activated));
    }
    if (!detail.stage1.empty() &&
        detail.stage1.back().total_activated == n) {
      ++activated_all;
    }
    // X_T: activated before the final phase = total at phase T's end.
    if (detail.stage1.size() >= 2) {
      x_t.add(static_cast<double>(
          detail.stage1[detail.stage1.size() - 2].total_activated));
    }
  }

  flip::TextTable table({"phase", "mean X_i", "lower bound X0(b+1)^i/16",
                         "upper bound X0(b+1)^i", "within bounds"});
  const double x0 = x_stats[0].mean();
  const std::uint64_t beta = params.stage1().beta;
  for (std::uint64_t i = 0; i <= params.stage1().T; ++i) {
    const double xi = x_stats[i].mean();
    const double lo =
        flip::theory::stage1_growth_lower(static_cast<std::uint64_t>(x0),
                                          beta, i);
    const double hi =
        flip::theory::stage1_growth_upper(static_cast<std::uint64_t>(x0),
                                          beta, i);
    table.row()
        .cell("phase " + std::to_string(i))
        .cell(xi, 0)
        .cell(lo, 0)
        .cell(hi, 0)
        .cell(xi >= lo && xi <= hi + 0.5);
  }
  table.row()
      .cell("phase T+1 (final)")
      .cell(x_stats[params.stage1().T + 1].mean(), 0)
      .cell(static_cast<double>(n), 0)
      .cell(static_cast<double>(n), 0)
      .cell(activated_all == kTrials);

  const double eps2n = eps * eps * static_cast<double>(n);
  flip::bench::emit(
      options, table,
      "X_T / (eps^2 n) = " + flip::format_fixed(x_t.mean() / eps2n, 2) +
          " (Cor 2.5 expects a positive constant); all-activated in " +
          std::to_string(activated_all) + "/" + std::to_string(kTrials) +
          " trials (Cor 2.6).");
  return 0;
}
