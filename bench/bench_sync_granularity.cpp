// E15 — Section 4's open question: how much synchronization is needed?
//
// "An intriguing question left for future work can be to quantify the
//  minimal degree of synchronisation required for solving the information
//  dissemination problems efficiently."
//
// Probe: build the modified schedule for a declared skew bound D, but let
// the TRUE wake spread exceed it. At spread <= D correctness holds by
// construction (Theorem 3.1); beyond D, container attribution starts
// leaking messages across phases and we measure how far the protocol
// stretches before the guarantee degrades.

#include "bench_common.hpp"

#include <cmath>

#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  const auto options = flip::bench::parse_args(argc, argv);
  flip::bench::banner(
      options, "E15 bench_sync_granularity",
      "Section 4 open question: schedule slack D vs true clock spread.\n"
      "Expect: success ~1 for spread <= D (Thm 3.1) and graceful "
      "degradation beyond, locating the protocol's real synchronization "
      "need.");

  const std::size_t n = 4096;
  const double eps = 0.25;
  const auto log_n = static_cast<flip::Round>(
      std::ceil(std::log(static_cast<double>(n))));
  const flip::Round declared = 2 * log_n;

  flip::TextTable table({"declared D", "true spread", "spread/D", "trials",
                         "success", "final correct fraction"});
  // Everything funnels through Stage II's majority sampling, so the
  // protocol absorbs spreads far beyond D; push until wake offsets are
  // comparable to the whole schedule to find the true breaking point.
  for (const double mult : {1.0, 8.0, 32.0, 64.0, 96.0, 128.0}) {
    flip::DesyncScenario scenario;
    scenario.n = n;
    scenario.eps = eps;
    scenario.max_skew = declared;
    scenario.actual_skew =
        static_cast<flip::Round>(mult * static_cast<double>(declared));
    flip::TrialOptions trial_options;
    trial_options.trials = 6;
    trial_options.master_seed = 0xE15;
    const flip::TrialSummary summary =
        flip::run_trials(flip::desync_trial_fn(scenario), trial_options);
    table.row()
        .cell(std::size_t{declared})
        .cell(std::size_t{scenario.actual_skew})
        .cell(mult, 1)
        .cell(summary.trials)
        .cell(summary.success.to_string())
        .cell(summary.correct_fraction.mean(), 4);
  }
  flip::bench::emit(
      options, table,
      "Theorem 3.1 covers spread/D <= 1. The region above 1 is outside the "
      "theorem;\nthe slack the protocol tolerates there quantifies the "
      "'minimal synchronization' the paper asks about.");
  return 0;
}
