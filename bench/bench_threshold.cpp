// E12 — the model's validity range: eps > n^(-1/2+eta).
//
// Section 2 assumes eps > 1/n^(1/2-eta). The sweep drives eps down through
// n^(-1/2) at fixed n and watches the guarantee degrade: near and below the
// threshold the phase-0 sample bias eps/2 sinks under its own sampling
// noise and runs converge to an arbitrary opinion.

#include "bench_common.hpp"

#include "core/theory.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  const auto options = flip::bench::parse_args(argc, argv);
  flip::bench::banner(
      options, "E12 bench_threshold",
      "Model range (Sec 2): eps > n^(-1/2+eta). Sweeping eps down through "
      "n^(-1/2):\nexpect success ~1 well above the threshold and breakdown "
      "at/below it.");

  const std::size_t n = 256;
  const double threshold = flip::theory::eps_threshold(n, 0.0);  // n^(-1/2)

  flip::TextTable table({"eps", "eps / n^(-1/2)", "above model range",
                         "trials", "success", "final correct fraction",
                         "rounds"});
  for (const double mult : {6.0, 3.0, 1.5, 1.0, 0.7}) {
    const double eps = mult * threshold;
    flip::BroadcastScenario scenario;
    scenario.n = n;
    scenario.eps = eps;
    flip::TrialOptions trial_options;
    trial_options.trials = 8;
    trial_options.master_seed = 0xE12;
    const flip::TrialSummary summary =
        flip::run_trials(flip::broadcast_trial_fn(scenario), trial_options);
    const flip::Params p = flip::Params::calibrated(n, eps);
    table.row()
        .cell(eps, 4)
        .cell(mult, 2)
        .cell(p.eps_above_threshold())
        .cell(summary.trials)
        .cell(summary.success.to_string())
        .cell(summary.correct_fraction.mean(), 4)
        .cell(summary.rounds.mean(), 0);
  }
  flip::bench::emit(
      options, table,
      "Below the threshold (multiplier <= 1) the per-sample advantage is "
      "too small for the\nphase-0 seed bias to survive its own sampling "
      "noise: the w.h.p. guarantee disappears.");
  return 0;
}
