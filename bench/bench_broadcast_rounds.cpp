// E1 — Theorem 2.17 (round complexity in n).
//
// Claim: the noisy broadcast problem is solved w.h.p. in O(log n / eps^2)
// rounds. Fixing eps and sweeping n, measured rounds divided by
// log(n)/eps^2 must stay in a constant band, and the success rate must stay
// at ~1.

#include "bench_common.hpp"

#include <vector>

#include "core/theory.hpp"
#include "util/stats.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  const auto options = flip::bench::parse_args(argc, argv);
  flip::bench::banner(
      options, "E1 bench_broadcast_rounds",
      "Theorem 2.17: noisy broadcast in O(log n / eps^2) rounds, w.h.p.\n"
      "Expect: rounds/(log n/eps^2) ~ constant across n; success ~ 1.");

  const double eps = 0.25;
  flip::TextTable table({"n", "eps", "trials", "success", "rounds",
                         "rounds/(log n/eps^2)"});
  std::vector<double> ns;
  std::vector<double> rounds;
  for (const std::size_t n :
       {std::size_t{1024}, std::size_t{2048}, std::size_t{4096},
        std::size_t{8192}, std::size_t{16384}, std::size_t{32768}}) {
    flip::BroadcastScenario scenario;
    scenario.n = n;
    scenario.eps = eps;
    flip::TrialOptions trial_options;
    trial_options.trials = n <= 4096 ? 12 : (n <= 16384 ? 8 : 5);
    trial_options.master_seed = 0xE1;
    const flip::TrialSummary summary =
        flip::run_trials(flip::broadcast_trial_fn(scenario), trial_options);
    const double unit = flip::theory::round_unit(n, eps);
    table.row()
        .cell(n)
        .cell(eps, 2)
        .cell(summary.trials)
        .cell(summary.success.to_string())
        .cell(summary.rounds.mean(), 0)
        .cell(summary.rounds.mean() / unit, 2);
    ns.push_back(static_cast<double>(n));
    rounds.push_back(summary.rounds.mean());
  }
  // rounds ~ log n: the log-log slope against n should be well below a
  // power law (0.1-0.2 at these sizes).
  const double slope = flip::log_log_slope(ns, rounds);
  flip::bench::emit(options, table,
                    "log-log slope of rounds vs n: " +
                        flip::format_fixed(slope, 3) +
                        " (logarithmic growth: slope << 1)");
  return 0;
}
