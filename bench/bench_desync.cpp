// E10 — Theorem 3.1 (removing the global clock).
//
// Claim: with clocks up to D apart, the modified schedule solves noisy
// broadcast in the synchronous round count plus an additive O(D log n)
// (O(log^2 n) once the Section 3.2 pre-phase bounds D by 2 log n), with
// the SAME message complexity. The sweep varies D and the attribution rule
// and includes the full clock-sync pipeline.

#include "bench_common.hpp"

#include <cmath>

#include "core/params.hpp"
#include "core/theory.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  const auto options = flip::bench::parse_args(argc, argv);
  flip::bench::banner(
      options, "E10 bench_desync",
      "Theorem 3.1: no global clock => +O(D * #phases) rounds, unchanged "
      "message complexity,\nsame success guarantee. D rows sweep the skew; "
      "the last row runs the Section 3.2 pre-phase.");

  const std::size_t n = 4096;
  const double eps = 0.25;
  const flip::Params params = flip::Params::calibrated(n, eps);
  const double sync_rounds = static_cast<double>(params.total_rounds());
  const auto log_n = static_cast<flip::Round>(
      std::ceil(std::log(static_cast<double>(n))));

  flip::TextTable table({"D (skew)", "attribution", "trials", "success",
                         "rounds", "extra rounds", "theory D*(P+1)",
                         "messages/sync-messages"});

  double sync_messages = 0.0;

  auto add_row = [&](flip::Round skew, flip::Attribution attribution,
                     bool clock_sync, const std::string& label) {
    flip::DesyncScenario scenario;
    scenario.n = n;
    scenario.eps = eps;
    scenario.max_skew = skew;
    scenario.attribution = attribution;
    scenario.use_clock_sync = clock_sync;
    flip::TrialOptions trial_options;
    trial_options.trials = 6;
    trial_options.master_seed = 0xE10;
    const flip::TrialSummary summary =
        flip::run_trials(flip::desync_trial_fn(scenario), trial_options);
    // Phase count for the theory column (from one detailed run).
    const flip::RunDetail detail = flip::run_desync(scenario, 0xE10, 0);
    if (sync_messages == 0.0) sync_messages = summary.messages.mean();
    table.row()
        .cell(label)
        .cell(attribution == flip::Attribution::kOracle ? "oracle" : "local")
        .cell(summary.trials)
        .cell(summary.success.to_string())
        .cell(summary.rounds.mean(), 0)
        .cell(summary.rounds.mean() - sync_rounds, 0)
        .cell(static_cast<double>(detail.desync_overhead), 0)
        .cell(summary.messages.mean() / sync_messages, 3);
  };

  add_row(0, flip::Attribution::kLocalWindow, false, "0 (sync)");
  add_row(log_n, flip::Attribution::kLocalWindow, false, "log n");
  add_row(2 * log_n, flip::Attribution::kLocalWindow, false, "2 log n");
  add_row(2 * log_n, flip::Attribution::kOracle, false, "2 log n");
  add_row(8 * log_n, flip::Attribution::kLocalWindow, false, "8 log n");
  add_row(0, flip::Attribution::kLocalWindow, true, "clock-sync (Sec 3.2)");

  flip::bench::emit(
      options, table,
      "Extra rounds track D*(#phases+1) exactly (the schedule slack); the "
      "message ratio stays ~1.\nThe clock-sync row additionally pays its "
      "own ~4 log n pre-phase rounds and n log n activation messages.");
  return 0;
}
