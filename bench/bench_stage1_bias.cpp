// E5 — Claims 2.2 & 2.8, Lemma 2.3 (Stage I bias preservation).
//
// Claim 2.2: the phase-0 layer has bias eps_0 >= eps/2.
// Claim 2.8: the phase-i layer has bias eps_i >= eps^(i+1)/2 — each relay
//            layer multiplies the bias by about 2*eps (one noisy sample of
//            a biased population: delta -> 2 eps delta).
// Lemma 2.3: at Stage I's end all agents hold opinions whose overall bias
//            is Omega(sqrt(log n / n)) — tiny but nonzero, which is all
//            Stage II needs.

#include "bench_common.hpp"

#include "core/params.hpp"
#include "core/theory.hpp"
#include "util/stats.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  const auto options = flip::bench::parse_args(argc, argv);
  flip::bench::banner(
      options, "E5 bench_stage1_bias",
      "Claims 2.2/2.8: layer bias eps_i >= eps^(i+1)/2 (deteriorates ~2 eps "
      "per layer);\nLemma 2.3: final overall bias = Omega(sqrt(log n/n)).");

  const std::size_t n = 1 << 20;
  const double eps = 0.35;
  const flip::Params params = flip::Params::calibrated(n, eps);

  constexpr std::size_t kTrials = 4;
  std::vector<flip::RunningStats> layer_bias(params.stage1().num_phases());
  flip::RunningStats overall_bias;
  for (std::size_t t = 0; t < kTrials; ++t) {
    flip::BroadcastScenario scenario;
    scenario.n = n;
    scenario.eps = eps;
    scenario.stage1_only = true;
    const flip::RunDetail detail = flip::run_broadcast(scenario, 0xE5, t);
    for (const auto& s : detail.stage1) {
      layer_bias[s.phase].add(s.layer_bias());
    }
    overall_bias.add(detail.final_bias);
  }

  flip::TextTable table({"layer (phase)", "mean layer bias eps_i",
                         "paper lower bound eps^(i+1)/2",
                         "expected recursion (2eps)^i * eps"});
  for (std::uint64_t i = 0; i < layer_bias.size(); ++i) {
    if (layer_bias[i].count() == 0) continue;
    // The mean-field recursion: layer 0 has bias ~eps, each further layer
    // multiplies by ~2 eps (theory::sampled_bias).
    double expected = eps;
    for (std::uint64_t j = 0; j < i; ++j) {
      expected = flip::theory::sampled_bias(eps, expected);
    }
    table.row()
        .cell("phase " + std::to_string(i))
        .cell(layer_bias[i].mean(), 4)
        .cell(flip::theory::stage1_bias_lower_bound(eps, i), 4)
        .cell(expected, 4);
  }

  const double unit = flip::theory::stage1_output_bias_unit(n);
  flip::bench::emit(
      options, table,
      "Final overall bias " + flip::format_fixed(overall_bias.mean(), 5) +
          " vs sqrt(log n/n) = " + flip::format_fixed(unit, 5) +
          "  (ratio " + flip::format_fixed(overall_bias.mean() / unit, 2) +
          ", Lemma 2.3 expects a positive constant).");
  return 0;
}
