// E8 — Corollary 2.18 (noisy majority-consensus).
//
// Claim: majority-consensus is solvable in O(log n/eps^2) rounds for any
// initial set |A| = Omega(log n/eps^2) with majority-bias
// Omega(sqrt(log n/|A|)). The sweep covers both thresholds, including the
// below-threshold region where the guarantee (correctly) disappears.

#include "bench_common.hpp"

#include <algorithm>

#include "core/theory.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  const auto options = flip::bench::parse_args(argc, argv);
  flip::bench::banner(
      options, "E8 bench_majority",
      "Corollary 2.18: majority-consensus for |A| = Omega(log n/eps^2), "
      "bias = Omega(sqrt(log n/|A|)),\nin O(log n/eps^2) rounds. Expect "
      "success ~1 above both thresholds, degradation below.");

  const std::size_t n = 8192;
  const double eps = 0.25;
  const double size_unit = flip::theory::majority_min_initial_set(n, eps);

  flip::TextTable table({"|A|", "|A| / (log n/eps^2)", "majority-bias",
                         "bias / sqrt(log n/|A|)", "trials", "success",
                         "rounds"});
  for (const std::size_t a : {std::size_t{256}, std::size_t{1024},
                              std::size_t{4096}}) {
    const double bias_unit = flip::theory::majority_min_bias(n, a);
    // The smallest multiple is clamped to a ONE-AGENT majority (bias 1/|A|):
    // the absolute information floor of the problem.
    for (double bias_mult : {3.0, 1.0, 0.25, 0.0}) {
      if (bias_mult == 0.0) {
        bias_mult = (1.0 / static_cast<double>(a)) / bias_unit;
      }
      const double bias =
          std::clamp(bias_mult * bias_unit, 1.0 / static_cast<double>(a),
                     0.5);
      flip::MajorityScenario scenario;
      scenario.n = n;
      scenario.eps = eps;
      scenario.initial_set = a;
      scenario.majority_bias = bias;
      flip::TrialOptions trial_options;
      trial_options.trials = 8;
      trial_options.master_seed = 0xE8;
      const flip::TrialSummary summary =
          flip::run_trials(flip::majority_trial_fn(scenario), trial_options);
      table.row()
          .cell(a)
          .cell(static_cast<double>(a) / size_unit, 2)
          .cell(bias, 4)
          .cell(bias / bias_unit, 2)
          .cell(summary.trials)
          .cell(summary.success.to_string())
          .cell(summary.rounds.mean(), 0);
    }
  }
  flip::bench::emit(
      options, table,
      "Rows with bias multiple >= 1 are inside Corollary 2.18's guarantee "
      "and must succeed.\nThe calibrated protocol also survives below the "
      "(worst-case) threshold; the guarantee\ntruly dissolves at the "
      "one-agent-majority floor rows.");
  return 0;
}
