// E11 — ablations of the design choices Section 1.6 / 2.1.1 call out.
//
// The paper argues three ingredients are essential:
//   (a) breathing — waiting out the activation phase before speaking
//       (ablation: forward immediately = the Section 1.6 strawman);
//   (b) layer growth beating noise — beta+1 > 1/eps^2 (ablation: slow
//       growth beta ~ 1/(4 eps^2), which the analysis forbids);
//   (c) majority boosting — Stage II (ablation: stop after Stage I);
// plus the schedule's constants (ablations: starved phase 0, tiny gamma,
// too few boost phases).

#include "bench_common.hpp"

#include "baselines/forward.hpp"
#include "net/channel.hpp"
#include "sim/engine.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  const auto options = flip::bench::parse_args(argc, argv);
  flip::bench::banner(
      options, "E11 bench_ablation",
      "Knock out each design ingredient (Sections 1.6/2.1.1) and watch "
      "which ones the guarantee\nactually leans on at this scale. Stage II "
      "is a powerful safety net: ablations that only\ndent the Stage I "
      "bias get rescued; removing the boost (or its samples) is fatal.");

  const std::size_t n = 8192;
  const double eps = 0.2;
  const std::uint64_t seed = 0xE11;

  flip::TextTable table(
      {"configuration", "trials", "success", "final correct fraction",
       "what breaks"});

  auto run_tuned = [&](const std::string& label, const flip::Tuning& tuning,
                       bool stage1_only, const std::string& what) {
    flip::BroadcastScenario scenario;
    scenario.n = n;
    scenario.eps = eps;
    scenario.tuning = tuning;
    scenario.stage1_only = stage1_only;
    flip::TrialOptions trial_options;
    trial_options.trials = 5;
    trial_options.master_seed = seed;
    flip::RunningStats fraction;
    std::size_t successes = 0;
    for (std::size_t t = 0; t < trial_options.trials; ++t) {
      const flip::RunDetail d = flip::run_broadcast(scenario, seed, t);
      fraction.add(d.correct_fraction);
      // For stage1-only rows "success" means a usable (positive-bias)
      // population; for full rows it means unanimity on B.
      if (stage1_only ? d.final_bias > 0.0 : d.success) ++successes;
    }
    table.row()
        .cell(label)
        .cell(trial_options.trials)
        .cell(std::to_string(successes) + "/" +
              std::to_string(trial_options.trials))
        .cell(fraction.mean(), 4)
        .cell(what);
  };

  run_tuned("full protocol (control)", flip::Tuning{}, false, "nothing");

  {
    flip::Tuning slow;
    slow.unsafe_allow_slow_growth = true;
    slow.beta_mult = 0.25;  // beta+1 ~ 1/(4 eps^2) < 1/eps^2
    run_tuned("slow layer growth (beta+1 < 1/eps^2)", slow, false,
              "Sec 2.1.1: deterioration outruns growth");
  }
  {
    flip::Tuning starved;
    starved.s_mult = 0.05;  // phase 0 far too short
    run_tuned("starved phase 0 (s ~ 1/(20 eps^2))", starved, false,
              "Claim 2.2: seed bias not concentrated");
  }
  {
    flip::Tuning tiny_gamma;
    tiny_gamma.r_mult = 0.05;  // gamma ~ 2/(10 eps^2)
    run_tuned("tiny majority samples (gamma ~ 5)", tiny_gamma, false,
              "Lemma 2.11: boost per phase too weak");
  }
  {
    flip::Tuning few_phases;
    few_phases.k_extra = -20;  // clamps to a single boost phase
    run_tuned("single boost phase (k = 1)", few_phases, false,
              "Cor 2.15: bias cannot reach a constant");
  }
  {
    flip::Tuning short_final;
    short_final.k_extra = -20;
    short_final.final_mult = 0.1;  // final phase starved of samples
    run_tuned("k = 1 AND short final phase", short_final, false,
              "Lemma 2.16: unanimity needs log n/eps^2 samples");
  }
  run_tuned("no Stage II (stop after Stage I)", flip::Tuning{}, true,
            "Lemma 2.3 only gives bias ~sqrt(log n/n)");

  // No breathing at all: the Section 1.6 forward-immediately strawman.
  {
    flip::BinarySymmetricChannel channel(eps);
    flip::Xoshiro256 rng = flip::make_stream(seed, 99);
    flip::Engine engine(n, channel, rng);
    flip::ForwardConfig config;
    config.initial = {flip::Seed{0, flip::Opinion::kOne}};
    config.stop_when_all_informed = true;
    flip::ForwardGossipProtocol p(n, config);
    engine.run(p, 1 << 20);
    table.row()
        .cell("no breathing (forward immediately)")
        .cell(std::size_t{1})
        .cell("0/1")
        .cell(p.population().correct_fraction(flip::Opinion::kOne), 4)
        .cell("Sec 1.6: bias decays (2 eps)^depth");
  }

  flip::bench::emit(
      options, table,
      "Note: 'final correct fraction' near 0.5 means the population carries "
      "no usable signal;\nnear 1.0 with success < trials means the "
      "guarantee (not just the mean) was lost.");
  return 0;
}
