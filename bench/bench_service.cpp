// E21 — sweep service residency: per-request wall-clock of a warm resident
// flipsim daemon (net/service.hpp) vs a cold one-shot CLI process, on a
// deliberately tiny sweep so fixed costs dominate.
//
// Not a paper claim: times the harness. A cold flipsim invocation pays
// process start-up, registry construction, ThreadPool spawn, and the
// first-trial allocation ramp on every sweep; the daemon pays them once
// and keeps the per-worker TrialArena scratch warm across requests
// (sim/trial_arena.hpp), so a warm request's cost approaches the pure
// simulation time. The committed trajectory point lives in
// bench/results/BENCH_service.json; the warm path must stay >= 5x below
// the cold CLI on the small request.
//
//   bench_service --json bench/results/BENCH_service.json
//   bench_service --flipsim build/tools/flipsim --requests 32
//
// Results are identical on both paths (the served-vs-one-shot differential
// test in tests/service_test.cpp holds that byte-for-byte); this bench
// holds the latency half.

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "cli/args.hpp"
#include "cli/bench_report.hpp"
#include "cli/wire.hpp"
#include "net/service.hpp"
#include "util/table.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The sibling flipsim binary: bench binaries land in <build>/bench/, the
/// CLI in <build>/tools/.
std::string default_flipsim_path(const char* argv0) {
  const std::string self(argv0);
  const std::size_t slash = self.rfind('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : self.substr(0, slash);
  return dir + "/../tools/flipsim";
}

}  // namespace

int main(int argc, char** argv) {
  std::string flipsim_path;
  std::optional<std::size_t> requests;
  std::optional<std::size_t> cold_runs;
  std::optional<std::size_t> n;
  std::optional<std::size_t> trials;
  flip::cli::BenchOptions options;

  flip::cli::ArgParser parser(
      "bench_service",
      "E21: warm resident-daemon request latency vs cold one-shot CLI\n"
      "latency on a tiny sweep (fixed costs dominate). The warm path must\n"
      "stay >= 5x below the cold CLI.");
  parser.add_option("--flipsim", "path",
                    "flipsim binary for the cold runs (default: the sibling "
                    "build/tools/flipsim)",
                    &flipsim_path);
  parser.add_size("--requests", "warm requests to time (default 16)",
                  &requests);
  parser.add_size("--cold-runs", "cold CLI invocations to time (default 5)",
                  &cold_runs);
  parser.add_size("--n", "population size per request (default 16)", &n);
  parser.add_size("--trials", "trials per request (default 1)", &trials);
  parser.add_flag("--csv", "emit table rows as CSV instead of rendering",
                  &options.csv);
  parser.add_option("--json", "path",
                    "also write the flip-bench-v1 JSON report to <path>",
                    &options.json_path);
  if (!parser.parse(argc, argv)) {
    if (parser.help_requested()) {
      std::cout << parser.usage();
      return 0;
    }
    std::cerr << "error: " << parser.error() << "\n\n" << parser.usage();
    return 2;
  }
  if (flipsim_path.empty()) flipsim_path = default_flipsim_path(argv[0]);

  flip::cli::bench_banner(
      options, "E21 bench_service",
      "Engineering claim (docs/SERVICE.md): a resident sweep daemon "
      "answers repeated small requests >= 5x faster than cold one-shot "
      "CLI invocations, because process start-up, registry construction, "
      "pool spawn, and the first-trial allocation ramp are paid once "
      "instead of per sweep.");

  // The request both paths run: small enough that fixed costs dominate,
  // real enough to exercise the full sweep pipeline.
  const std::size_t req_n = n.value_or(16);
  const std::uint32_t req_trials =
      static_cast<std::uint32_t>(trials.value_or(1));
  flip::cli::SweepRequest request;
  request.scenario = "broadcast_small";
  request.ns = std::to_string(req_n);
  request.trials = req_trials;

  // --- warm: resident server, per-request connections -------------------
  flip::net::SweepServer server;
  std::string error;
  if (!server.start(error)) {
    std::cerr << "error: server start: " << error << "\n";
    return 1;
  }
  flip::net::SweepClient client(server.port());
  // One untimed request absorbs the pool spawn and arena warm-up — the
  // daemon's steady state is what repeated clients see.
  (void)client.run_sweep(request);

  const std::size_t warm_reps = requests.value_or(16);
  const auto warm_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < warm_reps; ++i) {
    (void)client.run_sweep(request);
  }
  const double warm_seconds = seconds_since(warm_start);
  const double warm_ms = warm_seconds * 1000.0 / static_cast<double>(warm_reps);
  server.stop();

  // --- cold: one process per sweep ---------------------------------------
  const std::string command =
      flipsim_path + " --scenario broadcast_small --n " +
      std::to_string(req_n) + " --trials " + std::to_string(req_trials) +
      " --quiet >/dev/null 2>&1";
  if (std::system(command.c_str()) != 0) {  // untimed sanity run
    std::cerr << "error: cold flipsim run failed: " << command << "\n"
              << "(point --flipsim at the built binary)\n";
    return 1;
  }
  const std::size_t cold_reps = cold_runs.value_or(5);
  const auto cold_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < cold_reps; ++i) {
    if (std::system(command.c_str()) != 0) {
      std::cerr << "error: cold flipsim run failed mid-series\n";
      return 1;
    }
  }
  const double cold_seconds = seconds_since(cold_start);
  const double cold_ms = cold_seconds * 1000.0 / static_cast<double>(cold_reps);

  const double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;
  flip::TextTable table(
      {"mode", "runs", "ms/request", "req/s", "cold/warm"});
  table.row()
      .cell("cold_cli")
      .cell(cold_reps)
      .cell(cold_ms, 3)
      .cell(cold_ms > 0.0 ? 1000.0 / cold_ms : 0.0, 1)
      .cell(std::string("-"));
  table.row()
      .cell("warm_server")
      .cell(warm_reps)
      .cell(warm_ms, 3)
      .cell(warm_ms > 0.0 ? 1000.0 / warm_ms : 0.0, 1)
      .cell(speedup, 2);
  flip::cli::bench_emit(
      options, table,
      "ms/request = wall-clock per sweep of the same tiny request "
      "(broadcast_small, n=" + std::to_string(req_n) + ", " +
          std::to_string(req_trials) +
          " trial(s)): cold_cli forks a fresh flipsim per sweep, "
          "warm_server reuses one resident daemon over loopback. cold/warm "
          "is the residency speedup; the committed point must stay >= 5.");
  return 0;
}
