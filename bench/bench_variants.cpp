// E16 — Remarks 2.1 & 2.10 and the "at most 1/2 - eps" noise clause.
//
// Remark 2.1: in the fully-synchronous setting, adopting the FIRST message
// of the activation phase is equivalent to the paper's uniformly-random
// choice. Remark 2.10: likewise the PREFIX of the first m_i/2 Stage II
// samples is equivalent to a uniformly random subset. And Section 1.3.2
// only promises flips with probability AT MOST 1/2 - eps: a channel whose
// per-message flip probability is drawn uniformly from [0, 1/2 - eps]
// (milder on average) must also preserve the guarantee.

#include "bench_common.hpp"

#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  const auto options = flip::bench::parse_args(argc, argv);
  flip::bench::banner(
      options, "E16 bench_variants",
      "Remarks 2.1/2.10 rule variants and the 'at most 1/2 - eps' noise "
      "clause.\nExpect: every variant matches the paper's rule — same "
      "success, same rounds, similar final state.");

  const std::size_t n = 4096;
  const double eps = 0.2;

  flip::TextTable table({"variant", "trials", "success", "rounds",
                         "final correct fraction"});

  auto add_row = [&](const std::string& label,
                     const flip::BroadcastScenario& scenario) {
    flip::TrialOptions trial_options;
    trial_options.trials = 6;
    trial_options.master_seed = 0xE16;
    const flip::TrialSummary summary =
        flip::run_trials(flip::broadcast_trial_fn(scenario), trial_options);
    table.row()
        .cell(label)
        .cell(summary.trials)
        .cell(summary.success.to_string())
        .cell(summary.rounds.mean(), 0)
        .cell(summary.correct_fraction.mean(), 4);
  };

  flip::BroadcastScenario base;
  base.n = n;
  base.eps = eps;
  add_row("paper rules (uniform msg, uniform subset)", base);

  flip::BroadcastScenario first = base;
  first.stage1_pick = flip::Stage1Pick::kFirstMessage;
  add_row("Remark 2.1: first-message rule", first);

  flip::BroadcastScenario prefix = base;
  prefix.stage2_subset = flip::Stage2Subset::kPrefixSubset;
  add_row("Remark 2.10: prefix-subset rule", prefix);

  flip::BroadcastScenario both = base;
  both.stage1_pick = flip::Stage1Pick::kFirstMessage;
  both.stage2_subset = flip::Stage2Subset::kPrefixSubset;
  add_row("both variants", both);

  flip::BroadcastScenario hetero = base;
  hetero.heterogeneous_noise = true;
  add_row("heterogeneous noise (flip prob U[0, 1/2-eps])", hetero);

  flip::bench::emit(
      options, table,
      "The first four rows exercise the remark equivalences (the random "
      "choices exist only to make\ndecisions order-invariant for Section "
      "3); the last row checks nothing relies on the noise\nbeing exactly "
      "1/2 - eps.");
  return 0;
}
