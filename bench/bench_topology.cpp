// E20 — topology route-path cost: per-trial wall-clock of the broadcast
// protocol across interaction-graph families at fixed n.
//
// Not a paper claim: times the substrate. The complete graph rides the
// zero-cost identity path (and, in FLIP_SIMD builds, the vector route
// kernel); every sparse family routes through GraphRecipient on the scalar
// path, the rewired kinds paying an extra CounterRng stream per rewired
// edge lookup and the dynamic kind re-deriving its graph key every round.
// This harness makes that price visible next to what the graph does to the
// protocol itself (success / rounds / messages at the same eps), so a
// reader can separate substrate cost from protocol behavior:
//
//   bench_topology --n 4096 --trials 8
//
// Results are bit-identical per (seed, trial, topology) across shard
// counts and substrates (tests/registry_test.cpp holds the engines to
// that); this harness only measures the batch substrate.

#include <chrono>
#include <cstdint>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "cli/bench_report.hpp"
#include "core/topology.hpp"
#include "util/table.hpp"
#include "workload/scenarios.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string n_list = "4096";
  std::string topology_list = "complete,ring:8,grid:2,smallworld:8:0.1,dynamic:8:0.1";
  std::optional<std::size_t> trials;
  std::optional<std::uint64_t> seed;
  flip::cli::BenchOptions options;

  flip::cli::ArgParser parser(
      "bench_topology",
      "E20: broadcast wall-clock and outcome across interaction-graph\n"
      "families at fixed n. The complete graph is the identity fast path;\n"
      "sparse families route through the scalar GraphRecipient.");
  parser.add_option("--n", "list", "comma-separated population sizes",
                    &n_list);
  parser.add_option("--topologies", "list",
                    "comma-separated topology specs (see flipsim --topology)",
                    &topology_list);
  parser.add_size("--trials", "trials per (n, topology) cell (default 4)",
                  &trials);
  parser.add_uint64("--seed", "master seed (default 0x5eed)", &seed);
  parser.add_flag("--csv", "emit table rows as CSV instead of rendering",
                  &options.csv);
  parser.add_option("--json", "path",
                    "also write the flip-bench-v1 JSON report to <path>",
                    &options.json_path);
  if (!parser.parse(argc, argv)) {
    if (parser.help_requested()) {
      std::cout << parser.usage();
      return 0;
    }
    std::cerr << "error: " << parser.error() << "\n\n" << parser.usage();
    return 2;
  }

  std::string error;
  const auto ns = flip::cli::parse_size_list(n_list, error);
  if (!ns || ns->empty()) {
    std::cerr << "error: --n: " << (error.empty() ? "empty list" : error)
              << "\n";
    return 2;
  }
  std::vector<flip::TopologySpec> topologies;
  {
    std::size_t start = 0;
    while (start <= topology_list.size()) {
      const std::size_t comma = topology_list.find(',', start);
      const std::string piece = topology_list.substr(
          start, comma == std::string::npos ? std::string::npos
                                            : comma - start);
      try {
        topologies.push_back(flip::TopologySpec::parse(piece));
      } catch (const std::invalid_argument& e) {
        std::cerr << "error: --topologies: " << e.what() << "\n";
        return 2;
      }
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }

  flip::cli::bench_banner(
      options, "E20 bench_topology",
      "Engineering claim (docs/PERFORMANCE.md): the complete graph keeps "
      "the historical identity route path; sparse families pay the "
      "GraphRecipient scalar route, priced here next to the protocol-level "
      "effect of the graph.");

  flip::TextTable table({"n", "topology", "trials", "s/trial", "vs_complete",
                         "success", "rounds", "messages"});
  for (const std::size_t n : *ns) {
    double complete_seconds = 0.0;
    for (const flip::TopologySpec& topology : topologies) {
      flip::BroadcastScenario scenario;
      scenario.n = n;
      scenario.eps = 0.2;
      scenario.engine = flip::EngineMode::kBatch;
      scenario.topology = topology;
      try {
        (void)flip::ResolvedTopology::resolve(topology, n);
      } catch (const std::invalid_argument& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 2;
      }

      const std::size_t reps = trials.value_or(4);
      std::size_t successes = 0;
      double rounds = 0.0;
      double messages = 0.0;
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t t = 0; t < reps; ++t) {
        const flip::TrialOutcome out = flip::to_outcome(
            flip::run_broadcast(scenario, seed.value_or(0x5eedULL), t));
        successes += out.success ? 1 : 0;
        rounds += static_cast<double>(out.rounds);
        messages += static_cast<double>(out.messages);
      }
      const double per_trial =
          seconds_since(start) / static_cast<double>(reps);
      if (complete_seconds == 0.0) complete_seconds = per_trial;
      table.row()
          .cell(n)
          .cell(topology.describe())
          .cell(reps)
          .cell(per_trial, 4)
          .cell(per_trial / complete_seconds, 2)
          .cell(successes)
          .cell(rounds / static_cast<double>(reps), 1)
          .cell(messages / static_cast<double>(reps), 0);
    }
  }
  flip::cli::bench_emit(
      options, table,
      "vs_complete = (s/trial at this topology) / (s/trial at the row "
      "group's first topology), measured in this process on this machine. "
      "success/rounds/messages describe the protocol under the graph, not "
      "the substrate.");
  return 0;
}
