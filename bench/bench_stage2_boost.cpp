// E7 — Lemma 2.14, Corollary 2.15, Lemma 2.16 (Stage II boosting).
//
// Lemma 2.14: one boost phase grows the bias from delta to at least
// min{1.7 delta, 1/800} w.h.p. (given delta = Omega(sqrt(log n/n))).
// Corollary 2.15 / Lemma 2.16: after O(log n) phases plus the long final
// phase everyone is correct.
//
// Runs Stage II in isolation from seeded initial biases and reports the
// per-phase bias trajectory and final outcome.

#include "bench_common.hpp"

#include "core/theory.hpp"
#include "util/stats.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  const auto options = flip::bench::parse_args(argc, argv);
  flip::bench::banner(
      options, "E7 bench_stage2_boost",
      "Lemma 2.14: per boost phase, bias delta -> min{1.7 delta, 1/800} "
      "w.h.p.;\nCor 2.15 + Lemma 2.16: all correct at Stage II's end.");

  const std::size_t n = 16384;
  const double eps = 0.25;

  // Trajectory detail for one seeded bias near the Stage I output scale.
  {
    flip::BoostScenario scenario;
    scenario.n = n;
    scenario.eps = eps;
    scenario.initial_bias = 2.0 * flip::theory::stage1_output_bias_unit(n);
    const flip::RunDetail detail = flip::run_boost(scenario, 0xE7, 0);
    const flip::Params params = flip::Params::calibrated(n, eps);
    const std::vector<double> predicted = flip::theory::stage2_bias_trajectory(
        n, eps, scenario.initial_bias, params.stage2().gamma,
        params.stage2().m, params.stage2().k);
    flip::TextTable table({"boost phase", "bias after phase",
                           "mean-field prediction",
                           "Lemma 2.14 floor (from previous)",
                           "successful agents"});
    double prev = scenario.initial_bias;
    for (const auto& s : detail.stage2) {
      const double floor = flip::theory::lemma_2_14_boost(prev);
      const double mean_field =
          s.phase + 1 < predicted.size() ? predicted[s.phase + 1] : 0.5;
      table.row()
          .cell("phase " + std::to_string(s.phase))
          .cell(s.bias, 5)
          .cell(mean_field, 5)
          .cell(floor, 5)
          .cell(s.successful);
      prev = s.bias;
    }
    flip::bench::emit(
        options, table,
        std::string("Seeded bias ") +
            flip::format_fixed(scenario.initial_bias, 5) +
            "; run ended " + (detail.success ? "all-correct" : "NOT unanimous") +
            ". The floor column uses the measured previous-phase bias.");
  }

  // Success sweep over seeded initial biases, down through the guarantee
  // threshold sqrt(log n / n).
  flip::TextTable sweep({"initial bias", "x sqrt(log n/n)", "trials",
                         "success", "final correct fraction"});
  const double unit = flip::theory::stage1_output_bias_unit(n);
  // Sweep down to biases worth only a handful of agents: the breakdown sits
  // near the 1/sqrt(n) information floor, below the theory's threshold.
  for (const double mult : {8.0, 2.0, 1.0, 0.25, 0.1, 0.03}) {
    flip::BoostScenario scenario;
    scenario.n = n;
    scenario.eps = eps;
    scenario.initial_bias = mult * unit;
    flip::TrialOptions trial_options;
    trial_options.trials = 6;
    trial_options.master_seed = 0xE7;
    const flip::TrialSummary summary = flip::run_trials(
        [scenario](std::uint64_t seed, std::size_t trial) {
          return flip::to_outcome(flip::run_boost(scenario, seed, trial));
        },
        trial_options);
    sweep.row()
        .cell(scenario.initial_bias, 5)
        .cell(mult, 2)
        .cell(summary.trials)
        .cell(summary.success.to_string())
        .cell(summary.correct_fraction.mean(), 4);
  }
  flip::bench::emit(
      options, sweep,
      "Lemma 2.14 promises reliability above ~sqrt(log n/n) (multiple >= 1) "
      "— those rows must be ~1.\nThe calibrated protocol keeps working some "
      "way below the threshold (the bound is worst-case);\nthe guarantee "
      "finally dissolves near the 1/(2 sqrt n) information floor (smallest "
      "multiples).");
  return 0;
}
