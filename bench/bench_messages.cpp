// E3 — Theorem 2.17 + Section 1.4 (message/bit complexity).
//
// Claim: the protocol uses O(n log n / eps^2) messages total (every message
// is one bit), matching the Omega(n log n / eps^2) lower bound: each agent
// individually needs Omega(log n / eps^2) noisy samples even if all came
// straight from the source. Expect messages/(n log n/eps^2) in a constant
// band, and per-agent deliveries above the Shannon-style floor.

#include "bench_common.hpp"

#include "core/theory.hpp"
#include "workload/scenarios.hpp"

int main(int argc, char** argv) {
  const auto options = flip::bench::parse_args(argc, argv);
  flip::bench::banner(
      options, "E3 bench_messages",
      "Theorem 2.17 / Section 1.4: Theta(n log n / eps^2) total bits.\n"
      "Expect: messages/(n log n/eps^2) ~ constant over n AND eps;\n"
      "per-agent accepted samples >= the per-agent lower-bound unit.");

  flip::TextTable table({"n", "eps", "trials", "messages",
                         "msgs/(n log n/eps^2)", "delivered/agent",
                         "lower-bound unit", "success"});
  for (const std::size_t n :
       {std::size_t{2048}, std::size_t{8192}, std::size_t{32768}}) {
    for (const double eps : {0.3, 0.2}) {
      flip::BroadcastScenario scenario;
      scenario.n = n;
      scenario.eps = eps;
      flip::TrialOptions trial_options;
      trial_options.trials = n <= 8192 ? 6 : 3;
      trial_options.master_seed = 0xE3;
      // One detailed run for the delivery accounting; the summary for the
      // message totals.
      const flip::RunDetail detail = flip::run_broadcast(scenario, 0xE3, 0);
      const flip::TrialSummary summary =
          flip::run_trials(flip::broadcast_trial_fn(scenario), trial_options);
      const double unit = flip::theory::message_unit(n, eps);
      const double per_agent =
          static_cast<double>(detail.metrics.delivered) /
          static_cast<double>(n);
      table.row()
          .cell(n)
          .cell(eps, 2)
          .cell(summary.trials)
          .cell(summary.messages.mean(), 0)
          .cell(summary.messages.mean() / unit, 2)
          .cell(per_agent, 0)
          .cell(flip::theory::per_agent_sample_lower_bound(n, eps), 0)
          .cell(summary.success.to_string());
    }
  }
  flip::bench::emit(
      options, table,
      "The middle ratio column staying flat across both sweeps is the "
      "Theta(n log n/eps^2) claim;\nits being within a small constant of 1 "
      "shows the protocol sits near the Section 1.4 lower bound.");
  return 0;
}
