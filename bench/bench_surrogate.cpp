// E19 — mean-field surrogate throughput: closed-form success probability
// for populations the exact engines cannot touch (n up to 10^9), in
// milliseconds per evaluation.
//
// Not a paper claim: times the substrate. The surrogate integrates the
// expected opinion/activation state round by round (O(total rounds)
// arithmetic, no per-agent state), so its cost is set by the ROUND BUDGET
// — which grows like log n through the Params phase arithmetic — not by n.
// The table makes that visible: a thousandfold increase in population
// moves the wall-clock by the extra phases only. Accuracy is a separate
// contract: flipsim --validate-surrogate holds the surrogate inside error
// bands of BatchEngine at overlapping n, and
// tools/check_surrogate_accuracy.py gates that in CI. This bench holds the
// SPEED half: the committed trajectory point lives in
// bench/results/BENCH_surrogate.json, whose n = 10^9 static cell must stay
// under 100 ms.
//
//   bench_surrogate --n 1000000,10000000,100000000,1000000000
//       --json bench/results/BENCH_surrogate.json
//
// Three environments per n: static (closed-form binomial tails), a burst
// schedule (expected-eps rate modifier), and churn (awake-probability
// chain + the per-phase Poisson-binomial DP — the expensive path).

#include <chrono>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <optional>
#include <string>

#include "cli/args.hpp"
#include "cli/bench_report.hpp"
#include "core/environment.hpp"
#include "sim/surrogate_engine.hpp"
#include "util/table.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct EnvCase {
  const char* name;
  flip::EnvironmentSchedule schedule;
  flip::ChurnSpec churn;
};

}  // namespace

int main(int argc, char** argv) {
  std::string n_list = "1000000,10000000,100000000,1000000000";
  std::optional<std::size_t> evals;
  flip::cli::BenchOptions options;

  flip::cli::ArgParser parser(
      "bench_surrogate",
      "E19: mean-field surrogate wall-clock per closed-form evaluation vs\n"
      "population size. Cost tracks the round budget (log n), not n; the\n"
      "n = 10^9 static cell is the committed sub-100-ms trajectory point.");
  parser.add_option("--n", "list", "comma-separated population sizes",
                    &n_list);
  parser.add_size("--evals", "evaluations per cell (default 8, timed "
                  "together and averaged)",
                  &evals);
  parser.add_flag("--csv", "emit table rows as CSV instead of rendering",
                  &options.csv);
  parser.add_option("--json", "path",
                    "also write the flip-bench-v1 JSON report to <path>",
                    &options.json_path);
  if (!parser.parse(argc, argv)) {
    if (parser.help_requested()) {
      std::cout << parser.usage();
      return 0;
    }
    std::cerr << "error: " << parser.error() << "\n\n" << parser.usage();
    return 2;
  }

  std::string error;
  const auto ns = flip::cli::parse_size_list(n_list, error);
  if (!ns || ns->empty()) {
    std::cerr << "error: --n: " << (error.empty() ? "empty list" : error)
              << "\n";
    return 2;
  }

  flip::cli::bench_banner(
      options, "E19 bench_surrogate",
      "Engineering claim (docs/PERFORMANCE.md): the mean-field surrogate "
      "answers breathe-protocol cells in milliseconds at any n the size_t "
      "arithmetic holds, because its cost is the round budget (log n "
      "phases), not the population.");

  const EnvCase cases[] = {
      {"static", {}, {}},
      {"burst", flip::EnvironmentSchedule::parse("burst:0.08:16:0.02"), {}},
      {"churn", {}, flip::ChurnSpec::parse("0.001:0.05")},
  };

  flip::TextTable table({"n", "env", "rounds", "evals", "ms/eval",
                         "success", "correct", "conv round"});
  for (const std::size_t n : *ns) {
    for (const EnvCase& env : cases) {
      flip::SurrogateSpec spec;
      spec.n = n;
      spec.eps = 0.2;
      spec.schedule = env.schedule;
      spec.churn = env.churn;
      spec.probe_every = 64;

      const std::size_t reps = evals.value_or(8);
      flip::SurrogateResult result;
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t i = 0; i < reps; ++i) {
        result = flip::run_surrogate(spec);
      }
      const double ms_per_eval =
          seconds_since(start) * 1000.0 / static_cast<double>(reps);
      table.row()
          .cell(n)
          .cell(env.name)
          .cell(static_cast<std::size_t>(result.rounds))
          .cell(reps)
          .cell(ms_per_eval, 3)
          .cell(result.success_probability, 4)
          .cell(result.correct_fraction, 4)
          // "-" when the expected trajectory never crosses 99% activation
          // (NaN), matching the sweep table's placeholder convention.
          .cell(std::isfinite(result.convergence_round)
                    ? flip::format_fixed(result.convergence_round, 0)
                    : std::string("-"));
    }
  }
  flip::cli::bench_emit(
      options, table,
      "ms/eval = wall-clock of `evals` back-to-back run_surrogate calls "
      "divided by evals, measured in this process on this machine. The "
      "exact engines' cost at these n is hours-to-days per TRIAL; the "
      "surrogate's accuracy against them is gated separately by "
      "flipsim --validate-surrogate.");
  return 0;
}
