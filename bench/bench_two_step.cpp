// E6 — Lemma 2.11 and Claim 2.12 (the majority-boost probability).
//
// Lemma 2.11: taking gamma = 2r+1 noisy samples from a population with
// bias delta, the majority is correct with probability at least
// min{1/2 + 4 delta, 1/2 + 1/100} (with the paper's r = ceil(2^22/eps^2)).
// Claim 2.12: Pr(U_x) > x/(10 sqrt r) for 1 <= x <= sqrt r.
//
// Three computations cross-check each other: the direct binomial, the
// imaginary two-step process (the proof's construction), and Monte Carlo.

#include "bench_common.hpp"

#include <cmath>

#include "core/theory.hpp"
#include "core/two_step.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  const auto options = flip::bench::parse_args(argc, argv);
  flip::bench::banner(
      options, "E6 bench_two_step",
      "Lemma 2.11: P[majority of gamma noisy samples correct] >= "
      "min{1/2+4delta, 1/2+1/100};\nClaim 2.12: Pr(U_x) > x/(10 sqrt r). "
      "Exact binomial vs two-step process vs Monte Carlo.");

  const double eps = 0.45;
  const auto paper_r =
      static_cast<std::uint64_t>(std::ceil(4194304.0 / (eps * eps)));

  flip::TextTable lemma_table({"delta", "regime", "exact P[maj correct]",
                               "paper bound", "holds"});
  for (const double delta : {1e-8, 1e-6, 1e-5, 1e-4, 1.0 / 4096.0, 0.01,
                             0.05, 0.2}) {
    flip::SamplingConfig cfg{paper_r, eps, delta};
    const double exact = flip::majority_correct_exact(cfg);
    const double bound = flip::theory::lemma_2_11_lower_bound(delta);
    const char* regime =
        flip::classify_delta(eps, delta) == flip::DeltaRegime::kSmall
            ? "small"
            : (flip::classify_delta(eps, delta) == flip::DeltaRegime::kMedium
                   ? "medium"
                   : "large");
    lemma_table.row()
        .cell(flip::format_sci(delta, 1))
        .cell(regime)
        .cell(exact, 6)
        .cell(bound, 6)
        .cell(exact + 1e-12 >= bound);
  }
  flip::bench::emit(options, lemma_table,
                    "(r = ceil(2^22/eps^2) as in Section 2.2.2)");

  // Cross-validation of the three views at a computable size.
  flip::TextTable xval({"r", "eps", "delta", "exact", "two-step process",
                        "monte carlo (200k)"});
  flip::Xoshiro256 rng(0xE6);
  for (const double delta : {0.005, 0.02, 0.1}) {
    flip::SamplingConfig cfg{50, 0.25, delta};
    xval.row()
        .cell(std::size_t{50})
        .cell(0.25, 2)
        .cell(delta, 3)
        .cell(flip::majority_correct_exact(cfg), 5)
        .cell(flip::majority_correct_via_two_step(cfg), 5)
        .cell(flip::majority_correct_monte_carlo(cfg, 200000, rng), 5);
  }
  flip::bench::emit(options, xval,
                    "The two-step process is an exactly equivalent view of "
                    "the sampling (the proof's key construction).");

  flip::TextTable stirling({"r", "x", "Pr(U_x) exact",
                            "Claim 2.12 bound x/(10 sqrt r)", "holds"});
  for (const std::uint64_t r : {64ULL, 1024ULL, 16384ULL}) {
    const auto x_max =
        static_cast<std::uint64_t>(std::sqrt(static_cast<double>(r)));
    for (const std::uint64_t x : {std::uint64_t{1}, x_max / 2, x_max}) {
      if (x == 0) continue;
      const double exact = flip::prob_U_x(r, x);
      const double bound = flip::claim_2_12_bound(r, x);
      stirling.row()
          .cell(std::size_t{r})
          .cell(std::size_t{x})
          .cell(exact, 5)
          .cell(bound, 5)
          .cell(exact > bound);
    }
  }
  flip::bench::emit(options, stirling, "");
  return 0;
}
