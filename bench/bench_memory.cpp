// E14 — Section 1.5 (per-agent memory).
//
// Claim: the protocol runs in O(log log n + log(1/eps)) bits of agent
// memory. agent_state_bits() counts the information-theoretic state a real
// agent needs under a schedule: phase index, round-in-phase counter, sample
// counters and the opinion bits. Squaring n should add O(1) bits; halving
// eps should add O(1) bits.

#include "bench_common.hpp"

#include <cmath>

#include "core/agent.hpp"
#include "core/params.hpp"

int main(int argc, char** argv) {
  const auto options = flip::bench::parse_args(argc, argv);
  flip::bench::banner(
      options, "E14 bench_memory",
      "Section 1.5: O(log log n + log(1/eps)) memory bits per agent.\n"
      "Expect the bit count to move by O(1) when n is squared or eps "
      "halved — nothing like log n.");

  flip::TextTable table({"n", "eps", "agent state bits", "log2(n)",
                         "log2(log2 n) + 2 log2(1/eps)"});
  for (const std::size_t n :
       {std::size_t{1} << 8, std::size_t{1} << 16, std::size_t{1} << 24}) {
    for (const double eps : {0.4, 0.2, 0.1, 0.05}) {
      const flip::Params p = flip::Params::calibrated(n, eps);
      const double log2n = std::log2(static_cast<double>(n));
      const double model = std::log2(log2n) + 2.0 * std::log2(1.0 / eps);
      table.row()
          .cell(n)
          .cell(eps, 2)
          .cell(std::size_t{flip::agent_state_bits(p)})
          .cell(log2n, 0)
          .cell(model, 1);
    }
  }
  flip::bench::emit(
      options, table,
      "The bits column tracks the log log n + log(1/eps) model (last "
      "column), not log2(n):\nagents with loglog-size memory suffice, as "
      "Section 1.5 states.");
  return 0;
}
