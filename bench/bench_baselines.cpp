// E9 — Section 1.6 strawmen and Section 1.2 related dynamics.
//
// Compares the breathe protocol against every alternative the paper
// discusses, all under the same Flip-model noise:
//   silent-listen  (Sec 1.6): reliable but Theta(n log n/eps^2) rounds;
//   forward-now    (Sec 1.6): fast but bias decays as (2 eps)^depth -> 1/2;
//   noisy voter    (refs 49/50): hovers near 50/50, no convergence;
//   two-choices    (ref 22) and 3-majority (ref 11): noiseless-majority
//                  dynamics run through the noisy channel;
//   3-state AAE    (ref 6): needs three symbols; noisy misreads break it;
//   push rumor     (noiseless reference point: what's possible sans noise).

#include "bench_common.hpp"

#include <cmath>

#include "baselines/aae.hpp"
#include "baselines/forward.hpp"
#include "baselines/pull_majority.hpp"
#include "baselines/silent.hpp"
#include "baselines/voter.hpp"
#include "core/theory.hpp"
#include "net/channel.hpp"
#include "sim/engine.hpp"
#include "util/math.hpp"
#include "workload/scenarios.hpp"

namespace {

struct Row {
  std::string name;
  std::string problem;
  double rounds = 0.0;
  double correct = 0.0;
  bool consensus = false;
  std::string note;
};

}  // namespace

int main(int argc, char** argv) {
  const auto options = flip::bench::parse_args(argc, argv);
  flip::bench::banner(
      options, "E9 bench_baselines",
      "Every alternative the paper discusses, same noise (eps = 0.2), "
      "n = 2048.\nExpect: only breathe solves noisy broadcast in "
      "~log n/eps^2 rounds; each baseline fails on speed or correctness.");

  const std::size_t n = 2048;
  const double eps = 0.2;
  const std::uint64_t seed = 0xE9;
  const double unit = flip::theory::round_unit(n, eps);
  std::vector<Row> rows;

  // --- breathe (ours) -------------------------------------------------
  {
    flip::BroadcastScenario scenario;
    scenario.n = n;
    scenario.eps = eps;
    flip::TrialOptions trial_options;
    trial_options.trials = 5;
    trial_options.master_seed = seed;
    const flip::TrialSummary s =
        flip::run_trials(flip::broadcast_trial_fn(scenario), trial_options);
    rows.push_back({"breathe (this paper)", "broadcast", s.rounds.mean(),
                    s.correct_fraction.mean(),
                    s.successes == s.trials, "optimal O(log n/eps^2)"});
  }

  // --- silent listening ------------------------------------------------
  {
    flip::BinarySymmetricChannel channel(eps);
    flip::Xoshiro256 rng = flip::make_stream(seed, 10);
    flip::Engine engine(n, channel, rng);
    flip::SilentConfig config;
    config.samples_needed =
        flip::next_odd(static_cast<std::uint64_t>(unit));
    config.max_rounds = static_cast<flip::Round>(
        64.0 * static_cast<double>(n) * unit);
    flip::SilentListeningProtocol p(n, config);
    const flip::Metrics m = engine.run(p, config.max_rounds);
    rows.push_back({"silent-listen (Sec 1.6)", "broadcast",
                    static_cast<double>(m.rounds),
                    p.population().correct_fraction(flip::Opinion::kOne),
                    p.all_decided(), "correct but Theta(n log n/eps^2)"});
  }

  // --- forward immediately --------------------------------------------
  {
    flip::BinarySymmetricChannel channel(eps);
    flip::Xoshiro256 rng = flip::make_stream(seed, 11);
    flip::Engine engine(n, channel, rng);
    flip::ForwardConfig config;
    config.initial = {flip::Seed{0, flip::Opinion::kOne}};
    config.stop_when_all_informed = true;
    flip::ForwardGossipProtocol p(n, config);
    const flip::Metrics m = engine.run(p, 1 << 20);
    rows.push_back({"forward-now (Sec 1.6)", "broadcast",
                    static_cast<double>(m.rounds),
                    p.population().correct_fraction(flip::Opinion::kOne),
                    false, "fast; bias decays (2eps)^depth"});
  }

  // --- noisy voter with zealot ------------------------------------------
  {
    flip::BinarySymmetricChannel channel(eps);
    flip::Xoshiro256 rng = flip::make_stream(seed, 12);
    flip::Engine engine(n, channel, rng);
    flip::VoterConfig config;
    config.zealots = {flip::Seed{0, flip::Opinion::kOne}};
    config.duration = static_cast<flip::Round>(16.0 * unit);
    flip::NoisyVoterProtocol p(n, config);
    const flip::Metrics m = engine.run(p, config.duration);
    rows.push_back({"noisy voter (refs 49,50)", "broadcast",
                    static_cast<double>(m.rounds),
                    p.population().correct_fraction(flip::Opinion::kOne),
                    false, "hovers near 1/2 at 16x our budget"});
  }

  // --- pull dynamics on the majority problem ---------------------------
  for (const auto rule :
       {flip::PullRule::kTwoPlusOwn, flip::PullRule::kThreeSamples}) {
    flip::BinarySymmetricChannel channel(eps);
    flip::Xoshiro256 rng = flip::make_stream(
        seed, rule == flip::PullRule::kTwoPlusOwn ? 13 : 14);
    flip::PullMajorityConfig config;
    config.rule = rule;
    config.initial_correct_fraction = 0.6;
    config.max_rounds = static_cast<flip::Round>(8.0 * unit);
    flip::PullMajorityDynamics dynamics(n, config, channel, rng);
    const flip::PullMajorityResult r = dynamics.run();
    rows.push_back({rule == flip::PullRule::kTwoPlusOwn
                        ? "two-choices (ref 22)"
                        : "3-majority (ref 11)",
                    "majority (60/40)", static_cast<double>(r.rounds),
                    r.final_correct_fraction, r.consensus,
                    "noiseless O(log n) dynamics under noise"});
  }

  // --- three-state AAE ---------------------------------------------------
  {
    flip::Xoshiro256 rng = flip::make_stream(seed, 15);
    flip::AAEConfig config;
    config.initial_correct = n * 3 / 10;
    config.initial_wrong = n / 10;
    config.eps = eps;
    config.max_rounds = static_cast<flip::Round>(8.0 * unit);
    flip::ThreeStateAAE aae(n, config, rng);
    const flip::AAEResult r = aae.run();
    rows.push_back({"3-state AAE (ref 6)", "majority (3:1 seeds)",
                    static_cast<double>(r.rounds), r.final_correct_fraction,
                    r.consensus, "needs 3 symbols; misreads break it"});
  }

  // --- noiseless push rumor (reference point) ---------------------------
  {
    flip::PerfectChannel channel;
    flip::Xoshiro256 rng = flip::make_stream(seed, 16);
    flip::Engine engine(n, channel, rng);
    flip::ForwardConfig config;
    config.initial = {flip::Seed{0, flip::Opinion::kOne}};
    config.stop_when_all_informed = true;
    flip::ForwardGossipProtocol p(n, config);
    const flip::Metrics m = engine.run(p, 1 << 20);
    rows.push_back({"push rumor, NO noise", "broadcast",
                    static_cast<double>(m.rounds),
                    p.population().correct_fraction(flip::Opinion::kOne),
                    true, "the noiseless log n reference"});
  }

  flip::TextTable table({"protocol", "problem", "rounds", "rounds/unit",
                         "correct fraction", "consensus", "note"});
  for (const Row& row : rows) {
    table.row()
        .cell(row.name)
        .cell(row.problem)
        .cell(row.rounds, 0)
        .cell(row.rounds / unit, 2)
        .cell(row.correct, 3)
        .cell(row.consensus)
        .cell(row.note);
  }
  flip::bench::emit(options, table,
                    "unit = log n / eps^2 = " + flip::format_fixed(unit, 0) +
                        " rounds.");
  return 0;
}
