// E17 — intra-trial shard scaling: one big broadcast trial split across
// shards (docs/PERFORMANCE.md documents the methodology).
//
// Not a paper claim: times the substrate. Every row runs the SAME
// (seed, trial) workload and produces bit-identical results for every
// shard count (tests/batch_engine_test.cpp holds the engine to that);
// only the round-phase partitioning differs. Sharding targets the regime
// Monte-Carlo trial parallelism cannot reach — ONE trial at n = 10^6..10^7
// agents, where the paper's asymptotics live — so the headline
// configuration is a single trial:
//
//   bench_shards --n 1000000 --shards 1,2,4,8 --trials 1
//
// The committed trajectory point lives in bench/results/BENCH_shards.json;
// tools/check_engine_perf.py re-runs a CI-sized grid and gates the
// 8-shard point (speedup on machines with the cores to show it, bounded
// overhead otherwise). The `cores` column records what the measuring
// machine could physically deliver — shard speedups are meaningless
// without it.

#include <chrono>
#include <cstdint>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cli/args.hpp"
#include "cli/bench_report.hpp"
#include "util/table.hpp"
#include "workload/scenarios.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::string n_list = "100000";
  std::string shard_list = "1,2,4,8";
  std::optional<std::size_t> trials;
  std::optional<std::uint64_t> seed;
  flip::cli::BenchOptions options;

  flip::cli::ArgParser parser(
      "bench_shards",
      "E17: single-trial broadcast wall-clock vs intra-trial shard count.\n"
      "Bit-identical results per (seed, trial) for every shard count; only\n"
      "the round-phase partitioning differs.");
  parser.add_option("--n", "list", "comma-separated population sizes",
                    &n_list);
  parser.add_option("--shards", "list", "comma-separated shard counts",
                    &shard_list);
  parser.add_size("--trials", "trials per (n, shards) cell (default 1)",
                  &trials);
  parser.add_uint64("--seed", "master seed (default 0x5eed)", &seed);
  parser.add_flag("--csv", "emit table rows as CSV instead of rendering",
                  &options.csv);
  parser.add_option("--json", "path",
                    "also write the flip-bench-v1 JSON report to <path>",
                    &options.json_path);
  if (!parser.parse(argc, argv)) {
    if (parser.help_requested()) {
      std::cout << parser.usage();
      return 0;
    }
    std::cerr << "error: " << parser.error() << "\n\n" << parser.usage();
    return 2;
  }

  std::string error;
  const auto ns = flip::cli::parse_size_list(n_list, error);
  if (!ns || ns->empty()) {
    std::cerr << "error: --n: " << (error.empty() ? "empty list" : error)
              << "\n";
    return 2;
  }
  const auto shard_counts = flip::cli::parse_size_list(shard_list, error);
  if (!shard_counts || shard_counts->empty()) {
    std::cerr << "error: --shards: "
              << (error.empty() ? "empty list" : error) << "\n";
    return 2;
  }

  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  flip::cli::bench_banner(
      options, "E17 bench_shards",
      "Engineering claim (docs/PERFORMANCE.md): the counter-keyed "
      "determinism contract makes one trial's rounds shard-parallel with "
      "bit-identical results; wall-clock scales with shard count up to the "
      "machine's cores.");

  flip::TextTable table({"n", "shards", "cores", "trials", "s/trial",
                         "speedup"});
  for (const std::size_t n : *ns) {
    double base_seconds = 0.0;
    for (const std::size_t shards : *shard_counts) {
      flip::BroadcastScenario scenario;
      scenario.n = n;
      scenario.eps = 0.2;
      scenario.engine = flip::EngineMode::kBatch;
      scenario.shards = shards;

      const std::size_t reps = trials.value_or(1);
      const auto start = std::chrono::steady_clock::now();
      for (std::size_t t = 0; t < reps; ++t) {
        (void)flip::run_broadcast(scenario, seed.value_or(0x5eedULL), t);
      }
      const double per_trial =
          seconds_since(start) / static_cast<double>(reps);
      if (base_seconds == 0.0) base_seconds = per_trial;
      table.row()
          .cell(n)
          .cell(shards)
          .cell(cores)
          .cell(reps)
          .cell(per_trial, 3)
          .cell(base_seconds / per_trial, 2);
    }
  }
  flip::cli::bench_emit(
      options, table,
      "speedup = (s/trial at the row's first shard count) / (s/trial at "
      "this shard count), measured in this process on this machine; "
      "results are bit-identical across rows of the same n.");
  return 0;
}
