// Tests for the Remark 2.1 / 2.10 rule variants, the heterogeneous-noise
// channel wiring, the Stage II mean-field recursion, and the excess-skew
// (E15) configuration.

#include <gtest/gtest.h>

#include "core/theory.hpp"
#include "workload/scenarios.hpp"

namespace flip {
namespace {

TEST(VariantsTest, FirstMessageRuleBroadcasts) {
  BroadcastScenario scenario;
  scenario.n = 512;
  scenario.eps = 0.3;
  scenario.stage1_pick = Stage1Pick::kFirstMessage;
  const RunDetail detail = run_broadcast(scenario, 21, 0);
  EXPECT_TRUE(detail.success);
}

TEST(VariantsTest, PrefixSubsetRuleBroadcasts) {
  BroadcastScenario scenario;
  scenario.n = 512;
  scenario.eps = 0.3;
  scenario.stage2_subset = Stage2Subset::kPrefixSubset;
  const RunDetail detail = run_broadcast(scenario, 22, 0);
  EXPECT_TRUE(detail.success);
}

TEST(VariantsTest, BothVariantsTogetherBroadcast) {
  BroadcastScenario scenario;
  scenario.n = 512;
  scenario.eps = 0.3;
  scenario.stage1_pick = Stage1Pick::kFirstMessage;
  scenario.stage2_subset = Stage2Subset::kPrefixSubset;
  const RunDetail detail = run_broadcast(scenario, 23, 0);
  EXPECT_TRUE(detail.success);
}

TEST(VariantsTest, VariantsMatchPaperRuleStatistically) {
  // Remark 2.1/2.10: in the fully-synchronous setting the variants are
  // distribution-equivalent. Compare success counts over a small batch.
  auto success_count = [](Stage1Pick pick, Stage2Subset subset) {
    BroadcastScenario scenario;
    scenario.n = 512;
    scenario.eps = 0.25;
    scenario.stage1_pick = pick;
    scenario.stage2_subset = subset;
    TrialOptions options;
    options.trials = 10;
    options.master_seed = 0x51AB;
    return run_trials(broadcast_trial_fn(scenario), options).successes;
  };
  const std::size_t paper =
      success_count(Stage1Pick::kUniformMessage, Stage2Subset::kUniformSubset);
  const std::size_t variant =
      success_count(Stage1Pick::kFirstMessage, Stage2Subset::kPrefixSubset);
  EXPECT_GE(paper, 9u);
  EXPECT_GE(variant, 9u);
}

TEST(VariantsTest, HeterogeneousNoisePreservesGuarantee) {
  // The model only promises flips "with probability at most 1/2 - eps";
  // a channel that is sometimes milder must not hurt.
  BroadcastScenario scenario;
  scenario.n = 512;
  scenario.eps = 0.3;
  scenario.heterogeneous_noise = true;
  const RunDetail detail = run_broadcast(scenario, 24, 0);
  EXPECT_TRUE(detail.success);
}

TEST(MeanFieldTest, SuccessFractionMatchesClaim29) {
  // Claim 2.9: at least n/2 successful agents per phase, w.h.p. The
  // mean-field per-agent success probability is comfortably above 1/2 for
  // every schedule we generate.
  for (const std::size_t n : {std::size_t{256}, std::size_t{16384}}) {
    const Params p = Params::calibrated(n, 0.25);
    EXPECT_GT(theory::stage2_success_fraction(n, p.stage2().m), 0.9);
  }
}

TEST(MeanFieldTest, NextBiasBoostsSmallDelta) {
  const std::size_t n = 16384;
  const Params p = Params::calibrated(n, 0.25);
  for (const double delta : {0.005, 0.02, 0.05}) {
    const double next = theory::stage2_next_bias(n, 0.25, delta,
                                                 p.stage2().gamma,
                                                 p.stage2().m);
    EXPECT_GT(next, 1.5 * delta) << "delta=" << delta;
    EXPECT_LE(next, 0.5 + 1e-12);
  }
}

TEST(MeanFieldTest, TrajectoryIsMonotoneAndSaturates) {
  const std::size_t n = 16384;
  const Params p = Params::calibrated(n, 0.25);
  const auto trajectory = theory::stage2_bias_trajectory(
      n, 0.25, 0.01, p.stage2().gamma, p.stage2().m, p.stage2().k);
  ASSERT_EQ(trajectory.size(), p.stage2().k + 1);
  for (std::size_t i = 1; i < trajectory.size(); ++i) {
    EXPECT_GE(trajectory[i] + 1e-12, trajectory[i - 1]);
  }
  EXPECT_GT(trajectory.back(), 0.4);  // saturates near 1/2
}

TEST(MeanFieldTest, PredictsSimulatedFirstBoostPhase) {
  // The mean-field map should land near the simulated bias after one boost
  // phase (it ignores only O(1/sqrt(n)) fluctuations).
  BoostScenario scenario;
  scenario.n = 16384;
  scenario.eps = 0.25;
  scenario.initial_bias = 0.02;
  const RunDetail detail = run_boost(scenario, 25, 0);
  ASSERT_FALSE(detail.stage2.empty());
  const Params p = Params::calibrated(scenario.n, scenario.eps);
  const double predicted = theory::stage2_next_bias(
      scenario.n, scenario.eps, scenario.initial_bias, p.stage2().gamma,
      p.stage2().m);
  EXPECT_NEAR(detail.stage2.front().bias, predicted, 0.02);
}

TEST(ExcessSkewTest, WithinDeclaredSkewStillGuaranteed) {
  DesyncScenario scenario;
  scenario.n = 512;
  scenario.eps = 0.3;
  scenario.max_skew = 16;
  scenario.actual_skew = 16;
  const RunDetail detail = run_desync(scenario, 26, 0);
  EXPECT_TRUE(detail.success);
}

TEST(ExcessSkewTest, ModestExcessDegradesGracefully) {
  // 2x the declared slack: outside Theorem 3.1 but the protocol should
  // still produce a heavily-correct population rather than collapse.
  DesyncScenario scenario;
  scenario.n = 512;
  scenario.eps = 0.3;
  scenario.max_skew = 8;
  scenario.actual_skew = 16;
  const RunDetail detail = run_desync(scenario, 27, 0);
  EXPECT_GT(detail.correct_fraction, 0.6);
}

TEST(ExcessSkewTest, RejectedWithoutOptIn) {
  const Params p = Params::calibrated(64, 0.3);
  Xoshiro256 rng(28);
  DesyncConfig config;
  config.base = broadcast_config();
  config.max_skew = 4;
  config.wake.assign(64, 0);
  config.wake[1] = 9;
  EXPECT_THROW(DesyncBreatheProtocol(p, config, rng), std::invalid_argument);
  config.allow_excess_skew = true;
  EXPECT_NO_THROW(DesyncBreatheProtocol(p, config, rng));
}

}  // namespace
}  // namespace flip
