#include "util/math.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace flip {
namespace {

TEST(LogFactorialTest, SmallValues) {
  EXPECT_NEAR(log_factorial(0), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(1), 0.0, 1e-12);
  EXPECT_NEAR(log_factorial(5), std::log(120.0), 1e-10);
  EXPECT_NEAR(log_factorial(10), std::log(3628800.0), 1e-9);
}

TEST(LogBinomialTest, MatchesExactSmallCases) {
  EXPECT_NEAR(std::exp(log_binomial(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(10, 5)), 252.0, 1e-7);
  EXPECT_NEAR(std::exp(log_binomial(7, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(7, 7)), 1.0, 1e-9);
}

TEST(LogBinomialTest, KGreaterThanNIsMinusInfinity) {
  EXPECT_EQ(log_binomial(3, 4), -std::numeric_limits<double>::infinity());
}

TEST(BinomialPmfTest, FairCoinSmall) {
  EXPECT_NEAR(binomial_pmf(3, 0, 0.5), 0.125, 1e-12);
  EXPECT_NEAR(binomial_pmf(3, 1, 0.5), 0.375, 1e-12);
  EXPECT_NEAR(binomial_pmf(3, 2, 0.5), 0.375, 1e-12);
  EXPECT_NEAR(binomial_pmf(3, 3, 0.5), 0.125, 1e-12);
}

TEST(BinomialPmfTest, DegenerateP) {
  EXPECT_EQ(binomial_pmf(5, 0, 0.0), 1.0);
  EXPECT_EQ(binomial_pmf(5, 1, 0.0), 0.0);
  EXPECT_EQ(binomial_pmf(5, 5, 1.0), 1.0);
  EXPECT_EQ(binomial_pmf(5, 4, 1.0), 0.0);
}

TEST(BinomialPmfTest, SumsToOne) {
  for (double p : {0.1, 0.5, 0.73}) {
    double sum = 0.0;
    for (std::uint64_t k = 0; k <= 40; ++k) sum += binomial_pmf(40, k, p);
    EXPECT_NEAR(sum, 1.0, 1e-10) << "p=" << p;
  }
}

TEST(BinomialTailTest, MatchesBruteForce) {
  for (double p : {0.2, 0.5, 0.8}) {
    for (std::uint64_t k = 0; k <= 21; ++k) {
      double brute = 0.0;
      for (std::uint64_t j = k; j <= 21; ++j) brute += binomial_pmf(21, j, p);
      EXPECT_NEAR(binomial_tail_ge(21, k, p), brute, 1e-10)
          << "p=" << p << " k=" << k;
    }
  }
}

TEST(BinomialTailTest, GeAndLeAreComplementary) {
  for (std::uint64_t k = 0; k < 15; ++k) {
    const double ge = binomial_tail_ge(15, k + 1, 0.37);
    const double le = binomial_tail_le(15, k, 0.37);
    EXPECT_NEAR(ge + le, 1.0, 1e-10);
  }
}

TEST(BinomialTailTest, EdgeCases) {
  EXPECT_EQ(binomial_tail_ge(10, 0, 0.4), 1.0);
  EXPECT_EQ(binomial_tail_ge(10, 11, 0.4), 0.0);
  EXPECT_EQ(binomial_tail_le(10, 10, 0.4), 1.0);
}

TEST(BinomialTailTest, LargeNStable) {
  // Median of Binomial(2r+1, 1/2) is r: P[X >= r+1] = 1/2 exactly.
  const double tail = binomial_tail_ge(100001, 50001, 0.5);
  EXPECT_NEAR(tail, 0.5, 1e-6);
}

TEST(ChernoffTest, BoundsDecreaseWithMu) {
  EXPECT_GT(chernoff_upper(10, 0.5), chernoff_upper(100, 0.5));
  EXPECT_GT(chernoff_lower(10, 0.5), chernoff_lower(100, 0.5));
}

TEST(ChernoffTest, ActuallyBoundsBinomialTails) {
  // P[X >= (1+delta) mu] for X ~ Binomial(n, p), mu = np.
  const std::uint64_t n = 500;
  const double p = 0.3;
  const double mu = n * p;
  for (double delta : {0.1, 0.3, 0.6}) {
    const auto threshold =
        static_cast<std::uint64_t>(std::ceil((1.0 + delta) * mu));
    EXPECT_LE(binomial_tail_ge(n, threshold, p), chernoff_upper(mu, delta))
        << "delta=" << delta;
    const auto low =
        static_cast<std::uint64_t>(std::floor((1.0 - delta) * mu));
    EXPECT_LE(binomial_tail_le(n, low, p), chernoff_lower(mu, delta))
        << "delta=" << delta;
  }
}

TEST(ChernoffTest, RejectsBadArguments) {
  EXPECT_THROW(chernoff_upper(-1.0, 0.5), std::invalid_argument);
  EXPECT_THROW(chernoff_lower(1.0, 0.0), std::invalid_argument);
}

TEST(StirlingRatioTest, WithinPaperBounds) {
  // The paper uses sqrt(2 pi) <= n!/(e^-n n^(n+1/2)) <= e, i.e. the ratio
  // against the sqrt(2 pi) form lies in [1, e/sqrt(2 pi)].
  const double upper = std::numbers::e / std::sqrt(2.0 * std::numbers::pi);
  for (std::uint64_t n : {1ULL, 2ULL, 5ULL, 10ULL, 100ULL, 10000ULL}) {
    const double ratio = stirling_ratio(n);
    EXPECT_GE(ratio, 1.0) << "n=" << n;
    EXPECT_LE(ratio, upper) << "n=" << n;
  }
}

TEST(StirlingRatioTest, ApproachesOne) {
  EXPECT_NEAR(stirling_ratio(100000), 1.0, 1e-5);
}

TEST(LogNTest, ValuesAndGuard) {
  EXPECT_NEAR(log_n(2), std::log(2.0), 1e-12);
  EXPECT_NEAR(log_n(1000), std::log(1000.0), 1e-12);
  EXPECT_THROW(log_n(1), std::invalid_argument);
}

TEST(FloorLogTest, ExactPowersAndBetween) {
  EXPECT_EQ(floor_log(1.0, 2.0), 0u);
  EXPECT_EQ(floor_log(2.0, 2.0), 1u);
  EXPECT_EQ(floor_log(3.9, 2.0), 1u);
  EXPECT_EQ(floor_log(4.0, 2.0), 2u);
  EXPECT_EQ(floor_log(1024.0, 2.0), 10u);
  EXPECT_EQ(floor_log(999.0, 10.0), 2u);
  EXPECT_EQ(floor_log(1000.0, 10.0), 3u);
}

TEST(FloorLogTest, RejectsBadArguments) {
  EXPECT_THROW(floor_log(0.5, 2.0), std::invalid_argument);
  EXPECT_THROW(floor_log(2.0, 1.0), std::invalid_argument);
}

TEST(NextOddTest, Values) {
  EXPECT_EQ(next_odd(0), 1u);
  EXPECT_EQ(next_odd(1), 1u);
  EXPECT_EQ(next_odd(2), 3u);
  EXPECT_EQ(next_odd(100), 101u);
  EXPECT_EQ(next_odd(101), 101u);
}

}  // namespace
}  // namespace flip
