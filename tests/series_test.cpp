#include "sim/series.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "workload/scenarios.hpp"

namespace flip {
namespace {

std::vector<Sample> make_series(std::initializer_list<double> values) {
  std::vector<Sample> series;
  Round r = 0;
  for (double v : values) series.push_back({r++, v});
  return series;
}

TEST(SeriesTest, FirstCrossingFindsEarliest) {
  const auto s = make_series({0.1, 0.4, 0.6, 0.3, 0.9});
  EXPECT_EQ(first_crossing(s, 0.5), Round{2});
  EXPECT_EQ(first_crossing(s, 0.05), Round{0});
  EXPECT_EQ(first_crossing(s, 1.5), std::nullopt);
}

TEST(SeriesTest, StableCrossingIgnoresTransients) {
  // Touches 0.5 at index 2 but dips back below; stable from index 4.
  const auto s = make_series({0.1, 0.4, 0.6, 0.3, 0.9, 0.95, 1.0});
  EXPECT_EQ(stable_crossing(s, 0.5), Round{4});
  // first_crossing would have said 2.
  EXPECT_EQ(first_crossing(s, 0.5), Round{2});
}

TEST(SeriesTest, StableCrossingEdgeCases) {
  EXPECT_EQ(stable_crossing({}, 0.5), std::nullopt);
  const auto never = make_series({0.1, 0.2});
  EXPECT_EQ(stable_crossing(never, 0.5), std::nullopt);
  const auto always = make_series({0.9, 0.8});
  EXPECT_EQ(stable_crossing(always, 0.5), Round{0});
  const auto last_only = make_series({0.1, 0.9});
  EXPECT_EQ(stable_crossing(last_only, 0.5), Round{1});
}

TEST(SeriesTest, PlateauDetection) {
  const auto flat = make_series({0.0, 0.5, 1.0, 1.0, 1.0, 1.0});
  EXPECT_TRUE(has_plateau(flat, 3, 1e-9));
  const auto rising = make_series({0.0, 0.2, 0.4, 0.6, 0.8});
  EXPECT_FALSE(has_plateau(rising, 3, 0.05));
  EXPECT_FALSE(has_plateau({}, 3, 0.1));
}

TEST(SeriesTest, TailMean) {
  const auto s = make_series({0.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(tail_mean(s, 2), 3.0);
  EXPECT_DOUBLE_EQ(tail_mean(s, 100), 2.0);  // clamps to series size
  EXPECT_THROW(tail_mean({}, 2), std::invalid_argument);
}

// Edge cases of the window handling: empty series, window 0, and windows
// past the series start must all behave (and agree between tail_mean and
// has_plateau), because the sweep reporting now calls these on probe
// series that may be empty (probes off) or shorter than the window.
TEST(SeriesTest, WindowEdgeCases) {
  // Window 0 clamps to 1 everywhere: the last sample alone.
  const auto s = make_series({0.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(tail_mean(s, 0), 4.0);
  EXPECT_TRUE(has_plateau(s, 0, 1e-12));  // a single sample is flat
  EXPECT_FALSE(has_plateau(s, 2, 0.5));   // two samples 2 apart are not

  // Window larger than the series: the whole series, no out-of-range read.
  const auto flat = make_series({1.0, 1.0});
  EXPECT_TRUE(has_plateau(flat, 100, 1e-12));
  EXPECT_DOUBLE_EQ(tail_mean(flat, 100), 1.0);

  // Empty series: never a plateau, tail_mean throws (documented
  // precondition), crossings are nullopt.
  EXPECT_FALSE(has_plateau({}, 0, 1.0));
  EXPECT_THROW(tail_mean({}, 0), std::invalid_argument);
  EXPECT_EQ(first_crossing({}, 0.0), std::nullopt);
  EXPECT_EQ(stable_crossing({}, 0.0), std::nullopt);
  EXPECT_DOUBLE_EQ(max_step({}), 0.0);
}

// The convergence-round statistic as the sweep reporting computes it: a
// stable 99%-of-n crossing over an activation-count series.
TEST(SeriesTest, ActivationConvergenceShape) {
  std::vector<Sample> series;
  const double n = 256.0;
  const double counts[] = {1, 30, 252, 200, 254, 255, 256, 256};
  Round r = 0;
  for (const double c : counts) series.push_back({r += 8, c});
  // 0.99 * 256 = 253.44: touched at round 24 (252 < threshold, so not
  // yet), stably from the 254 sample on.
  EXPECT_EQ(stable_crossing(series, 0.99 * n), Round{40});
  EXPECT_EQ(first_crossing(series, 0.99 * n), Round{40});
}

TEST(SeriesTest, MaxStep) {
  const auto s = make_series({0.0, 0.1, 0.7, 0.6, 0.8});
  EXPECT_DOUBLE_EQ(max_step(s), 0.6);
  EXPECT_EQ(max_step({}), 0.0);
  const auto one = make_series({1.0});
  EXPECT_EQ(max_step(one), 0.0);
}

TEST(SeriesTest, BroadcastActivationConvergenceTime) {
  // End-to-end: the round at which all agents are stably activated must
  // fall inside Stage I, and the bias series must plateau at +1/2.
  BroadcastScenario scenario;
  scenario.n = 512;
  scenario.eps = 0.3;
  scenario.probe_every = 10;
  const RunDetail d = run_broadcast(scenario, 51, 0);
  const Params p = Params::calibrated(scenario.n, scenario.eps);

  const auto activated_all = stable_crossing(
      d.metrics.activated_series, static_cast<double>(scenario.n));
  ASSERT_TRUE(activated_all.has_value());
  // Probes are every probe_every rounds, so the observed crossing can lag
  // the true activation round by up to one probe period.
  EXPECT_LE(*activated_all,
            p.stage1().total_rounds() + scenario.probe_every);

  EXPECT_TRUE(has_plateau(d.metrics.bias_series, 4, 1e-6));
  EXPECT_NEAR(tail_mean(d.metrics.bias_series, 4), 0.5, 1e-9);
}

}  // namespace
}  // namespace flip
