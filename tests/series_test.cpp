#include "sim/series.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "workload/scenarios.hpp"

namespace flip {
namespace {

std::vector<Sample> make_series(std::initializer_list<double> values) {
  std::vector<Sample> series;
  Round r = 0;
  for (double v : values) series.push_back({r++, v});
  return series;
}

TEST(SeriesTest, FirstCrossingFindsEarliest) {
  const auto s = make_series({0.1, 0.4, 0.6, 0.3, 0.9});
  EXPECT_EQ(first_crossing(s, 0.5), Round{2});
  EXPECT_EQ(first_crossing(s, 0.05), Round{0});
  EXPECT_EQ(first_crossing(s, 1.5), std::nullopt);
}

TEST(SeriesTest, StableCrossingIgnoresTransients) {
  // Touches 0.5 at index 2 but dips back below; stable from index 4.
  const auto s = make_series({0.1, 0.4, 0.6, 0.3, 0.9, 0.95, 1.0});
  EXPECT_EQ(stable_crossing(s, 0.5), Round{4});
  // first_crossing would have said 2.
  EXPECT_EQ(first_crossing(s, 0.5), Round{2});
}

TEST(SeriesTest, StableCrossingEdgeCases) {
  EXPECT_EQ(stable_crossing({}, 0.5), std::nullopt);
  const auto never = make_series({0.1, 0.2});
  EXPECT_EQ(stable_crossing(never, 0.5), std::nullopt);
  const auto always = make_series({0.9, 0.8});
  EXPECT_EQ(stable_crossing(always, 0.5), Round{0});
  const auto last_only = make_series({0.1, 0.9});
  EXPECT_EQ(stable_crossing(last_only, 0.5), Round{1});
}

TEST(SeriesTest, PlateauDetection) {
  const auto flat = make_series({0.0, 0.5, 1.0, 1.0, 1.0, 1.0});
  EXPECT_TRUE(has_plateau(flat, 3, 1e-9));
  const auto rising = make_series({0.0, 0.2, 0.4, 0.6, 0.8});
  EXPECT_FALSE(has_plateau(rising, 3, 0.05));
  EXPECT_FALSE(has_plateau({}, 3, 0.1));
}

TEST(SeriesTest, TailMean) {
  const auto s = make_series({0.0, 2.0, 4.0});
  EXPECT_DOUBLE_EQ(tail_mean(s, 2), 3.0);
  EXPECT_DOUBLE_EQ(tail_mean(s, 100), 2.0);  // clamps to series size
  EXPECT_THROW(tail_mean({}, 2), std::invalid_argument);
}

TEST(SeriesTest, MaxStep) {
  const auto s = make_series({0.0, 0.1, 0.7, 0.6, 0.8});
  EXPECT_DOUBLE_EQ(max_step(s), 0.6);
  EXPECT_EQ(max_step({}), 0.0);
  const auto one = make_series({1.0});
  EXPECT_EQ(max_step(one), 0.0);
}

TEST(SeriesTest, BroadcastActivationConvergenceTime) {
  // End-to-end: the round at which all agents are stably activated must
  // fall inside Stage I, and the bias series must plateau at +1/2.
  BroadcastScenario scenario;
  scenario.n = 512;
  scenario.eps = 0.3;
  scenario.probe_every = 10;
  const RunDetail d = run_broadcast(scenario, 51, 0);
  const Params p = Params::calibrated(scenario.n, scenario.eps);

  const auto activated_all = stable_crossing(
      d.metrics.activated_series, static_cast<double>(scenario.n));
  ASSERT_TRUE(activated_all.has_value());
  // Probes are every probe_every rounds, so the observed crossing can lag
  // the true activation round by up to one probe period.
  EXPECT_LE(*activated_all,
            p.stage1().total_rounds() + scenario.probe_every);

  EXPECT_TRUE(has_plateau(d.metrics.bias_series, 4, 1e-6));
  EXPECT_NEAR(tail_mean(d.metrics.bias_series, 4), 0.5, 1e-9);
}

}  // namespace
}  // namespace flip
