#include "sim/trial.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>

#include "util/rng.hpp"

namespace flip {
namespace {

TEST(TrialTest, RejectsZeroTrials) {
  TrialOptions options;
  options.trials = 0;
  EXPECT_THROW(
      run_trials([](std::uint64_t, std::size_t) { return TrialOutcome{}; },
                 options),
      std::invalid_argument);
}

TEST(TrialTest, AggregatesOutcomes) {
  TrialOptions options;
  options.trials = 10;
  const TrialSummary summary = run_trials(
      [](std::uint64_t, std::size_t i) {
        TrialOutcome o;
        o.success = i % 2 == 0;
        o.rounds = static_cast<double>(i);
        o.messages = 100.0;
        o.correct_fraction = 1.0;
        return o;
      },
      options);
  EXPECT_EQ(summary.trials, 10u);
  EXPECT_EQ(summary.successes, 5u);
  EXPECT_DOUBLE_EQ(summary.success.estimate, 0.5);
  EXPECT_DOUBLE_EQ(summary.rounds.mean(), 4.5);
  EXPECT_DOUBLE_EQ(summary.messages.mean(), 100.0);
}

TEST(TrialTest, EachTrialIndexRunsExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  TrialOptions options;
  options.trials = 64;
  run_trials(
      [&](std::uint64_t, std::size_t i) {
        ++hits[i];
        return TrialOutcome{};
      },
      options);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "trial " << i;
  }
}

TEST(TrialTest, SeedIsPassedThrough) {
  TrialOptions options;
  options.trials = 3;
  options.master_seed = 0xabcdULL;
  run_trials(
      [&](std::uint64_t seed, std::size_t) {
        EXPECT_EQ(seed, 0xabcdULL);
        return TrialOutcome{};
      },
      options);
}

TEST(TrialTest, DeterministicAggregation) {
  // A trial function that derives its outcome from (seed, index) must give
  // identical summaries across invocations, regardless of thread timing.
  auto fn = [](std::uint64_t seed, std::size_t i) {
    Xoshiro256 rng = make_stream(seed, i);
    TrialOutcome o;
    o.rounds = static_cast<double>(uniform_index(rng, 1000));
    o.success = uniform_index(rng, 2) == 0;
    return o;
  };
  TrialOptions options;
  options.trials = 50;
  const TrialSummary a = run_trials(fn, options);
  const TrialSummary b = run_trials(fn, options);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_DOUBLE_EQ(a.rounds.mean(), b.rounds.mean());
}

TEST(TrialTest, UsesProvidedPool) {
  ThreadPool pool(2);
  TrialOptions options;
  options.trials = 8;
  options.pool = &pool;
  const TrialSummary summary = run_trials(
      [](std::uint64_t, std::size_t) {
        TrialOutcome o;
        o.success = true;
        return o;
      },
      options);
  EXPECT_EQ(summary.successes, 8u);
}

}  // namespace
}  // namespace flip
