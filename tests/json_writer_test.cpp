#include "util/json_writer.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

namespace flip {
namespace {

TEST(JsonWriterTest, CompactObject) {
  JsonWriter json(0);
  json.begin_object()
      .field("a", std::uint64_t{1})
      .field("b", "x")
      .field("c", true)
      .end_object();
  EXPECT_EQ(json.str(), R"({"a":1,"b":"x","c":true})");
}

TEST(JsonWriterTest, PrettyNestedGolden) {
  JsonWriter json(2);
  json.begin_object();
  json.field("name", "sweep");
  json.key("values").begin_array().value(1).value(2).end_array();
  json.key("inner").begin_object().field("ok", false).end_object();
  json.end_object();
  EXPECT_EQ(json.str(),
            "{\n"
            "  \"name\": \"sweep\",\n"
            "  \"values\": [\n"
            "    1,\n"
            "    2\n"
            "  ],\n"
            "  \"inner\": {\n"
            "    \"ok\": false\n"
            "  }\n"
            "}");
}

TEST(JsonWriterTest, KeysKeepInsertionOrder) {
  JsonWriter json(0);
  json.begin_object()
      .field("zebra", 1)
      .field("alpha", 2)
      .field("mid", 3)
      .end_object();
  const std::string& out = json.str();
  EXPECT_LT(out.find("zebra"), out.find("alpha"));
  EXPECT_LT(out.find("alpha"), out.find("mid"));
}

TEST(JsonWriterTest, EscapesStrings) {
  JsonWriter json(0);
  json.begin_object().field("k", "a\"b\\c\nd\te").end_object();
  EXPECT_EQ(json.str(), "{\"k\":\"a\\\"b\\\\c\\nd\\te\"}");
  EXPECT_EQ(JsonWriter::escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, NonFiniteNumbersBecomeNull) {
  JsonWriter json(0);
  json.begin_array()
      .value(std::numeric_limits<double>::quiet_NaN())
      .value(std::numeric_limits<double>::infinity())
      .value(0.5)
      .end_array();
  EXPECT_EQ(json.str(), "[null,null,0.5]");
}

TEST(JsonWriterTest, NumbersAreShortestRoundTrip) {
  EXPECT_EQ(JsonWriter::number(0.2), "0.2");
  EXPECT_EQ(JsonWriter::number(1100.0), "1100");
  EXPECT_EQ(JsonWriter::number(0.25), "0.25");
}

TEST(JsonWriterTest, TopLevelScalar) {
  JsonWriter json(0);
  json.value("alone");
  EXPECT_EQ(json.str(), "\"alone\"");
}

TEST(JsonWriterTest, MisuseThrows) {
  {
    JsonWriter json(0);
    json.begin_object();
    EXPECT_THROW(json.value(1.0), std::logic_error);  // value without key
  }
  {
    JsonWriter json(0);
    json.begin_object();
    EXPECT_THROW(json.end_array(), std::logic_error);
  }
  {
    JsonWriter json(0);
    json.begin_array();
    EXPECT_THROW(json.key("k"), std::logic_error);
  }
  {
    JsonWriter json(0);
    json.begin_object();
    EXPECT_THROW(static_cast<void>(json.str()), std::logic_error);
  }
  {
    JsonWriter json(0);
    json.value(1.0);
    EXPECT_THROW(json.value(2.0), std::logic_error);  // two top-levels
  }
}

}  // namespace
}  // namespace flip
