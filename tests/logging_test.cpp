#include "util/logging.hpp"

#include <gtest/gtest.h>

namespace flip {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LoggingTest, BelowThresholdWritesNothing) {
  set_log_level(LogLevel::kError);
  testing::internal::CaptureStderr();
  log_info("should be invisible");
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, AtThresholdWrites) {
  set_log_level(LogLevel::kInfo);
  testing::internal::CaptureStderr();
  log_info("visible ", 42);
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("[info] visible 42"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  testing::internal::CaptureStderr();
  log_error("even errors");
  EXPECT_EQ(testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, FormatsMultipleArguments) {
  set_log_level(LogLevel::kDebug);
  testing::internal::CaptureStderr();
  log_debug("a=", 1, " b=", 2.5);
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("a=1 b=2.5"), std::string::npos);
}

}  // namespace
}  // namespace flip
