#include "core/params.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace flip {
namespace {

TEST(ParamsTest, RejectsBadArguments) {
  EXPECT_THROW(Params::calibrated(2, 0.2), std::invalid_argument);
  EXPECT_THROW(Params::calibrated(100, 0.0), std::invalid_argument);
  EXPECT_THROW(Params::calibrated(100, 0.5), std::invalid_argument);
  EXPECT_THROW(Params::calibrated(100, -0.1), std::invalid_argument);
}

TEST(ParamsTest, CalibratedValidates) {
  for (std::size_t n : {16, 1024, 1 << 20}) {
    for (double eps : {0.05, 0.15, 0.3, 0.45}) {
      const Params p = Params::calibrated(n, eps);
      EXPECT_NO_THROW(p.validate()) << "n=" << n << " eps=" << eps;
    }
  }
}

TEST(ParamsTest, TheoreticalConstantsMatchPaper) {
  const Params p = Params::theoretical(1024, 0.1);
  // r = ceil(2^22 / eps^2).
  EXPECT_EQ(p.stage2().r,
            static_cast<std::uint64_t>(std::ceil(4194304.0 / 0.01)));
  // beta > 3s and f > beta, as the proofs require.
  EXPECT_GT(p.stage1().beta, 3 * p.stage1().s);
  EXPECT_GT(p.stage1().f, p.stage1().beta);
}

TEST(ParamsTest, GrowthBeatsNoiseDeterioration) {
  for (double eps : {0.05, 0.1, 0.2, 0.35}) {
    const Params p = Params::calibrated(1 << 16, eps);
    EXPECT_GT(static_cast<double>(p.stage1().beta) + 1.0,
              1.0 / (eps * eps))
        << "eps=" << eps;
  }
}

TEST(ParamsTest, PhaseZeroLengthIsSLogN) {
  const Params p = Params::calibrated(4096, 0.2);
  EXPECT_EQ(p.stage1().beta_s, p.stage1().s * p.log_n());
  EXPECT_EQ(p.stage1().beta_f, p.stage1().f * p.log_n());
}

TEST(ParamsTest, TDefinitionRespectsCap) {
  // beta_s * (beta+1)^T <= n/2 < beta_s * (beta+1)^(T+1) when T > 0.
  const Params p = Params::calibrated(1 << 20, 0.35);
  const StageOneSchedule& s1 = p.stage1();
  const double bs = static_cast<double>(s1.beta_s);
  const double b1 = static_cast<double>(s1.beta) + 1.0;
  EXPECT_LE(bs * std::pow(b1, static_cast<double>(s1.T)),
            static_cast<double>(p.n()) / 2.0);
  EXPECT_GT(bs * std::pow(b1, static_cast<double>(s1.T) + 1.0),
            static_cast<double>(p.n()) / 2.0);
}

TEST(ParamsTest, LargeNLooseEpsHasMiddlePhases) {
  const Params p = Params::calibrated(1 << 20, 0.35);
  EXPECT_GE(p.stage1().T, 2u) << p.describe();
}

TEST(ParamsTest, StageOnePhaseArithmetic) {
  const Params p = Params::calibrated(1 << 20, 0.35);
  const StageOneSchedule& s1 = p.stage1();
  EXPECT_EQ(s1.phase_start(0), 0u);
  EXPECT_EQ(s1.phase_end(0), s1.beta_s);
  for (std::uint64_t i = 1; i <= s1.T; ++i) {
    EXPECT_EQ(s1.phase_length(i), s1.beta);
    EXPECT_EQ(s1.phase_start(i), s1.phase_end(i - 1));
  }
  EXPECT_EQ(s1.phase_end(s1.T + 1), s1.total_rounds());
  EXPECT_THROW((void)s1.phase_length(s1.T + 2), std::out_of_range);
}

TEST(ParamsTest, PhaseOfRoundIsConsistentWithBoundaries) {
  const Params p = Params::calibrated(1 << 20, 0.35);
  const StageOneSchedule& s1 = p.stage1();
  for (std::uint64_t phase = 0; phase <= s1.T + 1; ++phase) {
    EXPECT_EQ(s1.phase_of_round(s1.phase_start(phase)), phase);
    EXPECT_EQ(s1.phase_of_round(s1.phase_end(phase) - 1), phase);
  }
  EXPECT_THROW((void)s1.phase_of_round(s1.total_rounds()), std::out_of_range);
}

TEST(ParamsTest, StageTwoShape) {
  const Params p = Params::calibrated(4096, 0.2);
  const StageTwoSchedule& s2 = p.stage2();
  EXPECT_EQ(s2.gamma, 2 * s2.r + 1);
  EXPECT_EQ(s2.gamma % 2, 1u);
  EXPECT_EQ(s2.m, 2 * s2.gamma);
  EXPECT_EQ((s2.m_final / 2) % 2, 1u);  // final majority subset odd
  EXPECT_GE(s2.m_final, s2.m);
  EXPECT_GT(s2.k, 0u);
  EXPECT_EQ(s2.total_rounds(), s2.k * s2.m + s2.m_final);
}

TEST(ParamsTest, StageTwoPhaseOfRound) {
  const Params p = Params::calibrated(4096, 0.2);
  const StageTwoSchedule& s2 = p.stage2();
  EXPECT_EQ(s2.phase_of_round(0), 0u);
  EXPECT_EQ(s2.phase_of_round(s2.m - 1), 0u);
  EXPECT_EQ(s2.phase_of_round(s2.m), 1u);
  EXPECT_EQ(s2.phase_of_round(s2.k * s2.m), s2.k);
  EXPECT_EQ(s2.phase_of_round(s2.total_rounds() - 1), s2.k);
  EXPECT_THROW((void)s2.phase_of_round(s2.total_rounds()), std::out_of_range);
}

TEST(ParamsTest, RoundsScaleAsLogNOverEpsSquared) {
  // total_rounds / (log n / eps^2) should stay within a constant band
  // across a wide range of n and eps.
  double lo = 1e18;
  double hi = 0.0;
  for (std::size_t n : {1 << 12, 1 << 16, 1 << 20}) {
    for (double eps : {0.1, 0.2, 0.3}) {
      const Params p = Params::calibrated(n, eps);
      const double unit =
          std::log(static_cast<double>(n)) / (eps * eps);
      const double ratio = static_cast<double>(p.total_rounds()) / unit;
      lo = std::min(lo, ratio);
      hi = std::max(hi, ratio);
    }
  }
  EXPECT_LT(hi / lo, 12.0) << "lo=" << lo << " hi=" << hi;
}

TEST(ParamsTest, EpsThresholdFlag) {
  EXPECT_TRUE(Params::calibrated(1 << 16, 0.2).eps_above_threshold());
  EXPECT_FALSE(Params::calibrated(1 << 16, 0.002).eps_above_threshold());
}

TEST(ParamsTest, JoinPhaseMonotoneInSetSize) {
  const Params p = Params::calibrated(1 << 20, 0.3);
  EXPECT_EQ(p.join_phase_for_initial_set(1), 0u);
  std::uint64_t prev = 0;
  for (std::size_t a : {16, 256, 4096, 65536, 1 << 20}) {
    const std::uint64_t phase = p.join_phase_for_initial_set(a);
    EXPECT_GE(phase, prev);
    EXPECT_LE(phase, p.stage1().T + 1);
    prev = phase;
  }
  EXPECT_THROW((void)p.join_phase_for_initial_set(0), std::invalid_argument);
}

TEST(ParamsTest, DescribeMentionsKeyNumbers) {
  const Params p = Params::calibrated(4096, 0.2);
  const std::string text = p.describe();
  EXPECT_NE(text.find("n=4096"), std::string::npos);
  EXPECT_NE(text.find("Stage I"), std::string::npos);
  EXPECT_NE(text.find("Stage II"), std::string::npos);
}

}  // namespace
}  // namespace flip
