#include "baselines/voter.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "net/channel.hpp"
#include "sim/engine.hpp"

namespace flip {
namespace {

VoterConfig zealot_config(Round duration) {
  VoterConfig config;
  config.zealots = {Seed{0, Opinion::kOne}};
  config.duration = duration;
  return config;
}

TEST(NoisyVoterTest, RejectsBadConfigs) {
  EXPECT_THROW(NoisyVoterProtocol(8, VoterConfig{}), std::invalid_argument);
  VoterConfig no_duration;
  no_duration.zealots = {Seed{0, Opinion::kOne}};
  EXPECT_THROW(NoisyVoterProtocol(8, no_duration), std::invalid_argument);
}

TEST(NoisyVoterTest, ZealotNeverChangesOpinion) {
  NoisyVoterProtocol protocol(8, zealot_config(100));
  protocol.deliver(0, Opinion::kZero, 0);
  EXPECT_EQ(protocol.population().opinion(0), Opinion::kOne);
}

TEST(NoisyVoterTest, NonZealotAdoptsWhatItHears) {
  NoisyVoterProtocol protocol(8, zealot_config(100));
  protocol.deliver(3, Opinion::kZero, 0);
  EXPECT_EQ(protocol.population().opinion(3), Opinion::kZero);
  protocol.deliver(3, Opinion::kOne, 1);
  EXPECT_EQ(protocol.population().opinion(3), Opinion::kOne);
}

TEST(NoisyVoterTest, RunsForExactDuration) {
  BinarySymmetricChannel channel(0.2);
  Xoshiro256 rng(61);
  Engine engine(64, channel, rng);
  NoisyVoterProtocol protocol(64, zealot_config(500));
  const Metrics metrics = engine.run(protocol, 100000);
  EXPECT_EQ(metrics.rounds, 500u);
}

TEST(NoisyVoterTest, NoisePreventsConsensusInReasonableTime) {
  // The physics baseline: under noise the population hovers near 50/50
  // rather than converging — run for the time our protocol would need and
  // confirm it is nowhere near unanimity.
  const std::size_t n = 2048;
  const double eps = 0.2;
  BinarySymmetricChannel channel(eps);
  Xoshiro256 rng(62);
  Engine engine(n, channel, rng);
  // ~8x the breathe protocol's budget at this n/eps.
  NoisyVoterProtocol protocol(n, zealot_config(8 * 2000));
  engine.run(protocol, 100000);
  const double fraction =
      protocol.population().correct_fraction(Opinion::kOne);
  EXPECT_GT(fraction, 0.3);
  EXPECT_LT(fraction, 0.7);
}

TEST(NoisyVoterTest, NoiselessZealotEventuallyDominatesSmallN) {
  // Without noise the zealot's opinion is absorbing; at tiny n this
  // happens quickly.
  const std::size_t n = 16;
  PerfectChannel channel;
  Xoshiro256 rng(63);
  Engine engine(n, channel, rng);
  NoisyVoterProtocol protocol(n, zealot_config(20000));
  engine.run(protocol, 20000);
  EXPECT_GE(protocol.population().correct_fraction(Opinion::kOne), 0.9);
}

}  // namespace
}  // namespace flip
