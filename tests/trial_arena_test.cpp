// The TrialArena pooling contract (sim/trial_arena.hpp): once a worker
// thread's arena is warm, running another trial through the pooled
// BatchEngine path performs ZERO heap allocations — proven here with a
// counting global operator new, not argued from reading the code. The
// lease-stack semantics (same arena back on re-acquire, distinct arenas
// under nesting, BatchEngineLease sharing the same stack) are pinned too,
// because the helping-wait reentrancy in the thread pool depends on them.
//
// This TU replaces the global operator new/delete for the whole test
// binary with a counting passthrough. That is safe binary-wide (every
// other test just pays one relaxed atomic increment per allocation), and
// ctest runs each test in its own process, so the counter observed here is
// driven only by this file's tests.

#include "sim/trial_arena.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/breathe.hpp"
#include "core/environment.hpp"
#include "core/params.hpp"
#include "net/channel.hpp"
#include "sim/batch_engine.hpp"
#include "util/rng.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void* counted_aligned_alloc(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align),
                     size == 0 ? 1 : size) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_aligned_alloc(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace flip {
namespace {

/// One warm trial exactly as the pooled scenario path runs it
/// (workload/scenarios.cpp pooled_breathe_outcome): lease the thread's
/// arena, build the per-trial channel, fill the pooled result in place.
void run_pooled_trial(const Params& params, const BreatheConfig& config,
                      const BreatheRunOptions& options, std::uint64_t seed,
                      std::size_t trial) {
  TrialArenaLease arena;
  BinarySymmetricChannel channel(0.3);
  arena->engine.run_breathe(params, config, channel,
                            trial_stream_key(seed, trial),
                            /*stage1_only=*/false, options, arena->result);
}

void expect_zero_alloc_warm_trials(std::size_t shards, bool churn) {
  const Params params = Params::calibrated(256, 0.3);
  ASSERT_TRUE(breathe_fast_supported(params));
  const BreatheConfig config = broadcast_config();
  BreatheRunOptions options;
  options.shards = shards;  // pool == nullptr: shard phases run inline
  options.engine.probe_every = 16;  // the probe series must pool too
  if (churn) {
    options.engine.churn.sleep_prob = 0.01;
    options.engine.churn.wake_prob = 0.2;
  }

  // Warm-up: the first trial on a cold arena may grow every pooled vector.
  run_pooled_trial(params, config, options, 0x5eed, 0);

  const std::uint64_t before = allocation_count();
  for (std::size_t trial = 1; trial <= 4; ++trial) {
    run_pooled_trial(params, config, options, 0x5eed, trial);
  }
  EXPECT_EQ(allocation_count(), before)
      << "warm pooled trials must not touch the heap (shards=" << shards
      << ", churn=" << churn << ")";
}

TEST(TrialArenaTest, WarmTrialMakesNoHeapAllocationsUnsharded) {
  expect_zero_alloc_warm_trials(/*shards=*/1, /*churn=*/false);
}

TEST(TrialArenaTest, WarmTrialMakesNoHeapAllocationsSharded) {
  expect_zero_alloc_warm_trials(/*shards=*/8, /*churn=*/false);
}

TEST(TrialArenaTest, WarmTrialMakesNoHeapAllocationsUnderChurn) {
  expect_zero_alloc_warm_trials(/*shards=*/1, /*churn=*/true);
  expect_zero_alloc_warm_trials(/*shards=*/8, /*churn=*/true);
}

TEST(TrialArenaTest, LeaseReturnsTheSameArenaAfterRelease) {
  TrialArena* first = nullptr;
  {
    TrialArenaLease lease;
    first = &*lease;
  }
  TrialArenaLease again;
  EXPECT_EQ(&*again, first)
      << "re-acquiring at the same depth must reuse the warm arena";
}

TEST(TrialArenaTest, NestedLeasesGetDistinctArenas) {
  TrialArenaLease outer;
  TrialArenaLease inner;
  EXPECT_NE(&*outer, &*inner)
      << "helping-wait reentrancy: a nested lease may not alias the arena "
         "of the trial it interrupted";
}

TEST(TrialArenaTest, BatchEngineLeaseSharesTheArenaStack) {
  TrialArena* arena = nullptr;
  {
    TrialArenaLease lease;
    arena = &*lease;
  }
  BatchEngineLease engine;
  EXPECT_EQ(&*engine, &arena->engine)
      << "the engine-only lease is a view of the same per-thread arena";
}

TEST(TrialArenaTest, PooledResultKeepsVectorStorageAcrossTrials) {
  const Params params = Params::calibrated(256, 0.3);
  const BreatheConfig config = broadcast_config();
  BreatheRunOptions options;
  options.engine.probe_every = 16;

  TrialArenaLease arena;
  BinarySymmetricChannel channel(0.3);
  arena->engine.run_breathe(params, config, channel, trial_stream_key(7, 0),
                            false, options, arena->result);
  ASSERT_FALSE(arena->result.stage1.empty());
  const auto* stage1_data = arena->result.stage1.data();
  const auto* bias_data = arena->result.metrics.bias_series.data();

  arena->engine.run_breathe(params, config, channel, trial_stream_key(7, 1),
                            false, options, arena->result);
  EXPECT_EQ(arena->result.stage1.data(), stage1_data)
      << "reset() must keep capacity, not reallocate";
  EXPECT_EQ(arena->result.metrics.bias_series.data(), bias_data);
}

}  // namespace
}  // namespace flip
