// White-box tests of the Section 3 schedule arithmetic: container tiling,
// send-window placement, per-wake-class finalization timing, and the
// attribution rules. These pin down the invariants the correctness argument
// rests on, independent of end-to-end outcomes.

#include <gtest/gtest.h>

#include <numeric>

#include "core/desync.hpp"
#include "net/channel.hpp"
#include "sim/engine.hpp"

namespace flip {
namespace {

/// A tiny harness exposing protocol behaviour through its public surface:
/// we drive collect_sends/deliver/end_round by hand.
struct Probe {
  Probe(std::size_t n, double eps, Round skew,
        Attribution attribution = Attribution::kLocalWindow)
      : params(Params::calibrated(n, eps)), rng(1) {
    config.base = broadcast_config();
    config.max_skew = skew;
    config.attribution = attribution;
    config.wake.assign(n, 0);
  }

  DesyncBreatheProtocol build() {
    return DesyncBreatheProtocol(params, config, rng);
  }

  Params params;
  Xoshiro256 rng;
  DesyncConfig config;
};

TEST(DesyncInternalsTest, PhaseCountCoversBothStages) {
  Probe probe(64, 0.3, 4);
  auto protocol = probe.build();
  const StageOneSchedule& s1 = probe.params.stage1();
  const StageTwoSchedule& s2 = probe.params.stage2();
  EXPECT_EQ(protocol.num_phases(),
            (s1.T + 2) + (s2.k + 1));
}

TEST(DesyncInternalsTest, TotalRoundsFormula) {
  // total = synchronous schedule + (P+1)*D when wake <= D.
  for (const Round D : {Round{0}, Round{1}, Round{7}, Round{32}}) {
    Probe probe(64, 0.3, D);
    auto protocol = probe.build();
    EXPECT_EQ(protocol.total_rounds(),
              probe.params.total_rounds() +
                  (protocol.num_phases() + 1) * D)
        << "D=" << D;
  }
}

TEST(DesyncInternalsTest, SourceSendsExactlyItsWindows) {
  // With only the source opinionated and everyone else permanently dormant
  // (we never deliver), the source must send in exactly the Stage I send
  // windows of phases 0..T+1 (level -1 < every stage-1 phase) plus every
  // Stage II send window.
  const std::size_t n = 16;
  Probe probe(n, 0.3, 5);
  auto protocol = probe.build();

  std::uint64_t send_rounds = 0;
  std::vector<Message> sends;
  for (Round g = 0; g < protocol.total_rounds(); ++g) {
    sends.clear();
    protocol.collect_sends(g, sends);
    ASSERT_LE(sends.size(), 1u) << "round " << g;
    if (!sends.empty()) {
      EXPECT_EQ(sends[0].sender, 0u);
      ++send_rounds;
    }
    protocol.end_round(g);
  }
  // Send windows total exactly the synchronous schedule length.
  EXPECT_EQ(send_rounds, probe.params.total_rounds());
}

TEST(DesyncInternalsTest, WakeOffsetShiftsSendWindowExactly) {
  const std::size_t n = 16;
  Probe probe(n, 0.3, 10);
  probe.config.wake[0] = 7;  // the source
  auto protocol = probe.build();
  std::vector<Message> sends;
  // Silent before wake + window start.
  for (Round g = 0; g < 7; ++g) {
    sends.clear();
    protocol.collect_sends(g, sends);
    EXPECT_TRUE(sends.empty()) << "round " << g;
  }
  sends.clear();
  protocol.collect_sends(7, sends);
  EXPECT_EQ(sends.size(), 1u);
}

TEST(DesyncInternalsTest, ActivationFinalizesAtOwnContainerEnd) {
  // Deliver one message to agent 3 in its phase-0 container; its opinion
  // must appear exactly at global round wake + beta_s + D (container end),
  // not at the global phase boundary.
  const std::size_t n = 16;
  const Round D = 6;
  Probe probe(n, 0.3, D);
  probe.config.wake[3] = 4;
  auto protocol = probe.build();

  protocol.deliver(3, Opinion::kOne, /*g=*/5);  // local time 1: container 0
  const Round container0_end_local = probe.params.stage1().beta_s + D;
  // finalize happens inside end_round(g) with g + 1 == wake + container end,
  // so the opinion becomes visible to checks from the NEXT round on.
  const Round finalize_round = 4 + container0_end_local - 1;
  for (Round g = 0; g <= finalize_round + 1; ++g) {
    EXPECT_EQ(protocol.population().has_opinion(3), g > finalize_round)
        << "round " << g;
    protocol.end_round(g);
  }
  EXPECT_TRUE(protocol.population().has_opinion(3));
  EXPECT_EQ(protocol.population().opinion(3), Opinion::kOne);
}

TEST(DesyncInternalsTest, Stage1SpilloverIsIgnored) {
  // An agent activated in container 0 must ignore messages attributed to a
  // different container while still dormant (oracle mode can produce such
  // spillover). Its initial opinion comes only from container-0 messages.
  const std::size_t n = 16;
  const Round D = 6;
  Probe probe(n, 0.3, D, Attribution::kOracle);
  probe.config.wake[3] = 5;
  auto protocol = probe.build();

  // Message in global container 0 (source's phase 0).
  protocol.deliver(3, Opinion::kOne, /*g=*/10);
  // Message in global container 1: beta_s + D falls into container 1.
  const Round g1 = probe.params.stage1().beta_s + D + 1;
  protocol.deliver(3, Opinion::kZero, g1);
  // Walk to agent 3's container-0 end and check the kept opinion is the
  // container-0 bit (kOne), unaffected by the spillover kZero.
  const Round finalize = 5 + probe.params.stage1().beta_s + D;
  for (Round g = 0; g < finalize; ++g) protocol.end_round(g);
  ASSERT_TRUE(protocol.population().has_opinion(3));
  EXPECT_EQ(protocol.population().opinion(3), Opinion::kOne);
}

TEST(DesyncInternalsTest, OracleAndLocalAgreeWithZeroSkew) {
  // With D = 0 and all wakes 0, local time == global time, so the two
  // attribution rules are the same function; executions with the same seed
  // must match exactly.
  auto run = [](Attribution attribution) {
    const std::size_t n = 128;
    const Params params = Params::calibrated(n, 0.3);
    Xoshiro256 engine_rng = make_stream(99, 0);
    Xoshiro256 protocol_rng = make_stream(99, 1);
    BinarySymmetricChannel channel(0.3);
    Engine engine(n, channel, engine_rng);
    DesyncConfig config;
    config.base = broadcast_config();
    config.wake.assign(n, 0);
    config.max_skew = 0;
    config.attribution = attribution;
    DesyncBreatheProtocol protocol(params, config, protocol_rng);
    const Metrics m = engine.run(protocol, protocol.total_rounds());
    return std::make_tuple(m.messages_sent, m.flipped,
                           protocol.population().count(Opinion::kOne));
  };
  EXPECT_EQ(run(Attribution::kLocalWindow), run(Attribution::kOracle));
}

TEST(DesyncInternalsTest, Stage1StatsAggregateAcrossWakeClasses) {
  const std::size_t n = 256;
  const Params params = Params::calibrated(n, 0.3);
  Xoshiro256 engine_rng = make_stream(7, 0);
  Xoshiro256 protocol_rng = make_stream(7, 1);
  Xoshiro256 setup_rng = make_stream(7, 2);
  BinarySymmetricChannel channel(0.3);
  Engine engine(n, channel, engine_rng);
  DesyncConfig config;
  config.base = broadcast_config();
  config.max_skew = 8;
  config.wake.resize(n);
  for (Round& w : config.wake) w = uniform_index(setup_rng, 9);
  config.wake[0] = 0;
  DesyncBreatheProtocol protocol(params, config, protocol_rng);
  engine.run(protocol, protocol.total_rounds());

  std::uint64_t activated = 1;  // source
  for (const auto& s : protocol.stage1_stats()) {
    EXPECT_LE(s.newly_correct, s.newly_activated);
    activated += s.newly_activated;
  }
  EXPECT_EQ(activated, n);  // every agent activated exactly once
}

TEST(DesyncInternalsTest, ExcessSkewExtendsTotalRounds) {
  Probe small(64, 0.3, 4);
  const Round base_total = small.build().total_rounds();

  Probe excess(64, 0.3, 4);
  excess.config.allow_excess_skew = true;
  excess.config.wake[5] = 100;  // way past D
  const Round excess_total = excess.build().total_rounds();
  EXPECT_EQ(excess_total, base_total - 4 + 100);
}

}  // namespace
}  // namespace flip
