#include "baselines/aae.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace flip {
namespace {

AAEConfig make_config(std::size_t correct, std::size_t wrong,
                      double eps = 0.0, Round max_rounds = 2000) {
  AAEConfig config;
  config.initial_correct = correct;
  config.initial_wrong = wrong;
  config.eps = eps;
  config.max_rounds = max_rounds;
  return config;
}

TEST(AAETest, RejectsBadConfigs) {
  Xoshiro256 rng(81);
  EXPECT_THROW(ThreeStateAAE(1, make_config(1, 0), rng),
               std::invalid_argument);
  EXPECT_THROW(ThreeStateAAE(10, make_config(8, 8), rng),
               std::invalid_argument);
  AAEConfig no_rounds = make_config(4, 2);
  no_rounds.max_rounds = 0;
  EXPECT_THROW(ThreeStateAAE(10, no_rounds, rng), std::invalid_argument);
}

TEST(AAETest, InitialCountsAreDealt) {
  Xoshiro256 rng(82);
  ThreeStateAAE aae(100, make_config(30, 10), rng);
  EXPECT_EQ(aae.count(AAEState::kOne), 30u);
  EXPECT_EQ(aae.count(AAEState::kZero), 10u);
  EXPECT_EQ(aae.count(AAEState::kBlank), 60u);
}

TEST(AAETest, NoiselessConvergesToInitialMajority) {
  // The protocol's home turf: three symbols, no noise.
  Xoshiro256 rng(83);
  ThreeStateAAE aae(2048, make_config(300, 100), rng);
  const AAEResult result = aae.run();
  EXPECT_TRUE(result.consensus);
  EXPECT_TRUE(result.correct);
  EXPECT_DOUBLE_EQ(result.final_correct_fraction, 1.0);
}

TEST(AAETest, NoiselessIsFast) {
  Xoshiro256 rng(84);
  ThreeStateAAE aae(4096, make_config(400, 100), rng);
  const AAEResult result = aae.run();
  EXPECT_TRUE(result.consensus);
  EXPECT_LT(result.rounds, 200u);  // O(log n) expected
}

TEST(AAETest, NoiseBreaksConvergence) {
  // The paper's reason for not using AAE in the Flip model: under heavy
  // symbol noise the three-state dynamics cannot stabilize.
  Xoshiro256 rng(85);
  ThreeStateAAE aae(2048, make_config(300, 100, /*eps=*/0.1, /*rounds=*/500),
                    rng);
  const AAEResult result = aae.run();
  EXPECT_FALSE(result.consensus);
}

TEST(AAETest, WrongMajorityWinsNoiselessly) {
  Xoshiro256 rng(86);
  AAEConfig config = make_config(100, 300);
  ThreeStateAAE aae(2048, config, rng);
  const AAEResult result = aae.run();
  EXPECT_TRUE(result.consensus);
  EXPECT_FALSE(result.correct);
}

TEST(AAETest, DeterministicForSameSeed) {
  auto run_once = [](std::uint64_t seed) {
    Xoshiro256 rng(seed);
    ThreeStateAAE aae(512, make_config(80, 40), rng);
    return aae.run().rounds;
  };
  EXPECT_EQ(run_once(87), run_once(87));
}

}  // namespace
}  // namespace flip
