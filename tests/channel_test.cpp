#include "net/channel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

namespace flip {
namespace {

TEST(OpinionTest, FlipIsInvolution) {
  EXPECT_EQ(flip_opinion(Opinion::kZero), Opinion::kOne);
  EXPECT_EQ(flip_opinion(Opinion::kOne), Opinion::kZero);
  EXPECT_EQ(flip_opinion(flip_opinion(Opinion::kOne)), Opinion::kOne);
}

TEST(BscTest, RejectsBadEps) {
  EXPECT_THROW(BinarySymmetricChannel(0.0), std::invalid_argument);
  EXPECT_THROW(BinarySymmetricChannel(-0.1), std::invalid_argument);
  EXPECT_THROW(BinarySymmetricChannel(0.6), std::invalid_argument);
  EXPECT_NO_THROW(BinarySymmetricChannel(0.5));
  EXPECT_NO_THROW(BinarySymmetricChannel(1e-6));
}

TEST(BscTest, FlipRateConcentratesAroundHalfMinusEps) {
  const double eps = 0.2;
  BinarySymmetricChannel channel(eps);
  Xoshiro256 rng(11);
  constexpr int kTrials = 200000;
  int flips = 0;
  for (int i = 0; i < kTrials; ++i) {
    const auto seen = channel.transmit(Opinion::kOne, rng);
    ASSERT_TRUE(seen.has_value());
    if (*seen != Opinion::kOne) ++flips;
  }
  EXPECT_NEAR(static_cast<double>(flips) / kTrials, 0.5 - eps, 0.005);
}

TEST(BscTest, EpsHalfNeverFlips) {
  BinarySymmetricChannel channel(0.5);
  Xoshiro256 rng(12);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(channel.transmit(Opinion::kZero, rng), Opinion::kZero);
  }
}

TEST(BscTest, SymmetricAcrossOpinions) {
  const double eps = 0.1;
  BinarySymmetricChannel channel(eps);
  Xoshiro256 rng(13);
  constexpr int kTrials = 100000;
  int flips0 = 0;
  int flips1 = 0;
  for (int i = 0; i < kTrials; ++i) {
    if (channel.transmit(Opinion::kZero, rng) != Opinion::kZero) ++flips0;
    if (channel.transmit(Opinion::kOne, rng) != Opinion::kOne) ++flips1;
  }
  EXPECT_NEAR(static_cast<double>(flips0) / kTrials,
              static_cast<double>(flips1) / kTrials, 0.01);
}

TEST(BscTest, ReportsNominalFlipProbabilityAndName) {
  BinarySymmetricChannel channel(0.15);
  EXPECT_DOUBLE_EQ(channel.flip_probability(), 0.35);
  EXPECT_NE(channel.name().find("bsc"), std::string::npos);
}

TEST(PerfectChannelTest, NeverAltersBits) {
  PerfectChannel channel;
  Xoshiro256 rng(14);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(channel.transmit(Opinion::kOne, rng), Opinion::kOne);
    EXPECT_EQ(channel.transmit(Opinion::kZero, rng), Opinion::kZero);
  }
  EXPECT_EQ(channel.flip_probability(), 0.0);
}

TEST(ErasureChannelTest, RejectsBadParameters) {
  EXPECT_THROW(ErasureChannel(0.0, 0.1), std::invalid_argument);
  EXPECT_THROW(ErasureChannel(0.2, 1.0), std::invalid_argument);
  EXPECT_THROW(ErasureChannel(0.2, -0.1), std::invalid_argument);
}

TEST(ErasureChannelTest, ErasesAtConfiguredRate) {
  ErasureChannel channel(0.5, 0.3);  // eps=0.5: no flips, only erasures
  Xoshiro256 rng(15);
  constexpr int kTrials = 100000;
  int erased = 0;
  for (int i = 0; i < kTrials; ++i) {
    if (!channel.transmit(Opinion::kOne, rng)) ++erased;
  }
  EXPECT_NEAR(static_cast<double>(erased) / kTrials, 0.3, 0.01);
}

TEST(ErasureChannelTest, SurvivingBitsFlipAtBscRate) {
  ErasureChannel channel(0.2, 0.5);
  Xoshiro256 rng(16);
  int survived = 0;
  int flipped = 0;
  for (int i = 0; i < 200000; ++i) {
    const auto seen = channel.transmit(Opinion::kOne, rng);
    if (!seen) continue;
    ++survived;
    if (*seen != Opinion::kOne) ++flipped;
  }
  EXPECT_GT(survived, 0);
  EXPECT_NEAR(static_cast<double>(flipped) / survived, 0.3, 0.01);
}

TEST(AdversarialChannelTest, FlipsExactlyBudgetThenHonest) {
  AdversarialChannel channel(3);
  Xoshiro256 rng(17);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(channel.transmit(Opinion::kOne, rng), Opinion::kZero);
  }
  EXPECT_EQ(channel.budget_left(), 0u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(channel.transmit(Opinion::kOne, rng), Opinion::kOne);
  }
}

TEST(AdversarialChannelTest, ReportsWorstCaseRate) {
  AdversarialChannel fresh(1);
  EXPECT_EQ(fresh.flip_probability(), 1.0);
  Xoshiro256 rng(18);
  (void)fresh.transmit(Opinion::kOne, rng);
  EXPECT_EQ(fresh.flip_probability(), 0.0);
}

TEST(FactoryTest, MakesBsc) {
  const auto channel = make_flip_channel(0.25);
  ASSERT_NE(channel, nullptr);
  EXPECT_DOUBLE_EQ(channel->flip_probability(), 0.25);
}


TEST(HeterogeneousChannelTest, RejectsBadEps) {
  EXPECT_THROW(HeterogeneousChannel(0.0), std::invalid_argument);
  EXPECT_THROW(HeterogeneousChannel(0.6), std::invalid_argument);
}

TEST(HeterogeneousChannelTest, MeanFlipRateIsHalfTheCeiling) {
  // Per-message flip probability ~ U[0, 1/2 - eps]: mean (1/2 - eps)/2.
  const double eps = 0.2;
  HeterogeneousChannel channel(eps);
  Xoshiro256 rng(19);
  constexpr int kTrials = 200000;
  int flips = 0;
  for (int i = 0; i < kTrials; ++i) {
    if (channel.transmit(Opinion::kOne, rng) != Opinion::kOne) ++flips;
  }
  EXPECT_NEAR(static_cast<double>(flips) / kTrials, (0.5 - eps) / 2.0, 0.005);
  EXPECT_DOUBLE_EQ(channel.flip_probability(), (0.5 - eps) / 2.0);
}

TEST(HeterogeneousChannelTest, NeverWorseThanTheModelBound) {
  // Empirical flip rate must stay below the model ceiling 1/2 - eps.
  HeterogeneousChannel channel(0.1);
  Xoshiro256 rng(20);
  int flips = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    if (channel.transmit(Opinion::kZero, rng) != Opinion::kZero) ++flips;
  }
  EXPECT_LT(static_cast<double>(flips) / kTrials, 0.5 - 0.1);
}

// --- Counter-keyed transmit overloads -----------------------------------

TEST(CounterTransmitTest, MatchesSequentialOverloadFromSameWords) {
  // Both overloads share one template body; feeding them streams that
  // yield the same words must yield the same decisions.
  BinarySymmetricChannel bsc(0.2);
  HeterogeneousChannel hetero(0.2);
  ErasureChannel erasure(0.3, 0.25);
  const StreamKey tk = trial_stream_key(0xc0de, 0);
  for (std::uint64_t r = 0; r < 64; ++r) {
    const StreamKey rk = round_stream_key(tk, RngPurpose::kChannel, r);
    for (std::uint64_t agent = 0; agent < 8; ++agent) {
      CounterRng a(rk, agent);
      CounterRng b(rk, agent);
      EXPECT_EQ(bsc.transmit(Opinion::kOne, a), bsc.transmit(Opinion::kOne, b));
      CounterRng c(rk, agent);
      CounterRng d(rk, agent);
      EXPECT_EQ(hetero.transmit(Opinion::kZero, c),
                hetero.transmit(Opinion::kZero, d));
      CounterRng e(rk, agent);
      CounterRng f(rk, agent);
      EXPECT_EQ(erasure.transmit(Opinion::kOne, e),
                erasure.transmit(Opinion::kOne, f));
    }
  }
}

TEST(CounterTransmitTest, BscFlipRateFromKeyedStreams) {
  // Flip decisions across agents (each from its own stream) must hit the
  // 1/2 - eps crossover rate, like the sequential-stream test above.
  BinarySymmetricChannel channel(0.25);
  const StreamKey rk =
      round_stream_key(trial_stream_key(0xbeef, 1), RngPurpose::kChannel, 0);
  constexpr int kAgents = 100000;
  int flips = 0;
  for (int agent = 0; agent < kAgents; ++agent) {
    CounterRng rng(rk, static_cast<std::uint64_t>(agent));
    flips += channel.transmit(Opinion::kOne, rng) == Opinion::kZero;
  }
  EXPECT_NEAR(static_cast<double>(flips) / kAgents, 0.25, 0.01);
}

}  // namespace
}  // namespace flip
