// Meta-tests for tests/support/proptest.hpp — the in-repo property-testing
// harness every differential suite leans on. The harness's value is its
// determinism contract ("the failure label's iteration number IS the
// reproducer"), so that contract gets its own tests: if Gen ever stopped
// being a pure function of (suite_seed, iteration), every replay
// instruction in every property failure message would silently lie.

#include <cmath>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "support/proptest.hpp"

namespace flip {
namespace {

/// One draw of each Gen helper, in a fixed order, so two generators can be
/// compared draw for draw across every helper type.
struct DrawVector {
  std::uint64_t raw;
  std::uint64_t idx;
  std::uint64_t rng;
  double real;
  bool coin;
  int picked;

  static DrawVector from(proptest::Gen& gen) {
    DrawVector d;
    d.raw = gen.u64();
    d.idx = gen.index(1000);
    d.rng = gen.range(10, 20);
    d.real = gen.real(-2.0, 3.0);
    d.coin = gen.chance(0.4);
    d.picked = gen.pick({1, 2, 3, 5, 8});
    return d;
  }

  bool operator==(const DrawVector& other) const {
    return raw == other.raw && idx == other.idx && rng == other.rng &&
           real == other.real && coin == other.coin &&
           picked == other.picked;
  }
};

TEST(ProptestGenTest, SameSeedAndIterationReplaysTheSameStream) {
  for (std::uint64_t iteration : {0u, 1u, 7u, 99u}) {
    proptest::Gen first(0x5eed, iteration);
    proptest::Gen second(0x5eed, iteration);
    EXPECT_EQ(DrawVector::from(first), DrawVector::from(second))
        << "iteration " << iteration;
  }
}

TEST(ProptestGenTest, DifferentIterationsAndSeedsDecorrelate) {
  // Neighboring iterations (the common replay coordinates) and neighboring
  // suite seeds must produce distinct first draws — the golden-gamma mix
  // exists precisely so that i and i+1 are unrelated streams.
  std::set<std::uint64_t> first_draws;
  constexpr int kIterations = 64;
  for (std::uint64_t i = 0; i < kIterations; ++i) {
    first_draws.insert(proptest::Gen(0x5eed, i).u64());
  }
  for (std::uint64_t seed = 0; seed < kIterations; ++seed) {
    first_draws.insert(proptest::Gen(seed, 0).u64());
  }
  EXPECT_EQ(first_draws.size(), 2 * kIterations);
}

TEST(ProptestGenTest, DrawHelpersRespectTheirRanges) {
  proptest::Gen gen(0xfeed, 3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(gen.index(17), 17u);
    const std::uint64_t r = gen.range(5, 9);
    EXPECT_GE(r, 5u);
    EXPECT_LE(r, 9u);
    const double x = gen.real(-1.5, 2.5);
    EXPECT_GE(x, -1.5);
    EXPECT_LT(x, 2.5);
    const int picked = gen.pick({2, 4, 6});
    EXPECT_TRUE(picked == 2 || picked == 4 || picked == 6);
  }
  // Degenerate-but-legal draws.
  EXPECT_EQ(gen.index(1), 0u);
  EXPECT_EQ(gen.range(7, 7), 7u);
  EXPECT_FALSE(proptest::Gen(1, 1).chance(0.0));
  EXPECT_TRUE(proptest::Gen(1, 1).chance(1.0));
}

TEST(ProptestGenTest, PickFromReturnsReferenceIntoContainer) {
  const std::vector<std::string> options = {"alpha", "beta", "gamma"};
  proptest::Gen gen(0xabc, 0);
  for (int i = 0; i < 50; ++i) {
    const std::string& picked = gen.pick_from(options);
    // A reference into the container, not a copy of something else.
    EXPECT_TRUE(&picked == &options[0] || &picked == &options[1] ||
                &picked == &options[2]);
  }
}

TEST(ProptestCheckTest, PropertySeesSequentialIterationsWithMatchingGen) {
  // check() must hand the property (Gen(seed, i), i) for i = 0..N-1: the
  // label prints i, so the Gen MUST be the one i reconstructs — this
  // round-trip is the replay contract.
  std::vector<std::uint64_t> seen_first_draws;
  std::vector<int> seen_iterations;
  proptest::check("replay_roundtrip", 8, 0x7e57,
                  [&](proptest::Gen gen, int iteration) {
                    seen_iterations.push_back(iteration);
                    seen_first_draws.push_back(gen.u64());
                  });
  ASSERT_EQ(seen_iterations.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(seen_iterations[static_cast<std::size_t>(i)], i);
    // Replay: rebuilding the Gen from the label's coordinates reproduces
    // the property's exact stream.
    proptest::Gen replay(0x7e57, static_cast<std::uint64_t>(i));
    EXPECT_EQ(seen_first_draws[static_cast<std::size_t>(i)], replay.u64())
        << "iteration " << i << " is not replayable from its label";
  }
}

TEST(ProptestCheckTest, RunsAllIterationsWhenNoFailure) {
  int runs = 0;
  proptest::check("count_all", 17, 0x1,
                  [&](proptest::Gen, int) { ++runs; });
  EXPECT_EQ(runs, 17);
}

}  // namespace
}  // namespace flip
