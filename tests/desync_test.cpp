#include "core/desync.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "net/channel.hpp"
#include "sim/engine.hpp"

namespace flip {
namespace {

DesyncConfig make_config(std::size_t n, Round skew, Attribution attribution,
                         Xoshiro256& rng) {
  DesyncConfig config;
  config.base = broadcast_config();
  config.max_skew = skew;
  config.attribution = attribution;
  config.wake.resize(n, 0);
  if (skew > 0) {
    for (Round& w : config.wake) w = uniform_index(rng, skew + 1);
  }
  return config;
}

struct DesyncHarness {
  DesyncHarness(std::size_t n, double eps, std::uint64_t seed, Round skew,
                Attribution attribution = Attribution::kLocalWindow)
      : params(Params::calibrated(n, eps)),
        engine_rng(make_stream(seed, 0)),
        protocol_rng(make_stream(seed, 1)),
        setup_rng(make_stream(seed, 2)),
        channel(eps),
        engine(n, channel, engine_rng),
        protocol(params, make_config(n, skew, attribution, setup_rng),
                 protocol_rng) {}

  Metrics run() { return engine.run(protocol, protocol.total_rounds()); }

  Params params;
  Xoshiro256 engine_rng;
  Xoshiro256 protocol_rng;
  Xoshiro256 setup_rng;
  BinarySymmetricChannel channel;
  Engine engine;
  DesyncBreatheProtocol protocol;
};

TEST(DesyncProtocolTest, RejectsBadConfigs) {
  const Params p = Params::calibrated(64, 0.3);
  Xoshiro256 rng(1);

  DesyncConfig wrong_size;
  wrong_size.base = broadcast_config();
  wrong_size.wake.resize(10, 0);
  EXPECT_THROW(DesyncBreatheProtocol(p, wrong_size, rng),
               std::invalid_argument);

  DesyncConfig offset_too_big;
  offset_too_big.base = broadcast_config();
  offset_too_big.wake.resize(64, 0);
  offset_too_big.wake[3] = 5;
  offset_too_big.max_skew = 4;
  EXPECT_THROW(DesyncBreatheProtocol(p, offset_too_big, rng),
               std::invalid_argument);

  DesyncConfig no_seeds;
  no_seeds.wake.resize(64, 0);
  EXPECT_THROW(DesyncBreatheProtocol(p, no_seeds, rng),
               std::invalid_argument);
}

TEST(DesyncProtocolTest, ZeroSkewMatchesSynchronousSchedule) {
  DesyncHarness h(256, 0.3, 2, /*skew=*/0);
  EXPECT_EQ(h.protocol.desync_overhead(), 0u);
  EXPECT_EQ(h.protocol.total_rounds(), h.params.total_rounds());
}

TEST(DesyncProtocolTest, OverheadIsPhasesPlusOneTimesD) {
  const Round D = 16;
  DesyncHarness h(256, 0.3, 3, D);
  EXPECT_EQ(h.protocol.desync_overhead(),
            (h.protocol.num_phases() + 1) * D);
  EXPECT_EQ(h.protocol.total_rounds(),
            h.params.total_rounds() + h.protocol.desync_overhead());
}

TEST(DesyncProtocolTest, ZeroSkewBroadcastSucceeds) {
  DesyncHarness h(512, 0.3, 4, 0);
  h.run();
  EXPECT_TRUE(h.protocol.succeeded());
}

TEST(DesyncProtocolTest, SkewedBroadcastSucceedsLocalAttribution) {
  DesyncHarness h(512, 0.3, 5, /*skew=*/12, Attribution::kLocalWindow);
  h.run();
  EXPECT_TRUE(h.protocol.succeeded());
}

TEST(DesyncProtocolTest, SkewedBroadcastSucceedsOracleAttribution) {
  DesyncHarness h(512, 0.3, 6, /*skew=*/12, Attribution::kOracle);
  h.run();
  EXPECT_TRUE(h.protocol.succeeded());
}

TEST(DesyncProtocolTest, DeterministicForSameSeed) {
  auto fingerprint = [](std::uint64_t seed) {
    DesyncHarness h(256, 0.3, seed, 8);
    const Metrics metrics = h.run();
    return std::make_pair(metrics.flipped,
                          h.protocol.population().count(Opinion::kOne));
  };
  EXPECT_EQ(fingerprint(7), fingerprint(7));
}

TEST(DesyncProtocolTest, NoMessagesOutsideContainers) {
  // Sends in the first D rounds can only come from phase 0's send window;
  // in particular nothing is sent before the source wakes.
  const std::size_t n = 64;
  const Params p = Params::calibrated(n, 0.3);
  Xoshiro256 proto_rng(8);
  DesyncConfig config;
  config.base = broadcast_config();
  config.max_skew = 10;
  config.wake.assign(n, 0);
  config.wake[0] = 10;  // the source wakes last
  DesyncBreatheProtocol protocol(p, config, proto_rng);
  std::vector<Message> sends;
  for (Round g = 0; g < 10; ++g) {
    sends.clear();
    protocol.collect_sends(g, sends);
    EXPECT_TRUE(sends.empty()) << "round " << g;
  }
  sends.clear();
  protocol.collect_sends(10, sends);
  ASSERT_EQ(sends.size(), 1u);
  EXPECT_EQ(sends[0].sender, 0u);
}

TEST(DesyncProtocolTest, MessagesBeforeWakeAreLost) {
  const std::size_t n = 64;
  const Params p = Params::calibrated(n, 0.3);
  Xoshiro256 proto_rng(9);
  DesyncConfig config;
  config.base = broadcast_config();
  config.max_skew = 20;
  config.wake.assign(n, 0);
  config.wake[5] = 20;
  DesyncBreatheProtocol protocol(p, config, proto_rng);
  protocol.deliver(5, Opinion::kOne, /*g=*/3);  // before agent 5 wakes
  // Walk past phase 0's container end for every wake class.
  const Round far = p.stage1().beta_s + 3 * 20 + 5;
  for (Round g = 0; g < far; ++g) protocol.end_round(g);
  EXPECT_FALSE(protocol.population().has_opinion(5));
}

TEST(DesyncProtocolTest, MessageCountsUnchangedByskew) {
  // Theorem 3.1: desync costs rounds, not messages. Every agent still
  // sends in exactly the same number of rounds (its phase lengths), so the
  // totals should match the synchronous run closely (exactly, in fact,
  // because sends depend only on local schedules).
  DesyncHarness sync_h(256, 0.3, 10, 0);
  const Metrics sync_m = sync_h.run();
  // Local-window attribution can promote some agents into earlier levels
  // near container edges (they then send in more phases), so the count is
  // only approximately preserved.
  DesyncHarness local_h(256, 0.3, 10, 16, Attribution::kLocalWindow);
  const Metrics local_m = local_h.run();
  const double local_ratio = static_cast<double>(local_m.messages_sent) /
                             static_cast<double>(sync_m.messages_sent);
  EXPECT_NEAR(local_ratio, 1.0, 0.15);
  EXPECT_GT(local_m.rounds, sync_m.rounds);
  // Oracle attribution assigns every message its true phase, so levels —
  // and with them the send counts — match the synchronous run closely.
  DesyncHarness oracle_h(256, 0.3, 10, 16, Attribution::kOracle);
  const Metrics oracle_m = oracle_h.run();
  const double oracle_ratio = static_cast<double>(oracle_m.messages_sent) /
                              static_cast<double>(sync_m.messages_sent);
  EXPECT_NEAR(oracle_ratio, 1.0, 0.05);
}

TEST(ClockSyncTest, RejectsBadArguments) {
  Xoshiro256 rng(11);
  EXPECT_THROW(run_clock_sync(1, 0, rng), std::invalid_argument);
  EXPECT_THROW(run_clock_sync(64, 64, rng), std::invalid_argument);
}

TEST(ClockSyncTest, ActivatesEveryoneAndBoundsSkew) {
  Xoshiro256 rng(12);
  const std::size_t n = 1024;
  const ClockSyncResult result = run_clock_sync(n, 0, rng);
  EXPECT_TRUE(result.all_activated);
  EXPECT_EQ(result.wake.size(), n);
  EXPECT_EQ(*std::min_element(result.wake.begin(), result.wake.end()), 0u);
  // Section 3.2: skew is O(log n) — generous constant for the tail.
  const auto log_n = static_cast<Round>(std::log2(n));
  EXPECT_LE(result.skew, 6 * log_n) << "skew " << result.skew;
  EXPECT_GT(result.messages, n);  // everyone broadcast for a while
}

TEST(ClockSyncTest, SkewMatchesWakeSpread) {
  Xoshiro256 rng(13);
  const ClockSyncResult result = run_clock_sync(256, 3, rng);
  const Round max_wake =
      *std::max_element(result.wake.begin(), result.wake.end());
  EXPECT_EQ(result.skew, max_wake);
}

TEST(ClockSyncTest, EndToEndDesyncAfterClockSync) {
  // The full Section 3 pipeline: clock-sync pre-phase, then the modified
  // algorithm with D = measured skew.
  const std::size_t n = 512;
  const double eps = 0.3;
  Xoshiro256 setup_rng(14);
  const ClockSyncResult sync = run_clock_sync(n, 0, setup_rng);
  ASSERT_TRUE(sync.all_activated);

  const Params p = Params::calibrated(n, eps);
  DesyncConfig config;
  config.base = broadcast_config();
  config.wake = sync.wake;
  config.max_skew = sync.skew;

  Xoshiro256 engine_rng(15);
  Xoshiro256 protocol_rng(16);
  BinarySymmetricChannel channel(eps);
  Engine engine(n, channel, engine_rng);
  DesyncBreatheProtocol protocol(p, config, protocol_rng);
  engine.run(protocol, protocol.total_rounds());
  EXPECT_TRUE(protocol.succeeded());
}

}  // namespace
}  // namespace flip
