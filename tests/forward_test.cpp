#include "baselines/forward.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/theory.hpp"
#include "net/channel.hpp"
#include "sim/engine.hpp"

namespace flip {
namespace {

ForwardConfig source_config(Round duration, bool stop_when_informed = false) {
  ForwardConfig config;
  config.initial = {Seed{0, Opinion::kOne}};
  config.duration = duration;
  config.stop_when_all_informed = stop_when_informed;
  return config;
}

TEST(ForwardGossipTest, RejectsBadConfigs) {
  EXPECT_THROW(ForwardGossipProtocol(8, ForwardConfig{}),
               std::invalid_argument);
  ForwardConfig no_stop;
  no_stop.initial = {Seed{0, Opinion::kOne}};
  EXPECT_THROW(ForwardGossipProtocol(8, no_stop), std::invalid_argument);
}

TEST(ForwardGossipTest, NoiselessSpreadIsLogarithmic) {
  // With a perfect channel this is classic push rumor spreading:
  // ~log2(n) + ln(n) rounds. Check the right ballpark.
  const std::size_t n = 4096;
  PerfectChannel channel;
  Xoshiro256 rng(41);
  Engine engine(n, channel, rng);
  ForwardGossipProtocol protocol(n, source_config(0, true));
  const Metrics metrics = engine.run(protocol, 10000);
  EXPECT_TRUE(protocol.all_informed());
  const double expected = std::log2(n) + std::log(n);
  EXPECT_GT(static_cast<double>(metrics.rounds), 0.5 * expected);
  EXPECT_LT(static_cast<double>(metrics.rounds), 3.0 * expected);
}

TEST(ForwardGossipTest, NoiselessSpreadIsAllCorrect) {
  PerfectChannel channel;
  Xoshiro256 rng(42);
  Engine engine(512, channel, rng);
  ForwardGossipProtocol protocol(512, source_config(0, true));
  engine.run(protocol, 10000);
  EXPECT_TRUE(protocol.population().unanimous(Opinion::kOne));
}

TEST(ForwardGossipTest, NoisySpreadHasNearZeroBias) {
  // Section 1.6: relayed bits decay as (2 eps)^depth; with depth ~ log n
  // the final population is near 50/50 despite everyone being "informed".
  const std::size_t n = 8192;
  const double eps = 0.2;
  BinarySymmetricChannel channel(eps);
  Xoshiro256 rng(43);
  Engine engine(n, channel, rng);
  ForwardGossipProtocol protocol(n, source_config(0, true));
  engine.run(protocol, 20000);
  EXPECT_TRUE(protocol.all_informed());
  const double fraction =
      protocol.population().correct_fraction(Opinion::kOne);
  // Far from broadcast-correct: the strawman fails.
  EXPECT_LT(fraction, 0.75);
  // And consistent with the theoretical decay at typical depth >= 3.
  EXPECT_LT(fraction, theory::relay_correct_probability(eps, 2));
}

TEST(ForwardGossipTest, OpinionsFreezeOnceAdopted) {
  PerfectChannel channel;
  Xoshiro256 rng(44);
  ForwardGossipProtocol protocol(4, source_config(100));
  protocol.deliver(2, Opinion::kZero, 0);
  protocol.deliver(2, Opinion::kOne, 0);  // ignored: already informed
  EXPECT_EQ(protocol.population().opinion(2), Opinion::kZero);
}

TEST(ForwardGossipTest, FreshAgentsSendOnlyNextRound) {
  ForwardGossipProtocol protocol(4, source_config(100));
  protocol.deliver(1, Opinion::kOne, 0);
  std::vector<Message> sends;
  protocol.collect_sends(0, sends);
  EXPECT_EQ(sends.size(), 1u);  // only the source
  protocol.end_round(0);
  sends.clear();
  protocol.collect_sends(1, sends);
  EXPECT_EQ(sends.size(), 2u);
}

TEST(ForwardGossipTest, DurationStopsExecution) {
  PerfectChannel channel;
  Xoshiro256 rng(45);
  Engine engine(64, channel, rng);
  ForwardGossipProtocol protocol(64, source_config(7));
  const Metrics metrics = engine.run(protocol, 1000);
  EXPECT_EQ(metrics.rounds, 7u);
}

TEST(ForwardGossipTest, InformedRoundIsRecorded) {
  PerfectChannel channel;
  Xoshiro256 rng(46);
  Engine engine(128, channel, rng);
  ForwardGossipProtocol protocol(128, source_config(0, true));
  const Metrics metrics = engine.run(protocol, 10000);
  EXPECT_EQ(protocol.informed_round(), metrics.rounds);
}

}  // namespace
}  // namespace flip
