#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace flip {
namespace {

TEST(TextTableTest, RejectsEmptyHeaders) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTableTest, CellTypesFormat) {
  TextTable t({"a", "b", "c", "d", "e"});
  t.row()
      .cell("text")
      .cell(3.14159, 2)
      .cell(std::size_t{42})
      .cell(-7)
      .cell(true);
  EXPECT_EQ(t.at(0, 0), "text");
  EXPECT_EQ(t.at(0, 1), "3.14");
  EXPECT_EQ(t.at(0, 2), "42");
  EXPECT_EQ(t.at(0, 3), "-7");
  EXPECT_EQ(t.at(0, 4), "yes");
}

TEST(TextTableTest, TooManyCellsThrows) {
  TextTable t({"only"});
  t.row().cell("x");
  EXPECT_THROW(t.cell("y"), std::logic_error);
}

TEST(TextTableTest, RenderAlignsColumns) {
  TextTable t({"name", "value"});
  t.row().cell("x").cell(std::size_t{1});
  t.row().cell("longer").cell(std::size_t{12345});
  const std::string out = t.render();
  // Header, rule, two rows.
  int lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 4);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
  EXPECT_NE(out.find("12345"), std::string::npos);
}

TEST(TextTableTest, CsvRoundTrip) {
  TextTable t({"n", "rounds"});
  t.row().cell(std::size_t{1024}).cell(std::size_t{512});
  EXPECT_EQ(t.csv(), "n,rounds\n1024,512\n");
}

TEST(TextTableTest, StreamOperatorMatchesRender) {
  TextTable t({"h"});
  t.row().cell("v");
  std::ostringstream os;
  os << t;
  EXPECT_EQ(os.str(), t.render());
}

TEST(FormatTest, FixedAndScientific) {
  EXPECT_EQ(format_fixed(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(format_fixed(2.0, 0), "2");
  const std::string sci = format_sci(0.000123, 2);
  EXPECT_NE(sci.find("e-"), std::string::npos);
}

}  // namespace
}  // namespace flip
