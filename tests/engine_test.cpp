#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>
#include <utility>

#include "net/channel.hpp"

namespace flip {
namespace {

/// Minimal protocol: agent 0 sends its bit every round for a fixed number
/// of rounds; receivers remember the last bit they saw.
class PingProtocol : public Protocol {
 public:
  PingProtocol(std::size_t n, Round duration)
      : duration_(duration), last_seen_(n, -1) {}

  void collect_sends(Round, std::vector<Message>& out) override {
    out.push_back(Message{0, Opinion::kOne});
  }
  void deliver(AgentId to, Opinion bit, Round) override {
    last_seen_[to] = bit == Opinion::kOne ? 1 : 0;
    ++delivered_;
  }
  void end_round(Round) override { ++round_ends_; }
  [[nodiscard]] bool done(Round r) const override {
    return r + 1 >= duration_;
  }
  [[nodiscard]] std::string name() const override { return "ping"; }
  [[nodiscard]] double current_bias() const override { return 0.0; }
  [[nodiscard]] std::size_t current_opinionated() const override {
    return delivered_;
  }

  Round duration_;
  std::vector<int> last_seen_;
  std::size_t delivered_ = 0;
  Round round_ends_ = 0;
};

/// Protocol whose single sender has an out-of-range id.
class RogueProtocol : public PingProtocol {
 public:
  using PingProtocol::PingProtocol;
  void collect_sends(Round, std::vector<Message>& out) override {
    out.push_back(Message{1000, Opinion::kOne});
  }
};

TEST(EngineTest, RunsExactlyUntilDone) {
  PerfectChannel channel;
  Xoshiro256 rng(31);
  Engine engine(8, channel, rng);
  PingProtocol protocol(8, 25);
  const Metrics metrics = engine.run(protocol, 1000);
  EXPECT_EQ(metrics.rounds, 25u);
  EXPECT_EQ(protocol.round_ends_, 25u);
  EXPECT_EQ(metrics.messages_sent, 25u);
  EXPECT_EQ(metrics.delivered, 25u);
  EXPECT_EQ(metrics.dropped, 0u);
}

TEST(EngineTest, MaxRoundsCapsExecution) {
  PerfectChannel channel;
  Xoshiro256 rng(32);
  Engine engine(8, channel, rng);
  PingProtocol protocol(8, 1000);
  const Metrics metrics = engine.run(protocol, 10);
  EXPECT_EQ(metrics.rounds, 10u);
}

TEST(EngineTest, NoiseFlipsAreCounted) {
  BinarySymmetricChannel channel(0.25);  // flip prob 0.25
  Xoshiro256 rng(33);
  Engine engine(8, channel, rng);
  PingProtocol protocol(8, 40000);
  const Metrics metrics = engine.run(protocol, 40000);
  EXPECT_EQ(metrics.delivered, 40000u);
  EXPECT_NEAR(static_cast<double>(metrics.flipped) /
                  static_cast<double>(metrics.delivered),
              0.25, 0.01);
}

TEST(EngineTest, ErasuresAreCountedAndNotDelivered) {
  ErasureChannel channel(0.5, 0.4);  // no flips, 40% erased
  Xoshiro256 rng(34);
  Engine engine(8, channel, rng);
  PingProtocol protocol(8, 20000);
  const Metrics metrics = engine.run(protocol, 20000);
  EXPECT_EQ(metrics.delivered + metrics.erased, 20000u);
  EXPECT_NEAR(static_cast<double>(metrics.erased) / 20000.0, 0.4, 0.02);
}

TEST(EngineTest, OutOfRangeSenderThrows) {
  PerfectChannel channel;
  Xoshiro256 rng(35);
  Engine engine(8, channel, rng);
  RogueProtocol protocol(8, 5);
  EXPECT_THROW(engine.run(protocol, 5), std::out_of_range);
}

TEST(EngineTest, DeterministicForSameSeed) {
  BinarySymmetricChannel channel(0.2);
  auto run_once = [&](std::uint64_t seed) {
    Xoshiro256 rng(seed);
    Engine engine(16, channel, rng);
    PingProtocol protocol(16, 500);
    const Metrics metrics = engine.run(protocol, 500);
    return std::make_pair(metrics.flipped, protocol.last_seen_);
  };
  EXPECT_EQ(run_once(77), run_once(77));
  EXPECT_NE(run_once(77), run_once(78));
}

TEST(EngineTest, ProbeRecordsSeries) {
  PerfectChannel channel;
  Xoshiro256 rng(36);
  EngineOptions options;
  options.probe_every = 10;
  Engine engine(8, channel, rng, options);
  PingProtocol protocol(8, 100);
  const Metrics metrics = engine.run(protocol, 100);
  EXPECT_EQ(metrics.bias_series.size(), 10u);
  EXPECT_EQ(metrics.activated_series.size(), 10u);
  EXPECT_EQ(metrics.bias_series.front().round, 0u);
  EXPECT_EQ(metrics.bias_series.back().round, 90u);
}

/// Sends from agents [0, senders) every round — in ascending or descending
/// collect_sends order depending on `reversed`.
class FanProtocol : public PingProtocol {
 public:
  FanProtocol(std::size_t n, Round duration, AgentId senders, bool reversed)
      : PingProtocol(n, duration), senders_(senders), reversed_(reversed) {}

  void collect_sends(Round, std::vector<Message>& out) override {
    for (AgentId i = 0; i < senders_; ++i) {
      const AgentId a = reversed_ ? senders_ - 1 - i : i;
      out.push_back(Message{a, static_cast<Opinion>(a & 1)});
    }
  }

 private:
  AgentId senders_;
  bool reversed_;
};

// The counter-keyed contract: every draw is a function of (key, round,
// agent, purpose), and acceptance is a commutative min — so the ORDER a
// protocol emits its sends in cannot change anything observable. (Under
// the old same-draw-order contract this test would fail by construction.)
TEST(EngineTest, SendOrderDoesNotChangeResults) {
  BinarySymmetricChannel channel(0.2);
  const StreamKey key = trial_stream_key(0x04de4, 0);
  auto run_once = [&](bool reversed) {
    Engine engine(32, channel, key);
    FanProtocol protocol(32, 300, 24, reversed);
    const Metrics metrics = engine.run(protocol, 300);
    return std::make_tuple(metrics.flipped, metrics.delivered,
                           metrics.dropped, protocol.last_seen_);
  };
  EXPECT_EQ(run_once(false), run_once(true));
}

// Engines seeded from the same key are replayable; distinct trial keys
// diverge.
TEST(EngineTest, StreamKeyedConstructionIsDeterministic) {
  BinarySymmetricChannel channel(0.2);
  auto run_once = [&](const StreamKey& key) {
    Engine engine(16, channel, key);
    PingProtocol protocol(16, 500);
    const Metrics metrics = engine.run(protocol, 500);
    return std::make_pair(metrics.flipped, protocol.last_seen_);
  };
  const StreamKey a = trial_stream_key(77, 3);
  const StreamKey b = trial_stream_key(77, 4);
  EXPECT_EQ(run_once(a), run_once(a));
  EXPECT_NE(run_once(a), run_once(b));
}

TEST(EngineTest, ReusableAcrossRuns) {
  PerfectChannel channel;
  Xoshiro256 rng(37);
  Engine engine(8, channel, rng);
  PingProtocol first(8, 5);
  PingProtocol second(8, 7);
  EXPECT_EQ(engine.run(first, 100).rounds, 5u);
  EXPECT_EQ(engine.run(second, 100).rounds, 7u);
}

}  // namespace
}  // namespace flip
