#include "workload/scenarios.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace flip {
namespace {

TEST(ScenariosTest, BroadcastRunIsDeterministic) {
  BroadcastScenario scenario;
  scenario.n = 256;
  scenario.eps = 0.3;
  const RunDetail a = run_broadcast(scenario, 1234, 0);
  const RunDetail b = run_broadcast(scenario, 1234, 0);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.metrics.messages_sent, b.metrics.messages_sent);
  EXPECT_EQ(a.metrics.flipped, b.metrics.flipped);
  EXPECT_DOUBLE_EQ(a.correct_fraction, b.correct_fraction);
}

TEST(ScenariosTest, DifferentTrialsDiffer) {
  BroadcastScenario scenario;
  scenario.n = 256;
  scenario.eps = 0.3;
  const RunDetail a = run_broadcast(scenario, 1234, 0);
  const RunDetail b = run_broadcast(scenario, 1234, 1);
  EXPECT_NE(a.metrics.flipped, b.metrics.flipped);
}

TEST(ScenariosTest, BroadcastRoundsMatchSchedule) {
  BroadcastScenario scenario;
  scenario.n = 512;
  scenario.eps = 0.3;
  const RunDetail detail = run_broadcast(scenario, 7, 0);
  const Params p = Params::calibrated(scenario.n, scenario.eps);
  EXPECT_EQ(detail.metrics.rounds, p.total_rounds());
  EXPECT_EQ(detail.protocol_rounds, p.total_rounds());
}

TEST(ScenariosTest, ProbeSeriesWhenRequested) {
  BroadcastScenario scenario;
  scenario.n = 256;
  scenario.eps = 0.3;
  scenario.probe_every = 50;
  const RunDetail detail = run_broadcast(scenario, 8, 0);
  EXPECT_FALSE(detail.metrics.bias_series.empty());
  EXPECT_FALSE(detail.metrics.activated_series.empty());
}

TEST(ScenariosTest, MajorityValidatesBias) {
  MajorityScenario scenario;
  scenario.majority_bias = 0.0;
  EXPECT_THROW(run_majority(scenario, 1, 0), std::invalid_argument);
  scenario.majority_bias = 0.6;
  EXPECT_THROW(run_majority(scenario, 1, 0), std::invalid_argument);
}

TEST(ScenariosTest, MajorityScenarioSucceedsAboveThresholds) {
  MajorityScenario scenario;
  scenario.n = 1024;
  scenario.eps = 0.3;
  scenario.initial_set = 256;
  scenario.majority_bias = 0.4;
  const RunDetail detail = run_majority(scenario, 9, 0);
  EXPECT_TRUE(detail.success);
}

TEST(ScenariosTest, DesyncZeroSkewBehavesLikeBroadcast) {
  DesyncScenario scenario;
  scenario.n = 512;
  scenario.eps = 0.3;
  scenario.max_skew = 0;
  const RunDetail detail = run_desync(scenario, 10, 0);
  EXPECT_TRUE(detail.success);
  EXPECT_EQ(detail.desync_overhead, 0u);
  const Params p = Params::calibrated(scenario.n, scenario.eps);
  EXPECT_EQ(detail.metrics.rounds, p.total_rounds());
}

TEST(ScenariosTest, DesyncWithSkewAddsOverheadOnly) {
  DesyncScenario scenario;
  scenario.n = 512;
  scenario.eps = 0.3;
  scenario.max_skew = 10;
  const RunDetail detail = run_desync(scenario, 11, 0);
  EXPECT_TRUE(detail.success);
  EXPECT_GT(detail.desync_overhead, 0u);
  const Params p = Params::calibrated(scenario.n, scenario.eps);
  EXPECT_EQ(detail.metrics.rounds,
            p.total_rounds() + detail.desync_overhead);
}

TEST(ScenariosTest, DesyncClockSyncPipeline) {
  DesyncScenario scenario;
  scenario.n = 512;
  scenario.eps = 0.3;
  scenario.use_clock_sync = true;
  const RunDetail detail = run_desync(scenario, 12, 0);
  EXPECT_TRUE(detail.success);
  EXPECT_GT(detail.clock_sync_rounds, 0u);
  EXPECT_GT(detail.clock_sync_messages, 0u);
  EXPECT_GT(detail.measured_skew, 0u);
}

TEST(ScenariosTest, TrialFnAdapterMatchesDirectRun) {
  BroadcastScenario scenario;
  scenario.n = 256;
  scenario.eps = 0.3;
  const TrialFn fn = broadcast_trial_fn(scenario);
  const TrialOutcome via_fn = fn(99, 3);
  const TrialOutcome direct = to_outcome(run_broadcast(scenario, 99, 3));
  EXPECT_EQ(via_fn.success, direct.success);
  EXPECT_DOUBLE_EQ(via_fn.messages, direct.messages);
}

TEST(ScenariosTest, TrialHarnessIntegration) {
  BroadcastScenario scenario;
  scenario.n = 256;
  scenario.eps = 0.3;
  TrialOptions options;
  options.trials = 8;
  const TrialSummary summary =
      run_trials(broadcast_trial_fn(scenario), options);
  EXPECT_EQ(summary.trials, 8u);
  EXPECT_GE(summary.successes, 6u);  // near-certain at these parameters
  EXPECT_GT(summary.messages.mean(), 0.0);
}

}  // namespace
}  // namespace flip
