#include "sim/mailbox.hpp"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>
#include <vector>

namespace flip {
namespace {

TEST(MailboxTest, RejectsTinyPopulation) {
  EXPECT_THROW(Mailbox(1), std::invalid_argument);
}

TEST(MailboxTest, PushNeverDeliversToSelf) {
  Mailbox mailbox(5);
  Xoshiro256 rng(21);
  for (int i = 0; i < 5000; ++i) {
    mailbox.reset();
    mailbox.push(Message{2, Opinion::kOne}, rng);
    ASSERT_EQ(mailbox.recipients().size(), 1u);
    EXPECT_NE(mailbox.recipients()[0], 2u);
  }
}

TEST(MailboxTest, RecipientsAreUniformOverOthers) {
  Mailbox mailbox(4);
  Xoshiro256 rng(22);
  std::map<AgentId, int> counts;
  constexpr int kTrials = 90000;
  for (int i = 0; i < kTrials; ++i) {
    mailbox.reset();
    mailbox.push(Message{0, Opinion::kOne}, rng);
    ++counts[mailbox.recipients()[0]];
  }
  EXPECT_EQ(counts.size(), 3u);
  for (const auto& [to, count] : counts) {
    EXPECT_NEAR(count, kTrials / 3, kTrials / 60) << "recipient " << to;
  }
}

TEST(MailboxTest, KeepsExactlyOnePerRecipientPerRound) {
  Mailbox mailbox(3);
  Xoshiro256 rng(23);
  mailbox.reset();
  // Agents 0 and 1 both target agent 2 directly.
  mailbox.push_to(2, Message{0, Opinion::kZero}, rng);
  mailbox.push_to(2, Message{1, Opinion::kOne}, rng);
  mailbox.push_to(2, Message{0, Opinion::kZero}, rng);
  EXPECT_EQ(mailbox.recipients().size(), 1u);
  EXPECT_EQ(mailbox.arrivals(2), 3u);
  EXPECT_EQ(mailbox.pushed_this_round(), 3u);
  EXPECT_EQ(mailbox.dropped_this_round(), 2u);
}

TEST(MailboxTest, AcceptedIsUniformAmongArrivals) {
  // Three distinguishable senders all target agent 3; over many rounds the
  // kept message should come from each sender about a third of the time
  // (the Flip model's "accept one uniformly at random" rule).
  Mailbox mailbox(4);
  Xoshiro256 rng(24);
  std::map<AgentId, int> kept_from;
  constexpr int kRounds = 60000;
  for (int i = 0; i < kRounds; ++i) {
    mailbox.reset();
    for (AgentId s = 0; s < 3; ++s) {
      mailbox.push_to(3, Message{s, Opinion::kOne}, rng);
    }
    ++kept_from[mailbox.accepted(3).sender];
  }
  for (AgentId s = 0; s < 3; ++s) {
    EXPECT_NEAR(kept_from[s], kRounds / 3, kRounds / 30) << "sender " << s;
  }
}

TEST(MailboxTest, ResetClearsRoundState) {
  Mailbox mailbox(3);
  Xoshiro256 rng(25);
  mailbox.push_to(1, Message{0, Opinion::kOne}, rng);
  mailbox.reset();
  EXPECT_TRUE(mailbox.recipients().empty());
  EXPECT_EQ(mailbox.arrivals(1), 0u);
  EXPECT_EQ(mailbox.pushed_this_round(), 0u);
  EXPECT_EQ(mailbox.dropped_this_round(), 0u);
}

TEST(MailboxTest, ManySendersAllDeliveredSomewhere) {
  Mailbox mailbox(100);
  Xoshiro256 rng(26);
  mailbox.reset();
  for (AgentId s = 0; s < 100; ++s) {
    mailbox.push(Message{s, Opinion::kZero}, rng);
  }
  EXPECT_EQ(mailbox.pushed_this_round(), 100u);
  EXPECT_EQ(mailbox.recipients().size() + mailbox.dropped_this_round(), 100u);
  EXPECT_GT(mailbox.recipients().size(), 40u);  // ~ (1-1/e) * 100
  EXPECT_LT(mailbox.recipients().size(), 90u);
}

TEST(MailboxTest, TouchOrderHasNoDuplicates) {
  Mailbox mailbox(10);
  Xoshiro256 rng(27);
  mailbox.reset();
  for (int i = 0; i < 200; ++i) mailbox.push(Message{0, Opinion::kOne}, rng);
  std::vector<bool> seen(10, false);
  for (AgentId a : mailbox.recipients()) {
    EXPECT_FALSE(seen[a]) << "duplicate recipient " << a;
    seen[a] = true;
  }
}

}  // namespace
}  // namespace flip
