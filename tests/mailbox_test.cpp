#include "sim/mailbox.hpp"

#include <gtest/gtest.h>

#include <array>
#include <map>
#include <stdexcept>
#include <vector>

namespace flip {
namespace {

TEST(MailboxTest, RejectsTinyPopulation) {
  EXPECT_THROW(Mailbox(1), std::invalid_argument);
}

TEST(MailboxTest, PushNeverDeliversToSelf) {
  Mailbox mailbox(5);
  Xoshiro256 rng(21);
  for (int i = 0; i < 5000; ++i) {
    mailbox.reset();
    mailbox.push(Message{2, Opinion::kOne}, rng);
    ASSERT_EQ(mailbox.recipients().size(), 1u);
    EXPECT_NE(mailbox.recipients()[0], 2u);
  }
}

TEST(MailboxTest, RecipientsAreUniformOverOthers) {
  Mailbox mailbox(4);
  Xoshiro256 rng(22);
  std::map<AgentId, int> counts;
  constexpr int kTrials = 90000;
  for (int i = 0; i < kTrials; ++i) {
    mailbox.reset();
    mailbox.push(Message{0, Opinion::kOne}, rng);
    ++counts[mailbox.recipients()[0]];
  }
  EXPECT_EQ(counts.size(), 3u);
  for (const auto& [to, count] : counts) {
    EXPECT_NEAR(count, kTrials / 3, kTrials / 60) << "recipient " << to;
  }
}

TEST(MailboxTest, KeepsExactlyOnePerRecipientPerRound) {
  Mailbox mailbox(3);
  Xoshiro256 rng(23);
  mailbox.reset();
  // Agents 0 and 1 both target agent 2 directly.
  mailbox.push_to(2, Message{0, Opinion::kZero}, rng);
  mailbox.push_to(2, Message{1, Opinion::kOne}, rng);
  mailbox.push_to(2, Message{0, Opinion::kZero}, rng);
  EXPECT_EQ(mailbox.recipients().size(), 1u);
  EXPECT_EQ(mailbox.arrivals(2), 3u);
  EXPECT_EQ(mailbox.pushed_this_round(), 3u);
  EXPECT_EQ(mailbox.dropped_this_round(), 2u);
}

TEST(MailboxTest, AcceptedIsUniformAmongArrivals) {
  // Three distinguishable senders all target agent 3; over many rounds the
  // kept message should come from each sender about a third of the time
  // (the Flip model's "accept one uniformly at random" rule).
  Mailbox mailbox(4);
  Xoshiro256 rng(24);
  std::map<AgentId, int> kept_from;
  constexpr int kRounds = 60000;
  for (int i = 0; i < kRounds; ++i) {
    mailbox.reset();
    for (AgentId s = 0; s < 3; ++s) {
      mailbox.push_to(3, Message{s, Opinion::kOne}, rng);
    }
    ++kept_from[mailbox.accepted(3).sender];
  }
  for (AgentId s = 0; s < 3; ++s) {
    EXPECT_NEAR(kept_from[s], kRounds / 3, kRounds / 30) << "sender " << s;
  }
}

TEST(MailboxTest, ResetClearsRoundState) {
  Mailbox mailbox(3);
  Xoshiro256 rng(25);
  mailbox.push_to(1, Message{0, Opinion::kOne}, rng);
  mailbox.reset();
  EXPECT_TRUE(mailbox.recipients().empty());
  EXPECT_EQ(mailbox.arrivals(1), 0u);
  EXPECT_EQ(mailbox.pushed_this_round(), 0u);
  EXPECT_EQ(mailbox.dropped_this_round(), 0u);
}

TEST(MailboxTest, ManySendersAllDeliveredSomewhere) {
  Mailbox mailbox(100);
  Xoshiro256 rng(26);
  mailbox.reset();
  for (AgentId s = 0; s < 100; ++s) {
    mailbox.push(Message{s, Opinion::kZero}, rng);
  }
  EXPECT_EQ(mailbox.pushed_this_round(), 100u);
  EXPECT_EQ(mailbox.recipients().size() + mailbox.dropped_this_round(), 100u);
  EXPECT_GT(mailbox.recipients().size(), 40u);  // ~ (1-1/e) * 100
  EXPECT_LT(mailbox.recipients().size(), 90u);
}

TEST(MailboxTest, TouchOrderHasNoDuplicates) {
  Mailbox mailbox(10);
  Xoshiro256 rng(27);
  mailbox.reset();
  for (int i = 0; i < 200; ++i) mailbox.push(Message{0, Opinion::kOne}, rng);
  std::vector<bool> seen(10, false);
  for (AgentId a : mailbox.recipients()) {
    EXPECT_FALSE(seen[a]) << "duplicate recipient " << a;
    seen[a] = true;
  }
}

TEST(MailboxTest, OfferKeepsMinimumPriorityPair) {
  Mailbox mailbox(8);
  mailbox.offer(3, 0, Opinion::kZero, 500);
  mailbox.offer(3, 1, Opinion::kOne, 100);
  mailbox.offer(3, 2, Opinion::kZero, 900);
  ASSERT_EQ(mailbox.recipients().size(), 1u);
  EXPECT_EQ(mailbox.accepted(3).sender, 1u);
  EXPECT_EQ(mailbox.accepted(3).bit, Opinion::kOne);
  EXPECT_EQ(mailbox.arrivals(3), 3u);
  EXPECT_EQ(mailbox.dropped_this_round(), 2u);
}

TEST(MailboxTest, OfferBreaksPriorityTiesOnSenderId) {
  Mailbox a(8);
  a.offer(5, 4, Opinion::kOne, 42);
  a.offer(5, 2, Opinion::kZero, 42);
  EXPECT_EQ(a.accepted(5).sender, 2u);
  Mailbox b(8);
  b.offer(5, 2, Opinion::kZero, 42);
  b.offer(5, 4, Opinion::kOne, 42);
  EXPECT_EQ(b.accepted(5).sender, 2u);
}

TEST(MailboxTest, OfferAcceptanceIsArrivalOrderIndependent) {
  // The determinism contract rests on this: min((priority, sender)) is a
  // commutative reduction, so any interleaving of a round's offers — the
  // sharded engine produces many — keeps the identical winner per
  // recipient. Reservoir push_to, by design, does not have this property.
  struct Offer {
    AgentId to;
    AgentId sender;
    Opinion bit;
    std::uint64_t priority;
  };
  std::vector<Offer> offers;
  Xoshiro256 rng(99);
  for (AgentId sender = 0; sender < 64; ++sender) {
    offers.push_back(Offer{static_cast<AgentId>(uniform_index(rng, 16)),
                           sender, static_cast<Opinion>(sender & 1), rng()});
  }
  Mailbox forward(16);
  for (const Offer& o : offers) {
    forward.offer(o.to, o.sender, o.bit, o.priority);
  }
  Mailbox backward(16);
  for (auto it = offers.rbegin(); it != offers.rend(); ++it) {
    backward.offer(it->to, it->sender, it->bit, it->priority);
  }
  ASSERT_EQ(forward.recipients().size(), backward.recipients().size());
  for (const AgentId to : forward.recipients()) {
    EXPECT_EQ(forward.accepted(to).sender, backward.accepted(to).sender);
    EXPECT_EQ(forward.accepted(to).bit, backward.accepted(to).bit);
    EXPECT_EQ(forward.arrivals(to), backward.arrivals(to));
  }
  EXPECT_EQ(forward.dropped_this_round(), backward.dropped_this_round());
}

TEST(MailboxTest, OfferAcceptanceIsUniformAmongArrivals) {
  // With i.i.d. uniform priorities each of k arrivals wins w.p. 1/k.
  constexpr int kRounds = 30000;
  Xoshiro256 rng(7);
  std::array<int, 3> wins{};
  for (int i = 0; i < kRounds; ++i) {
    Mailbox mailbox(4);
    for (AgentId sender = 0; sender < 3; ++sender) {
      mailbox.offer(3, sender, Opinion::kOne, rng());
    }
    ++wins[mailbox.accepted(3).sender];
  }
  for (const int w : wins) {
    EXPECT_NEAR(static_cast<double>(w) / kRounds, 1.0 / 3.0, 0.01);
  }
}

}  // namespace
}  // namespace flip
