#include "sim/clock.hpp"

#include <gtest/gtest.h>

namespace flip {
namespace {

TEST(LocalClockTest, StartsUnstarted) {
  LocalClock clock;
  EXPECT_FALSE(clock.started());
}

TEST(LocalClockTest, ActivationSemantics) {
  LocalClock clock;
  clock.start(100);
  EXPECT_TRUE(clock.started());
  EXPECT_EQ(clock.read(100), 0u);
  EXPECT_EQ(clock.read(150), 50u);
}

TEST(LocalClockTest, OffsetInitialization) {
  const LocalClock clock = LocalClock::with_offset(7);
  EXPECT_TRUE(clock.started());
  EXPECT_EQ(clock.read(0), 7u);
  EXPECT_EQ(clock.read(10), 17u);
}

TEST(LocalClockTest, ResetRebasesToZero) {
  LocalClock clock = LocalClock::with_offset(42);
  clock.reset(30);
  EXPECT_EQ(clock.read(30), 0u);
  EXPECT_EQ(clock.read(31), 1u);
}

TEST(LocalClockTest, TwoClocksSkew) {
  // Two agents waking D apart read local times D apart forever.
  LocalClock early;
  LocalClock late;
  early.start(0);
  late.start(16);
  for (Round g = 16; g < 100; g += 7) {
    EXPECT_EQ(early.read(g) - late.read(g), 16u);
  }
}

}  // namespace
}  // namespace flip
