#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "cli/args.hpp"
#include "cli/bench_report.hpp"
#include "cli/report.hpp"
#include "cli/sweep.hpp"

namespace flip::cli {
namespace {

// --- ArgParser ----------------------------------------------------------

TEST(ArgParserTest, FlagsOptionsAndPositionals) {
  bool flag = true;  // add_flag must reset it
  std::string value;
  ArgParser parser("prog", "desc");
  parser.add_flag("--verbose", "say more", &flag);
  parser.add_option("--out", "path", "output file", &value);
  const char* argv[] = {"prog", "--verbose", "--out", "x.json", "extra"};
  ASSERT_TRUE(parser.parse(5, argv));
  EXPECT_TRUE(flag);
  EXPECT_EQ(value, "x.json");
  ASSERT_EQ(parser.positionals().size(), 1u);
  EXPECT_EQ(parser.positionals()[0], "extra");
}

TEST(ArgParserTest, EqualsSyntaxAndTypedOptions) {
  std::optional<std::size_t> trials;
  std::optional<double> eps;
  std::optional<std::uint64_t> seed;
  ArgParser parser("prog", "");
  parser.add_size("--trials", "trials", &trials);
  parser.add_double("--eps", "eps", &eps);
  parser.add_uint64("--seed", "seed", &seed);
  const char* argv[] = {"prog", "--trials=8", "--eps", "0.25", "--seed",
                        "0xE1"};
  ASSERT_TRUE(parser.parse(6, argv));
  EXPECT_EQ(trials, 8u);
  EXPECT_EQ(eps, 0.25);
  EXPECT_EQ(seed, 0xE1u);
}

TEST(ArgParserTest, OptionalValueOption) {
  {
    // Bare --json (next token is another option): present, no path.
    std::string path;
    bool present = false;
    bool quiet = false;
    ArgParser parser("prog", "");
    parser.add_optional_value("--json", "path", "json out", &path, &present);
    parser.add_flag("--quiet", "", &quiet);
    const char* argv[] = {"prog", "--json", "--quiet"};
    ASSERT_TRUE(parser.parse(3, argv));
    EXPECT_TRUE(present);
    EXPECT_TRUE(path.empty());
    EXPECT_TRUE(quiet);
  }
  {
    // --json with a path consumes it.
    std::string path;
    bool present = false;
    ArgParser parser("prog", "");
    parser.add_optional_value("--json", "path", "json out", &path, &present);
    const char* argv[] = {"prog", "--json", "out.json"};
    ASSERT_TRUE(parser.parse(3, argv));
    EXPECT_TRUE(present);
    EXPECT_EQ(path, "out.json");
  }
}

TEST(ArgParserTest, ErrorsAndHelp) {
  {
    bool flag = false;
    ArgParser parser("prog", "");
    parser.add_flag("--x", "", &flag);
    const char* argv[] = {"prog", "--unknown"};
    EXPECT_FALSE(parser.parse(2, argv));
    EXPECT_FALSE(parser.help_requested());
    EXPECT_NE(parser.error().find("--unknown"), std::string::npos);
  }
  {
    std::string value;
    ArgParser parser("prog", "");
    parser.add_option("--out", "path", "", &value);
    const char* argv[] = {"prog", "--out"};
    EXPECT_FALSE(parser.parse(2, argv));
    EXPECT_NE(parser.error().find("requires a value"), std::string::npos);
  }
  {
    std::optional<std::size_t> trials;
    ArgParser parser("prog", "");
    parser.add_size("--trials", "", &trials);
    const char* argv[] = {"prog", "--trials", "abc"};
    EXPECT_FALSE(parser.parse(3, argv));
    EXPECT_NE(parser.error().find("abc"), std::string::npos);
  }
  {
    ArgParser parser("prog", "");
    const char* argv[] = {"prog", "-h"};
    EXPECT_FALSE(parser.parse(2, argv));
    EXPECT_TRUE(parser.help_requested());
    EXPECT_NE(parser.usage().find("usage: prog"), std::string::npos);
  }
}

TEST(ArgParserTest, ListParsing) {
  std::string error;
  const auto sizes = parse_size_list("1024,2048,4096", error);
  ASSERT_TRUE(sizes.has_value());
  EXPECT_EQ(*sizes, (std::vector<std::size_t>{1024, 2048, 4096}));

  const auto doubles = parse_double_list("0.2,0.3", error);
  ASSERT_TRUE(doubles.has_value());
  EXPECT_EQ(*doubles, (std::vector<double>{0.2, 0.3}));

  EXPECT_FALSE(parse_size_list("12,x", error).has_value());
  EXPECT_NE(error.find("x"), std::string::npos);
  EXPECT_FALSE(parse_double_list("", error).has_value());

  EXPECT_EQ(split_list("a,b,,c"),
            (std::vector<std::string>{"a", "b", "c"}));
}

// --- Sweep --------------------------------------------------------------

TEST(SweepTest, ExpandGridCrossProduct) {
  SweepSpec spec;
  spec.scenario = "broadcast_small";
  spec.ns = {64, 128};
  spec.epss = {0.25, 0.3};
  const auto grid = expand_grid(spec);
  ASSERT_EQ(grid.size(), 4u);
  // Axis order: n outermost, then eps, then channel.
  EXPECT_EQ(grid[0].n, 64u);
  EXPECT_DOUBLE_EQ(grid[0].eps, 0.25);
  EXPECT_EQ(grid[1].n, 64u);
  EXPECT_DOUBLE_EQ(grid[1].eps, 0.3);
  EXPECT_EQ(grid[3].n, 128u);
  EXPECT_EQ(grid[0].channel, kChannelBsc);  // scenario default
}

TEST(SweepTest, ExpandGridDedupesRepeatedAxisValues) {
  // Duplicate grid points would collide in the BENCH_*.json metric keys.
  SweepSpec spec;
  spec.scenario = "broadcast_small";
  spec.ns = {128, 128, 64};
  spec.epss = {0.3, 0.3};
  const auto grid = expand_grid(spec);
  ASSERT_EQ(grid.size(), 2u);
  EXPECT_EQ(grid[0].n, 128u);
  EXPECT_EQ(grid[1].n, 64u);
}

TEST(SweepTest, RunSweepProducesSummaries) {
  SweepSpec spec;
  spec.scenario = "broadcast_small";
  spec.ns = {64, 128};
  spec.trials = 2;
  spec.seed = 0xCAFE;
  const SweepResult result = run_sweep(spec);
  ASSERT_EQ(result.points.size(), 2u);
  for (const SweepPoint& point : result.points) {
    EXPECT_EQ(point.summary.trials, 2u);
    EXPECT_GT(point.summary.rounds.mean(), 0.0);
    EXPECT_GT(point.summary.messages.mean(), 0.0);
    EXPECT_GE(point.summary.wall_seconds, 0.0);
  }
  EXPECT_GE(result.wall_seconds,
            result.points[0].summary.wall_seconds +
                result.points[1].summary.wall_seconds - 1e-3);
}

TEST(SweepTest, RunSweepValidatesBeforeRunning) {
  SweepSpec unknown;
  unknown.scenario = "no_such_scenario";
  EXPECT_THROW(run_sweep(unknown), std::invalid_argument);

  SweepSpec zero_trials;
  zero_trials.scenario = "broadcast_small";
  zero_trials.trials = 0;
  EXPECT_THROW(run_sweep(zero_trials), std::invalid_argument);

  SweepSpec bad_channel;
  bad_channel.scenario = "majority";
  bad_channel.channels = {std::string(kChannelHeterogeneous)};
  EXPECT_THROW(run_sweep(bad_channel), std::invalid_argument);
}

// --- Reporting ----------------------------------------------------------

// A fixed SweepResult with exactly representable numbers, so the JSON and
// CSV emitters can be golden-tested byte for byte (stable key order is the
// contract the docs/CI pipeline relies on).
SweepResult known_result() {
  SweepResult result;
  result.spec.scenario = "demo";
  result.spec.trials = 2;
  result.spec.seed = 7;
  result.wall_seconds = 2.0;
  SweepPoint point;
  point.config = {64, 0.25, "bsc"};
  point.summary.trials = 2;
  point.summary.successes = 1;
  point.summary.success = {0.5, 0.125, 0.875};
  point.summary.rounds.add(1100.0);
  point.summary.rounds.add(1100.0);
  point.summary.messages.add(500.0);
  point.summary.messages.add(500.0);
  point.summary.correct_fraction.add(1.0);
  point.summary.correct_fraction.add(1.0);
  point.summary.trial_seconds.add(0.5);
  point.summary.trial_seconds.add(0.5);
  point.summary.wall_seconds = 1.5;
  result.points.push_back(std::move(point));
  return result;
}

TEST(ReportTest, SweepJsonGolden) {
  const std::string expected =
      "{\n"
      "  \"schema\": \"flipsim-sweep-v1\",\n"
      "  \"scenario\": \"demo\",\n"
      "  \"trials_per_point\": 2,\n"
      "  \"seed\": 7,\n"
      "  \"threads\": 0,\n"
      "  \"engine\": \"batch\",\n"
      "  \"shards\": 1,\n"
      "  \"grid_points\": 1,\n"
      "  \"wall_seconds\": 2,\n"
      "  \"points\": [\n"
      "    {\n"
      "      \"params\": {\n"
      "        \"n\": 64,\n"
      "        \"eps\": 0.25,\n"
      "        \"channel\": \"bsc\",\n"
      "        \"schedule\": \"static\",\n"
      "        \"churn\": \"none\",\n"
      "        \"topology\": \"complete\"\n"
      "      },\n"
      "      \"trials\": 2,\n"
      "      \"successes\": 1,\n"
      "      \"success_rate\": {\n"
      "        \"estimate\": 0.5,\n"
      "        \"wilson_low\": 0.125,\n"
      "        \"wilson_high\": 0.875\n"
      "      },\n"
      "      \"rounds\": {\n"
      "        \"mean\": 1100,\n"
      "        \"stddev\": 0,\n"
      "        \"min\": 1100,\n"
      "        \"max\": 1100\n"
      "      },\n"
      "      \"messages\": {\n"
      "        \"mean\": 500,\n"
      "        \"stddev\": 0,\n"
      "        \"min\": 500,\n"
      "        \"max\": 500\n"
      "      },\n"
      "      \"correct_fraction\": {\n"
      "        \"mean\": 1,\n"
      "        \"stddev\": 0,\n"
      "        \"min\": 1,\n"
      "        \"max\": 1\n"
      "      },\n"
      // No converged trials: every convergence statistic is null (the
      // NaN -> null mapping), never a numeric placeholder.
      "      \"convergence_rounds\": {\n"
      "        \"converged\": 0,\n"
      "        \"mean\": null,\n"
      "        \"stddev\": null,\n"
      "        \"min\": null,\n"
      "        \"max\": null\n"
      "      },\n"
      "      \"trial_seconds\": {\n"
      "        \"mean\": 0.5,\n"
      "        \"stddev\": 0,\n"
      "        \"min\": 0.5,\n"
      "        \"max\": 0.5\n"
      "      },\n"
      "      \"wall_seconds\": 1.5\n"
      "    }\n"
      "  ]\n"
      "}";
  EXPECT_EQ(sweep_to_json(known_result()), expected);
}

TEST(ReportTest, SweepCsvGolden) {
  const std::string expected =
      "scenario,n,eps,channel,schedule,churn,topology,trials,successes,"
      "success_rate,"
      "success_low,success_high,rounds_mean,rounds_stddev,rounds_min,"
      "rounds_max,messages_mean,messages_stddev,correct_fraction_mean,"
      "convergence_mean,converged,wall_seconds\n"
      "demo,64,0.25,bsc,static,none,complete,2,1,0.5,0.125,0.875,1100,0,"
      "1100,1100,"
      "500,0,1,null,0,1.5\n";
  EXPECT_EQ(sweep_to_csv(known_result()), expected);
}

TEST(ReportTest, SweepTableMatchesPoints) {
  const TextTable table = sweep_table(known_result());
  ASSERT_EQ(table.rows(), 1u);
  EXPECT_EQ(table.at(0, 0), "64");
  EXPECT_EQ(table.at(0, 2), "bsc");
  // No converged trials: the convergence column is a "-" placeholder, not
  // a formatted NaN (and never a fake 0).
  EXPECT_EQ(table.at(0, 8), "-");
}

TEST(ReportTest, ConvergenceStatsAppearWhenTrialsConverge) {
  SweepResult result = known_result();
  TrialSummary& s = result.points[0].summary;
  s.converged = 2;
  s.convergence_rounds.add(96.0);
  s.convergence_rounds.add(104.0);
  const std::string json = sweep_to_json(result);
  EXPECT_NE(json.find("\"converged\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"mean\": 100,"), std::string::npos);
  const std::string csv = sweep_to_csv(result);
  EXPECT_NE(csv.find(",100,2,"), std::string::npos);
  const TextTable table = sweep_table(result);
  EXPECT_EQ(table.at(0, 8), "100");
}

// --- Argument-layer validation helpers ----------------------------------

TEST(ValidateThreadsTest, AcceptsWithinHardwareBounds) {
  EXPECT_EQ(validate_threads(1, 8), std::nullopt);
  EXPECT_EQ(validate_threads(8, 8), std::nullopt);
  EXPECT_NE(validate_threads(9, 8), std::nullopt);
  EXPECT_NE(validate_threads(0, 8), std::nullopt);
}

TEST(ValidateThreadsTest, UnknownHardwareFallsBackToFloorOfOne) {
  // std::thread::hardware_concurrency() may return 0 ("cannot tell"). That
  // must mean "no detected upper bound", not "upper bound zero" — the
  // latter would reject every --threads value on such hosts.
  EXPECT_EQ(validate_threads(1, 0), std::nullopt);
  EXPECT_EQ(validate_threads(16, 0), std::nullopt);
  EXPECT_NE(validate_threads(0, 0), std::nullopt);
}

TEST(ValidateShardsTest, EnforcesRegistryBound) {
  EXPECT_EQ(validate_shards(1), std::nullopt);
  EXPECT_EQ(validate_shards(kMaxShards), std::nullopt);
  EXPECT_NE(validate_shards(0), std::nullopt);
  EXPECT_NE(validate_shards(kMaxShards + 1), std::nullopt);
}

TEST(ValidateEpsTest, RejectsValuesOutsideModelDomain) {
  EXPECT_EQ(validate_eps_values({0.1, 0.5}), std::nullopt);
  const auto too_big = validate_eps_values({0.2, 0.7});
  ASSERT_TRUE(too_big.has_value());
  EXPECT_NE(too_big->find("0.7"), std::string::npos);  // names the value
  EXPECT_TRUE(validate_eps_values({0.0}).has_value());
  EXPECT_TRUE(validate_eps_values({-0.1}).has_value());
}

TEST(ValidateEngineTest, ExactEnginesPassForEveryKnownScenario) {
  for (const ScenarioInfo* info : ScenarioRegistry::instance().list()) {
    EXPECT_EQ(validate_engine(info->name, EngineMode::kBatch), std::nullopt)
        << info->name;
    EXPECT_EQ(validate_engine(info->name, EngineMode::kClassic),
              std::nullopt)
        << info->name;
  }
}

TEST(ValidateEngineTest, SurrogateAcceptedExactlyOnSupportedEntries) {
  for (const ScenarioInfo* info : ScenarioRegistry::instance().list()) {
    const auto error = validate_engine(info->name, EngineMode::kSurrogate);
    if (info->supports_surrogate) {
      EXPECT_EQ(error, std::nullopt) << info->name;
    } else {
      ASSERT_TRUE(error.has_value()) << info->name;
      // Actionable: names the offending scenario and the engines that DO
      // work there.
      EXPECT_NE(error->find(info->name), std::string::npos) << *error;
      EXPECT_NE(error->find("--engine batch"), std::string::npos) << *error;
      EXPECT_NE(error->find("--engine classic"), std::string::npos)
          << *error;
    }
  }
  // The rejection set is exactly the unmodelable families.
  EXPECT_TRUE(validate_engine("broadcast_adversarial",
                              EngineMode::kSurrogate)
                  .has_value());
  EXPECT_TRUE(
      validate_engine("desync", EngineMode::kSurrogate).has_value());
  EXPECT_TRUE(
      validate_engine("baseline_voter", EngineMode::kSurrogate).has_value());
  EXPECT_EQ(validate_engine("broadcast", EngineMode::kSurrogate),
            std::nullopt);
}

TEST(ValidateEngineTest, UnknownScenarioFailsAtTheArgumentLayer) {
  const auto error = validate_engine("no_such_thing", EngineMode::kBatch);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("no_such_thing"), std::string::npos);
  EXPECT_NE(error->find("--list"), std::string::npos);  // points at help
}

TEST(ValidateTopologyTest, CompleteAndUnsetPassEverywhere) {
  for (const ScenarioInfo* info : ScenarioRegistry::instance().list()) {
    EXPECT_EQ(validate_topology(info->name, std::nullopt, EngineMode::kBatch),
              std::nullopt)
        << info->name;
    EXPECT_EQ(validate_topology(info->name, TopologySpec{},
                                EngineMode::kBatch),
              std::nullopt)
        << info->name;
  }
}

TEST(ValidateTopologyTest, SparseAcceptedExactlyOnSupportingEntries) {
  const TopologySpec ring = TopologySpec::parse("ring:8");
  for (const ScenarioInfo* info : ScenarioRegistry::instance().list()) {
    const auto error =
        validate_topology(info->name, ring, EngineMode::kBatch);
    if (info->supports_topology) {
      EXPECT_EQ(error, std::nullopt) << info->name;
    } else {
      ASSERT_TRUE(error.has_value()) << info->name;
      EXPECT_NE(error->find(info->name), std::string::npos) << *error;
    }
  }
  // The rejection set is exactly the non-breathe families.
  EXPECT_TRUE(validate_topology("desync", ring, EngineMode::kBatch)
                  .has_value());
  EXPECT_TRUE(validate_topology("baseline_voter", ring, EngineMode::kBatch)
                  .has_value());
  EXPECT_EQ(validate_topology("broadcast", ring, EngineMode::kBatch),
            std::nullopt);
}

TEST(ValidateTopologyTest, SurrogateRejectsAnyEffectiveSparseGraph) {
  // Explicit override under the surrogate engine: rejected, naming the
  // scenario, the topology, and the engines that DO work.
  const auto error = validate_topology(
      "broadcast", TopologySpec::parse("ring:8"), EngineMode::kSurrogate);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("broadcast"), std::string::npos) << *error;
  EXPECT_NE(error->find("ring(k=8)"), std::string::npos) << *error;
  EXPECT_NE(error->find("--engine batch"), std::string::npos) << *error;
  EXPECT_NE(error->find("--engine classic"), std::string::npos) << *error;
  // No override, but the scenario's DEFAULT is sparse: still rejected —
  // the effective graph is what matters, not the command line.
  EXPECT_TRUE(validate_topology("broadcast_ring_k8", std::nullopt,
                                EngineMode::kSurrogate)
                  .has_value());
  // Overriding a sparse-default entry back to complete makes the
  // surrogate legal again.
  EXPECT_EQ(validate_topology("broadcast_ring_k8", TopologySpec{},
                              EngineMode::kSurrogate),
            std::nullopt);
  EXPECT_EQ(validate_topology("broadcast", std::nullopt,
                              EngineMode::kSurrogate),
            std::nullopt);
}

TEST(ValidateTopologyTest, UnknownScenarioFailsAtTheArgumentLayer) {
  const auto error =
      validate_topology("no_such_thing", std::nullopt, EngineMode::kBatch);
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("no_such_thing"), std::string::npos);
  EXPECT_NE(error->find("--list"), std::string::npos);
}

TEST(SweepTest, TopologyOverrideReachesEveryGridPoint) {
  SweepSpec spec;
  spec.scenario = "broadcast_small";
  spec.ns = {64, 128};
  spec.topology = TopologySpec::parse("ring:8");
  const auto grid = expand_grid(spec);
  ASSERT_EQ(grid.size(), 2u);
  for (const ScenarioConfig& config : grid) {
    EXPECT_EQ(config.topology.describe(), "ring(k=8)");
  }
  // Without an override the scenario default flows through instead.
  SweepSpec preset;
  preset.scenario = "broadcast_ring_k8";
  const auto preset_grid = expand_grid(preset);
  ASSERT_EQ(preset_grid.size(), 1u);
  EXPECT_EQ(preset_grid[0].topology.describe(), "ring(k=8)");
}

TEST(SweepTest, TopologyTooLargeForGridFailsBeforeRunning) {
  // resolve() checks the graph against n: a ring needing more neighbors
  // than the population has peers must fail at expand_grid time, not
  // minutes into the sweep.
  SweepSpec spec;
  spec.scenario = "broadcast_small";
  spec.ns = {64};
  spec.topology = TopologySpec::parse("ring:64");
  EXPECT_THROW(expand_grid(spec), std::invalid_argument);
}

TEST(ReportTest, PointKeyIsStable) {
  const SweepResult result = known_result();
  EXPECT_EQ(point_key(result, result.points[0]), "demo_n64_eps0.25");
  SweepResult hetero = known_result();
  hetero.points[0].config.channel = "heterogeneous";
  EXPECT_EQ(point_key(hetero, hetero.points[0]),
            "demo_n64_eps0.25_heterogeneous");
}

TEST(ReportTest, BenchTrajectorySchema) {
  const std::string json =
      sweep_to_bench_json(known_result(), "baseline", "abc1234");
  EXPECT_NE(json.find("\"bench\": \"flipsim\""), std::string::npos);
  EXPECT_NE(json.find("\"experiment\": \"baseline\""), std::string::npos);
  EXPECT_NE(json.find("\"git_rev\": \"abc1234\""), std::string::npos);
  // Stable metric keys with mandatory unit/higher_is_better.
  EXPECT_NE(json.find("\"demo_n64_eps0.25_success_rate\""),
            std::string::npos);
  EXPECT_NE(json.find("\"demo_n64_eps0.25_rounds_mean\""), std::string::npos);
  EXPECT_NE(json.find("\"unit\": \"rounds\""), std::string::npos);
  EXPECT_NE(json.find("\"higher_is_better\": false"), std::string::npos);
  EXPECT_NE(json.find("\"sweep_wall_seconds\""), std::string::npos);
  // The params block pins reproduction inputs, including the seed.
  EXPECT_NE(json.find("\"seed\": 7"), std::string::npos);
}

TEST(ReportTest, BenchReportJsonGolden) {
  BenchReport report;
  report.id = "E1 demo";
  report.claim = "a claim";
  BenchReport::Table table;
  table.headers = {"n", "rounds"};
  table.rows = {{"64", "1100"}};
  table.note = "a note";
  report.tables.push_back(std::move(table));
  const std::string expected =
      "{\n"
      "  \"schema\": \"flip-bench-v1\",\n"
      "  \"id\": \"E1 demo\",\n"
      "  \"claim\": \"a claim\",\n"
      "  \"tables\": [\n"
      "    {\n"
      "      \"headers\": [\n"
      "        \"n\",\n"
      "        \"rounds\"\n"
      "      ],\n"
      "      \"rows\": [\n"
      "        [\n"
      "          \"64\",\n"
      "          \"1100\"\n"
      "        ]\n"
      "      ],\n"
      "      \"note\": \"a note\"\n"
      "    }\n"
      "  ]\n"
      "}";
  EXPECT_EQ(bench_report_to_json(report), expected);
}

}  // namespace
}  // namespace flip::cli
