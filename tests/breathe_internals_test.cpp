// White-box tests of BreatheProtocol's phase mechanics: reservoir
// uniformity of the Stage I pick, Stage II success threshold edges,
// prefix-counter bookkeeping, and sender-set evolution.

#include <gtest/gtest.h>

#include <map>

#include "core/breathe.hpp"
#include "net/channel.hpp"
#include "sim/engine.hpp"

namespace flip {
namespace {

struct Probe {
  Probe(std::size_t n, double eps, BreatheConfig cfg, std::uint64_t seed = 1)
      : params(Params::calibrated(n, eps)),
        rng(seed),
        protocol(params, std::move(cfg), rng) {}

  Params params;
  Xoshiro256 rng;
  BreatheProtocol protocol;
};

TEST(BreatheInternalsTest, Stage1ReservoirPickIsUniform) {
  // Agent 5 hears three distinct-bit messages in phase 0 across many fresh
  // protocols; the adopted opinion must match each position ~uniformly.
  // Feed pattern: kOne, kZero, kZero — P(kOne) should be ~1/3.
  int ones = 0;
  constexpr int kTrials = 30000;
  for (int t = 0; t < kTrials; ++t) {
    Probe probe(64, 0.3, broadcast_config(), 1000 + t);
    probe.protocol.deliver(5, Opinion::kOne, 0);
    probe.protocol.deliver(5, Opinion::kZero, 1);
    probe.protocol.deliver(5, Opinion::kZero, 2);
    const Round end = probe.params.stage1().phase_end(0);
    for (Round r = 0; r < end; ++r) probe.protocol.end_round(r);
    if (probe.protocol.population().opinion(5) == Opinion::kOne) ++ones;
  }
  EXPECT_NEAR(static_cast<double>(ones) / kTrials, 1.0 / 3.0, 0.02);
}

TEST(BreatheInternalsTest, FirstMessageRuleAlwaysKeepsFirst) {
  for (int t = 0; t < 50; ++t) {
    BreatheConfig config = broadcast_config();
    config.stage1_pick = Stage1Pick::kFirstMessage;
    Probe probe(64, 0.3, std::move(config), 2000 + t);
    probe.protocol.deliver(5, Opinion::kOne, 0);
    probe.protocol.deliver(5, Opinion::kZero, 1);
    probe.protocol.deliver(5, Opinion::kZero, 2);
    const Round end = probe.params.stage1().phase_end(0);
    for (Round r = 0; r < end; ++r) probe.protocol.end_round(r);
    EXPECT_EQ(probe.protocol.population().opinion(5), Opinion::kOne);
  }
}

TEST(BreatheInternalsTest, SenderSetGrowsOnlyAtPhaseBoundaries) {
  Probe probe(64, 0.3, broadcast_config());
  // Activate two agents mid-phase 0.
  probe.protocol.deliver(3, Opinion::kOne, 0);
  probe.protocol.deliver(4, Opinion::kOne, 0);
  std::vector<Message> sends;
  for (Round r = 0; r + 1 < probe.params.stage1().phase_end(0); ++r) {
    probe.protocol.end_round(r);
    sends.clear();
    probe.protocol.collect_sends(r + 1, sends);
    EXPECT_EQ(sends.size(), 1u) << "round " << r + 1;  // still source only
  }
  probe.protocol.end_round(probe.params.stage1().phase_end(0) - 1);
  sends.clear();
  probe.protocol.collect_sends(probe.params.stage1().phase_end(0), sends);
  EXPECT_EQ(sends.size(), 3u);  // source + both activees
}

TEST(BreatheInternalsTest, Stage2UnsuccessfulAgentKeepsOpinion) {
  // Drive an agent through a Stage II phase with too few samples: its
  // opinion must be untouched.
  BreatheConfig config = broadcast_config();
  config.skip_stage1 = true;
  config.initial.clear();
  for (AgentId a = 0; a < 64; ++a) {
    config.initial.push_back(Seed{a, Opinion::kZero});
  }
  config.correct = Opinion::kZero;
  Probe probe(64, 0.3, std::move(config));
  const StageTwoSchedule& s2 = probe.params.stage2();

  // Agent 7 receives threshold-1 samples, all kOne: not successful.
  for (std::uint64_t i = 0; i + 1 < s2.half_length(0); ++i) {
    probe.protocol.deliver(7, Opinion::kOne, static_cast<Round>(i));
  }
  for (Round r = 0; r < s2.m; ++r) probe.protocol.end_round(r);
  EXPECT_EQ(probe.protocol.population().opinion(7), Opinion::kZero);
}

TEST(BreatheInternalsTest, Stage2ExactThresholdIsSuccessful) {
  BreatheConfig config = broadcast_config();
  config.skip_stage1 = true;
  config.initial.clear();
  for (AgentId a = 0; a < 64; ++a) {
    config.initial.push_back(Seed{a, Opinion::kZero});
  }
  config.correct = Opinion::kZero;
  Probe probe(64, 0.3, std::move(config));
  const StageTwoSchedule& s2 = probe.params.stage2();

  // Exactly threshold samples, all kOne: successful, must flip to kOne.
  for (std::uint64_t i = 0; i < s2.half_length(0); ++i) {
    probe.protocol.deliver(7, Opinion::kOne, static_cast<Round>(i));
  }
  for (Round r = 0; r < s2.m; ++r) probe.protocol.end_round(r);
  EXPECT_EQ(probe.protocol.population().opinion(7), Opinion::kOne);
}

TEST(BreatheInternalsTest, Stage2PrefixRuleUsesArrivalOrder) {
  // threshold one-bits arrive FIRST, then a flood of zero-bits. The prefix
  // rule must decide kOne (prefix is all ones) even though the overall
  // majority of received samples is kZero.
  BreatheConfig config = broadcast_config();
  config.skip_stage1 = true;
  config.stage2_subset = Stage2Subset::kPrefixSubset;
  config.initial.clear();
  for (AgentId a = 0; a < 64; ++a) {
    config.initial.push_back(Seed{a, Opinion::kZero});
  }
  config.correct = Opinion::kZero;
  Probe probe(64, 0.3, std::move(config));
  const StageTwoSchedule& s2 = probe.params.stage2();
  const std::uint64_t threshold = s2.half_length(0);

  Round r = 0;
  for (std::uint64_t i = 0; i < threshold; ++i) {
    probe.protocol.deliver(7, Opinion::kOne, r++);
  }
  for (std::uint64_t i = 0; i < 3 * threshold && r < s2.m; ++i) {
    probe.protocol.deliver(7, Opinion::kZero, r++);
  }
  for (Round rr = 0; rr < s2.m; ++rr) probe.protocol.end_round(rr);
  EXPECT_EQ(probe.protocol.population().opinion(7), Opinion::kOne);
}

TEST(BreatheInternalsTest, Stage2CountersResetBetweenPhases) {
  // Samples from phase 0 must not leak into phase 1's decision.
  BreatheConfig config = broadcast_config();
  config.skip_stage1 = true;
  config.initial.clear();
  for (AgentId a = 0; a < 64; ++a) {
    config.initial.push_back(Seed{a, Opinion::kZero});
  }
  config.correct = Opinion::kZero;
  Probe probe(64, 0.3, std::move(config));
  const StageTwoSchedule& s2 = probe.params.stage2();

  // Phase 0: flood agent 7 with ones (it flips to kOne).
  for (Round r = 0; r < s2.m; ++r) {
    probe.protocol.deliver(7, Opinion::kOne, r);
    probe.protocol.end_round(r);
  }
  EXPECT_EQ(probe.protocol.population().opinion(7), Opinion::kOne);
  // Phase 1: exactly threshold zeros; if phase-0 ones leaked, the majority
  // would stay kOne. It must flip back to kZero.
  for (Round r = s2.m; r < 2 * s2.m; ++r) {
    if (r - s2.m < s2.half_length(1)) {
      probe.protocol.deliver(7, Opinion::kZero, r);
    }
    probe.protocol.end_round(r);
  }
  EXPECT_EQ(probe.protocol.population().opinion(7), Opinion::kZero);
}

TEST(BreatheInternalsTest, MajorityJoinPhaseSkipsEarlierRounds) {
  const Params params = Params::calibrated(1 << 16, 0.3);
  const std::uint64_t join = params.join_phase_for_initial_set(4096);
  ASSERT_GT(join, 0u);
  Xoshiro256 rng(3);
  BreatheProtocol protocol(params, majority_config(params, 4096, 3000), rng);
  // Execution is shorter than a from-phase-0 run by the skipped prefix.
  EXPECT_EQ(protocol.stage1_rounds(),
            params.stage1().total_rounds() - params.stage1().phase_start(join));
}

TEST(BreatheInternalsTest, SkipStage1StartsInStageTwo) {
  BreatheConfig config = broadcast_config();
  config.skip_stage1 = true;
  Probe probe(64, 0.3, std::move(config));
  EXPECT_EQ(probe.protocol.stage1_rounds(), 0u);
  EXPECT_EQ(probe.protocol.total_rounds(),
            probe.params.stage2().total_rounds());
  // Stage II semantics from round 0: everyone opinionated sends.
  std::vector<Message> sends;
  probe.protocol.collect_sends(0, sends);
  EXPECT_EQ(sends.size(), 1u);  // only the source holds an opinion
}

}  // namespace
}  // namespace flip
