// Exactness contract of the batched fast path (sim/batch_engine.hpp):
// for the same (seed, trial), the BatchEngine substrates must produce
// BIT-IDENTICAL results to the classic Engine — same Metrics counters,
// same phase statistics, same probe series, same outcome doubles. No
// tolerance anywhere: the fast path replays the same random draws in the
// same order, so any difference is a bug.

#include "sim/batch_engine.hpp"

#include <gtest/gtest.h>

#include "core/params.hpp"
#include "sim/mailbox.hpp"
#include "sim/population.hpp"
#include "util/thread_pool.hpp"
#include "workload/registry.hpp"
#include "workload/scenarios.hpp"

namespace flip {
namespace {

void expect_series_eq(const std::vector<Sample>& classic,
                      const std::vector<Sample>& fast, const char* what) {
  ASSERT_EQ(classic.size(), fast.size()) << what;
  for (std::size_t i = 0; i < classic.size(); ++i) {
    EXPECT_EQ(classic[i].round, fast[i].round) << what << " @" << i;
    EXPECT_EQ(classic[i].value, fast[i].value) << what << " @" << i;
  }
}

void expect_metrics_eq(const Metrics& classic, const Metrics& fast) {
  EXPECT_EQ(classic.rounds, fast.rounds);
  EXPECT_EQ(classic.messages_sent, fast.messages_sent);
  EXPECT_EQ(classic.delivered, fast.delivered);
  EXPECT_EQ(classic.dropped, fast.dropped);
  EXPECT_EQ(classic.erased, fast.erased);
  EXPECT_EQ(classic.flipped, fast.flipped);
  expect_series_eq(classic.bias_series, fast.bias_series, "bias_series");
  expect_series_eq(classic.activated_series, fast.activated_series,
                   "activated_series");
}

void expect_detail_eq(const RunDetail& classic, const RunDetail& fast) {
  expect_metrics_eq(classic.metrics, fast.metrics);
  EXPECT_EQ(classic.success, fast.success);
  EXPECT_EQ(classic.correct_fraction, fast.correct_fraction);
  EXPECT_EQ(classic.final_bias, fast.final_bias);
  EXPECT_EQ(classic.protocol_rounds, fast.protocol_rounds);
  ASSERT_EQ(classic.stage1.size(), fast.stage1.size());
  for (std::size_t i = 0; i < classic.stage1.size(); ++i) {
    EXPECT_EQ(classic.stage1[i].phase, fast.stage1[i].phase);
    EXPECT_EQ(classic.stage1[i].newly_activated,
              fast.stage1[i].newly_activated);
    EXPECT_EQ(classic.stage1[i].newly_correct, fast.stage1[i].newly_correct);
    EXPECT_EQ(classic.stage1[i].total_activated,
              fast.stage1[i].total_activated);
  }
  ASSERT_EQ(classic.stage2.size(), fast.stage2.size());
  for (std::size_t i = 0; i < classic.stage2.size(); ++i) {
    EXPECT_EQ(classic.stage2[i].phase, fast.stage2[i].phase);
    EXPECT_EQ(classic.stage2[i].successful, fast.stage2[i].successful);
    EXPECT_EQ(classic.stage2[i].correct_fraction,
              fast.stage2[i].correct_fraction);
    EXPECT_EQ(classic.stage2[i].bias, fast.stage2[i].bias);
  }
  EXPECT_EQ(classic.desync_overhead, fast.desync_overhead);
  EXPECT_EQ(classic.clock_sync_rounds, fast.clock_sync_rounds);
  EXPECT_EQ(classic.clock_sync_messages, fast.clock_sync_messages);
  EXPECT_EQ(classic.measured_skew, fast.measured_skew);
}

// --- Deep equivalence on the breathe SoA specialization -----------------

TEST(BatchEngineTest, BroadcastIdenticalToClassic) {
  BroadcastScenario scenario;
  scenario.n = 256;
  scenario.eps = 0.3;
  scenario.probe_every = 16;  // exercises the probe path too
  for (std::size_t trial = 0; trial < 3; ++trial) {
    expect_detail_eq(run_broadcast(scenario, 0x5eed, trial),
                     run_broadcast_fast(scenario, 0x5eed, trial));
  }
}

TEST(BatchEngineTest, BroadcastHeterogeneousIdenticalToClassic) {
  BroadcastScenario scenario;
  scenario.n = 256;
  scenario.eps = 0.3;
  scenario.heterogeneous_noise = true;
  expect_detail_eq(run_broadcast(scenario, 0xfeed, 0),
                   run_broadcast_fast(scenario, 0xfeed, 0));
}

TEST(BatchEngineTest, BroadcastStage1OnlyIdenticalToClassic) {
  BroadcastScenario scenario;
  scenario.n = 256;
  scenario.eps = 0.3;
  scenario.stage1_only = true;
  expect_detail_eq(run_broadcast(scenario, 0x5eed, 0),
                   run_broadcast_fast(scenario, 0x5eed, 0));
}

TEST(BatchEngineTest, BroadcastVariantRulesIdenticalToClassic) {
  BroadcastScenario scenario;
  scenario.n = 256;
  scenario.eps = 0.3;
  scenario.stage1_pick = Stage1Pick::kFirstMessage;
  scenario.stage2_subset = Stage2Subset::kPrefixSubset;
  expect_detail_eq(run_broadcast(scenario, 0x5eed, 1),
                   run_broadcast_fast(scenario, 0x5eed, 1));
}

TEST(BatchEngineTest, MajorityIdenticalToClassic) {
  MajorityScenario scenario;
  scenario.n = 256;
  scenario.initial_set = 32;
  for (std::size_t trial = 0; trial < 2; ++trial) {
    expect_detail_eq(run_majority(scenario, 0x5eed, trial),
                     run_majority_fast(scenario, 0x5eed, trial));
  }
}

TEST(BatchEngineTest, BoostIdenticalToClassic) {
  BoostScenario scenario;
  scenario.n = 512;
  scenario.initial_bias = 0.05;
  expect_detail_eq(run_boost(scenario, 0x5eed, 0),
                   run_boost_fast(scenario, 0x5eed, 0));
}

TEST(BatchEngineTest, DesyncIdenticalToClassic) {
  DesyncScenario scenario;
  scenario.n = 256;
  scenario.eps = 0.3;
  scenario.max_skew = 8;
  expect_detail_eq(run_desync(scenario, 0x5eed, 0),
                   run_desync_fast(scenario, 0x5eed, 0));
}

// A final phase longer than 2^15 rounds overflows the packed Stage II
// counter fields but still fits the wide layout's 21-bit fields, so this
// exercises run_breathe_wide's uniform-subset (hypergeometric) Stage II —
// the one fast-path branch the small default schedules never reach.
TEST(BatchEngineTest, WideLayoutUniformSubsetIdenticalToClassic) {
  Tuning tuning;
  tuning.final_mult = 300.0;  // m_final ~40k: > 2^15, < 2^21
  ASSERT_TRUE(breathe_fast_supported(
      Params::calibrated(256, 0.3, tuning)));

  BroadcastScenario scenario;
  scenario.n = 256;
  scenario.eps = 0.3;
  scenario.tuning = tuning;
  expect_detail_eq(run_broadcast(scenario, 0x5eed, 0),
                   run_broadcast_fast(scenario, 0x5eed, 0));

  BoostScenario boost;
  boost.n = 256;
  boost.eps = 0.3;
  boost.initial_bias = 0.05;
  boost.tuning = tuning;
  expect_detail_eq(run_boost(boost, 0x5eed, 1),
                   run_boost_fast(boost, 0x5eed, 1));
}

// Trials on one BatchEngine recycle its buffers; interleaving different
// scenario shapes through the same thread-local engine must not leak state
// between runs.
TEST(BatchEngineTest, ScratchReuseAcrossMixedTrialsIsClean) {
  BroadcastScenario big;
  big.n = 512;
  big.eps = 0.25;
  BroadcastScenario small;
  small.n = 128;
  small.eps = 0.3;
  const RunDetail fresh_small = run_broadcast_fast(small, 0x5eed, 0);
  (void)run_broadcast_fast(big, 0x5eed, 0);       // dirty the scratch, larger n
  const RunDetail reused_small = run_broadcast_fast(small, 0x5eed, 0);
  expect_detail_eq(fresh_small, reused_small);
}

// --- Every registry entry: batch and classic modes agree exactly --------

TEST(BatchEngineTest, EveryRegistryEntryIdenticalOutcomes) {
  const ScenarioRegistry& registry = ScenarioRegistry::instance();
  for (const ScenarioInfo* info : registry.list()) {
    ScenarioOverrides batch_overrides;
    batch_overrides.n = std::min<std::size_t>(info->default_n, 256);
    batch_overrides.engine = EngineMode::kBatch;
    ScenarioOverrides classic_overrides = batch_overrides;
    classic_overrides.engine = EngineMode::kClassic;

    const TrialFn batch_fn = registry.make(info->name, batch_overrides);
    const TrialFn classic_fn = registry.make(info->name, classic_overrides);
    for (std::size_t trial = 0; trial < 2; ++trial) {
      const TrialOutcome batch = batch_fn(0x5eed, trial);
      const TrialOutcome classic = classic_fn(0x5eed, trial);
      EXPECT_EQ(classic.success, batch.success) << info->name << " " << trial;
      EXPECT_EQ(classic.rounds, batch.rounds) << info->name << " " << trial;
      EXPECT_EQ(classic.messages, batch.messages)
          << info->name << " " << trial;
      EXPECT_EQ(classic.correct_fraction, batch.correct_fraction)
          << info->name << " " << trial;
    }
  }
}

// --- Support predicate and fallback -------------------------------------

TEST(BatchEngineTest, SupportPredicateAcceptsExperimentSchedules) {
  EXPECT_TRUE(breathe_fast_supported(Params::calibrated(1024, 0.2)));
  EXPECT_TRUE(breathe_fast_supported(Params::calibrated(100000, 0.2)));
}

TEST(BatchEngineTest, SupportPredicateRejectsOverlongPhases) {
  // eps = 0.003 gives Stage II phases of ~4M rounds — past the 21-bit
  // packed counter fields, so the fast path must decline (and the trial
  // fns fall back to the classic engine).
  EXPECT_FALSE(breathe_fast_supported(Params::calibrated(1024, 0.003)));
}

// --- Reuse modes behave like fresh construction -------------------------

TEST(BatchEngineTest, MailboxReuseMatchesFreshConstruction) {
  Xoshiro256 rng_fresh(42);
  Xoshiro256 rng_reused(42);
  Mailbox fresh(64);
  Mailbox reused(8);
  reused.push(Message{1, Opinion::kOne}, rng_reused);  // dirty it
  Xoshiro256 discard(7);
  reused.reuse(64);
  rng_reused = Xoshiro256(42);
  for (AgentId a = 0; a < 64; ++a) {
    fresh.push(Message{a, Opinion::kOne}, rng_fresh);
    reused.push(Message{a, Opinion::kOne}, rng_reused);
  }
  ASSERT_EQ(fresh.recipients().size(), reused.recipients().size());
  EXPECT_EQ(fresh.pushed_this_round(), reused.pushed_this_round());
  EXPECT_EQ(fresh.dropped_this_round(), reused.dropped_this_round());
  for (std::size_t i = 0; i < fresh.recipients().size(); ++i) {
    const AgentId to = fresh.recipients()[i];
    EXPECT_EQ(to, reused.recipients()[i]);
    EXPECT_EQ(fresh.arrivals(to), reused.arrivals(to));
    EXPECT_EQ(fresh.accepted(to).sender, reused.accepted(to).sender);
  }
}

TEST(BatchEngineTest, MailboxReuseRejectsTinyPopulations) {
  Mailbox mailbox(8);
  EXPECT_THROW(mailbox.reuse(1), std::invalid_argument);
}

TEST(BatchEngineTest, PopulationReuseClearsEverything) {
  Population pop(8);
  pop.set_opinion(3, Opinion::kOne);
  pop.set_opinion(4, Opinion::kZero);
  pop.reuse(16);
  EXPECT_EQ(pop.size(), 16u);
  EXPECT_EQ(pop.opinionated(), 0u);
  EXPECT_EQ(pop.count(Opinion::kOne), 0u);
  EXPECT_FALSE(pop.has_opinion(3));
}

// --- Persistent sized pools ---------------------------------------------

TEST(BatchEngineTest, SizedPoolsArePersistentAndCachedBySize) {
  ThreadPool& a = ThreadPool::sized(3);
  ThreadPool& b = ThreadPool::sized(3);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(&ThreadPool::sized(0), &ThreadPool::shared());
  EXPECT_NE(&ThreadPool::sized(2), &a);
}

}  // namespace
}  // namespace flip
