// Exactness contract of the batched fast path (sim/batch_engine.hpp):
// for the same (seed, trial), the BatchEngine substrates must produce
// BIT-IDENTICAL results to the classic Engine — same Metrics counters,
// same phase statistics, same probe series, same outcome doubles — and the
// sharded substrate must produce bit-identical results for EVERY shard
// count. No tolerance anywhere: every draw comes from the same
// counter-keyed per-agent stream, so any difference is a bug.

#include "sim/batch_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/environment.hpp"
#include "core/params.hpp"
#include "sim/mailbox.hpp"
#include "sim/population.hpp"
#include "util/thread_pool.hpp"
#include "workload/registry.hpp"
#include "workload/scenarios.hpp"

namespace flip {
namespace {

void expect_series_eq(const std::vector<Sample>& classic,
                      const std::vector<Sample>& fast, const char* what) {
  ASSERT_EQ(classic.size(), fast.size()) << what;
  for (std::size_t i = 0; i < classic.size(); ++i) {
    EXPECT_EQ(classic[i].round, fast[i].round) << what << " @" << i;
    EXPECT_EQ(classic[i].value, fast[i].value) << what << " @" << i;
  }
}

void expect_metrics_eq(const Metrics& classic, const Metrics& fast) {
  EXPECT_EQ(classic.rounds, fast.rounds);
  EXPECT_EQ(classic.messages_sent, fast.messages_sent);
  EXPECT_EQ(classic.delivered, fast.delivered);
  EXPECT_EQ(classic.dropped, fast.dropped);
  EXPECT_EQ(classic.erased, fast.erased);
  EXPECT_EQ(classic.flipped, fast.flipped);
  expect_series_eq(classic.bias_series, fast.bias_series, "bias_series");
  expect_series_eq(classic.activated_series, fast.activated_series,
                   "activated_series");
}

/// Exact equality that treats NaN == NaN (convergence rounds are NaN when
/// a run records no probes or never converges).
void expect_double_eq_nan(double a, double b, const char* what) {
  if (std::isnan(a) && std::isnan(b)) return;
  EXPECT_EQ(a, b) << what;
}

void expect_detail_eq(const RunDetail& classic, const RunDetail& fast) {
  expect_metrics_eq(classic.metrics, fast.metrics);
  expect_double_eq_nan(classic.convergence_round, fast.convergence_round,
                       "convergence_round");
  EXPECT_EQ(classic.success, fast.success);
  EXPECT_EQ(classic.correct_fraction, fast.correct_fraction);
  EXPECT_EQ(classic.final_bias, fast.final_bias);
  EXPECT_EQ(classic.protocol_rounds, fast.protocol_rounds);
  ASSERT_EQ(classic.stage1.size(), fast.stage1.size());
  for (std::size_t i = 0; i < classic.stage1.size(); ++i) {
    EXPECT_EQ(classic.stage1[i].phase, fast.stage1[i].phase);
    EXPECT_EQ(classic.stage1[i].newly_activated,
              fast.stage1[i].newly_activated);
    EXPECT_EQ(classic.stage1[i].newly_correct, fast.stage1[i].newly_correct);
    EXPECT_EQ(classic.stage1[i].total_activated,
              fast.stage1[i].total_activated);
  }
  ASSERT_EQ(classic.stage2.size(), fast.stage2.size());
  for (std::size_t i = 0; i < classic.stage2.size(); ++i) {
    EXPECT_EQ(classic.stage2[i].phase, fast.stage2[i].phase);
    EXPECT_EQ(classic.stage2[i].successful, fast.stage2[i].successful);
    EXPECT_EQ(classic.stage2[i].correct_fraction,
              fast.stage2[i].correct_fraction);
    EXPECT_EQ(classic.stage2[i].bias, fast.stage2[i].bias);
  }
  EXPECT_EQ(classic.desync_overhead, fast.desync_overhead);
  EXPECT_EQ(classic.clock_sync_rounds, fast.clock_sync_rounds);
  EXPECT_EQ(classic.clock_sync_messages, fast.clock_sync_messages);
  EXPECT_EQ(classic.measured_skew, fast.measured_skew);
}

/// The scenario on a given substrate / shard count.
template <typename Scenario>
Scenario on(Scenario scenario, EngineMode engine, std::size_t shards = 1) {
  scenario.engine = engine;
  scenario.shards = shards;
  return scenario;
}

// --- Deep equivalence on the breathe SoA specialization -----------------

TEST(BatchEngineTest, BroadcastIdenticalToClassic) {
  BroadcastScenario scenario;
  scenario.n = 256;
  scenario.eps = 0.3;
  scenario.probe_every = 16;  // exercises the probe path too
  for (std::size_t trial = 0; trial < 3; ++trial) {
    expect_detail_eq(run_broadcast(on(scenario, EngineMode::kClassic),
                                   0x5eed, trial),
                     run_broadcast(on(scenario, EngineMode::kBatch),
                                   0x5eed, trial));
  }
}

TEST(BatchEngineTest, BroadcastHeterogeneousIdenticalToClassic) {
  BroadcastScenario scenario;
  scenario.n = 256;
  scenario.eps = 0.3;
  scenario.heterogeneous_noise = true;
  expect_detail_eq(run_broadcast(on(scenario, EngineMode::kClassic), 0xfeed, 0),
                   run_broadcast(on(scenario, EngineMode::kBatch), 0xfeed, 0));
}

TEST(BatchEngineTest, BroadcastStage1OnlyIdenticalToClassic) {
  BroadcastScenario scenario;
  scenario.n = 256;
  scenario.eps = 0.3;
  scenario.stage1_only = true;
  expect_detail_eq(run_broadcast(on(scenario, EngineMode::kClassic), 0x5eed, 0),
                   run_broadcast(on(scenario, EngineMode::kBatch), 0x5eed, 0));
}

TEST(BatchEngineTest, BroadcastVariantRulesIdenticalToClassic) {
  BroadcastScenario scenario;
  scenario.n = 256;
  scenario.eps = 0.3;
  scenario.stage1_pick = Stage1Pick::kFirstMessage;
  scenario.stage2_subset = Stage2Subset::kPrefixSubset;
  expect_detail_eq(run_broadcast(on(scenario, EngineMode::kClassic), 0x5eed, 1),
                   run_broadcast(on(scenario, EngineMode::kBatch), 0x5eed, 1));
}

TEST(BatchEngineTest, MajorityIdenticalToClassic) {
  MajorityScenario scenario;
  scenario.n = 256;
  scenario.initial_set = 32;
  for (std::size_t trial = 0; trial < 2; ++trial) {
    expect_detail_eq(run_majority(on(scenario, EngineMode::kClassic),
                                  0x5eed, trial),
                     run_majority(on(scenario, EngineMode::kBatch),
                                  0x5eed, trial));
  }
}

TEST(BatchEngineTest, BoostIdenticalToClassic) {
  BoostScenario scenario;
  scenario.n = 512;
  scenario.initial_bias = 0.05;
  expect_detail_eq(run_boost(on(scenario, EngineMode::kClassic), 0x5eed, 0),
                   run_boost(on(scenario, EngineMode::kBatch), 0x5eed, 0));
}

TEST(BatchEngineTest, DesyncIdenticalToClassic) {
  DesyncScenario scenario;
  scenario.n = 256;
  scenario.eps = 0.3;
  scenario.max_skew = 8;
  expect_detail_eq(run_desync(on(scenario, EngineMode::kClassic), 0x5eed, 0),
                   run_desync(on(scenario, EngineMode::kBatch), 0x5eed, 0));
}

// --- Dynamic environments: schedules and churn --------------------------
// The new layer must obey the same contract as everything else: classic ==
// batch == any shard count, bit for bit, for every Metrics counter and
// probe sample. These run with probes on so the convergence statistic is
// covered too.

BroadcastScenario dynamic_broadcast() {
  BroadcastScenario scenario;
  scenario.n = 256;
  scenario.eps = 0.3;
  scenario.probe_every = 8;
  return scenario;
}

TEST(BatchEngineTest, EpsRampIdenticalToClassicAndShardInvariant) {
  BroadcastScenario scenario = dynamic_broadcast();
  scenario.schedule = EnvironmentSchedule::parse("ramp:0.4:0.15");
  const RunDetail classic =
      run_broadcast(on(scenario, EngineMode::kClassic), 0x5eed, 0);
  const RunDetail batch =
      run_broadcast(on(scenario, EngineMode::kBatch), 0x5eed, 0);
  expect_detail_eq(classic, batch);
  expect_detail_eq(batch,
                   run_broadcast(on(scenario, EngineMode::kBatch, 8),
                                 0x5eed, 0));
}

TEST(BatchEngineTest, NoiseBurstsIdenticalToClassicAndShardInvariant) {
  BroadcastScenario scenario = dynamic_broadcast();
  scenario.schedule = EnvironmentSchedule::parse("burst:0.1:16:0.02");
  for (std::size_t trial = 0; trial < 2; ++trial) {
    const RunDetail classic =
        run_broadcast(on(scenario, EngineMode::kClassic), 0x5eed, trial);
    const RunDetail batch =
        run_broadcast(on(scenario, EngineMode::kBatch), 0x5eed, trial);
    expect_detail_eq(classic, batch);
    expect_detail_eq(batch,
                     run_broadcast(on(scenario, EngineMode::kBatch, 7),
                                   0x5eed, trial));
  }
}

TEST(BatchEngineTest, ChurnIdenticalToClassicAndShardInvariant) {
  BroadcastScenario scenario = dynamic_broadcast();
  scenario.churn = ChurnSpec::parse("0.01:0.1:0.25");
  for (std::size_t trial = 0; trial < 2; ++trial) {
    const RunDetail classic =
        run_broadcast(on(scenario, EngineMode::kClassic), 0x5eed, trial);
    const RunDetail batch =
        run_broadcast(on(scenario, EngineMode::kBatch), 0x5eed, trial);
    expect_detail_eq(classic, batch);
    for (const std::size_t shards : {3, 8}) {
      expect_detail_eq(batch,
                       run_broadcast(on(scenario, EngineMode::kBatch,
                                        shards),
                                     0x5eed, trial));
    }
  }
}

TEST(BatchEngineTest, ChurnAndScheduleComposeAcrossSubstrates) {
  BroadcastScenario scenario = dynamic_broadcast();
  scenario.schedule = EnvironmentSchedule::parse("step:64:0.15");
  scenario.churn = ChurnSpec::parse("0.005:0.1");
  const RunDetail classic =
      run_broadcast(on(scenario, EngineMode::kClassic), 0xfeed, 0);
  const RunDetail batch =
      run_broadcast(on(scenario, EngineMode::kBatch), 0xfeed, 0);
  expect_detail_eq(classic, batch);
  expect_detail_eq(batch,
                   run_broadcast(on(scenario, EngineMode::kBatch, 8),
                                 0xfeed, 0));
}

TEST(BatchEngineTest, MajorityChurnIdenticalAcrossSubstrates) {
  MajorityScenario scenario;
  scenario.n = 256;
  scenario.initial_set = 32;
  scenario.probe_every = 8;
  scenario.churn = ChurnSpec::parse("0.005:0.1:0.25");
  const RunDetail classic =
      run_majority(on(scenario, EngineMode::kClassic), 0x5eed, 0);
  const RunDetail batch =
      run_majority(on(scenario, EngineMode::kBatch), 0x5eed, 0);
  expect_detail_eq(classic, batch);
  expect_detail_eq(batch,
                   run_majority(on(scenario, EngineMode::kBatch, 8),
                                0x5eed, 0));
}

TEST(BatchEngineTest, DesyncBurstIdenticalAcrossSubstrates) {
  DesyncScenario scenario;
  scenario.n = 256;
  scenario.eps = 0.3;
  scenario.max_skew = 8;
  scenario.schedule = EnvironmentSchedule::parse("burst:0.1:8:0.02");
  expect_detail_eq(run_desync(on(scenario, EngineMode::kClassic), 0x5eed, 0),
                   run_desync(on(scenario, EngineMode::kBatch), 0x5eed, 0));
}

// Churn conservation: every sent message is accounted for exactly once —
// delivered, dropped (collision or asleep recipient), or erased (never
// here). Catches double-counted or lost asleep drops in the shard merge.
TEST(BatchEngineTest, ChurnCountersConserveMessages) {
  BroadcastScenario scenario = dynamic_broadcast();
  scenario.churn = ChurnSpec::parse("0.01:0.1:0.25");
  for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
    const RunDetail detail =
        run_broadcast(on(scenario, EngineMode::kBatch, shards), 0x5eed, 0);
    const Metrics& m = detail.metrics;
    EXPECT_EQ(m.messages_sent, m.delivered + m.dropped + m.erased);
    EXPECT_GT(m.dropped, 0u);  // churn at 25% start-asleep must drop some
  }
}

// --- Shard-count invariance ---------------------------------------------
// The contract's new clause: the batch substrate partitioned into ANY
// number of shards produces the same bits as one shard — which the tests
// above tie to the classic reference. 3 is deliberately coprime with the
// population sizes (uneven last shard), 8 exceeds this machine's cores.

TEST(BatchEngineTest, BroadcastShardCountInvariant) {
  BroadcastScenario scenario;
  scenario.n = 256;
  scenario.eps = 0.3;
  scenario.probe_every = 16;
  const RunDetail one = run_broadcast(on(scenario, EngineMode::kBatch, 1),
                                      0x5eed, 0);
  for (const std::size_t shards : {2, 3, 8}) {
    expect_detail_eq(one, run_broadcast(on(scenario, EngineMode::kBatch,
                                           shards),
                                        0x5eed, 0));
  }
}

TEST(BatchEngineTest, BroadcastHeterogeneousShardCountInvariant) {
  BroadcastScenario scenario;
  scenario.n = 256;
  scenario.eps = 0.3;
  scenario.heterogeneous_noise = true;
  expect_detail_eq(
      run_broadcast(on(scenario, EngineMode::kBatch, 1), 0xfeed, 0),
      run_broadcast(on(scenario, EngineMode::kBatch, 8), 0xfeed, 0));
}

TEST(BatchEngineTest, BroadcastVariantRulesShardCountInvariant) {
  BroadcastScenario scenario;
  scenario.n = 256;
  scenario.eps = 0.3;
  scenario.stage1_pick = Stage1Pick::kFirstMessage;
  scenario.stage2_subset = Stage2Subset::kPrefixSubset;
  expect_detail_eq(
      run_broadcast(on(scenario, EngineMode::kBatch, 1), 0x5eed, 1),
      run_broadcast(on(scenario, EngineMode::kBatch, 5), 0x5eed, 1));
}

TEST(BatchEngineTest, MajorityShardCountInvariant) {
  MajorityScenario scenario;
  scenario.n = 256;
  scenario.initial_set = 32;
  expect_detail_eq(
      run_majority(on(scenario, EngineMode::kBatch, 1), 0x5eed, 0),
      run_majority(on(scenario, EngineMode::kBatch, 7), 0x5eed, 0));
}

TEST(BatchEngineTest, BoostShardCountInvariant) {
  BoostScenario scenario;
  scenario.n = 512;
  scenario.initial_bias = 0.05;
  expect_detail_eq(run_boost(on(scenario, EngineMode::kBatch, 1), 0x5eed, 0),
                   run_boost(on(scenario, EngineMode::kBatch, 8), 0x5eed, 0));
}

TEST(BatchEngineTest, ShardsBeyondPopulationClampHarmlessly) {
  BroadcastScenario scenario;
  scenario.n = 64;
  scenario.eps = 0.3;
  expect_detail_eq(
      run_broadcast(on(scenario, EngineMode::kBatch, 1), 0x5eed, 0),
      run_broadcast(on(scenario, EngineMode::kBatch, 200), 0x5eed, 0));
}

// --- Every registry entry: batch, classic, and sharded agree exactly ----

/// Full TrialOutcome equality: the outcome doubles AND the Metrics
/// counters. The counter fields are the point — TrialOutcome-only equality
/// was blind to a shard merge that loses or double-counts deliveries while
/// leaving success/rounds untouched.
void expect_outcome_eq(const TrialOutcome& a, const TrialOutcome& b,
                       const std::string& what) {
  EXPECT_EQ(a.success, b.success) << what;
  EXPECT_EQ(a.rounds, b.rounds) << what;
  EXPECT_EQ(a.messages, b.messages) << what;
  EXPECT_EQ(a.correct_fraction, b.correct_fraction) << what;
  expect_double_eq_nan(a.convergence_round, b.convergence_round,
                       what.c_str());
  EXPECT_EQ(a.delivered, b.delivered) << what;
  EXPECT_EQ(a.dropped, b.dropped) << what;
  EXPECT_EQ(a.erased, b.erased) << what;
  EXPECT_EQ(a.flipped, b.flipped) << what;
}

TEST(BatchEngineTest, EveryRegistryEntryIdenticalOutcomes) {
  const ScenarioRegistry& registry = ScenarioRegistry::instance();
  for (const ScenarioInfo* info : registry.list()) {
    ScenarioOverrides batch_overrides;
    batch_overrides.n = std::min<std::size_t>(info->default_n, 256);
    batch_overrides.engine = EngineMode::kBatch;
    ScenarioOverrides classic_overrides = batch_overrides;
    classic_overrides.engine = EngineMode::kClassic;
    ScenarioOverrides sharded_overrides = batch_overrides;
    sharded_overrides.shards = 8;

    const TrialFn batch_fn = registry.make(info->name, batch_overrides);
    const TrialFn classic_fn = registry.make(info->name, classic_overrides);
    const TrialFn sharded_fn = registry.make(info->name, sharded_overrides);
    for (std::size_t trial = 0; trial < 2; ++trial) {
      const TrialOutcome batch = batch_fn(0x5eed, trial);
      const TrialOutcome classic = classic_fn(0x5eed, trial);
      const TrialOutcome sharded = sharded_fn(0x5eed, trial);
      const std::string what =
          info->name + " trial " + std::to_string(trial);
      expect_outcome_eq(classic, batch, what + " (classic vs batch)");
      expect_outcome_eq(batch, sharded, what + " (batch vs 8 shards)");
    }
  }
}

// --- Long Stage II phases (upper end of the 21-bit counter fields) ------

TEST(BatchEngineTest, LongFinalPhaseIdenticalToClassic) {
  Tuning tuning;
  tuning.final_mult = 300.0;  // m_final ~40k rounds, still < 2^21
  ASSERT_TRUE(breathe_fast_supported(
      Params::calibrated(256, 0.3, tuning)));

  BroadcastScenario scenario;
  scenario.n = 256;
  scenario.eps = 0.3;
  scenario.tuning = tuning;
  expect_detail_eq(run_broadcast(on(scenario, EngineMode::kClassic), 0x5eed, 0),
                   run_broadcast(on(scenario, EngineMode::kBatch), 0x5eed, 0));

  BoostScenario boost;
  boost.n = 256;
  boost.eps = 0.3;
  boost.initial_bias = 0.05;
  boost.tuning = tuning;
  expect_detail_eq(run_boost(on(boost, EngineMode::kClassic), 0x5eed, 1),
                   run_boost(on(boost, EngineMode::kBatch), 0x5eed, 1));
}

// Trials on one BatchEngine recycle its buffers; interleaving different
// scenario shapes (and shard counts) through the same thread-local engine
// must not leak state between runs.
TEST(BatchEngineTest, ScratchReuseAcrossMixedTrialsIsClean) {
  BroadcastScenario big;
  big.n = 512;
  big.eps = 0.25;
  big.shards = 4;
  BroadcastScenario small;
  small.n = 128;
  small.eps = 0.3;
  const RunDetail fresh_small = run_broadcast(small, 0x5eed, 0);
  (void)run_broadcast(big, 0x5eed, 0);  // dirty the scratch: larger n, sharded
  const RunDetail reused_small = run_broadcast(small, 0x5eed, 0);
  expect_detail_eq(fresh_small, reused_small);
}

// --- Support predicate and fallback -------------------------------------

TEST(BatchEngineTest, SupportPredicateAcceptsExperimentSchedules) {
  EXPECT_TRUE(breathe_fast_supported(Params::calibrated(1024, 0.2)));
  EXPECT_TRUE(breathe_fast_supported(Params::calibrated(100000, 0.2)));
}

TEST(BatchEngineTest, SupportPredicateRejectsOverlongPhases) {
  // eps = 0.003 gives Stage II phases of ~4M rounds — past the 21-bit
  // packed counter fields, so the fast path must decline (and the trial
  // fns fall back to the classic engine).
  EXPECT_FALSE(breathe_fast_supported(Params::calibrated(1024, 0.003)));
}

// --- Reuse modes behave like fresh construction -------------------------

TEST(BatchEngineTest, MailboxReuseMatchesFreshConstruction) {
  Xoshiro256 rng_fresh(42);
  Xoshiro256 rng_reused(42);
  Mailbox fresh(64);
  Mailbox reused(8);
  reused.push(Message{1, Opinion::kOne}, rng_reused);  // dirty it
  Xoshiro256 discard(7);
  reused.reuse(64);
  rng_reused = Xoshiro256(42);
  for (AgentId a = 0; a < 64; ++a) {
    fresh.push(Message{a, Opinion::kOne}, rng_fresh);
    reused.push(Message{a, Opinion::kOne}, rng_reused);
  }
  ASSERT_EQ(fresh.recipients().size(), reused.recipients().size());
  EXPECT_EQ(fresh.pushed_this_round(), reused.pushed_this_round());
  EXPECT_EQ(fresh.dropped_this_round(), reused.dropped_this_round());
  for (std::size_t i = 0; i < fresh.recipients().size(); ++i) {
    const AgentId to = fresh.recipients()[i];
    EXPECT_EQ(to, reused.recipients()[i]);
    EXPECT_EQ(fresh.arrivals(to), reused.arrivals(to));
    EXPECT_EQ(fresh.accepted(to).sender, reused.accepted(to).sender);
  }
}

TEST(BatchEngineTest, MailboxReuseRejectsTinyPopulations) {
  Mailbox mailbox(8);
  EXPECT_THROW(mailbox.reuse(1), std::invalid_argument);
}

TEST(BatchEngineTest, PopulationReuseClearsEverything) {
  Population pop(8);
  pop.set_opinion(3, Opinion::kOne);
  pop.set_opinion(4, Opinion::kZero);
  pop.reuse(16);
  EXPECT_EQ(pop.size(), 16u);
  EXPECT_EQ(pop.opinionated(), 0u);
  EXPECT_EQ(pop.count(Opinion::kOne), 0u);
  EXPECT_FALSE(pop.has_opinion(3));
}

TEST(BatchEngineTest, PopulationCountedUpdatesMatchDirectOnes) {
  Population direct(16);
  Population counted(16);
  Population::Delta delta;
  direct.set_opinion(3, Opinion::kOne);
  direct.set_opinion(4, Opinion::kZero);
  direct.set_opinion(3, Opinion::kZero);  // re-decision
  counted.set_opinion_counted(3, Opinion::kOne, delta);
  counted.set_opinion_counted(4, Opinion::kZero, delta);
  counted.set_opinion_counted(3, Opinion::kZero, delta);
  counted.apply(delta);
  EXPECT_EQ(direct.opinionated(), counted.opinionated());
  EXPECT_EQ(direct.count(Opinion::kOne), counted.count(Opinion::kOne));
  EXPECT_EQ(direct.count(Opinion::kZero), counted.count(Opinion::kZero));
}

// --- Persistent sized pools ---------------------------------------------

TEST(BatchEngineTest, SizedPoolsArePersistentAndCachedBySize) {
  ThreadPool& a = ThreadPool::sized(3);
  ThreadPool& b = ThreadPool::sized(3);
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.size(), 3u);
  EXPECT_EQ(&ThreadPool::sized(0), &ThreadPool::shared());
  EXPECT_NE(&ThreadPool::sized(2), &a);
}

}  // namespace
}  // namespace flip
