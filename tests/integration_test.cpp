// End-to-end checks of the paper's headline claims at test-sized n, plus
// failure-injection runs probing the protocol outside its guarantees.

#include <gtest/gtest.h>

#include "core/breathe.hpp"
#include "core/theory.hpp"
#include "net/channel.hpp"
#include "sim/engine.hpp"
#include "workload/scenarios.hpp"

namespace flip {
namespace {

TEST(IntegrationTest, BroadcastSucceedsWithHighProbability) {
  BroadcastScenario scenario;
  scenario.n = 1024;
  scenario.eps = 0.25;
  TrialOptions options;
  options.trials = 24;
  options.master_seed = 2024;
  const TrialSummary summary =
      run_trials(broadcast_trial_fn(scenario), options);
  EXPECT_GE(summary.successes, 23u)
      << "success " << summary.success.to_string();
}

TEST(IntegrationTest, RoundsAreWithinTheoryBand) {
  // Theorem 2.17: O(log n / eps^2) rounds. With calibrated constants the
  // multiple should stay in a fixed band.
  BroadcastScenario scenario;
  scenario.n = 2048;
  scenario.eps = 0.25;
  const RunDetail detail = run_broadcast(scenario, 5, 0);
  const double unit = theory::round_unit(scenario.n, scenario.eps);
  const double multiple = static_cast<double>(detail.metrics.rounds) / unit;
  EXPECT_GT(multiple, 1.0);
  EXPECT_LT(multiple, 40.0);
}

TEST(IntegrationTest, MessagesAreWithinTheoryBand) {
  BroadcastScenario scenario;
  scenario.n = 2048;
  scenario.eps = 0.25;
  const RunDetail detail = run_broadcast(scenario, 6, 0);
  const double unit = theory::message_unit(scenario.n, scenario.eps);
  const double multiple =
      static_cast<double>(detail.metrics.messages_sent) / unit;
  // Above the per-agent information-theoretic lower bound's scale and
  // below a fixed constant of the upper bound.
  EXPECT_GT(multiple, 0.5);
  EXPECT_LT(multiple, 40.0);
}

TEST(IntegrationTest, MajoritySucceedsAboveThresholdFailsFarBelow) {
  // Corollary 2.18 needs majority-bias Omega(sqrt(log n/|A|)). Far below
  // that the initial signal drowns: the protocol cannot guarantee the
  // majority opinion (it may still end unanimous — on either value).
  MajorityScenario good;
  good.n = 1024;
  good.eps = 0.3;
  good.initial_set = 256;
  good.majority_bias = 0.4;
  TrialOptions options;
  options.trials = 16;
  const TrialSummary good_summary =
      run_trials(majority_trial_fn(good), options);
  EXPECT_GE(good_summary.successes, 15u);

  MajorityScenario bad = good;
  bad.initial_set = 64;
  bad.majority_bias = 1.0 / 64.0;  // a one-agent majority: 33 vs 31
  TrialOptions bad_options;
  bad_options.trials = 24;
  const TrialSummary bad_summary =
      run_trials(majority_trial_fn(bad), bad_options);
  // No guarantee this far below the sqrt(log n/|A|) threshold: a visible
  // fraction of runs must converge to the minority opinion.
  EXPECT_LT(bad_summary.successes, 21u)
      << "success " << bad_summary.success.to_string();
}

TEST(IntegrationTest, StageOneOutputBiasIsPositiveAndSmall) {
  // Lemma 2.3: Stage I ends with all agents activated and bias
  // Omega(sqrt(log n / n)) — positive but far from consensus, which is
  // exactly why Stage II exists.
  BroadcastScenario scenario;
  scenario.n = 4096;
  scenario.eps = 0.25;
  int positive = 0;
  constexpr int kTrials = 8;
  for (int t = 0; t < kTrials; ++t) {
    const RunDetail detail = run_broadcast(scenario, 77, t);
    ASSERT_FALSE(detail.stage1.empty());
    const auto& last = detail.stage1.back();
    EXPECT_EQ(last.total_activated, scenario.n) << "trial " << t;
    // Sum layer stats into the overall initial bias.
    double correct = 1.0;  // the source
    double total = 1.0;
    for (const auto& s : detail.stage1) {
      correct += static_cast<double>(s.newly_correct);
      total += static_cast<double>(s.newly_activated);
    }
    const double bias = 0.5 * (2.0 * correct - total) / total;
    if (bias > 0.0) ++positive;
  }
  EXPECT_GE(positive, kTrials - 1);
}

TEST(IntegrationTest, ChannelAtMaxNoiseStillWorks) {
  // eps barely above the usable range's floor for this n: slower schedule
  // but still correct.
  BroadcastScenario scenario;
  scenario.n = 256;
  scenario.eps = 0.45;  // very mild noise
  const RunDetail detail = run_broadcast(scenario, 13, 0);
  EXPECT_TRUE(detail.success);
}

TEST(IntegrationTest, FailureInjectionErasureChannel) {
  // Outside the model: 20% of messages destroyed on top of the flips.
  // The schedule's slack absorbs it — agents just collect fewer samples.
  const std::size_t n = 512;
  const double eps = 0.3;
  const Params params = Params::calibrated(n, eps);
  Xoshiro256 engine_rng(101);
  Xoshiro256 protocol_rng(102);
  ErasureChannel channel(eps, 0.2);
  Engine engine(n, channel, engine_rng);
  BreatheProtocol protocol(params, broadcast_config(), protocol_rng);
  const Metrics metrics = engine.run(protocol, protocol.total_rounds());
  EXPECT_GT(metrics.erased, 0u);
  EXPECT_GE(protocol.population().correct_fraction(Opinion::kOne), 0.99);
}

TEST(IntegrationTest, FailureInjectionAdversarialPrefixFlips) {
  // Outside the model: an adversary flips the FIRST budget messages — the
  // worst case for phase 0, which seeds the initial bias. With a budget
  // beyond beta_s the entire seed layer is inverted and the run converges
  // to the WRONG opinion: stochastic noise is essential to the guarantee.
  const std::size_t n = 512;
  const double eps = 0.3;
  const Params params = Params::calibrated(n, eps);
  Xoshiro256 engine_rng(103);
  Xoshiro256 protocol_rng(104);
  AdversarialChannel channel(2 * params.stage1().beta_s);
  Engine engine(n, channel, engine_rng);
  BreatheProtocol protocol(params, broadcast_config(), protocol_rng);
  engine.run(protocol, protocol.total_rounds());
  EXPECT_LT(protocol.population().correct_fraction(Opinion::kOne), 0.5);
}

TEST(IntegrationTest, SymmetryAcrossOpinionValues) {
  // A symmetric algorithm must behave identically for B = 0 and B = 1
  // under matched randomness: same message pattern, mirrored content.
  BroadcastScenario one;
  one.n = 512;
  one.eps = 0.3;
  one.correct = Opinion::kOne;
  BroadcastScenario zero = one;
  zero.correct = Opinion::kZero;
  const RunDetail d1 = run_broadcast(one, 31, 0);
  const RunDetail d0 = run_broadcast(zero, 31, 0);
  EXPECT_EQ(d1.metrics.messages_sent, d0.metrics.messages_sent);
  EXPECT_EQ(d1.metrics.rounds, d0.metrics.rounds);
  EXPECT_EQ(d1.success, d0.success);
}

}  // namespace
}  // namespace flip
