// Unit suite for the interaction-graph layer (src/core/topology.*): the
// parse grammar and its error messages, spec validation, n-dependent
// resolution (degree, grid factorization), and the neighbor/recipient
// arithmetic itself. The properties pinned here — neighbors in range and
// never self, determinism in (key, agent, edge), smallworld at p = 0
// degenerating to the ring, the complete-graph recipient() consuming
// exactly the historical words — are what the engine-level differential
// suites lean on one layer up.

#include "core/topology.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/proptest.hpp"
#include "util/rng.hpp"

namespace flip {
namespace {

/// Runs `fn`, expecting std::invalid_argument whose message contains every
/// given fragment — the error-message contract is part of the CLI surface.
template <typename Fn>
void expect_invalid(Fn fn, const std::vector<std::string>& fragments) {
  try {
    fn();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    for (const std::string& fragment : fragments) {
      EXPECT_NE(what.find(fragment), std::string::npos)
          << "message '" << what << "' lacks '" << fragment << "'";
    }
  }
}

TEST(TopologySpecTest, ParseGrammarCoversEveryFamilyAndDefault) {
  EXPECT_EQ(TopologySpec::parse("complete"), TopologySpec{});

  const TopologySpec ring = TopologySpec::parse("ring");
  EXPECT_EQ(ring.kind, TopologyKind::kRing);
  EXPECT_EQ(ring.k, 8u);
  EXPECT_EQ(TopologySpec::parse("ring:4").k, 4u);

  const TopologySpec grid = TopologySpec::parse("grid");
  EXPECT_EQ(grid.kind, TopologyKind::kGrid);
  EXPECT_EQ(grid.radius, 1u);
  EXPECT_EQ(TopologySpec::parse("grid:2").radius, 2u);

  const TopologySpec sw = TopologySpec::parse("smallworld");
  EXPECT_EQ(sw.kind, TopologyKind::kSmallWorld);
  EXPECT_EQ(sw.k, 8u);
  EXPECT_DOUBLE_EQ(sw.rewire_prob, 0.1);
  const TopologySpec sw2 = TopologySpec::parse("smallworld:6:0.25");
  EXPECT_EQ(sw2.k, 6u);
  EXPECT_DOUBLE_EQ(sw2.rewire_prob, 0.25);

  const TopologySpec dyn = TopologySpec::parse("dynamic:4:0.5");
  EXPECT_EQ(dyn.kind, TopologyKind::kDynamic);
  EXPECT_EQ(dyn.k, 4u);
  EXPECT_DOUBLE_EQ(dyn.rewire_prob, 0.5);
}

TEST(TopologySpecTest, ParseRejectsMalformedSpecs) {
  expect_invalid([] { TopologySpec::parse("torus"); },
                 {"unknown topology kind", "torus"});
  expect_invalid([] { TopologySpec::parse("complete:1"); },
                 {"complete takes no parameters"});
  expect_invalid([] { TopologySpec::parse("ring:8:2"); },
                 {"ring takes at most one parameter"});
  expect_invalid([] { TopologySpec::parse("grid:1:1"); },
                 {"grid takes at most one parameter"});
  expect_invalid([] { TopologySpec::parse("dynamic:8:0.1:x"); },
                 {"rewired topologies take at most K:PROB"});
  expect_invalid([] { TopologySpec::parse("ring:eight"); },
                 {"not a count", "eight"});
  expect_invalid([] { TopologySpec::parse("smallworld:8:often"); },
                 {"not a number", "often"});
  // Parse also validates: grammar-legal but semantically bad parameters
  // fail right there, not later at resolve time.
  expect_invalid([] { TopologySpec::parse("ring:7"); },
                 {"ring", "even", "got 7"});
  expect_invalid([] { TopologySpec::parse("ring:0"); }, {"ring", "even"});
  expect_invalid([] { TopologySpec::parse("grid:0"); },
                 {"grid radius must be >= 1"});
  expect_invalid([] { TopologySpec::parse("smallworld:66"); },
                 {"smallworld", "<= 64", "got 66"});
  expect_invalid([] { TopologySpec::parse("dynamic:8:1.5"); },
                 {"dynamic", "rewire probability", "[0, 1]"});
}

// Hand-seeded hostile grammar (fuzz_topology explores around these; the
// named cases stay as permanent regression anchors regardless of fuzz
// findings). Every one must throw std::invalid_argument — no other
// exception type, no acceptance.
TEST(TopologySpecTest, HostileGrammarIsRejectedWithInvalidArgument) {
  const char* hostile[] = {
      "",                       // empty spec
      ":",                      // bare separator
      "ring:",                  // trailing colon, empty count
      "ring:4:",                // trailing colon after a valid count
      "RING:4",                 // case matters: kinds are lowercase tokens
      " ring",                  // leading whitespace is not trimmed
      "ring :4",                // embedded whitespace
      "ring:+4",                // from_chars takes no sign on counts
      "ring:-4",
      "ring: 4",
      "ring:4x",                // trailing junk after the number
      "ring:18446744073709551616",   // 2^64: count overflow
      "smallworld:8:1e999",     // double overflow
      "smallworld:8:nan",       // NaN must not sneak past the [0, 1] check
      "smallworld:8:-0.0001",
      "dynamic:8:inf",
      "complete:",              // complete takes no parameters, even empty
      "grid:1:1:1",
  };
  for (const char* spec : hostile) {
    EXPECT_THROW(TopologySpec::parse(spec), std::invalid_argument)
        << "accepted: '" << spec << "'";
  }
}

TEST(TopologySpecTest, DescribeStringsAreStableAndCommaFree) {
  EXPECT_EQ(TopologySpec::parse("complete").describe(), "complete");
  EXPECT_EQ(TopologySpec::parse("ring:8").describe(), "ring(k=8)");
  EXPECT_EQ(TopologySpec::parse("grid:2").describe(), "grid(r=2)");
  EXPECT_EQ(TopologySpec::parse("smallworld:8:0.1").describe(),
            "smallworld(k=8 p=0.1)");
  EXPECT_EQ(TopologySpec::parse("dynamic:4:0.5").describe(),
            "dynamic(k=4 p=0.5)");
  // describe() embeds into CSV cells unquoted.
  for (const char* spec :
       {"complete", "ring:8", "grid:2", "smallworld:8:0.1", "dynamic:4:0.5"}) {
    EXPECT_EQ(TopologySpec::parse(spec).describe().find(','),
              std::string::npos)
        << spec;
  }
}

TEST(ResolvedTopologyTest, CompleteResolvesToDegreeNMinusOne) {
  const ResolvedTopology topo =
      ResolvedTopology::resolve(TopologySpec{}, 1000);
  EXPECT_TRUE(topo.complete());
  EXPECT_FALSE(topo.keyed());
  EXPECT_FALSE(topo.dynamic_rewire());
  EXPECT_EQ(topo.degree(), 999u);
  EXPECT_EQ(topo.draw_bound(), 999u);
}

TEST(ResolvedTopologyTest, ResolveRejectsFamiliesThatDoNotFitN) {
  expect_invalid(
      [] { ResolvedTopology::resolve(TopologySpec::parse("ring:8"), 8); },
      {"ring(k=8)", "n >= k + 2 = 10", "got n = 8"});
  expect_invalid(
      [] { ResolvedTopology::resolve(TopologySpec::parse("grid:2"), 127); },
      {"grid(r=2)", "127 factors as 1 x 127", ">= 2*radius + 1 = 5",
       "e.g. n = 25"});
  expect_invalid(
      [] { ResolvedTopology::resolve(TopologySpec{}, 1); },
      {"complete", "n >= 2", "got 1"});
  // Boundary: n = k + 2 is the smallest legal ring.
  EXPECT_EQ(
      ResolvedTopology::resolve(TopologySpec::parse("ring:8"), 10).degree(),
      8u);
}

TEST(ResolvedTopologyTest, GridFactorizationPicksTheMostSquareShape) {
  using Shape = std::pair<std::size_t, std::size_t>;
  const auto shape = [](std::size_t n) {
    const ResolvedTopology topo =
        ResolvedTopology::resolve(TopologySpec::parse("grid:2"), n);
    EXPECT_EQ(topo.rows() * topo.cols(), n);
    EXPECT_EQ(topo.degree(), 24u);  // (2*2+1)^2 - 1
    return std::make_pair(topo.rows(), topo.cols());
  };
  EXPECT_EQ(shape(64), Shape(8, 8));
  EXPECT_EQ(shape(100), Shape(10, 10));
  EXPECT_EQ(shape(128), Shape(8, 16));
  EXPECT_EQ(shape(144), Shape(12, 12));
}

TEST(ResolvedTopologyTest, RoundKeyIsStaticForSmallworldPerRoundForDynamic) {
  const StreamKey tk = trial_stream_key(0x5eed, 0);
  const ResolvedTopology sw =
      ResolvedTopology::resolve(TopologySpec::parse("smallworld"), 64);
  const ResolvedTopology dyn =
      ResolvedTopology::resolve(TopologySpec::parse("dynamic"), 64);
  EXPECT_EQ(sw.round_key(tk, 0), sw.round_key(tk, 17));
  EXPECT_NE(dyn.round_key(tk, 0), dyn.round_key(tk, 17));
  // The static sentinel keys the same lane value the dynamic kind would
  // only reach at an unreachable round number.
  EXPECT_EQ(sw.round_key(tk, 0), dyn.round_key(tk, kTopologyStaticRound));
}

// The hand-checkable grid case: n = 25 resolves to a 5x5 torus, and the
// interior agent 12 (row 2, col 2) has exactly the 8 surrounding cells as
// radius-1 neighbors.
TEST(ResolvedTopologyTest, GridSmallCaseMatchesHandEnumeration) {
  const ResolvedTopology topo =
      ResolvedTopology::resolve(TopologySpec::parse("grid:1"), 25);
  ASSERT_EQ(topo.degree(), 8u);
  const StreamKey unused{};
  std::set<AgentId> got;
  for (std::uint64_t j = 0; j < topo.degree(); ++j) {
    got.insert(topo.neighbor(unused, 12, j));
  }
  const std::set<AgentId> want{6, 7, 8, 11, 13, 16, 17, 18};
  EXPECT_EQ(got, want);
  // Torus wraparound: agent 0's window reaches the far edges.
  got.clear();
  for (std::uint64_t j = 0; j < topo.degree(); ++j) {
    got.insert(topo.neighbor(unused, 0, j));
  }
  const std::set<AgentId> corner{24, 20, 21, 4, 1, 9, 5, 6};
  EXPECT_EQ(got, corner);
}

// The identity-path contract: on the complete graph, recipient() IS the
// historical formula — the same uniform_index(n-1) draw, the same self-skip
// — consuming the same RNG words, so every pre-topology golden still holds.
TEST(ResolvedTopologyTest, CompleteRecipientMatchesHistoricalFormula) {
  const ResolvedTopology topo = ResolvedTopology::resolve(TopologySpec{}, 97);
  const StreamKey tk = trial_stream_key(0xabcdef, 3);
  const StreamKey rkey = round_stream_key(tk, RngPurpose::kRoute, 5);
  const StreamKey topo_key = topo.round_key(tk, 5);
  for (AgentId sender : {AgentId{0}, AgentId{42}, AgentId{96}}) {
    CounterRng through_topo(rkey, sender);
    CounterRng historical(rkey, sender);
    for (int draw = 0; draw < 16; ++draw) {
      const AgentId got = topo.recipient(through_topo, topo_key, sender);
      auto want = static_cast<AgentId>(uniform_index(historical, 96));
      want += (want >= sender);
      ASSERT_EQ(got, want) << "sender " << sender << " draw " << draw;
    }
    // Same words consumed: the streams stay in lockstep afterwards.
    EXPECT_EQ(through_topo(), historical()) << "sender " << sender;
  }
}

// Core neighbor invariants, over random families, sizes, agents and edges:
// every neighbor is in [0, n), never the agent itself, and is a pure
// function of (key, agent, edge index).
TEST(ResolvedTopologyTest, NeighborsAreInRangeNonSelfAndDeterministic) {
  proptest::check(
      "topology_neighbors", 200, 0x70b0, [&](proptest::Gen gen, int) {
        TopologySpec spec;
        switch (gen.range(0, 4)) {
          case 0:
            spec = TopologySpec::parse("ring");
            spec.k = 2 * static_cast<std::size_t>(gen.range(1, 8));
            break;
          case 1:
            spec = TopologySpec::parse("grid");
            spec.radius = static_cast<std::size_t>(gen.range(1, 2));
            break;
          case 2:
            spec = TopologySpec::parse("smallworld");
            spec.k = 2 * static_cast<std::size_t>(gen.range(1, 8));
            spec.rewire_prob = gen.real(0.0, 1.0);
            break;
          case 3:
            spec = TopologySpec::parse("dynamic");
            spec.k = 2 * static_cast<std::size_t>(gen.range(1, 8));
            spec.rewire_prob = gen.real(0.0, 1.0);
            break;
          default:
            spec = TopologySpec{};
            break;
        }
        const std::size_t n = spec.kind == TopologyKind::kGrid
                                  ? gen.pick({std::uint64_t{64},
                                              std::uint64_t{100},
                                              std::uint64_t{144}})
                                  : gen.range(spec.k + 2, 300);
        const ResolvedTopology topo = ResolvedTopology::resolve(spec, n);
        const StreamKey tk = trial_stream_key(gen.u64(), gen.index(8));
        const StreamKey key = topo.round_key(tk, gen.index(50));
        for (int probe = 0; probe < 8; ++probe) {
          const auto a = static_cast<AgentId>(gen.index(n));
          const std::uint64_t j = gen.index(topo.degree());
          const AgentId t = topo.neighbor(key, a, j);
          ASSERT_LT(t, n) << spec.describe();
          ASSERT_NE(t, a) << spec.describe() << " agent " << a << " edge "
                          << j;
          ASSERT_EQ(t, topo.neighbor(key, a, j))
              << spec.describe() << ": neighbor not deterministic";
        }
      });
}

// The arithmetic families are simple graphs: an agent's k (or (2r+1)^2 - 1)
// out-neighbors are pairwise distinct.
TEST(ResolvedTopologyTest, RingAndGridNeighborsArePairwiseDistinct) {
  proptest::check(
      "topology_distinct", 100, 0xd157, [&](proptest::Gen gen, int) {
        const bool grid = gen.chance(0.5);
        TopologySpec spec =
            TopologySpec::parse(grid ? "grid" : "ring");
        std::size_t n = 0;
        if (grid) {
          spec.radius = static_cast<std::size_t>(gen.range(1, 2));
          n = gen.pick({std::uint64_t{64}, std::uint64_t{100},
                        std::uint64_t{256}});
        } else {
          spec.k = 2 * static_cast<std::size_t>(gen.range(1, 10));
          n = gen.range(spec.k + 2, 200);
        }
        const ResolvedTopology topo = ResolvedTopology::resolve(spec, n);
        const StreamKey unused{};
        const auto a = static_cast<AgentId>(gen.index(n));
        std::set<AgentId> seen;
        for (std::uint64_t j = 0; j < topo.degree(); ++j) {
          seen.insert(topo.neighbor(unused, a, j));
        }
        ASSERT_EQ(seen.size(), topo.degree())
            << spec.describe() << " n=" << n << " agent " << a;
      });
}

// Watts-Strogatz at rewire probability 0 never rewires: it IS the k-ring,
// edge for edge — and still burns the same decision draw, so the p = 0
// graph is the ring under the rewired kinds' key discipline.
TEST(ResolvedTopologyTest, SmallworldAtProbabilityZeroIsTheRing) {
  TopologySpec sw_spec = TopologySpec::parse("smallworld:8:0");
  const ResolvedTopology sw = ResolvedTopology::resolve(sw_spec, 120);
  const ResolvedTopology ring =
      ResolvedTopology::resolve(TopologySpec::parse("ring:8"), 120);
  const StreamKey tk = trial_stream_key(0x5eed, 0);
  const StreamKey key = sw.round_key(tk, 0);
  for (AgentId a = 0; a < 120; ++a) {
    for (std::uint64_t j = 0; j < 8; ++j) {
      ASSERT_EQ(sw.neighbor(key, a, j), ring.neighbor(key, a, j))
          << "agent " << a << " edge " << j;
    }
  }
}

// Dynamic rewiring actually changes the graph between rounds (at p = 0.5
// over 64 agents x 8 edges, an unchanged graph would be a probability
// ~2^-256 event), while the static kinds see one fixed graph per trial.
TEST(ResolvedTopologyTest, DynamicGraphChangesAcrossRoundsStaticDoesNot) {
  const StreamKey tk = trial_stream_key(0x5eed, 0);
  const ResolvedTopology dyn =
      ResolvedTopology::resolve(TopologySpec::parse("dynamic:8:0.5"), 64);
  const auto edge_list = [&](const ResolvedTopology& topo, std::uint64_t r) {
    std::vector<AgentId> edges;
    const StreamKey key = topo.round_key(tk, r);
    for (AgentId a = 0; a < 64; ++a) {
      for (std::uint64_t j = 0; j < 8; ++j) {
        edges.push_back(topo.neighbor(key, a, j));
      }
    }
    return edges;
  };
  EXPECT_NE(edge_list(dyn, 0), edge_list(dyn, 1));
  EXPECT_EQ(edge_list(dyn, 1), edge_list(dyn, 1));  // within a round: fixed
  const ResolvedTopology sw =
      ResolvedTopology::resolve(TopologySpec::parse("smallworld:8:0.5"), 64);
  EXPECT_EQ(edge_list(sw, 0), edge_list(sw, 31));
}

}  // namespace
}  // namespace flip
