// The sweep service stack (docs/SERVICE.md), bottom up: the flipsvc/1
// request text round-trips through encode/parse; resolve_sweep_request
// rejects with the exact messages the flipsim CLI prints; flipchk/1
// checkpoints round-trip and exclude the resume position from the
// spec-match identity; the ring buffer and the length-prefixed framing
// hold their small contracts; and a real server over loopback answers
// ping, streams sweeps, propagates validation errors, and shuts down
// cleanly.
//
// The load-bearing test is the differential one: for EVERY registry entry,
// the lines a served sweep streams back are byte-identical to the lines a
// local one-shot run renders, up to the trailing timing fields (the only
// nondeterministic bytes in a point line — cli/report.hpp pins them last
// for exactly this comparison). That is the service's whole correctness
// claim: resident arenas and a warm pool must not change one byte of
// results.

#include "net/service.hpp"

#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cli/report.hpp"
#include "cli/sweep.hpp"
#include "cli/wire.hpp"
#include "net/frame.hpp"
#include "net/ring_buffer.hpp"
#include "workload/registry.hpp"

namespace flip {
namespace {

using cli::Checkpoint;
using cli::SweepRequest;
using cli::SweepSpec;
using cli::WireCommand;

/// Truncates a point line at its trailing timing fields, the only
/// nondeterministic bytes (see sweep_point_line's contract).
std::string strip_timing(const std::string& line) {
  const std::size_t pos = line.find("\"trial_seconds\"");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

/// The locally-rendered point lines of a sweep, via the same emitter the
/// server streams through.
std::vector<std::string> local_point_lines(SweepSpec spec) {
  spec.collect_points = false;
  std::vector<std::string> lines;
  cli::run_sweep(spec, [&](std::size_t, const cli::SweepPoint& point) {
    lines.push_back(cli::sweep_point_line(point));
  });
  return lines;
}

// --- wire text ------------------------------------------------------------

TEST(WireTest, EncodeOmitsDefaultedFields) {
  SweepRequest request;
  request.scenario = "broadcast_small";
  EXPECT_EQ(cli::encode_sweep_request(request),
            "flipsvc/1 sweep\nscenario=broadcast_small\n");
}

TEST(WireTest, EncodeParseRoundTripsEveryField) {
  SweepRequest request;
  request.scenario = "broadcast";
  request.ns = "128,256";
  request.epss = "0.2,0.3";
  request.channels = "bsc,heterogeneous";
  request.trials = 7;
  request.seed = 0xabcdef;
  request.threads = 2;
  request.shards = 8;
  request.engine = "classic";
  request.schedule = "step:100:0.1";
  request.churn = "0.01:0.2";
  request.topology = "ring:8";
  request.resume_from = 3;
  std::string error;
  const auto parsed =
      cli::parse_sweep_request(cli::encode_sweep_request(request), error);
  ASSERT_TRUE(parsed.has_value()) << error;
  // Round-trip identity is the canonical-encoding contract the checkpoint
  // spec-match rule rests on.
  EXPECT_EQ(cli::encode_sweep_request(*parsed),
            cli::encode_sweep_request(request));
  EXPECT_EQ(parsed->scenario, "broadcast");
  EXPECT_EQ(parsed->trials, 7u);
  EXPECT_EQ(parsed->seed, 0xabcdefULL);
  EXPECT_EQ(parsed->shards, 8u);
  EXPECT_EQ(parsed->engine, "classic");
  EXPECT_EQ(parsed->resume_from, 3u);
}

TEST(WireTest, ParseRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(cli::parse_sweep_request("", error).has_value());
  EXPECT_FALSE(
      cli::parse_sweep_request("flipsvc/2 sweep\n", error).has_value());
  EXPECT_NE(error.find("unsupported protocol"), std::string::npos);
  EXPECT_FALSE(
      cli::parse_sweep_request("flipsvc/1 dance\n", error).has_value());
  EXPECT_NE(error.find("unknown command"), std::string::npos);
  EXPECT_FALSE(cli::parse_sweep_request("flipsvc/1 sweep\nbogus=1\n", error)
                   .has_value());
  EXPECT_NE(error.find("unknown key"), std::string::npos);
  EXPECT_FALSE(cli::parse_sweep_request("flipsvc/1 sweep\ntrials=soon\n",
                                        error)
                   .has_value());
  EXPECT_NE(error.find("bad number"), std::string::npos);
  EXPECT_FALSE(cli::parse_sweep_request("flipsvc/1 sweep\nno-equals\n", error)
                   .has_value());
  EXPECT_NE(error.find("key=value"), std::string::npos);
}

TEST(WireTest, ResolveRejectsWithTheCliMessages) {
  SweepRequest request;
  request.scenario = "broadcast_small";
  SweepSpec spec;

  request.epss = "0.9";
  auto reject = cli::resolve_sweep_request(request, spec);
  ASSERT_TRUE(reject.has_value());
  EXPECT_EQ(*reject, *cli::validate_eps_values({0.9}));

  request.epss = "0.3";
  request.engine = "quantum";
  reject = cli::resolve_sweep_request(request, spec);
  ASSERT_TRUE(reject.has_value());
  EXPECT_EQ(*reject,
            "--engine: unknown mode 'quantum' (batch | classic | surrogate)");

  request.engine = "batch";
  request.schedule = "nonsense";
  reject = cli::resolve_sweep_request(request, spec);
  ASSERT_TRUE(reject.has_value());
  EXPECT_EQ(reject->rfind("--schedule: ", 0), 0u) << *reject;

  request.schedule.clear();
  request.shards = 100000;
  reject = cli::resolve_sweep_request(request, spec);
  ASSERT_TRUE(reject.has_value());
  EXPECT_EQ(*reject, *cli::validate_shards(100000));
}

TEST(WireTest, ResolveFillsTheSpec) {
  SweepRequest request;
  request.scenario = "broadcast_small";
  request.ns = "128,256";
  request.trials = 5;
  request.seed = 99;
  request.shards = 4;
  request.resume_from = 1;
  SweepSpec spec;
  ASSERT_FALSE(cli::resolve_sweep_request(request, spec).has_value());
  EXPECT_EQ(spec.scenario, "broadcast_small");
  EXPECT_EQ(spec.ns, (std::vector<std::size_t>{128, 256}));
  EXPECT_EQ(spec.trials, 5u);
  EXPECT_EQ(spec.seed, 99u);
  EXPECT_EQ(spec.shards, 4u);
  EXPECT_EQ(spec.first_cell, 1u);
}

// --- checkpoints ----------------------------------------------------------

TEST(CheckpointTest, RoundTripsAndExcludesResumePosition) {
  SweepRequest request;
  request.scenario = "broadcast_small";
  request.ns = "128,256,512";
  request.trials = 2;
  const std::string text = cli::encode_checkpoint(request, 2, 3);
  std::string error;
  const auto checkpoint = cli::parse_checkpoint(text, error);
  ASSERT_TRUE(checkpoint.has_value()) << error;
  EXPECT_EQ(checkpoint->next_cell, 2u);
  EXPECT_EQ(checkpoint->grid_cells, 3u);
  EXPECT_EQ(cli::encode_sweep_request(checkpoint->request),
            cli::encode_sweep_request(request));

  // The resume position is the checkpoint's own state, not part of the
  // sweep's identity: a request already carrying resume_from writes the
  // same file, so resuming twice still matches.
  SweepRequest resumed = request;
  resumed.resume_from = 2;
  EXPECT_EQ(cli::encode_checkpoint(resumed, 2, 3), text);
}

TEST(CheckpointTest, RejectsGarbage) {
  std::string error;
  EXPECT_FALSE(cli::parse_checkpoint("not a checkpoint", error).has_value());
  EXPECT_FALSE(
      cli::parse_checkpoint("flipchk/1 grid=3\nflipsvc/1 sweep\n", error)
          .has_value());
  EXPECT_NE(error.find("next_cell"), std::string::npos);
  EXPECT_FALSE(
      cli::parse_checkpoint("flipchk/1 next_cell=x\n", error).has_value());
}

// --- ring buffer ----------------------------------------------------------

TEST(RingBufferTest, FifoWithinCapacityAndRejectsWhenFull) {
  net::RingBuffer<int> ring(2);
  EXPECT_EQ(ring.capacity(), 2u);
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_push(2));
  EXPECT_FALSE(ring.try_push(3)) << "full ring must shed load, not block";
  EXPECT_EQ(ring.pop(), std::optional<int>(1));
  EXPECT_TRUE(ring.try_push(4));  // wraps
  EXPECT_EQ(ring.pop(), std::optional<int>(2));
  EXPECT_EQ(ring.pop(), std::optional<int>(4));
  EXPECT_EQ(ring.size(), 0u);
}

TEST(RingBufferTest, CloseDrainsAcceptedJobsThenEndsStream) {
  net::RingBuffer<int> ring(4);
  EXPECT_TRUE(ring.try_push(7));
  ring.close();
  EXPECT_FALSE(ring.try_push(8));
  EXPECT_EQ(ring.pop(), std::optional<int>(7))
      << "close() must not drop acknowledged work";
  EXPECT_EQ(ring.pop(), std::nullopt);
}

TEST(RingBufferTest, CloseWakesABlockedPop) {
  net::RingBuffer<int> ring(1);
  std::optional<int> popped = std::nullopt;
  std::thread consumer([&] { popped = ring.pop(); });
  ring.close();
  consumer.join();
  EXPECT_EQ(popped, std::nullopt);
}

// --- framing --------------------------------------------------------------

struct FdPair {
  int a = -1;
  int b = -1;
  FdPair() {
    int fds[2];
    EXPECT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~FdPair() {
    net::close_fd(a);
    net::close_fd(b);
  }
};

TEST(FrameTest, RoundTripsPayloads) {
  FdPair pair;
  ASSERT_TRUE(net::write_frame(pair.a, "hello frames"));
  ASSERT_TRUE(net::write_frame(pair.a, ""));  // empty payload is legal
  net::FrameResult first = net::read_frame(pair.b);
  ASSERT_EQ(first.status, net::FrameStatus::kOk) << first.error;
  EXPECT_EQ(first.payload, "hello frames");
  net::FrameResult second = net::read_frame(pair.b);
  ASSERT_EQ(second.status, net::FrameStatus::kOk) << second.error;
  EXPECT_EQ(second.payload, "");
}

TEST(FrameTest, CleanEofAtFrameBoundary) {
  FdPair pair;
  net::close_fd(pair.a);
  pair.a = -1;
  EXPECT_EQ(net::read_frame(pair.b).status, net::FrameStatus::kEof);
}

TEST(FrameTest, RejectsOversizedLengthBeforeAllocating) {
  FdPair pair;
  const unsigned char huge[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(pair.a, huge, 4, 0), 4);
  const net::FrameResult result = net::read_frame(pair.b);
  EXPECT_EQ(result.status, net::FrameStatus::kError);
  EXPECT_NE(result.error.find("cap"), std::string::npos);
}

TEST(FrameTest, TruncatedPayloadIsAnError) {
  FdPair pair;
  const unsigned char prefix[4] = {0, 0, 0, 10};
  ASSERT_EQ(::send(pair.a, prefix, 4, 0), 4);
  ASSERT_EQ(::send(pair.a, "abc", 3, 0), 3);
  net::close_fd(pair.a);
  pair.a = -1;
  const net::FrameResult result = net::read_frame(pair.b);
  EXPECT_EQ(result.status, net::FrameStatus::kError);
  EXPECT_NE(result.error.find("truncated"), std::string::npos);
}

// Hand-seeded hostile inputs (fuzz_frame explores around these; the named
// cases stay as permanent regression anchors regardless of fuzz findings).

TEST(FrameTest, MalformedFrameTruncatedLengthPrefixIsAnError) {
  // EOF in the middle of the 4-byte prefix is a torn frame, not a clean
  // end-of-stream: kEof is reserved for exact frame boundaries.
  FdPair pair;
  const unsigned char half[2] = {0, 0};
  ASSERT_EQ(::send(pair.a, half, 2, 0), 2);
  net::close_fd(pair.a);
  pair.a = -1;
  const net::FrameResult result = net::read_frame(pair.b);
  EXPECT_EQ(result.status, net::FrameStatus::kError);
  EXPECT_FALSE(result.error.empty());
}

TEST(FrameTest, MalformedFrameGarbageAfterValidFrameIsContained) {
  // A well-formed frame followed by torn trailing bytes: the good frame
  // must come through intact before the stream errors.
  FdPair pair;
  ASSERT_TRUE(net::write_frame(pair.a, "intact"));
  const unsigned char torn[3] = {0x00, 0x00, 0x00};
  ASSERT_EQ(::send(pair.a, torn, 3, 0), 3);
  net::close_fd(pair.a);
  pair.a = -1;
  net::FrameResult first = net::read_frame(pair.b);
  ASSERT_EQ(first.status, net::FrameStatus::kOk) << first.error;
  EXPECT_EQ(first.payload, "intact");
  EXPECT_EQ(net::read_frame(pair.b).status, net::FrameStatus::kError);
}

TEST(FrameTest, MalformedFrameLengthCapBoundaryIsExact) {
  // kMaxFrameBytes itself is legal (truncated here, since no payload
  // follows); one byte above is the oversize protocol violation.
  FdPair at_cap;
  const unsigned char cap[4] = {0x01, 0x00, 0x00, 0x00};  // 16 MiB exactly
  ASSERT_EQ(::send(at_cap.a, cap, 4, 0), 4);
  net::close_fd(at_cap.a);
  at_cap.a = -1;
  const net::FrameResult truncated = net::read_frame(at_cap.b);
  EXPECT_EQ(truncated.status, net::FrameStatus::kError);
  EXPECT_NE(truncated.error.find("truncated"), std::string::npos);

  FdPair above;
  const unsigned char over[4] = {0x01, 0x00, 0x00, 0x01};  // 16 MiB + 1
  ASSERT_EQ(::send(above.a, over, 4, 0), 4);
  const net::FrameResult oversize = net::read_frame(above.b);
  EXPECT_EQ(oversize.status, net::FrameStatus::kError);
  EXPECT_NE(oversize.error.find("cap"), std::string::npos);
}

TEST(WireTest, HostileRequestTextIsRejectedWithoutCrashing) {
  std::string error;
  // CRLF line endings: the \r lands in the command token — rejected, not
  // silently folded into a value.
  EXPECT_FALSE(
      cli::parse_sweep_request("flipsvc/1 sweep\r\nscenario=x\r\n", error)
          .has_value());
  // Empty key ("=1") is an unknown key, not an accepted empty field.
  EXPECT_FALSE(cli::parse_sweep_request("flipsvc/1 sweep\n=1\n", error)
                   .has_value());
  EXPECT_NE(error.find("unknown key"), std::string::npos);
  // Empty numeric value.
  EXPECT_FALSE(cli::parse_sweep_request("flipsvc/1 sweep\ntrials=\n", error)
                   .has_value());
  EXPECT_NE(error.find("bad number"), std::string::npos);
  // A 21-digit trials value must overflow-reject, not wrap.
  EXPECT_FALSE(cli::parse_sweep_request(
                   "flipsvc/1 sweep\ntrials=99999999999999999999\n", error)
                   .has_value());
  EXPECT_NE(error.find("bad number"), std::string::npos);
  // An embedded NUL rides through the string fields without truncating
  // the parse; the resolve layer then rejects the garbage scenario.
  std::string nul_request = "flipsvc/1 sweep\nscenario=bad";
  nul_request.push_back('\0');
  nul_request += "name\n";
  const auto parsed = cli::parse_sweep_request(nul_request, error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->scenario.size(), 8u);  // "bad\0name", NUL preserved
  SweepSpec spec;
  EXPECT_TRUE(cli::resolve_sweep_request(*parsed, spec).has_value());
}

TEST(CheckpointTest, TruncatedCheckpointIsRejected) {
  std::string error;
  // Header only, request body missing (the classic torn write).
  EXPECT_FALSE(
      cli::parse_checkpoint("flipchk/1 next_cell=3 grid=9\n", error)
          .has_value());
  EXPECT_NE(error.find("checkpoint request"), std::string::npos);
  // Header without even the trailing newline.
  EXPECT_FALSE(cli::parse_checkpoint("flipchk/1 next_cell=3 grid=9", error)
                   .has_value());
  // Request body cut mid-line: the torn line has no '=', so the request
  // parser inside the checkpoint parser rejects it.
  EXPECT_FALSE(cli::parse_checkpoint(
                   "flipchk/1 next_cell=3 grid=9\nflipsvc/1 sweep\nscenar",
                   error)
                   .has_value());
  // Unknown header keys are a version skew signal, not ignorable noise.
  EXPECT_FALSE(cli::parse_checkpoint(
                   "flipchk/1 next_cell=3 bogus=1\nflipsvc/1 sweep\n", error)
                   .has_value());
  EXPECT_NE(error.find("unknown checkpoint header key"), std::string::npos);
}

// --- the server over loopback ---------------------------------------------

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::string error;
    ASSERT_TRUE(server_.start(error)) << error;
  }

  net::SweepServer server_;
};

TEST_F(ServiceTest, AnswersPing) {
  net::SweepClient client(server_.port());
  std::string error;
  EXPECT_TRUE(client.ping(error)) << error;
}

TEST_F(ServiceTest, StreamsASweepInGridOrder) {
  SweepRequest request;
  request.scenario = "broadcast_small";
  request.ns = "128,256";
  request.trials = 2;

  net::SweepClient client(server_.port());
  std::vector<std::size_t> cells;
  std::vector<std::string> lines;
  const std::string done =
      client.run_sweep(request, [&](std::size_t cell, const std::string& line) {
        cells.push_back(cell);
        lines.push_back(line);
      });
  EXPECT_EQ(cells, (std::vector<std::size_t>{0, 1}));
  EXPECT_NE(done.find("\"points\":2"), std::string::npos) << done;

  SweepSpec spec;
  ASSERT_FALSE(cli::resolve_sweep_request(request, spec).has_value());
  const std::vector<std::string> local = local_point_lines(spec);
  ASSERT_EQ(lines.size(), local.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    EXPECT_EQ(strip_timing(lines[i]), strip_timing(local[i])) << "cell " << i;
  }
}

TEST_F(ServiceTest, RejectsInvalidRequestsWithTheCliMessage) {
  net::SweepClient client(server_.port());
  SweepRequest request;
  request.scenario = "broadcast_small";
  request.epss = "0.9";
  try {
    client.run_sweep(request);
    FAIL() << "out-of-domain eps must be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(*cli::validate_eps_values({0.9})),
              std::string::npos)
        << e.what();
  }
  request.epss.clear();
  request.scenario = "no_such_scenario";
  try {
    client.run_sweep(request);
    FAIL() << "unknown scenario must be rejected at ingest";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("no_such_scenario"),
              std::string::npos)
        << e.what();
  }
}

TEST_F(ServiceTest, ResumeFromSkipsCompletedCells) {
  SweepRequest request;
  request.scenario = "broadcast_small";
  request.ns = "128,256";
  request.trials = 2;
  net::SweepClient client(server_.port());
  std::vector<std::string> full;
  client.run_sweep(request, [&](std::size_t, const std::string& line) {
    full.push_back(line);
  });
  ASSERT_EQ(full.size(), 2u);

  request.resume_from = 1;
  std::vector<std::size_t> cells;
  std::vector<std::string> resumed;
  client.run_sweep(request, [&](std::size_t cell, const std::string& line) {
    cells.push_back(cell);
    resumed.push_back(line);
  });
  ASSERT_EQ(resumed.size(), 1u);
  EXPECT_EQ(cells, (std::vector<std::size_t>{1}));
  EXPECT_EQ(strip_timing(resumed[0]), strip_timing(full[1]));
}

TEST_F(ServiceTest, ShutdownCommandStopsTheServer) {
  net::SweepClient client(server_.port());
  std::string error;
  ASSERT_TRUE(client.shutdown_server(error)) << error;
  server_.wait();  // returns: both threads exited
  EXPECT_FALSE(client.ping(error));
}

// The service's whole correctness claim, scenario by scenario: a served
// sweep is byte-identical to a local one-shot run of the same spec for
// EVERY registry entry, up to the trailing timing fields. The server side
// runs on resident arenas warmed by whatever ran before it; any
// state leak between requests shows up here as a changed byte.
TEST_F(ServiceTest, ServedSweepMatchesOneShotForEveryRegistryEntry) {
  net::SweepClient client(server_.port());
  for (const ScenarioInfo* info : ScenarioRegistry::instance().list()) {
    SweepRequest request;
    request.scenario = info->name;
    request.ns = "256";
    request.trials = 2;
    SweepSpec spec;
    ASSERT_FALSE(cli::resolve_sweep_request(request, spec).has_value())
        << info->name;
    const std::vector<std::string> local = local_point_lines(spec);
    std::vector<std::string> served;
    client.run_sweep(request, [&](std::size_t, const std::string& line) {
      served.push_back(line);
    });
    ASSERT_EQ(served.size(), local.size()) << info->name;
    for (std::size_t i = 0; i < served.size(); ++i) {
      EXPECT_EQ(strip_timing(served[i]), strip_timing(local[i]))
          << info->name << " cell " << i;
    }
  }
}

// --- checkpoint/resume under interruption ---------------------------------

// A sweep killed mid-grid and resumed from its checkpoint position must
// produce, concatenated, the exact lines of the uninterrupted run — the
// counter-keyed RNG makes each cell a pure function of the spec, so this
// is an equality, not a statistical claim.
TEST(SweepResumeTest, InterruptedPlusResumedEqualsUninterrupted) {
  SweepSpec spec;
  spec.scenario = "broadcast_small";
  spec.ns = {128, 256, 512};
  spec.trials = 2;
  spec.collect_points = false;

  const std::vector<std::string> full = local_point_lines(spec);
  ASSERT_EQ(full.size(), 3u);

  struct Interrupt {};
  std::vector<std::string> before;
  try {
    cli::run_sweep(spec, [&](std::size_t, const cli::SweepPoint& point) {
      before.push_back(cli::sweep_point_line(point));
      if (before.size() == 1) throw Interrupt{};
    });
    FAIL() << "the sink's exception must abort the sweep";
  } catch (const Interrupt&) {
  }
  ASSERT_EQ(before.size(), 1u);

  // Resume exactly where the checkpoint would point: after the last
  // completed cell.
  spec.first_cell = 1;
  std::vector<std::string> after = local_point_lines(spec);
  ASSERT_EQ(after.size(), 2u);

  std::vector<std::string> concatenated = before;
  concatenated.insert(concatenated.end(), after.begin(), after.end());
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(strip_timing(concatenated[i]), strip_timing(full[i]))
        << "cell " << i;
  }
}

TEST(SweepResumeTest, FirstCellPastGridIsRejected) {
  SweepSpec spec;
  spec.scenario = "broadcast_small";
  spec.trials = 2;
  spec.first_cell = 5;  // grid has 1 cell
  EXPECT_THROW(cli::run_sweep(spec), std::invalid_argument);
}

}  // namespace
}  // namespace flip
