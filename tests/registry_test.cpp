#include "workload/registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace flip {
namespace {

TEST(RegistryTest, ListIsNonEmptyAndSorted) {
  const auto infos = ScenarioRegistry::instance().list();
  ASSERT_GE(infos.size(), 10u);
  for (std::size_t i = 1; i < infos.size(); ++i) {
    EXPECT_LT(infos[i - 1]->name, infos[i]->name);
  }
  for (const ScenarioInfo* info : infos) {
    EXPECT_FALSE(info->summary.empty()) << info->name;
    EXPECT_FALSE(info->problem.empty()) << info->name;
    EXPECT_GT(info->default_n, 0u) << info->name;
    EXPECT_GT(info->default_eps, 0.0) << info->name;
    EXPECT_FALSE(info->channels.empty()) << info->name;
  }
}

TEST(RegistryTest, FindAndContains) {
  const ScenarioRegistry& registry = ScenarioRegistry::instance();
  ASSERT_NE(registry.find("broadcast_small"), nullptr);
  EXPECT_EQ(registry.find("broadcast_small")->problem, "broadcast");
  EXPECT_TRUE(registry.contains("majority"));
  EXPECT_FALSE(registry.contains("no_such_scenario"));
  EXPECT_EQ(registry.find("no_such_scenario"), nullptr);
}

// The registry's whole point: a scenario cannot be registered without
// being executable. Every entry must construct its TrialFn and survive one
// full execution at a small population size.
TEST(RegistryTest, EveryScenarioConstructsAndRuns) {
  const ScenarioRegistry& registry = ScenarioRegistry::instance();
  for (const ScenarioInfo* info : registry.list()) {
    ScenarioOverrides overrides;
    overrides.n = 128;  // keep Debug runs fast; every scenario accepts it
    overrides.eps = 0.3;
    const TrialFn fn = registry.make(info->name, overrides);
    ASSERT_TRUE(fn) << info->name;
    const TrialOutcome outcome = fn(/*seed=*/0xF00D, /*trial=*/0);
    EXPECT_GT(outcome.rounds, 0.0) << info->name;
    EXPECT_GT(outcome.messages, 0.0) << info->name;
    EXPECT_GE(outcome.correct_fraction, 0.0) << info->name;
    EXPECT_LE(outcome.correct_fraction, 1.0) << info->name;
  }
}

TEST(RegistryTest, TrialFnsAreDeterministic) {
  const ScenarioRegistry& registry = ScenarioRegistry::instance();
  ScenarioOverrides overrides;
  overrides.n = 128;
  const TrialFn a = registry.make("broadcast_small", overrides);
  const TrialFn b = registry.make("broadcast_small", overrides);
  const TrialOutcome oa = a(42, 1);
  const TrialOutcome ob = b(42, 1);
  EXPECT_EQ(oa.success, ob.success);
  EXPECT_DOUBLE_EQ(oa.rounds, ob.rounds);
  EXPECT_DOUBLE_EQ(oa.messages, ob.messages);
  EXPECT_DOUBLE_EQ(oa.correct_fraction, ob.correct_fraction);
}

TEST(RegistryTest, DynamicEnvironmentDefaultsResolveAndOverride) {
  const ScenarioRegistry& registry = ScenarioRegistry::instance();

  // Dynamic entries carry their preset as the default...
  const ScenarioConfig burst = registry.resolve("broadcast_burst", {});
  EXPECT_TRUE(burst.schedule.enabled());
  EXPECT_DOUBLE_EQ(burst.schedule.burst_prob, 0.08);
  const ScenarioConfig churny = registry.resolve("majority_churn", {});
  EXPECT_TRUE(churny.churn.enabled());
  EXPECT_DOUBLE_EQ(churny.churn.start_asleep, 0.25);

  // ...an explicit override replaces the preset wholesale...
  ScenarioOverrides override_schedule;
  override_schedule.schedule = EnvironmentSchedule::parse("step:10:0.3");
  const ScenarioConfig stepped =
      registry.resolve("broadcast_burst", override_schedule);
  EXPECT_DOUBLE_EQ(stepped.schedule.burst_prob, 0.0);
  ASSERT_EQ(stepped.schedule.segments.size(), 1u);

  // ...the classic entries stay static...
  EXPECT_FALSE(registry.resolve("broadcast", {}).schedule.enabled());
  EXPECT_FALSE(registry.resolve("broadcast", {}).churn.enabled());

  // ...and invalid environment overrides fail resolution, naming the
  // scenario.
  ScenarioOverrides bad;
  bad.churn = ChurnSpec{};
  bad.churn->sleep_prob = 2.0;
  EXPECT_THROW(registry.resolve("broadcast", bad), std::invalid_argument);

  // Scenarios whose factories cannot honor an override must reject it —
  // running the static environment while reporting the override in the
  // output params would mislabel the data.
  ScenarioOverrides churn_override;
  churn_override.churn = ChurnSpec{};
  churn_override.churn->sleep_prob = 0.01;
  churn_override.churn->wake_prob = 0.1;
  EXPECT_THROW(registry.resolve("boost", churn_override),
               std::invalid_argument);
  EXPECT_THROW(registry.resolve("desync", churn_override),
               std::invalid_argument);
  EXPECT_NO_THROW(registry.resolve("majority", churn_override));
  ScenarioOverrides schedule_override;
  schedule_override.schedule = EnvironmentSchedule::parse("step:10:0.3");
  EXPECT_THROW(registry.resolve("baseline_voter", schedule_override),
               std::invalid_argument);
  EXPECT_THROW(registry.resolve("broadcast_adversarial", schedule_override),
               std::invalid_argument);
  EXPECT_NO_THROW(registry.resolve("desync", schedule_override));
}

TEST(RegistryTest, TopologyDefaultsResolveAndOverride) {
  const ScenarioRegistry& registry = ScenarioRegistry::instance();

  // The preset sparse entries carry their graph family as the default...
  EXPECT_EQ(registry.resolve("broadcast_ring_k8", {}).topology.describe(),
            "ring(k=8)");
  EXPECT_EQ(registry.resolve("broadcast_grid_r2", {}).topology.describe(),
            "grid(r=2)");
  EXPECT_EQ(registry.resolve("broadcast_smallworld", {}).topology.kind,
            TopologyKind::kSmallWorld);
  EXPECT_EQ(registry.resolve("majority_smallworld", {}).topology.kind,
            TopologyKind::kSmallWorld);
  EXPECT_EQ(registry.resolve("broadcast_dynamic_rewire", {}).topology.kind,
            TopologyKind::kDynamic);

  // ...the classic entries stay complete...
  EXPECT_TRUE(registry.resolve("broadcast", {}).topology.complete());
  EXPECT_TRUE(registry.resolve("majority", {}).topology.complete());

  // ...an explicit override replaces the preset wholesale...
  ScenarioOverrides to_grid;
  to_grid.topology = TopologySpec::parse("grid:1");
  EXPECT_EQ(registry.resolve("broadcast", to_grid).topology.describe(),
            "grid(r=1)");
  ScenarioOverrides to_complete;
  to_complete.topology = TopologySpec{};
  EXPECT_TRUE(registry.resolve("broadcast_ring_k8", to_complete)
                  .topology.complete());

  // ...scenarios whose factories ignore the graph reject sparse overrides
  // (running the complete graph while reporting "ring" in the output
  // params would mislabel the data); a complete override is the default
  // behavior and passes everywhere...
  ScenarioOverrides sparse;
  sparse.topology = TopologySpec::parse("ring:8");
  EXPECT_THROW(registry.resolve("desync", sparse), std::invalid_argument);
  EXPECT_THROW(registry.resolve("baseline_voter", sparse),
               std::invalid_argument);
  EXPECT_THROW(registry.resolve("broadcast_adversarial", sparse),
               std::invalid_argument);
  EXPECT_NO_THROW(registry.resolve("broadcast", sparse));
  EXPECT_NO_THROW(registry.resolve("boost", sparse));
  EXPECT_NO_THROW(registry.resolve("desync", to_complete));

  // ...the surrogate engine rejects any effective sparse graph with an
  // actionable message naming the scenario and the topology...
  ScenarioOverrides sparse_surrogate = sparse;
  sparse_surrogate.engine = EngineMode::kSurrogate;
  try {
    const ScenarioConfig config =
        registry.resolve("broadcast", sparse_surrogate);
    FAIL() << "surrogate accepted a sparse graph: "
           << config.topology.describe();
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("broadcast"), std::string::npos) << what;
    EXPECT_NE(what.find("ring(k=8)"), std::string::npos) << what;
    EXPECT_NE(what.find("--engine batch"), std::string::npos) << what;
  }

  // ...and a graph that does not fit n fails resolve() up front, naming
  // the scenario (a ring needs n >= k + 2; a torus needs a factorization
  // with both sides >= 2*radius + 1).
  ScenarioOverrides tight;
  tight.n = 8;
  tight.topology = TopologySpec::parse("ring:8");
  EXPECT_THROW(registry.resolve("broadcast", tight), std::invalid_argument);
  ScenarioOverrides prime;
  prime.n = 127;  // prime: no 2-D factorization at all
  EXPECT_THROW(registry.resolve("broadcast_grid_r2", prime),
               std::invalid_argument);
}

// The new sparse-topology entries run end to end on BOTH substrates with a
// shard fan-out, and the three executions agree bit-for-bit — the
// registry-level statement of the acceptance bar (the differential suite
// drives the same invariant over random configs).
TEST(RegistryTest, TopologyEntriesRunBitEqualAcrossSubstratesAndShards) {
  const ScenarioRegistry& registry = ScenarioRegistry::instance();
  for (const char* name :
       {"broadcast_ring_k8", "broadcast_grid_r2", "broadcast_smallworld",
        "majority_smallworld", "broadcast_dynamic_rewire"}) {
    ScenarioOverrides overrides;
    overrides.n = 128;
    overrides.engine = EngineMode::kBatch;
    const TrialOutcome batch = registry.make(name, overrides)(0xF00D, 0);
    overrides.engine = EngineMode::kClassic;
    const TrialOutcome classic = registry.make(name, overrides)(0xF00D, 0);
    overrides.engine = EngineMode::kBatch;
    overrides.shards = 8;
    const TrialOutcome sharded = registry.make(name, overrides)(0xF00D, 0);
    for (const TrialOutcome* other : {&classic, &sharded}) {
      EXPECT_EQ(batch.success, other->success) << name;
      EXPECT_EQ(batch.rounds, other->rounds) << name;
      EXPECT_EQ(batch.messages, other->messages) << name;
      EXPECT_EQ(batch.correct_fraction, other->correct_fraction) << name;
      EXPECT_EQ(batch.delivered, other->delivered) << name;
      EXPECT_EQ(batch.dropped, other->dropped) << name;
      EXPECT_EQ(batch.erased, other->erased) << name;
      EXPECT_EQ(batch.flipped, other->flipped) << name;
    }
    EXPECT_GT(batch.messages, 0.0) << name;
  }
}

TEST(RegistryTest, ResolveAppliesDefaultsAndOverrides) {
  const ScenarioRegistry& registry = ScenarioRegistry::instance();
  const ScenarioConfig defaults =
      registry.resolve("broadcast", ScenarioOverrides{});
  EXPECT_EQ(defaults.n, 1024u);
  EXPECT_DOUBLE_EQ(defaults.eps, 0.2);
  EXPECT_EQ(defaults.channel, kChannelBsc);

  ScenarioOverrides overrides;
  overrides.n = 512;
  overrides.eps = 0.25;
  overrides.channel = std::string(kChannelHeterogeneous);
  const ScenarioConfig resolved = registry.resolve("broadcast", overrides);
  EXPECT_EQ(resolved.n, 512u);
  EXPECT_DOUBLE_EQ(resolved.eps, 0.25);
  EXPECT_EQ(resolved.channel, kChannelHeterogeneous);
}

TEST(RegistryTest, ResolveValidates) {
  const ScenarioRegistry& registry = ScenarioRegistry::instance();
  EXPECT_THROW(registry.resolve("no_such_scenario", ScenarioOverrides{}),
               std::invalid_argument);
  EXPECT_THROW(registry.make("no_such_scenario", ScenarioOverrides{}),
               std::invalid_argument);

  ScenarioOverrides bad_channel;
  bad_channel.channel = std::string(kChannelHeterogeneous);
  EXPECT_THROW(registry.resolve("majority", bad_channel),
               std::invalid_argument);

  ScenarioOverrides bad_eps;
  bad_eps.eps = 0.7;
  EXPECT_THROW(registry.resolve("broadcast", bad_eps),
               std::invalid_argument);

  ScenarioOverrides bad_n;
  bad_n.n = 1;
  EXPECT_THROW(registry.resolve("broadcast", bad_n), std::invalid_argument);
}

TEST(RegistryTest, AddRejectsBadEntries) {
  ScenarioRegistry registry;
  const auto factory = [](const ScenarioConfig&) {
    return TrialFn([](std::uint64_t, std::size_t) { return TrialOutcome{}; });
  };
  registry.add({"one", "s", "p", 64, 0.2, {"bsc"}}, factory);
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_THROW(registry.add({"one", "s", "p", 64, 0.2, {"bsc"}}, factory),
               std::invalid_argument);  // duplicate
  EXPECT_THROW(registry.add({"", "s", "p", 64, 0.2, {"bsc"}}, factory),
               std::invalid_argument);  // empty name
  EXPECT_THROW(registry.add({"two", "s", "p", 0, 0.2, {"bsc"}}, factory),
               std::invalid_argument);  // default_n == 0
  EXPECT_THROW(registry.add({"three", "s", "p", 64, 0.2, {}}, factory),
               std::invalid_argument);  // no channels
  EXPECT_THROW(registry.add({"four", "s", "p", 64, 0.2, {"bsc"}}, nullptr),
               std::invalid_argument);  // no factory
}

}  // namespace
}  // namespace flip
