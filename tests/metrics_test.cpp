#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include "net/channel.hpp"
#include "sim/engine.hpp"
#include "workload/scenarios.hpp"

namespace flip {
namespace {

TEST(MetricsTest, ClearResetsEverything) {
  Metrics m;
  m.rounds = 5;
  m.messages_sent = 10;
  m.delivered = 8;
  m.dropped = 1;
  m.erased = 1;
  m.flipped = 3;
  m.bias_series.push_back({1, 0.5});
  m.activated_series.push_back({1, 7.0});
  m.clear();
  EXPECT_EQ(m.rounds, 0u);
  EXPECT_EQ(m.messages_sent, 0u);
  EXPECT_EQ(m.delivered, 0u);
  EXPECT_EQ(m.dropped, 0u);
  EXPECT_EQ(m.erased, 0u);
  EXPECT_EQ(m.flipped, 0u);
  EXPECT_TRUE(m.bias_series.empty());
  EXPECT_TRUE(m.activated_series.empty());
}

TEST(MetricsTest, AccountingIdentityHoldsEndToEnd) {
  // sent == delivered + dropped + erased for a full protocol run, under
  // both a pure BSC and an erasure channel.
  BroadcastScenario scenario;
  scenario.n = 256;
  scenario.eps = 0.3;
  const RunDetail d = run_broadcast(scenario, 31, 0);
  EXPECT_EQ(d.metrics.messages_sent,
            d.metrics.delivered + d.metrics.dropped + d.metrics.erased);
  EXPECT_EQ(d.metrics.erased, 0u);  // BSC never erases
}

TEST(MetricsTest, BiasSeriesIsMonotoneInActivation) {
  // The activated-agents probe series must be non-decreasing over Stage I.
  BroadcastScenario scenario;
  scenario.n = 512;
  scenario.eps = 0.3;
  scenario.probe_every = 25;
  const RunDetail d = run_broadcast(scenario, 32, 0);
  ASSERT_GT(d.metrics.activated_series.size(), 2u);
  double prev = 0.0;
  for (const Sample& s : d.metrics.activated_series) {
    EXPECT_GE(s.value, prev) << "round " << s.round;
    prev = s.value;
  }
  EXPECT_EQ(prev, static_cast<double>(scenario.n));
}

TEST(MetricsTest, ProbeRoundsAreEvenlySpaced) {
  BroadcastScenario scenario;
  scenario.n = 256;
  scenario.eps = 0.3;
  scenario.probe_every = 40;
  const RunDetail d = run_broadcast(scenario, 33, 0);
  for (std::size_t i = 1; i < d.metrics.bias_series.size(); ++i) {
    EXPECT_EQ(d.metrics.bias_series[i].round -
                  d.metrics.bias_series[i - 1].round,
              40u);
  }
}

TEST(MetricsTest, FlippedFractionTracksChannel) {
  BroadcastScenario scenario;
  scenario.n = 1024;
  scenario.eps = 0.35;
  const RunDetail d = run_broadcast(scenario, 34, 0);
  const double rate = static_cast<double>(d.metrics.flipped) /
                      static_cast<double>(d.metrics.delivered);
  EXPECT_NEAR(rate, 0.5 - scenario.eps, 0.01);
}

}  // namespace
}  // namespace flip
