#include "core/theory.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace flip {
namespace {

TEST(TheoryTest, RoundUnitGrowsWithNAndShrinkingEps) {
  EXPECT_GT(theory::round_unit(1 << 20, 0.2), theory::round_unit(1 << 10, 0.2));
  EXPECT_GT(theory::round_unit(1 << 10, 0.1), theory::round_unit(1 << 10, 0.2));
  // Quadratic in 1/eps.
  EXPECT_NEAR(theory::round_unit(1024, 0.1) / theory::round_unit(1024, 0.2),
              4.0, 1e-9);
}

TEST(TheoryTest, MessageUnitIsNTimesRoundUnit) {
  EXPECT_DOUBLE_EQ(theory::message_unit(4096, 0.25),
                   4096.0 * theory::round_unit(4096, 0.25));
}

TEST(TheoryTest, RelayDecayMatchesRecursion) {
  // Applying the one-hop map q -> 1/2 + 2 eps (q - 1/2) repeatedly from
  // q0 = 1 must agree with the closed form 1/2 + (2 eps)^d / 2.
  const double eps = 0.2;
  double q = 1.0;
  for (std::uint64_t d = 0; d <= 12; ++d) {
    EXPECT_NEAR(theory::relay_correct_probability(eps, d), q, 1e-12)
        << "depth " << d;
    q = 0.5 + 2.0 * eps * (q - 0.5);
  }
}

TEST(TheoryTest, RelayDecayApproachesHalf) {
  EXPECT_NEAR(theory::relay_correct_probability(0.1, 40), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(theory::relay_correct_probability(0.1, 0), 1.0);
}

TEST(TheoryTest, SampledBiasIsTwoEpsDelta) {
  EXPECT_DOUBLE_EQ(theory::sampled_bias(0.25, 0.1), 0.05);
  EXPECT_DOUBLE_EQ(theory::sampled_bias(0.5, 0.5), 0.5);
}

TEST(TheoryTest, Stage1BiasRecursion) {
  // Claim 2.8: eps_i >= eps^(i+1) / 2; phase 0 is eps/2 (Claim 2.2).
  const double eps = 0.3;
  EXPECT_DOUBLE_EQ(theory::stage1_bias_lower_bound(eps, 0), eps / 2.0);
  for (std::uint64_t i = 1; i < 6; ++i) {
    EXPECT_NEAR(theory::stage1_bias_lower_bound(eps, i),
                theory::stage1_bias_lower_bound(eps, i - 1) * eps, 1e-12);
  }
}

TEST(TheoryTest, GrowthEnvelopeOrdering) {
  for (std::uint64_t i = 0; i < 5; ++i) {
    const double up = theory::stage1_growth_upper(100, 24, i);
    const double lo = theory::stage1_growth_lower(100, 24, i);
    EXPECT_DOUBLE_EQ(lo * 16.0, up);
    EXPECT_GT(up, 0.0);
  }
  EXPECT_DOUBLE_EQ(theory::stage1_growth_upper(100, 24, 0), 100.0);
  EXPECT_DOUBLE_EQ(theory::stage1_growth_upper(100, 24, 2), 100.0 * 25 * 25);
}

TEST(TheoryTest, Lemma211BoundShape) {
  // Linear 1/2 + 4 delta for small delta, capped at 1/2 + 1/100.
  EXPECT_DOUBLE_EQ(theory::lemma_2_11_lower_bound(0.0005), 0.5 + 0.002);
  EXPECT_DOUBLE_EQ(theory::lemma_2_11_lower_bound(0.3), 0.51);
  EXPECT_DOUBLE_EQ(theory::lemma_2_11_lower_bound(0.0025), 0.51);
}

TEST(TheoryTest, Lemma214BoostShape) {
  EXPECT_DOUBLE_EQ(theory::lemma_2_14_boost(0.0001), 0.00017);
  EXPECT_DOUBLE_EQ(theory::lemma_2_14_boost(0.4), 1.0 / 800.0);
}

TEST(TheoryTest, MajorityThresholds) {
  const std::size_t n = 1 << 16;
  EXPECT_DOUBLE_EQ(theory::majority_min_initial_set(n, 0.2),
                   theory::round_unit(n, 0.2));
  // Larger initial set tolerates smaller bias.
  EXPECT_GT(theory::majority_min_bias(n, 100),
            theory::majority_min_bias(n, 10000));
}

TEST(TheoryTest, DesyncOverheadIsDTimesPhases) {
  EXPECT_DOUBLE_EQ(theory::desync_overhead_rounds(20, 15), 300.0);
  EXPECT_DOUBLE_EQ(theory::desync_overhead_rounds(0, 15), 0.0);
}

TEST(TheoryTest, SilentBirthdayBound) {
  EXPECT_DOUBLE_EQ(theory::silent_two_message_rounds(10000), 100.0);
}

TEST(TheoryTest, EpsThresholdDecreasesWithN) {
  EXPECT_GT(theory::eps_threshold(1 << 10), theory::eps_threshold(1 << 20));
  // eta = 0 gives exactly n^(-1/2).
  EXPECT_NEAR(theory::eps_threshold(10000, 0.0), 0.01, 1e-12);
}

TEST(TheoryTest, Stage1OutputBiasUnit) {
  const double unit = theory::stage1_output_bias_unit(1 << 16);
  EXPECT_NEAR(unit, std::sqrt(std::log(65536.0) / 65536.0), 1e-12);
}

}  // namespace
}  // namespace flip
