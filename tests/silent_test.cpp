#include "baselines/silent.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "net/channel.hpp"
#include "sim/engine.hpp"

namespace flip {
namespace {

SilentConfig config_for(std::uint64_t samples, Round cap = 0) {
  SilentConfig config;
  config.samples_needed = samples;
  config.max_rounds = cap;
  return config;
}

TEST(SilentListeningTest, RejectsBadConfigs) {
  EXPECT_THROW(SilentListeningProtocol(8, config_for(0)),
               std::invalid_argument);
  EXPECT_THROW(SilentListeningProtocol(8, config_for(4)),
               std::invalid_argument);  // even sample count
}

TEST(SilentListeningTest, OnlySourceEverSends) {
  SilentListeningProtocol protocol(8, config_for(3));
  std::vector<Message> sends;
  protocol.collect_sends(0, sends);
  ASSERT_EQ(sends.size(), 1u);
  EXPECT_EQ(sends[0].sender, 0u);
  protocol.deliver(3, Opinion::kOne, 0);
  protocol.end_round(0);
  sends.clear();
  protocol.collect_sends(1, sends);
  EXPECT_EQ(sends.size(), 1u);  // still only the source
}

TEST(SilentListeningTest, DecidesByMajorityOfSamples) {
  SilentListeningProtocol protocol(8, config_for(3));
  protocol.deliver(2, Opinion::kOne, 0);
  protocol.deliver(2, Opinion::kZero, 1);
  EXPECT_FALSE(protocol.population().has_opinion(2));
  protocol.deliver(2, Opinion::kOne, 2);
  ASSERT_TRUE(protocol.population().has_opinion(2));
  EXPECT_EQ(protocol.population().opinion(2), Opinion::kOne);
  EXPECT_EQ(protocol.decided(), 1u);
}

TEST(SilentListeningTest, ExtraSamplesAfterDecisionIgnored) {
  SilentListeningProtocol protocol(8, config_for(3));
  for (int i = 0; i < 3; ++i) protocol.deliver(2, Opinion::kZero, i);
  protocol.deliver(2, Opinion::kOne, 3);
  protocol.deliver(2, Opinion::kOne, 4);
  EXPECT_EQ(protocol.population().opinion(2), Opinion::kZero);
}

TEST(SilentListeningTest, CompletesOnSmallPopulation) {
  // End-to-end at tiny n: reliable (every sample has advantage eps) but
  // slow — the whole point of the baseline.
  const std::size_t n = 32;
  const double eps = 0.25;
  BinarySymmetricChannel channel(eps);
  Xoshiro256 rng(51);
  Engine engine(n, channel, rng);
  SilentConfig config = config_for(101);
  SilentListeningProtocol protocol(n, config);
  const Metrics metrics = engine.run(protocol, 2000000);
  EXPECT_TRUE(protocol.all_decided());
  // Needs at least (n-1) * samples rounds: the source sends one per round.
  EXPECT_GE(metrics.rounds, (n - 1) * 101u);
  // And nearly everyone decides correctly (101 samples at advantage 0.25).
  EXPECT_GE(protocol.population().correct_fraction(Opinion::kOne),
            0.95);
}

TEST(SilentListeningTest, MaxRoundsCaps) {
  BinarySymmetricChannel channel(0.25);
  Xoshiro256 rng(52);
  Engine engine(64, channel, rng);
  SilentListeningProtocol protocol(64, config_for(1001, 50));
  const Metrics metrics = engine.run(protocol, 1000000);
  EXPECT_EQ(metrics.rounds, 50u);
  EXPECT_FALSE(protocol.all_decided());
}

}  // namespace
}  // namespace flip
