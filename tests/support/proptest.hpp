#pragma once
// Minimal property-based testing harness for the gtest suite.
//
// The differential/property layer (property_differential_test.cpp,
// simd_differential_test.cpp) checks universal invariants over RANDOM
// configurations, not hand-picked examples. rapidcheck is the
// fully-featured engine for that style and tests/CMakeLists.txt wires it
// in when available (FLIP_HAVE_RAPIDCHECK) — but it cannot be a hard
// dependency: offline builders have no FetchContent network and no system
// package. This header is the dependency-free engine that runs everywhere:
// a deterministic per-iteration generator plus a check() driver that stops
// at the first failing configuration and prints enough to replay it.
//
// Determinism contract: iteration i of a named property always sees the
// same generator stream (seeded from (suite seed, i)), so a failure
// message's iteration number IS the reproducer — no shrinking, but every
// case is replayable, which matters more for differential tests whose
// "counterexample" is a whole scenario config.

#include <gtest/gtest.h>

#include <cstdint>
#include <initializer_list>
#include <sstream>
#include <string>

#include "util/rng.hpp"

namespace flip::proptest {

/// Per-iteration random value source. A thin convenience layer over
/// Xoshiro256; every draw helper is exact over its range (uniform_index is
/// Lemire's unbiased method).
class Gen {
 public:
  Gen(std::uint64_t suite_seed, std::uint64_t iteration) noexcept
      : rng_(mix64(suite_seed + iteration * kGoldenGamma)) {}

  std::uint64_t u64() { return rng_(); }

  /// Uniform in [0, n). Precondition: n > 0.
  std::uint64_t index(std::uint64_t n) { return uniform_index(rng_, n); }

  /// Uniform in [lo, hi] (inclusive).
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + index(hi - lo + 1);
  }

  /// Uniform double in [lo, hi).
  double real(double lo, double hi) {
    return lo + uniform_unit(rng_) * (hi - lo);
  }

  /// True with probability p.
  bool chance(double p) { return bernoulli(rng_, p); }

  /// One element of a non-empty list.
  template <typename T>
  T pick(std::initializer_list<T> options) {
    auto it = options.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(index(options.size())));
    return *it;
  }

  template <typename Container>
  const typename Container::value_type& pick_from(const Container& c) {
    return c[static_cast<std::size_t>(index(c.size()))];
  }

 private:
  Xoshiro256 rng_;
};

/// Runs `property(gen, iteration)` for `iterations` deterministic cases.
/// Stops at the first iteration that records a gtest failure, after
/// labeling it with the property name and iteration number (the replay
/// coordinates). The property reports failures with the usual
/// EXPECT_*/ASSERT_* macros.
template <typename Property>
void check(const char* name, int iterations, std::uint64_t suite_seed,
           Property&& property) {
  for (int i = 0; i < iterations; ++i) {
    std::ostringstream label;
    label << name << " [iteration " << i << ", suite_seed 0x" << std::hex
          << suite_seed << "]";
    SCOPED_TRACE(label.str());
    property(Gen(suite_seed, static_cast<std::uint64_t>(i)), i);
    if (::testing::Test::HasFailure()) return;  // first counterexample only
  }
}

}  // namespace flip::proptest
