#include "core/two_step.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/theory.hpp"
#include "util/math.hpp"

namespace flip {
namespace {

TEST(SamplingConfigTest, DerivedQuantities) {
  SamplingConfig cfg{/*r=*/10, /*eps=*/0.25, /*delta=*/0.1};
  EXPECT_EQ(cfg.gamma(), 21u);
  EXPECT_DOUBLE_EQ(cfg.b(), 0.05);
  EXPECT_DOUBLE_EQ(cfg.sample_correct_prob(), 0.55);
}

TEST(TwoStepTest, ExactMatchesDirectBinomial) {
  // The imaginary two-step process is an equivalent view of the gamma iid
  // samples — the lemma's key construction. Verify the two exact
  // computations agree across regimes.
  for (std::uint64_t r : {5ULL, 20ULL, 100ULL}) {
    for (double eps : {0.1, 0.3}) {
      for (double delta : {0.001, 0.05, 0.3}) {
        SamplingConfig cfg{r, eps, delta};
        EXPECT_NEAR(majority_correct_exact(cfg),
                    majority_correct_via_two_step(cfg), 1e-9)
            << "r=" << r << " eps=" << eps << " delta=" << delta;
      }
    }
  }
}

TEST(TwoStepTest, MonteCarloAgreesWithExact) {
  SamplingConfig cfg{/*r=*/25, /*eps=*/0.2, /*delta=*/0.1};
  Xoshiro256 rng(99);
  const double mc = majority_correct_monte_carlo(cfg, 200000, rng);
  EXPECT_NEAR(mc, majority_correct_exact(cfg), 0.005);
}

TEST(TwoStepTest, ZeroBiasGivesHalf) {
  SamplingConfig cfg{/*r=*/30, /*eps=*/0.2, /*delta=*/0.0};
  EXPECT_NEAR(majority_correct_exact(cfg), 0.5, 1e-9);
}

TEST(TwoStepTest, MonotoneInDelta) {
  double prev = 0.0;
  for (double delta : {0.0, 0.01, 0.05, 0.1, 0.2, 0.4}) {
    SamplingConfig cfg{/*r=*/50, /*eps=*/0.2, delta};
    const double p = majority_correct_exact(cfg);
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(TwoStepTest, Lemma211LowerBoundHolds) {
  // The lemma's bound min{1/2 + 4 delta, 1/2 + 1/100} with the paper's
  // sample count r = ceil(2^22 / eps^2). Checking the exact probability
  // dominates the bound across the three delta regimes.
  const double eps = 0.45;  // keep gamma small enough to compute exactly
  const auto r =
      static_cast<std::uint64_t>(std::ceil(4194304.0 / (eps * eps)));
  for (double delta :
       {1e-8, 1e-7, eps / 1048576.0, 1e-5, 1e-4, 1.0 / 4096.0, 0.01, 0.1}) {
    SamplingConfig cfg{r, eps, delta};
    EXPECT_GE(majority_correct_exact(cfg) + 1e-12,
              theory::lemma_2_11_lower_bound(delta))
        << "delta=" << delta;
  }
}

TEST(TwoStepTest, CalibratedSampleCountStillBoosts) {
  // With the calibrated r = ceil(2/eps^2), the exact majority probability
  // must still exceed delta itself for the boosting regime the experiments
  // run in (delta >= ~1e-3) — the property Stage II actually needs.
  for (double eps : {0.15, 0.25, 0.35}) {
    const auto r = static_cast<std::uint64_t>(std::ceil(2.0 / (eps * eps)));
    for (double delta : {0.002, 0.01, 0.05, 0.1}) {
      SamplingConfig cfg{r, eps, delta};
      EXPECT_GT(majority_correct_exact(cfg), 0.5 + 1.2 * delta)
          << "eps=" << eps << " delta=" << delta;
    }
  }
}

TEST(ProbUxTest, MatchesBinomialSum) {
  const std::uint64_t r = 12;
  for (std::uint64_t x = 1; x <= 3; ++x) {
    double expected = 0.0;
    for (std::uint64_t i = 1; i <= x; ++i) {
      expected += binomial_pmf(2 * r + 1, r + i, 0.5);
    }
    EXPECT_NEAR(prob_U_x(r, x), expected, 1e-12);
  }
}

TEST(ProbUxTest, Claim212LowerBoundHolds) {
  // P(U_x) > x / (10 sqrt(r)) for 1 <= x <= sqrt(r).
  for (std::uint64_t r : {16ULL, 100ULL, 1024ULL, 10000ULL}) {
    const auto x_max =
        static_cast<std::uint64_t>(std::sqrt(static_cast<double>(r)));
    for (std::uint64_t x = 1; x <= x_max; x += std::max<std::uint64_t>(1, x_max / 4)) {
      EXPECT_GT(prob_U_x(r, x), claim_2_12_bound(r, x))
          << "r=" << r << " x=" << x;
    }
  }
}

TEST(ProbFxTest, Claim213FirstPart) {
  // If r <= 2/b then P(F_1 | U_1) >= r b / e^4. P(F_1 | U_1) is at least
  // the probability that >= 1 of r+1 players flips with prob 2b each.
  const double b = 0.001;
  const std::uint64_t r = 1000;  // r b = 1 <= 2
  const double p_f1 = prob_F_x_given_w(r + 1, 1, b);
  EXPECT_GE(p_f1, static_cast<double>(r) * b / std::exp(4.0));
}

TEST(ProbFxTest, Claim213SecondPart) {
  // If r b > 2 then for x <= ceil(r b), P(F_x | U_x) >= 1/3 (we check with
  // w = r + x wrong players, the worst case within U_x).
  const double b = 0.01;
  const std::uint64_t r = 500;  // r b = 5 > 2
  const auto x = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(r) * b));
  EXPECT_GE(prob_F_x_given_w(r + 1, x, b), 1.0 / 3.0);
}

TEST(ClassifyDeltaTest, RegimeBoundaries) {
  const double eps = 0.2;
  EXPECT_EQ(classify_delta(eps, eps / 2097152.0), DeltaRegime::kSmall);
  EXPECT_EQ(classify_delta(eps, 1e-4), DeltaRegime::kMedium);
  EXPECT_EQ(classify_delta(eps, 1.0 / 4096.0), DeltaRegime::kLarge);
  EXPECT_EQ(classify_delta(eps, 0.3), DeltaRegime::kLarge);
}

}  // namespace
}  // namespace flip
