#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace flip {
namespace {

TEST(ThreadPoolTest, DefaultHasAtLeastOneWorker) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.parallel_for(kCount, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroCountIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, SingleIterationRunsInline) {
  ThreadPool pool(2);
  int count = 0;
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPoolTest, PropagatesException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(100,
                        [](std::size_t i) {
                          if (i == 37) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  for (int pass = 0; pass < 5; ++pass) {
    pool.parallel_for(100, [&](std::size_t i) {
      sum += static_cast<long>(i);
    });
  }
  EXPECT_EQ(sum.load(), 5 * (99 * 100 / 2));
}

TEST(ThreadPoolTest, SharedPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::shared(), &ThreadPool::shared());
}

TEST(ThreadPoolTest, MoreTasksThanWorkers) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.parallel_for(64, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 64);
}

// parallel_for is re-entrant (waiters help drain the queue): N outer
// tasks each fanning out M inner tasks on the SAME pool must complete
// even when every worker is simultaneously blocked inside an outer wait —
// the deadlock shape the sharded BatchEngine creates inside parallel
// sweeps.
TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<int> inner_runs{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) {
      inner_runs.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_runs.load(), 64);
}

TEST(ThreadPoolTest, NestedParallelForPropagatesInnerException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(4,
                        [&](std::size_t outer) {
                          pool.parallel_for(4, [&](std::size_t inner) {
                            if (outer == 2 && inner == 3) {
                              throw std::runtime_error("inner boom");
                            }
                          });
                        }),
      std::runtime_error);
}

}  // namespace
}  // namespace flip
