#include "core/breathe.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/theory.hpp"
#include "net/channel.hpp"
#include "sim/engine.hpp"

namespace flip {
namespace {

struct Harness {
  explicit Harness(std::size_t n, double eps, std::uint64_t seed,
                   BreatheConfig config)
      : params(Params::calibrated(n, eps)),
        engine_rng(make_stream(seed, 0)),
        protocol_rng(make_stream(seed, 1)),
        channel(eps),
        engine(n, channel, engine_rng),
        protocol(params, std::move(config), protocol_rng) {}

  Metrics run() { return engine.run(protocol, protocol.total_rounds()); }

  Params params;
  Xoshiro256 engine_rng;
  Xoshiro256 protocol_rng;
  BinarySymmetricChannel channel;
  Engine engine;
  BreatheProtocol protocol;
};

TEST(BreatheProtocolTest, RejectsBadConfigs) {
  const Params p = Params::calibrated(64, 0.3);
  Xoshiro256 rng(1);
  BreatheConfig empty;
  EXPECT_THROW(BreatheProtocol(p, empty, rng), std::invalid_argument);

  BreatheConfig out_of_range = broadcast_config();
  out_of_range.initial[0].agent = 100;
  EXPECT_THROW(BreatheProtocol(p, out_of_range, rng), std::invalid_argument);

  BreatheConfig dup = broadcast_config();
  dup.initial.push_back(dup.initial[0]);
  EXPECT_THROW(BreatheProtocol(p, dup, rng), std::invalid_argument);

  BreatheConfig late = broadcast_config();
  late.start_phase = p.stage1().T + 2;
  EXPECT_THROW(BreatheProtocol(p, late, rng), std::invalid_argument);
}

TEST(BreatheProtocolTest, TotalRoundsMatchesSchedule) {
  Harness h(256, 0.3, 3, broadcast_config());
  EXPECT_EQ(h.protocol.total_rounds(), h.params.total_rounds());
  EXPECT_EQ(h.protocol.stage1_rounds(), h.params.stage1().total_rounds());
}

TEST(BreatheProtocolTest, PhaseZeroOnlySourceSpeaks) {
  Harness h(256, 0.3, 4, broadcast_config());
  std::vector<Message> sends;
  h.protocol.collect_sends(0, sends);
  ASSERT_EQ(sends.size(), 1u);
  EXPECT_EQ(sends[0].sender, 0u);
  EXPECT_EQ(sends[0].bit, Opinion::kOne);
}

TEST(BreatheProtocolTest, ActivatedAgentsBreatheBeforeSpeaking) {
  // An agent receiving a message mid-phase must not send before the phase
  // ends (the paper's "breathe" rule).
  Harness h(256, 0.3, 5, broadcast_config());
  h.protocol.deliver(7, Opinion::kOne, 0);
  std::vector<Message> sends;
  h.protocol.collect_sends(1, sends);
  for (const Message& m : sends) EXPECT_NE(m.sender, 7u);
  EXPECT_FALSE(h.protocol.population().has_opinion(7));

  // Walk to the end of phase 0: the agent adopts an opinion and speaks.
  const Round end = h.params.stage1().phase_end(0);
  for (Round r = 0; r < end; ++r) h.protocol.end_round(r);
  EXPECT_TRUE(h.protocol.population().has_opinion(7));
  sends.clear();
  h.protocol.collect_sends(end, sends);
  bool found = false;
  for (const Message& m : sends) found |= m.sender == 7;
  EXPECT_TRUE(found);
}

TEST(BreatheProtocolTest, EndToEndBroadcastSucceeds) {
  Harness h(512, 0.3, 6, broadcast_config());
  const Metrics metrics = h.run();
  EXPECT_EQ(metrics.rounds, h.protocol.total_rounds());
  EXPECT_TRUE(h.protocol.succeeded())
      << "correct fraction "
      << h.protocol.population().correct_fraction(Opinion::kOne);
}

TEST(BreatheProtocolTest, WorksForBothOpinionValues) {
  // Symmetry: the protocol must work identically for B = 0.
  Harness h(512, 0.3, 7, broadcast_config(Opinion::kZero));
  h.run();
  EXPECT_TRUE(h.protocol.succeeded());
  EXPECT_TRUE(h.protocol.population().unanimous(Opinion::kZero));
}

TEST(BreatheProtocolTest, DeterministicForSameSeed) {
  auto fingerprint = [](std::uint64_t seed) {
    Harness h(256, 0.25, seed, broadcast_config());
    const Metrics metrics = h.run();
    return std::make_tuple(metrics.flipped, metrics.delivered,
                           h.protocol.population().count(Opinion::kOne));
  };
  EXPECT_EQ(fingerprint(42), fingerprint(42));
}

TEST(BreatheProtocolTest, Stage1StatsAccounting) {
  Harness h(512, 0.3, 8, broadcast_config());
  h.run();
  const auto& stats = h.protocol.stage1_stats();
  ASSERT_FALSE(stats.empty());
  std::uint64_t cumulative = 1;  // the source
  for (const auto& s : stats) {
    EXPECT_LE(s.newly_correct, s.newly_activated);
    cumulative += s.newly_activated;
    EXPECT_EQ(s.total_activated, cumulative);
  }
  // By the end of Stage I everyone is activated (Corollary 2.6).
  EXPECT_EQ(stats.back().total_activated, 512u);
}

TEST(BreatheProtocolTest, Stage1LayerBiasIsPositive) {
  // Claim 2.2 / Claim 2.8: each layer keeps a positive bias toward B.
  Harness h(2048, 0.35, 9, broadcast_config());
  h.run();
  for (const auto& s : h.protocol.stage1_stats()) {
    if (s.newly_activated < 50) continue;  // too small for concentration
    EXPECT_GT(s.layer_bias(), 0.0) << "phase " << s.phase;
  }
}

TEST(BreatheProtocolTest, Stage2StatsMonotoneBoost) {
  Harness h(1024, 0.3, 10, broadcast_config());
  h.run();
  const auto& stats = h.protocol.stage2_stats();
  ASSERT_EQ(stats.size(), h.params.stage2().k + 1);
  // The final phase must reach unanimity from the boosted bias.
  EXPECT_DOUBLE_EQ(stats.back().correct_fraction, 1.0);
  // Most agents are successful in every phase (Claim 2.9: >= n/2 w.h.p.).
  for (const auto& s : stats) {
    EXPECT_GE(s.successful, 1024u / 2) << "phase " << s.phase;
  }
}

TEST(BreatheProtocolTest, MessageCountMatchesSenderSchedule) {
  // During phase 0 exactly one agent sends per round, so after phase 0 the
  // engine must have counted exactly beta_s messages.
  Harness h(256, 0.3, 11, broadcast_config());
  const Round beta_s = h.params.stage1().beta_s;
  const Metrics metrics = h.engine.run(h.protocol, beta_s);
  EXPECT_EQ(metrics.messages_sent, beta_s);
}

TEST(MajorityConfigTest, BuildsPrescribedSplit) {
  const Params p = Params::calibrated(1024, 0.25);
  const BreatheConfig config = majority_config(p, 100, 75);
  EXPECT_EQ(config.initial.size(), 100u);
  std::size_t correct = 0;
  for (const Seed& s : config.initial) {
    if (s.opinion == Opinion::kOne) ++correct;
  }
  EXPECT_EQ(correct, 75u);
  EXPECT_EQ(config.start_phase, p.join_phase_for_initial_set(100));
}

TEST(MajorityConfigTest, RejectsBadCounts) {
  const Params p = Params::calibrated(64, 0.25);
  EXPECT_THROW(majority_config(p, 100, 10), std::invalid_argument);
  EXPECT_THROW(majority_config(p, 10, 20), std::invalid_argument);
}

TEST(BreatheProtocolTest, MajorityConsensusEndToEnd) {
  const std::size_t n = 1024;
  const double eps = 0.3;
  const Params p = Params::calibrated(n, eps);
  // |A| comfortably above log n / eps^2, bias above sqrt(log n / |A|).
  const std::size_t a = 256;
  const std::size_t correct_count = 224;  // bias (224-32)/(2*256) = 0.375
  Harness h(n, eps, 12, majority_config(p, a, correct_count));
  h.run();
  EXPECT_TRUE(h.protocol.succeeded());
}

TEST(BreatheProtocolTest, MajorityConsensusWrongMajorityWins) {
  // If the initial majority is for the "wrong" opinion, the protocol must
  // converge there: correctness is defined relative to the majority.
  const std::size_t n = 1024;
  const Params p = Params::calibrated(n, 0.3);
  // Majority for kZero: only 32 of 256 hold kOne.
  BreatheConfig config = majority_config(p, 256, 32, Opinion::kOne);
  config.correct = Opinion::kZero;  // instrumentation tracks the majority
  Harness h(n, 0.3, 13, std::move(config));
  h.run();
  EXPECT_TRUE(h.protocol.population().unanimous(Opinion::kZero));
}

}  // namespace
}  // namespace flip
