#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace flip {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sem(), 0.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStatsTest, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations = 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStatsTest, MergeEqualsBulk) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(WilsonIntervalTest, ThrowsOnZeroTrials) {
  EXPECT_THROW(wilson_interval(0, 0), std::invalid_argument);
}

TEST(WilsonIntervalTest, ContainsEstimateAndIsBounded) {
  const ProportionCI ci = wilson_interval(80, 100);
  EXPECT_DOUBLE_EQ(ci.estimate, 0.8);
  EXPECT_LT(ci.low, 0.8);
  EXPECT_GT(ci.high, 0.8);
  EXPECT_GE(ci.low, 0.0);
  EXPECT_LE(ci.high, 1.0);
}

TEST(WilsonIntervalTest, DegenerateEndsStayInUnitInterval) {
  const ProportionCI none = wilson_interval(0, 50);
  EXPECT_EQ(none.estimate, 0.0);
  EXPECT_EQ(none.low, 0.0);
  EXPECT_GT(none.high, 0.0);

  const ProportionCI all = wilson_interval(50, 50);
  EXPECT_EQ(all.estimate, 1.0);
  EXPECT_LT(all.low, 1.0);
  EXPECT_EQ(all.high, 1.0);
}

TEST(WilsonIntervalTest, NarrowsWithMoreTrials) {
  const ProportionCI small = wilson_interval(8, 10);
  const ProportionCI big = wilson_interval(800, 1000);
  EXPECT_LT(big.high - big.low, small.high - small.low);
}

TEST(PercentileTest, MedianOfOddSample) {
  const std::vector<double> xs = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(xs), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenValues) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 10.0);
}

TEST(PercentileTest, ThrowsOnEmpty) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
}

TEST(HistogramTest, BinsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);    // bin 0
  h.add(9.99);   // bin 4
  h.add(-3.0);   // clamped to bin 0
  h.add(42.0);   // clamped to bin 4
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(4), 2u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.bin_low(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_high(1), 4.0);
}

TEST(HistogramTest, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
}

TEST(HistogramTest, RenderMentionsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.1);
  h.add(0.1);
  h.add(0.9);
  const std::string text = h.render();
  EXPECT_NE(text.find("2"), std::string::npos);
  EXPECT_NE(text.find("#"), std::string::npos);
}

TEST(LogLogSlopeTest, RecoversPowerLaw) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * x * x);  // slope 2
  }
  EXPECT_NEAR(log_log_slope(xs, ys), 2.0, 1e-9);
}

TEST(LogLogSlopeTest, SkipsNonPositivePoints) {
  const std::vector<double> xs = {0.0, 1.0, 2.0, 4.0};
  const std::vector<double> ys = {5.0, 1.0, 0.5, 0.25};  // slope -1 on tail
  EXPECT_NEAR(log_log_slope(xs, ys), -1.0, 1e-9);
}

TEST(LogLogSlopeTest, DegenerateInputsGiveZero) {
  EXPECT_EQ(log_log_slope({}, {}), 0.0);
  const std::vector<double> one = {2.0};
  EXPECT_EQ(log_log_slope(one, one), 0.0);
}


TEST(PowerLawFitTest, RecoversExactLaw) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x : {1.0, 2.0, 5.0, 10.0, 50.0}) {
    xs.push_back(x);
    ys.push_back(7.0 / (x * x));  // y = 7 x^-2
  }
  const PowerLawFit fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.exponent, -2.0, 1e-9);
  EXPECT_NEAR(fit.prefactor, 7.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_EQ(fit.points, 5u);
}

TEST(PowerLawFitTest, NoisyDataHasLowerRSquared) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  const std::vector<double> ys = {1.0, 3.1, 3.5, 9.2, 14.0};
  const PowerLawFit fit = fit_power_law(xs, ys);
  EXPECT_GT(fit.r_squared, 0.5);
  EXPECT_LT(fit.r_squared, 1.0);
}

TEST(PowerLawFitTest, DegenerateInputs) {
  const PowerLawFit empty = fit_power_law({}, {});
  EXPECT_EQ(empty.points, 0u);
  EXPECT_EQ(empty.exponent, 0.0);
  const std::vector<double> bad_x = {0.0, -1.0};
  const std::vector<double> y = {1.0, 2.0};
  EXPECT_EQ(fit_power_law(bad_x, y).points, 0u);
}

}  // namespace
}  // namespace flip
