// Whole-engine SIMD differential suite: with the vector kernels forced on,
// every registry entry must produce TrialOutcomes bit-identical to the
// forced-scalar path — success, rounds, messages, correct_fraction,
// convergence_round, AND the delivered/dropped/erased/flipped counters — at
// shard counts 1 and 8. This is the acceptance test for the FLIP_SIMD
// exactness contract at the outermost observable layer; the block kernels
// themselves are pinned in simd_kernels_test.cpp one layer down.
//
// In FLIP_SIMD=OFF builds (or on machines whose CPU cannot run any
// compiled vector set) the whole suite SKIPs: there is nothing to
// differentiate, and the scalar path is already covered by
// batch_engine_test.cpp.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/trial.hpp"
#include "simd/simd.hpp"
#include "workload/registry.hpp"

namespace flip {
namespace {

/// Restores best-ISA dispatch no matter how a test exits.
struct IsaGuard {
  ~IsaGuard() { simd::reset_isa(); }
};

/// Skips the calling test unless this build + machine has a vector kernel
/// set to differentiate against scalar.
#define FLIP_REQUIRE_VECTOR_KERNELS()                                       \
  do {                                                                      \
    if (!simd::kCompiled) {                                                 \
      GTEST_SKIP() << "FLIP_SIMD=OFF build: no vector kernels compiled";    \
    }                                                                       \
    if (simd::best_isa() == simd::Isa::kScalar) {                           \
      GTEST_SKIP() << "no vector kernel set runnable on this machine";      \
    }                                                                       \
  } while (false)

void expect_double_eq_nan(double a, double b, const std::string& what) {
  if (std::isnan(a) && std::isnan(b)) return;
  EXPECT_EQ(a, b) << what;
}

void expect_outcome_eq(const TrialOutcome& a, const TrialOutcome& b,
                       const std::string& what) {
  EXPECT_EQ(a.success, b.success) << what;
  EXPECT_EQ(a.rounds, b.rounds) << what;
  EXPECT_EQ(a.messages, b.messages) << what;
  EXPECT_EQ(a.correct_fraction, b.correct_fraction) << what;
  expect_double_eq_nan(a.convergence_round, b.convergence_round, what);
  EXPECT_EQ(a.delivered, b.delivered) << what;
  EXPECT_EQ(a.dropped, b.dropped) << what;
  EXPECT_EQ(a.erased, b.erased) << what;
  EXPECT_EQ(a.flipped, b.flipped) << what;
}

/// Runs `fn(seed, trial)` with the given kernel set forced for the whole
/// call (the dispatch pointer is process-wide; tests are single-threaded).
TrialOutcome run_forced(const TrialFn& fn, simd::Isa isa, std::uint64_t seed,
                        std::size_t trial) {
  EXPECT_TRUE(simd::force_isa(isa)) << simd::isa_name(isa);
  const TrialOutcome out = fn(seed, trial);
  simd::reset_isa();
  return out;
}

// The headline acceptance test: every registry entry, vector vs scalar,
// trials {0,1} x shards {1,8}, full outcome + counter equality.
TEST(SimdDifferentialTest, EveryRegistryEntryMatchesScalar) {
  FLIP_REQUIRE_VECTOR_KERNELS();
  IsaGuard guard;
  const simd::Isa best = simd::best_isa();
  const ScenarioRegistry& registry = ScenarioRegistry::instance();
  for (const ScenarioInfo* info : registry.list()) {
    for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
      ScenarioOverrides overrides;
      overrides.n = std::min<std::size_t>(info->default_n, 256);
      overrides.shards = shards;
      const TrialFn fn = registry.make(info->name, overrides);
      for (std::size_t trial = 0; trial < 2; ++trial) {
        const TrialOutcome scalar =
            run_forced(fn, simd::Isa::kScalar, 0x5eed, trial);
        const TrialOutcome vector = run_forced(fn, best, 0x5eed, trial);
        expect_outcome_eq(scalar, vector,
                          info->name + " trial " + std::to_string(trial) +
                              " shards " + std::to_string(shards) + " (" +
                              simd::isa_name(best) + " vs scalar)");
      }
    }
  }
}

// Same contract for EVERY runnable vector set, not just the best one — on
// an AVX-512 machine this also holds the AVX2 kernels (which best-ISA
// dispatch would otherwise never select) to the scalar outcome, on a
// representative subset of entries.
TEST(SimdDifferentialTest, EveryRunnableIsaMatchesScalar) {
  FLIP_REQUIRE_VECTOR_KERNELS();
  IsaGuard guard;
  const ScenarioRegistry& registry = ScenarioRegistry::instance();
  for (const simd::Isa isa :
       {simd::Isa::kAvx2, simd::Isa::kAvx512, simd::Isa::kNeon}) {
    if (!simd::force_isa(isa)) continue;
    simd::reset_isa();
    for (const char* name :
         {"broadcast", "broadcast_churn", "broadcast_eps_ramp", "majority",
          "desync"}) {
      ASSERT_TRUE(registry.contains(name)) << name;
      const ScenarioInfo* info = registry.find(name);
      ScenarioOverrides overrides;
      overrides.n = std::min<std::size_t>(info->default_n, 256);
      const TrialFn fn = registry.make(name, overrides);
      const TrialOutcome scalar =
          run_forced(fn, simd::Isa::kScalar, 0x5eed, 0);
      const TrialOutcome vector = run_forced(fn, isa, 0x5eed, 0);
      expect_outcome_eq(scalar, vector,
                        std::string(name) + " (" + simd::isa_name(isa) +
                            " vs scalar)");
    }
  }
}

// Sparse-topology entries route through GraphRecipient, for which no vector
// kernel exists: the engine must fall back to the scalar route (deliver
// still vectorizes — it is topology-blind), so forcing the best vector set
// and forcing scalar MUST agree bit-for-bit. This pins the use_simd gate in
// route_dispatch: a kernel-set that silently kept the complete-graph
// draw-bound on a sparse graph would diverge here immediately.
TEST(SimdDifferentialTest, SparseTopologyEntriesMatchScalar) {
  FLIP_REQUIRE_VECTOR_KERNELS();
  IsaGuard guard;
  const ScenarioRegistry& registry = ScenarioRegistry::instance();
  for (const char* name :
       {"broadcast_ring_k8", "broadcast_grid_r2", "broadcast_smallworld",
        "majority_smallworld", "broadcast_dynamic_rewire"}) {
    ASSERT_TRUE(registry.contains(name)) << name;
    for (const std::size_t shards : {std::size_t{1}, std::size_t{8}}) {
      ScenarioOverrides overrides;
      overrides.n = 256;
      overrides.shards = shards;
      const TrialFn fn = registry.make(name, overrides);
      for (std::size_t trial = 0; trial < 2; ++trial) {
        const TrialOutcome scalar =
            run_forced(fn, simd::Isa::kScalar, 0x5eed, trial);
        const TrialOutcome vector =
            run_forced(fn, simd::best_isa(), 0x5eed, trial);
        expect_outcome_eq(scalar, vector,
                          std::string(name) + " trial " +
                              std::to_string(trial) + " shards " +
                              std::to_string(shards));
      }
    }
  }
}

// A population large enough that every round runs many full vector blocks
// plus a ragged tail through both hot phases (route + stage-2 deliver with
// the BSC integer threshold) — small-n registry runs keep blocks short, so
// this is the case that exercises steady-state block iteration.
TEST(SimdDifferentialTest, LargeBroadcastMatchesScalar) {
  FLIP_REQUIRE_VECTOR_KERNELS();
  IsaGuard guard;
  ScenarioOverrides overrides;
  overrides.n = 20000;
  const TrialFn fn = ScenarioRegistry::instance().make("broadcast", overrides);
  const TrialOutcome scalar = run_forced(fn, simd::Isa::kScalar, 0x5eed, 0);
  const TrialOutcome vector = run_forced(fn, simd::best_isa(), 0x5eed, 0);
  expect_outcome_eq(scalar, vector, "broadcast n=20000");
}

// Dynamic-environment coverage at size: churn exercises the awake-filter
// pre-pass in front of the route kernel (live-entry compaction must keep
// the exact scalar draw-skipping semantics), and a schedule ramp exercises
// per-round threshold changes through the flip kernel.
TEST(SimdDifferentialTest, ChurnAndScheduleMatchScalarAtSize) {
  FLIP_REQUIRE_VECTOR_KERNELS();
  IsaGuard guard;
  const ScenarioRegistry& registry = ScenarioRegistry::instance();
  for (const char* name :
       {"broadcast_churn", "broadcast_eps_ramp", "broadcast_burst"}) {
    ASSERT_TRUE(registry.contains(name)) << name;
    ScenarioOverrides overrides;
    overrides.n = 4096;
    overrides.shards = 4;
    const TrialFn fn = registry.make(name, overrides);
    for (std::size_t trial = 0; trial < 2; ++trial) {
      const TrialOutcome scalar =
          run_forced(fn, simd::Isa::kScalar, 0x5eed, trial);
      const TrialOutcome vector =
          run_forced(fn, simd::best_isa(), 0x5eed, trial);
      expect_outcome_eq(scalar, vector,
                        std::string(name) + " trial " +
                            std::to_string(trial));
    }
  }
}

// run_trials aggregation on top of the forced kernels: the deterministic
// summary fields (not wall-clock) must match scalar exactly, so a user
// flipping FLIP_SIMD on sees identical science in every report.
TEST(SimdDifferentialTest, TrialSummaryMatchesScalar) {
  FLIP_REQUIRE_VECTOR_KERNELS();
  IsaGuard guard;
  ScenarioOverrides overrides;
  overrides.n = 256;
  const TrialFn fn = ScenarioRegistry::instance().make("broadcast", overrides);
  TrialOptions options;
  options.trials = 8;

  ASSERT_TRUE(simd::force_isa(simd::Isa::kScalar));
  const TrialSummary scalar = run_trials(fn, options);
  ASSERT_TRUE(simd::force_isa(simd::best_isa()));
  const TrialSummary vector = run_trials(fn, options);
  simd::reset_isa();

  EXPECT_EQ(scalar.trials, vector.trials);
  EXPECT_EQ(scalar.successes, vector.successes);
  EXPECT_EQ(scalar.success.estimate, vector.success.estimate);
  EXPECT_EQ(scalar.rounds.mean(), vector.rounds.mean());
  EXPECT_EQ(scalar.messages.mean(), vector.messages.mean());
  EXPECT_EQ(scalar.correct_fraction.mean(), vector.correct_fraction.mean());
  EXPECT_EQ(scalar.converged, vector.converged);
  EXPECT_EQ(scalar.convergence_rounds.mean(), vector.convergence_rounds.mean());
}

// The heterogeneous channel has per-recipient (data-dependent) flip
// probabilities, so its deliver phase stays scalar by design
// (kIntegerThreshold == false) while the route phase still runs through the
// vector kernel — the mixed configuration must stay exact too.
TEST(SimdDifferentialTest, HeterogeneousChannelMatchesScalar) {
  FLIP_REQUIRE_VECTOR_KERNELS();
  IsaGuard guard;
  ScenarioOverrides overrides;
  overrides.n = 1024;
  overrides.channel = std::string(kChannelHeterogeneous);
  const TrialFn fn = ScenarioRegistry::instance().make("broadcast", overrides);
  for (std::size_t trial = 0; trial < 2; ++trial) {
    const TrialOutcome scalar =
        run_forced(fn, simd::Isa::kScalar, 0x5eed, trial);
    const TrialOutcome vector = run_forced(fn, simd::best_isa(), 0x5eed, trial);
    expect_outcome_eq(scalar, vector,
                      "heterogeneous trial " + std::to_string(trial));
  }
}

}  // namespace
}  // namespace flip
